#ifndef TWRS_SHARD_SPLITTERS_H_
#define TWRS_SHARD_SPLITTERS_H_

#include <cstdint>
#include <vector>

#include "core/record.h"
#include "util/random.h"

namespace twrs {

/// Uniform reservoir sampler (Algorithm R) over a key stream: after any
/// number of Add calls, sample() holds min(capacity, seen) keys, each seen
/// key equally likely to be present. Deterministic for a fixed seed.
/// Shared by the range-sharding sorter (src/shard) and the partitioned
/// final merge (src/merge), which both pick key-domain splitters from a
/// bounded sample.
class ReservoirSampler {
 public:
  ReservoirSampler(size_t capacity, uint64_t seed)
      : capacity_(capacity), rng_(seed) {}

  void Add(Key key);

  /// Keys offered so far.
  uint64_t seen() const { return seen_; }

  /// The current reservoir (unsorted).
  const std::vector<Key>& sample() const { return sample_; }

 private:
  size_t capacity_;
  Random rng_;
  uint64_t seen_ = 0;
  std::vector<Key> sample_;
};

/// Picks at most `shards` - 1 ascending, distinct range splitters at the
/// quantiles of `sample` — the distribution-sort partitioning idea (§2.2)
/// with sampled instead of assumed-known key ranges. Shard i then covers
/// [splitter[i-1], splitter[i]) with the outer shards open-ended, so
/// duplicates of any key always land in one shard. Heavily skewed samples
/// collapse duplicate splitters, yielding fewer effective shards.
std::vector<Key> PickSplitters(std::vector<Key> sample, size_t shards);

}  // namespace twrs

#endif  // TWRS_SHARD_SPLITTERS_H_
