#ifndef TWRS_SHARD_SHARDED_SORTER_H_
#define TWRS_SHARD_SHARDED_SORTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/record.h"
#include "core/record_source.h"
#include "io/counting_env.h"
#include "io/env.h"
#include "merge/external_sorter.h"
#include "shard/splitters.h"
#include "util/status.h"

namespace twrs {

class Executor;

/// Configuration of a sharded external sort.
struct ShardedSortOptions {
  /// Range shards sorted concurrently. 1 degenerates to a plain
  /// ExternalSorter; must be at least 1.
  size_t shards = 2;

  /// Reservoir size used to pick the range splitters. Larger samples give
  /// more even shards; must be at least 1.
  size_t sample_size = 4096;

  /// Seed of the deterministic sampling RNG.
  uint64_t sample_seed = 1;

  /// I/O buffer of the purely sequential passes the sharded path adds
  /// (sampling/staging, partition). Much larger than the per-stream sort
  /// buffers: these passes stream one file end to end, so big blocks
  /// amortize positioning cost on seek-bound disks.
  size_t split_block_bytes = 1 << 20;

  /// Per-shard external sort configuration. Its temp_dir doubles as the
  /// sharded sorter's scratch root (a unique subdirectory is created per
  /// Sort call), and its parallel knobs apply inside each shard's sort.
  ExternalSortOptions sort;

  /// Executor the per-shard sorts run on; null = Executor::Shared(). The
  /// shards' own pipelined features borrow from the same executor unless
  /// `sort.parallel` says otherwise.
  Executor* executor = nullptr;
};

/// Breakdown of one sharded sort.
struct ShardedSortResult {
  uint64_t input_records = 0;
  uint64_t output_records = 0;

  /// Engine I/O volume across every pass (staging, partition, the shards'
  /// complete sorts — whose final merges write the output directly),
  /// mirroring ExternalSortResult. The removed concatenation pass used to
  /// add one full read + write of the output on top of this.
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;

  /// Splitters actually used (effective shards = splitters.size() + 1).
  std::vector<Key> splitters;

  /// Records routed to each shard.
  std::vector<uint64_t> shard_records;

  /// Per-shard sort breakdowns, in shard order.
  std::vector<ExternalSortResult> shard_results;

  double split_seconds = 0.0;  ///< sampling + partition passes
  /// Concurrent per-shard sorts (wall clock), including each shard's final
  /// merge writing its byte range of the output directly — there is no
  /// separate concatenation pass to time anymore.
  double sort_seconds = 0.0;
  double total_seconds = 0.0;
};

/// Sorts via range sharding: samples the input to pick splitters, writes
/// range-disjoint shard files, and runs a complete external sort per shard
/// concurrently on the executor. Shard byte offsets in the output are known
/// before any sort starts (ranges are disjoint and shard record counts are
/// exact from the partition pass), so each shard's final merge writes its
/// [offset, offset+len) of the real output through a RangeMergeSink — the
/// old concatenation pass, one full read + write of the output, is gone.
/// The output file is byte-identical to what the serial ExternalSorter
/// produces for the same input.
class ShardedSorter {
 public:
  /// Does not take ownership of `env`.
  ShardedSorter(Env* env, ShardedSortOptions options);

  /// Sorts `source` into the record file at `output_path`. Streaming inputs
  /// are staged to a scratch file while being sampled (their range is
  /// unknown up front), costing one extra read+write pass over SortFile.
  Status Sort(RecordSource* source, const std::string& output_path,
              ShardedSortResult* result);

  /// Sorts the record file at `input_path` into `output_path`, sampling
  /// directly from the file (no staging copy). The input file is left
  /// intact.
  Status SortFile(const std::string& input_path,
                  const std::string& output_path, ShardedSortResult* result);

  const ShardedSortOptions& options() const { return options_; }

 private:
  Status Validate() const;

  /// Shared tail of both entry points: partitions `staged_path` by the
  /// splitters picked from `sample`, then sorts every shard concurrently,
  /// each writing its precomputed byte range of `output_path` directly.
  /// Removes `staged_path` when owned.
  /// `prior_seconds` is the caller's sampling/staging time, folded into the
  /// split and total timings. `env` is the operation's counting decorator;
  /// all passes (including the per-shard sorts) run through it.
  Status SortStaged(CountingEnv* env, const std::string& staged_path,
                    bool remove_staged, const std::string& shard_dir,
                    const std::vector<Key>& sample, uint64_t input_records,
                    double prior_seconds, const std::string& output_path,
                    ShardedSortResult* result);

  /// Best-effort removal of everything under shard_dir after a failure —
  /// shard and sorted files, the owned staging copy, and the scratch
  /// directories of per-shard sorts that failed partway — so a failed sort
  /// does not leave up to 2x the input behind on disk.
  void CleanupScratch(const std::string& staged_path, bool remove_staged,
                      const std::string& shard_dir);

  /// shards == 1 short-circuit: one plain external sort, no partitioning.
  Status SortUnsharded(RecordSource* source, const std::string& output_path,
                       ShardedSortResult* result);

  Env* env_;
  ShardedSortOptions options_;
};

}  // namespace twrs

#endif  // TWRS_SHARD_SHARDED_SORTER_H_
