#include "shard/splitters.h"

#include <algorithm>

#include "simd/kernels.h"

namespace twrs {

void ReservoirSampler::Add(Key key) {
  ++seen_;
  if (sample_.size() < capacity_) {
    sample_.push_back(key);
    return;
  }
  const uint64_t slot = rng_.Uniform(seen_);
  if (slot < capacity_) sample_[slot] = key;
}

std::vector<Key> PickSplitters(std::vector<Key> sample, size_t shards) {
  std::vector<Key> splitters;
  if (shards <= 1 || sample.empty()) return splitters;
  simd::SortKeysBlock(sample.data(), sample.size());
  for (size_t i = 1; i < shards; ++i) {
    const size_t idx =
        std::min(i * sample.size() / shards, sample.size() - 1);
    splitters.push_back(sample[idx]);
  }
  splitters.erase(std::unique(splitters.begin(), splitters.end()),
                  splitters.end());
  return splitters;
}

}  // namespace twrs
