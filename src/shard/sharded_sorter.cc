#include "shard/sharded_sorter.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <memory>
#include <utility>

#include "exec/executor.h"
#include "exec/thread_pool.h"
#include "io/record_io.h"
#include "simd/kernels.h"
#include "util/stopwatch.h"
#include "workload/generators.h"

namespace twrs {

ShardedSorter::ShardedSorter(Env* env, ShardedSortOptions options)
    : env_(env), options_(std::move(options)) {}

Status ShardedSorter::Validate() const {
  if (options_.shards < 1) {
    return Status::InvalidArgument("shards must be at least 1");
  }
  if (options_.sample_size < 1) {
    return Status::InvalidArgument("sample_size must be at least 1");
  }
  if (options_.shards > 1 && options_.sort.limit > 0) {
    // A top-K sort writes min(K, N) records, not N, so the range-disjoint
    // per-shard output layout cannot apply. The service plans top-K jobs
    // at 1 shard (ShardPlanLimit::kTopKSelection) for the same reason.
    return Status::InvalidArgument(
        "top-K sorts (limit > 0) run unsharded; plan 1 shard");
  }
  return Status::OK();
}

Status ShardedSorter::SortUnsharded(RecordSource* source,
                                    const std::string& output_path,
                                    ShardedSortResult* result) {
  ShardedSortResult local;
  Stopwatch total_watch;
  ExternalSortOptions sort_options = options_.sort;
  if (sort_options.parallel.executor == nullptr) {
    sort_options.parallel.executor = options_.executor;
  }
  ExternalSorter sorter(env_, sort_options);
  ExternalSortResult sort_result;
  TWRS_RETURN_IF_ERROR(sorter.Sort(source, output_path, &sort_result));
  // For a top-K sort the output is smaller than the input; report both
  // truthfully (they coincide for a full sort).
  local.input_records = sort_result.run_gen.total_records;
  local.output_records = sort_result.output_records;
  local.bytes_read = sort_result.bytes_read;
  local.bytes_written = sort_result.bytes_written;
  local.shard_records = {sort_result.output_records};
  local.shard_results = {sort_result};
  local.sort_seconds = sort_result.total_seconds;
  local.total_seconds = total_watch.ElapsedSeconds();
  if (result != nullptr) *result = local;
  return Status::OK();
}

Status ShardedSorter::Sort(RecordSource* source,
                           const std::string& output_path,
                           ShardedSortResult* result) {
  TWRS_RETURN_IF_ERROR(Validate());
  if (options_.shards == 1) {
    return SortUnsharded(source, output_path, result);
  }

  Stopwatch staging_watch;
  // Resolve the I/O backend once for the whole job so staging, splitting
  // and every per-shard sub-sort run on the same Env (the sub-sorts get
  // io_backend cleared in SortStaged — they must keep this CountingEnv,
  // not re-resolve and bypass the byte accounting).
  Env* base_env = env_;
  if (options_.sort.io_backend != IoBackend::kDefault) {
    IoBackend resolved = IoBackend::kDefault;
    TWRS_RETURN_IF_ERROR(ResolveIoBackend(options_.sort.io_backend, &resolved));
    if (resolved != IoBackend::kDefault) {
      base_env = Env::Default(resolved);
    }
  }
  CountingEnv env(base_env);
  env.WatchPath(output_path);
  // Job-level byte progress comes from this outer env; the per-shard
  // sub-sorts below run with progress_bytes off so their nested
  // CountingEnvs don't double-count the same I/O.
  if (options_.sort.progress != nullptr) {
    env.MirrorBytesTo(options_.sort.progress->bytes_read_counter(),
                      options_.sort.progress->bytes_written_counter());
  }
  const CancelToken* cancel = options_.sort.cancel;
  const std::string shard_dir =
      options_.sort.temp_dir + "/" + UniqueScratchDirName("shard");
  TWRS_RETURN_IF_ERROR(env.CreateDirIfMissing(shard_dir));

  // Pass 0: materialize the stream while reservoir-sampling it — a
  // streaming input's key distribution is unknown up front.
  const std::string staged = shard_dir + "/staging";
  ReservoirSampler sampler(options_.sample_size, options_.sample_seed);
  uint64_t count = 0;
  Status s;
  {
    RecordWriter writer(&env, staged, options_.split_block_bytes);
    s = writer.status();
    Key key;
    while (s.ok() && source->Next(&key)) {
      if (IsCancelled(cancel)) {
        s = Status::Cancelled("sharded sort cancelled during staging");
        break;
      }
      sampler.Add(key);
      ++count;
      s = writer.Append(key);
    }
    if (s.ok()) s = writer.Finish();
  }
  if (s.ok()) {
    s = SortStaged(&env, staged, /*remove_staged=*/true, shard_dir,
                   sampler.sample(), count, staging_watch.ElapsedSeconds(),
                   output_path, result);
  }
  if (!s.ok()) {
    CleanupScratch(staged, /*remove_staged=*/true, shard_dir);
    // An output this sort truncated is now torn and is removed; a file
    // the sort never opened is left alone.
    if (env.watched_created()) {
      TWRS_IGNORE_STATUS(env_->RemoveFile(output_path));
    }
  }
  return s;
}

Status ShardedSorter::SortFile(const std::string& input_path,
                               const std::string& output_path,
                               ShardedSortResult* result) {
  TWRS_RETURN_IF_ERROR(Validate());
  if (options_.shards == 1) {
    FileRecordSource source(env_, input_path, options_.sort.block_bytes);
    TWRS_RETURN_IF_ERROR(SortUnsharded(&source, output_path, result));
    return source.status();
  }

  Stopwatch staging_watch;
  // Resolve the I/O backend once for the whole job so staging, splitting
  // and every per-shard sub-sort run on the same Env (the sub-sorts get
  // io_backend cleared in SortStaged — they must keep this CountingEnv,
  // not re-resolve and bypass the byte accounting).
  Env* base_env = env_;
  if (options_.sort.io_backend != IoBackend::kDefault) {
    IoBackend resolved = IoBackend::kDefault;
    TWRS_RETURN_IF_ERROR(ResolveIoBackend(options_.sort.io_backend, &resolved));
    if (resolved != IoBackend::kDefault) {
      base_env = Env::Default(resolved);
    }
  }
  CountingEnv env(base_env);
  env.WatchPath(output_path);
  // Job-level byte progress comes from this outer env; the per-shard
  // sub-sorts below run with progress_bytes off so their nested
  // CountingEnvs don't double-count the same I/O.
  if (options_.sort.progress != nullptr) {
    env.MirrorBytesTo(options_.sort.progress->bytes_read_counter(),
                      options_.sort.progress->bytes_written_counter());
  }
  const CancelToken* cancel = options_.sort.cancel;
  const std::string shard_dir =
      options_.sort.temp_dir + "/" + UniqueScratchDirName("shard");
  TWRS_RETURN_IF_ERROR(env.CreateDirIfMissing(shard_dir));

  // Pass 0: sample straight off the file — no staging copy needed, the
  // partition pass below re-reads it.
  ReservoirSampler sampler(options_.sample_size, options_.sample_seed);
  uint64_t count = 0;
  Status s;
  {
    RecordReader reader(&env, input_path, options_.split_block_bytes);
    s = reader.status();
    while (s.ok()) {
      if (IsCancelled(cancel)) {
        s = Status::Cancelled("sharded sort cancelled during sampling");
        break;
      }
      Key key;
      bool eof;
      s = reader.Next(&key, &eof);
      if (!s.ok() || eof) break;
      sampler.Add(key);
      ++count;
    }
  }
  if (s.ok()) {
    s = SortStaged(&env, input_path, /*remove_staged=*/false, shard_dir,
                   sampler.sample(), count, staging_watch.ElapsedSeconds(),
                   output_path, result);
  }
  if (!s.ok()) {
    CleanupScratch(input_path, /*remove_staged=*/false, shard_dir);
    if (env.watched_created()) {
      TWRS_IGNORE_STATUS(env_->RemoveFile(output_path));  // torn
    }
  }
  return s;
}

Status ShardedSorter::SortStaged(CountingEnv* env,
                                 const std::string& staged_path,
                                 bool remove_staged,
                                 const std::string& shard_dir,
                                 const std::vector<Key>& sample,
                                 uint64_t input_records,
                                 double prior_seconds,
                                 const std::string& output_path,
                                 ShardedSortResult* result) {
  Stopwatch total_watch;
  Stopwatch phase_watch;
  const CancelToken* cancel = options_.sort.cancel;
  ShardedSortResult local;
  local.input_records = input_records;
  local.splitters = PickSplitters(sample, options_.shards);
  const size_t num_shards = local.splitters.size() + 1;
  local.shard_records.assign(num_shards, 0);

  // Partition pass: route every record to its range shard. Shard i covers
  // [splitter[i-1], splitter[i]) — upper_bound counts the splitters <= key,
  // so duplicate keys always land in one shard.
  std::vector<std::string> shard_paths(num_shards);
  {
    std::vector<std::unique_ptr<RecordWriter>> writers(num_shards);
    for (size_t i = 0; i < num_shards; ++i) {
      shard_paths[i] = shard_dir + "/shard_" + std::to_string(i);
      writers[i] = std::make_unique<RecordWriter>(
          env, shard_paths[i], options_.split_block_bytes);
      TWRS_RETURN_IF_ERROR(writers[i]->status());
    }
    RecordReader reader(env, staged_path, options_.split_block_bytes);
    TWRS_RETURN_IF_ERROR(reader.status());
    // Batched classification: read a block of keys, classify all of them
    // branchlessly against the splitters (simd::PartitionBySplitters),
    // then scatter each shard's keys to its writer in one bulk append.
    constexpr size_t kPartitionBatch = 4096;
    std::vector<Key> batch(kPartitionBatch);
    std::vector<uint32_t> bucket(kPartitionBatch);
    std::vector<std::vector<Key>> staged(num_shards);
    for (auto& s : staged) s.reserve(kPartitionBatch);
    for (;;) {
      if (IsCancelled(cancel)) {
        return Status::Cancelled("sharded sort cancelled during partition");
      }
      size_t got = 0;
      TWRS_RETURN_IF_ERROR(reader.NextBatch(batch.data(), batch.size(), &got));
      if (got == 0) break;
      simd::PartitionBySplitters(batch.data(), got, local.splitters.data(),
                                 local.splitters.size(), bucket.data());
      for (size_t i = 0; i < got; ++i) staged[bucket[i]].push_back(batch[i]);
      for (size_t s = 0; s < num_shards; ++s) {
        if (staged[s].empty()) continue;
        local.shard_records[s] += staged[s].size();
        TWRS_RETURN_IF_ERROR(
            writers[s]->AppendBatch(staged[s].data(), staged[s].size()));
        staged[s].clear();
      }
    }
    for (auto& writer : writers) TWRS_RETURN_IF_ERROR(writer->Finish());
  }
  if (remove_staged) TWRS_RETURN_IF_ERROR(env->RemoveFile(staged_path));
  local.split_seconds = prior_seconds + phase_watch.ElapsedSeconds();

  // Shard byte ranges of the output, known before any sort starts: shards
  // hold disjoint, increasing key ranges and the partition pass counted
  // their records exactly, so shard i's sorted bytes begin at the prefix
  // sum of the earlier shards. Each shard's final merge writes that range
  // directly (SortIntoRange) — no concatenation pass re-reads and
  // re-writes the output.
  std::vector<uint64_t> shard_offsets(num_shards, 0);
  for (size_t i = 1; i < num_shards; ++i) {
    shard_offsets[i] =
        shard_offsets[i - 1] + local.shard_records[i - 1] * kRecordBytes;
  }
  // Truncate-create the shared output exactly once, before any range
  // writer opens it; the ranges then extend it to its final size.
  {
    std::unique_ptr<RandomRWFile> out;
    TWRS_RETURN_IF_ERROR(env->NewRandomRWFile(output_path, &out));
    TWRS_RETURN_IF_ERROR(out->Close());
  }

  // A sort-level on_merge_begin would fire once per shard, while the
  // caller (e.g. SortService's lease downsize) wants one job-level signal
  // when run generation is over everywhere. Aggregate: count shards down
  // and fire the original callback once, with the shards' combined merge
  // footprint.
  const std::function<void(size_t)> job_on_merge_begin =
      options_.sort.on_merge_begin;
  auto merge_begin_remaining = std::make_shared<std::atomic<size_t>>(
      num_shards);
  auto merge_records_total = std::make_shared<std::atomic<uint64_t>>(0);

  // Concurrent per-shard sorts: each shard runs the complete external-sort
  // phase pipeline on the executor. Nested waits (a shard's own parallel
  // leaf merges on the same pool) are safe because TaskHandle::Wait is
  // work-helping.
  Executor* executor =
      options_.executor != nullptr ? options_.executor : &Executor::Shared();
  ThreadPool* pool = executor->pool();
  local.shard_results.assign(num_shards, ExternalSortResult());
  phase_watch.Reset();
  {
    std::vector<TaskHandle> handles(num_shards);
    for (size_t i = 0; i < num_shards; ++i) {
      ExternalSortOptions shard_options = options_.sort;
      shard_options.temp_dir = shard_dir;
      // Bytes are mirrored once by the caller's CountingEnv (see Sort /
      // SortFile); phase and record progress still flow through.
      shard_options.progress_bytes = false;
      // The backend was already resolved into that CountingEnv's base; a
      // sub-sort re-resolving it would swap out the counting layer.
      shard_options.io_backend = IoBackend::kDefault;
      if (shard_options.parallel.executor == nullptr) {
        shard_options.parallel.executor = executor;
      }
      if (job_on_merge_begin) {
        shard_options.on_merge_begin =
            [&job_on_merge_begin, merge_begin_remaining,
             merge_records_total](size_t merge_records) {
              merge_records_total->fetch_add(merge_records,
                                             std::memory_order_relaxed);
              if (merge_begin_remaining->fetch_sub(
                      1, std::memory_order_acq_rel) == 1) {
                job_on_merge_begin(static_cast<size_t>(
                    merge_records_total->load(std::memory_order_relaxed)));
              }
            };
      }
      MergeOutputRange range;
      range.positioned = true;
      range.offset = shard_offsets[i];
      range.length = local.shard_records[i] * kRecordBytes;
      ExternalSortResult* shard_result = &local.shard_results[i];
      const std::string shard_path = shard_paths[i];
      handles[i] = pool->Submit(
          [env, shard_options, shard_path, output_path, range, shard_result] {
            ExternalSorter sorter(env, shard_options);
            FileRecordSource shard_source(env, shard_path,
                                          shard_options.block_bytes);
            Status s = sorter.SortIntoRange(&shard_source, output_path, range,
                                            shard_result);
            if (s.ok()) s = shard_source.status();
            return s;
          });
    }
    // Collect every shard before reporting the first failure, so no task
    // still references local state when we unwind.
    Status first_error;
    for (TaskHandle& handle : handles) {
      Status s = handle.Wait();
      if (!s.ok() && first_error.ok()) first_error = std::move(s);
    }
    TWRS_RETURN_IF_ERROR(first_error);
  }
  local.sort_seconds = phase_watch.ElapsedSeconds();

  for (size_t i = 0; i < num_shards; ++i) {
    TWRS_RETURN_IF_ERROR(env->RemoveFile(shard_paths[i]));
  }
  TWRS_RETURN_IF_ERROR(env->RemoveDir(shard_dir));

  for (const ExternalSortResult& r : local.shard_results) {
    local.output_records += r.output_records;
  }
  if (local.output_records != local.input_records) {
    return Status::Corruption(
        "sharded sort lost records: in=" +
        std::to_string(local.input_records) +
        " out=" + std::to_string(local.output_records));
  }
  local.bytes_read = env->bytes_read();
  local.bytes_written = env->bytes_written();
  local.total_seconds = prior_seconds + total_watch.ElapsedSeconds();
  if (result != nullptr) *result = std::move(local);
  return Status::OK();
}

void ShardedSorter::CleanupScratch(const std::string& staged_path,
                                   bool remove_staged,
                                   const std::string& shard_dir) {
  // Statuses are deliberately ignored: this runs after a failure, on files
  // that may never have existed.
  if (remove_staged) TWRS_IGNORE_STATUS(env_->RemoveFile(staged_path));
  // Shard paths are deterministic, so remove them by name first: this
  // works on any Env, including ones that keep the default NotSupported
  // ListDir (where the tree removal below is a no-op).
  for (size_t i = 0; i < options_.shards; ++i) {
    TWRS_IGNORE_STATUS(
        env_->RemoveFile(shard_dir + "/shard_" + std::to_string(i)));
  }
  // The recursive removal catches what deterministic names cannot: the
  // nested sort_* scratch directory of a per-shard sort that failed
  // partway, with its run files inside.
  RemoveTreeBestEffort(env_, shard_dir);
}

}  // namespace twrs
