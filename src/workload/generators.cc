#include "workload/generators.h"

#include <algorithm>

#include "util/random.h"

namespace twrs {

namespace {

// Adds the paper's per-record +U[1,1000] noise to a base sequence (§5.2).
class NoisySource : public RecordSource {
 public:
  NoisySource(std::unique_ptr<RecordSource> base, uint64_t seed)
      : base_(std::move(base)), rng_(seed) {}

  bool Next(Key* key) override {
    if (!base_->Next(key)) return false;
    *key += static_cast<Key>(1 + rng_.Uniform(1000));
    return true;
  }

 private:
  std::unique_ptr<RecordSource> base_;
  Random rng_;
};

class SortedSource : public RecordSource {
 public:
  SortedSource(uint64_t n, Key stride) : n_(n), stride_(stride) {}

  bool Next(Key* key) override {
    if (i_ == n_) return false;
    *key = static_cast<Key>(i_++) * stride_;
    return true;
  }

 private:
  uint64_t n_;
  Key stride_;
  uint64_t i_ = 0;
};

class ReverseSortedSource : public RecordSource {
 public:
  ReverseSortedSource(uint64_t n, Key stride) : n_(n), stride_(stride) {}

  bool Next(Key* key) override {
    if (i_ == n_) return false;
    *key = static_cast<Key>(n_ - 1 - i_) * stride_;
    ++i_;
    return true;
  }

 private:
  uint64_t n_;
  Key stride_;
  uint64_t i_ = 0;
};

// Triangle wave (Fig 5.1c): `sections` alternating ascending and descending
// ramps, each spanning the full key range.
class AlternatingSource : public RecordSource {
 public:
  AlternatingSource(uint64_t n, uint64_t sections, Key stride)
      : n_(n),
        section_len_(std::max<uint64_t>(1, n / std::max<uint64_t>(1, sections))),
        stride_(stride) {}

  bool Next(Key* key) override {
    if (i_ == n_) return false;
    const uint64_t section = i_ / section_len_;
    const uint64_t pos = i_ % section_len_;
    // Scale the in-section position onto the full [0, n) key span.
    const uint64_t denominator = std::max<uint64_t>(1, section_len_ - 1);
    uint64_t level = pos * (n_ - 1) / denominator;
    if (section % 2 == 1) level = (n_ - 1) - level;  // descending section
    *key = static_cast<Key>(level) * stride_;
    ++i_;
    return true;
  }

 private:
  uint64_t n_;
  uint64_t section_len_;
  Key stride_;
  uint64_t i_ = 0;
};

class RandomSource : public RecordSource {
 public:
  RandomSource(uint64_t n, Key stride, uint64_t seed)
      : n_(n), range_(n * static_cast<uint64_t>(stride)), rng_(seed) {}

  bool Next(Key* key) override {
    if (i_ == n_) return false;
    *key = static_cast<Key>(rng_.Uniform(std::max<uint64_t>(1, range_)));
    ++i_;
    return true;
  }

 private:
  uint64_t n_;
  uint64_t range_;
  Random rng_;
  uint64_t i_ = 0;
};

// Interleaves a rising trend and a falling trend that *diverge* from a
// common split point (Fig 5.1e/f and the worked example of §4.5): the
// rising records walk up from the split, the falling ones walk down. With
// `up_every` = 2 the interleave is 1:1 (mixed balanced); with 4 it is 1:3
// (mixed imbalanced).
class MixedSource : public RecordSource {
 public:
  MixedSource(uint64_t n, uint64_t up_every, Key stride)
      : n_(n), up_every_(up_every), stride_(stride) {
    // The falling branch owns (up_every-1)/up_every of the records, hence
    // of the key span below the split; the rising branch covers the rest.
    const uint64_t down_records = n - n / up_every_;
    split_ = static_cast<Key>(down_records) * stride_;
  }

  bool Next(Key* key) override {
    if (i_ == n_) return false;
    if (i_ % up_every_ == 0) {
      *key = split_ + static_cast<Key>(up_count_++) * stride_;
    } else {
      *key = split_ - static_cast<Key>(++down_count_) * stride_;
    }
    ++i_;
    return true;
  }

 private:
  uint64_t n_;
  uint64_t up_every_;
  Key stride_;
  Key split_ = 0;
  uint64_t i_ = 0;
  uint64_t up_count_ = 0;
  uint64_t down_count_ = 0;
};

}  // namespace

const char* DatasetName(Dataset dataset) {
  switch (dataset) {
    case Dataset::kSorted:
      return "sorted";
    case Dataset::kReverseSorted:
      return "reverse-sorted";
    case Dataset::kAlternating:
      return "alternating";
    case Dataset::kRandom:
      return "random";
    case Dataset::kMixed:
      return "mixed";
    case Dataset::kMixedImbalanced:
      return "mixed-imbalanced";
  }
  return "?";
}

std::unique_ptr<RecordSource> MakeWorkload(Dataset dataset,
                                           const WorkloadOptions& options) {
  std::unique_ptr<RecordSource> base;
  switch (dataset) {
    case Dataset::kSorted:
      base = std::make_unique<SortedSource>(options.num_records,
                                            options.stride);
      break;
    case Dataset::kReverseSorted:
      base = std::make_unique<ReverseSortedSource>(options.num_records,
                                                   options.stride);
      break;
    case Dataset::kAlternating:
      base = std::make_unique<AlternatingSource>(
          options.num_records, options.sections, options.stride);
      break;
    case Dataset::kRandom:
      base = std::make_unique<RandomSource>(options.num_records,
                                            options.stride, options.seed);
      break;
    case Dataset::kMixed:
      base = std::make_unique<MixedSource>(options.num_records, 2,
                                           options.stride);
      break;
    case Dataset::kMixedImbalanced:
      base = std::make_unique<MixedSource>(options.num_records, 4,
                                           options.stride);
      break;
  }
  if (options.add_noise) {
    // Different seed stream than RandomSource so random data and its noise
    // are not correlated.
    base = std::make_unique<NoisySource>(std::move(base),
                                         options.seed ^ 0x5851f42d4c957f2dULL);
  }
  return base;
}

FileRecordSource::FileRecordSource(Env* env, const std::string& path,
                                   size_t block_bytes)
    : reader_(env, path, block_bytes) {}

bool FileRecordSource::Next(Key* key) {
  if (!reader_.status().ok()) {
    status_ = reader_.status();
    return false;
  }
  bool eof = false;
  status_ = reader_.Next(key, &eof);
  return status_.ok() && !eof;
}

const Status& FileRecordSource::status() const {
  return status_.ok() ? reader_.status() : status_;
}

Status WriteWorkloadToFile(Env* env, Dataset dataset,
                           const WorkloadOptions& options,
                           const std::string& path) {
  std::unique_ptr<RecordSource> source = MakeWorkload(dataset, options);
  RecordWriter writer(env, path);
  TWRS_RETURN_IF_ERROR(writer.status());
  Key key;
  while (source->Next(&key)) {
    TWRS_RETURN_IF_ERROR(writer.Append(key));
  }
  return writer.Finish();
}

}  // namespace twrs
