#ifndef TWRS_WORKLOAD_GENERATORS_H_
#define TWRS_WORKLOAD_GENERATORS_H_

#include <memory>
#include <string>

#include "core/record_source.h"
#include "io/env.h"
#include "io/record_io.h"
#include "util/status.h"

namespace twrs {

/// The six input distributions of the paper's evaluation (§5.2, Fig 5.1).
enum class Dataset {
  kSorted = 0,           ///< already sorted ascending
  kReverseSorted = 1,    ///< sorted descending (RS's worst case)
  kAlternating = 2,      ///< ascending/descending sections over the range
  kRandom = 3,           ///< uniform random
  kMixed = 4,            ///< 1:1 interleave of a rising and a falling trend
  kMixedImbalanced = 5,  ///< 1:3 interleave of rising and falling trends
};

inline constexpr int kNumDatasets = 6;

const char* DatasetName(Dataset dataset);

/// Workload parameters. Base keys are spaced `stride` apart so that the
/// paper's de-determinizing noise — a uniform value in [1, 1000] added to
/// every record (§5.2) — perturbs records without destroying the trend.
struct WorkloadOptions {
  uint64_t num_records = 0;

  /// Ascending + descending sections for kAlternating (the paper uses 50:
  /// 25 rising and 25 falling interleaved intervals).
  uint64_t sections = 50;

  uint64_t seed = 1;

  /// Add the +U[1,1000] per-record noise of §5.2.
  bool add_noise = true;

  /// Base key spacing.
  Key stride = 1000;
};

/// Creates a streaming generator for the given dataset. The same options
/// and seed always produce the same stream.
std::unique_ptr<RecordSource> MakeWorkload(Dataset dataset,
                                           const WorkloadOptions& options);

/// Streams records out of a record file.
class FileRecordSource : public RecordSource {
 public:
  FileRecordSource(Env* env, const std::string& path,
                   size_t block_bytes = kDefaultBlockBytes);

  bool Next(Key* key) override;

  /// I/O health of the underlying reader (Next returns false on error).
  const Status& status() const;

 private:
  RecordReader reader_;
  Status status_;
};

/// Materializes a workload into a record file (benchmark setup helper).
Status WriteWorkloadToFile(Env* env, Dataset dataset,
                           const WorkloadOptions& options,
                           const std::string& path);

}  // namespace twrs

#endif  // TWRS_WORKLOAD_GENERATORS_H_
