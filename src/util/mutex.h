#ifndef TWRS_UTIL_MUTEX_H_
#define TWRS_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace twrs {

class CondVar;

/// Annotated wrapper over std::mutex. Every mutex in the concurrent
/// modules is a twrs::Mutex so Clang's thread-safety analysis can check
/// the locking discipline (see util/thread_annotations.h); std::mutex
/// itself cannot carry the capability attribute. Non-recursive, like the
/// std::mutex it wraps.
class TWRS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() TWRS_ACQUIRE() { mu_.lock(); }
  void Unlock() TWRS_RELEASE() { mu_.unlock(); }
  bool TryLock() TWRS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;

  std::mutex mu_;
};

/// RAII lock over a Mutex — the std::lock_guard of the annotated world.
/// Scoped capability: the analysis knows the mutex is held from
/// construction to the end of the enclosing block.
class TWRS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) TWRS_ACQUIRE(mu) : mu_(mu) { mu->Lock(); }
  ~MutexLock() TWRS_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable paired with a Mutex. Wait takes the mutex
/// explicitly and is annotated TWRS_REQUIRES(mu), so waiting without the
/// lock is a compile-time error under the analysis. There is no
/// predicate-taking overload on purpose: the analysis cannot see lock
/// state inside a predicate lambda, so callers spell the standard form
///
///   while (!condition) cv_.Wait(mu_);
///
/// which keeps every guarded read of `condition` inside the annotated
/// function.
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks until notified, and reacquires `mu`
  /// before returning. Spurious wakeups are possible, as with
  /// std::condition_variable — always wait in a loop.
  void Wait(Mutex& mu) TWRS_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller's MutexLock keeps ownership
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace twrs

#endif  // TWRS_UTIL_MUTEX_H_
