#ifndef TWRS_UTIL_TABLE_PRINTER_H_
#define TWRS_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace twrs {

/// Renders aligned ASCII tables; the benchmark harness uses it to print the
/// same rows/series the paper's tables and figures report.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends one row; missing cells render empty, extra cells are dropped.
  void AddRow(std::vector<std::string> cells);

  /// Convenience for mixed string/numeric rows.
  void AddRow(std::initializer_list<std::string> cells);

  /// Writes the table (header, separator, rows) to the stream.
  void Print(std::ostream& os) const;

  /// Formats a double with the given precision, trimming trailing zeros.
  static std::string Num(double v, int precision = 3);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace twrs

#endif  // TWRS_UTIL_TABLE_PRINTER_H_
