#ifndef TWRS_UTIL_CANCEL_H_
#define TWRS_UTIL_CANCEL_H_

#include <atomic>

namespace twrs {

/// Cooperative cancellation flag shared between a job's owner and the code
/// running it. The owner calls Cancel(); the running code polls cancelled()
/// at loop granularity (per record or per merge step) and unwinds with
/// Status::Cancelled. One-way: a fired token never resets, so a token must
/// not be reused across jobs.
///
/// Polling is a relaxed atomic load — cheap enough for per-record loops —
/// and cancellation needs no stronger ordering: the only thing the flag
/// publishes is itself.
class CancelToken {
 public:
  CancelToken() = default;

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation. Idempotent and thread-safe.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// True once Cancel() has been called.
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// True when `token` is non-null and fired — the poll every cancellation
/// point uses, so "no token" and "token not fired" read the same way.
inline bool IsCancelled(const CancelToken* token) {
  return token != nullptr && token->cancelled();
}

}  // namespace twrs

#endif  // TWRS_UTIL_CANCEL_H_
