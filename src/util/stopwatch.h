#ifndef TWRS_UTIL_STOPWATCH_H_
#define TWRS_UTIL_STOPWATCH_H_

#include <chrono>

namespace twrs {

/// Wall-clock stopwatch used by the experiment harness to time the run
/// generation and merge phases separately, as Chapter 6 of the paper does.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace twrs

#endif  // TWRS_UTIL_STOPWATCH_H_
