#ifndef TWRS_UTIL_STATUS_H_
#define TWRS_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace twrs {

/// Operation outcome used throughout the library instead of exceptions.
///
/// A Status is either OK (the default) or carries an error code plus a
/// human-readable message. The style follows the RocksDB/LevelDB idiom:
/// functions that can fail return Status and write results through output
/// parameters.
///
/// The class is [[nodiscard]]: silently dropping any function's Status is
/// a compile-time diagnostic (-Wunused-result, an error under the tree's
/// -Werror). Intentional best-effort drops — cleanup on error paths,
/// destructors where the error is already sticky — must say so with
/// TWRS_IGNORE_STATUS below, so every remaining bare call is a bug.
class [[nodiscard]] Status {
 public:
  enum class Code {
    kOk = 0,
    kNotFound = 1,
    kCorruption = 2,
    kInvalidArgument = 3,
    kIOError = 4,
    kNotSupported = 5,
    kCancelled = 6,
    kBusy = 7,
  };

  /// Creates an OK status.
  Status() = default;

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(Code::kCancelled, std::move(msg));
  }
  static Status Busy(std::string msg) {
    return Status(Code::kBusy, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsCancelled() const { return code_ == Code::kCancelled; }
  bool IsBusy() const { return code_ == Code::kBusy; }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders e.g. "IO error: open failed" or "OK".
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_ = Code::kOk;
  std::string message_;
};

/// Propagates a non-OK status to the caller.
#define TWRS_RETURN_IF_ERROR(expr)              \
  do {                                          \
    ::twrs::Status _twrs_status = (expr);       \
    if (!_twrs_status.ok()) return _twrs_status; \
  } while (0)

namespace internal {
inline void IgnoreStatus(const Status&) {}
}  // namespace internal

/// Explicitly discards a Status, defeating [[nodiscard]]. Only for
/// deliberate best-effort drops — error-path cleanup over entries that may
/// already be gone, destructors whose error is already sticky in the
/// object — never as a shortcut past real error handling. Grep-able, so
/// every intentional drop in the tree can be audited.
#define TWRS_IGNORE_STATUS(expr) ::twrs::internal::IgnoreStatus((expr))

}  // namespace twrs

#endif  // TWRS_UTIL_STATUS_H_
