#ifndef TWRS_UTIL_RANDOM_H_
#define TWRS_UTIL_RANDOM_H_

#include <cstdint>

namespace twrs {

/// Deterministic, fast pseudo-random number generator (xorshift128+).
///
/// Experiments in the paper are repeated over fixed seeds; this generator
/// guarantees identical streams across platforms and standard-library
/// versions, which std::mt19937 distributions do not.
class Random {
 public:
  /// Seeds the generator. Any seed (including 0) is valid.
  explicit Random(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Returns a uniformly distributed 64-bit value.
  uint64_t Next();

  /// Returns a uniform value in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n);

  /// Returns a uniform value in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns a uniform double in [0, 1).
  double NextDouble();

  /// Returns true with probability 1/2.
  bool OneIn2() { return (Next() & 1) != 0; }

 private:
  uint64_t state0_;
  uint64_t state1_;
};

}  // namespace twrs

#endif  // TWRS_UTIL_RANDOM_H_
