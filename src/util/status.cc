#include "util/status.h"

namespace twrs {

std::string Status::ToString() const {
  const char* label = nullptr;
  switch (code_) {
    case Code::kOk:
      return "OK";
    case Code::kNotFound:
      label = "Not found";
      break;
    case Code::kCorruption:
      label = "Corruption";
      break;
    case Code::kInvalidArgument:
      label = "Invalid argument";
      break;
    case Code::kIOError:
      label = "IO error";
      break;
    case Code::kNotSupported:
      label = "Not supported";
      break;
    case Code::kCancelled:
      label = "Cancelled";
      break;
    case Code::kBusy:
      label = "Busy";
      break;
  }
  std::string out = label;
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace twrs
