#ifndef TWRS_UTIL_THREAD_ANNOTATIONS_H_
#define TWRS_UTIL_THREAD_ANNOTATIONS_H_

/// Wrappers over Clang's Thread Safety Analysis attributes.
///
/// The annotations turn the locking discipline of the concurrent modules
/// (exec, service, io) into compiler-checked invariants: a member declared
/// TWRS_GUARDED_BY(mu_) may only be touched while mu_ is held, a function
/// declared TWRS_REQUIRES(mu_) may only be called with mu_ held, and any
/// violation is a -Wthread-safety diagnostic (an error in CI, where the
/// static-analysis job builds with -Werror). The attributes bind to the
/// twrs::Mutex / twrs::MutexLock / twrs::CondVar shims in util/mutex.h —
/// raw std::mutex cannot carry capability attributes.
///
/// On compilers without the attributes (GCC) every macro expands to
/// nothing, so the annotated tree stays portable; only Clang performs the
/// analysis, and only when -Wthread-safety is on (the TWRS_THREAD_SAFETY
/// CMake option, default ON).
///
/// Macro names follow the modern capability-based spelling of
/// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define TWRS_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef TWRS_THREAD_ANNOTATION_
#define TWRS_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

/// Declares a type to be a capability (a lockable resource), e.g.
/// class TWRS_CAPABILITY("mutex") Mutex { ... };
#define TWRS_CAPABILITY(x) TWRS_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII type whose constructor acquires and destructor
/// releases a capability (MutexLock).
#define TWRS_SCOPED_CAPABILITY TWRS_THREAD_ANNOTATION_(scoped_lockable)

/// The annotated member may only be accessed while the given capability is
/// held.
#define TWRS_GUARDED_BY(x) TWRS_THREAD_ANNOTATION_(guarded_by(x))

/// The data pointed to by the annotated pointer may only be accessed while
/// the given capability is held (the pointer itself is unguarded).
#define TWRS_PT_GUARDED_BY(x) TWRS_THREAD_ANNOTATION_(pt_guarded_by(x))

/// The function may only be called while holding all the given
/// capabilities, which it does not release.
#define TWRS_REQUIRES(...) \
  TWRS_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// The function acquires the given capabilities and holds them on return.
#define TWRS_ACQUIRE(...) \
  TWRS_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// The function releases the given capabilities, which must be held on
/// entry.
#define TWRS_RELEASE(...) \
  TWRS_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// The function acquires the capability only when it returns the given
/// boolean value (TryLock).
#define TWRS_TRY_ACQUIRE(...) \
  TWRS_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// The function may only be called while NOT holding the given
/// capabilities — the annotation for functions that acquire them
/// internally, making self-deadlock a compile-time error.
#define TWRS_EXCLUDES(...) TWRS_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Asserts at runtime (and teaches the analysis) that the calling thread
/// already holds the capability.
#define TWRS_ASSERT_CAPABILITY(x) \
  TWRS_THREAD_ANNOTATION_(assert_capability(x))

/// The function returns a reference to the given capability.
#define TWRS_RETURN_CAPABILITY(x) TWRS_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Reserved for
/// code whose safety argument the analysis cannot express (none in the
/// tree today); every use must carry a comment saying why.
#define TWRS_NO_THREAD_SAFETY_ANALYSIS \
  TWRS_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // TWRS_UTIL_THREAD_ANNOTATIONS_H_
