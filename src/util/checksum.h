#ifndef TWRS_UTIL_CHECKSUM_H_
#define TWRS_UTIL_CHECKSUM_H_

#include <cstdint>

#include "core/record.h"

namespace twrs {

/// Order-independent checksum over a multiset of keys. Sorting must output
/// a permutation of its input; comparing the checksum of input and output
/// verifies that no record was lost, duplicated or altered, regardless of
/// order. Combines count, sum, and an xor of per-key mixes.
class KeyChecksum {
 public:
  void Add(Key key) {
    ++count_;
    sum_ += static_cast<uint64_t>(key);
    xor_mix_ ^= Mix(static_cast<uint64_t>(key));
  }

  uint64_t count() const { return count_; }

  friend bool operator==(const KeyChecksum& a, const KeyChecksum& b) {
    return a.count_ == b.count_ && a.sum_ == b.sum_ &&
           a.xor_mix_ == b.xor_mix_;
  }

 private:
  // SplitMix64 finalizer: decorrelates keys so that xor detects swaps that
  // plain sum/xor of raw keys would miss.
  static uint64_t Mix(uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t xor_mix_ = 0;
};

}  // namespace twrs

#endif  // TWRS_UTIL_CHECKSUM_H_
