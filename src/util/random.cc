#include "util/random.h"

namespace twrs {

namespace {

// SplitMix64 step, used to expand the user seed into generator state.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Random::Random(uint64_t seed) {
  uint64_t sm = seed;
  state0_ = SplitMix64(&sm);
  state1_ = SplitMix64(&sm);
  if (state0_ == 0 && state1_ == 0) state1_ = 1;  // xorshift dead state
}

uint64_t Random::Next() {
  uint64_t s1 = state0_;
  const uint64_t s0 = state1_;
  const uint64_t result = s0 + s1;
  state0_ = s0;
  s1 ^= s1 << 23;
  state1_ = s1 ^ s0 ^ (s1 >> 18) ^ (s0 >> 5);
  return result;
}

uint64_t Random::Uniform(uint64_t n) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Random::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(Uniform(span));
}

double Random::NextDouble() {
  // 53 random bits scaled into [0, 1).
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

}  // namespace twrs
