#ifndef TWRS_HEAP_DOUBLE_HEAP_H_
#define TWRS_HEAP_DOUBLE_HEAP_H_

#include <cstddef>
#include <vector>

#include "core/record.h"

namespace twrs {

/// Which of the two 2WRS heaps an operation addresses.
enum class HeapSide {
  kBottom,  ///< max-heap; emits the decreasing stream 4
  kTop,     ///< min-heap; emits the increasing stream 1
};

/// Returns "Bottom"/"Top" for logging and test diagnostics.
const char* HeapSideName(HeapSide side);

/// The two heaps of 2WRS stored in one contiguous array (§4.1, Figs 4.3–4.5).
///
/// The BottomHeap (a max-heap on keys) starts at slot 0 and grows upward;
/// the TopHeap (a min-heap) starts at the last slot and grows downward, so
/// either heap can grow at the expense of the other without any dynamic
/// allocation. Records tagged with a later run sort below all records of an
/// earlier run on both sides, which is how run boundaries are detected
/// (§3.3): when a side's top record belongs to a future run, so does
/// everything beneath it.
class DoubleHeap {
 public:
  /// Creates a double heap with room for `capacity` records in total.
  explicit DoubleHeap(size_t capacity);

  /// Total slots available.
  size_t capacity() const { return slots_.size(); }

  /// Records currently stored across both heaps.
  size_t size() const { return bottom_size_ + top_size_; }

  size_t SideSize(HeapSide side) const {
    return side == HeapSide::kBottom ? bottom_size_ : top_size_;
  }

  bool Full() const { return size() == capacity(); }
  bool Empty(HeapSide side) const { return SideSize(side) == 0; }

  /// Adds a record to the given heap. Returns false (and stores nothing)
  /// when the shared array is full.
  bool Push(HeapSide side, const TaggedRecord& record);

  /// Root of the given heap: the current-run extreme (max for Bottom, min
  /// for Top), with future-run records ranked after every current-run
  /// record. Requires the side to be non-empty.
  const TaggedRecord& Top(HeapSide side) const;

  /// Removes and returns the root of the given heap.
  TaggedRecord Pop(HeapSide side);

  /// Replaces the root of the given heap with `record` and restores the
  /// heap property, returning the evicted root. O(log n) with a single
  /// sift-down — the cap-aware push used by bounded top-K selection: once
  /// a selector's heap holds K records, every better candidate evicts the
  /// current boundary element (the root) without changing the heap size.
  /// Requires the side to be non-empty.
  TaggedRecord ReplaceTop(HeapSide side, const TaggedRecord& record);

  /// Removes an arbitrary leaf (the last slot) of the given heap in O(1).
  /// Used by the Balancing heuristic to migrate records between heaps.
  TaggedRecord PopLastLeaf(HeapSide side);

  /// True when the root of `side` is a record of run `run` (i.e. the side
  /// can emit for the current run).
  bool TopIsRun(HeapSide side, uint32_t run) const;

  /// Appends every stored record (both sides, unspecified order) to `*out`.
  /// Used by 2WRS to snapshot the heap contents when choosing the victim
  /// buffer's initial valid range. O(n).
  void AppendContents(std::vector<TaggedRecord>* out) const;

  /// Verifies the heap property on both sides; O(n). Test helper.
  bool IsValid() const;

 private:
  // Maps a heap-logical index to a slot in the shared array.
  size_t Slot(HeapSide side, size_t logical) const {
    return side == HeapSide::kBottom ? logical
                                     : slots_.size() - 1 - logical;
  }

  // True when `a` must be popped before `b` on the given side.
  static bool Before(HeapSide side, const TaggedRecord& a,
                     const TaggedRecord& b);

  void SiftUp(HeapSide side, size_t logical);
  void SiftDown(HeapSide side, size_t logical);

  std::vector<TaggedRecord> slots_;
  size_t bottom_size_ = 0;
  size_t top_size_ = 0;
};

}  // namespace twrs

#endif  // TWRS_HEAP_DOUBLE_HEAP_H_
