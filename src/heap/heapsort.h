#ifndef TWRS_HEAP_HEAPSORT_H_
#define TWRS_HEAP_HEAPSORT_H_

#include <functional>
#include <vector>

#include "heap/binary_heap.h"

namespace twrs {

/// Heapsort (§3.2): inserts all elements into a heap, then pops them back in
/// order. O(n log n) worst case. The paper's exposition (and this
/// implementation) uses a separate heap rather than sorting in place; the
/// run-generation algorithms build directly on the same heap operations.
template <typename T, typename Less = std::less<T>>
void HeapSort(std::vector<T>* values, Less less = Less()) {
  BinaryHeap<T, Less> heap(less);
  heap.Reserve(values->size());
  for (const T& v : *values) heap.Push(v);
  for (size_t i = 0; i < values->size(); ++i) (*values)[i] = heap.Pop();
}

}  // namespace twrs

#endif  // TWRS_HEAP_HEAPSORT_H_
