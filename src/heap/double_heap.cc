#include "heap/double_heap.h"

#include <cassert>
#include <utility>

namespace twrs {

const char* HeapSideName(HeapSide side) {
  return side == HeapSide::kBottom ? "Bottom" : "Top";
}

DoubleHeap::DoubleHeap(size_t capacity) : slots_(capacity) {}

bool DoubleHeap::Before(HeapSide side, const TaggedRecord& a,
                        const TaggedRecord& b) {
  if (a.run != b.run) return a.run < b.run;
  // Within a run the BottomHeap is a max-heap and the TopHeap a min-heap.
  return side == HeapSide::kBottom ? a.key > b.key : a.key < b.key;
}

bool DoubleHeap::Push(HeapSide side, const TaggedRecord& record) {
  if (Full()) return false;
  size_t& n = side == HeapSide::kBottom ? bottom_size_ : top_size_;
  slots_[Slot(side, n)] = record;
  ++n;
  SiftUp(side, n - 1);
  return true;
}

const TaggedRecord& DoubleHeap::Top(HeapSide side) const {
  assert(!Empty(side));
  return slots_[Slot(side, 0)];
}

TaggedRecord DoubleHeap::Pop(HeapSide side) {
  assert(!Empty(side));
  size_t& n = side == HeapSide::kBottom ? bottom_size_ : top_size_;
  TaggedRecord top = slots_[Slot(side, 0)];
  slots_[Slot(side, 0)] = slots_[Slot(side, n - 1)];
  --n;
  if (n > 0) SiftDown(side, 0);
  return top;
}

TaggedRecord DoubleHeap::ReplaceTop(HeapSide side, const TaggedRecord& record) {
  assert(!Empty(side));
  TaggedRecord evicted = slots_[Slot(side, 0)];
  slots_[Slot(side, 0)] = record;
  SiftDown(side, 0);
  return evicted;
}

TaggedRecord DoubleHeap::PopLastLeaf(HeapSide side) {
  assert(!Empty(side));
  size_t& n = side == HeapSide::kBottom ? bottom_size_ : top_size_;
  TaggedRecord leaf = slots_[Slot(side, n - 1)];
  --n;
  return leaf;
}

bool DoubleHeap::TopIsRun(HeapSide side, uint32_t run) const {
  return !Empty(side) && Top(side).run == run;
}

void DoubleHeap::SiftUp(HeapSide side, size_t logical) {
  while (logical > 0) {
    size_t parent = (logical - 1) / 2;
    TaggedRecord& child_rec = slots_[Slot(side, logical)];
    TaggedRecord& parent_rec = slots_[Slot(side, parent)];
    if (!Before(side, child_rec, parent_rec)) break;
    std::swap(child_rec, parent_rec);
    logical = parent;
  }
}

void DoubleHeap::SiftDown(HeapSide side, size_t logical) {
  const size_t n = SideSize(side);
  for (;;) {
    size_t best = logical;
    const size_t left = 2 * logical + 1;
    const size_t right = 2 * logical + 2;
    if (left < n &&
        Before(side, slots_[Slot(side, left)], slots_[Slot(side, best)])) {
      best = left;
    }
    if (right < n &&
        Before(side, slots_[Slot(side, right)], slots_[Slot(side, best)])) {
      best = right;
    }
    if (best == logical) return;
    std::swap(slots_[Slot(side, logical)], slots_[Slot(side, best)]);
    logical = best;
  }
}

void DoubleHeap::AppendContents(std::vector<TaggedRecord>* out) const {
  out->reserve(out->size() + size());
  for (size_t i = 0; i < bottom_size_; ++i) {
    out->push_back(slots_[Slot(HeapSide::kBottom, i)]);
  }
  for (size_t i = 0; i < top_size_; ++i) {
    out->push_back(slots_[Slot(HeapSide::kTop, i)]);
  }
}

bool DoubleHeap::IsValid() const {
  for (HeapSide side : {HeapSide::kBottom, HeapSide::kTop}) {
    const size_t n = SideSize(side);
    for (size_t i = 1; i < n; ++i) {
      if (Before(side, slots_[Slot(side, i)], slots_[Slot(side, (i - 1) / 2)])) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace twrs
