#ifndef TWRS_HEAP_BINARY_HEAP_H_
#define TWRS_HEAP_BINARY_HEAP_H_

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace twrs {

/// Array-backed binary heap (§3.1 of the paper).
///
/// `HigherPriority(a, b)` returns true when `a` must be popped before `b`;
/// passing a less-than predicate yields a min-heap, a greater-than predicate
/// a max-heap. The tree is stored level by level in a contiguous array with
/// the classic index mapping: parent(i) = (i-1)/2, children 2i+1 and 2i+2
/// (§3.1.2), giving O(log n) Push/Pop with zero allocation after Reserve.
template <typename T, typename HigherPriority>
class BinaryHeap {
 public:
  explicit BinaryHeap(HigherPriority prior = HigherPriority())
      : prior_(std::move(prior)) {}

  /// Pre-allocates capacity for `n` elements.
  void Reserve(size_t n) { slots_.reserve(n); }

  bool empty() const { return slots_.empty(); }
  size_t size() const { return slots_.size(); }

  /// Highest-priority element. Requires non-empty.
  const T& Top() const {
    assert(!slots_.empty());
    return slots_.front();
  }

  /// Adds an element ("upheap", §3.1.1).
  void Push(const T& value) {
    slots_.push_back(value);
    SiftUp(slots_.size() - 1);
  }

  /// Removes and returns the highest-priority element ("downheap", §3.1.1).
  T Pop() {
    assert(!slots_.empty());
    T top = slots_.front();
    slots_.front() = slots_.back();
    slots_.pop_back();
    if (!slots_.empty()) SiftDown(0);
    return top;
  }

  /// Removes an arbitrary leaf in O(1): the last array slot. Used by the
  /// Balancing heuristic to migrate records between heaps cheaply.
  T PopLastLeaf() {
    assert(!slots_.empty());
    T leaf = slots_.back();
    slots_.pop_back();
    return leaf;
  }

  /// Verifies the heap property everywhere; O(n). Test helper.
  bool IsValidHeap() const {
    for (size_t i = 1; i < slots_.size(); ++i) {
      if (prior_(slots_[i], slots_[(i - 1) / 2])) return false;
    }
    return true;
  }

  void Clear() { slots_.clear(); }

 private:
  void SiftUp(size_t i) {
    while (i > 0) {
      size_t parent = (i - 1) / 2;
      if (!prior_(slots_[i], slots_[parent])) break;
      std::swap(slots_[i], slots_[parent]);
      i = parent;
    }
  }

  void SiftDown(size_t i) {
    const size_t n = slots_.size();
    for (;;) {
      size_t best = i;
      size_t left = 2 * i + 1;
      size_t right = 2 * i + 2;
      if (left < n && prior_(slots_[left], slots_[best])) best = left;
      if (right < n && prior_(slots_[right], slots_[best])) best = right;
      if (best == i) return;
      std::swap(slots_[i], slots_[best]);
      i = best;
    }
  }

  std::vector<T> slots_;
  HigherPriority prior_;
};

}  // namespace twrs

#endif  // TWRS_HEAP_BINARY_HEAP_H_
