#include "model/snowplow.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace twrs {

SnowplowModel::SnowplowModel(SnowplowOptions options,
                             std::function<double(double)> data)
    : options_(options),
      density_(options.bins, 1.0),
      inflow_(options.bins, 0.0),
      bin_width_(1.0 / options.bins) {
  assert(options_.bins > 1);
  // k2 = integral of data(x) over [0, 1) by midpoint quadrature (Eq. 3.7).
  double k2 = 0.0;
  std::vector<double> raw(options_.bins);
  for (int i = 0; i < options_.bins; ++i) {
    const double x = (i + 0.5) * bin_width_;
    raw[i] = std::max(0.0, data(x));
    k2 += raw[i] * bin_width_;
  }
  assert(k2 > 0.0);
  // Inflow density rate: dm/dt(x) = (k1/k2)·data(x) (Eq. 3.11).
  for (int i = 0; i < options_.bins; ++i) {
    inflow_[i] = options_.k1 / k2 * raw[i];
  }
  SetInitialDensity([](double) { return 1.0; });
}

void SnowplowModel::SetInitialDensity(const std::function<double(double)>& m0) {
  double total = 0.0;
  for (int i = 0; i < options_.bins; ++i) {
    const double x = (i + 0.5) * bin_width_;
    density_[i] = std::max(0.0, m0(x));
    total += density_[i] * bin_width_;
  }
  assert(total > 0.0);
  // Normalize so the memory is exactly full (equality in Eq. 3.12).
  for (double& d : density_) d /= total;
}

namespace {

SnowplowModel::RunResult SimulateRunImpl(const SnowplowOptions& options,
                                         std::vector<double>* density,
                                         const std::vector<double>& inflow,
                                         double bin_width) {
  SnowplowModel::RunResult result;
  const int bins = static_cast<int>(density->size());
  for (int i = 0; i < bins; ++i) {
    // Time to clear bin i: the plow removes mass at rate k1 while the bin
    // itself keeps gaining inflow[i] per unit length:
    //   k1 * tau = (m_i + inflow_i * tau) * w
    const double mass = (*density)[i] * bin_width;
    const double gain = inflow[i] * bin_width;
    if (options.k1 <= gain) {
      // Inflow into a single bin outruns the plow; the model diverges. Guard
      // by treating the bin as taking a full memory's worth of time.
      result.duration += 1.0 / options.k1;
      (*density)[i] = 0.0;
      continue;
    }
    const double tau = mass / (options.k1 - gain);
    result.duration += tau;
    (*density)[i] = 0.0;
    // Everything else accretes inflow while the plow works this bin. The
    // portion of the current bin's own inflow is cleared with it.
    for (int j = 0; j < bins; ++j) {
      if (j != i) (*density)[j] += inflow[j] * tau;
    }
  }
  // Run length = path integral of m along p (Eq. in §3.6.1) = k1 * duration
  // (mass removed), relative to a unit memory.
  result.run_length = options.k1 * result.duration;
  return result;
}

}  // namespace

SnowplowModel::RunResult SnowplowModel::SimulateRun() {
  return SimulateRunImpl(options_, &density_, inflow_, bin_width_);
}

double SnowplowModel::DensityAt(double x) const {
  int i = static_cast<int>(x * options_.bins);
  i = std::clamp(i, 0, options_.bins - 1);
  return density_[i];
}

double SnowplowModel::TotalMemory() const {
  double total = 0.0;
  for (double d : density_) total += d * bin_width_;
  return total;
}

}  // namespace twrs
