#ifndef TWRS_MODEL_SNOWPLOW_H_
#define TWRS_MODEL_SNOWPLOW_H_

#include <functional>
#include <vector>

#include "util/status.h"

namespace twrs {

/// Parameters of the RS snowplow model (§3.6).
struct SnowplowOptions {
  /// Spatial discretization of the key space [0, 1).
  int bins = 2048;

  /// Throughput constant k1 (records output per unit time); Eq. 3.2.
  double k1 = 1.0;
};

/// Numerical solver for the replacement-selection differential model of
/// §3.6 (Eqs. 3.9–3.12): memory contents are a density m(x, t) over the key
/// space [0, 1); the output position p(t) — Knuth's snowplow — advances at
/// speed k1 / m(p), clearing the density it passes, while input data raises
/// the density everywhere at rate (k1/k2)·data(x).
///
/// The solver is event-driven and exact per bin: within one bin the plow
/// clears mass m·w against an inflow c·w, taking time tau = m·w/(k1 − c·w),
/// during which every other bin gains its own inflow. Total memory is
/// conserved exactly (inflow k1 equals throughput k1), so no step-size
/// tuning is needed — this replaces the thesis' adapted Runge-Kutta scheme
/// with an equivalent but unconditionally stable integrator.
///
/// For uniform data and the stable density m(x) = 2 − 2x the model yields
/// runs of length twice the memory (§3.6.1); starting from uniform memory
/// contents m(x) = 1 it converges to that solution within a few runs
/// (Fig 3.8).
class SnowplowModel {
 public:
  /// `data` is the input key density data(x) on [0, 1); it is normalized
  /// internally (k2 of Eq. 3.7 is computed by quadrature).
  SnowplowModel(SnowplowOptions options, std::function<double(double)> data);

  /// Sets the memory density at t = 0 and rescales it so total memory is 1.
  void SetInitialDensity(const std::function<double(double)>& m0);

  /// Result of simulating one run (one sweep of the plow across [0, 1)).
  struct RunResult {
    double duration = 0.0;    ///< time the sweep took
    double run_length = 0.0;  ///< records emitted relative to memory size
  };

  /// Advances the model by one full revolution of the plow.
  RunResult SimulateRun();

  /// Current memory density per bin (memory contents distribution).
  const std::vector<double>& density() const { return density_; }

  /// Density evaluated at x by nearest-bin lookup.
  double DensityAt(double x) const;

  /// Total memory in use: the integral of the density (Eq. 3.12 states it
  /// never exceeds 1; this solver conserves it exactly).
  double TotalMemory() const;

  /// The stable density 2 − 2x of §3.6.1 for uniform input, as a reference
  /// to compare convergence against (Fig 3.8).
  static double StableUniformDensity(double x) { return 2.0 - 2.0 * x; }

 private:
  SnowplowOptions options_;
  std::vector<double> density_;  ///< m(x) per bin
  std::vector<double> inflow_;   ///< (k1/k2)·data(x) per bin
  double bin_width_;
};

}  // namespace twrs

#endif  // TWRS_MODEL_SNOWPLOW_H_
