#ifndef TWRS_EXEC_EXECUTOR_H_
#define TWRS_EXEC_EXECUTOR_H_

#include <map>
#include <memory>
#include <string>

#include "exec/thread_pool.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace twrs {

/// Configuration of an Executor.
struct ExecutorOptions {
  /// Worker threads of a pool created without an explicit size;
  /// 0 = hardware concurrency (at least 2).
  size_t capacity = 0;
};

/// A lazily-initialized registry of named ThreadPools. One Executor is the
/// process-wide instance reached through Shared(): concurrent sorts borrow
/// its workers instead of each spawning a pool per Sort call, so a server
/// running many queries keeps a bounded thread count no matter how many
/// sorts are in flight. Nested waits are safe on a crowded shared pool
/// because TaskHandle::Wait is work-helping (see thread_pool.h).
///
/// Pools are created on first request and live as long as the Executor;
/// requesting the same name again returns the existing pool regardless of
/// the requested size, so the first caller fixes a pool's capacity.
class Executor {
 public:
  explicit Executor(ExecutorOptions options = ExecutorOptions());
  ~Executor() = default;

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// The default pool, created on first call with capacity() workers.
  ThreadPool* pool() { return GetPool(kDefaultPool, 0); }

  /// Gets or creates the pool registered under `name`. `threads` sizes the
  /// pool only on creation (0 = capacity()); an existing pool is returned
  /// as-is.
  ThreadPool* GetPool(const std::string& name, size_t threads = 0)
      TWRS_EXCLUDES(mu_);

  /// The resolved default-pool size (options.capacity, or the hardware
  /// concurrency when that is 0).
  size_t capacity() const TWRS_EXCLUDES(mu_);

  /// Reconfigures the default capacity. Succeeds only while no pool has
  /// been created yet; returns false (changing nothing) afterwards, since
  /// running pools cannot be resized.
  bool SetCapacity(size_t capacity) TWRS_EXCLUDES(mu_);

  /// True once any pool has been created.
  bool started() const TWRS_EXCLUDES(mu_);

  /// Load gauge across every registered pool: tasks submitted but not yet
  /// finished. Approximate (see ThreadPool::inflight_tasks); the admission
  /// and shard-planning layers use it to avoid oversubscribing the
  /// executor, not for exact accounting.
  size_t inflight_tasks() const TWRS_EXCLUDES(mu_);

  /// Number of pools currently registered.
  size_t pool_count() const TWRS_EXCLUDES(mu_);

  /// The process-wide shared executor. Never destroyed (leaked-singleton
  /// idiom, as Env::Default), so borrowed pools outlive every sort.
  static Executor& Shared();

  /// Configures Shared()'s default capacity; forwards to SetCapacity, so it
  /// only succeeds before the shared executor starts its first pool.
  static bool ConfigureShared(size_t capacity);

 private:
  static constexpr const char* kDefaultPool = "default";

  mutable Mutex mu_;
  ExecutorOptions options_ TWRS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<ThreadPool>> pools_
      TWRS_GUARDED_BY(mu_);
};

}  // namespace twrs

#endif  // TWRS_EXEC_EXECUTOR_H_
