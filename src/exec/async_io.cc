#include "exec/async_io.h"

#include <algorithm>
#include <cstring>

#include "obs/latency_histogram.h"
#include "util/stopwatch.h"

namespace twrs {

namespace {

/// Runs `fn`, recording its wall time into `histogram` when non-null.
template <typename Fn>
Status TimedIo(LatencyHistogram* histogram, Fn&& fn) {
  if (histogram == nullptr) return fn();
  Stopwatch watch;
  Status s = fn();
  histogram->RecordSeconds(watch.ElapsedSeconds());
  return s;
}

}  // namespace

// --------------------------------------------------------- AsyncWritableFile

AsyncWritableFile::AsyncWritableFile(std::unique_ptr<WritableFile> base,
                                     ThreadPool* pool, size_t buffer_bytes)
    : base_(std::move(base)), pool_(pool) {
  if (pool_ != nullptr) {
    const size_t n = std::max<size_t>(1, buffer_bytes);
    active_.resize(n);
    inflight_.resize(n);
  }
}

AsyncWritableFile::~AsyncWritableFile() {
  // An error surfacing this late has nowhere to go; callers that care
  // about the flush outcome call Close() themselves.
  TWRS_IGNORE_STATUS(Close());
}

Status AsyncWritableFile::WaitForInflight() {
  if (pending_.valid()) {
    Status s = pending_.Wait();
    pending_ = TaskHandle();
    if (status_.ok()) status_ = std::move(s);
  }
  return status_;
}

Status AsyncWritableFile::RotateAndFlush() {
  TWRS_RETURN_IF_ERROR(WaitForInflight());
  std::swap(active_, inflight_);
  inflight_used_ = active_used_;
  active_used_ = 0;
  // High priority: a flush stuck behind a level of long-running normal
  // tasks would make the next rotation wait (run it inline) and forfeit
  // the write overlap this decorator exists for.
  pending_ = pool_->Submit(
      [this] {
        return TimedIo(flush_histogram_, [this] {
          return base_->Append(inflight_.data(), inflight_used_);
        });
      },
      TaskPriority::kHigh);
  return Status::OK();
}

Status AsyncWritableFile::Append(const void* data, size_t n) {
  TWRS_RETURN_IF_ERROR(status_);
  if (closed_) {
    status_ = Status::InvalidArgument("Append on closed AsyncWritableFile");
    return status_;
  }
  if (pool_ == nullptr) {
    status_ =
        TimedIo(flush_histogram_, [&] { return base_->Append(data, n); });
    return status_;
  }
  const uint8_t* p = static_cast<const uint8_t*>(data);
  while (n > 0) {
    const size_t space = active_.size() - active_used_;
    const size_t take = std::min(space, n);
    std::memcpy(active_.data() + active_used_, p, take);
    active_used_ += take;
    p += take;
    n -= take;
    if (active_used_ == active_.size()) {
      Status s = RotateAndFlush();
      if (!s.ok()) {
        if (status_.ok()) status_ = s;
        return status_;
      }
    }
  }
  return Status::OK();
}

Status AsyncWritableFile::Sync() {
  TWRS_RETURN_IF_ERROR(status_);
  if (closed_) {
    status_ = Status::InvalidArgument("Sync on closed AsyncWritableFile");
    return status_;
  }
  if (pool_ != nullptr) {
    TWRS_RETURN_IF_ERROR(WaitForInflight());
    if (active_used_ > 0) {
      status_ = TimedIo(flush_histogram_, [this] {
        return base_->Append(active_.data(), active_used_);
      });
      active_used_ = 0;
      TWRS_RETURN_IF_ERROR(status_);
    }
  }
  status_ = base_->Sync();
  return status_;
}

Status AsyncWritableFile::Close() {
  if (closed_) return status_;
  closed_ = true;
  TWRS_IGNORE_STATUS(WaitForInflight());  // folded into status_ below
  if (status_.ok() && active_used_ > 0) {
    status_ = TimedIo(flush_histogram_, [this] {
      return base_->Append(active_.data(), active_used_);
    });
    active_used_ = 0;
  }
  Status close_status = base_->Close();
  if (status_.ok()) status_ = std::move(close_status);
  return status_;
}

// -------------------------------------------------- PrefetchingSequentialFile

PrefetchingSequentialFile::PrefetchingSequentialFile(
    std::unique_ptr<SequentialFile> base, size_t block_bytes,
    size_t prefetch_blocks)
    : base_(std::move(base)),
      block_bytes_(std::max<size_t>(1, block_bytes)),
      queue_(std::max<size_t>(1, prefetch_blocks)) {
  pump_ = std::thread([this] { Pump(); });
}

PrefetchingSequentialFile::~PrefetchingSequentialFile() {
  queue_.Close();  // unblocks a pump stalled on Push
  pump_.join();
}

void PrefetchingSequentialFile::Pump() {
  for (;;) {
    Block block;
    block.data.resize(block_bytes_);
    size_t got = 0;
    block.status = base_->Read(block.data.data(), block_bytes_, &got);
    block.data.resize(block.status.ok() ? got : 0);
    block.last = !block.status.ok() || got < block_bytes_;
    const bool last = block.last;
    if (!queue_.Push(std::move(block))) return;  // consumer went away
    if (last) return;
  }
}

bool PrefetchingSequentialFile::AdvanceBlock() {
  if (!error_.ok()) return false;
  if (current_.last) return false;  // EOF already delivered
  if (!queue_.Pop(&current_)) {
    current_.last = true;  // closed queue == EOF
    current_.data.clear();
    pos_ = 0;
    return false;
  }
  pos_ = 0;
  if (!current_.status.ok()) error_ = current_.status;
  return !current_.data.empty();
}

Status PrefetchingSequentialFile::Read(void* out, size_t n,
                                       size_t* bytes_read) {
  uint8_t* dst = static_cast<uint8_t*>(out);
  size_t total = 0;
  while (total < n) {
    const size_t avail = current_.data.size() - pos_;
    if (avail == 0) {
      if (AdvanceBlock()) continue;
      // A pending error must not masquerade as a short read — the
      // SequentialFile contract makes *bytes_read < n mean EOF, and a
      // consumer that stops there would silently truncate the stream. The
      // error therefore overrides any partial tail this call holds.
      if (!error_.ok()) return error_;
      break;  // EOF
    }
    const size_t take = std::min(avail, n - total);
    std::memcpy(dst + total, current_.data.data() + pos_, take);
    pos_ += take;
    total += take;
  }
  *bytes_read = total;
  return Status::OK();
}

Status PrefetchingSequentialFile::Skip(uint64_t n) {
  while (n > 0) {
    const size_t avail = current_.data.size() - pos_;
    if (avail == 0) {
      if (AdvanceBlock()) continue;
      if (!error_.ok()) return error_;
      return Status::OK();  // skipping past EOF is a no-op, as in MemEnv
    }
    const size_t take =
        static_cast<size_t>(std::min<uint64_t>(avail, n));
    pos_ += take;
    n -= take;
  }
  return Status::OK();
}

// ---------------------------------------------------------------- helpers

Status MakeAsyncRecordWriter(Env* env, const std::string& path,
                             size_t block_bytes, ThreadPool* pool,
                             size_t async_buffer_bytes,
                             std::unique_ptr<RecordWriter>* out,
                             LatencyHistogram* flush_histogram) {
  if (pool == nullptr || env->io_capabilities().async_appends) {
    // Natively async backends (IoUringEnv) already overlap Append with the
    // caller's compute; wrapping them would only add a copy and a pump
    // task for overlap the kernel provides.
    *out = std::make_unique<RecordWriter>(env, path, block_bytes);
  } else {
    std::unique_ptr<WritableFile> file;
    TWRS_RETURN_IF_ERROR(env->NewWritableFile(path, &file));
    auto async = std::make_unique<AsyncWritableFile>(std::move(file), pool,
                                                     async_buffer_bytes);
    async->set_flush_histogram(flush_histogram);
    *out = std::make_unique<RecordWriter>(std::move(async), block_bytes);
  }
  return (*out)->status();
}

}  // namespace twrs
