#ifndef TWRS_EXEC_THREAD_POOL_H_
#define TWRS_EXEC_THREAD_POOL_H_

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace twrs {

class ThreadPool;

/// Future-style handle to a task submitted to a ThreadPool. Wait() is
/// work-helping: if the task is still queued and no worker has claimed it,
/// the waiting thread runs it inline. This makes nested waits safe — a task
/// running on the pool may submit sub-tasks and wait on them without risking
/// deadlock when every worker is busy.
class TaskHandle {
 public:
  TaskHandle() = default;

  bool valid() const { return state_ != nullptr; }

  /// Blocks until the task has run (possibly running it on this thread) and
  /// returns its Status. Waiting on an invalid handle returns OK. Idempotent.
  Status Wait();

  /// True once the task has finished (non-blocking probe).
  bool done() const;

 private:
  friend class ThreadPool;

  struct State {
    Mutex mu;
    CondVar cv;
    enum Phase { kQueued, kRunning, kDone } phase TWRS_GUARDED_BY(mu) = kQueued;
    std::function<Status()> fn TWRS_GUARDED_BY(mu);
    Status result TWRS_GUARDED_BY(mu);

    /// Pool-load gauge this task decrements when it finishes (set by
    /// Submit). Decremented strictly before kDone is published: once a
    /// waiter can observe completion it may destroy the pool, and the
    /// runner may be a work-helping outsider the destructor never joins.
    /// Not guarded by `mu`: written once before the handle is shared, then
    /// owned by the single thread that wins the kQueued→kRunning claim.
    std::atomic<uint64_t>* inflight_gauge = nullptr;
  };

  explicit TaskHandle(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  /// Runs `state`'s function if nobody claimed it yet (worker and helper
  /// entry point).
  static void RunIfUnclaimed(const std::shared_ptr<State>& state);

  std::shared_ptr<State> state_;
};

/// Scheduling class for ThreadPool::Submit. High-priority tasks are short,
/// latency-sensitive work (e.g. AsyncWritableFile buffer flushes) that must
/// not queue behind a level of long-running normal tasks, or the producers
/// waiting on them degrade to inline execution.
enum class TaskPriority { kNormal, kHigh };

/// Fixed-size pool of worker threads executing Status-returning tasks in
/// submission order within each priority class (high before normal). The
/// destructor completes every submitted task before returning, so a pool
/// can be stack-allocated around a batch of work.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least one).
  explicit ThreadPool(size_t num_threads);

  /// Drains the queues, waits for running tasks and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` and returns a waitable handle to its completion.
  TaskHandle Submit(std::function<Status()> fn,
                    TaskPriority priority = TaskPriority::kNormal)
      TWRS_EXCLUDES(mu_);

  size_t num_threads() const { return threads_.size(); }

  /// Load gauge: tasks submitted but not yet finished (queued + running,
  /// including tasks a helper thread runs inline). Approximate by nature —
  /// the value can change before the caller acts on it — which is all a
  /// scheduler needs for admission and planning decisions.
  size_t inflight_tasks() const {
    return static_cast<size_t>(inflight_.load(std::memory_order_relaxed));
  }

 private:
  void WorkerLoop() TWRS_EXCLUDES(mu_);

  Mutex mu_;
  CondVar cv_;
  std::deque<std::shared_ptr<TaskHandle::State>> queue_ TWRS_GUARDED_BY(mu_);
  std::deque<std::shared_ptr<TaskHandle::State>> high_queue_
      TWRS_GUARDED_BY(mu_);
  bool stopping_ TWRS_GUARDED_BY(mu_) = false;
  /// Written only by the constructor, joined only by the destructor; never
  /// touched concurrently, so unguarded.
  std::vector<std::thread> threads_;
  std::atomic<uint64_t> inflight_{0};
};

}  // namespace twrs

#endif  // TWRS_EXEC_THREAD_POOL_H_
