#ifndef TWRS_EXEC_ASYNC_IO_H_
#define TWRS_EXEC_ASYNC_IO_H_

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "exec/blocking_queue.h"
#include "exec/thread_pool.h"
#include "io/env.h"
#include "io/record_io.h"
#include "util/status.h"

namespace twrs {

class LatencyHistogram;

/// Default size of each half of AsyncWritableFile's double buffer.
inline constexpr size_t kDefaultAsyncBufferBytes = 256 * 1024;

/// Double-buffered, background-flushed decorator around any WritableFile.
///
/// Append copies into the active buffer; when it fills, the buffer is sealed
/// and handed to the thread pool to flush while appends continue into the
/// other half, overlapping producer CPU work (heap pushes, merge
/// comparisons) with write I/O. At most one flush is in flight, so the
/// wrapped file always sees appends in order from one thread at a time.
///
/// A failing background Append is sticky: the error surfaces on the next
/// buffer rotation (or Close) and every later call returns it.
///
/// With a null pool the decorator degenerates to a synchronous pass-through.
class AsyncWritableFile : public WritableFile {
 public:
  /// Takes ownership of `base`; `pool` (if non-null) must outlive this file.
  AsyncWritableFile(std::unique_ptr<WritableFile> base, ThreadPool* pool,
                    size_t buffer_bytes = kDefaultAsyncBufferBytes);

  /// Closes the file, waiting for any in-flight flush.
  ~AsyncWritableFile() override;

  Status Append(const void* data, size_t n) override;

  /// Flushes both buffer halves to the wrapped file, then forwards the
  /// Sync so the bytes reach stable storage. Appends may continue after.
  Status Sync() override;

  Status Close() override;

  /// Records the wall time of every flush to the wrapped file (background
  /// buffer flushes, or each Append in synchronous pass-through mode) into
  /// `histogram`, which must outlive this file. Null (the default)
  /// disables timing entirely. Set before the first Append.
  void set_flush_histogram(LatencyHistogram* histogram) {
    flush_histogram_ = histogram;
  }

 private:
  /// Waits for the in-flight flush (if any) and folds its Status into
  /// `status_`.
  Status WaitForInflight();

  /// Seals the active buffer and submits it as a background flush.
  Status RotateAndFlush();

  std::unique_ptr<WritableFile> base_;
  ThreadPool* pool_;
  std::vector<uint8_t> active_;
  std::vector<uint8_t> inflight_;
  size_t active_used_ = 0;
  size_t inflight_used_ = 0;
  TaskHandle pending_;
  Status status_;
  LatencyHistogram* flush_histogram_ = nullptr;
  bool closed_ = false;
};

/// Read-ahead decorator around any SequentialFile. A dedicated pump thread
/// keeps up to `prefetch_blocks` blocks of `block_bytes` each in flight in a
/// bounded queue, so the consumer's Read mostly copies from memory while the
/// next blocks are being fetched. Designed for merge inputs, where every
/// stream is consumed strictly sequentially.
///
/// The pump runs on its own thread rather than a pool task: it lives as long
/// as the file, and parking long-running pumps on a fixed-size pool would
/// starve the short tasks (flushes, leaf merges) the pool exists for.
///
/// A read error from the wrapped file is delivered (sticky) in place of the
/// first Read that cannot be served entirely from blocks fetched before the
/// error — never as a short read, which the SequentialFile contract would
/// make indistinguishable from EOF.
class PrefetchingSequentialFile : public SequentialFile {
 public:
  /// Takes ownership of `base`.
  PrefetchingSequentialFile(std::unique_ptr<SequentialFile> base,
                            size_t block_bytes, size_t prefetch_blocks);

  /// Stops the pump thread; bytes not yet consumed are discarded.
  ~PrefetchingSequentialFile() override;

  Status Read(void* out, size_t n, size_t* bytes_read) override;

  /// Skips by consuming (the stream position lives in the pump's file).
  Status Skip(uint64_t n) override;

 private:
  struct Block {
    std::vector<uint8_t> data;
    Status status;
    bool last = false;  ///< no blocks follow (EOF or error)
  };

  void Pump();

  /// Makes the next block current; false when the stream is exhausted or a
  /// sticky error is pending.
  bool AdvanceBlock();

  std::unique_ptr<SequentialFile> base_;
  const size_t block_bytes_;
  BlockingQueue<Block> queue_;
  Block current_;
  size_t pos_ = 0;
  Status error_;
  std::thread pump_;
};

/// Creates `path` through `env` and returns a RecordWriter over it,
/// writing through an AsyncWritableFile on `pool` — or directly when
/// `pool` is null or `env` reports async_appends (a natively async
/// backend needs no pump thread). The single construction point for every
/// record stream that can be background-flushed (run sink streams, merge
/// outputs).
/// A non-null `flush_histogram` records the wall time of every background
/// flush (pool mode only); it must outlive the writer.
Status MakeAsyncRecordWriter(Env* env, const std::string& path,
                             size_t block_bytes, ThreadPool* pool,
                             size_t async_buffer_bytes,
                             std::unique_ptr<RecordWriter>* out,
                             LatencyHistogram* flush_histogram = nullptr);

}  // namespace twrs

#endif  // TWRS_EXEC_ASYNC_IO_H_
