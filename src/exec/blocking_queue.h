#ifndef TWRS_EXEC_BLOCKING_QUEUE_H_
#define TWRS_EXEC_BLOCKING_QUEUE_H_

#include <cstddef>
#include <deque>
#include <utility>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace twrs {

/// Bounded multi-producer multi-consumer FIFO queue. Push blocks while the
/// queue is full; Pop blocks while it is empty. Close wakes every waiter:
/// after it, Push fails immediately and Pop drains the remaining items
/// before failing. Used as the block conduit of PrefetchingSequentialFile
/// and as a general hand-off primitive for pipeline stages.
template <typename T>
class BlockingQueue {
 public:
  explicit BlockingQueue(size_t capacity) : capacity_(capacity ? capacity : 1) {}

  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  /// Blocks until there is room (or the queue is closed). Returns false,
  /// dropping `value`, iff the queue was closed.
  bool Push(T value) TWRS_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    while (!closed_ && items_.size() >= capacity_) not_full_.Wait(mu_);
    if (closed_) return false;
    items_.push_back(std::move(value));
    not_empty_.NotifyOne();
    return true;
  }

  /// Non-blocking Push. Returns false when full or closed.
  bool TryPush(T value) TWRS_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(value));
    not_empty_.NotifyOne();
    return true;
  }

  /// Blocks until an item is available (or the queue is closed and empty).
  /// Returns false iff the queue is closed and fully drained.
  bool Pop(T* out) TWRS_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    while (!closed_ && items_.empty()) not_empty_.Wait(mu_);
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    not_full_.NotifyOne();
    return true;
  }

  /// Non-blocking Pop. Returns false when nothing is available.
  bool TryPop(T* out) TWRS_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    not_full_.NotifyOne();
    return true;
  }

  /// Marks the queue closed and wakes all blocked producers and consumers.
  void Close() TWRS_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    closed_ = true;
    not_full_.NotifyAll();
    not_empty_.NotifyAll();
  }

  bool closed() const TWRS_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return closed_;
  }

  size_t size() const TWRS_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  mutable Mutex mu_;
  CondVar not_full_;
  CondVar not_empty_;
  std::deque<T> items_ TWRS_GUARDED_BY(mu_);
  const size_t capacity_;
  bool closed_ TWRS_GUARDED_BY(mu_) = false;
};

}  // namespace twrs

#endif  // TWRS_EXEC_BLOCKING_QUEUE_H_
