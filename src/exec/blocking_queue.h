#ifndef TWRS_EXEC_BLOCKING_QUEUE_H_
#define TWRS_EXEC_BLOCKING_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace twrs {

/// Bounded multi-producer multi-consumer FIFO queue. Push blocks while the
/// queue is full; Pop blocks while it is empty. Close wakes every waiter:
/// after it, Push fails immediately and Pop drains the remaining items
/// before failing. Used as the block conduit of PrefetchingSequentialFile
/// and as a general hand-off primitive for pipeline stages.
template <typename T>
class BlockingQueue {
 public:
  explicit BlockingQueue(size_t capacity) : capacity_(capacity ? capacity : 1) {}

  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  /// Blocks until there is room (or the queue is closed). Returns false,
  /// dropping `value`, iff the queue was closed.
  bool Push(T value) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking Push. Returns false when full or closed.
  bool TryPush(T value) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available (or the queue is closed and empty).
  /// Returns false iff the queue is closed and fully drained.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return true;
  }

  /// Non-blocking Pop. Returns false when nothing is available.
  bool TryPop(T* out) {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return true;
  }

  /// Marks the queue closed and wakes all blocked producers and consumers.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  const size_t capacity_;
  bool closed_ = false;
};

}  // namespace twrs

#endif  // TWRS_EXEC_BLOCKING_QUEUE_H_
