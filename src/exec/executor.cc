#include "exec/executor.h"

#include <algorithm>
#include <thread>

namespace twrs {

namespace {

size_t ResolvedCapacity(const ExecutorOptions& options) {
  if (options.capacity > 0) return options.capacity;
  return std::max<size_t>(2, std::thread::hardware_concurrency());
}

}  // namespace

Executor::Executor(ExecutorOptions options) : options_(options) {}

ThreadPool* Executor::GetPool(const std::string& name, size_t threads) {
  MutexLock lock(&mu_);
  auto it = pools_.find(name);
  if (it == pools_.end()) {
    const size_t n = threads > 0 ? threads : ResolvedCapacity(options_);
    it = pools_.emplace(name, std::make_unique<ThreadPool>(n)).first;
  }
  return it->second.get();
}

size_t Executor::capacity() const {
  MutexLock lock(&mu_);
  return ResolvedCapacity(options_);
}

bool Executor::SetCapacity(size_t capacity) {
  MutexLock lock(&mu_);
  if (!pools_.empty()) return false;
  options_.capacity = capacity;
  return true;
}

bool Executor::started() const {
  MutexLock lock(&mu_);
  return !pools_.empty();
}

size_t Executor::inflight_tasks() const {
  MutexLock lock(&mu_);
  size_t total = 0;
  for (const auto& entry : pools_) total += entry.second->inflight_tasks();
  return total;
}

size_t Executor::pool_count() const {
  MutexLock lock(&mu_);
  return pools_.size();
}

Executor& Executor::Shared() {
  // Never destroyed: borrowed pools must outlive any static-destruction
  // order, and exiting with parked workers is harmless (Env::Default idiom).
  static Executor* const kShared = new Executor();
  return *kShared;
}

bool Executor::ConfigureShared(size_t capacity) {
  return Shared().SetCapacity(capacity);
}

}  // namespace twrs
