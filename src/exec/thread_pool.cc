#include "exec/thread_pool.h"

#include <algorithm>
#include <utility>

namespace twrs {

void TaskHandle::RunIfUnclaimed(const std::shared_ptr<State>& state) {
  std::function<Status()> fn;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    if (state->phase != State::kQueued) return;
    state->phase = State::kRunning;
    fn = std::move(state->fn);
    state->fn = nullptr;
  }
  Status result = fn();
  // The gauge must drop before kDone is visible: a waiter observing
  // completion may destroy the pool that owns the gauge, and this thread
  // may be a work-helping outsider the pool's destructor does not join.
  if (state->inflight_gauge != nullptr) {
    state->inflight_gauge->fetch_sub(1, std::memory_order_relaxed);
    state->inflight_gauge = nullptr;
  }
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->result = std::move(result);
    state->phase = State::kDone;
  }
  state->cv.notify_all();
}

Status TaskHandle::Wait() {
  if (state_ == nullptr) return Status::OK();
  RunIfUnclaimed(state_);
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [this] { return state_->phase == State::kDone; });
  return state_->result;
}

bool TaskHandle::done() const {
  if (state_ == nullptr) return true;
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->phase == State::kDone;
}

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

TaskHandle ThreadPool::Submit(std::function<Status()> fn,
                              TaskPriority priority) {
  auto state = std::make_shared<TaskHandle::State>();
  state->fn = std::move(fn);
  state->inflight_gauge = &inflight_;
  inflight_.fetch_add(1, std::memory_order_relaxed);
  bool queued = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stopping_) {
      (priority == TaskPriority::kHigh ? high_queue_ : queue_)
          .push_back(state);
      queued = true;
    }
  }
  if (queued) {
    cv_.notify_one();
  } else {
    // A pool that is shutting down no longer accepts queue entries; run the
    // task on the caller so the handle still completes.
    TaskHandle::RunIfUnclaimed(state);
  }
  return TaskHandle(state);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::shared_ptr<TaskHandle::State> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] {
        return stopping_ || !queue_.empty() || !high_queue_.empty();
      });
      std::deque<std::shared_ptr<TaskHandle::State>>& source =
          !high_queue_.empty() ? high_queue_ : queue_;
      if (source.empty()) return;  // stopping_ and nothing left to run
      task = std::move(source.front());
      source.pop_front();
    }
    TaskHandle::RunIfUnclaimed(task);
  }
}

}  // namespace twrs
