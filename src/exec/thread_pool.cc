#include "exec/thread_pool.h"

#include <algorithm>
#include <utility>

namespace twrs {

void TaskHandle::RunIfUnclaimed(const std::shared_ptr<State>& state) {
  std::function<Status()> fn;
  {
    MutexLock lock(&state->mu);
    if (state->phase != State::kQueued) return;
    state->phase = State::kRunning;
    fn = std::move(state->fn);
    state->fn = nullptr;
  }
  Status result = fn();
  // The gauge must drop before kDone is visible: a waiter observing
  // completion may destroy the pool that owns the gauge, and this thread
  // may be a work-helping outsider the pool's destructor does not join.
  if (state->inflight_gauge != nullptr) {
    state->inflight_gauge->fetch_sub(1, std::memory_order_relaxed);
    state->inflight_gauge = nullptr;
  }
  {
    MutexLock lock(&state->mu);
    state->result = std::move(result);
    state->phase = State::kDone;
  }
  state->cv.NotifyAll();
}

Status TaskHandle::Wait() {
  if (state_ == nullptr) return Status::OK();
  RunIfUnclaimed(state_);
  MutexLock lock(&state_->mu);
  while (state_->phase != State::kDone) state_->cv.Wait(state_->mu);
  return state_->result;
}

bool TaskHandle::done() const {
  if (state_ == nullptr) return true;
  MutexLock lock(&state_->mu);
  return state_->phase == State::kDone;
}

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stopping_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& t : threads_) t.join();
}

TaskHandle ThreadPool::Submit(std::function<Status()> fn,
                              TaskPriority priority) {
  auto state = std::make_shared<TaskHandle::State>();
  {
    // Not yet shared with any other thread, but `fn` is guarded state and
    // the uncontended lock keeps the initialization analyzable.
    MutexLock lock(&state->mu);
    state->fn = std::move(fn);
  }
  state->inflight_gauge = &inflight_;
  inflight_.fetch_add(1, std::memory_order_relaxed);
  bool queued = false;
  {
    MutexLock lock(&mu_);
    if (!stopping_) {
      (priority == TaskPriority::kHigh ? high_queue_ : queue_)
          .push_back(state);
      queued = true;
    }
  }
  if (queued) {
    cv_.NotifyOne();
  } else {
    // A pool that is shutting down no longer accepts queue entries; run the
    // task on the caller so the handle still completes.
    TaskHandle::RunIfUnclaimed(state);
  }
  return TaskHandle(state);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::shared_ptr<TaskHandle::State> task;
    {
      MutexLock lock(&mu_);
      while (!stopping_ && queue_.empty() && high_queue_.empty()) {
        cv_.Wait(mu_);
      }
      std::deque<std::shared_ptr<TaskHandle::State>>& source =
          !high_queue_.empty() ? high_queue_ : queue_;
      if (source.empty()) return;  // stopping_ and nothing left to run
      task = std::move(source.front());
      source.pop_front();
    }
    TaskHandle::RunIfUnclaimed(task);
  }
}

}  // namespace twrs
