#include "stats/anova.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "stats/descriptive.h"
#include "stats/special_functions.h"

namespace twrs {

namespace {

// Weighted running sums for one cell.
struct Cell {
  double sum_wy = 0.0;
  double sum_w = 0.0;

  double MeanValue() const { return sum_w > 0.0 ? sum_wy / sum_w : 0.0; }
};

// Encodes the levels an observation takes on the factor subset `subset`
// into a single mixed-radix index.
uint64_t ComboIndex(const Observation& obs, const std::vector<int>& subset,
                    const std::vector<int>& levels_per_factor) {
  uint64_t index = 0;
  for (int f : subset) {
    index = index * static_cast<uint64_t>(levels_per_factor[f]) +
            static_cast<uint64_t>(obs.levels[f]);
  }
  return index;
}

// All subsets of `term`, each sorted, including the empty set.
std::vector<std::vector<int>> Subsets(const std::vector<int>& term) {
  std::vector<std::vector<int>> out;
  const size_t n = term.size();
  for (size_t mask = 0; mask < (size_t{1} << n); ++mask) {
    std::vector<int> subset;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (size_t{1} << i)) subset.push_back(term[i]);
    }
    out.push_back(std::move(subset));
  }
  return out;
}

}  // namespace

std::string AnovaTerm::Name(
    const std::vector<std::string>& factor_names) const {
  if (factors.size() == 1) return factor_names[factors[0]];
  std::string name = "(";
  for (size_t i = 0; i < factors.size(); ++i) {
    if (i > 0) name += "*";
    name += factor_names[factors[i]];
  }
  name += ")";
  return name;
}

Status FitAnova(const std::vector<Observation>& observations,
                const std::vector<int>& levels_per_factor,
                const std::vector<AnovaTerm>& terms, AnovaResult* result) {
  if (observations.empty()) {
    return Status::InvalidArgument("no observations");
  }
  const size_t num_factors = levels_per_factor.size();
  for (const Observation& obs : observations) {
    if (obs.levels.size() != num_factors) {
      return Status::InvalidArgument("observation arity mismatch");
    }
    for (size_t f = 0; f < num_factors; ++f) {
      if (obs.levels[f] < 0 || obs.levels[f] >= levels_per_factor[f]) {
        return Status::InvalidArgument("level out of range");
      }
    }
    if (obs.weight <= 0.0) {
      return Status::InvalidArgument("weights must be positive");
    }
  }
  for (const AnovaTerm& term : terms) {
    if (term.factors.empty()) {
      return Status::InvalidArgument("empty term");
    }
    std::vector<int> sorted = term.factors;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      return Status::InvalidArgument("duplicate factor in term");
    }
    for (int f : term.factors) {
      if (f < 0 || f >= static_cast<int>(num_factors)) {
        return Status::InvalidArgument("term references unknown factor");
      }
    }
  }

  // Grand (weighted) mean.
  double sum_w = 0.0;
  double sum_wy = 0.0;
  for (const Observation& obs : observations) {
    sum_w += obs.weight;
    sum_wy += obs.weight * obs.y;
  }
  const double grand_mean = sum_wy / sum_w;

  // Cell means for every factor subset any term needs.
  std::map<std::vector<int>, std::map<uint64_t, Cell>> means;
  for (const AnovaTerm& term : terms) {
    for (std::vector<int>& subset : Subsets(term.factors)) {
      if (subset.empty()) continue;
      means.emplace(std::move(subset), std::map<uint64_t, Cell>{});
    }
  }
  for (auto& [subset, cells] : means) {
    for (const Observation& obs : observations) {
      Cell& cell = cells[ComboIndex(obs, subset, levels_per_factor)];
      cell.sum_wy += obs.weight * obs.y;
      cell.sum_w += obs.weight;
    }
  }

  // Per-term effects via inclusion-exclusion over subsets of the term, and
  // per-observation fitted values.
  AnovaResult local;
  local.grand_mean = grand_mean;
  std::vector<double> fitted(observations.size(), grand_mean);
  for (const AnovaTerm& term : terms) {
    std::vector<int> sorted = term.factors;
    std::sort(sorted.begin(), sorted.end());
    const auto subsets = Subsets(sorted);
    double ss = 0.0;
    for (size_t i = 0; i < observations.size(); ++i) {
      const Observation& obs = observations[i];
      double effect = 0.0;
      for (const std::vector<int>& subset : subsets) {
        const double sign =
            ((sorted.size() - subset.size()) % 2 == 0) ? 1.0 : -1.0;
        double mean;
        if (subset.empty()) {
          mean = grand_mean;
        } else {
          mean = means[subset]
                     .at(ComboIndex(obs, subset, levels_per_factor))
                     .MeanValue();
        }
        effect += sign * mean;
      }
      ss += obs.weight * effect * effect;
      fitted[i] += effect;
    }
    int df = 1;
    for (int f : sorted) df *= levels_per_factor[f] - 1;
    std::vector<std::string> default_names(num_factors);
    for (size_t f = 0; f < num_factors; ++f) {
      default_names[f] = "F" + std::to_string(f);
    }
    AnovaRow row;
    row.name = term.Name(default_names);
    row.ss = ss;
    row.df = df;
    row.ms = df > 0 ? ss / df : 0.0;
    local.rows.push_back(row);
  }

  // Residual.
  double ss_error = 0.0;
  double ss_total = 0.0;
  for (size_t i = 0; i < observations.size(); ++i) {
    const Observation& obs = observations[i];
    const double r = obs.y - fitted[i];
    ss_error += obs.weight * r * r;
    const double d = obs.y - grand_mean;
    ss_total += obs.weight * d * d;
  }
  int df_model = 0;
  for (const AnovaRow& row : local.rows) df_model += row.df;
  const int df_error =
      static_cast<int>(observations.size()) - 1 - df_model;
  local.ss_error = ss_error;
  local.df_error = df_error;
  local.ms_error = df_error > 0 ? ss_error / df_error : 0.0;
  local.ss_total = ss_total;
  local.r_squared = ss_total > 0.0 ? 1.0 - ss_error / ss_total : 1.0;
  local.sigma = std::sqrt(std::max(0.0, local.ms_error));
  local.cv_percent =
      grand_mean != 0.0 ? 100.0 * local.sigma / std::fabs(grand_mean) : 0.0;

  // F tests and observed power (alpha = 0.05).
  for (AnovaRow& row : local.rows) {
    if (local.ms_error > 0.0 && df_error > 0) {
      row.f = row.ms / local.ms_error;
      row.significance = 1.0 - FCdf(row.f, row.df, df_error);
      const double lambda = row.ss / local.ms_error;
      const double f_crit = FQuantile(0.95, row.df, df_error);
      row.power = 1.0 - NoncentralFCdf(f_crit, row.df, df_error, lambda);
    } else {
      // Zero residual variance (e.g. the deterministic sorted-input model):
      // any non-zero effect is trivially significant.
      const bool nonzero = row.ss > 1e-12;
      row.f = nonzero ? std::numeric_limits<double>::infinity() : 0.0;
      row.significance = nonzero ? 0.0 : 1.0;
      row.power = nonzero ? 1.0 : 0.0;
    }
  }
  *result = std::move(local);
  return Status::OK();
}

Status ApplyWlsWeights(std::vector<Observation>* observations, int factor,
                       int num_levels) {
  if (num_levels <= 0) return Status::InvalidArgument("num_levels");
  std::vector<std::vector<double>> groups(num_levels);
  for (const Observation& obs : *observations) {
    if (factor < 0 || factor >= static_cast<int>(obs.levels.size())) {
      return Status::InvalidArgument("factor out of range");
    }
    const int level = obs.levels[factor];
    if (level < 0 || level >= num_levels) {
      return Status::InvalidArgument("level out of range");
    }
    groups[level].push_back(obs.y);
  }
  std::vector<double> weights(num_levels, 0.0);
  double max_weight = 0.0;
  for (int l = 0; l < num_levels; ++l) {
    const double var = SampleVariance(groups[l]);
    if (var > 0.0) {
      weights[l] = 1.0 / var;
      max_weight = std::max(max_weight, weights[l]);
    }
  }
  if (max_weight == 0.0) max_weight = 1.0;
  for (double& w : weights) {
    if (w == 0.0) w = max_weight;  // zero-variance level: most trusted
  }
  for (Observation& obs : *observations) {
    obs.weight = weights[obs.levels[factor]];
  }
  return Status::OK();
}

std::vector<Observation> CombineFactors(
    const std::vector<Observation>& observations,
    const std::vector<int>& factors, const std::vector<int>& levels_per_factor,
    int* num_levels) {
  int combined_levels = 1;
  for (int f : factors) combined_levels *= levels_per_factor[f];
  std::vector<Observation> out;
  out.reserve(observations.size());
  for (const Observation& obs : observations) {
    int index = 0;
    for (int f : factors) {
      index = index * levels_per_factor[f] + obs.levels[f];
    }
    Observation combined;
    combined.levels = {index};
    combined.y = obs.y;
    combined.weight = obs.weight;
    out.push_back(std::move(combined));
  }
  if (num_levels != nullptr) *num_levels = combined_levels;
  return out;
}

}  // namespace twrs
