#ifndef TWRS_STATS_ANOVA_H_
#define TWRS_STATS_ANOVA_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace twrs {

/// One experimental observation: the level taken by each factor, plus the
/// response value. `weight` supports the WLS estimation of §5.2 (1.0 = MLS).
struct Observation {
  std::vector<int> levels;
  double y = 0.0;
  double weight = 1.0;
};

/// A model term: a main effect ({factor}) or an interaction ({f1, f2, ...}).
struct AnovaTerm {
  std::vector<int> factors;

  /// Display name, e.g. "beta" or "(beta*gamma)".
  std::string Name(const std::vector<std::string>& factor_names) const;
};

/// One row of the ANOVA table (as in Tables 5.2–5.11 of the paper).
struct AnovaRow {
  std::string name;
  double ss = 0.0;      ///< sum of squares
  int df = 0;           ///< degrees of freedom
  double ms = 0.0;      ///< mean sum of squares
  double f = 0.0;       ///< F statistic
  double significance = 1.0;  ///< p-value of the F test
  double power = 0.0;   ///< observed power at alpha = 0.05
};

/// Fitted fixed-effects factorial ANOVA model.
struct AnovaResult {
  std::vector<AnovaRow> rows;
  double ss_error = 0.0;
  int df_error = 0;
  double ms_error = 0.0;
  double ss_total = 0.0;
  double r_squared = 0.0;   ///< share of variance explained by the model
  double sigma = 0.0;       ///< sqrt(MS_error)
  double cv_percent = 0.0;  ///< 100 * sigma / grand mean
  double grand_mean = 0.0;
};

/// Fits a fixed-effects factorial ANOVA (Appendix B) over a balanced (or
/// weight-balanced) crossed design.
///
/// `levels_per_factor[i]` is the number of levels of factor i; every
/// observation's levels must be within range. `terms` selects the effects
/// included in the model (main effects and interactions); everything not
/// modeled lands in the residual. Effects are estimated by (weighted) cell
/// means with the usual sum-to-zero constraints; each term's SS comes from
/// the inclusion-exclusion (Möbius) expansion of its cell means, which for
/// balanced designs reproduces the classical orthogonal decomposition.
Status FitAnova(const std::vector<Observation>& observations,
                const std::vector<int>& levels_per_factor,
                const std::vector<AnovaTerm>& terms, AnovaResult* result);

/// Sets each observation's weight to 1/Var(y | level of `factor`), the WLS
/// weighting the paper applies when homoscedasticity fails across buffer
/// sizes (§5.2.5–§5.2.6). Levels whose variance is ~0 get the largest
/// finite weight observed.
Status ApplyWlsWeights(std::vector<Observation>* observations, int factor,
                       int num_levels);

/// Rewrites observations so that the cross product of `factors` becomes a
/// single factor (level = mixed-radix index), for running Tukey comparisons
/// on interactions. Returns the combined level count via *num_levels.
std::vector<Observation> CombineFactors(
    const std::vector<Observation>& observations,
    const std::vector<int>& factors, const std::vector<int>& levels_per_factor,
    int* num_levels);

}  // namespace twrs

#endif  // TWRS_STATS_ANOVA_H_
