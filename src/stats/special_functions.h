#ifndef TWRS_STATS_SPECIAL_FUNCTIONS_H_
#define TWRS_STATS_SPECIAL_FUNCTIONS_H_

namespace twrs {

/// Special functions backing the ANOVA machinery of Appendix B. All are
/// implemented from first principles (no external math library): the F-test
/// needs the regularized incomplete beta, the power column needs the
/// noncentral F, and Tukey's test needs the studentized range distribution.

/// Regularized incomplete beta function I_x(a, b) for a, b > 0 and x in
/// [0, 1], by the Lentz continued-fraction expansion.
double RegularizedIncompleteBeta(double a, double b, double x);

/// Regularized lower incomplete gamma P(a, x) (series / continued fraction).
double RegularizedLowerGamma(double a, double x);

/// Standard normal density and distribution function.
double NormalPdf(double z);
double NormalCdf(double z);

/// CDF of the F distribution with (d1, d2) degrees of freedom.
double FCdf(double f, double d1, double d2);

/// Quantile of the F distribution (inverse of FCdf in f), by bisection.
double FQuantile(double p, double d1, double d2);

/// CDF of the noncentral F distribution with noncentrality lambda, via the
/// Poisson-weighted incomplete-beta series. Used for observed power.
double NoncentralFCdf(double f, double d1, double d2, double lambda);

/// CDF of the studentized range distribution with `k` groups and `df` error
/// degrees of freedom (df <= 0 or very large selects the df = infinity
/// form), by numerical integration. Used for Tukey HSD p-values.
double StudentizedRangeCdf(double q, int k, double df);

}  // namespace twrs

#endif  // TWRS_STATS_SPECIAL_FUNCTIONS_H_
