#include "stats/special_functions.h"

#include <cmath>

namespace twrs {

namespace {

// Continued-fraction core of the incomplete beta (modified Lentz method).
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIterations = 300;
  constexpr double kEpsilon = 3.0e-14;
  constexpr double kTiny = 1.0e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEpsilon) break;
  }
  return h;
}

}  // namespace

double RegularizedIncompleteBeta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
                          std::lgamma(b) + a * std::log(x) +
                          b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  // Use the expansion that converges fastest.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double RegularizedLowerGamma(double a, double x) {
  if (x <= 0.0) return 0.0;
  if (x < a + 1.0) {
    // Series expansion.
    double term = 1.0 / a;
    double sum = term;
    double ap = a;
    for (int n = 0; n < 500; ++n) {
      ap += 1.0;
      term *= x / ap;
      sum += term;
      if (std::fabs(term) < std::fabs(sum) * 1e-15) break;
    }
    return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
  }
  // Continued fraction for the upper gamma Q(a, x); P = 1 - Q.
  constexpr double kTiny = 1.0e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 1e-15) break;
  }
  const double q = std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
  return 1.0 - q;
}

double NormalPdf(double z) {
  constexpr double kInvSqrt2Pi = 0.3989422804014327;
  return kInvSqrt2Pi * std::exp(-0.5 * z * z);
}

double NormalCdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double FCdf(double f, double d1, double d2) {
  if (f <= 0.0) return 0.0;
  const double x = d1 * f / (d1 * f + d2);
  return RegularizedIncompleteBeta(d1 / 2.0, d2 / 2.0, x);
}

double FQuantile(double p, double d1, double d2) {
  if (p <= 0.0) return 0.0;
  double lo = 0.0;
  double hi = 1.0;
  while (FCdf(hi, d1, d2) < p && hi < 1e12) hi *= 2.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (FCdf(mid, d1, d2) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double NoncentralFCdf(double f, double d1, double d2, double lambda) {
  if (f <= 0.0) return 0.0;
  if (lambda <= 0.0) return FCdf(f, d1, d2);
  const double x = d1 * f / (d1 * f + d2);
  // Poisson(lambda/2)-weighted mixture of central incomplete betas with the
  // first shape parameter shifted by the mixture index.
  const double half = lambda / 2.0;
  double log_weight = -half;  // log of Poisson pmf at j = 0
  double cdf = 0.0;
  double cumulative_weight = 0.0;
  for (int j = 0; j < 10000; ++j) {
    const double weight = std::exp(log_weight);
    cdf += weight * RegularizedIncompleteBeta(d1 / 2.0 + j, d2 / 2.0, x);
    cumulative_weight += weight;
    if (1.0 - cumulative_weight < 1e-12 && j > half) break;
    log_weight += std::log(half) - std::log(j + 1.0);
  }
  return cdf;
}

namespace {

// P(range of k standard normals < q), the df = infinity studentized range.
double RangeCdfInfiniteDf(double q, int k) {
  if (q <= 0.0) return 0.0;
  // k * Integral over z of phi(z) * (Phi(z) - Phi(z - q))^(k-1).
  constexpr double kLo = -8.5;
  const double hi = 8.5;
  const int steps = 2000;  // Simpson's rule (even count)
  const double h = (hi - kLo) / steps;
  double sum = 0.0;
  for (int i = 0; i <= steps; ++i) {
    const double z = kLo + i * h;
    const double inner = NormalCdf(z) - NormalCdf(z - q);
    const double f =
        NormalPdf(z) * std::pow(std::max(0.0, inner), k - 1);
    const double weight = (i == 0 || i == steps) ? 1.0 : (i % 2 == 1 ? 4.0 : 2.0);
    sum += weight * f;
  }
  return std::min(1.0, k * sum * h / 3.0);
}

// Density of s = sqrt(chi2_df / df), the scale factor of the studentized
// range for finite df.
double ChiScalePdf(double s, double df) {
  if (s <= 0.0) return 0.0;
  const double half_df = df / 2.0;
  const double log_pdf = std::log(2.0) + half_df * std::log(half_df) -
                         std::lgamma(half_df) + (df - 1.0) * std::log(s) -
                         half_df * s * s;
  return std::exp(log_pdf);
}

}  // namespace

double StudentizedRangeCdf(double q, int k, double df) {
  if (q <= 0.0) return 0.0;
  if (k < 2) return 1.0;
  if (df <= 0.0 || df > 5000.0) return RangeCdfInfiniteDf(q, k);
  // Integrate over the chi scale: P(Q < q) = E_s[ P_inf(q * s) ].
  const double lo = 1e-4;
  const double hi = 4.0;
  const int steps = 160;  // Simpson's rule
  const double h = (hi - lo) / steps;
  double sum = 0.0;
  for (int i = 0; i <= steps; ++i) {
    const double s = lo + i * h;
    const double f = ChiScalePdf(s, df) * RangeCdfInfiniteDf(q * s, k);
    const double weight = (i == 0 || i == steps) ? 1.0 : (i % 2 == 1 ? 4.0 : 2.0);
    sum += weight * f;
  }
  return std::min(1.0, sum * h / 3.0);
}

}  // namespace twrs
