#include "stats/tukey.h"

#include <algorithm>
#include <cmath>

#include "stats/special_functions.h"

namespace twrs {

std::vector<int> TukeyResult::BestLevels(double alpha) const {
  std::vector<int> best;
  if (level_means.empty()) return best;
  int min_level = 0;
  for (size_t l = 1; l < level_means.size(); ++l) {
    if (level_means[l] < level_means[min_level]) {
      min_level = static_cast<int>(l);
    }
  }
  for (size_t l = 0; l < level_means.size(); ++l) {
    if (static_cast<int>(l) == min_level ||
        p_values[min_level][l] > alpha) {
      best.push_back(static_cast<int>(l));
    }
  }
  return best;
}

Status TukeyHSD(const std::vector<Observation>& observations, int factor,
                int num_levels, double ms_error, double df_error,
                TukeyResult* result) {
  if (num_levels < 2) {
    return Status::InvalidArgument("need at least two levels");
  }
  TukeyResult local;
  local.level_means.assign(num_levels, 0.0);
  local.level_counts.assign(num_levels, 0);
  for (const Observation& obs : observations) {
    if (factor < 0 || factor >= static_cast<int>(obs.levels.size())) {
      return Status::InvalidArgument("factor out of range");
    }
    const int level = obs.levels[factor];
    if (level < 0 || level >= num_levels) {
      return Status::InvalidArgument("level out of range");
    }
    local.level_means[level] += obs.y;
    ++local.level_counts[level];
  }
  for (int l = 0; l < num_levels; ++l) {
    if (local.level_counts[l] == 0) {
      return Status::InvalidArgument("empty level " + std::to_string(l));
    }
    local.level_means[l] /= static_cast<double>(local.level_counts[l]);
  }

  local.p_values.assign(num_levels, std::vector<double>(num_levels, 1.0));
  for (int i = 0; i < num_levels; ++i) {
    for (int j = i + 1; j < num_levels; ++j) {
      double p;
      if (ms_error <= 0.0) {
        // Deterministic response (zero residual variance): any difference
        // in means is significant.
        p = local.level_means[i] == local.level_means[j] ? 1.0 : 0.0;
      } else {
        // Tukey-Kramer standard error for unequal cell sizes.
        const double ni = static_cast<double>(local.level_counts[i]);
        const double nj = static_cast<double>(local.level_counts[j]);
        const double se =
            std::sqrt(ms_error / 2.0 * (1.0 / ni + 1.0 / nj));
        const double q =
            std::fabs(local.level_means[i] - local.level_means[j]) / se;
        p = 1.0 - StudentizedRangeCdf(q, num_levels, df_error);
      }
      local.p_values[i][j] = p;
      local.p_values[j][i] = p;
    }
  }
  *result = std::move(local);
  return Status::OK();
}

}  // namespace twrs
