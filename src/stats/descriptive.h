#ifndef TWRS_STATS_DESCRIPTIVE_H_
#define TWRS_STATS_DESCRIPTIVE_H_

#include <cstddef>
#include <vector>

namespace twrs {

/// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& values);

/// Unbiased sample variance (n-1 denominator); 0 for fewer than 2 values.
double SampleVariance(const std::vector<double>& values);

/// Sample standard deviation.
double SampleStdDev(const std::vector<double>& values);

/// Harmonic mean; 0 for empty input or any non-positive value.
double HarmonicMean(const std::vector<double>& values);

}  // namespace twrs

#endif  // TWRS_STATS_DESCRIPTIVE_H_
