#ifndef TWRS_STATS_TUKEY_H_
#define TWRS_STATS_TUKEY_H_

#include <vector>

#include "stats/anova.h"
#include "util/status.h"

namespace twrs {

/// Result of a Tukey HSD multiple-comparison test over the levels of one
/// factor (Tables 5.7–5.9 and 5.12 of the paper).
struct TukeyResult {
  std::vector<double> level_means;
  std::vector<uint64_t> level_counts;

  /// p_values[i][j]: significance of the pairwise comparison of levels i
  /// and j (1.0 on the diagonal). Values below the significance level mean
  /// the level means differ.
  std::vector<std::vector<double>> p_values;

  /// Levels whose mean equals the minimum mean up to statistical
  /// indistinguishability at the given alpha (the paper's boldfaced "best"
  /// levels, for a minimized response).
  std::vector<int> BestLevels(double alpha = 0.05) const;
};

/// Runs Tukey HSD (Tukey-Kramer for unequal cell sizes) on `factor` of the
/// observations, using the error variance of a previously fitted model.
Status TukeyHSD(const std::vector<Observation>& observations, int factor,
                int num_levels, double ms_error, double df_error,
                TukeyResult* result);

}  // namespace twrs

#endif  // TWRS_STATS_TUKEY_H_
