#include "stats/descriptive.h"

#include <cmath>

namespace twrs {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double SampleVariance(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double mean = Mean(values);
  double sum_sq = 0.0;
  for (double v : values) sum_sq += (v - mean) * (v - mean);
  return sum_sq / static_cast<double>(values.size() - 1);
}

double SampleStdDev(const std::vector<double>& values) {
  return std::sqrt(SampleVariance(values));
}

double HarmonicMean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) {
    if (v <= 0.0) return 0.0;
    sum += 1.0 / v;
  }
  return static_cast<double>(values.size()) / sum;
}

}  // namespace twrs
