#ifndef TWRS_CORE_HEURISTICS_H_
#define TWRS_CORE_HEURISTICS_H_

#include <cstdint>
#include <string>

#include "core/input_buffer.h"
#include "core/record.h"
#include "heap/double_heap.h"
#include "util/random.h"

namespace twrs {

/// Input heuristics (§4.2): decide which heap stores a record that could go
/// to either (during the fill phase and for records tagged for a later run).
enum class InputHeuristic {
  kRandom = 0,     ///< pick a heap at random
  kAlternate = 1,  ///< alternate BottomHeap / TopHeap
  kMean = 2,       ///< above the input-buffer mean -> TopHeap
  kMedian = 3,     ///< above the input-buffer median -> TopHeap
  kUseful = 4,     ///< store in the heap with the best output/size ratio
  kBalancing = 5,  ///< store in the smaller heap; rebalance at run start
};

/// Output heuristics (§4.2): decide which heap emits next when both could.
enum class OutputHeuristic {
  kRandom = 0,       ///< pop a heap at random
  kAlternate = 1,    ///< alternate, starting with the BottomHeap
  kUseful = 2,       ///< pop the heap with the best output/size ratio
  kBalancing = 3,    ///< pop the larger heap
  kMinDistance = 4,  ///< pop the top closest in value to the run's first output
};

inline constexpr int kNumInputHeuristics = 6;
inline constexpr int kNumOutputHeuristics = 5;

const char* InputHeuristicName(InputHeuristic h);
const char* OutputHeuristicName(OutputHeuristic h);

/// Stateful implementation of the input and output heuristics of one 2WRS
/// execution. Per-run state (alternation phase, usefulness counters, first
/// output) is reset by OnRunStart.
class HeuristicEngine {
 public:
  HeuristicEngine(InputHeuristic input, OutputHeuristic output, uint64_t seed);

  /// Notifies the engine of every record read from the input. Maintains the
  /// running mean used as a fallback when the input buffer is disabled.
  void OnRecordSeen(Key key);

  /// Chooses the heap that stores `key` when both heaps are eligible.
  /// `buffer` may be null (or without statistics); heuristics that sample
  /// the input then fall back to the running mean of all records seen.
  HeapSide ChooseInsertSide(Key key, const InputBuffer* buffer,
                            const DoubleHeap& heap);

  /// Chooses the heap to pop when both tops belong to the current run.
  HeapSide ChooseOutputSide(const DoubleHeap& heap);

  /// Notifies that `side` produced a record (stream or victim buffer);
  /// feeds the usefulness counters and the MinDistance reference.
  void OnOutput(HeapSide side, Key key);

  /// Resets per-run state. For the Balancing input heuristic, migrates
  /// leaf records from the larger to the smaller heap until both sides are
  /// within one record of each other (§4.2).
  void OnRunStart(DoubleHeap* heap);

  InputHeuristic input_heuristic() const { return input_; }
  OutputHeuristic output_heuristic() const { return output_; }

 private:
  // Usefulness of a heap: records output by it divided by its size (§4.2).
  double Usefulness(HeapSide side, const DoubleHeap& heap) const;

  HeapSide RandomSide() {
    return rng_.OneIn2() ? HeapSide::kTop : HeapSide::kBottom;
  }

  InputHeuristic input_;
  OutputHeuristic output_;
  Random rng_;

  // Running mean over all input records (fallback for Mean/Median).
  double running_sum_ = 0.0;
  uint64_t running_count_ = 0;

  // Alternation state.
  bool insert_next_top_ = false;
  bool output_next_top_ = false;

  // Usefulness counters (reset each run).
  uint64_t outputs_bottom_ = 0;
  uint64_t outputs_top_ = 0;

  // MinDistance reference: first record output in the current run.
  bool has_first_output_ = false;
  Key first_output_ = 0;
};

}  // namespace twrs

#endif  // TWRS_CORE_HEURISTICS_H_
