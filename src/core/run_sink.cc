#include "core/run_sink.h"

#include <algorithm>

namespace twrs {

namespace {

bool StreamIsReverse(RunStream stream) {
  return stream == kStream2 || stream == kStream4;
}

const char* StreamSuffix(RunStream stream) {
  switch (stream) {
    case kStream1:
      return "s1";
    case kStream2:
      return "s2";
    case kStream3:
      return "s3";
    case kStream4:
      return "s4";
  }
  return "s?";
}

}  // namespace

// ---------------------------------------------------------------- Counting

Status CountingRunSink::BeginRun() {
  if (in_run_) return Status::InvalidArgument("BeginRun inside a run");
  in_run_ = true;
  current_length_ = 0;
  have_bounds_ = false;
  return Status::OK();
}

Status CountingRunSink::Append(RunStream, Key key) {
  if (!in_run_) return Status::InvalidArgument("Append outside a run");
  ++current_length_;
  if (!have_bounds_) {
    min_key_ = max_key_ = key;
    have_bounds_ = true;
  } else {
    min_key_ = std::min(min_key_, key);
    max_key_ = std::max(max_key_, key);
  }
  return Status::OK();
}

Status CountingRunSink::EndRun() {
  if (!in_run_) return Status::InvalidArgument("EndRun outside a run");
  in_run_ = false;
  if (current_length_ == 0) return Status::OK();  // empty runs are dropped
  RunInfo info;
  info.length = current_length_;
  info.min_key = min_key_;
  info.max_key = max_key_;
  runs_.push_back(std::move(info));
  return Status::OK();
}

Status CountingRunSink::Finish() { return Status::OK(); }

// -------------------------------------------------------------- Collecting

Status CollectingRunSink::BeginRun() {
  if (in_run_) return Status::InvalidArgument("BeginRun inside a run");
  in_run_ = true;
  for (auto& s : streams_) s.clear();
  return Status::OK();
}

Status CollectingRunSink::Append(RunStream stream, Key key) {
  if (!in_run_) return Status::InvalidArgument("Append outside a run");
  std::vector<Key>& s = streams_[stream];
  if (!s.empty()) {
    const bool ok = StreamIsReverse(stream) ? key <= s.back() : key >= s.back();
    if (!ok) {
      return Status::InvalidArgument(std::string("stream ordering violated: ") +
                                     StreamSuffix(stream));
    }
  }
  s.push_back(key);
  return Status::OK();
}

Status CollectingRunSink::EndRun() {
  if (!in_run_) return Status::InvalidArgument("EndRun outside a run");
  in_run_ = false;
  // Assemble ascending: reverse(stream4) + stream3 + reverse(stream2) +
  // stream1 (§4.1 / conference paper §3).
  std::vector<Key> run;
  run.insert(run.end(), streams_[kStream4].rbegin(), streams_[kStream4].rend());
  run.insert(run.end(), streams_[kStream3].begin(), streams_[kStream3].end());
  run.insert(run.end(), streams_[kStream2].rbegin(), streams_[kStream2].rend());
  run.insert(run.end(), streams_[kStream1].begin(), streams_[kStream1].end());
  if (run.empty()) return Status::OK();
  RunInfo info;
  info.length = run.size();
  info.min_key = run.front();
  info.max_key = run.back();
  runs_.push_back(std::move(info));
  collected_.push_back(std::move(run));
  return Status::OK();
}

Status CollectingRunSink::Finish() { return Status::OK(); }

// -------------------------------------------------------------------- File

FileRunSink::FileRunSink(Env* env, std::string dir, std::string prefix,
                         FileRunSinkOptions options)
    : env_(env),
      dir_(std::move(dir)),
      prefix_(std::move(prefix)),
      options_(options) {}

std::string FileRunSink::StreamPath(uint64_t run, RunStream stream) const {
  return dir_ + "/" + prefix_ + "_run" + std::to_string(run) + "_" +
         StreamSuffix(stream);
}

Status FileRunSink::BeginRun() {
  if (in_run_) return Status::InvalidArgument("BeginRun inside a run");
  in_run_ = true;
  have_bounds_ = false;
  return Status::OK();
}

Status FileRunSink::Append(RunStream stream, Key key) {
  if (!in_run_) return Status::InvalidArgument("Append outside a run");
  if (!have_bounds_) {
    min_key_ = max_key_ = key;
    have_bounds_ = true;
  } else {
    min_key_ = std::min(min_key_, key);
    max_key_ = std::max(max_key_, key);
  }
  if (StreamIsReverse(stream)) {
    auto& writer = reverse_[stream];
    if (writer == nullptr) {
      writer = std::make_unique<ReverseRunWriter>(
          env_, StreamPath(run_index_, stream), options_.reverse);
      TWRS_RETURN_IF_ERROR(writer->status());
    }
    return writer->Append(key);
  }
  auto& writer = forward_[stream];
  if (writer == nullptr) {
    TWRS_RETURN_IF_ERROR(MakeAsyncRecordWriter(
        env_, StreamPath(run_index_, stream), options_.block_bytes,
        options_.pool, options_.async_buffer_bytes, &writer,
        options_.flush_histogram));
  }
  return writer->Append(key);
}

Status FileRunSink::EndRun() {
  if (!in_run_) return Status::InvalidArgument("EndRun outside a run");
  in_run_ = false;
  RunInfo info;
  // Ascending read order: 4, 3, 2, 1.
  for (RunStream stream : {kStream4, kStream3, kStream2, kStream1}) {
    if (StreamIsReverse(stream)) {
      auto& writer = reverse_[stream];
      if (writer == nullptr) continue;
      TWRS_RETURN_IF_ERROR(writer->Finish());
      RunSegment seg;
      seg.path = StreamPath(run_index_, stream);
      seg.reverse = true;
      seg.count = writer->count();
      seg.num_files = writer->num_files();
      info.length += seg.count;
      info.segments.push_back(std::move(seg));
      writer.reset();
    } else {
      auto& writer = forward_[stream];
      if (writer == nullptr) continue;
      TWRS_RETURN_IF_ERROR(writer->Finish());
      RunSegment seg;
      seg.path = StreamPath(run_index_, stream);
      seg.reverse = false;
      seg.count = writer->count();
      info.length += seg.count;
      info.segments.push_back(std::move(seg));
      writer.reset();
    }
  }
  ++run_index_;
  if (info.length == 0) return Status::OK();
  info.min_key = min_key_;
  info.max_key = max_key_;
  runs_.push_back(std::move(info));
  return Status::OK();
}

Status FileRunSink::Finish() {
  if (in_run_) return Status::InvalidArgument("Finish inside a run");
  return Status::OK();
}

}  // namespace twrs
