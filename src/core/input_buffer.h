#ifndef TWRS_CORE_INPUT_BUFFER_H_
#define TWRS_CORE_INPUT_BUFFER_H_

#include <cstddef>
#include <deque>
#include <set>

#include "core/record.h"
#include "core/record_source.h"

namespace twrs {

/// Maintains the running median of a multiset under insertions and value
/// erasures in O(log n), for the Median input heuristic (§4.2). Two balanced
/// multisets: `low_` holds the smaller half (its max is the lower median).
class MedianTracker {
 public:
  void Insert(Key key);

  /// Removes one occurrence of `key`; must be present.
  void Erase(Key key);

  /// Lower median of the tracked values. Requires non-empty.
  Key Median() const;

  size_t size() const { return low_.size() + high_.size(); }
  bool empty() const { return size() == 0; }

 private:
  void Rebalance();

  std::multiset<Key> low_;   // smaller half, |low_| == |high_| or |high_|+1
  std::multiset<Key> high_;  // larger half
};

/// FIFO read-ahead buffer between the input stream and 2WRS (§4.2).
///
/// A window of upcoming records is kept so the input heuristics can sample
/// the input distribution. Matching the worked example of §4.5, the
/// statistics exposed after Next() are those of the window *including* the
/// record just handed out (the buffer is refilled, the snapshot is taken,
/// then the head is popped).
///
/// With capacity 0 the buffer is a pass-through and HasStats() is false;
/// heuristics fall back to running statistics over the whole input seen.
class InputBuffer {
 public:
  /// Does not take ownership of `source`. `track_median` enables the
  /// median-order statistics (O(log n) per record); leave it off unless the
  /// Median heuristic is in use — the mean costs O(1) either way.
  InputBuffer(RecordSource* source, size_t capacity,
              bool track_median = true);

  /// Pops the next record (refilling the window first). Returns false at
  /// end of input.
  bool Next(Key* key);

  /// True when buffered statistics are available (capacity > 0 and at least
  /// one record was in the window at the last Next()).
  bool HasStats() const { return stats_size_ > 0; }

  /// Mean of the window at the last Next() (including the popped record).
  double Mean() const { return stats_mean_; }

  /// Lower median of the same window. Requires median tracking.
  Key Median() const { return stats_median_; }

  bool tracks_median() const { return track_median_; }

  /// Sum and count of the records currently buffered (the unread
  /// lookahead). Combined with the consumer's own running totals this
  /// yields a mean estimate over everything seen so far plus the window.
  double WindowSum() const { return sum_; }
  size_t WindowSize() const { return fifo_.size(); }

  size_t capacity() const { return capacity_; }
  size_t size() const { return fifo_.size(); }

 private:
  void Refill();

  RecordSource* source_;
  size_t capacity_;
  bool track_median_;
  std::deque<Key> fifo_;
  MedianTracker median_;
  double sum_ = 0.0;
  bool source_done_ = false;

  // Snapshot taken by the most recent Next().
  size_t stats_size_ = 0;
  double stats_mean_ = 0.0;
  Key stats_median_ = 0;
};

}  // namespace twrs

#endif  // TWRS_CORE_INPUT_BUFFER_H_
