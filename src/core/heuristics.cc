#include "core/heuristics.h"

#include <cmath>
#include <cstdlib>

namespace twrs {

const char* InputHeuristicName(InputHeuristic h) {
  switch (h) {
    case InputHeuristic::kRandom:
      return "Random";
    case InputHeuristic::kAlternate:
      return "Alternate";
    case InputHeuristic::kMean:
      return "Mean";
    case InputHeuristic::kMedian:
      return "Median";
    case InputHeuristic::kUseful:
      return "Useful";
    case InputHeuristic::kBalancing:
      return "Balancing";
  }
  return "?";
}

const char* OutputHeuristicName(OutputHeuristic h) {
  switch (h) {
    case OutputHeuristic::kRandom:
      return "Random";
    case OutputHeuristic::kAlternate:
      return "Alternate";
    case OutputHeuristic::kUseful:
      return "Useful";
    case OutputHeuristic::kBalancing:
      return "Balancing";
    case OutputHeuristic::kMinDistance:
      return "MinDistance";
  }
  return "?";
}

HeuristicEngine::HeuristicEngine(InputHeuristic input, OutputHeuristic output,
                                 uint64_t seed)
    : input_(input), output_(output), rng_(seed) {}

void HeuristicEngine::OnRecordSeen(Key key) {
  running_sum_ += static_cast<double>(key);
  ++running_count_;
}

double HeuristicEngine::Usefulness(HeapSide side,
                                   const DoubleHeap& heap) const {
  const uint64_t outputs =
      side == HeapSide::kBottom ? outputs_bottom_ : outputs_top_;
  const size_t size = heap.SideSize(side);
  return static_cast<double>(outputs) /
         static_cast<double>(size == 0 ? 1 : size);
}

HeapSide HeuristicEngine::ChooseInsertSide(Key key, const InputBuffer* buffer,
                                           const DoubleHeap& heap) {
  switch (input_) {
    case InputHeuristic::kRandom:
      return RandomSide();
    case InputHeuristic::kAlternate: {
      const HeapSide side =
          insert_next_top_ ? HeapSide::kTop : HeapSide::kBottom;
      insert_next_top_ = !insert_next_top_;
      return side;
    }
    case InputHeuristic::kMean: {
      // Mean over every record seen so far plus the buffered lookahead.
      // The thesis computes the mean over the input-buffer window alone;
      // at its scale (window of 10^3+ records) the two estimators agree,
      // but for small windows the window-only mean wobbles enough to place
      // records near the division into either heap, which poisons the next
      // run's output bounds (see DESIGN.md §2.1). The pooled estimator is
      // stable and reproduces every decision in the worked example of §4.5.
      double sum = running_sum_;
      double count = static_cast<double>(running_count_);
      if (buffer != nullptr) {
        sum += buffer->WindowSum();
        count += static_cast<double>(buffer->WindowSize());
      }
      if (count == 0.0) return RandomSide();
      const double mean = sum / count;
      // "If the mean is smaller, the record is stored in the TopHeap" §4.2.
      return static_cast<double>(key) > mean ? HeapSide::kTop
                                             : HeapSide::kBottom;
    }
    case InputHeuristic::kMedian: {
      if (buffer != nullptr && buffer->HasStats()) {
        return key > buffer->Median() ? HeapSide::kTop : HeapSide::kBottom;
      }
      // Without an input buffer the median is unavailable; fall back to the
      // running mean (documented deviation — the paper always pairs Median
      // with the input buffer).
      if (running_count_ > 0) {
        return static_cast<double>(key) >
                       running_sum_ / static_cast<double>(running_count_)
                   ? HeapSide::kTop
                   : HeapSide::kBottom;
      }
      return RandomSide();
    }
    case InputHeuristic::kUseful: {
      const double b = Usefulness(HeapSide::kBottom, heap);
      const double t = Usefulness(HeapSide::kTop, heap);
      if (b == t) return RandomSide();
      return b > t ? HeapSide::kBottom : HeapSide::kTop;
    }
    case InputHeuristic::kBalancing:
      if (heap.SideSize(HeapSide::kBottom) == heap.SideSize(HeapSide::kTop)) {
        return RandomSide();
      }
      return heap.SideSize(HeapSide::kBottom) < heap.SideSize(HeapSide::kTop)
                 ? HeapSide::kBottom
                 : HeapSide::kTop;
  }
  return HeapSide::kTop;
}

HeapSide HeuristicEngine::ChooseOutputSide(const DoubleHeap& heap) {
  switch (output_) {
    case OutputHeuristic::kRandom:
      return RandomSide();
    case OutputHeuristic::kAlternate: {
      // "First, a record is popped from the BottomHeap" §4.2.
      const HeapSide side =
          output_next_top_ ? HeapSide::kTop : HeapSide::kBottom;
      output_next_top_ = !output_next_top_;
      return side;
    }
    case OutputHeuristic::kUseful: {
      const double b = Usefulness(HeapSide::kBottom, heap);
      const double t = Usefulness(HeapSide::kTop, heap);
      if (b == t) return RandomSide();
      return b > t ? HeapSide::kBottom : HeapSide::kTop;
    }
    case OutputHeuristic::kBalancing:
      // Keep the heaps level by draining the larger one.
      if (heap.SideSize(HeapSide::kBottom) == heap.SideSize(HeapSide::kTop)) {
        return RandomSide();
      }
      return heap.SideSize(HeapSide::kBottom) > heap.SideSize(HeapSide::kTop)
                 ? HeapSide::kBottom
                 : HeapSide::kTop;
    case OutputHeuristic::kMinDistance: {
      if (!has_first_output_) return RandomSide();
      const double db = std::abs(
          static_cast<double>(heap.Top(HeapSide::kBottom).key - first_output_));
      const double dt = std::abs(
          static_cast<double>(heap.Top(HeapSide::kTop).key - first_output_));
      if (db == dt) return RandomSide();
      return db < dt ? HeapSide::kBottom : HeapSide::kTop;
    }
  }
  return HeapSide::kTop;
}

void HeuristicEngine::OnOutput(HeapSide side, Key key) {
  if (side == HeapSide::kBottom) {
    ++outputs_bottom_;
  } else {
    ++outputs_top_;
  }
  if (!has_first_output_) {
    has_first_output_ = true;
    first_output_ = key;
  }
}

void HeuristicEngine::OnRunStart(DoubleHeap* heap) {
  outputs_bottom_ = 0;
  outputs_top_ = 0;
  has_first_output_ = false;
  output_next_top_ = false;
  if (input_ == InputHeuristic::kBalancing && heap != nullptr) {
    // §4.2: when a run starts, level the heaps by moving records from the
    // larger to the smaller one. Leaves move in O(1) each.
    for (;;) {
      const size_t b = heap->SideSize(HeapSide::kBottom);
      const size_t t = heap->SideSize(HeapSide::kTop);
      if (b + 1 >= t && t + 1 >= b) break;
      const HeapSide from = b > t ? HeapSide::kBottom : HeapSide::kTop;
      const HeapSide to = b > t ? HeapSide::kTop : HeapSide::kBottom;
      heap->Push(to, heap->PopLastLeaf(from));
    }
  }
}

}  // namespace twrs
