#ifndef TWRS_CORE_RUN_GENERATOR_H_
#define TWRS_CORE_RUN_GENERATOR_H_

#include <string>

#include "core/record_source.h"
#include "core/run_sink.h"
#include "core/run_stats.h"
#include "util/status.h"

namespace twrs {

/// A run generation algorithm for the first phase of external mergesort
/// (§2.1.1): consumes an input stream and produces sorted runs.
class RunGenerator {
 public:
  virtual ~RunGenerator() = default;

  /// Consumes `source` to exhaustion, emitting sorted runs into `sink`
  /// (calling Finish on it) and filling `*stats` if non-null.
  virtual Status Generate(RecordSource* source, RunSink* sink,
                          RunGenStats* stats) = 0;

  /// Human-readable algorithm name for reports.
  virtual std::string name() const = 0;
};

/// Copies per-run lengths from the sink's runs [first_run, end) into stats.
/// Shared by all generators so stats always agree with the sink.
void FillStatsFromSink(const RunSink& sink, size_t first_run,
                       RunGenStats* stats);

}  // namespace twrs

#endif  // TWRS_CORE_RUN_GENERATOR_H_
