#ifndef TWRS_CORE_TWO_WAY_REPLACEMENT_SELECTION_H_
#define TWRS_CORE_TWO_WAY_REPLACEMENT_SELECTION_H_

#include <cstddef>
#include <cstdint>

#include "core/heuristics.h"
#include "core/run_generator.h"
#include "util/status.h"

namespace twrs {

/// Configuration of Two-way Replacement Selection (Chapter 4). The four
/// tunables correspond to the four ANOVA factors of Chapter 5: buffer setup
/// (which buffers exist), buffer size, input heuristic and output heuristic.
struct TwoWayOptions {
  /// Total memory budget M in records, shared by the two heaps, the input
  /// buffer and the victim buffer — matching the paper's experiments, where
  /// the total allocation is constant across configurations (§5.2).
  size_t memory_records = 0;

  /// Fraction of M dedicated to the buffers (paper levels: 0.0002, 0.002,
  /// 0.02, 0.2). Split evenly when both buffers are enabled.
  double buffer_fraction = 0.02;

  bool use_input_buffer = true;
  bool use_victim_buffer = true;

  InputHeuristic input_heuristic = InputHeuristic::kMean;
  OutputHeuristic output_heuristic = OutputHeuristic::kRandom;

  /// Seed for the randomized heuristics.
  uint64_t seed = 1;

  /// Derived sizes. Enabled buffers get at least one record each; the heaps
  /// get the remainder.
  size_t TotalBufferRecords() const;
  size_t InputBufferRecords() const;
  size_t VictimBufferRecords() const;
  size_t HeapRecords() const;

  /// Checks that the configuration is usable (positive memory, heaps of at
  /// least two records, fraction in [0, 1)).
  Status Validate() const;

  /// The paper's recommended all-round configuration (§5.3): both buffers,
  /// 2% of memory for buffers, Mean input heuristic, Random output
  /// heuristic.
  static TwoWayOptions Recommended(size_t memory_records, uint64_t seed = 1);
};

/// Two-way Replacement Selection (Chapter 4).
///
/// Two heaps share one memory arena: the TopHeap captures ascending trends
/// (emitting the increasing stream 1) and the BottomHeap descending trends
/// (emitting the decreasing stream 4), so the algorithm is symmetric under
/// input reversal — the asymmetry that cripples RS on reverse-sorted input.
/// An input buffer gives the input heuristic a sample of upcoming records;
/// a victim buffer absorbs records falling in the gap between what the two
/// heap streams can still emit, emitting streams 3 (increasing) and 2
/// (decreasing). Each run is the concatenation 4·3·2·1.
///
/// Implementation note (see DESIGN.md §2.1): the cross-stream invariant
/// stream4 <= stream3 <= stream2 <= stream1 is enforced explicitly. A popped
/// record its own stream can no longer accept is routed to the victim
/// buffer, migrated to the opposite heap when that side's stream still
/// accepts it, or re-tagged for the next run (the "divert rule"). Diverts
/// happen only for records placed before the run's output division was
/// established; the stats report their frequency.
class TwoWayReplacementSelection : public RunGenerator {
 public:
  explicit TwoWayReplacementSelection(TwoWayOptions options);

  Status Generate(RecordSource* source, RunSink* sink,
                  RunGenStats* stats) override;

  std::string name() const override { return "2WRS"; }

  const TwoWayOptions& options() const { return options_; }

 private:
  TwoWayOptions options_;
};

}  // namespace twrs

#endif  // TWRS_CORE_TWO_WAY_REPLACEMENT_SELECTION_H_
