#ifndef TWRS_CORE_LOAD_SORT_STORE_H_
#define TWRS_CORE_LOAD_SORT_STORE_H_

#include <cstddef>

#include "core/run_generator.h"

namespace twrs {

/// Options for the Load-Sort-Store baseline.
struct LoadSortStoreOptions {
  /// Records loaded (and sorted) per run.
  size_t memory_records = 0;
};

/// Load-Sort-Store run generation (§2.1.1): fill memory, sort it with an
/// internal sort, write the block out as one run. Every run has exactly the
/// memory size (except possibly the last), which is the floor RS and 2WRS
/// are measured against.
class LoadSortStore : public RunGenerator {
 public:
  explicit LoadSortStore(LoadSortStoreOptions options);

  Status Generate(RecordSource* source, RunSink* sink,
                  RunGenStats* stats) override;

  std::string name() const override { return "LSS"; }

 private:
  LoadSortStoreOptions options_;
};

}  // namespace twrs

#endif  // TWRS_CORE_LOAD_SORT_STORE_H_
