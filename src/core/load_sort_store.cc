#include "core/load_sort_store.h"

#include <vector>

#include "simd/kernels.h"

namespace twrs {

LoadSortStore::LoadSortStore(LoadSortStoreOptions options)
    : options_(options) {}

Status LoadSortStore::Generate(RecordSource* source, RunSink* sink,
                               RunGenStats* stats) {
  if (options_.memory_records == 0) {
    return Status::InvalidArgument("memory_records must be positive");
  }
  const size_t first_run = sink->runs().size();
  std::vector<Key> block;
  block.reserve(options_.memory_records);
  for (;;) {
    block.clear();
    Key key;
    while (block.size() < options_.memory_records && source->Next(&key)) {
      block.push_back(key);
    }
    if (block.empty()) break;
    simd::SortKeysBlock(block.data(), block.size());
    TWRS_RETURN_IF_ERROR(sink->BeginRun());
    for (Key k : block) TWRS_RETURN_IF_ERROR(sink->Append(kStream1, k));
    TWRS_RETURN_IF_ERROR(sink->EndRun());
    if (block.size() < options_.memory_records) break;  // input exhausted
  }
  TWRS_RETURN_IF_ERROR(sink->Finish());
  FillStatsFromSink(*sink, first_run, stats);
  return Status::OK();
}

}  // namespace twrs
