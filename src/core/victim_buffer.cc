#include "core/victim_buffer.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "simd/kernels.h"

namespace twrs {

VictimBuffer::VictimBuffer(size_t capacity) : capacity_(capacity) {}

void VictimBuffer::Add(Key key) {
  assert(!Full());
  values_.push_back(key);
}

size_t VictimBuffer::LargestGapIndex() {
  simd::SortKeysBlock(values_.data(), values_.size());
  size_t best = 0;
  Key best_gap = values_[1] - values_[0];
  for (size_t i = 1; i + 1 < values_.size(); ++i) {
    const Key gap = values_[i + 1] - values_[i];
    if (gap > best_gap) {
      best_gap = gap;
      best = i;
    }
  }
  return best;
}

Status VictimBuffer::BootstrapSplit(std::vector<Key>* lows,
                                    std::vector<Key>* highs,
                                    const RangePopulation& population) {
  assert(bootstrapping());
  lows->clear();
  highs->clear();
  if (values_.empty()) return Status::OK();
  ++flush_count_;
  if (values_.size() == 1) {
    // Degenerate one-record buffer: no gap to choose.
    const Key v = values_.front();
    range_set_ = true;
    range_lo_ = range_hi_ = v;
    lows->push_back(v);
    values_.clear();
    return Status::OK();
  }
  size_t gap = 0;
  bool have_admissible = true;
  if (population == nullptr) {
    gap = LargestGapIndex();
  } else {
    simd::SortKeysBlock(values_.data(), values_.size());
    // Widest gap whose interior can be absorbed by this buffer. A wider
    // gap makes the buffer more useful (§4.3), but a gap holding more
    // records than the buffer's capacity would thrash: repeated flushes
    // would narrow the range while everything left outside is lost to the
    // next run.
    have_admissible = false;
    Key best_width = 0;
    for (size_t i = 0; i + 1 < values_.size(); ++i) {
      const Key width = values_[i + 1] - values_[i];
      if (population(values_[i], values_[i + 1]) > capacity_) continue;
      if (!have_admissible || width > best_width) {
        gap = i;
        best_width = width;
        have_admissible = true;
      }
    }
  }
  if (!have_admissible) {
    // Every gap is overfull: the heaps' key ranges overlap completely (the
    // bootstrap sampled both extremes). Fall back to a point division at
    // the sample value that splits the in-memory records most evenly; the
    // victim buffer sits this run out, and the separation sweep relocates
    // everything across the point.
    constexpr Key kMin = std::numeric_limits<Key>::min();
    constexpr Key kMax = std::numeric_limits<Key>::max();
    const uint64_t total = population(kMin, kMax);
    size_t best_value = 0;
    uint64_t best_imbalance = UINT64_MAX;
    for (size_t i = 0; i < values_.size(); ++i) {
      const uint64_t below = population(kMin, values_[i]);
      const uint64_t above = total >= below ? total - below : 0;
      const uint64_t imbalance = below > above ? below - above : above - below;
      if (imbalance < best_imbalance) {
        best_imbalance = imbalance;
        best_value = i;
      }
    }
    lows->assign(values_.begin(), values_.begin() + best_value + 1);
    highs->assign(values_.begin() + best_value + 1, values_.end());
    range_set_ = true;
    range_lo_ = range_hi_ = values_[best_value];
    values_.clear();
    return Status::OK();
  }
  lows->assign(values_.begin(), values_.begin() + gap + 1);
  highs->assign(values_.begin() + gap + 1, values_.end());
  range_set_ = true;
  range_lo_ = values_[gap];
  range_hi_ = values_[gap + 1];
  values_.clear();
  return Status::OK();
}

Status VictimBuffer::FlushActive(RunSink* sink) {
  assert(range_set_);
  if (values_.empty()) return Status::OK();
  ++flush_count_;
  if (values_.size() == 1) {
    const Key v = values_.front();
    TWRS_RETURN_IF_ERROR(sink->Append(kStream3, v));
    range_lo_ = v;
    values_.clear();
    return Status::OK();
  }
  const size_t gap = LargestGapIndex();
  for (size_t i = 0; i <= gap; ++i) {
    TWRS_RETURN_IF_ERROR(sink->Append(kStream3, values_[i]));
  }
  for (size_t i = values_.size(); i > gap + 1; --i) {
    TWRS_RETURN_IF_ERROR(sink->Append(kStream2, values_[i - 1]));
  }
  // The flushed ranges nest: the new valid range is inside the old one.
  range_lo_ = values_[gap];
  range_hi_ = values_[gap + 1];
  values_.clear();
  return Status::OK();
}

Status VictimBuffer::FlushFinal(RunSink* sink) {
  if (values_.empty()) return Status::OK();
  simd::SortKeysBlock(values_.data(), values_.size());
  for (Key v : values_) {
    TWRS_RETURN_IF_ERROR(sink->Append(kStream3, v));
  }
  values_.clear();
  return Status::OK();
}

void VictimBuffer::ResetForNewRun() {
  values_.clear();
  range_set_ = false;
  range_lo_ = 0;
  range_hi_ = 0;
}

}  // namespace twrs
