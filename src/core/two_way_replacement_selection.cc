#include "core/two_way_replacement_selection.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/input_buffer.h"
#include "core/victim_buffer.h"
#include "heap/double_heap.h"
#include "simd/kernels.h"

namespace twrs {

namespace {

constexpr Key kKeyMin = std::numeric_limits<Key>::min();
constexpr Key kKeyMax = std::numeric_limits<Key>::max();

// Outcome of one output step. Only kConsumed frees memory for a new input
// record; the other outcomes keep the record in memory.
enum class StepResult {
  kConsumed,  // a record left the heaps (to a stream or the victim buffer)
  kStaged,    // the record was parked in the bootstrapping victim buffer
  kDiverted,  // the record was re-inserted into a heap
};

// All mutable state of one Generate() execution.
class Engine {
 public:
  Engine(const TwoWayOptions& options, RecordSource* source, RunSink* sink,
         RunGenStats* stats)
      : options_(options),
        sink_(sink),
        stats_(stats),
        heap_(options.HeapRecords()),
        input_(source, options.InputBufferRecords(),
               options.input_heuristic == InputHeuristic::kMedian),
        victim_(options.VictimBufferRecords()),
        heuristics_(options.input_heuristic, options.output_heuristic,
                    options.seed) {}

  Status Run() {
    // Fill phase (doubleHeap.fill in Algorithm 2): both heaps are eligible
    // for every record, so the input heuristic places all of them.
    Key key;
    while (heap_.size() < heap_.capacity() && input_.Next(&key)) {
      heuristics_.OnRecordSeen(key);
      const HeapSide side = heuristics_.ChooseInsertSide(key, &input_, heap_);
      heap_.Push(side, TaggedRecord{key, 0});
    }
    if (heap_.size() == 0) return sink_->Finish();

    TWRS_RETURN_IF_ERROR(sink_->BeginRun());
    heuristics_.OnRunStart(&heap_);
    while (heap_.size() > 0) {
      if (!heap_.TopIsRun(HeapSide::kBottom, current_run_) &&
          !heap_.TopIsRun(HeapSide::kTop, current_run_)) {
        // Every record in memory belongs to a later run: close this one.
        TWRS_RETURN_IF_ERROR(StartNextRun());
        continue;
      }
      StepResult result = StepResult::kDiverted;
      TWRS_RETURN_IF_ERROR(OutputOne(&result));
      if (!swept_this_run_ && DivisionEstablished()) {
        // The run's output division just formed: relocate every record the
        // input heuristic placed on the wrong side of it while the bounds
        // are still at the division (see SeparationSweep).
        TWRS_RETURN_IF_ERROR(SeparationSweep());
        swept_this_run_ = true;
      }
      if (result == StepResult::kConsumed) {
        // One record left the heaps; read replacements (Algorithm 2 keeps
        // reading while records fit the victim buffer).
        TWRS_RETURN_IF_ERROR(ReadAndInsert());
      }
    }
    TWRS_RETURN_IF_ERROR(victim_.FlushFinal(sink_));
    TWRS_RETURN_IF_ERROR(sink_->EndRun());
    return sink_->Finish();
  }

  void ExportStats() {
    if (stats_ == nullptr) return;
    stats_->diverted_next_run = diverted_;
    stats_->migrated_across = migrated_;
    stats_->victim_records = victim_records_;
    stats_->victim_flushes = victim_.flush_count();
  }

 private:
  Status StartNextRun() {
    TWRS_RETURN_IF_ERROR(victim_.FlushFinal(sink_));
    TWRS_RETURN_IF_ERROR(sink_->EndRun());
    TWRS_RETURN_IF_ERROR(sink_->BeginRun());
    ++current_run_;
    // The new run re-establishes its own output division.
    s4_bound_ = kKeyMax;
    s1_bound_ = kKeyMin;
    s4_emitted_ = false;
    s1_emitted_ = false;
    swept_this_run_ = false;
    victim_.ResetForNewRun();
    heuristics_.OnRunStart(&heap_);
    return Status::OK();
  }

  // True once this run's output division exists (set by the bootstrap split
  // or by the first emission).
  bool DivisionEstablished() const {
    return s4_bound_ != kKeyMax || s1_bound_ != kKeyMin;
  }

  // Relocates a record that its own side's stream cannot emit: into the
  // victim buffer when it fits the valid range, across to the other heap
  // when that side's stream still accepts it, or to the next run.
  Status RouteStray(TaggedRecord record, HeapSide from) {
    if (victim_.RangeContains(record.key)) {
      if (victim_.Full()) TWRS_RETURN_IF_ERROR(victim_.FlushActive(sink_));
      if (victim_.RangeContains(record.key)) {
        victim_.Add(record.key);
        ++victim_records_;
        return Status::OK();
      }
    }
    if (from == HeapSide::kBottom && record.key >= s1_bound_) {
      heap_.Push(HeapSide::kTop, record);
      ++migrated_;
      return Status::OK();
    }
    if (from == HeapSide::kTop && record.key <= s4_bound_) {
      heap_.Push(HeapSide::kBottom, record);
      ++migrated_;
      return Status::OK();
    }
    record.run = current_run_ + 1;
    heap_.Push(heuristics_.ChooseInsertSide(record.key, &input_, heap_),
               record);
    ++diverted_;
    return Status::OK();
  }

  // One-time cleanup when a run's division forms: the input heuristic may
  // have placed current-run records on the wrong side of the division
  // (guaranteed for the Random/Alternate heuristics, occasional for the
  // sampling ones). Such strays sit at the front of their heap's pop order,
  // so they can all be relocated before any emission moves the stream
  // bounds — after the sweep both heaps are perfectly range-separated and
  // the run proceeds without stranding records. The emission bounds do not
  // move during the sweep (nothing is emitted), which is what makes every
  // relocation succeed.
  Status SeparationSweep() {
    for (;;) {
      bool progressed = false;
      while (heap_.TopIsRun(HeapSide::kBottom, current_run_) &&
             heap_.Top(HeapSide::kBottom).key > s4_bound_) {
        TWRS_RETURN_IF_ERROR(
            RouteStray(heap_.Pop(HeapSide::kBottom), HeapSide::kBottom));
        progressed = true;
      }
      while (heap_.TopIsRun(HeapSide::kTop, current_run_) &&
             heap_.Top(HeapSide::kTop).key < s1_bound_) {
        TWRS_RETURN_IF_ERROR(
            RouteStray(heap_.Pop(HeapSide::kTop), HeapSide::kTop));
        progressed = true;
      }
      if (!progressed) return Status::OK();
    }
  }

  // Pops one record and routes it: victim buffer (bootstrap or range fit),
  // its own stream, the opposite heap, or the next run.
  Status OutputOne(StepResult* result) {
    const bool can_bottom = heap_.TopIsRun(HeapSide::kBottom, current_run_);
    const bool can_top = heap_.TopIsRun(HeapSide::kTop, current_run_);
    const HeapSide side =
        can_bottom && can_top
            ? heuristics_.ChooseOutputSide(heap_)
            : (can_bottom ? HeapSide::kBottom : HeapSide::kTop);
    TaggedRecord record = heap_.Pop(side);

    // Bootstrap (§4.3): the first records popped in a run are parked in the
    // victim buffer; when it fills, its largest gap becomes the valid range.
    // The sampled records then return to the heaps split at the gap, and the
    // stream bounds become the gap ends — so the dead zone between the two
    // heap streams is exactly the range the victim buffer covers, no matter
    // how imperfectly the input heuristic separated the heaps (DESIGN.md
    // §2.1; the emitted runs match the thesis' §4.5 example).
    if (victim_.bootstrapping()) {
      victim_.Add(record.key);
      if (victim_.Full()) {
        // Snapshot the current-run keys so gap selection can avoid ranges
        // that would swallow the heap contents (victim_buffer.h).
        std::vector<Key> snapshot;
        {
          std::vector<TaggedRecord> contents;
          heap_.AppendContents(&contents);
          for (const TaggedRecord& r : contents) {
            if (r.run == current_run_) snapshot.push_back(r.key);
          }
          simd::SortKeysBlock(snapshot.data(), snapshot.size());
        }
        const VictimBuffer::RangePopulation population =
            [&snapshot](Key lo, Key hi) -> uint64_t {
          const auto begin =
              std::upper_bound(snapshot.begin(), snapshot.end(), lo);
          const auto end =
              std::lower_bound(snapshot.begin(), snapshot.end(), hi);
          return begin < end ? static_cast<uint64_t>(end - begin) : 0;
        };
        std::vector<Key> lows;
        std::vector<Key> highs;
        TWRS_RETURN_IF_ERROR(
            victim_.BootstrapSplit(&lows, &highs, population));
        for (Key k : lows) {
          heap_.Push(HeapSide::kBottom, TaggedRecord{k, current_run_});
        }
        for (Key k : highs) {
          heap_.Push(HeapSide::kTop, TaggedRecord{k, current_run_});
        }
        s4_bound_ = std::min(s4_bound_, victim_.range_lo());
        s1_bound_ = std::max(s1_bound_, victim_.range_hi());
      }
      *result = StepResult::kStaged;
      return Status::OK();
    }

    // A popped record inside the valid range belongs in the victim buffer.
    if (victim_.RangeContains(record.key)) {
      if (victim_.Full()) TWRS_RETURN_IF_ERROR(victim_.FlushActive(sink_));
      if (victim_.RangeContains(record.key)) {
        victim_.Add(record.key);
        ++victim_records_;
        heuristics_.OnOutput(side, record.key);
        *result = StepResult::kConsumed;
        return Status::OK();
      }
    }

    if (side == HeapSide::kBottom && record.key <= s4_bound_) {
      TWRS_RETURN_IF_ERROR(Emit(kStream4, side, record.key));
      *result = StepResult::kConsumed;
      return Status::OK();
    }
    if (side == HeapSide::kTop && record.key >= s1_bound_) {
      TWRS_RETURN_IF_ERROR(Emit(kStream1, side, record.key));
      *result = StepResult::kConsumed;
      return Status::OK();
    }
    // The record's own stream can no longer take it (divert rule).
    TWRS_RETURN_IF_ERROR(RouteStray(record, side));
    *result = StepResult::kDiverted;
    return Status::OK();
  }

  Status Emit(RunStream stream, HeapSide side, Key key) {
    TWRS_RETURN_IF_ERROR(sink_->Append(stream, key));
    heuristics_.OnOutput(side, key);
    if (stream == kStream4) {
      s4_bound_ = key;  // stream 4 is non-increasing
      if (!s4_emitted_) {
        s4_emitted_ = true;
        // The first output marks the division between the heaps (§4.2).
        s1_bound_ = std::max(s1_bound_, key);
      }
    } else {
      s1_bound_ = key;  // stream 1 is non-decreasing
      if (!s1_emitted_) {
        s1_emitted_ = true;
        s4_bound_ = std::min(s4_bound_, key);
      }
    }
    return Status::OK();
  }

  // Reads input records: records inside the victim's valid range are
  // absorbed there (reading on), the first record outside it goes to a heap.
  Status ReadAndInsert() {
    Key key;
    if (!input_.Next(&key)) return Status::OK();
    heuristics_.OnRecordSeen(key);
    while (victim_.range_set() && victim_.RangeContains(key)) {
      if (victim_.Full()) {
        TWRS_RETURN_IF_ERROR(victim_.FlushActive(sink_));
        if (!victim_.RangeContains(key)) break;  // range narrowed past key
      }
      victim_.Add(key);
      ++victim_records_;
      if (!input_.Next(&key)) return Status::OK();
      heuristics_.OnRecordSeen(key);
    }
    InsertRecord(key);
    return Status::OK();
  }

  void InsertRecord(Key key) {
    const bool can_bottom = key <= s4_bound_;
    const bool can_top = key >= s1_bound_;
    TaggedRecord record{key, current_run_};
    HeapSide side;
    if (can_bottom && can_top) {
      side = heuristics_.ChooseInsertSide(key, &input_, heap_);
    } else if (can_bottom) {
      side = HeapSide::kBottom;
    } else if (can_top) {
      side = HeapSide::kTop;
    } else {
      // Unusable in the current run anywhere: next run (§3.3 generalized).
      record.run = current_run_ + 1;
      side = heuristics_.ChooseInsertSide(key, &input_, heap_);
    }
    heap_.Push(side, record);
  }

  const TwoWayOptions& options_;
  RunSink* sink_;
  RunGenStats* stats_;

  DoubleHeap heap_;
  InputBuffer input_;
  VictimBuffer victim_;
  HeuristicEngine heuristics_;

  uint32_t current_run_ = 0;

  // Stream bounds for the current run: stream 4 may accept keys <=
  // s4_bound_, stream 1 keys >= s1_bound_ (DESIGN.md §2.1).
  Key s4_bound_ = kKeyMax;
  Key s1_bound_ = kKeyMin;
  bool s4_emitted_ = false;
  bool s1_emitted_ = false;
  bool swept_this_run_ = false;

  uint64_t diverted_ = 0;
  uint64_t migrated_ = 0;
  uint64_t victim_records_ = 0;
};

}  // namespace

size_t TwoWayOptions::TotalBufferRecords() const {
  if (!use_input_buffer && !use_victim_buffer) return 0;
  size_t total = static_cast<size_t>(
      std::llround(buffer_fraction * static_cast<double>(memory_records)));
  const size_t min_needed =
      (use_input_buffer ? 1 : 0) + (use_victim_buffer ? 1 : 0);
  total = std::max(total, min_needed);
  // The heaps need at least two records.
  if (total + 2 > memory_records) {
    total = memory_records > 2 ? memory_records - 2 : 0;
  }
  return total;
}

size_t TwoWayOptions::InputBufferRecords() const {
  if (!use_input_buffer) return 0;
  const size_t total = TotalBufferRecords();
  return use_victim_buffer ? total / 2 : total;
}

size_t TwoWayOptions::VictimBufferRecords() const {
  if (!use_victim_buffer) return 0;
  return TotalBufferRecords() - InputBufferRecords();
}

size_t TwoWayOptions::HeapRecords() const {
  return memory_records - TotalBufferRecords();
}

Status TwoWayOptions::Validate() const {
  if (memory_records < 3) {
    return Status::InvalidArgument("memory_records must be at least 3");
  }
  if (buffer_fraction < 0.0 || buffer_fraction >= 1.0) {
    return Status::InvalidArgument("buffer_fraction must be in [0, 1)");
  }
  if (HeapRecords() < 2) {
    return Status::InvalidArgument("configuration leaves no room for heaps");
  }
  return Status::OK();
}

TwoWayOptions TwoWayOptions::Recommended(size_t memory_records,
                                         uint64_t seed) {
  TwoWayOptions options;
  options.memory_records = memory_records;
  options.buffer_fraction = 0.02;
  options.use_input_buffer = true;
  options.use_victim_buffer = true;
  options.input_heuristic = InputHeuristic::kMean;
  options.output_heuristic = OutputHeuristic::kRandom;
  options.seed = seed;
  return options;
}

TwoWayReplacementSelection::TwoWayReplacementSelection(TwoWayOptions options)
    : options_(options) {}

Status TwoWayReplacementSelection::Generate(RecordSource* source,
                                            RunSink* sink,
                                            RunGenStats* stats) {
  TWRS_RETURN_IF_ERROR(options_.Validate());
  const size_t first_run = sink->runs().size();
  Engine engine(options_, source, sink, stats);
  TWRS_RETURN_IF_ERROR(engine.Run());
  FillStatsFromSink(*sink, first_run, stats);
  engine.ExportStats();
  return Status::OK();
}

}  // namespace twrs
