#ifndef TWRS_CORE_REPLACEMENT_SELECTION_H_
#define TWRS_CORE_REPLACEMENT_SELECTION_H_

#include <cstddef>

#include "core/run_generator.h"

namespace twrs {

/// Options for classic Replacement Selection.
struct ReplacementSelectionOptions {
  /// Heap capacity in records ("available memory" in the paper).
  size_t memory_records = 0;
};

/// Classic Replacement Selection (Goetz 1963; §3.3–§3.4, Algorithm 1).
///
/// A min-heap of (run, key) pairs holds one memory's worth of records. Each
/// step pops the smallest current-run record to the output run and reads one
/// replacement from the input; replacements smaller than the last output
/// cannot extend the current run and are tagged for the next run, which
/// makes them sink below every current-run record. A run ends when the heap
/// top belongs to the next run. For random input the expected run length is
/// twice the memory (§3.5); for reverse-sorted input it degrades to exactly
/// the memory size (Theorem 3) — the weakness 2WRS removes.
class ReplacementSelection : public RunGenerator {
 public:
  explicit ReplacementSelection(ReplacementSelectionOptions options);

  Status Generate(RecordSource* source, RunSink* sink,
                  RunGenStats* stats) override;

  std::string name() const override { return "RS"; }

 private:
  ReplacementSelectionOptions options_;
};

}  // namespace twrs

#endif  // TWRS_CORE_REPLACEMENT_SELECTION_H_
