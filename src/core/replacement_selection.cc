#include "core/replacement_selection.h"

#include "heap/binary_heap.h"

namespace twrs {

namespace {

// Min-heap order: earlier runs first, then smaller keys (§3.3: records of
// the next run rank below — i.e. after — every current-run record).
struct RsBefore {
  bool operator()(const TaggedRecord& a, const TaggedRecord& b) const {
    if (a.run != b.run) return a.run < b.run;
    return a.key < b.key;
  }
};

}  // namespace

ReplacementSelection::ReplacementSelection(ReplacementSelectionOptions options)
    : options_(options) {}

Status ReplacementSelection::Generate(RecordSource* source, RunSink* sink,
                                      RunGenStats* stats) {
  if (options_.memory_records == 0) {
    return Status::InvalidArgument("memory_records must be positive");
  }
  const size_t first_run = sink->runs().size();

  BinaryHeap<TaggedRecord, RsBefore> heap;
  heap.Reserve(options_.memory_records);

  // Fill phase (heap.fill in Algorithm 1): load one memory's worth.
  Key key;
  while (heap.size() < options_.memory_records && source->Next(&key)) {
    heap.Push(TaggedRecord{key, 0});
  }

  uint32_t current_run = 0;
  bool in_run = false;
  if (!heap.empty()) {
    TWRS_RETURN_IF_ERROR(sink->BeginRun());
    in_run = true;
  }
  while (!heap.empty()) {
    // Run boundary: the top record belongs to the next run, hence so does
    // everything else in the heap (§3.3).
    if (heap.Top().run > current_run) {
      TWRS_RETURN_IF_ERROR(sink->EndRun());
      TWRS_RETURN_IF_ERROR(sink->BeginRun());
      current_run = heap.Top().run;
    }
    const TaggedRecord next_output = heap.Pop();
    TWRS_RETURN_IF_ERROR(sink->Append(kStream1, next_output.key));
    if (source->Next(&key)) {
      const uint32_t run =
          key < next_output.key ? current_run + 1 : current_run;
      heap.Push(TaggedRecord{key, run});
    }
  }
  if (in_run) TWRS_RETURN_IF_ERROR(sink->EndRun());
  TWRS_RETURN_IF_ERROR(sink->Finish());
  FillStatsFromSink(*sink, first_run, stats);
  return Status::OK();
}

}  // namespace twrs
