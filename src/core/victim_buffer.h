#ifndef TWRS_CORE_VICTIM_BUFFER_H_
#define TWRS_CORE_VICTIM_BUFFER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/record.h"
#include "core/run_sink.h"
#include "util/status.h"

namespace twrs {

/// The victim buffer of 2WRS (§4.3): a sorted pool for records that fall in
/// the gap between what the BottomHeap and TopHeap streams can still emit.
///
/// Lifecycle within one run:
///  1. Bootstrap: the first records popped in the run are parked here
///     instead of being written to streams. When full, the contents are
///     sorted and the largest gap between consecutive values becomes the
///     buffer's *valid range*; values at or below the gap return to the
///     BottomHeap, values at or above it to the TopHeap, and the stream
///     bounds become the gap ends. Choosing the largest gap — rather than
///     the gap between the two heap tops — maximizes the probability that
///     future records fit the buffer (§4.3). (The thesis writes the sampled
///     records straight to streams; re-inserting them instead keeps the
///     dead zone between the heap streams exactly equal to the valid range
///     even when the input heuristic separated the heaps imperfectly — see
///     DESIGN.md §2.1. The emitted runs are identical.)
///  2. Active: input (or popped) records inside the valid range are absorbed.
///     When the buffer fills, it is sorted and split at its largest gap:
///     values below go to stream 3 (increasing), values above to stream 2
///     (decreasing). The flushed ranges nest, so streams 3 and 2 stay
///     sorted, and the valid range narrows to the new largest gap.
///  3. Run end: the remainder is flushed, ascending, to stream 3.
class VictimBuffer {
 public:
  /// A capacity of 0 disables the buffer entirely.
  explicit VictimBuffer(size_t capacity);

  bool enabled() const { return capacity_ > 0; }
  bool bootstrapping() const { return enabled() && !range_set_; }
  bool Full() const { return values_.size() >= capacity_; }
  size_t size() const { return values_.size(); }
  size_t capacity() const { return capacity_; }

  /// True when the valid range is set and contains `key` (inclusive).
  bool RangeContains(Key key) const {
    return range_set_ && range_lo_ <= key && key <= range_hi_;
  }

  /// Adds a record; requires !Full().
  void Add(Key key);

  /// Counts records currently in memory with keys strictly inside an open
  /// interval. Supplied by the caller so gap selection can avoid ranges
  /// that would swallow the heap contents.
  using RangePopulation = std::function<uint64_t(Key lo, Key hi)>;

  /// Bootstrap split (state 1 above): sorts the contents, establishes the
  /// valid range at the best gap, and returns the values at or below the
  /// gap in `*lows` (for re-insertion into the BottomHeap) and the rest in
  /// `*highs` (for the TopHeap). The caller bounds stream 4 by range_lo()
  /// and stream 1 by range_hi() afterwards. Requires bootstrapping().
  ///
  /// Gap selection: the widest gap between consecutive sample values whose
  /// interior holds at most `capacity` in-memory records (per `population`,
  /// if provided) — the paper's largest-gap rule (§4.3) with a guard for
  /// the case where the heaps' key ranges overlap, where the widest sample
  /// gap would otherwise cover most of memory and shred the run. If no gap
  /// qualifies, the least-populated gap wins.
  Status BootstrapSplit(std::vector<Key>* lows, std::vector<Key>* highs,
                        const RangePopulation& population = nullptr);

  /// Active flush (state 2). Requires an established range.
  Status FlushActive(RunSink* sink);

  /// Run-end flush (state 3): remaining records go to stream 3 ascending.
  Status FlushFinal(RunSink* sink);

  /// Clears contents and range for the next run.
  void ResetForNewRun();

  Key range_lo() const { return range_lo_; }
  Key range_hi() const { return range_hi_; }
  bool range_set() const { return range_set_; }

  /// Number of flushes performed (gap re-selections), across all runs.
  uint64_t flush_count() const { return flush_count_; }

 private:
  // Sorts values_ and returns the index i maximizing values_[i+1]-values_[i];
  // requires size() >= 2.
  size_t LargestGapIndex();

  size_t capacity_;
  std::vector<Key> values_;
  bool range_set_ = false;
  Key range_lo_ = 0;
  Key range_hi_ = 0;
  uint64_t flush_count_ = 0;
};

}  // namespace twrs

#endif  // TWRS_CORE_VICTIM_BUFFER_H_
