#ifndef TWRS_CORE_RUN_SINK_H_
#define TWRS_CORE_RUN_SINK_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/record.h"
#include "core/run_stats.h"
#include "exec/async_io.h"
#include "io/env.h"
#include "io/record_io.h"
#include "io/reverse_run_file.h"
#include "util/status.h"

namespace twrs {

/// The four output streams of a 2WRS run (Fig 4.1). RS emits everything on
/// kStream1. Streams 1 and 3 carry non-decreasing keys; streams 2 and 4
/// carry non-increasing keys. Read in the order 4, 3, 2, 1 — with the
/// decreasing streams read through the Appendix-A reverse format — the run
/// is a single non-decreasing sequence.
enum RunStream {
  kStream1 = 0,  ///< TopHeap output, increasing
  kStream2 = 1,  ///< victim buffer upper flushes, decreasing
  kStream3 = 2,  ///< victim buffer lower flushes, increasing
  kStream4 = 3,  ///< BottomHeap output, decreasing
};

inline constexpr int kNumRunStreams = 4;

/// One physical segment of a generated run.
struct RunSegment {
  std::string path;      ///< file path (forward) or base path (reverse)
  bool reverse = false;  ///< true: Appendix-A format, read via ReverseRunReader
  uint64_t count = 0;    ///< records in the segment
  uint64_t num_files = 0;  ///< physical files (reverse segments only)
};

/// A generated run: segments listed in ascending key order, ready to merge.
struct RunInfo {
  std::vector<RunSegment> segments;
  uint64_t length = 0;  ///< total records across segments

  Key min_key = 0;  ///< smallest key in the run (valid when length > 0)
  Key max_key = 0;  ///< largest key in the run (valid when length > 0)
};

/// Receives the runs produced by a run generation algorithm.
///
/// Protocol: BeginRun, then any number of Append calls on the four streams
/// (each stream individually ordered as documented on RunStream), then
/// EndRun; repeated per run; finally Finish exactly once.
class RunSink {
 public:
  virtual ~RunSink() = default;

  virtual Status BeginRun() = 0;
  virtual Status Append(RunStream stream, Key key) = 0;
  virtual Status EndRun() = 0;
  virtual Status Finish() = 0;

  /// Completed runs (valid after each EndRun).
  const std::vector<RunInfo>& runs() const { return runs_; }

 protected:
  std::vector<RunInfo> runs_;
};

/// Counts run lengths without storing records. Used by the Chapter 5
/// factorial experiments, whose response variable is the number of runs.
class CountingRunSink : public RunSink {
 public:
  Status BeginRun() override;
  Status Append(RunStream stream, Key key) override;
  Status EndRun() override;
  Status Finish() override;

 private:
  bool in_run_ = false;
  uint64_t current_length_ = 0;
  bool have_bounds_ = false;
  Key min_key_ = 0;
  Key max_key_ = 0;
};

/// Collects each run as an in-memory vector assembled in ascending order
/// (test helper). Also validates per-stream ordering.
class CollectingRunSink : public RunSink {
 public:
  Status BeginRun() override;
  Status Append(RunStream stream, Key key) override;
  Status EndRun() override;
  Status Finish() override;

  /// The assembled runs, each in ascending order.
  const std::vector<std::vector<Key>>& collected() const { return collected_; }

 private:
  bool in_run_ = false;
  std::vector<Key> streams_[kNumRunStreams];
  std::vector<std::vector<Key>> collected_;
};

/// Options for file-backed run output.
struct FileRunSinkOptions {
  size_t block_bytes = kDefaultBlockBytes;
  ReverseRunFileOptions reverse;

  /// When non-null, forward streams write through a double-buffered
  /// AsyncWritableFile flushed on this pool, overlapping heap work with run
  /// output I/O. Decreasing streams use the positioned reverse-file format
  /// and stay synchronous. The pool must outlive the sink.
  ThreadPool* pool = nullptr;

  /// Size of each half of the async double buffer.
  size_t async_buffer_bytes = kDefaultAsyncBufferBytes;

  /// When non-null (and `pool` is set), every background flush of a
  /// forward run stream records its wall time here. Must outlive the sink.
  LatencyHistogram* flush_histogram = nullptr;
};

/// Writes runs to files under `dir` with the given name prefix. Forward
/// streams become plain record files; decreasing streams use the
/// Appendix-A reverse format so the merge phase reads everything forward.
class FileRunSink : public RunSink {
 public:
  FileRunSink(Env* env, std::string dir, std::string prefix,
              FileRunSinkOptions options = FileRunSinkOptions());

  Status BeginRun() override;
  Status Append(RunStream stream, Key key) override;
  Status EndRun() override;
  Status Finish() override;

 private:
  std::string StreamPath(uint64_t run, RunStream stream) const;

  Env* env_;
  std::string dir_;
  std::string prefix_;
  FileRunSinkOptions options_;
  uint64_t run_index_ = 0;
  bool in_run_ = false;
  bool have_bounds_ = false;
  Key min_key_ = 0;
  Key max_key_ = 0;
  std::unique_ptr<RecordWriter> forward_[kNumRunStreams];
  std::unique_ptr<ReverseRunWriter> reverse_[kNumRunStreams];
};

}  // namespace twrs

#endif  // TWRS_CORE_RUN_SINK_H_
