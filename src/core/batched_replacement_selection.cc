#include "core/batched_replacement_selection.h"

#include <algorithm>
#include <list>
#include <vector>

#include "heap/binary_heap.h"
#include "simd/kernels.h"

namespace twrs {

namespace {

// One sorted batch being consumed ("minirun", §3.7.1).
struct Minirun {
  std::vector<Key> keys;
  size_t cursor = 0;

  bool Exhausted() const { return cursor == keys.size(); }
  Key Head() const { return keys[cursor]; }
};

using MinirunList = std::list<Minirun>;

// Selection entry: the head record of one current minirun.
struct HeadItem {
  Key key;
  uint64_t serial;  // deterministic tie-break
  MinirunList::iterator minirun;
};

struct HeadBefore {
  bool operator()(const HeadItem& a, const HeadItem& b) const {
    if (a.key != b.key) return a.key < b.key;
    return a.serial < b.serial;
  }
};

}  // namespace

BatchedReplacementSelection::BatchedReplacementSelection(
    BatchedReplacementSelectionOptions options)
    : options_(options) {}

Status BatchedReplacementSelection::Generate(RecordSource* source,
                                             RunSink* sink,
                                             RunGenStats* stats) {
  if (options_.memory_records == 0) {
    return Status::InvalidArgument("memory_records must be positive");
  }
  if (options_.batch_records == 0 ||
      options_.batch_records > options_.memory_records) {
    return Status::InvalidArgument(
        "batch_records must be in [1, memory_records]");
  }
  const size_t first_run = sink->runs().size();
  const size_t batch = options_.batch_records;

  MinirunList current;   // miniruns feeding the current run
  MinirunList deferred;  // next-run miniruns (heads below the last output)
  BinaryHeap<HeadItem, HeadBefore> heads;
  size_t in_memory = 0;  // unconsumed records across all miniruns
  uint64_t next_serial = 0;
  bool input_done = false;
  bool have_last_output = false;
  Key last_output = 0;

  auto push_head = [&](MinirunList::iterator it) {
    heads.Push(HeadItem{it->Head(), next_serial++, it});
  };

  // Reads one batch, sorts it, and splits it at the last output: the suffix
  // extends the current run, the prefix is deferred to the next one.
  auto read_batch = [&]() -> bool {
    if (input_done) return false;
    std::vector<Key> keys;
    keys.reserve(batch);
    Key key;
    while (keys.size() < batch && source->Next(&key)) keys.push_back(key);
    if (keys.size() < batch) input_done = true;
    if (keys.empty()) return false;
    simd::SortKeysBlock(keys.data(), keys.size());
    in_memory += keys.size();
    size_t boundary = 0;
    if (have_last_output) {
      boundary = static_cast<size_t>(
          std::lower_bound(keys.begin(), keys.end(), last_output) -
          keys.begin());
    }
    if (boundary > 0) {
      Minirun prefix;
      prefix.keys.assign(keys.begin(), keys.begin() + boundary);
      deferred.push_back(std::move(prefix));
    }
    if (boundary < keys.size()) {
      Minirun suffix;
      suffix.keys.assign(keys.begin() + boundary, keys.end());
      current.push_back(std::move(suffix));
      push_head(std::prev(current.end()));
    }
    return true;
  };

  // Initial fill: load one memory's worth of batches.
  while (in_memory + batch <= options_.memory_records && read_batch()) {
  }
  if (current.empty() && deferred.empty()) {
    TWRS_RETURN_IF_ERROR(sink->Finish());
    FillStatsFromSink(*sink, first_run, stats);
    return Status::OK();
  }

  TWRS_RETURN_IF_ERROR(sink->BeginRun());
  for (;;) {
    if (heads.empty()) {
      // Current run complete; promote the deferred miniruns.
      TWRS_RETURN_IF_ERROR(sink->EndRun());
      if (deferred.empty()) break;
      TWRS_RETURN_IF_ERROR(sink->BeginRun());
      have_last_output = false;
      current = std::move(deferred);
      deferred.clear();
      for (auto it = current.begin(); it != current.end(); ++it) {
        push_head(it);
      }
      continue;
    }
    const HeadItem item = heads.Pop();
    TWRS_RETURN_IF_ERROR(sink->Append(kStream1, item.key));
    last_output = item.key;
    have_last_output = true;
    --in_memory;
    Minirun& minirun = *item.minirun;
    ++minirun.cursor;
    if (!minirun.Exhausted()) {
      push_head(item.minirun);
    } else {
      current.erase(item.minirun);
    }
    // Refill whenever a batch's worth of memory has been released.
    if (in_memory + batch <= options_.memory_records) read_batch();
  }
  TWRS_RETURN_IF_ERROR(sink->Finish());
  FillStatsFromSink(*sink, first_run, stats);
  return Status::OK();
}

}  // namespace twrs
