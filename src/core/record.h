#ifndef TWRS_CORE_RECORD_H_
#define TWRS_CORE_RECORD_H_

#include <cstdint>
#include <cstring>

namespace twrs {

/// Sorting key. The paper sorts 4-byte integer records; we use 64-bit keys so
/// the library is usable beyond the paper's benchmark setting. Nothing in the
/// algorithms depends on the key width.
using Key = int64_t;

/// Serialized size of one record on disk (little-endian Key).
inline constexpr size_t kRecordBytes = sizeof(Key);

/// A record tagged with the run it belongs to during run generation.
/// Records marked as belonging to a later run sink below all records of the
/// current run inside the selection heaps (§3.3).
struct TaggedRecord {
  Key key = 0;
  uint32_t run = 0;

  friend bool operator==(const TaggedRecord& a, const TaggedRecord& b) {
    return a.key == b.key && a.run == b.run;
  }
};

/// 1 when the host's in-memory integer layout already matches the on-disk
/// little-endian record format, letting the codecs degenerate to memcpy.
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
#define TWRS_LITTLE_ENDIAN 1
#else
#define TWRS_LITTLE_ENDIAN 0
#endif

/// Serializes `key` into `out` (little-endian, kRecordBytes bytes).
inline void EncodeKey(Key key, uint8_t* out) {
  uint64_t u = static_cast<uint64_t>(key);
#if TWRS_LITTLE_ENDIAN
  std::memcpy(out, &u, kRecordBytes);
#else
  for (size_t i = 0; i < kRecordBytes; ++i) {
    out[i] = static_cast<uint8_t>(u >> (8 * i));
  }
#endif
}

/// Deserializes a key written by EncodeKey.
inline Key DecodeKey(const uint8_t* in) {
  uint64_t u = 0;
#if TWRS_LITTLE_ENDIAN
  std::memcpy(&u, in, kRecordBytes);
#else
  for (size_t i = 0; i < kRecordBytes; ++i) {
    u |= static_cast<uint64_t>(in[i]) << (8 * i);
  }
#endif
  return static_cast<Key>(u);
}

}  // namespace twrs

#endif  // TWRS_CORE_RECORD_H_
