#include "core/run_generator.h"

namespace twrs {

void FillStatsFromSink(const RunSink& sink, size_t first_run,
                       RunGenStats* stats) {
  if (stats == nullptr) return;
  stats->run_lengths.clear();
  stats->total_records = 0;
  for (size_t i = first_run; i < sink.runs().size(); ++i) {
    const uint64_t len = sink.runs()[i].length;
    stats->run_lengths.push_back(len);
    stats->total_records += len;
  }
}

}  // namespace twrs
