#include "core/input_buffer.h"

#include <cassert>

namespace twrs {

void MedianTracker::Insert(Key key) {
  if (low_.empty() || key <= *low_.rbegin()) {
    low_.insert(key);
  } else {
    high_.insert(key);
  }
  Rebalance();
}

void MedianTracker::Erase(Key key) {
  auto it = low_.find(key);
  if (it != low_.end()) {
    low_.erase(it);
  } else {
    it = high_.find(key);
    assert(it != high_.end());
    high_.erase(it);
  }
  Rebalance();
}

Key MedianTracker::Median() const {
  assert(!empty());
  return *low_.rbegin();
}

void MedianTracker::Rebalance() {
  // Invariant: |low| == |high| or |low| == |high| + 1.
  if (low_.size() > high_.size() + 1) {
    auto it = std::prev(low_.end());
    high_.insert(*it);
    low_.erase(it);
  } else if (high_.size() > low_.size()) {
    auto it = high_.begin();
    low_.insert(*it);
    high_.erase(it);
  }
}

InputBuffer::InputBuffer(RecordSource* source, size_t capacity,
                         bool track_median)
    : source_(source), capacity_(capacity), track_median_(track_median) {}

void InputBuffer::Refill() {
  Key key;
  while (!source_done_ && fifo_.size() < capacity_) {
    if (!source_->Next(&key)) {
      source_done_ = true;
      break;
    }
    fifo_.push_back(key);
    if (track_median_) median_.Insert(key);
    sum_ += static_cast<double>(key);
  }
}

bool InputBuffer::Next(Key* key) {
  if (capacity_ == 0) {
    stats_size_ = 0;
    return source_->Next(key);
  }
  Refill();
  if (fifo_.empty()) return false;
  // Snapshot statistics over the full window, head included (§4.5 example).
  stats_size_ = fifo_.size();
  stats_mean_ = sum_ / static_cast<double>(fifo_.size());
  if (track_median_) stats_median_ = median_.Median();
  *key = fifo_.front();
  fifo_.pop_front();
  if (track_median_) median_.Erase(*key);
  sum_ -= static_cast<double>(*key);
  return true;
}

}  // namespace twrs
