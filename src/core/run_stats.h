#ifndef TWRS_CORE_RUN_STATS_H_
#define TWRS_CORE_RUN_STATS_H_

#include <cstdint>
#include <vector>

namespace twrs {

/// Statistics gathered while generating runs. The paper's Chapter 5 response
/// variable is the number of runs (equivalently the average run length,
/// since #runs x avg-length = input size); Chapter 6 additionally uses the
/// 2WRS-internal counters to explain where time goes.
struct RunGenStats {
  /// Length (in records) of each generated run, in generation order.
  std::vector<uint64_t> run_lengths;

  /// Total records emitted across all runs.
  uint64_t total_records = 0;

  /// 2WRS: records a heap produced that were re-tagged for the next run by
  /// the divert rule (see DESIGN.md §2.1). Always 0 for RS.
  uint64_t diverted_next_run = 0;

  /// 2WRS: records migrated from one heap to the other on pop because only
  /// the opposite side's stream could still accept them. Always 0 for RS.
  uint64_t migrated_across = 0;

  /// 2WRS: records absorbed by the victim buffer.
  uint64_t victim_records = 0;

  /// 2WRS: number of victim buffer flushes (gap re-selections).
  uint64_t victim_flushes = 0;

  uint64_t num_runs() const { return run_lengths.size(); }

  /// Average run length in records (0 when no runs were generated).
  double AverageRunLength() const {
    return run_lengths.empty()
               ? 0.0
               : static_cast<double>(total_records) /
                     static_cast<double>(run_lengths.size());
  }

  /// Average run length relative to the memory size, the unit used by
  /// Table 5.13 of the paper.
  double AverageRunLengthRelative(uint64_t memory_records) const {
    return memory_records == 0
               ? 0.0
               : AverageRunLength() / static_cast<double>(memory_records);
  }
};

}  // namespace twrs

#endif  // TWRS_CORE_RUN_STATS_H_
