#ifndef TWRS_CORE_BATCHED_REPLACEMENT_SELECTION_H_
#define TWRS_CORE_BATCHED_REPLACEMENT_SELECTION_H_

#include <cstddef>

#include "core/run_generator.h"

namespace twrs {

/// Options for batched replacement selection.
struct BatchedReplacementSelectionOptions {
  /// Total memory budget in records.
  size_t memory_records = 0;

  /// Records per minirun (Larson's batch). Larger batches mean a smaller
  /// selection structure (fewer cache misses, cheaper comparisons) but a
  /// coarser replacement granularity.
  size_t batch_records = 1024;
};

/// Batched replacement selection (Larson 2003; §3.7.1 of the thesis): a
/// cache-conscious variant of RS.
///
/// Instead of inserting input records into one large heap, records are read
/// in batches, each batch is sorted into a *minirun*, and the selection
/// structure only merges the minirun heads — so its size is the number of
/// miniruns, not the number of records. Replacing a popped record touches
/// one sorted array sequentially instead of walking a heap branch, which is
/// what removes most cache misses. Records of a new batch that are smaller
/// than the last output cannot extend the current run; they form a deferred
/// minirun for the next run, mirroring RS's next-run marking at batch
/// granularity. Run lengths on random input remain about twice the memory;
/// the boundary behaviour is slightly coarser than record-at-a-time RS.
class BatchedReplacementSelection : public RunGenerator {
 public:
  explicit BatchedReplacementSelection(
      BatchedReplacementSelectionOptions options);

  Status Generate(RecordSource* source, RunSink* sink,
                  RunGenStats* stats) override;

  std::string name() const override { return "BatchedRS"; }

 private:
  BatchedReplacementSelectionOptions options_;
};

}  // namespace twrs

#endif  // TWRS_CORE_BATCHED_REPLACEMENT_SELECTION_H_
