#ifndef TWRS_CORE_RECORD_SOURCE_H_
#define TWRS_CORE_RECORD_SOURCE_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "core/record.h"

namespace twrs {

/// A stream of input records. Run generation algorithms consume records one
/// at a time so that inputs never need to fit in memory — exactly the
/// database setting the paper targets, where upstream operators feed the
/// sort incrementally.
class RecordSource {
 public:
  virtual ~RecordSource() = default;

  /// Produces the next record in `*key`; returns false at end of stream.
  virtual bool Next(Key* key) = 0;
};

/// RecordSource over an in-memory vector (test and example helper).
class VectorSource : public RecordSource {
 public:
  explicit VectorSource(std::vector<Key> keys) : keys_(std::move(keys)) {}

  bool Next(Key* key) override {
    if (pos_ == keys_.size()) return false;
    *key = keys_[pos_++];
    return true;
  }

  /// Rewinds to the beginning.
  void Reset() { pos_ = 0; }

 private:
  std::vector<Key> keys_;
  size_t pos_ = 0;
};

}  // namespace twrs

#endif  // TWRS_CORE_RECORD_SOURCE_H_
