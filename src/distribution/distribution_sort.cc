#include "distribution/distribution_sort.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "merge/external_sorter.h"
#include "simd/kernels.h"

namespace twrs {

namespace {

// State of one distribution sort execution. All scratch files live inside
// `work_dir`, a unique per-sort subdirectory of options.temp_dir, so
// concurrent distribution sorts sharing a temp_dir never collide.
class Context {
 public:
  Context(Env* env, const DistributionSortOptions& options,
          std::string work_dir, RecordWriter* output,
          DistributionSortStats* stats)
      : env_(env),
        options_(options),
        work_dir_(std::move(work_dir)),
        output_(output),
        stats_(stats) {}

  std::string NextTempPath() {
    return work_dir_ + "/bucket_" + std::to_string(counter_++);
  }

  // Sorts the bucket file `path` (count records spanning [min,max]) and
  // appends the result to the output; consumes (deletes) the file.
  Status SortBucket(const std::string& path, uint64_t count, Key min_key,
                    Key max_key, size_t depth) {
    if (stats_ != nullptr) {
      stats_->max_depth_reached =
          std::max<uint64_t>(stats_->max_depth_reached, depth);
    }
    if (count == 0) {
      return env_->RemoveFile(path);
    }
    if (count <= options_.memory_records) {
      // Leaf: the bucket fits in memory (§2.2 step 3 with internal sort).
      std::vector<Key> keys;
      TWRS_RETURN_IF_ERROR(ReadAllRecords(env_, path, &keys));
      simd::SortKeysBlock(keys.data(), keys.size());
      for (Key k : keys) TWRS_RETURN_IF_ERROR(output_->Append(k));
      if (stats_ != nullptr) ++stats_->in_memory_sorts;
      return env_->RemoveFile(path);
    }
    const uint64_t span =
        static_cast<uint64_t>(max_key) - static_cast<uint64_t>(min_key);
    if (depth >= options_.max_depth || span < options_.num_buckets) {
      // Splitting cannot make progress (heavy clustering); fall back to
      // external mergesort for this bucket (§2.2 allows any external sort).
      return Fallback(path);
    }
    return Distribute(path, min_key, max_key, depth);
  }

 private:
  Status Distribute(const std::string& path, Key min_key, Key max_key,
                    size_t depth) {
    const size_t buckets = options_.num_buckets;
    const uint64_t span =
        static_cast<uint64_t>(max_key) - static_cast<uint64_t>(min_key);
    const uint64_t width = span / buckets + 1;

    struct Bucket {
      std::string path;
      std::unique_ptr<RecordWriter> writer;
      uint64_t count = 0;
      Key min_key = 0;
      Key max_key = 0;
    };
    std::vector<Bucket> out(buckets);
    for (Bucket& b : out) {
      b.path = NextTempPath();
      b.writer =
          std::make_unique<RecordWriter>(env_, b.path, options_.block_bytes);
      TWRS_RETURN_IF_ERROR(b.writer->status());
    }

    RecordReader reader(env_, path, options_.block_bytes);
    TWRS_RETURN_IF_ERROR(reader.status());
    for (;;) {
      Key key;
      bool eof;
      TWRS_RETURN_IF_ERROR(reader.Next(&key, &eof));
      if (eof) break;
      const uint64_t idx =
          (static_cast<uint64_t>(key) - static_cast<uint64_t>(min_key)) /
          width;
      Bucket& b = out[idx];
      if (b.count == 0) {
        b.min_key = b.max_key = key;
      } else {
        b.min_key = std::min(b.min_key, key);
        b.max_key = std::max(b.max_key, key);
      }
      ++b.count;
      TWRS_RETURN_IF_ERROR(b.writer->Append(key));
    }
    for (Bucket& b : out) TWRS_RETURN_IF_ERROR(b.writer->Finish());
    TWRS_RETURN_IF_ERROR(env_->RemoveFile(path));
    if (stats_ != nullptr) ++stats_->distribution_passes;

    // Buckets hold disjoint, increasing ranges: sorting them in order and
    // concatenating yields the final sorted sequence (§2.2 step 4).
    for (Bucket& b : out) {
      TWRS_RETURN_IF_ERROR(
          SortBucket(b.path, b.count, b.min_key, b.max_key, depth + 1));
    }
    return Status::OK();
  }

  Status Fallback(const std::string& path) {
    ExternalSortOptions sort_options;
    sort_options.algorithm = RunGenAlgorithm::kReplacementSelection;
    sort_options.memory_records = options_.memory_records;
    // ExternalSorter works in a unique subdirectory of its temp_dir, so
    // fallback sorts can share the work dir without clashing.
    sort_options.temp_dir = work_dir_;
    sort_options.block_bytes = options_.block_bytes;
    ExternalSorter sorter(env_, sort_options);
    const std::string sorted_path = NextTempPath();

    class FileSource : public RecordSource {
     public:
      FileSource(Env* env, const std::string& path, size_t block_bytes)
          : reader_(env, path, block_bytes) {}
      bool Next(Key* key) override {
        bool eof = false;
        if (!reader_.status().ok()) return false;
        if (!reader_.Next(key, &eof).ok()) return false;
        return !eof;
      }

     private:
      RecordReader reader_;
    };

    FileSource bucket_source(env_, path, options_.block_bytes);
    TWRS_RETURN_IF_ERROR(sorter.Sort(&bucket_source, sorted_path, nullptr));
    RecordReader sorted(env_, sorted_path, options_.block_bytes);
    TWRS_RETURN_IF_ERROR(sorted.status());
    for (;;) {
      Key key;
      bool eof;
      TWRS_RETURN_IF_ERROR(sorted.Next(&key, &eof));
      if (eof) break;
      TWRS_RETURN_IF_ERROR(output_->Append(key));
    }
    if (stats_ != nullptr) ++stats_->fallback_sorts;
    TWRS_RETURN_IF_ERROR(env_->RemoveFile(sorted_path));
    return env_->RemoveFile(path);
  }

  Env* env_;
  const DistributionSortOptions& options_;
  std::string work_dir_;
  RecordWriter* output_;
  DistributionSortStats* stats_;
  uint64_t counter_ = 0;
};

}  // namespace

Status DistributionSort(Env* env, RecordSource* source,
                        const DistributionSortOptions& options,
                        const std::string& output_path,
                        DistributionSortStats* stats) {
  if (options.num_buckets < 2) {
    return Status::InvalidArgument("num_buckets must be at least 2");
  }
  const std::string work_dir =
      options.temp_dir + "/" + UniqueScratchDirName("dist");
  TWRS_RETURN_IF_ERROR(env->CreateDirIfMissing(work_dir));

  // Pass 0: materialize the stream while learning its range — a streaming
  // input's min/max are unknown up front (the paper assumes a known range;
  // this pass removes that assumption).
  const std::string staging = work_dir + "/staging";
  uint64_t count = 0;
  Key min_key = 0;
  Key max_key = 0;
  {
    RecordWriter writer(env, staging, options.block_bytes);
    TWRS_RETURN_IF_ERROR(writer.status());
    Key key;
    while (source->Next(&key)) {
      if (count == 0) {
        min_key = max_key = key;
      } else {
        min_key = std::min(min_key, key);
        max_key = std::max(max_key, key);
      }
      ++count;
      TWRS_RETURN_IF_ERROR(writer.Append(key));
    }
    TWRS_RETURN_IF_ERROR(writer.Finish());
  }

  RecordWriter output(env, output_path, options.block_bytes);
  TWRS_RETURN_IF_ERROR(output.status());
  Context context(env, options, work_dir, &output, stats);
  TWRS_RETURN_IF_ERROR(
      context.SortBucket(staging, count, min_key, max_key, 0));
  TWRS_RETURN_IF_ERROR(output.Finish());
  return env->RemoveDir(work_dir);
}

}  // namespace twrs
