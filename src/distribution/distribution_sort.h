#ifndef TWRS_DISTRIBUTION_DISTRIBUTION_SORT_H_
#define TWRS_DISTRIBUTION_DISTRIBUTION_SORT_H_

#include <cstdint>
#include <string>

#include "core/record_source.h"
#include "io/env.h"
#include "io/record_io.h"
#include "util/status.h"

namespace twrs {

/// Configuration of external distribution (bucket) sort (§2.2).
struct DistributionSortOptions {
  /// In-memory budget in records: buckets at or below this size are sorted
  /// in memory instead of recursing.
  size_t memory_records = 1 << 16;

  /// Buckets per distribution pass. Ranges are split uniformly (§2.2's
  /// simplest variant), so clustered inputs recurse deeper.
  size_t num_buckets = 16;

  /// Recursion ceiling; beyond it a bucket falls back to an in-memory-less
  /// safe path (external mergesort on that bucket). Guards against
  /// pathological clustering (all-equal keys).
  size_t max_depth = 16;

  std::string temp_dir = "/tmp/twrs_dist";
  size_t block_bytes = kDefaultBlockBytes;
};

/// Distribution sort statistics.
struct DistributionSortStats {
  uint64_t distribution_passes = 0;  ///< bucket-splitting passes performed
  uint64_t in_memory_sorts = 0;      ///< leaf buckets sorted in memory
  uint64_t fallback_sorts = 0;       ///< buckets handed to external mergesort
  uint64_t max_depth_reached = 0;
};

/// Sorts `source` into the record file at `output_path` using the
/// distribution paradigm: records are partitioned into range-disjoint
/// bucket files, each bucket is sorted (recursively when it exceeds
/// memory), and the sorted buckets are concatenated — no merge phase (§2.2).
Status DistributionSort(Env* env, RecordSource* source,
                        const DistributionSortOptions& options,
                        const std::string& output_path,
                        DistributionSortStats* stats);

}  // namespace twrs

#endif  // TWRS_DISTRIBUTION_DISTRIBUTION_SORT_H_
