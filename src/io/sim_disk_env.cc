#include "io/sim_disk_env.h"

#include <chrono>
#include <thread>

namespace twrs {

void DiskModel::Access(uint64_t file_id, uint64_t offset, uint64_t n) {
  double access_seconds = 0.0;
  {
    MutexLock lock(&mu_);
    const bool forward_contiguous =
        file_id == last_file_ && offset == last_end_offset_;
    const bool backward_contiguous =
        file_id == last_file_ && offset + n == last_start_offset_;
    if (!forward_contiguous && !backward_contiguous) {
      ++seeks_;
      access_seconds += config_.seek_seconds;
    }
    bytes_ += n;
    last_file_ = file_id;
    last_start_offset_ = offset;
    last_end_offset_ = offset + n;
    access_seconds +=
        static_cast<double>(n) / config_.bandwidth_bytes_per_second;
  }
  if (config_.realtime) {
    // Sleep outside the lock so concurrent accesses emulate a device that
    // overlaps with the CPU, not one serialized behind the accounting.
    std::this_thread::sleep_for(std::chrono::duration<double>(access_seconds));
  }
}

double DiskModel::SimulatedSeconds() const {
  MutexLock lock(&mu_);
  return static_cast<double>(seeks_) * config_.seek_seconds +
         static_cast<double>(bytes_) / config_.bandwidth_bytes_per_second;
}

void DiskModel::Reset() {
  MutexLock lock(&mu_);
  seeks_ = 0;
  bytes_ = 0;
  last_file_ = UINT64_MAX;
  last_start_offset_ = 0;
  last_end_offset_ = 0;
}

namespace {

class SimWritableFile : public WritableFile {
 public:
  SimWritableFile(std::unique_ptr<WritableFile> base, DiskModel* model,
                  uint64_t file_id)
      : base_(std::move(base)), model_(model), file_id_(file_id) {}

  Status Append(const void* data, size_t n) override {
    model_->Access(file_id_, offset_, n);
    offset_ += n;
    return base_->Append(data, n);
  }

  // No simulated cost: the model charges transfers, and the usual base
  // (MemEnv) has no volatile cache for Sync to flush.
  Status Sync() override { return base_->Sync(); }

  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<WritableFile> base_;
  DiskModel* model_;
  uint64_t file_id_;
  uint64_t offset_ = 0;
};

class SimSequentialFile : public SequentialFile {
 public:
  SimSequentialFile(std::unique_ptr<SequentialFile> base, DiskModel* model,
                    uint64_t file_id)
      : base_(std::move(base)), model_(model), file_id_(file_id) {}

  Status Read(void* out, size_t n, size_t* bytes_read) override {
    Status s = base_->Read(out, n, bytes_read);
    if (s.ok() && *bytes_read > 0) {
      model_->Access(file_id_, offset_, *bytes_read);
      offset_ += *bytes_read;
    }
    return s;
  }

  Status Skip(uint64_t n) override {
    offset_ += n;
    return base_->Skip(n);
  }

 private:
  std::unique_ptr<SequentialFile> base_;
  DiskModel* model_;
  uint64_t file_id_;
  uint64_t offset_ = 0;
};

class SimRandomRWFile : public RandomRWFile {
 public:
  SimRandomRWFile(std::unique_ptr<RandomRWFile> base, DiskModel* model,
                  uint64_t file_id)
      : base_(std::move(base)), model_(model), file_id_(file_id) {}

  Status WriteAt(uint64_t offset, const void* data, size_t n) override {
    model_->Access(file_id_, offset, n);
    return base_->WriteAt(offset, data, n);
  }

  Status ReadAt(uint64_t offset, void* out, size_t n) override {
    model_->Access(file_id_, offset, n);
    return base_->ReadAt(offset, out, n);
  }

  Status Sync() override { return base_->Sync(); }

  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<RandomRWFile> base_;
  DiskModel* model_;
  uint64_t file_id_;
};

}  // namespace

SimDiskEnv::SimDiskEnv(Env* base, DiskModelConfig config)
    : base_(base), model_(config) {}

uint64_t SimDiskEnv::FileId(const std::string& path) {
  MutexLock lock(&file_ids_mu_);
  auto [it, inserted] = file_ids_.emplace(path, next_file_id_);
  if (inserted) ++next_file_id_;
  return it->second;
}

Status SimDiskEnv::NewWritableFile(const std::string& path,
                                   std::unique_ptr<WritableFile>* out) {
  std::unique_ptr<WritableFile> base;
  TWRS_RETURN_IF_ERROR(base_->NewWritableFile(path, &base));
  out->reset(new SimWritableFile(std::move(base), &model_, FileId(path)));
  return Status::OK();
}

Status SimDiskEnv::NewSequentialFile(const std::string& path,
                                     std::unique_ptr<SequentialFile>* out) {
  std::unique_ptr<SequentialFile> base;
  TWRS_RETURN_IF_ERROR(base_->NewSequentialFile(path, &base));
  out->reset(new SimSequentialFile(std::move(base), &model_, FileId(path)));
  return Status::OK();
}

Status SimDiskEnv::NewRandomRWFile(const std::string& path,
                                   std::unique_ptr<RandomRWFile>* out) {
  std::unique_ptr<RandomRWFile> base;
  TWRS_RETURN_IF_ERROR(base_->NewRandomRWFile(path, &base));
  out->reset(new SimRandomRWFile(std::move(base), &model_, FileId(path)));
  return Status::OK();
}

Status SimDiskEnv::ReopenRandomRWFile(const std::string& path,
                                      std::unique_ptr<RandomRWFile>* out) {
  std::unique_ptr<RandomRWFile> base;
  TWRS_RETURN_IF_ERROR(base_->ReopenRandomRWFile(path, &base));
  out->reset(new SimRandomRWFile(std::move(base), &model_, FileId(path)));
  return Status::OK();
}

Status SimDiskEnv::NewRandomReadFile(const std::string& path,
                                     std::unique_ptr<RandomRWFile>* out) {
  std::unique_ptr<RandomRWFile> base;
  TWRS_RETURN_IF_ERROR(base_->NewRandomReadFile(path, &base));
  out->reset(new SimRandomRWFile(std::move(base), &model_, FileId(path)));
  return Status::OK();
}

bool SimDiskEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Status SimDiskEnv::RemoveFile(const std::string& path) {
  return base_->RemoveFile(path);
}

Status SimDiskEnv::GetFileSize(const std::string& path, uint64_t* size) {
  return base_->GetFileSize(path, size);
}

Status SimDiskEnv::CreateDirIfMissing(const std::string& path) {
  return base_->CreateDirIfMissing(path);
}

Status SimDiskEnv::RemoveDir(const std::string& path) {
  return base_->RemoveDir(path);
}

Status SimDiskEnv::ListDir(const std::string& path,
                           std::vector<std::string>* names) {
  // Metadata-only, like the other directory operations: no simulated cost.
  return base_->ListDir(path, names);
}

}  // namespace twrs
