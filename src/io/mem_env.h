#ifndef TWRS_IO_MEM_ENV_H_
#define TWRS_IO_MEM_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "io/env.h"

namespace twrs {

/// In-memory Env used by the test suite. Every file is a byte vector keyed by
/// path; directories are implicit. Single-threaded, like the library.
class MemEnv : public Env {
 public:
  MemEnv() = default;

  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<WritableFile>* out) override;
  Status NewSequentialFile(const std::string& path,
                           std::unique_ptr<SequentialFile>* out) override;
  Status NewRandomRWFile(const std::string& path,
                         std::unique_ptr<RandomRWFile>* out) override;
  Status ReopenRandomRWFile(const std::string& path,
                            std::unique_ptr<RandomRWFile>* out) override;
  Status NewRandomReadFile(const std::string& path,
                           std::unique_ptr<RandomRWFile>* out) override;
  bool FileExists(const std::string& path) override;
  Status RemoveFile(const std::string& path) override;
  Status GetFileSize(const std::string& path, uint64_t* size) override;
  Status CreateDirIfMissing(const std::string& path) override;

  /// Number of files currently stored (test helper).
  size_t FileCount() const { return files_.size(); }

  /// Direct access to a file's bytes (test helper); null if absent.
  const std::vector<uint8_t>* FileContents(const std::string& path) const;

 private:
  // Shared so that open handles survive RemoveFile, as POSIX does.
  std::map<std::string, std::shared_ptr<std::vector<uint8_t>>> files_;
};

}  // namespace twrs

#endif  // TWRS_IO_MEM_ENV_H_
