#ifndef TWRS_IO_MEM_ENV_H_
#define TWRS_IO_MEM_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "io/env.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace twrs {

namespace internal {

/// One stored MemEnv file: its bytes plus the per-file lock every open
/// handle takes around an access.
struct MemEnvFile {
  Mutex mu;
  std::vector<uint8_t> data TWRS_GUARDED_BY(mu);
};

}  // namespace internal

/// In-memory Env used by the test suite. Every file is a byte vector keyed by
/// path; directories are implicit. The path map is mutex-protected so
/// concurrent sorts and the exec subsystem's background I/O can share one
/// MemEnv. Each file additionally carries its own mutex, giving the same
/// guarantee POSIX gives pwrite: concurrent handles to one file may write
/// disjoint byte ranges (the RangeMergeSink pattern) without a data race.
class MemEnv : public Env {
 public:
  MemEnv() = default;

  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<WritableFile>* out) override;
  Status NewSequentialFile(const std::string& path,
                           std::unique_ptr<SequentialFile>* out) override;
  Status NewRandomRWFile(const std::string& path,
                         std::unique_ptr<RandomRWFile>* out) override;
  Status ReopenRandomRWFile(const std::string& path,
                            std::unique_ptr<RandomRWFile>* out) override;
  Status NewRandomReadFile(const std::string& path,
                           std::unique_ptr<RandomRWFile>* out) override;
  bool FileExists(const std::string& path) override;
  Status RemoveFile(const std::string& path) override;
  Status GetFileSize(const std::string& path, uint64_t* size) override;
  Status CreateDirIfMissing(const std::string& path) override;
  Status RemoveDir(const std::string& path) override;
  Status ListDir(const std::string& path,
                 std::vector<std::string>* names) override;

  /// Number of files currently stored (test helper).
  size_t FileCount() const TWRS_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return files_.size();
  }

  /// Direct access to a file's bytes (test helper); null if absent. Only
  /// safe while no writer has the file open.
  const std::vector<uint8_t>* FileContents(const std::string& path) const
      TWRS_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  // Shared so that open handles survive RemoveFile, as POSIX does.
  std::map<std::string, std::shared_ptr<internal::MemEnvFile>> files_
      TWRS_GUARDED_BY(mu_);
};

}  // namespace twrs

#endif  // TWRS_IO_MEM_ENV_H_
