#ifndef TWRS_IO_ENV_H_
#define TWRS_IO_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace twrs {

/// Append-only file handle.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Appends `n` bytes to the file.
  virtual Status Append(const void* data, size_t n) = 0;

  /// Forces written data to stable storage (fdatasync semantics). The
  /// default is a no-op: MemEnv and SimDiskEnv have no volatile cache to
  /// flush. Durable backends (PosixEnv, IoUringEnv) override it; the sort
  /// pipeline calls it once on the final output before Close.
  virtual Status Sync() { return Status::OK(); }

  /// Flushes buffered data and closes the handle. Idempotent.
  virtual Status Close() = 0;
};

/// Sequentially readable file handle.
class SequentialFile {
 public:
  virtual ~SequentialFile() = default;

  /// Reads up to `n` bytes; `*bytes_read` < n signals end of file.
  virtual Status Read(void* out, size_t n, size_t* bytes_read) = 0;

  /// Skips `n` bytes forward.
  virtual Status Skip(uint64_t n) = 0;
};

/// Random-access read/write handle used by the reverse run file format
/// (Appendix A), which writes pages back to front.
class RandomRWFile {
 public:
  virtual ~RandomRWFile() = default;

  /// Writes `n` bytes at absolute `offset`, extending the file if needed.
  virtual Status WriteAt(uint64_t offset, const void* data, size_t n) = 0;

  /// Reads exactly `n` bytes at `offset`; fails if the range is short.
  virtual Status ReadAt(uint64_t offset, void* out, size_t n) = 0;

  /// Forces written data to stable storage (fdatasync semantics). Default
  /// no-op; see WritableFile::Sync.
  virtual Status Sync() { return Status::OK(); }

  virtual Status Close() = 0;
};

/// What an Env's file handles already overlap internally. The async
/// decorators (AsyncWritableFile, PrefetchingSequentialFile, the
/// double-buffered RangeMergeSink flush) consult this and stay thin —
/// no pump thread, no extra copy — when the backend is natively async.
struct IoCapabilities {
  /// WritableFile::Append returns before the data hits the disk; the
  /// backend overlaps the write with the caller's compute.
  bool async_appends = false;
  /// SequentialFile::Read is fed by backend-side read-ahead.
  bool async_reads = false;
  /// RandomRWFile::WriteAt is submitted without blocking on completion.
  bool async_positioned_writes = false;
};

/// Selects which Env implementation Env::Default(IoBackend) returns.
enum class IoBackend {
  kDefault,  ///< whatever Env the caller already holds (no override)
  kPosix,    ///< blocking read/write PosixEnv
  kUring,    ///< kernel submission/completion rings (IoUringEnv)
  kAuto,     ///< kUring when supported at runtime, else kPosix
};

/// Abstraction over the storage system (RocksDB idiom). The library performs
/// all file I/O through an Env so that tests can run against an in-memory
/// filesystem and benchmarks can run against a simulated disk model.
class Env {
 public:
  virtual ~Env() = default;

  /// Creates (truncating) a sequential-write file.
  virtual Status NewWritableFile(const std::string& path,
                                 std::unique_ptr<WritableFile>* out) = 0;

  /// Opens an existing file for sequential reads.
  virtual Status NewSequentialFile(const std::string& path,
                                   std::unique_ptr<SequentialFile>* out) = 0;

  /// Creates (truncating) a positioned read/write file.
  virtual Status NewRandomRWFile(const std::string& path,
                                 std::unique_ptr<RandomRWFile>* out) = 0;

  /// Opens an existing file for positioned read/write without truncation.
  virtual Status ReopenRandomRWFile(const std::string& path,
                                    std::unique_ptr<RandomRWFile>* out) = 0;

  /// Opens an existing file for positioned reads.
  virtual Status NewRandomReadFile(const std::string& path,
                                   std::unique_ptr<RandomRWFile>* out) = 0;

  virtual bool FileExists(const std::string& path) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;
  virtual Status GetFileSize(const std::string& path, uint64_t* size) = 0;

  /// Creates a directory (and parents) if missing; OK if it already exists.
  virtual Status CreateDirIfMissing(const std::string& path) = 0;

  /// Removes `path` if it is an existing empty directory. Best-effort
  /// cleanup helper: an absent or non-empty directory is OK, not an error.
  virtual Status RemoveDir(const std::string& path) = 0;

  /// Lists the immediate entries (files and subdirectories) of `path`,
  /// without "." and "..". Backends with implicit directories (MemEnv)
  /// synthesize subdirectory names from their path map. Defaults to
  /// NotSupported so custom Envs keep compiling; RemoveTreeBestEffort then
  /// degrades to removing nothing.
  virtual Status ListDir(const std::string& path,
                         std::vector<std::string>* names);

  /// What this Env's handles overlap internally (all-false by default).
  /// Decorators forward to their base so capability checks see through
  /// CountingEnv/SimDiskEnv wrapping.
  virtual IoCapabilities io_capabilities() const { return IoCapabilities(); }

  /// Returns the process-wide POSIX environment.
  static Env* Default();

  /// Returns the process-wide Env for `backend` (leaked singletons, one
  /// per backend). kDefault and kPosix return Default(); kUring returns
  /// the IoUringEnv (which must be supported — check with
  /// ResolveIoBackend first); kAuto resolves to uring when supported.
  static Env* Default(IoBackend backend);
};

/// Short lowercase name of a backend ("posix", "uring", "auto", ...).
const char* IoBackendName(IoBackend backend);

/// Parses "posix" / "uring" / "auto" into `*out`. False on anything else.
bool ParseIoBackend(const std::string& text, IoBackend* out);

/// Resolves `backend` to a concrete choice (kPosix or kUring) against
/// runtime support. kAuto degrades to kPosix when io_uring is
/// unavailable; an explicit kUring request fails with a one-line error
/// naming the reason instead. kDefault resolves to kDefault (meaning
/// "keep the Env you already have").
Status ResolveIoBackend(IoBackend backend, IoBackend* resolved);

/// Recursively removes everything under `path` and then `path` itself,
/// ignoring errors. Error-path cleanup helper: after a failed sort the
/// scratch directory may hold run files, intermediate merges and nested
/// per-shard sort directories in any combination, and none of them must
/// survive the failure.
void RemoveTreeBestEffort(Env* env, const std::string& path);

/// Verifies `temp_dir` exists (creating it if missing) and is writable by
/// creating, writing and removing a probe file. Returns a one-line
/// actionable error naming the directory, so a sort can fail at submission
/// time instead of with an opaque I/O error minutes into run generation.
Status PreflightTempDir(Env* env, const std::string& temp_dir);

/// A scratch-subdirectory name no other caller will pick: the pid keeps
/// separate processes sharing a default temp_dir apart, a process-wide
/// counter keeps concurrent callers within one process apart. Shared by
/// every sorter that works inside a per-invocation subdirectory of its
/// configured temp_dir (ExternalSorter, DistributionSort, ShardedSorter).
std::string UniqueScratchDirName(const std::string& prefix);

}  // namespace twrs

#endif  // TWRS_IO_ENV_H_
