#ifndef TWRS_IO_SIM_DISK_ENV_H_
#define TWRS_IO_SIM_DISK_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "io/env.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace twrs {

/// Parameters of the simulated rotating disk. Defaults approximate the 2010
/// 60 GB SATA drive of the paper's testbed (§6.1).
struct DiskModelConfig {
  /// Average positioning cost charged whenever an access is not sequential
  /// with the previous one (seek + rotational latency).
  double seek_seconds = 0.008;

  /// Sequential transfer bandwidth.
  double bandwidth_bytes_per_second = 100.0 * 1024 * 1024;

  /// When true, every access also sleeps its simulated duration in the
  /// calling thread, turning the model into a real-time emulated device.
  /// Accounting-only by default. Real-time mode makes wall-clock
  /// measurements show I/O/CPU overlap: the pipelined sort path pays these
  /// sleeps on background flush/prefetch/pool threads while the serial path
  /// pays them inline.
  bool realtime = false;
};

/// Accrues simulated I/O time for a sequence of accesses. An access is
/// sequential (no seek charged) when it continues exactly where the previous
/// access on the same file ended, or when it ends exactly where the previous
/// access began (backward-contiguous writes, which Appendix A.1 notes the
/// operating system's write cache absorbs without synchronous seeks); any
/// other access pays one seek. Thread-safe: the parallel sort path issues
/// accesses from pool workers and background flushers concurrently.
class DiskModel {
 public:
  explicit DiskModel(DiskModelConfig config = DiskModelConfig())
      : config_(config) {}

  /// Charges one access of `n` bytes at `offset` of file `file_id`.
  void Access(uint64_t file_id, uint64_t offset, uint64_t n)
      TWRS_EXCLUDES(mu_);

  /// Total simulated seconds so far.
  double SimulatedSeconds() const TWRS_EXCLUDES(mu_);

  uint64_t seeks() const TWRS_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return seeks_;
  }
  uint64_t bytes_transferred() const TWRS_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return bytes_;
  }

  void Reset() TWRS_EXCLUDES(mu_);

 private:
  /// Immutable after construction; read without the lock (notably
  /// `realtime`, polled outside it so the emulated sleep never serializes
  /// concurrent accesses behind the accounting).
  const DiskModelConfig config_;
  mutable Mutex mu_;
  uint64_t seeks_ TWRS_GUARDED_BY(mu_) = 0;
  uint64_t bytes_ TWRS_GUARDED_BY(mu_) = 0;
  uint64_t last_file_ TWRS_GUARDED_BY(mu_) = UINT64_MAX;
  uint64_t last_start_offset_ TWRS_GUARDED_BY(mu_) = 0;
  uint64_t last_end_offset_ TWRS_GUARDED_BY(mu_) = 0;
};

/// Env decorator that forwards all operations to a base Env while charging
/// a DiskModel for every read and write. Used by the Chapter 6 benchmarks to
/// reproduce seek-bound effects (e.g. the fan-in U-curve of Figure 6.1) that
/// a page-cached SSD hides.
///
/// Deliberately keeps the default all-false io_capabilities() even over an
/// async base: the simulated disk is a blocking device, and the pump-thread
/// decorators it forces are exactly what the overlap benchmarks measure.
class SimDiskEnv : public Env {
 public:
  /// Does not take ownership of `base`, which must outlive this Env.
  explicit SimDiskEnv(Env* base, DiskModelConfig config = DiskModelConfig());

  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<WritableFile>* out) override;
  Status NewSequentialFile(const std::string& path,
                           std::unique_ptr<SequentialFile>* out) override;
  Status NewRandomRWFile(const std::string& path,
                         std::unique_ptr<RandomRWFile>* out) override;
  Status ReopenRandomRWFile(const std::string& path,
                            std::unique_ptr<RandomRWFile>* out) override;
  Status NewRandomReadFile(const std::string& path,
                           std::unique_ptr<RandomRWFile>* out) override;
  bool FileExists(const std::string& path) override;
  Status RemoveFile(const std::string& path) override;
  Status GetFileSize(const std::string& path, uint64_t* size) override;
  Status CreateDirIfMissing(const std::string& path) override;
  Status RemoveDir(const std::string& path) override;
  Status ListDir(const std::string& path,
                 std::vector<std::string>* names) override;

  DiskModel& model() { return model_; }
  const DiskModel& model() const { return model_; }

 private:
  uint64_t FileId(const std::string& path) TWRS_EXCLUDES(file_ids_mu_);

  Env* base_;
  DiskModel model_;
  Mutex file_ids_mu_;
  std::unordered_map<std::string, uint64_t> file_ids_
      TWRS_GUARDED_BY(file_ids_mu_);
  uint64_t next_file_id_ TWRS_GUARDED_BY(file_ids_mu_) = 0;
};

}  // namespace twrs

#endif  // TWRS_IO_SIM_DISK_ENV_H_
