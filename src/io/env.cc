#include "io/env.h"

#include <unistd.h>

#include <atomic>

#include "io/posix_env.h"

namespace twrs {

std::string UniqueScratchDirName(const std::string& prefix) {
  static std::atomic<uint64_t> counter{0};
  return prefix + "_" + std::to_string(static_cast<uint64_t>(::getpid())) +
         "_" + std::to_string(counter.fetch_add(1));
}

Env* Env::Default() {
  // Never destroyed: avoids static destruction order issues (see style guide
  // on static storage duration objects).
  static Env* const kDefault = new PosixEnv();
  return kDefault;
}

}  // namespace twrs
