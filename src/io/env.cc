#include "io/env.h"

#include "io/posix_env.h"

namespace twrs {

Env* Env::Default() {
  // Never destroyed: avoids static destruction order issues (see style guide
  // on static storage duration objects).
  static Env* const kDefault = new PosixEnv();
  return kDefault;
}

}  // namespace twrs
