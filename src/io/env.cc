#include "io/env.h"

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <memory>

#include "io/posix_env.h"
#include "io/uring_env.h"

namespace twrs {

std::string UniqueScratchDirName(const std::string& prefix) {
  static std::atomic<uint64_t> counter{0};
  return prefix + "_" + std::to_string(static_cast<uint64_t>(::getpid())) +
         "_" + std::to_string(counter.fetch_add(1));
}

Status Env::ListDir(const std::string& path, std::vector<std::string>* names) {
  (void)path;
  names->clear();
  return Status::NotSupported("ListDir");
}

void RemoveTreeBestEffort(Env* env, const std::string& path) {
  std::vector<std::string> names;
  if (env->ListDir(path, &names).ok()) {
    for (const std::string& name : names) {
      const std::string child = path + "/" + name;
      // A child that cannot be unlinked as a file is (or behaves as) a
      // directory; recurse. Statuses are deliberately ignored throughout:
      // this runs on error paths, over entries that may already be gone.
      if (!env->RemoveFile(child).ok()) RemoveTreeBestEffort(env, child);
    }
  }
  TWRS_IGNORE_STATUS(env->RemoveDir(path));
}

Status PreflightTempDir(Env* env, const std::string& temp_dir) {
  const std::string probe =
      temp_dir + "/" + UniqueScratchDirName("preflight");
  Status s = env->CreateDirIfMissing(temp_dir);
  if (s.ok()) {
    std::unique_ptr<WritableFile> file;
    s = env->NewWritableFile(probe, &file);
    if (s.ok()) {
      const uint8_t byte = 0;
      s = file->Append(&byte, 1);
      if (s.ok()) s = file->Close();
      // A probe that cannot be unlinked fails the preflight too: every
      // sort's scratch cleanup needs the very same removal, so a directory
      // that only accepts creations would fill with orphaned run files.
      Status remove_status = env->RemoveFile(probe);
      if (s.ok()) s = remove_status;
    }
  }
  if (!s.ok()) {
    return Status::IOError("temp_dir '" + temp_dir +
                           "' is not writable: " + s.ToString());
  }
  return Status::OK();
}

Env* Env::Default() {
  // Never destroyed: avoids static destruction order issues (see style guide
  // on static storage duration objects).
  static Env* const kDefault = new PosixEnv();
  return kDefault;
}

Env* Env::Default(IoBackend backend) {
  IoBackend resolved = backend;
  if (backend == IoBackend::kAuto) {
    resolved =
        IoUringEnv::IsSupported() ? IoBackend::kUring : IoBackend::kPosix;
  }
  if (resolved == IoBackend::kUring) {
    static Env* const kUringEnv = new IoUringEnv();
    return kUringEnv;
  }
  return Default();
}

const char* IoBackendName(IoBackend backend) {
  switch (backend) {
    case IoBackend::kDefault:
      return "default";
    case IoBackend::kPosix:
      return "posix";
    case IoBackend::kUring:
      return "uring";
    case IoBackend::kAuto:
      return "auto";
  }
  return "unknown";
}

bool ParseIoBackend(const std::string& text, IoBackend* out) {
  if (text == "posix") {
    *out = IoBackend::kPosix;
  } else if (text == "uring") {
    *out = IoBackend::kUring;
  } else if (text == "auto") {
    *out = IoBackend::kAuto;
  } else {
    return false;
  }
  return true;
}

Status ResolveIoBackend(IoBackend backend, IoBackend* resolved) {
  switch (backend) {
    case IoBackend::kDefault:
    case IoBackend::kPosix:
      *resolved = backend;
      return Status::OK();
    case IoBackend::kUring:
      if (!IoUringEnv::IsSupported()) {
        return Status::NotSupported("io backend 'uring' unavailable: " +
                                    IoUringEnv::UnsupportedReason());
      }
      *resolved = IoBackend::kUring;
      return Status::OK();
    case IoBackend::kAuto:
      *resolved = IoUringEnv::IsSupported() ? IoBackend::kUring
                                            : IoBackend::kPosix;
      return Status::OK();
  }
  return Status::InvalidArgument("unknown io backend");
}

}  // namespace twrs
