#include "io/uring_env.h"

#include <cerrno>
#include <cstring>

#include "obs/metrics.h"
#include "util/mutex.h"

namespace twrs {

// The metadata plumbing is identical with and without kernel support;
// only the data-path file handles (and the ring pool behind them) differ,
// so the constructor and destructor live in the per-branch sections where
// IoUringRingPool is a complete type.

IoUringEnv::IoUringEnv() : IoUringEnv(IoUringEnvOptions()) {}

bool IoUringEnv::FileExists(const std::string& path) {
  return metadata_env_.FileExists(path);
}

Status IoUringEnv::RemoveFile(const std::string& path) {
  return metadata_env_.RemoveFile(path);
}

Status IoUringEnv::GetFileSize(const std::string& path, uint64_t* size) {
  return metadata_env_.GetFileSize(path, size);
}

Status IoUringEnv::CreateDirIfMissing(const std::string& path) {
  return metadata_env_.CreateDirIfMissing(path);
}

Status IoUringEnv::RemoveDir(const std::string& path) {
  return metadata_env_.RemoveDir(path);
}

Status IoUringEnv::ListDir(const std::string& path,
                           std::vector<std::string>* names) {
  return metadata_env_.ListDir(path, names);
}

}  // namespace twrs

#if defined(TWRS_WITH_URING)

#include <fcntl.h>
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/syscall.h>
#include <sys/uio.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "obs/latency_histogram.h"

namespace twrs {
namespace {

// ------------------------------------------------------------- syscalls
// Raw syscall wrappers: the kernel UAPI header ships everywhere, liburing
// does not, and the three entry points are trivial.

int SysIoUringSetup(unsigned entries, io_uring_params* params) {
  return static_cast<int>(syscall(__NR_io_uring_setup, entries, params));
}

int SysIoUringEnter(int ring_fd, unsigned to_submit, unsigned min_complete,
                    unsigned flags) {
  return static_cast<int>(syscall(__NR_io_uring_enter, ring_fd, to_submit,
                                  min_complete, flags, nullptr, 0));
}

int SysIoUringRegister(int ring_fd, unsigned opcode, const void* arg,
                       unsigned nr_args) {
  return static_cast<int>(
      syscall(__NR_io_uring_register, ring_fd, opcode, arg, nr_args));
}

// See posix_env.cc: overload resolution picks the right strerror_r flavor.
inline const char* StrerrorResult(int /*ret*/, const char* buf) { return buf; }
inline const char* StrerrorResult(const char* ret, const char* /*buf*/) {
  return ret;
}

std::string ErrnoString(int err) {
  char buf[128];
  buf[0] = '\0';
  return StrerrorResult(::strerror_r(err, buf, sizeof(buf)), buf);
}

Status ErrnoStatus(const std::string& context, int err) {
  return Status::IOError(context + ": " + ErrnoString(err));
}

// ------------------------------------------------------------- counters

std::atomic<uint64_t> g_sqes_submitted{0};
std::atomic<uint64_t> g_cqes_completed{0};
std::atomic<uint64_t> g_short_ios{0};
std::atomic<uint64_t> g_rings_created{0};
std::atomic<uint64_t> g_ring_reuses{0};

// Raw SQE counts consumed per io_uring_enter (dimensionless, not time).
LatencyHistogram& BatchLenHistogram() {
  static LatencyHistogram* const histogram = new LatencyHistogram();
  return *histogram;
}

// ------------------------------------------------------------- alignment

constexpr size_t kDirectAlign = 4096;

constexpr uint64_t AlignDown(uint64_t v) { return v & ~(kDirectAlign - 1); }
constexpr uint64_t AlignUp(uint64_t v) {
  return (v + kDirectAlign - 1) & ~(kDirectAlign - 1);
}

struct FreeDeleter {
  void operator()(uint8_t* p) const { ::free(p); }  // NOLINT(cppcoreguidelines-no-malloc)
};
using AlignedBuffer = std::unique_ptr<uint8_t, FreeDeleter>;

AlignedBuffer AllocAligned(size_t n) {
  void* p = nullptr;
  if (::posix_memalign(&p, kDirectAlign, n) != 0) return nullptr;
  return AlignedBuffer(static_cast<uint8_t*>(p));
}

// ------------------------------------------------------------------ Ring
// One submission/completion queue pair. Single-threaded like the file
// handle that owns it: the handle preps SQEs, submits them in batches, and
// reaps CQEs; the only other party is the kernel, synchronized with the
// acquire/release ring-index protocol from io_uring.h.
class Ring {
 public:
  Ring() = default;

  Ring(const Ring&) = delete;
  Ring& operator=(const Ring&) = delete;

  ~Ring() { Destroy(); }

  Status Init(unsigned entries) {
    io_uring_params params;
    std::memset(&params, 0, sizeof(params));
    ring_fd_ = SysIoUringSetup(entries, &params);
    if (ring_fd_ < 0) return ErrnoStatus("io_uring_setup", errno);
    entries_ = params.sq_entries;

    size_t sq_len = params.sq_off.array + params.sq_entries * sizeof(unsigned);
    size_t cq_len =
        params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
    single_mmap_ = (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single_mmap_) {
      sq_len = cq_len = sq_len > cq_len ? sq_len : cq_len;
    }
    void* sq = ::mmap(nullptr, sq_len, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
    if (sq == MAP_FAILED) {
      const Status s = ErrnoStatus("mmap io_uring sq", errno);
      Destroy();
      return s;
    }
    sq_ptr_ = static_cast<uint8_t*>(sq);
    sq_map_len_ = sq_len;
    if (single_mmap_) {
      cq_ptr_ = sq_ptr_;
      cq_map_len_ = 0;  // unmapped together with the SQ ring
    } else {
      void* cq =
          ::mmap(nullptr, cq_len, PROT_READ | PROT_WRITE,
                 MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_CQ_RING);
      if (cq == MAP_FAILED) {
        const Status s = ErrnoStatus("mmap io_uring cq", errno);
        Destroy();
        return s;
      }
      cq_ptr_ = static_cast<uint8_t*>(cq);
      cq_map_len_ = cq_len;
    }
    const size_t sqes_len = params.sq_entries * sizeof(io_uring_sqe);
    void* sqes = ::mmap(nullptr, sqes_len, PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES);
    if (sqes == MAP_FAILED) {
      const Status s = ErrnoStatus("mmap io_uring sqes", errno);
      Destroy();
      return s;
    }
    sqes_ = static_cast<io_uring_sqe*>(sqes);
    sqes_map_len_ = sqes_len;

    sq_head_ = RingField(sq_ptr_, params.sq_off.head);
    sq_tail_ = RingField(sq_ptr_, params.sq_off.tail);
    sq_mask_ = *RingField(sq_ptr_, params.sq_off.ring_mask);
    sq_array_ = RingField(sq_ptr_, params.sq_off.array);
    cq_head_ = RingField(cq_ptr_, params.cq_off.head);
    cq_tail_ = RingField(cq_ptr_, params.cq_off.tail);
    cq_mask_ = *RingField(cq_ptr_, params.cq_off.ring_mask);
    cqes_ = reinterpret_cast<io_uring_cqe*>(cq_ptr_ + params.cq_off.cqes);
    return Status::OK();
  }

  void Destroy() {
    if (sqes_ != nullptr) ::munmap(sqes_, sqes_map_len_);
    if (cq_map_len_ != 0) ::munmap(cq_ptr_, cq_map_len_);
    if (sq_ptr_ != nullptr) ::munmap(sq_ptr_, sq_map_len_);
    if (ring_fd_ >= 0) ::close(ring_fd_);
    sqes_ = nullptr;
    cq_ptr_ = nullptr;
    sq_ptr_ = nullptr;
    ring_fd_ = -1;
  }

  int fd() const { return ring_fd_; }
  unsigned inflight() const { return inflight_; }
  unsigned pending() const { return pending_; }

  /// Claims and zeroes the next SQE slot. The per-handle pipelines are
  /// sized well below the ring, so a full queue indicates a logic error.
  io_uring_sqe* PrepSqe() {
    const unsigned tail = *sq_tail_;
    const unsigned head = __atomic_load_n(sq_head_, __ATOMIC_ACQUIRE);
    if (tail - head >= entries_) return nullptr;
    io_uring_sqe* sqe = &sqes_[tail & sq_mask_];
    std::memset(sqe, 0, sizeof(*sqe));
    sq_array_[tail & sq_mask_] = tail & sq_mask_;
    __atomic_store_n(sq_tail_, tail + 1, __ATOMIC_RELEASE);
    ++pending_;
    return sqe;
  }

  /// Submits every prepped SQE without waiting for completions.
  Status Submit() { return Enter(0); }

  /// Pops one CQE if available.
  bool PopCqe(int64_t* res, uint64_t* user_data) {
    const unsigned head = *cq_head_;
    if (head == __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE)) return false;
    const io_uring_cqe& cqe = cqes_[head & cq_mask_];
    *res = cqe.res;
    *user_data = cqe.user_data;
    __atomic_store_n(cq_head_, head + 1, __ATOMIC_RELEASE);
    --inflight_;
    g_cqes_completed.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Pops one CQE, submitting pending SQEs and blocking until one arrives.
  Status WaitCqe(int64_t* res, uint64_t* user_data) {
    while (!PopCqe(res, user_data)) {
      if (pending_ == 0 && inflight_ == 0) {
        return Status::IOError("io_uring wait with nothing in flight");
      }
      TWRS_RETURN_IF_ERROR(Enter(1));
    }
    return Status::OK();
  }

 private:
  static unsigned* RingField(uint8_t* base, uint32_t off) {
    return reinterpret_cast<unsigned*>(base + off);
  }

  Status Enter(unsigned wait_nr) {
    for (;;) {
      unsigned flags = wait_nr > 0 ? IORING_ENTER_GETEVENTS : 0;
      const int ret =
          SysIoUringEnter(ring_fd_, pending_, wait_nr, flags);
      if (ret < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("io_uring_enter", errno);
      }
      const unsigned consumed = static_cast<unsigned>(ret);
      if (consumed > 0) {
        g_sqes_submitted.fetch_add(consumed, std::memory_order_relaxed);
        BatchLenHistogram().Record(consumed);
        pending_ -= consumed;
        inflight_ += consumed;
      }
      // A partial submit (kernel resource pressure) leaves SQEs pending;
      // loop until everything is in flight.
      if (pending_ > 0) {
        wait_nr = 0;
        continue;
      }
      return Status::OK();
    }
  }

  int ring_fd_ = -1;
  unsigned entries_ = 0;
  unsigned pending_ = 0;   // prepped, not yet consumed by the kernel
  unsigned inflight_ = 0;  // consumed, completion not yet reaped

  uint8_t* sq_ptr_ = nullptr;
  size_t sq_map_len_ = 0;
  uint8_t* cq_ptr_ = nullptr;
  size_t cq_map_len_ = 0;  // 0 when the CQ aliases the SQ mapping
  bool single_mmap_ = false;
  io_uring_sqe* sqes_ = nullptr;
  size_t sqes_map_len_ = 0;

  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned sq_mask_ = 0;
  unsigned* sq_array_ = nullptr;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned cq_mask_ = 0;
  io_uring_cqe* cqes_ = nullptr;
};

/// Registers `buffers` (each `len` bytes) as fixed buffers on `ring`.
/// Returns false when the kernel refuses (RLIMIT_MEMLOCK, EPERM in
/// sandboxes) — callers then fall back to plain READ/WRITE opcodes.
bool RegisterBuffers(Ring* ring, uint8_t* const* buffers, size_t count,
                     size_t len) {
  std::vector<iovec> iovecs(count);
  for (size_t i = 0; i < count; ++i) {
    iovecs[i].iov_base = buffers[i];
    iovecs[i].iov_len = len;
  }
  return SysIoUringRegister(ring->fd(), IORING_REGISTER_BUFFERS, iovecs.data(),
                            static_cast<unsigned>(count)) == 0;
}

// ---------------------------------------------------------- ring pooling

/// Every handle type moves data through two buffer_bytes-sized transfer
/// buffers: double-buffered appends, two read-ahead blocks, or two
/// positioned-write slots. The uniform shape is what makes one pooled
/// ring serve any handle.
constexpr unsigned kPooledBuffers = 2;

/// A ring plus its two registered transfer buffers, recycled across file
/// handles. Creating this per open is not cheap relative to the engine's
/// file sizes: io_uring_setup, three ring mmaps, faulting in the buffers
/// and the IORING_REGISTER_BUFFERS page pinning together cost a few
/// hundred microseconds — more than writing an entire small run file
/// through the page cache — so the pool pays it once per concurrent
/// handle instead of once per file.
struct PooledRing {
  Ring ring;
  AlignedBuffer buffers[kPooledBuffers];
  bool fixed = false;  // buffers registered as fixed on this ring

  Status Init(const IoUringEnvOptions& opt) {
    TWRS_RETURN_IF_ERROR(ring.Init(opt.ring_entries));
    const size_t len = AlignDown(opt.buffer_bytes);
    uint8_t* raw[kPooledBuffers];
    for (unsigned i = 0; i < kPooledBuffers; ++i) {
      buffers[i] = AllocAligned(len);
      if (buffers[i] == nullptr) {
        return Status::IOError("cannot allocate io_uring transfer buffers");
      }
      raw[i] = buffers[i].get();
    }
    if (opt.register_buffers) {
      fixed = RegisterBuffers(&ring, raw, kPooledBuffers, len);
    }
    g_rings_created.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }

  uint8_t* buf(unsigned i) { return buffers[i].get(); }
};

/// Free list of quiescent rings, one pool per Env. Thread-safe: the
/// sharded path opens handles from several threads at once.
class RingPool {
 public:
  explicit RingPool(const IoUringEnvOptions& options) : options_(options) {}

  Status Acquire(std::unique_ptr<PooledRing>* out) {
    {
      MutexLock lock(&mu_);
      if (!free_.empty()) {
        *out = std::move(free_.back());
        free_.pop_back();
        g_ring_reuses.fetch_add(1, std::memory_order_relaxed);
        return Status::OK();
      }
    }
    auto fresh = std::make_unique<PooledRing>();
    TWRS_RETURN_IF_ERROR(fresh->Init(options_));
    *out = std::move(fresh);
    return Status::OK();
  }

  /// Returns a ring to the pool. Rings with anything still pending or in
  /// flight (error-path closes) are destroyed instead of reused, as is
  /// everything beyond the cap. The cap must cover the peak concurrent
  /// handle count of a merge pass (fan-in readers + the output writer),
  /// or every pass re-creates the excess rings; registration degrades
  /// gracefully per ring once pinned buffers hit RLIMIT_MEMLOCK, so a
  /// roomy cap costs memory, not correctness.
  void Release(std::unique_ptr<PooledRing> ring) {
    if (ring == nullptr) return;
    if (ring->ring.inflight() != 0 || ring->ring.pending() != 0) return;
    MutexLock lock(&mu_);
    if (free_.size() < kMaxFree) free_.push_back(std::move(ring));
  }

 private:
  static constexpr size_t kMaxFree = 16;

  const IoUringEnvOptions options_;
  Mutex mu_;
  std::vector<std::unique_ptr<PooledRing>> free_ TWRS_GUARDED_BY(mu_);
};

// ------------------------------------------------- UringWritableFile
// Sequential appends with kernel-overlapped double buffering: while the
// caller fills one buffer, the previous one is being written by the
// kernel. Replaces AsyncWritableFile's pump thread + copy with a single
// SQE per buffer rotation.
class UringWritableFile : public WritableFile {
 public:
  UringWritableFile(int fd, std::string path, const IoUringEnvOptions& opt,
                    bool o_direct, RingPool* pool)
      : fd_(fd),
        path_(std::move(path)),
        buffer_bytes_(AlignDown(opt.buffer_bytes)),
        o_direct_(o_direct),
        pool_(pool) {}

  ~UringWritableFile() override {
    // Errors from a destructor-time close have nowhere to go; callers that
    // care invoked Close()/Sync() on the checked path already.
    TWRS_IGNORE_STATUS(Close());
  }

  Status Init() {
    TWRS_RETURN_IF_ERROR(pool_->Acquire(&pooled_));
    ring_ = &pooled_->ring;
    fixed_ = pooled_->fixed;
    return Status::OK();
  }

  Status Append(const void* data, size_t n) override {
    if (!status_.ok()) return status_;
    if (closed_) return Status::IOError("append to closed " + path_);
    if (tail_flushed_) {
      // O_DIRECT only: the padded tail block is on disk and the write
      // position is no longer block-aligned.
      return Status::IOError("append after O_DIRECT Sync on " + path_);
    }
    const uint8_t* p = static_cast<const uint8_t*>(data);
    while (n > 0) {
      const size_t take =
          n < buffer_bytes_ - active_used_ ? n : buffer_bytes_ - active_used_;
      std::memcpy(pooled_->buf(active_) + active_used_, p, take);
      active_used_ += take;
      p += take;
      n -= take;
      if (active_used_ == buffer_bytes_) {
        status_ = RotateAndSubmit(buffer_bytes_, /*eager=*/true);
        if (!status_.ok()) return status_;
      }
    }
    return Status::OK();
  }

  Status Sync() override {
    if (!status_.ok()) return status_;
    if (closed_) return Status::IOError("sync of closed " + path_);
    status_ = FlushTail();
    if (status_.ok()) status_ = WaitInflight();
    if (status_.ok()) status_ = TruncatePadding();
    if (status_.ok()) status_ = Fsync();
    return status_;
  }

  Status Close() override {
    if (closed_) return Status::OK();
    closed_ = true;
    Status s = status_;
    if (pooled_ != nullptr) {
      if (s.ok()) s = FlushTail();
      if (s.ok()) s = WaitInflight();
      if (s.ok()) s = TruncatePadding();
      if (!s.ok()) {
        // Still reap outstanding completions so the kernel is not writing
        // from buffers the pool is about to hand to another handle.
        while (ring_->inflight() > 0) {
          int64_t res = 0;
          uint64_t user_data = 0;
          if (!ring_->WaitCqe(&res, &user_data).ok()) break;
        }
      }
      ring_ = nullptr;
      pool_->Release(std::move(pooled_));
    }
    if (fd_ >= 0 && ::close(fd_) != 0 && s.ok()) {
      s = ErrnoStatus("close " + path_, errno);
    }
    fd_ = -1;
    if (!s.ok() && status_.ok()) status_ = s;
    return s;
  }

 private:
  /// Submits the active buffer's first `len` bytes at the current file
  /// offset and swaps buffers, first draining the previous submission.
  /// `eager` controls whether the SQE is pushed to the kernel now (the
  /// mid-stream case, where the write must overlap the caller refilling
  /// the other buffer) or left pending for the next blocking WaitCqe to
  /// carry in its own io_uring_enter (the tail-flush case, where Sync or
  /// Close waits immediately anyway — one syscall instead of two).
  Status RotateAndSubmit(size_t len, bool eager) {
    TWRS_RETURN_IF_ERROR(WaitInflight());
    inflight_buf_ = active_;
    inflight_off_ = file_offset_;
    inflight_len_ = len;
    inflight_done_ = 0;
    TWRS_RETURN_IF_ERROR(PrepWrite());
    if (eager) TWRS_RETURN_IF_ERROR(ring_->Submit());
    file_offset_ += len;
    active_ = 1 - active_;
    active_used_ = 0;
    return Status::OK();
  }

  /// Preps (without submitting) one write SQE for the unwritten remainder
  /// of the inflight buffer.
  Status PrepWrite() {
    io_uring_sqe* sqe = ring_->PrepSqe();
    if (sqe == nullptr) {
      return Status::IOError("io_uring submission queue full on " + path_);
    }
    sqe->fd = fd_;
    sqe->addr = reinterpret_cast<uint64_t>(pooled_->buf(inflight_buf_) +
                                           inflight_done_);
    sqe->len = static_cast<uint32_t>(inflight_len_ - inflight_done_);
    sqe->off = inflight_off_ + inflight_done_;
    sqe->user_data = 1;
    if (fixed_) {
      sqe->opcode = IORING_OP_WRITE_FIXED;
      sqe->buf_index = static_cast<uint16_t>(inflight_buf_);
    } else {
      sqe->opcode = IORING_OP_WRITE;
    }
    return Status::OK();
  }

  /// Reaps the inflight write to completion, resubmitting short writes.
  /// Resubmissions stay pending: the WaitCqe at the top of the loop
  /// submits them inside its blocking enter.
  Status WaitInflight() {
    while (inflight_len_ > inflight_done_) {
      int64_t res = 0;
      uint64_t user_data = 0;
      TWRS_RETURN_IF_ERROR(ring_->WaitCqe(&res, &user_data));
      if (res == -EINTR || res == -EAGAIN) {
        TWRS_RETURN_IF_ERROR(PrepWrite());
        continue;
      }
      if (res < 0) {
        return ErrnoStatus("io_uring write " + path_,
                           static_cast<int>(-res));
      }
      if (res == 0) {
        return Status::IOError("zero-length io_uring write on " + path_);
      }
      inflight_done_ += static_cast<size_t>(res);
      if (inflight_done_ < inflight_len_) {
        g_short_ios.fetch_add(1, std::memory_order_relaxed);
        TWRS_RETURN_IF_ERROR(PrepWrite());
      }
    }
    return Status::OK();
  }

  /// Flushes the partial active buffer. Under O_DIRECT the tail is padded
  /// to a whole block (TruncatePadding restores the logical size).
  Status FlushTail() {
    if (active_used_ == 0) return Status::OK();
    size_t len = active_used_;
    if (o_direct_) {
      const size_t padded = AlignUp(len);
      std::memset(pooled_->buf(active_) + len, 0, padded - len);
      logical_size_ = file_offset_ + len;
      padded_tail_ = padded != len;
      tail_flushed_ = padded_tail_;
      len = padded;
    }
    // Sync/Close wait right after this; the pending SQE rides along in
    // that wait's enter.
    return RotateAndSubmit(len, /*eager=*/false);
  }

  Status TruncatePadding() {
    if (!padded_tail_) return Status::OK();
    padded_tail_ = false;
    if (::ftruncate(fd_, static_cast<off_t>(logical_size_)) != 0) {
      return ErrnoStatus("ftruncate " + path_, errno);
    }
    return Status::OK();
  }

  Status PrepFsync() {
    io_uring_sqe* sqe = ring_->PrepSqe();
    if (sqe == nullptr) {
      return Status::IOError("io_uring submission queue full on " + path_);
    }
    sqe->opcode = IORING_OP_FSYNC;
    sqe->fd = fd_;
    sqe->fsync_flags = IORING_FSYNC_DATASYNC;
    sqe->user_data = 2;
    return Status::OK();
  }

  Status Fsync() {
    TWRS_RETURN_IF_ERROR(PrepFsync());
    for (;;) {
      int64_t res = 0;
      uint64_t user_data = 0;
      TWRS_RETURN_IF_ERROR(ring_->WaitCqe(&res, &user_data));
      if (res == -EINTR) {
        // Resubmit; nothing else can be in flight here.
        TWRS_RETURN_IF_ERROR(PrepFsync());
        continue;
      }
      if (res < 0) {
        return ErrnoStatus("io_uring fsync " + path_,
                           static_cast<int>(-res));
      }
      return Status::OK();
    }
  }

  int fd_;
  std::string path_;
  const size_t buffer_bytes_;
  const bool o_direct_;

  RingPool* const pool_;
  std::unique_ptr<PooledRing> pooled_;
  Ring* ring_ = nullptr;  // &pooled_->ring while the handle is open
  bool fixed_ = false;

  unsigned active_ = 0;      // buffer the caller is filling
  size_t active_used_ = 0;   // bytes in the active buffer
  unsigned inflight_buf_ = 1;
  uint64_t inflight_off_ = 0;
  size_t inflight_len_ = 0;   // total bytes of the inflight submission
  size_t inflight_done_ = 0;  // bytes the kernel confirmed so far
  uint64_t file_offset_ = 0;  // where the next flush lands

  uint64_t logical_size_ = 0;  // O_DIRECT: true size behind a padded tail
  bool padded_tail_ = false;
  bool tail_flushed_ = false;

  bool closed_ = false;
  Status status_;
};

// ---------------------------------------------- UringSequentialFile
// Sequential reads fed by kernel read-ahead, replacing
// PrefetchingSequentialFile's pump thread + queue. The read-ahead is
// demand-paced: the first block is sized to the first Read request and no
// ahead block is issued until the caller fully drains kStreamDrains blocks
// (proving a streaming scan), after which two full-sized reads stay in
// flight. Pacing matters because a buffered io_uring read of pages not in
// the cache is punted to an io-wq worker (a forced context switch), and
// the reverse-stream files this engine merges are sparse: a header page,
// a hole, then the data pages. An eager fixed-size window would read the
// hole — punting twice per file — only for the caller to Skip past it.
class UringSequentialFile : public SequentialFile {
 public:
  static constexpr unsigned kBlocks = 2;
  // Full block drains before the window opens to two blocks in flight.
  static constexpr unsigned kStreamDrains = 2;

  UringSequentialFile(int fd, std::string path, uint64_t file_size,
                      const IoUringEnvOptions& opt, RingPool* pool)
      : fd_(fd),
        path_(std::move(path)),
        block_bytes_(AlignDown(opt.buffer_bytes)),
        file_size_(file_size),
        pool_(pool) {}

  ~UringSequentialFile() override {
    if (pooled_ != nullptr) {
      DrainAllBestEffort();
      ring_ = nullptr;
      pool_->Release(std::move(pooled_));
    }
    if (fd_ >= 0) ::close(fd_);
  }

  Status Init() {
    TWRS_RETURN_IF_ERROR(pool_->Acquire(&pooled_));
    ring_ = &pooled_->ring;
    fixed_ = pooled_->fixed;
    for (unsigned i = 0; i < kBlocks; ++i) blocks_[i].buf = pooled_->buf(i);
    return Status::OK();
  }

  Status Read(void* out, size_t n, size_t* bytes_read) override {
    *bytes_read = 0;
    if (!status_.ok()) return status_;
    status_ = EnsureStarted(n);
    if (!status_.ok()) return status_;
    uint8_t* p = static_cast<uint8_t*>(out);
    size_t total = 0;
    while (total < n) {
      Block& front = blocks_[front_];
      if (!front.ready) {
        status_ = WaitForBlock(front_);
        if (!status_.ok()) return status_;
      }
      const size_t available = front.valid - front.pos;
      if (available == 0) {
        if (front.eof) break;  // end of file
        status_ = RecycleFront();
        if (!status_.ok()) return status_;
        continue;
      }
      const size_t take = n - total < available ? n - total : available;
      std::memcpy(p + total, front.buf + front.pos, take);
      front.pos += take;
      total += take;
    }
    *bytes_read = total;
    return Status::OK();
  }

  Status Skip(uint64_t n) override {
    if (!status_.ok()) return status_;
    if (!started_) {
      // The common pattern (RunCursor) skips to the segment start before
      // the first read: just move the submission origin.
      submit_off_ += n;
      return Status::OK();
    }
    // Discard everything buffered or in flight and restart at the new
    // logical position.
    status_ = DrainAll();
    if (!status_.ok()) return status_;
    const Block& front = blocks_[front_];
    const uint64_t logical = front.off + front.pos;
    for (Block& block : blocks_) {
      block.ready = false;
      block.valid = 0;
      block.pos = 0;
      block.want = 0;
      block.eof = false;
    }
    started_ = false;
    at_eof_ = false;
    front_ = 0;
    submit_off_ = logical + n;
    return Status::OK();
  }

 private:
  struct Block {
    uint8_t* buf = nullptr;  // borrowed from the pooled ring
    uint64_t off = 0;
    size_t want = 0;   // bytes requested
    size_t valid = 0;  // bytes delivered
    size_t pos = 0;    // bytes consumed by the caller
    bool ready = false;
    bool inflight = false;
    bool eof = false;  // the file ends inside (or before) this block
  };

  Status EnsureStarted(size_t first_request) {
    if (started_) return Status::OK();
    started_ = true;
    front_ = 0;
    drains_ = 0;
    ramp_ = first_request < 4096 ? 4096 : AlignUp(first_request);
    if (ramp_ > block_bytes_) ramp_ = block_bytes_;
    // One request-sized block, and it stays pending: the first
    // WaitForBlock submits it inside its blocking enter — one syscall per
    // open on this engine's many-small-run merges. Probe-then-Skip
    // callers (reverse-stream headers) never cost more than this block.
    return PrepBlock(front_);
  }

  /// Preps (without submitting) a read of block `b` at submit_off_. Reads
  /// are clamped to the open-time file size: asking for whole blocks past
  /// a small file's end would cost a short-read resubmission plus a
  /// zero-byte EOF confirmation per block — two kernel round trips this
  /// engine's many-small-run merges would pay per input file. Data
  /// appended after the open is not observed, matching the read-your-own
  /// closed-runs pattern every caller follows.
  Status PrepBlock(unsigned b) {
    Block& block = blocks_[b];
    block.off = submit_off_;
    block.valid = 0;
    block.pos = 0;
    block.ready = false;
    const uint64_t remaining =
        submit_off_ < file_size_ ? file_size_ - submit_off_ : 0;
    block.want =
        remaining < ramp_ ? static_cast<size_t>(remaining) : ramp_;
    block.eof = remaining <= ramp_;
    if (at_eof_ || block.want == 0) {
      // No more data: mark the block as an empty (EOF) block.
      block.ready = true;
      block.eof = true;
      block.want = 0;
      if (remaining == 0) at_eof_ = true;
      return Status::OK();
    }
    submit_off_ += block.want;
    TWRS_RETURN_IF_ERROR(PrepRead(b));
    block.inflight = true;
    return Status::OK();
  }

  /// One read SQE for the undelivered remainder of block `b`.
  Status PrepRead(unsigned b) {
    Block& block = blocks_[b];
    io_uring_sqe* sqe = ring_->PrepSqe();
    if (sqe == nullptr) {
      return Status::IOError("io_uring submission queue full on " + path_);
    }
    sqe->fd = fd_;
    sqe->addr = reinterpret_cast<uint64_t>(block.buf + block.valid);
    sqe->len = static_cast<uint32_t>(block.want - block.valid);
    sqe->off = block.off + block.valid;
    sqe->user_data = b;
    if (fixed_) {
      sqe->opcode = IORING_OP_READ_FIXED;
      sqe->buf_index = static_cast<uint16_t>(b);
    } else {
      sqe->opcode = IORING_OP_READ;
    }
    return Status::OK();
  }

  /// Reaps completions until block `b` is ready.
  Status WaitForBlock(unsigned b) {
    while (!blocks_[b].ready) {
      int64_t res = 0;
      uint64_t user_data = 0;
      TWRS_RETURN_IF_ERROR(ring_->WaitCqe(&res, &user_data));
      TWRS_RETURN_IF_ERROR(HandleCqe(static_cast<unsigned>(user_data), res));
    }
    return Status::OK();
  }

  Status HandleCqe(unsigned b, int64_t res) {
    Block& block = blocks_[b];
    block.inflight = false;
    if (res == -EINTR || res == -EAGAIN) {
      // Left pending; the enclosing wait loop's next WaitCqe submits it.
      TWRS_RETURN_IF_ERROR(PrepRead(b));
      block.inflight = true;
      return Status::OK();
    }
    if (res < 0) {
      return ErrnoStatus("io_uring read " + path_, static_cast<int>(-res));
    }
    if (res == 0) {
      // End of file at block.off + block.valid; the block is final.
      // Reads are clamped to the open-time size, so this only fires when
      // the file shrank under us.
      block.ready = true;
      block.eof = true;
      at_eof_ = true;
      return Status::OK();
    }
    block.valid += static_cast<size_t>(res);
    if (block.valid < block.want) {
      // Short read (a split transfer): resubmit the remainder, pending
      // until the enclosing wait loop's next WaitCqe.
      g_short_ios.fetch_add(1, std::memory_order_relaxed);
      TWRS_RETURN_IF_ERROR(PrepRead(b));
      block.inflight = true;
      return Status::OK();
    }
    block.ready = true;
    return Status::OK();
  }

  /// Refills the fully-consumed front block at the next file offset. Each
  /// drain doubles the block size up to block_bytes_; the kStreamDrains-th
  /// drain opens the window to two blocks in flight. Before that the
  /// refill stays pending (the next wait's enter submits it); once reading
  /// ahead, submission is eager so the kernel fills the ahead block while
  /// the caller copies out of the other.
  Status RecycleFront() {
    ++drains_;
    if (ramp_ < block_bytes_) {
      ramp_ = ramp_ * 2 < block_bytes_ ? ramp_ * 2 : block_bytes_;
    }
    TWRS_RETURN_IF_ERROR(PrepBlock(front_));
    if (drains_ < kStreamDrains) return Status::OK();
    if (drains_ == kStreamDrains) {
      // Streaming proven: issue the ahead block too. front_ stays on the
      // just-refilled block, which holds the lower offset.
      TWRS_RETURN_IF_ERROR(PrepBlock((front_ + 1) % kBlocks));
    } else {
      front_ = (front_ + 1) % kBlocks;
    }
    return ring_->Submit();
  }

  Status DrainAll() {
    while (ring_->inflight() > 0 || ring_->pending() > 0) {
      int64_t res = 0;
      uint64_t user_data = 0;
      TWRS_RETURN_IF_ERROR(ring_->WaitCqe(&res, &user_data));
      // Completions are recorded but shorts are not resubmitted: the data
      // is about to be discarded.
      const unsigned b = static_cast<unsigned>(user_data);
      if (b < kBlocks) blocks_[b].ready = true;
    }
    return Status::OK();
  }

  void DrainAllBestEffort() {
    while (ring_->inflight() > 0) {
      int64_t res = 0;
      uint64_t user_data = 0;
      if (!ring_->WaitCqe(&res, &user_data).ok()) break;
    }
  }

  int fd_;
  std::string path_;
  const size_t block_bytes_;
  const uint64_t file_size_;  // size at open; reads never go past it

  RingPool* const pool_;
  std::unique_ptr<PooledRing> pooled_;
  Ring* ring_ = nullptr;  // &pooled_->ring while the handle is open
  Block blocks_[kBlocks];
  bool fixed_ = false;

  bool started_ = false;
  bool at_eof_ = false;
  unsigned front_ = 0;
  uint64_t submit_off_ = 0;
  // Demand pacing: full drains since (re)start, and the current block
  // size, doubling per drain up to block_bytes_.
  unsigned drains_ = 0;
  size_t ramp_ = 0;

  Status status_;
};

// ------------------------------------------------ UringRandomRWFile
// Positioned writes submitted without blocking: WriteAt copies into one of
// two slots and returns; completions are reaped when slots are reused and
// on Sync/Close. RangeMergeSink's disjoint-range writers each own a handle
// (and pooled ring), so the sharded output path runs fully overlapped with
// no pump threads.
class UringRandomRWFile : public RandomRWFile {
 public:
  static constexpr unsigned kSlots = kPooledBuffers;

  UringRandomRWFile(int fd, std::string path, const IoUringEnvOptions& opt,
                    RingPool* pool)
      : fd_(fd),
        path_(std::move(path)),
        slot_bytes_(AlignDown(opt.buffer_bytes)),
        pool_(pool) {}

  ~UringRandomRWFile() override { TWRS_IGNORE_STATUS(Close()); }

  Status Init() {
    TWRS_RETURN_IF_ERROR(pool_->Acquire(&pooled_));
    ring_ = &pooled_->ring;
    fixed_ = pooled_->fixed;
    for (unsigned i = 0; i < kSlots; ++i) slots_[i].buf = pooled_->buf(i);
    return Status::OK();
  }

  Status WriteAt(uint64_t offset, const void* data, size_t n) override {
    if (!status_.ok()) return status_;
    if (closed_) return Status::IOError("write to closed " + path_);
    const uint8_t* p = static_cast<const uint8_t*>(data);
    bool prepped = false;
    while (n > 0) {
      const size_t take = n < slot_bytes_ ? n : slot_bytes_;
      unsigned s = 0;
      status_ = AcquireSlot(&s);
      if (!status_.ok()) return status_;
      Slot& slot = slots_[s];
      std::memcpy(slot.buf, p, take);
      slot.off = offset;
      slot.len = take;
      slot.done = 0;
      slot.busy = true;
      status_ = PrepWrite(s);
      if (!status_.ok()) return status_;
      prepped = true;
      p += take;
      offset += take;
      n -= take;
    }
    // One batched submission for every chunk of this WriteAt; the kernel
    // writes while the merge produces the next block.
    if (prepped) status_ = ring_->Submit();
    return status_;
  }

  Status ReadAt(uint64_t offset, void* out, size_t n) override {
    if (!status_.ok()) return status_;
    if (closed_) return Status::IOError("read of closed " + path_);
    // Reads must observe every write this handle already accepted.
    status_ = DrainWrites();
    if (!status_.ok()) return status_;
    uint8_t* p = static_cast<uint8_t*>(out);
    size_t total = 0;
    while (total < n) {
      io_uring_sqe* sqe = ring_->PrepSqe();
      if (sqe == nullptr) {
        return Status::IOError("io_uring submission queue full on " + path_);
      }
      sqe->opcode = IORING_OP_READ;
      sqe->fd = fd_;
      sqe->addr = reinterpret_cast<uint64_t>(p + total);
      sqe->len = static_cast<uint32_t>(n - total);
      sqe->off = offset + total;
      sqe->user_data = kReadUserData;
      int64_t res = 0;
      uint64_t user_data = 0;
      TWRS_RETURN_IF_ERROR(ring_->WaitCqe(&res, &user_data));
      if (res == -EINTR || res == -EAGAIN) continue;
      if (res < 0) {
        return ErrnoStatus("io_uring pread " + path_,
                           static_cast<int>(-res));
      }
      if (res == 0) {
        return Status::IOError("short read at offset in " + path_);
      }
      if (static_cast<size_t>(res) < n - total) {
        g_short_ios.fetch_add(1, std::memory_order_relaxed);
      }
      total += static_cast<size_t>(res);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (!status_.ok()) return status_;
    if (closed_) return Status::IOError("sync of closed " + path_);
    status_ = DrainWrites();
    if (!status_.ok()) return status_;
    io_uring_sqe* sqe = ring_->PrepSqe();
    if (sqe == nullptr) {
      return Status::IOError("io_uring submission queue full on " + path_);
    }
    sqe->opcode = IORING_OP_FSYNC;
    sqe->fd = fd_;
    sqe->fsync_flags = IORING_FSYNC_DATASYNC;
    sqe->user_data = kFsyncUserData;
    for (;;) {
      int64_t res = 0;
      uint64_t user_data = 0;
      status_ = ring_->WaitCqe(&res, &user_data);
      if (!status_.ok()) return status_;
      if (res == -EINTR) {
        io_uring_sqe* retry = ring_->PrepSqe();
        if (retry == nullptr) {
          return Status::IOError("io_uring submission queue full on " +
                                 path_);
        }
        retry->opcode = IORING_OP_FSYNC;
        retry->fd = fd_;
        retry->fsync_flags = IORING_FSYNC_DATASYNC;
        retry->user_data = kFsyncUserData;
        continue;
      }
      if (res < 0) {
        status_ = ErrnoStatus("io_uring fsync " + path_,
                              static_cast<int>(-res));
        return status_;
      }
      return Status::OK();
    }
  }

  Status Close() override {
    if (closed_) return Status::OK();
    closed_ = true;
    Status s = status_;
    if (pooled_ != nullptr) {
      const Status drain = DrainWrites();
      if (s.ok()) s = drain;
      ring_ = nullptr;
      pool_->Release(std::move(pooled_));
    }
    if (fd_ >= 0 && ::close(fd_) != 0 && s.ok()) {
      s = ErrnoStatus("close " + path_, errno);
    }
    fd_ = -1;
    if (!s.ok() && status_.ok()) status_ = s;
    return s;
  }

 private:
  static constexpr uint64_t kReadUserData = 100;
  static constexpr uint64_t kFsyncUserData = 101;

  struct Slot {
    uint8_t* buf = nullptr;  // borrowed from the pooled ring
    uint64_t off = 0;
    size_t len = 0;
    size_t done = 0;
    bool busy = false;
  };

  /// One write SQE for the unwritten remainder of slot `s` (prepped, not
  /// submitted — WriteAt batches the submission).
  Status PrepWrite(unsigned s) {
    Slot& slot = slots_[s];
    io_uring_sqe* sqe = ring_->PrepSqe();
    if (sqe == nullptr) {
      return Status::IOError("io_uring submission queue full on " + path_);
    }
    sqe->fd = fd_;
    sqe->addr = reinterpret_cast<uint64_t>(slot.buf + slot.done);
    sqe->len = static_cast<uint32_t>(slot.len - slot.done);
    sqe->off = slot.off + slot.done;
    sqe->user_data = s;
    if (fixed_) {
      sqe->opcode = IORING_OP_WRITE_FIXED;
      sqe->buf_index = static_cast<uint16_t>(s);
    } else {
      sqe->opcode = IORING_OP_WRITE;
    }
    return Status::OK();
  }

  /// Finds a free slot, reaping completions (blocking if necessary).
  Status AcquireSlot(unsigned* out) {
    for (;;) {
      // Opportunistically reap whatever has completed.
      int64_t res = 0;
      uint64_t user_data = 0;
      while (ring_->PopCqe(&res, &user_data)) {
        TWRS_RETURN_IF_ERROR(HandleWriteCqe(user_data, res));
      }
      for (unsigned s = 0; s < kSlots; ++s) {
        if (!slots_[s].busy) {
          *out = s;
          return Status::OK();
        }
      }
      TWRS_RETURN_IF_ERROR(ring_->WaitCqe(&res, &user_data));
      TWRS_RETURN_IF_ERROR(HandleWriteCqe(user_data, res));
    }
  }

  Status HandleWriteCqe(uint64_t user_data, int64_t res) {
    if (user_data >= kSlots) return Status::OK();  // stale read/fsync cqe
    Slot& slot = slots_[static_cast<unsigned>(user_data)];
    if (res == -EINTR || res == -EAGAIN) {
      // Left pending; every wait on a busy slot goes through WaitCqe,
      // whose enter submits it (as does the next WriteAt batch).
      TWRS_RETURN_IF_ERROR(PrepWrite(static_cast<unsigned>(user_data)));
      return Status::OK();
    }
    if (res < 0) {
      return ErrnoStatus("io_uring pwrite " + path_, static_cast<int>(-res));
    }
    if (res == 0) {
      return Status::IOError("zero-length io_uring write on " + path_);
    }
    slot.done += static_cast<size_t>(res);
    if (slot.done < slot.len) {
      g_short_ios.fetch_add(1, std::memory_order_relaxed);
      TWRS_RETURN_IF_ERROR(PrepWrite(static_cast<unsigned>(user_data)));
      return Status::OK();
    }
    slot.busy = false;
    return Status::OK();
  }

  Status DrainWrites() {
    for (;;) {
      bool any_busy = false;
      for (const Slot& slot : slots_) any_busy |= slot.busy;
      if (!any_busy) return Status::OK();
      int64_t res = 0;
      uint64_t user_data = 0;
      TWRS_RETURN_IF_ERROR(ring_->WaitCqe(&res, &user_data));
      TWRS_RETURN_IF_ERROR(HandleWriteCqe(user_data, res));
    }
  }

  int fd_;
  std::string path_;
  const size_t slot_bytes_;

  RingPool* const pool_;
  std::unique_ptr<PooledRing> pooled_;
  Ring* ring_ = nullptr;  // &pooled_->ring while the handle is open
  Slot slots_[kSlots];
  bool fixed_ = false;

  bool closed_ = false;
  Status status_;
};

/// Opens `path`, degrading an O_DIRECT request to a buffered open on
/// filesystems that refuse it (tmpfs returns EINVAL).
int OpenMaybeDirect(const std::string& path, int flags, bool want_direct,
                    bool* got_direct) {
  *got_direct = false;
  if (want_direct) {
    const int fd = ::open(path.c_str(), flags | O_DIRECT, 0644);
    if (fd >= 0) {
      *got_direct = true;
      return fd;
    }
    if (errno != EINVAL) return fd;
  }
  return ::open(path.c_str(), flags, 0644);
}

const std::string& ProbeFailureReason() {
  static const std::string* const reason = [] {
    io_uring_params params;
    std::memset(&params, 0, sizeof(params));
    const int fd = SysIoUringSetup(4, &params);
    if (fd >= 0) {
      ::close(fd);
      return new std::string();
    }
    std::string why = ErrnoString(errno);
    if (errno == ENOSYS) {
      why += " (kernel built without io_uring)";
    } else if (errno == EPERM) {
      why += " (disabled by kernel.io_uring_disabled or seccomp)";
    }
    return new std::string("io_uring_setup failed: " + why);
  }();
  return *reason;
}

}  // namespace

IoUringEnv::IoUringEnv(const IoUringEnvOptions& options) : options_(options) {
  // Transfer buffers double as O_DIRECT buffers, so they must be at least
  // one direct-I/O block; the ring needs room for the deepest per-handle
  // pipeline (double-buffered writes + fsync + a retry resubmission).
  if (options_.buffer_bytes < 4096) options_.buffer_bytes = 4096;
  if (options_.ring_entries < 8) options_.ring_entries = 8;
  if (IsSupported()) pool_ = std::make_shared<RingPool>(options_);
}

IoUringEnv::~IoUringEnv() = default;

bool IoUringEnv::IsSupported() { return ProbeFailureReason().empty(); }

std::string IoUringEnv::UnsupportedReason() {
  const std::string& reason = ProbeFailureReason();
  return reason.empty() ? "supported" : reason;
}

Status IoUringEnv::NewWritableFile(const std::string& path,
                                   std::unique_ptr<WritableFile>* out) {
  if (!IsSupported()) return Status::NotSupported(UnsupportedReason());
  bool got_direct = false;
  const int fd = OpenMaybeDirect(path, O_WRONLY | O_CREAT | O_TRUNC,
                                 options_.use_o_direct, &got_direct);
  if (fd < 0) return ErrnoStatus("open " + path, errno);
  auto file = std::make_unique<UringWritableFile>(
      fd, path, options_, got_direct, static_cast<RingPool*>(pool_.get()));
  TWRS_RETURN_IF_ERROR(file->Init());
  *out = std::move(file);
  return Status::OK();
}

Status IoUringEnv::NewSequentialFile(const std::string& path,
                                     std::unique_ptr<SequentialFile>* out) {
  if (!IsSupported()) return Status::NotSupported(UnsupportedReason());
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoStatus("open " + path, errno);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return ErrnoStatus("fstat " + path, err);
  }
  auto file = std::make_unique<UringSequentialFile>(
      fd, path, static_cast<uint64_t>(st.st_size), options_,
      static_cast<RingPool*>(pool_.get()));
  TWRS_RETURN_IF_ERROR(file->Init());
  *out = std::move(file);
  return Status::OK();
}

Status IoUringEnv::NewRandomRWFile(const std::string& path,
                                   std::unique_ptr<RandomRWFile>* out) {
  if (!IsSupported()) return Status::NotSupported(UnsupportedReason());
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus("open " + path, errno);
  auto file = std::make_unique<UringRandomRWFile>(
      fd, path, options_, static_cast<RingPool*>(pool_.get()));
  TWRS_RETURN_IF_ERROR(file->Init());
  *out = std::move(file);
  return Status::OK();
}

Status IoUringEnv::ReopenRandomRWFile(const std::string& path,
                                      std::unique_ptr<RandomRWFile>* out) {
  if (!IsSupported()) return Status::NotSupported(UnsupportedReason());
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) return ErrnoStatus("open " + path, errno);
  auto file = std::make_unique<UringRandomRWFile>(
      fd, path, options_, static_cast<RingPool*>(pool_.get()));
  TWRS_RETURN_IF_ERROR(file->Init());
  *out = std::move(file);
  return Status::OK();
}

Status IoUringEnv::NewRandomReadFile(const std::string& path,
                                     std::unique_ptr<RandomRWFile>* out) {
  if (!IsSupported()) return Status::NotSupported(UnsupportedReason());
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoStatus("open " + path, errno);
  auto file = std::make_unique<UringRandomRWFile>(
      fd, path, options_, static_cast<RingPool*>(pool_.get()));
  TWRS_RETURN_IF_ERROR(file->Init());
  *out = std::move(file);
  return Status::OK();
}

IoCapabilities IoUringEnv::io_capabilities() const {
  IoCapabilities caps;
  caps.async_appends = true;
  caps.async_reads = true;
  caps.async_positioned_writes = true;
  return caps;
}

void PublishIoUringCounters(MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  // The globals only grow, so each registry metric is raised to the
  // current total by its delta. The mutex keeps two concurrent publishers
  // from both applying the same delta to one registry (the
  // simd::PublishKernelCounters contract).
  static Mutex mu;
  MutexLock lock(&mu);
  const struct {
    const char* name;
    const std::atomic<uint64_t>* value;
  } kCounters[] = {
      {"io.uring.submitted", &g_sqes_submitted},
      {"io.uring.completed", &g_cqes_completed},
      {"io.uring.short_ios", &g_short_ios},
      {"io.uring.rings_created", &g_rings_created},
      {"io.uring.ring_reuses", &g_ring_reuses},
  };
  for (const auto& counter : kCounters) {
    MonotonicCounter* out = metrics->Counter(counter.name);
    const uint64_t total = counter.value->load(std::memory_order_relaxed);
    const uint64_t seen = out->value();
    if (total > seen) out->Increment(total - seen);
  }
  // Histogram delta: replay the per-bucket count difference at each
  // bucket's lower bound (which maps back into the same bucket, so the
  // registry view stays within the histogram's own error bound).
  LatencyHistogram* out = metrics->Histogram("io.uring.sqe_batch_len");
  const LatencyHistogram::Snapshot total = BatchLenHistogram().TakeSnapshot();
  const LatencyHistogram::Snapshot seen = out->TakeSnapshot();
  for (size_t i = 0; i < total.buckets.size(); ++i) {
    const uint64_t lower = LatencyHistogram::BucketLower(i);
    for (uint64_t c = seen.buckets[i]; c < total.buckets[i]; ++c) {
      out->Record(lower);
    }
  }
}

}  // namespace twrs

#else  // !defined(TWRS_WITH_URING)

namespace twrs {

namespace {
constexpr char kNotBuilt[] =
    "built without TWRS_WITH_URING (linux/io_uring.h not found at configure "
    "time)";
}  // namespace

IoUringEnv::IoUringEnv(const IoUringEnvOptions& options) : options_(options) {
  // Clamped for parity with the real backend so option handling behaves
  // the same regardless of build flavor; no pool without the backend.
  if (options_.buffer_bytes < 4096) options_.buffer_bytes = 4096;
  if (options_.ring_entries < 8) options_.ring_entries = 8;
}

IoUringEnv::~IoUringEnv() = default;

bool IoUringEnv::IsSupported() { return false; }

std::string IoUringEnv::UnsupportedReason() { return kNotBuilt; }

Status IoUringEnv::NewWritableFile(const std::string&,
                                   std::unique_ptr<WritableFile>*) {
  return Status::NotSupported(kNotBuilt);
}

Status IoUringEnv::NewSequentialFile(const std::string&,
                                     std::unique_ptr<SequentialFile>*) {
  return Status::NotSupported(kNotBuilt);
}

Status IoUringEnv::NewRandomRWFile(const std::string&,
                                   std::unique_ptr<RandomRWFile>*) {
  return Status::NotSupported(kNotBuilt);
}

Status IoUringEnv::ReopenRandomRWFile(const std::string&,
                                      std::unique_ptr<RandomRWFile>*) {
  return Status::NotSupported(kNotBuilt);
}

Status IoUringEnv::NewRandomReadFile(const std::string&,
                                     std::unique_ptr<RandomRWFile>*) {
  return Status::NotSupported(kNotBuilt);
}

IoCapabilities IoUringEnv::io_capabilities() const { return IoCapabilities(); }

void PublishIoUringCounters(MetricsRegistry* /*metrics*/) {}

}  // namespace twrs

#endif  // TWRS_WITH_URING
