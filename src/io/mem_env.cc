#include "io/mem_env.h"

#include <algorithm>
#include <cstring>

namespace twrs {

namespace {

using internal::MemEnvFile;

class MemWritableFile : public WritableFile {
 public:
  explicit MemWritableFile(std::shared_ptr<MemEnvFile> file)
      : file_(std::move(file)) {}

  Status Append(const void* data, size_t n) override {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    MutexLock lock(&file_->mu);
    file_->data.insert(file_->data.end(), p, p + n);
    return Status::OK();
  }

  Status Close() override { return Status::OK(); }

 private:
  std::shared_ptr<MemEnvFile> file_;
};

class MemSequentialFile : public SequentialFile {
 public:
  explicit MemSequentialFile(std::shared_ptr<MemEnvFile> file)
      : file_(std::move(file)) {}

  Status Read(void* out, size_t n, size_t* bytes_read) override {
    MutexLock lock(&file_->mu);
    size_t avail = file_->data.size() - pos_;
    size_t take = std::min(n, avail);
    // An empty vector's data() may be null, and memcpy requires non-null
    // arguments even for zero-length copies.
    if (take > 0) std::memcpy(out, file_->data.data() + pos_, take);
    pos_ += take;
    *bytes_read = take;
    return Status::OK();
  }

  Status Skip(uint64_t n) override {
    MutexLock lock(&file_->mu);
    pos_ = std::min(file_->data.size(), pos_ + static_cast<size_t>(n));
    return Status::OK();
  }

 private:
  std::shared_ptr<MemEnvFile> file_;
  size_t pos_ = 0;
};

class MemRandomRWFile : public RandomRWFile {
 public:
  explicit MemRandomRWFile(std::shared_ptr<MemEnvFile> file)
      : file_(std::move(file)) {}

  Status WriteAt(uint64_t offset, const void* data, size_t n) override {
    MutexLock lock(&file_->mu);
    if (offset + n > file_->data.size()) file_->data.resize(offset + n, 0);
    if (n > 0) std::memcpy(file_->data.data() + offset, data, n);
    return Status::OK();
  }

  Status ReadAt(uint64_t offset, void* out, size_t n) override {
    MutexLock lock(&file_->mu);
    if (offset + n > file_->data.size()) {
      return Status::IOError("short read in mem file");
    }
    if (n > 0) std::memcpy(out, file_->data.data() + offset, n);
    return Status::OK();
  }

  Status Close() override { return Status::OK(); }

 private:
  std::shared_ptr<MemEnvFile> file_;
};

}  // namespace

Status MemEnv::NewWritableFile(const std::string& path,
                               std::unique_ptr<WritableFile>* out) {
  auto file = std::make_shared<MemEnvFile>();
  {
    MutexLock lock(&mu_);
    files_[path] = file;
  }
  out->reset(new MemWritableFile(std::move(file)));
  return Status::OK();
}

Status MemEnv::NewSequentialFile(const std::string& path,
                                 std::unique_ptr<SequentialFile>* out) {
  MutexLock lock(&mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound(path);
  out->reset(new MemSequentialFile(it->second));
  return Status::OK();
}

Status MemEnv::NewRandomRWFile(const std::string& path,
                               std::unique_ptr<RandomRWFile>* out) {
  auto file = std::make_shared<MemEnvFile>();
  {
    MutexLock lock(&mu_);
    files_[path] = file;
  }
  out->reset(new MemRandomRWFile(std::move(file)));
  return Status::OK();
}

Status MemEnv::ReopenRandomRWFile(const std::string& path,
                                  std::unique_ptr<RandomRWFile>* out) {
  MutexLock lock(&mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound(path);
  out->reset(new MemRandomRWFile(it->second));
  return Status::OK();
}

Status MemEnv::NewRandomReadFile(const std::string& path,
                                 std::unique_ptr<RandomRWFile>* out) {
  MutexLock lock(&mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound(path);
  out->reset(new MemRandomRWFile(it->second));
  return Status::OK();
}

bool MemEnv::FileExists(const std::string& path) {
  MutexLock lock(&mu_);
  return files_.count(path) > 0;
}

Status MemEnv::RemoveFile(const std::string& path) {
  MutexLock lock(&mu_);
  if (files_.erase(path) == 0) return Status::NotFound(path);
  return Status::OK();
}

Status MemEnv::GetFileSize(const std::string& path, uint64_t* size) {
  std::shared_ptr<MemEnvFile> file;
  {
    MutexLock lock(&mu_);
    auto it = files_.find(path);
    if (it == files_.end()) return Status::NotFound(path);
    file = it->second;
  }
  MutexLock lock(&file->mu);
  *size = file->data.size();
  return Status::OK();
}

Status MemEnv::CreateDirIfMissing(const std::string&) { return Status::OK(); }

Status MemEnv::RemoveDir(const std::string&) {
  // Directories are implicit in the path map, so there is nothing to remove.
  return Status::OK();
}

Status MemEnv::ListDir(const std::string& path,
                       std::vector<std::string>* names) {
  // Directories are implicit: an entry is the first path component after
  // `path` + "/" of any stored file, deduplicated (map keys are sorted, so
  // repeats of one subdirectory are adjacent).
  names->clear();
  const std::string prefix = path.empty() || path.back() == '/'
                                 ? path
                                 : path + "/";
  MutexLock lock(&mu_);
  for (auto it = files_.lower_bound(prefix); it != files_.end(); ++it) {
    const std::string& file = it->first;
    if (file.compare(0, prefix.size(), prefix) != 0) break;
    const size_t slash = file.find('/', prefix.size());
    const std::string name =
        file.substr(prefix.size(), slash == std::string::npos
                                       ? std::string::npos
                                       : slash - prefix.size());
    if (name.empty()) continue;
    if (names->empty() || names->back() != name) names->push_back(name);
  }
  return Status::OK();
}

const std::vector<uint8_t>* MemEnv::FileContents(
    const std::string& path) const {
  std::shared_ptr<MemEnvFile> file;
  {
    MutexLock lock(&mu_);
    auto it = files_.find(path);
    if (it == files_.end()) return nullptr;
    file = it->second;
  }
  // The pointer is taken under the file's own lock; the caller's contract
  // (no concurrent writer) covers the dereferences that follow.
  MutexLock lock(&file->mu);
  return &file->data;
}

}  // namespace twrs
