#ifndef TWRS_IO_REVERSE_RUN_FILE_H_
#define TWRS_IO_REVERSE_RUN_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/record.h"
#include "io/env.h"
#include "util/status.h"

namespace twrs {

/// Parameters of the Appendix-A file format for decreasing streams.
struct ReverseRunFileOptions {
  /// Pages per file, including the header page ("k" in the thesis, which
  /// uses k = 1000 for 4 MB files; the default matches that file size).
  uint64_t pages_per_file = 64;

  /// Page size in bytes; must be a multiple of kRecordBytes and >= 64.
  /// The thesis writes one 4 KiB filesystem page at a time; buffering a
  /// block of pages instead (the memory comes out of the sort budget,
  /// as Appendix A.2 prescribes) keeps the write granularity of the
  /// decreasing streams equal to that of the forward streams.
  uint64_t page_bytes = 64 * 1024;
};

/// Writer for streams produced in *decreasing* key order (2WRS streams 2
/// and 4) that must later be read in increasing order without reading disk
/// backwards (Appendix A).
///
/// Records are written starting at the last byte of the last page of a
/// fixed-size file and proceed backwards, one page-sized buffer at a time,
/// so a forward scan of the file yields the records in increasing order.
/// When a file fills up, a new one named `<base>.N` (N = 1, 2, ...) is
/// created. Page 0 of each file is a header; the header of file 0
/// additionally records the total number of files, making the stream
/// self-describing.
class ReverseRunWriter {
 public:
  ReverseRunWriter(Env* env, std::string base_path,
                   ReverseRunFileOptions options = ReverseRunFileOptions());
  ~ReverseRunWriter();

  ReverseRunWriter(const ReverseRunWriter&) = delete;
  ReverseRunWriter& operator=(const ReverseRunWriter&) = delete;

  const Status& status() const { return status_; }

  /// Appends one record. Keys must arrive in non-increasing order; this is
  /// checked and violations return Status::InvalidArgument.
  Status Append(Key key);

  /// Finalizes the current file, patches the file count into file 0's
  /// header, and closes everything.
  Status Finish();

  /// Records appended so far.
  uint64_t count() const { return count_; }

  /// Files created so far (valid after Finish()).
  uint64_t num_files() const { return file_index_; }

  /// Name of the N-th physical file of a stream.
  static std::string FileName(const std::string& base_path, uint64_t index);

 private:
  Status OpenNextFile();
  Status FlushPage(uint64_t page, bool partial);
  Status FinalizeCurrentFile();

  Env* env_;
  std::string base_path_;
  ReverseRunFileOptions options_;
  Status status_;

  std::unique_ptr<RandomRWFile> file_;
  uint64_t file_index_ = 0;      // files fully created so far
  uint64_t current_page_ = 0;    // page being filled (counts down to 1)
  uint64_t file_record_count_ = 0;
  std::vector<uint8_t> page_;    // one page buffer, filled back to front
  uint64_t page_pos_ = 0;        // next write ends at this offset
  uint64_t count_ = 0;
  bool has_last_key_ = false;
  Key last_key_ = 0;
  bool finished_ = false;
  bool file_open_ = false;
};

/// Reads a stream written by ReverseRunWriter in increasing key order. Files
/// are visited from the last one created back to file 0, each scanned
/// strictly forward, as Appendix A prescribes for rotating disks.
class ReverseRunReader {
 public:
  /// Opens the stream rooted at `base_path`. If `num_files` is 0 the count
  /// is discovered from file 0's header.
  ReverseRunReader(Env* env, std::string base_path, uint64_t num_files = 0,
                   size_t buffer_bytes = 64 * 1024);

  ReverseRunReader(const ReverseRunReader&) = delete;
  ReverseRunReader& operator=(const ReverseRunReader&) = delete;

  const Status& status() const { return status_; }

  /// Reads the next record into `*key`; sets `*eof` at end of stream.
  Status Next(Key* key, bool* eof);

  /// Advances past the next `n` records without decoding them. Whole files
  /// are skipped by reading only their header (each file's data region is
  /// contiguous, so a within-file skip is a single Skip on the underlying
  /// handle). Skipping past the end of the stream is a no-op, as in
  /// SequentialFile::Skip. The ranged merge cursors use this to start a
  /// partial merge mid-run without paying the prefix read.
  Status SkipRecords(uint64_t n);

  /// Total number of physical files in the stream.
  uint64_t num_files() const { return num_files_; }

 private:
  Status OpenFile(uint64_t index);

  Env* env_;
  std::string base_path_;
  Status status_;
  uint64_t num_files_ = 0;
  uint64_t next_file_ = 0;  // counts down; num_files_ - pos
  std::unique_ptr<SequentialFile> file_;
  uint64_t remaining_in_file_ = 0;
  std::vector<uint8_t> buffer_;
  size_t buffer_size_ = 0;
  size_t buffer_pos_ = 0;
  bool opened_any_ = false;
};

}  // namespace twrs

#endif  // TWRS_IO_REVERSE_RUN_FILE_H_
