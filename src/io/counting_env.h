#ifndef TWRS_IO_COUNTING_ENV_H_
#define TWRS_IO_COUNTING_ENV_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "io/env.h"

namespace twrs {

/// Env decorator that counts the bytes moving through every handle it
/// opens. The sorters wrap their Env in one per operation, so
/// ExternalSortResult/ShardedSortResult can report the real I/O volume of
/// a sort (runs written and re-read, intermediate merges, final output)
/// rather than a records-written proxy.
///
/// Counters are atomic: one CountingEnv is shared by every concurrent
/// shard sort and background flush of the operation it measures. Reads of
/// the counters while I/O is still in flight are approximate; reads after
/// the operation completed are exact.
class CountingEnv : public Env {
 public:
  /// Does not take ownership of `base`.
  explicit CountingEnv(Env* base) : base_(base) {}

  Env* base() const { return base_; }

  /// Bytes successfully read/written through handles opened via this Env.
  uint64_t bytes_read() const {
    return bytes_read_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_written() const {
    return bytes_written_.load(std::memory_order_relaxed);
  }

  /// Mirrors every byte counted by this Env into a second pair of atomic
  /// counters (either may be null). The service layer points these at a
  /// job's live ProgressCounters so status pollers see I/O volume while
  /// the sort is still running, without a second decorator layer. Set
  /// before the operation starts; not re-entrant. The mirror counters
  /// must outlive every handle opened through this Env.
  void MirrorBytesTo(std::atomic<uint64_t>* read_mirror,
                     std::atomic<uint64_t>* write_mirror) {
    read_mirror_ = read_mirror;
    write_mirror_ = write_mirror;
  }

  /// Watches one path: watched_created() turns true once a truncating
  /// create (NewWritableFile/NewRandomRWFile) opens it through this Env.
  /// The sorters watch their output path so error-path cleanup can tell a
  /// torn output this sort truncated from a pre-existing file it never
  /// touched. Set before the operation starts; not re-entrant.
  void WatchPath(std::string path) { watched_path_ = std::move(path); }
  bool watched_created() const {
    return watched_created_.load(std::memory_order_relaxed);
  }

  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<WritableFile>* out) override;
  Status NewSequentialFile(const std::string& path,
                           std::unique_ptr<SequentialFile>* out) override;
  Status NewRandomRWFile(const std::string& path,
                         std::unique_ptr<RandomRWFile>* out) override;
  Status ReopenRandomRWFile(const std::string& path,
                            std::unique_ptr<RandomRWFile>* out) override;
  Status NewRandomReadFile(const std::string& path,
                           std::unique_ptr<RandomRWFile>* out) override;
  bool FileExists(const std::string& path) override;
  Status RemoveFile(const std::string& path) override;
  Status GetFileSize(const std::string& path, uint64_t* size) override;
  Status CreateDirIfMissing(const std::string& path) override;
  Status RemoveDir(const std::string& path) override;
  Status ListDir(const std::string& path,
                 std::vector<std::string>* names) override;

  /// Counting is transparent to async-ness: capability checks see the
  /// wrapped backend's answer.
  IoCapabilities io_capabilities() const override {
    return base_->io_capabilities();
  }

 private:
  friend class CountingWritableFile;

  Env* base_;
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t>* read_mirror_ = nullptr;
  std::atomic<uint64_t>* write_mirror_ = nullptr;
  std::string watched_path_;
  /// Atomic: parallel leaf merges create files from pool threads.
  std::atomic<bool> watched_created_{false};
};

}  // namespace twrs

#endif  // TWRS_IO_COUNTING_ENV_H_
