#include "io/counting_env.h"

#include <utility>

namespace twrs {

namespace {

/// Primary counter plus an optional mirror (the live-progress feed); both
/// bump with relaxed ordering on every counted transfer.
struct ByteCounter {
  std::atomic<uint64_t>* primary;
  std::atomic<uint64_t>* mirror;  // may be null

  void Add(uint64_t n) const {
    primary->fetch_add(n, std::memory_order_relaxed);
    if (mirror != nullptr) mirror->fetch_add(n, std::memory_order_relaxed);
  }
};

class CountingWritableFile : public WritableFile {
 public:
  CountingWritableFile(std::unique_ptr<WritableFile> base, ByteCounter counter)
      : base_(std::move(base)), counter_(counter) {}

  Status Append(const void* data, size_t n) override {
    TWRS_RETURN_IF_ERROR(base_->Append(data, n));
    counter_.Add(n);
    return Status::OK();
  }

  Status Sync() override { return base_->Sync(); }

  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<WritableFile> base_;
  ByteCounter counter_;
};

class CountingSequentialFile : public SequentialFile {
 public:
  CountingSequentialFile(std::unique_ptr<SequentialFile> base,
                         ByteCounter counter)
      : base_(std::move(base)), counter_(counter) {}

  Status Read(void* out, size_t n, size_t* bytes_read) override {
    TWRS_RETURN_IF_ERROR(base_->Read(out, n, bytes_read));
    counter_.Add(*bytes_read);
    return Status::OK();
  }

  Status Skip(uint64_t n) override { return base_->Skip(n); }

 private:
  std::unique_ptr<SequentialFile> base_;
  ByteCounter counter_;
};

class CountingRandomRWFile : public RandomRWFile {
 public:
  CountingRandomRWFile(std::unique_ptr<RandomRWFile> base,
                       ByteCounter read_counter, ByteCounter write_counter)
      : base_(std::move(base)),
        read_counter_(read_counter),
        write_counter_(write_counter) {}

  Status WriteAt(uint64_t offset, const void* data, size_t n) override {
    TWRS_RETURN_IF_ERROR(base_->WriteAt(offset, data, n));
    write_counter_.Add(n);
    return Status::OK();
  }

  Status ReadAt(uint64_t offset, void* out, size_t n) override {
    // ReadAt reads exactly n bytes or fails, so a success counts all of n.
    TWRS_RETURN_IF_ERROR(base_->ReadAt(offset, out, n));
    read_counter_.Add(n);
    return Status::OK();
  }

  Status Sync() override { return base_->Sync(); }

  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<RandomRWFile> base_;
  ByteCounter read_counter_;
  ByteCounter write_counter_;
};

}  // namespace

Status CountingEnv::NewWritableFile(const std::string& path,
                                    std::unique_ptr<WritableFile>* out) {
  std::unique_ptr<WritableFile> file;
  TWRS_RETURN_IF_ERROR(base_->NewWritableFile(path, &file));
  if (!watched_path_.empty() && path == watched_path_) {
    watched_created_.store(true, std::memory_order_relaxed);
  }
  *out = std::make_unique<CountingWritableFile>(
      std::move(file), ByteCounter{&bytes_written_, write_mirror_});
  return Status::OK();
}

Status CountingEnv::NewSequentialFile(const std::string& path,
                                      std::unique_ptr<SequentialFile>* out) {
  std::unique_ptr<SequentialFile> file;
  TWRS_RETURN_IF_ERROR(base_->NewSequentialFile(path, &file));
  *out = std::make_unique<CountingSequentialFile>(
      std::move(file), ByteCounter{&bytes_read_, read_mirror_});
  return Status::OK();
}

Status CountingEnv::NewRandomRWFile(const std::string& path,
                                    std::unique_ptr<RandomRWFile>* out) {
  std::unique_ptr<RandomRWFile> file;
  TWRS_RETURN_IF_ERROR(base_->NewRandomRWFile(path, &file));
  if (!watched_path_.empty() && path == watched_path_) {
    watched_created_.store(true, std::memory_order_relaxed);
  }
  *out = std::make_unique<CountingRandomRWFile>(
      std::move(file), ByteCounter{&bytes_read_, read_mirror_},
      ByteCounter{&bytes_written_, write_mirror_});
  return Status::OK();
}

Status CountingEnv::ReopenRandomRWFile(const std::string& path,
                                       std::unique_ptr<RandomRWFile>* out) {
  std::unique_ptr<RandomRWFile> file;
  TWRS_RETURN_IF_ERROR(base_->ReopenRandomRWFile(path, &file));
  *out = std::make_unique<CountingRandomRWFile>(
      std::move(file), ByteCounter{&bytes_read_, read_mirror_},
      ByteCounter{&bytes_written_, write_mirror_});
  return Status::OK();
}

Status CountingEnv::NewRandomReadFile(const std::string& path,
                                      std::unique_ptr<RandomRWFile>* out) {
  std::unique_ptr<RandomRWFile> file;
  TWRS_RETURN_IF_ERROR(base_->NewRandomReadFile(path, &file));
  *out = std::make_unique<CountingRandomRWFile>(
      std::move(file), ByteCounter{&bytes_read_, read_mirror_},
      ByteCounter{&bytes_written_, write_mirror_});
  return Status::OK();
}

bool CountingEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Status CountingEnv::RemoveFile(const std::string& path) {
  return base_->RemoveFile(path);
}

Status CountingEnv::GetFileSize(const std::string& path, uint64_t* size) {
  return base_->GetFileSize(path, size);
}

Status CountingEnv::CreateDirIfMissing(const std::string& path) {
  return base_->CreateDirIfMissing(path);
}

Status CountingEnv::RemoveDir(const std::string& path) {
  return base_->RemoveDir(path);
}

Status CountingEnv::ListDir(const std::string& path,
                            std::vector<std::string>* names) {
  return base_->ListDir(path, names);
}

}  // namespace twrs
