#include "io/reverse_run_file.h"

#include <algorithm>
#include <cstring>

namespace twrs {

namespace {

// "2WRSREV1" little-endian.
constexpr uint64_t kMagic = 0x3156455253525732ULL;

// Header field offsets (all fields are little-endian uint64).
constexpr uint64_t kOffMagic = 0;
constexpr uint64_t kOffFileIndex = 8;
constexpr uint64_t kOffPagesPerFile = 16;
constexpr uint64_t kOffPageBytes = 24;
constexpr uint64_t kOffRecordCount = 32;
constexpr uint64_t kOffStartPage = 40;
constexpr uint64_t kOffStartOffset = 48;
constexpr uint64_t kOffTotalFiles = 56;
constexpr uint64_t kHeaderBytes = 64;

void PutU64(uint8_t* buf, uint64_t off, uint64_t v) {
  for (int i = 0; i < 8; ++i) buf[off + i] = static_cast<uint8_t>(v >> (8 * i));
}

uint64_t GetU64(const uint8_t* buf, uint64_t off) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(buf[off + i]) << (8 * i);
  return v;
}

}  // namespace

std::string ReverseRunWriter::FileName(const std::string& base_path,
                                       uint64_t index) {
  return base_path + "." + std::to_string(index);
}

ReverseRunWriter::ReverseRunWriter(Env* env, std::string base_path,
                                   ReverseRunFileOptions options)
    : env_(env), base_path_(std::move(base_path)), options_(options) {
  if (options_.page_bytes < kHeaderBytes ||
      options_.page_bytes % kRecordBytes != 0) {
    status_ = Status::InvalidArgument(
        "page_bytes must be >= 64 and a multiple of the record size");
    return;
  }
  if (options_.pages_per_file < 2) {
    status_ = Status::InvalidArgument(
        "pages_per_file must leave room for the header page");
    return;
  }
  page_.resize(options_.page_bytes);
}

ReverseRunWriter::~ReverseRunWriter() {
  // Callers that need the flush outcome call Finish() themselves; by the
  // time the destructor runs there is nowhere left to report it.
  if (!finished_) TWRS_IGNORE_STATUS(Finish());
}

Status ReverseRunWriter::OpenNextFile() {
  TWRS_RETURN_IF_ERROR(
      env_->NewRandomRWFile(FileName(base_path_, file_index_), &file_));
  current_page_ = options_.pages_per_file - 1;
  page_pos_ = options_.page_bytes;
  file_record_count_ = 0;
  file_open_ = true;
  return Status::OK();
}

Status ReverseRunWriter::FlushPage(uint64_t page, bool partial) {
  if (partial) {
    // The unused head of the page must not contain stale data.
    std::memset(page_.data(), 0, page_pos_);
  }
  return file_->WriteAt(page * options_.page_bytes, page_.data(),
                        options_.page_bytes);
}

Status ReverseRunWriter::FinalizeCurrentFile() {
  uint64_t start_page;
  uint64_t start_offset;
  if (page_pos_ == options_.page_bytes) {
    // The in-progress page is empty: data begins at the next page up.
    start_page = current_page_ + 1;
    start_offset = 0;
  } else {
    TWRS_RETURN_IF_ERROR(FlushPage(current_page_, /*partial=*/true));
    start_page = current_page_;
    start_offset = page_pos_;
  }
  uint8_t header[kHeaderBytes];
  std::memset(header, 0, sizeof(header));
  PutU64(header, kOffMagic, kMagic);
  PutU64(header, kOffFileIndex, file_index_);
  PutU64(header, kOffPagesPerFile, options_.pages_per_file);
  PutU64(header, kOffPageBytes, options_.page_bytes);
  PutU64(header, kOffRecordCount, file_record_count_);
  PutU64(header, kOffStartPage, start_page);
  PutU64(header, kOffStartOffset, start_offset);
  PutU64(header, kOffTotalFiles, 0);  // patched into file 0 by Finish()
  TWRS_RETURN_IF_ERROR(file_->WriteAt(0, header, sizeof(header)));
  TWRS_RETURN_IF_ERROR(file_->Close());
  file_.reset();
  file_open_ = false;
  ++file_index_;
  return Status::OK();
}

Status ReverseRunWriter::Append(Key key) {
  TWRS_RETURN_IF_ERROR(status_);
  if (finished_) {
    return Status::InvalidArgument("Append after Finish");
  }
  if (has_last_key_ && key > last_key_) {
    status_ = Status::InvalidArgument(
        "reverse run stream keys must be non-increasing");
    return status_;
  }
  has_last_key_ = true;
  last_key_ = key;
  if (!file_open_) {
    status_ = OpenNextFile();
    TWRS_RETURN_IF_ERROR(status_);
  }
  page_pos_ -= kRecordBytes;
  EncodeKey(key, page_.data() + page_pos_);
  ++file_record_count_;
  ++count_;
  if (page_pos_ == 0) {
    status_ = FlushPage(current_page_, /*partial=*/false);
    TWRS_RETURN_IF_ERROR(status_);
    if (current_page_ == 1) {
      status_ = FinalizeCurrentFile();
      TWRS_RETURN_IF_ERROR(status_);
    } else {
      --current_page_;
      page_pos_ = options_.page_bytes;
    }
  }
  return Status::OK();
}

Status ReverseRunWriter::Finish() {
  if (finished_) return status_;
  finished_ = true;
  TWRS_RETURN_IF_ERROR(status_);
  if (file_open_) {
    if (file_record_count_ == 0 && file_index_ > 0) {
      // An opened-but-empty trailing file: close and remove it.
      TWRS_RETURN_IF_ERROR(file_->Close());
      file_.reset();
      file_open_ = false;
      TWRS_RETURN_IF_ERROR(
          env_->RemoveFile(FileName(base_path_, file_index_)));
    } else {
      status_ = FinalizeCurrentFile();
      TWRS_RETURN_IF_ERROR(status_);
    }
  }
  if (file_index_ > 0) {
    // Patch the total file count into file 0's header so the stream is
    // self-describing (Appendix A's "number of files" field).
    std::unique_ptr<RandomRWFile> first;
    status_ = env_->ReopenRandomRWFile(FileName(base_path_, 0), &first);
    TWRS_RETURN_IF_ERROR(status_);
    uint8_t buf[8];
    PutU64(buf, 0, file_index_);
    status_ = first->WriteAt(kOffTotalFiles, buf, sizeof(buf));
    TWRS_RETURN_IF_ERROR(status_);
    status_ = first->Close();
  }
  return status_;
}

ReverseRunReader::ReverseRunReader(Env* env, std::string base_path,
                                   uint64_t num_files, size_t buffer_bytes)
    : env_(env), base_path_(std::move(base_path)) {
  size_t records = std::max<size_t>(1, buffer_bytes / kRecordBytes);
  buffer_.resize(records * kRecordBytes);
  num_files_ = num_files;
  if (num_files_ == 0) {
    // Discover the count from file 0's header, if the stream exists at all.
    const std::string first = ReverseRunWriter::FileName(base_path_, 0);
    if (!env_->FileExists(first)) return;  // empty stream
    std::unique_ptr<SequentialFile> f;
    status_ = env_->NewSequentialFile(first, &f);
    if (!status_.ok()) return;
    uint8_t header[64];
    size_t got = 0;
    status_ = f->Read(header, sizeof(header), &got);
    if (!status_.ok()) return;
    if (got < sizeof(header) || GetU64(header, kOffMagic) != kMagic) {
      status_ = Status::Corruption("bad reverse run file header: " + first);
      return;
    }
    num_files_ = GetU64(header, kOffTotalFiles);
    if (num_files_ == 0) {
      status_ = Status::Corruption("unfinished reverse run stream: " + first);
      return;
    }
  }
  next_file_ = num_files_;
}

Status ReverseRunReader::OpenFile(uint64_t index) {
  const std::string name = ReverseRunWriter::FileName(base_path_, index);
  TWRS_RETURN_IF_ERROR(env_->NewSequentialFile(name, &file_));
  uint8_t header[64];
  size_t got = 0;
  TWRS_RETURN_IF_ERROR(file_->Read(header, sizeof(header), &got));
  if (got < sizeof(header) || GetU64(header, kOffMagic) != kMagic) {
    return Status::Corruption("bad reverse run file header: " + name);
  }
  const uint64_t page_bytes = GetU64(header, kOffPageBytes);
  const uint64_t start_page = GetU64(header, kOffStartPage);
  const uint64_t start_offset = GetU64(header, kOffStartOffset);
  remaining_in_file_ = GetU64(header, kOffRecordCount);
  const uint64_t data_start = start_page * page_bytes + start_offset;
  TWRS_RETURN_IF_ERROR(file_->Skip(data_start - sizeof(header)));
  buffer_size_ = 0;
  buffer_pos_ = 0;
  return Status::OK();
}

Status ReverseRunReader::Next(Key* key, bool* eof) {
  TWRS_RETURN_IF_ERROR(status_);
  *eof = false;
  while (buffer_pos_ == buffer_size_) {
    if (remaining_in_file_ == 0) {
      if (next_file_ == 0) {
        *eof = true;
        return Status::OK();
      }
      --next_file_;
      status_ = OpenFile(next_file_);
      TWRS_RETURN_IF_ERROR(status_);
      continue;
    }
    const uint64_t want = std::min<uint64_t>(
        buffer_.size(), remaining_in_file_ * kRecordBytes);
    size_t got = 0;
    status_ = file_->Read(buffer_.data(), want, &got);
    TWRS_RETURN_IF_ERROR(status_);
    if (got < want || got % kRecordBytes != 0) {
      status_ = Status::Corruption("truncated reverse run file");
      return status_;
    }
    buffer_size_ = got;
    buffer_pos_ = 0;
    remaining_in_file_ -= got / kRecordBytes;
  }
  *key = DecodeKey(buffer_.data() + buffer_pos_);
  buffer_pos_ += kRecordBytes;
  return Status::OK();
}

Status ReverseRunReader::SkipRecords(uint64_t n) {
  TWRS_RETURN_IF_ERROR(status_);
  while (n > 0) {
    const uint64_t buffered = (buffer_size_ - buffer_pos_) / kRecordBytes;
    if (buffered > 0) {
      const uint64_t take = std::min(n, buffered);
      buffer_pos_ += static_cast<size_t>(take) * kRecordBytes;
      n -= take;
      continue;
    }
    if (remaining_in_file_ == 0) {
      if (next_file_ == 0) return Status::OK();  // past EOF: no-op
      --next_file_;
      status_ = OpenFile(next_file_);
      TWRS_RETURN_IF_ERROR(status_);
      continue;
    }
    // The open file's unread data is contiguous from the current position,
    // so any in-file skip is one Skip on the handle — no data reads.
    const uint64_t take = std::min(n, remaining_in_file_);
    status_ = file_->Skip(take * kRecordBytes);
    TWRS_RETURN_IF_ERROR(status_);
    remaining_in_file_ -= take;
    n -= take;
  }
  return Status::OK();
}

}  // namespace twrs
