#ifndef TWRS_IO_URING_ENV_H_
#define TWRS_IO_URING_ENV_H_

#include <cstddef>
#include <memory>
#include <string>

#include "io/env.h"
#include "io/posix_env.h"

namespace twrs {

class MetricsRegistry;

/// Tuning knobs for IoUringEnv. The defaults match the async decorators
/// they replace (kDefaultAsyncBufferBytes double buffers), so swapping the
/// backend changes the I/O mechanism, not the buffering economics.
struct IoUringEnvOptions {
  /// Submission-queue depth of each file's ring. Eight slots cover the
  /// deepest per-handle pipeline (double-buffered writes + fsync + retry
  /// resubmissions) with room for batching.
  unsigned ring_entries = 8;

  /// Size of each internal transfer buffer. Every handle type uses two:
  /// double-buffered appends, two read-ahead blocks, or two
  /// positioned-write slots.
  size_t buffer_bytes = 256 * 1024;

  /// Register the transfer buffers with the kernel
  /// (IORING_REGISTER_BUFFERS) so data SQEs skip the per-op page pinning.
  /// Registration happens once per pooled ring, not per file, so its page
  /// pinning cost is amortized across every handle that reuses the ring.
  /// Falls back to plain READ/WRITE opcodes when registration is refused
  /// (RLIMIT_MEMLOCK, EPERM in containers).
  bool register_buffers = true;

  /// Open sequential-write files with O_DIRECT, bypassing the page cache.
  /// Writes are then issued in 4096-byte-aligned units from the aligned
  /// internal buffers; the final partial block is padded and the file
  /// truncated back to its logical size on Close. Filesystems without
  /// O_DIRECT support (tmpfs) silently degrade to buffered opens.
  bool use_o_direct = false;
};

/// Env backed by Linux kernel submission/completion rings (io_uring, raw
/// syscalls — no liburing dependency). Each open handle borrows a ring
/// (with its registered transfer buffers) from a per-Env pool and returns
/// it on Close, so ring setup and buffer registration are paid once and
/// amortized across every run, temp and output file of a sort. Appends
/// and positioned writes are submitted without waiting for completion
/// (the next buffer rotation reaps them), sequential reads keep
/// read-ahead blocks in flight. The async decorators detect this through
/// io_capabilities() and skip their pump threads entirely.
///
/// Handles follow the same threading contract as PosixEnv's: one handle is
/// used by one thread at a time; concurrent disjoint-range writers each
/// open their own handle (and thus their own ring).
///
/// Only available when the build found <linux/io_uring.h>
/// (TWRS_WITH_URING); otherwise IsSupported() is false and every open
/// returns NotSupported. Check IsSupported() / ResolveIoBackend before
/// constructing one via Env::Default(IoBackend::kUring).
class IoUringEnv : public Env {
 public:
  IoUringEnv();
  explicit IoUringEnv(const IoUringEnvOptions& options);
  ~IoUringEnv() override;

  IoUringEnv(const IoUringEnv&) = delete;
  IoUringEnv& operator=(const IoUringEnv&) = delete;

  /// True when this build carries the io_uring backend and the running
  /// kernel accepts io_uring_setup (probed once per process). False on
  /// builds without TWRS_WITH_URING, kernels without io_uring, or systems
  /// where it is administratively disabled (kernel.io_uring_disabled).
  static bool IsSupported();

  /// One-line reason IsSupported() is false ("supported" when it is true).
  static std::string UnsupportedReason();

  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<WritableFile>* out) override;
  Status NewSequentialFile(const std::string& path,
                           std::unique_ptr<SequentialFile>* out) override;
  Status NewRandomRWFile(const std::string& path,
                         std::unique_ptr<RandomRWFile>* out) override;
  Status ReopenRandomRWFile(const std::string& path,
                            std::unique_ptr<RandomRWFile>* out) override;
  Status NewRandomReadFile(const std::string& path,
                           std::unique_ptr<RandomRWFile>* out) override;
  bool FileExists(const std::string& path) override;
  Status RemoveFile(const std::string& path) override;
  Status GetFileSize(const std::string& path, uint64_t* size) override;
  Status CreateDirIfMissing(const std::string& path) override;
  Status RemoveDir(const std::string& path) override;
  Status ListDir(const std::string& path,
                 std::vector<std::string>* names) override;
  IoCapabilities io_capabilities() const override;

 private:
  IoUringEnvOptions options_;
  // Metadata operations (stat, unlink, mkdir, readdir) have no useful
  // async form; they go straight through the blocking implementation.
  PosixEnv metadata_env_;
  // Recycles rings + registered buffers across file handles. Opaque: the
  // pool is an internal type of the .cc (its deleter is captured at
  // construction); null on builds without the backend.
  std::shared_ptr<void> pool_;
};

/// Mirrors the process-wide io_uring counters into `metrics` as
/// `io.uring.{submitted,completed,short_ios,rings_created,ring_reuses}`
/// monotonic counters and the
/// `io.uring.sqe_batch_len` histogram (SQEs consumed per io_uring_enter),
/// incrementing each registry by what it has not yet seen — the same
/// delta-publish contract as simd::PublishKernelCounters. No-op on builds
/// without the backend.
void PublishIoUringCounters(MetricsRegistry* metrics);

}  // namespace twrs

#endif  // TWRS_IO_URING_ENV_H_
