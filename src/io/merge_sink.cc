#include "io/merge_sink.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "util/stopwatch.h"

namespace twrs {

namespace {

/// Runs `fn`, recording its wall time into `histogram` when non-null.
template <typename Fn>
Status TimedFlush(LatencyHistogram* histogram, Fn&& fn) {
  if (histogram == nullptr) return fn();
  Stopwatch watch;
  Status s = fn();
  histogram->RecordSeconds(watch.ElapsedSeconds());
  return s;
}

}  // namespace

// ----------------------------------------------------------- AppendMergeSink

Status AppendMergeSink::Write(const void* data, size_t n) {
  TWRS_RETURN_IF_ERROR(status_);
  if (finished_) {
    status_ = Status::InvalidArgument("Write on finished AppendMergeSink");
    return status_;
  }
  status_ =
      TimedFlush(flush_histogram_, [&] { return file_->Append(data, n); });
  if (status_.ok()) bytes_written_ += n;
  return status_;
}

Status AppendMergeSink::Finish() {
  if (finished_) return status_;
  finished_ = true;
  if (status_.ok() && sync_on_finish_) status_ = file_->Sync();
  Status close_status = file_->Close();
  if (status_.ok()) status_ = std::move(close_status);
  return status_;
}

Status MakeAppendMergeSink(Env* env, const std::string& path, ThreadPool* pool,
                           size_t async_buffer_bytes,
                           std::unique_ptr<MergeSink>* out,
                           LatencyHistogram* flush_histogram,
                           bool sync_on_finish) {
  std::unique_ptr<WritableFile> file;
  TWRS_RETURN_IF_ERROR(env->NewWritableFile(path, &file));
  if (pool != nullptr && !env->io_capabilities().async_appends) {
    // Time the background flushes, not the sink's memcpy-into-buffer
    // Appends: the histogram should see real write I/O. Natively async
    // backends skip the wrap — their Append already overlaps the merge.
    auto async = std::make_unique<AsyncWritableFile>(std::move(file), pool,
                                                     async_buffer_bytes);
    async->set_flush_histogram(flush_histogram);
    *out = std::make_unique<AppendMergeSink>(std::move(async), nullptr,
                                             sync_on_finish);
    return Status::OK();
  }
  *out = std::make_unique<AppendMergeSink>(std::move(file), flush_histogram,
                                           sync_on_finish);
  return Status::OK();
}

// ------------------------------------------------------------ RangeMergeSink

RangeMergeSink::RangeMergeSink(std::unique_ptr<RandomRWFile> file,
                               uint64_t offset, uint64_t length,
                               ThreadPool* pool, size_t buffer_bytes,
                               LatencyHistogram* flush_histogram,
                               bool sync_on_finish)
    : file_(std::move(file)),
      offset_(offset),
      length_(length),
      pool_(pool),
      flush_histogram_(flush_histogram),
      sync_on_finish_(sync_on_finish),
      flush_pos_(offset) {
  if (pool_ != nullptr) {
    const size_t n = std::max<size_t>(1, buffer_bytes);
    active_.resize(n);
    inflight_.resize(n);
  }
}

RangeMergeSink::~RangeMergeSink() {
  if (finished_) return;
  // Error-path unwinding: the merged bytes are being discarded, so the
  // active buffer is dropped rather than flushed; only quiesce the
  // background write and release the handle.
  TWRS_IGNORE_STATUS(WaitForInflight());
  TWRS_IGNORE_STATUS(file_->Close());
}

Status RangeMergeSink::WaitForInflight() {
  if (pending_.valid()) {
    Status s = pending_.Wait();
    pending_ = TaskHandle();
    if (status_.ok()) status_ = std::move(s);
  }
  return status_;
}

Status RangeMergeSink::RotateAndFlush() {
  TWRS_RETURN_IF_ERROR(WaitForInflight());
  std::swap(active_, inflight_);
  inflight_used_ = active_used_;
  active_used_ = 0;
  const uint64_t pos = flush_pos_;
  flush_pos_ += inflight_used_;
  // High priority, as in AsyncWritableFile: a flush parked behind
  // long-running tasks would stall the next rotation and forfeit the
  // write overlap.
  pending_ = pool_->Submit(
      [this, pos] {
        return TimedFlush(flush_histogram_, [this, pos] {
          return file_->WriteAt(pos, inflight_.data(), inflight_used_);
        });
      },
      TaskPriority::kHigh);
  return Status::OK();
}

Status RangeMergeSink::Write(const void* data, size_t n) {
  TWRS_RETURN_IF_ERROR(status_);
  if (finished_) {
    status_ = Status::InvalidArgument("Write on finished RangeMergeSink");
    return status_;
  }
  if (bytes_written_ + n > length_) {
    status_ = Status::InvalidArgument(
        "RangeMergeSink write beyond its assigned range of " +
        std::to_string(length_) + " bytes");
    return status_;
  }
  if (pool_ == nullptr) {
    status_ = TimedFlush(flush_histogram_, [&] {
      return file_->WriteAt(offset_ + bytes_written_, data, n);
    });
    if (status_.ok()) bytes_written_ += n;
    return status_;
  }
  const uint8_t* p = static_cast<const uint8_t*>(data);
  bytes_written_ += n;
  while (n > 0) {
    const size_t space = active_.size() - active_used_;
    const size_t take = std::min(space, n);
    std::memcpy(active_.data() + active_used_, p, take);
    active_used_ += take;
    p += take;
    n -= take;
    if (active_used_ == active_.size()) {
      Status s = RotateAndFlush();
      if (!s.ok()) {
        if (status_.ok()) status_ = s;
        return status_;
      }
    }
  }
  return Status::OK();
}

Status RangeMergeSink::Finish() {
  if (finished_) return status_;
  finished_ = true;
  TWRS_IGNORE_STATUS(WaitForInflight());  // folded into status_ below
  if (status_.ok() && active_used_ > 0) {
    status_ = TimedFlush(flush_histogram_, [this] {
      return file_->WriteAt(flush_pos_, active_.data(), active_used_);
    });
    flush_pos_ += active_used_;
    active_used_ = 0;
  }
  if (status_.ok() && bytes_written_ != length_) {
    // An under- or over-filled range would leave a hole (or tear a
    // neighbor) in the shared output.
    status_ = Status::Corruption(
        "range merge wrote " + std::to_string(bytes_written_) + " of " +
        std::to_string(length_) + " assigned bytes");
  }
  if (status_.ok() && sync_on_finish_) status_ = file_->Sync();
  Status close_status = file_->Close();
  if (status_.ok()) status_ = std::move(close_status);
  return status_;
}

Status MakeRangeMergeSink(Env* env, const std::string& path, uint64_t offset,
                          uint64_t length, ThreadPool* pool,
                          size_t buffer_bytes, std::unique_ptr<MergeSink>* out,
                          LatencyHistogram* flush_histogram,
                          bool sync_on_finish) {
  std::unique_ptr<RandomRWFile> file;
  TWRS_RETURN_IF_ERROR(env->ReopenRandomRWFile(path, &file));
  // A natively async WriteAt already returns before the bytes land, so the
  // sink's own double-buffer pool path would only add a copy.
  ThreadPool* sink_pool =
      env->io_capabilities().async_positioned_writes ? nullptr : pool;
  *out = std::make_unique<RangeMergeSink>(std::move(file), offset, length,
                                          sink_pool, buffer_bytes,
                                          flush_histogram, sync_on_finish);
  return Status::OK();
}

}  // namespace twrs
