#ifndef TWRS_IO_RECORD_IO_H_
#define TWRS_IO_RECORD_IO_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/record.h"
#include "io/env.h"
#include "util/status.h"

namespace twrs {

/// Default I/O block size. The paper's file system page is 4 KiB (§A.1); we
/// buffer several pages per sequential stream, as real systems do.
inline constexpr size_t kDefaultBlockBytes = 64 * 1024;

/// Block-buffered sequential writer of fixed-size records.
class RecordWriter {
 public:
  /// Creates the file at `path` (truncating). Call status() to check.
  RecordWriter(Env* env, const std::string& path,
               size_t block_bytes = kDefaultBlockBytes);

  /// Writes through an already-open handle (e.g. an AsyncWritableFile
  /// wrapping the real file). Takes ownership of `file`.
  explicit RecordWriter(std::unique_ptr<WritableFile> file,
                        size_t block_bytes = kDefaultBlockBytes);

  ~RecordWriter();

  RecordWriter(const RecordWriter&) = delete;
  RecordWriter& operator=(const RecordWriter&) = delete;

  /// Status of construction; Append/Finish fail if this is not OK.
  const Status& status() const { return status_; }

  /// Appends one record.
  Status Append(Key key);

  /// Appends `n` records in bulk, serializing whole block-sized chunks
  /// through the simd batch codec instead of one record at a time.
  Status AppendBatch(const Key* keys, size_t n);

  /// Flushes remaining buffered records and closes the file. With
  /// set_sync_on_finish, first forces the bytes to stable storage.
  Status Finish();

  /// Makes Finish Sync the file before closing. Set on final outputs
  /// (top-K results, empty sort outputs) — not on scratch runs.
  void set_sync_on_finish(bool sync) { sync_on_finish_ = sync; }

  /// Number of records appended so far.
  uint64_t count() const { return count_; }

 private:
  Status status_;
  std::unique_ptr<WritableFile> file_;
  std::vector<uint8_t> buffer_;
  size_t buffer_used_ = 0;
  uint64_t count_ = 0;
  bool finished_ = false;
  bool sync_on_finish_ = false;
};

/// Block-buffered sequential reader of fixed-size records.
class RecordReader {
 public:
  /// Opens `path`. Call status() to check.
  RecordReader(Env* env, const std::string& path,
               size_t block_bytes = kDefaultBlockBytes);

  /// Reads through an already-open handle (e.g. a PrefetchingSequentialFile
  /// wrapping the real file). Takes ownership of `file`.
  explicit RecordReader(std::unique_ptr<SequentialFile> file,
                        size_t block_bytes = kDefaultBlockBytes);

  RecordReader(const RecordReader&) = delete;
  RecordReader& operator=(const RecordReader&) = delete;

  const Status& status() const { return status_; }

  /// Reads the next record into `*key`; sets `*eof` instead at end of file.
  Status Next(Key* key, bool* eof);

  /// Reads up to `max` records into `out` in bulk via the simd batch
  /// codec. Sets `*got` to the number delivered; 0 means end of file.
  Status NextBatch(Key* out, size_t max, size_t* got);

 private:
  /// Refills buffer_ from the file. On return, buffer_pos_ < buffer_size_
  /// unless the file is exhausted.
  Status Refill();

  Status status_;
  std::unique_ptr<SequentialFile> file_;
  std::vector<uint8_t> buffer_;
  size_t buffer_size_ = 0;  // valid bytes in buffer_
  size_t buffer_pos_ = 0;
  bool at_eof_ = false;
};

/// Reads all records of a file into a vector (test and example helper).
Status ReadAllRecords(Env* env, const std::string& path,
                      std::vector<Key>* out);

/// Writes all records of a vector to a file (test and example helper).
Status WriteAllRecords(Env* env, const std::string& path,
                       const std::vector<Key>& keys);

}  // namespace twrs

#endif  // TWRS_IO_RECORD_IO_H_
