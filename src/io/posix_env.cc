#include "io/posix_env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace twrs {

namespace {

// strerror_r comes in two flavors: the POSIX variant returns int and fills
// `buf`, while glibc's _GNU_SOURCE variant returns the message directly and
// may ignore `buf`. Overload resolution on the return value picks the right
// interpretation for whichever the platform declared.
inline const char* StrerrorResult(int /*ret*/, const char* buf) { return buf; }
inline const char* StrerrorResult(const char* ret, const char* /*buf*/) {
  return ret;
}

Status ErrnoStatus(const std::string& context) {
  // strerror_r instead of strerror: pool workers and background flushers
  // hit I/O errors concurrently, and strerror may reuse a static buffer
  // (clang-tidy concurrency-mt-unsafe).
  char buf[128];
  buf[0] = '\0';
  const char* msg = StrerrorResult(::strerror_r(errno, buf, sizeof(buf)), buf);
  return Status::IOError(context + ": " + msg);
}

class PosixWritableFile : public WritableFile {
 public:
  explicit PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(const void* data, size_t n) override {
    const char* p = static_cast<const char*>(data);
    while (n > 0) {
      ssize_t w = ::write(fd_, p, n);
      if (w < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("write " + path_);
      }
      p += w;
      n -= static_cast<size_t>(w);
    }
    return Status::OK();
  }

  Status Sync() override {
    // fdatasync, not fsync: the sort's durability point cares about the
    // output bytes (and the size needed to read them), not about mtime.
    if (::fdatasync(fd_) != 0) return ErrnoStatus("fdatasync " + path_);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int r = ::close(fd_);
    fd_ = -1;
    if (r != 0) return ErrnoStatus("close " + path_);
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixSequentialFile : public SequentialFile {
 public:
  explicit PosixSequentialFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  ~PosixSequentialFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Read(void* out, size_t n, size_t* bytes_read) override {
    char* p = static_cast<char*>(out);
    size_t total = 0;
    while (total < n) {
      ssize_t r = ::read(fd_, p + total, n - total);
      if (r < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("read " + path_);
      }
      if (r == 0) break;  // end of file
      total += static_cast<size_t>(r);
    }
    *bytes_read = total;
    return Status::OK();
  }

  Status Skip(uint64_t n) override {
    if (::lseek(fd_, static_cast<off_t>(n), SEEK_CUR) < 0) {
      return ErrnoStatus("lseek " + path_);
    }
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixRandomRWFile : public RandomRWFile {
 public:
  explicit PosixRandomRWFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  ~PosixRandomRWFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status WriteAt(uint64_t offset, const void* data, size_t n) override {
    const char* p = static_cast<const char*>(data);
    while (n > 0) {
      ssize_t w = ::pwrite(fd_, p, n, static_cast<off_t>(offset));
      if (w < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("pwrite " + path_);
      }
      p += w;
      offset += static_cast<uint64_t>(w);
      n -= static_cast<size_t>(w);
    }
    return Status::OK();
  }

  Status ReadAt(uint64_t offset, void* out, size_t n) override {
    char* p = static_cast<char*>(out);
    size_t total = 0;
    while (total < n) {
      ssize_t r = ::pread(fd_, p + total, n - total,
                          static_cast<off_t>(offset + total));
      if (r < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("pread " + path_);
      }
      if (r == 0) {
        return Status::IOError("short read at offset in " + path_);
      }
      total += static_cast<size_t>(r);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fdatasync(fd_) != 0) return ErrnoStatus("fdatasync " + path_);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int r = ::close(fd_);
    fd_ = -1;
    if (r != 0) return ErrnoStatus("close " + path_);
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

}  // namespace

Status PosixEnv::NewWritableFile(const std::string& path,
                                 std::unique_ptr<WritableFile>* out) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus("open " + path);
  out->reset(new PosixWritableFile(fd, path));
  return Status::OK();
}

Status PosixEnv::NewSequentialFile(const std::string& path,
                                   std::unique_ptr<SequentialFile>* out) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoStatus("open " + path);
  out->reset(new PosixSequentialFile(fd, path));
  return Status::OK();
}

Status PosixEnv::NewRandomRWFile(const std::string& path,
                                 std::unique_ptr<RandomRWFile>* out) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus("open " + path);
  out->reset(new PosixRandomRWFile(fd, path));
  return Status::OK();
}

Status PosixEnv::ReopenRandomRWFile(const std::string& path,
                                    std::unique_ptr<RandomRWFile>* out) {
  int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) return ErrnoStatus("open " + path);
  out->reset(new PosixRandomRWFile(fd, path));
  return Status::OK();
}

Status PosixEnv::NewRandomReadFile(const std::string& path,
                                   std::unique_ptr<RandomRWFile>* out) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoStatus("open " + path);
  out->reset(new PosixRandomRWFile(fd, path));
  return Status::OK();
}

bool PosixEnv::FileExists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

Status PosixEnv::RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0) return ErrnoStatus("unlink " + path);
  return Status::OK();
}

Status PosixEnv::GetFileSize(const std::string& path, uint64_t* size) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return ErrnoStatus("stat " + path);
  *size = static_cast<uint64_t>(st.st_size);
  return Status::OK();
}

Status PosixEnv::CreateDirIfMissing(const std::string& path) {
  // Create each component of the path in turn.
  std::string partial;
  for (size_t i = 0; i <= path.size(); ++i) {
    if (i == path.size() || path[i] == '/') {
      partial = path.substr(0, i == path.size() ? i : i + 1);
      if (partial.empty() || partial == "/") continue;
      if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
        return ErrnoStatus("mkdir " + partial);
      }
    }
  }
  return Status::OK();
}

Status PosixEnv::RemoveDir(const std::string& path) {
  if (::rmdir(path.c_str()) != 0) {
    // Best-effort semantics: a directory that is already gone or still has
    // entries (e.g. keep_temp_files leftovers from another sort) is fine.
    if (errno == ENOENT || errno == ENOTEMPTY || errno == EEXIST) {
      return Status::OK();
    }
    return ErrnoStatus("rmdir " + path);
  }
  return Status::OK();
}

Status PosixEnv::ListDir(const std::string& path,
                         std::vector<std::string>* names) {
  names->clear();
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) return ErrnoStatus("opendir " + path);
  while (struct dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    names->push_back(name);
  }
  ::closedir(dir);
  return Status::OK();
}

}  // namespace twrs
