#ifndef TWRS_IO_MERGE_SINK_H_
#define TWRS_IO_MERGE_SINK_H_

#include <cstdint>
#include <memory>
#include <string>

#include "exec/async_io.h"
#include "exec/thread_pool.h"
#include "io/env.h"
#include "obs/latency_histogram.h"
#include "util/status.h"

namespace twrs {

/// Byte-stream destination of one merge.
///
/// Every merge in the system emits its sorted output through a MergeSink
/// instead of a hardwired append-only file, which is what lets one merge
/// write a whole file (AppendMergeSink) while another fills a
/// caller-assigned byte range of a shared output (RangeMergeSink) — the
/// positioned path behind the partitioned final merge and the
/// concatenation-free sharded sort.
///
/// Write calls arrive sequentially from a single thread. Finish flushes
/// buffered bytes and closes the underlying handle; it is idempotent, and
/// no Write may follow it.
class MergeSink {
 public:
  virtual ~MergeSink() = default;

  /// Accepts the next `n` output bytes.
  virtual Status Write(const void* data, size_t n) = 0;

  /// Flushes and closes. Idempotent.
  virtual Status Finish() = 0;

  /// Bytes accepted so far (buffered or flushed).
  virtual uint64_t bytes_written() const = 0;
};

/// MergeSink over an append-only WritableFile — the classic merge output
/// path. Owns the file, which is commonly an AsyncWritableFile so output
/// I/O overlaps loser-tree work (see MakeAppendMergeSink).
class AppendMergeSink : public MergeSink {
 public:
  /// Takes ownership of `file`. When `flush_histogram` is non-null, the
  /// wall time of every Append to `file` is recorded into it — meaningful
  /// when `file` writes synchronously; when `file` is an AsyncWritableFile
  /// attach the histogram there instead (Append here is just a memcpy).
  /// With `sync_on_finish`, Finish forces the bytes to stable storage
  /// (WritableFile::Sync) before closing — set on final outputs, not on
  /// scratch runs that are re-read and deleted minutes later.
  explicit AppendMergeSink(std::unique_ptr<WritableFile> file,
                           LatencyHistogram* flush_histogram = nullptr,
                           bool sync_on_finish = false)
      : file_(std::move(file)),
        flush_histogram_(flush_histogram),
        sync_on_finish_(sync_on_finish) {}

  ~AppendMergeSink() override {
    // Destruction is the unchecked path; Finish() is the checked one and
    // any error it saw is already sticky in status_.
    TWRS_IGNORE_STATUS(Finish());
  }

  Status Write(const void* data, size_t n) override;
  Status Finish() override;
  uint64_t bytes_written() const override { return bytes_written_; }

 private:
  std::unique_ptr<WritableFile> file_;
  LatencyHistogram* flush_histogram_;
  const bool sync_on_finish_;
  uint64_t bytes_written_ = 0;
  Status status_;
  bool finished_ = false;
};

/// Creates `path` (truncating) and returns an AppendMergeSink over it,
/// writing through a double-buffered AsyncWritableFile flushed on `pool` —
/// or directly when `pool` is null or `env` reports async_appends (a
/// natively async backend needs no pump thread). A non-null
/// `flush_histogram` records the wall time of every flush that actually
/// reaches the file (background flushes with a pool, synchronous appends
/// without); it must outlive the sink. `sync_on_finish` makes Finish force
/// the bytes to stable storage before closing.
Status MakeAppendMergeSink(Env* env, const std::string& path, ThreadPool* pool,
                           size_t async_buffer_bytes,
                           std::unique_ptr<MergeSink>* out,
                           LatencyHistogram* flush_histogram = nullptr,
                           bool sync_on_finish = false);

/// MergeSink that fills the caller-assigned byte range
/// [offset, offset + length) of a shared output file through
/// RandomRWFile::WriteAt. Several RangeMergeSinks over distinct handles of
/// one file may run concurrently as long as their ranges are disjoint — the
/// Env contract pinned down by env_test (extend-on-write, disjoint
/// concurrent writers).
///
/// With a pool, output is double-buffered: a filled buffer is sealed and
/// flushed by a background positioned write while the merge keeps filling
/// the other half — the same overlap AsyncWritableFile gives the append
/// path. At most one flush is in flight, so range bytes land in order.
///
/// Finish verifies the range was filled exactly: a merge that produced
/// fewer or more bytes than its assigned range would silently corrupt the
/// shared output, so the mismatch surfaces as Corruption instead.
class RangeMergeSink : public MergeSink {
 public:
  /// Takes ownership of `file` (a handle positioned writes go through;
  /// opened without truncation when the file is shared). `pool` (if
  /// non-null) must outlive the sink.
  /// A non-null `flush_histogram` records the wall time of every
  /// positioned write to `file` (synchronous and background); it must
  /// outlive the sink. With `sync_on_finish`, Finish forces the range to
  /// stable storage (RandomRWFile::Sync) before closing.
  RangeMergeSink(std::unique_ptr<RandomRWFile> file, uint64_t offset,
                 uint64_t length, ThreadPool* pool = nullptr,
                 size_t buffer_bytes = kDefaultAsyncBufferBytes,
                 LatencyHistogram* flush_histogram = nullptr,
                 bool sync_on_finish = false);

  /// Abandons unflushed bytes (error-path unwinding); waits for any
  /// in-flight flush and closes the handle. Call Finish for the checked
  /// shutdown.
  ~RangeMergeSink() override;

  Status Write(const void* data, size_t n) override;
  Status Finish() override;
  uint64_t bytes_written() const override { return bytes_written_; }

  /// The assigned range.
  uint64_t offset() const { return offset_; }
  uint64_t length() const { return length_; }

 private:
  /// Waits for the in-flight flush (if any) and folds its Status into
  /// `status_`.
  Status WaitForInflight();

  /// Seals the active buffer and submits its positioned write.
  Status RotateAndFlush();

  std::unique_ptr<RandomRWFile> file_;
  const uint64_t offset_;
  const uint64_t length_;
  ThreadPool* pool_;
  LatencyHistogram* flush_histogram_;
  const bool sync_on_finish_;
  std::vector<uint8_t> active_;
  std::vector<uint8_t> inflight_;
  size_t active_used_ = 0;
  size_t inflight_used_ = 0;
  uint64_t flush_pos_ = 0;  ///< absolute file offset of the next flush
  uint64_t bytes_written_ = 0;
  TaskHandle pending_;
  Status status_;
  bool finished_ = false;
};

/// Opens `path` for positioned writes without truncation and returns a
/// RangeMergeSink over [offset, offset + length) of it. The file must
/// already exist (its creator truncates exactly once, before any range
/// writer starts). When `env` reports async_positioned_writes the sink
/// skips its own double buffering — the backend's WriteAt already returns
/// before the bytes land.
Status MakeRangeMergeSink(Env* env, const std::string& path, uint64_t offset,
                          uint64_t length, ThreadPool* pool,
                          size_t buffer_bytes, std::unique_ptr<MergeSink>* out,
                          LatencyHistogram* flush_histogram = nullptr,
                          bool sync_on_finish = false);

/// WritableFile adapter over a borrowed MergeSink, so block-buffered record
/// writers (RecordWriter) can emit through any sink. Close finishes the
/// sink.
class MergeSinkFile : public WritableFile {
 public:
  /// Does not take ownership of `sink`, which must outlive this adapter.
  explicit MergeSinkFile(MergeSink* sink) : sink_(sink) {}

  Status Append(const void* data, size_t n) override {
    return sink_->Write(data, n);
  }

  Status Close() override { return sink_->Finish(); }

 private:
  MergeSink* sink_;
};

}  // namespace twrs

#endif  // TWRS_IO_MERGE_SINK_H_
