#ifndef TWRS_IO_POSIX_ENV_H_
#define TWRS_IO_POSIX_ENV_H_

#include "io/env.h"

namespace twrs {

/// Env backed by the POSIX filesystem API. This is the production
/// environment; prefer Env::Default() to instantiating it directly.
class PosixEnv : public Env {
 public:
  PosixEnv() = default;

  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<WritableFile>* out) override;
  Status NewSequentialFile(const std::string& path,
                           std::unique_ptr<SequentialFile>* out) override;
  Status NewRandomRWFile(const std::string& path,
                         std::unique_ptr<RandomRWFile>* out) override;
  Status ReopenRandomRWFile(const std::string& path,
                            std::unique_ptr<RandomRWFile>* out) override;
  Status NewRandomReadFile(const std::string& path,
                           std::unique_ptr<RandomRWFile>* out) override;
  bool FileExists(const std::string& path) override;
  Status RemoveFile(const std::string& path) override;
  Status GetFileSize(const std::string& path, uint64_t* size) override;
  Status CreateDirIfMissing(const std::string& path) override;
  Status RemoveDir(const std::string& path) override;
  Status ListDir(const std::string& path,
                 std::vector<std::string>* names) override;
};

}  // namespace twrs

#endif  // TWRS_IO_POSIX_ENV_H_
