#include "io/record_io.h"

#include <algorithm>

#include "simd/kernels.h"

namespace twrs {

RecordWriter::RecordWriter(Env* env, const std::string& path,
                           size_t block_bytes) {
  // Round the buffer down to a whole number of records (at least one).
  size_t records_per_block = std::max<size_t>(1, block_bytes / kRecordBytes);
  buffer_.resize(records_per_block * kRecordBytes);
  status_ = env->NewWritableFile(path, &file_);
}

RecordWriter::RecordWriter(std::unique_ptr<WritableFile> file,
                           size_t block_bytes)
    : file_(std::move(file)) {
  size_t records_per_block = std::max<size_t>(1, block_bytes / kRecordBytes);
  buffer_.resize(records_per_block * kRecordBytes);
  if (file_ == nullptr) {
    status_ = Status::InvalidArgument("RecordWriter requires a file");
  }
}

RecordWriter::~RecordWriter() {
  // Callers that need the flush outcome call Finish() themselves; by the
  // time the destructor runs there is nowhere left to report it.
  if (!finished_ && file_ != nullptr) TWRS_IGNORE_STATUS(Finish());
}

Status RecordWriter::Append(Key key) {
  TWRS_RETURN_IF_ERROR(status_);
  EncodeKey(key, buffer_.data() + buffer_used_);
  buffer_used_ += kRecordBytes;
  ++count_;
  if (buffer_used_ == buffer_.size()) {
    status_ = file_->Append(buffer_.data(), buffer_used_);
    buffer_used_ = 0;
  }
  return status_;
}

Status RecordWriter::AppendBatch(const Key* keys, size_t n) {
  TWRS_RETURN_IF_ERROR(status_);
  size_t done = 0;
  while (done < n) {
    const size_t room = (buffer_.size() - buffer_used_) / kRecordBytes;
    const size_t take = std::min(room, n - done);
    simd::EncodeKeysBatch(keys + done, take, buffer_.data() + buffer_used_);
    buffer_used_ += take * kRecordBytes;
    count_ += take;
    done += take;
    if (buffer_used_ == buffer_.size()) {
      status_ = file_->Append(buffer_.data(), buffer_used_);
      buffer_used_ = 0;
      TWRS_RETURN_IF_ERROR(status_);
    }
  }
  return status_;
}

Status RecordWriter::Finish() {
  if (finished_) return status_;
  finished_ = true;
  TWRS_RETURN_IF_ERROR(status_);
  if (buffer_used_ > 0) {
    status_ = file_->Append(buffer_.data(), buffer_used_);
    buffer_used_ = 0;
    TWRS_RETURN_IF_ERROR(status_);
  }
  if (sync_on_finish_) {
    status_ = file_->Sync();
    TWRS_RETURN_IF_ERROR(status_);
  }
  status_ = file_->Close();
  return status_;
}

RecordReader::RecordReader(Env* env, const std::string& path,
                           size_t block_bytes) {
  size_t records_per_block = std::max<size_t>(1, block_bytes / kRecordBytes);
  buffer_.resize(records_per_block * kRecordBytes);
  status_ = env->NewSequentialFile(path, &file_);
}

RecordReader::RecordReader(std::unique_ptr<SequentialFile> file,
                           size_t block_bytes)
    : file_(std::move(file)) {
  size_t records_per_block = std::max<size_t>(1, block_bytes / kRecordBytes);
  buffer_.resize(records_per_block * kRecordBytes);
  if (file_ == nullptr) {
    status_ = Status::InvalidArgument("RecordReader requires a file");
  }
}

Status RecordReader::Refill() {
  size_t got = 0;
  status_ = file_->Read(buffer_.data(), buffer_.size(), &got);
  TWRS_RETURN_IF_ERROR(status_);
  if (got < buffer_.size()) at_eof_ = true;
  if (got % kRecordBytes != 0) {
    status_ = Status::Corruption("file size not a multiple of record size");
    return status_;
  }
  buffer_size_ = got;
  buffer_pos_ = 0;
  return Status::OK();
}

Status RecordReader::Next(Key* key, bool* eof) {
  TWRS_RETURN_IF_ERROR(status_);
  *eof = false;
  if (buffer_pos_ == buffer_size_) {
    if (at_eof_) {
      *eof = true;
      return Status::OK();
    }
    TWRS_RETURN_IF_ERROR(Refill());
    if (buffer_size_ == 0) {
      *eof = true;
      return Status::OK();
    }
  }
  *key = DecodeKey(buffer_.data() + buffer_pos_);
  buffer_pos_ += kRecordBytes;
  return Status::OK();
}

Status RecordReader::NextBatch(Key* out, size_t max, size_t* got) {
  *got = 0;
  TWRS_RETURN_IF_ERROR(status_);
  while (*got < max) {
    if (buffer_pos_ == buffer_size_) {
      if (at_eof_) return Status::OK();
      TWRS_RETURN_IF_ERROR(Refill());
      if (buffer_size_ == 0) return Status::OK();
    }
    const size_t avail = (buffer_size_ - buffer_pos_) / kRecordBytes;
    const size_t take = std::min(avail, max - *got);
    simd::DecodeKeysBatch(buffer_.data() + buffer_pos_, take, out + *got);
    buffer_pos_ += take * kRecordBytes;
    *got += take;
  }
  return Status::OK();
}

Status ReadAllRecords(Env* env, const std::string& path,
                      std::vector<Key>* out) {
  out->clear();
  RecordReader reader(env, path);
  TWRS_RETURN_IF_ERROR(reader.status());
  constexpr size_t kBatch = kDefaultBlockBytes / kRecordBytes;
  for (;;) {
    size_t got = 0;
    const size_t old = out->size();
    out->resize(old + kBatch);
    TWRS_RETURN_IF_ERROR(reader.NextBatch(out->data() + old, kBatch, &got));
    out->resize(old + got);
    if (got == 0) return Status::OK();
  }
}

Status WriteAllRecords(Env* env, const std::string& path,
                       const std::vector<Key>& keys) {
  RecordWriter writer(env, path);
  TWRS_RETURN_IF_ERROR(writer.status());
  TWRS_RETURN_IF_ERROR(writer.AppendBatch(keys.data(), keys.size()));
  return writer.Finish();
}

}  // namespace twrs
