#include "service/sort_service.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "core/record.h"
#include "exec/executor.h"
#include "io/uring_env.h"
#include "simd/dispatch.h"

namespace twrs {

namespace internal {

/// Wake-up channel between JobHandles and their service. Handles may
/// outlive the service, so Cancel cannot dereference a raw back-pointer:
/// the link is shared, its `service` field is nulled under `mu` at the
/// start of Shutdown, and a Cancel that loses that race simply skips the
/// wake-up (Shutdown finalizes every job itself). A Cancel that wins it
/// holds `mu` through the wake-up, which blocks Shutdown — and therefore
/// destruction — until the service call returns.
struct ServiceLink {
  Mutex mu;
  SortService* service TWRS_GUARDED_BY(mu) = nullptr;
};

/// Shared state of one job, owned jointly by the service (queue, scheduler,
/// executor task) and every JobHandle copy.
struct SortJob {
  SortJobSpec spec;
  CancelToken cancel;
  Stopwatch submitted_at;

  /// Live progress, updated from the sort's hot paths with relaxed
  /// atomics; internally synchronized, so unguarded.
  ProgressCounters progress;

  /// Wake-up channel for JobHandle::Cancel (see ServiceLink). Set once
  /// before the job is published; immutable afterwards, so unguarded.
  std::shared_ptr<ServiceLink> link;

  mutable Mutex mu;
  CondVar cv;
  JobState state TWRS_GUARDED_BY(mu) = JobState::kQueued;
  Status status TWRS_GUARDED_BY(mu);
  size_t granted_memory_records TWRS_GUARDED_BY(mu) = 0;
  size_t downsized_memory_records TWRS_GUARDED_BY(mu) = 0;
  size_t planned_shards TWRS_GUARDED_BY(mu) = 0;
  size_t planned_final_merge_threads TWRS_GUARDED_BY(mu) = 0;
  ShardPlanLimit plan_limit TWRS_GUARDED_BY(mu) =
      ShardPlanLimit::kInputFitsInMemory;
  double queue_seconds TWRS_GUARDED_BY(mu) = 0.0;
  double total_seconds TWRS_GUARDED_BY(mu) = 0.0;
  ShardedSortResult result TWRS_GUARDED_BY(mu);
};

namespace {

bool IsTerminal(JobState state) {
  return state == JobState::kDone || state == JobState::kFailed ||
         state == JobState::kCancelled;
}

}  // namespace

}  // namespace internal

using internal::SortJob;

const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kAdmitted:
      return "admitted";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "?";
}

JobHandle::JobHandle(std::shared_ptr<SortJob> job) : job_(std::move(job)) {}

JobHandle::~JobHandle() = default;

Status JobHandle::Wait() {
  if (job_ == nullptr) return Status::OK();
  MutexLock lock(&job_->mu);
  while (!internal::IsTerminal(job_->state)) job_->cv.Wait(job_->mu);
  return job_->status;
}

void JobHandle::Cancel() {
  if (job_ == nullptr) return;
  job_->cancel.Cancel();
  std::shared_ptr<internal::ServiceLink> link;
  {
    MutexLock lock(&job_->mu);
    if (internal::IsTerminal(job_->state)) return;
    link = job_->link;
  }
  if (link == nullptr) return;
  MutexLock lock(&link->mu);
  if (link->service != nullptr) link->service->OnJobCancelled();
}

JobState JobHandle::state() const {
  if (job_ == nullptr) return JobState::kCancelled;
  MutexLock lock(&job_->mu);
  return job_->state;
}

JobProgress JobHandle::Progress() const {
  if (job_ == nullptr) return JobProgress();
  return job_->progress.Snapshot();
}

SortJobStats JobHandle::stats() const {
  SortJobStats stats;
  if (job_ == nullptr) return stats;
  MutexLock lock(&job_->mu);
  stats.state = job_->state;
  stats.status = job_->status;
  stats.nominal_memory_records = job_->spec.sort.memory_records;
  stats.granted_memory_records = job_->granted_memory_records;
  stats.downsized_memory_records = job_->downsized_memory_records;
  stats.planned_shards = job_->planned_shards;
  stats.planned_final_merge_threads = job_->planned_final_merge_threads;
  stats.plan_limit = job_->plan_limit;
  stats.queue_seconds = job_->queue_seconds;
  stats.total_seconds = job_->total_seconds;
  stats.result = job_->result;
  return stats;
}

SortService::SortService(Env* env, SortServiceOptions options)
    : env_(env),
      options_(options),
      metrics_(options.enable_metrics ? std::make_unique<MetricsRegistry>()
                                      : nullptr),
      governor_(options.governor),
      executor_(options.executor != nullptr ? options.executor
                                            : &Executor::Shared()),
      link_(std::make_shared<internal::ServiceLink>()) {
  options_.max_concurrent_jobs =
      std::max<size_t>(1, options_.max_concurrent_jobs);
  // Depth 0 would reject every Submit; the smallest useful queue is 1.
  options_.max_queue_depth = std::max<size_t>(1, options_.max_queue_depth);
  if (metrics_ != nullptr) {
    governor_.set_reserve_histogram(
        metrics_->Histogram("governor.reserve_wait_seconds"));
  }
  link_->service = this;
  scheduler_ = std::thread([this] { SchedulerLoop(); });
}

SortService::~SortService() { Shutdown(); }

Status SortService::Submit(const SortJobSpec& spec, JobHandle* handle) {
  if (spec.input_path.empty() || spec.output_path.empty()) {
    return Status::InvalidArgument(
        "job needs both an input_path and an output_path");
  }
  if (spec.sort.memory_records == 0) {
    return Status::InvalidArgument("memory_records must be positive");
  }
  // Reject an unsupported io_uring request here, not minutes into the job.
  // kAuto/kPosix/kDefault always resolve; only the backend choice is
  // checked — the job still resolves it again when it runs.
  {
    IoBackend resolved = IoBackend::kDefault;
    TWRS_RETURN_IF_ERROR(ResolveIoBackend(spec.sort.io_backend, &resolved));
  }
  if (!env_->FileExists(spec.input_path)) {
    return Status::NotFound("input file " + spec.input_path +
                            " does not exist");
  }
  // Catch an unusable scratch directory at submission time, not minutes
  // into run generation. Probing costs a handful of filesystem calls, so
  // a directory that already passed is not re-probed on every Submit of
  // a burst.
  bool preflight_needed;
  {
    MutexLock lock(&mu_);
    preflight_needed = spec.sort.temp_dir != preflighted_temp_dir_;
  }
  if (preflight_needed) {
    TWRS_RETURN_IF_ERROR(PreflightTempDir(env_, spec.sort.temp_dir));
    MutexLock lock(&mu_);
    preflighted_temp_dir_ = spec.sort.temp_dir;
  }

  auto job = std::make_shared<SortJob>();
  job->spec = spec;
  job->spec.sort.cancel = nullptr;  // the job's own token is authoritative
  job->link = link_;
  {
    MutexLock lock(&mu_);
    if (stopping_) {
      ++stats_.rejected;
      if (metrics_ != nullptr) {
        metrics_->Counter("service.jobs_rejected")->Increment();
      }
      return Status::Busy("sort service is shutting down");
    }
    if (queue_.size() >= options_.max_queue_depth) {
      ++stats_.rejected;
      if (metrics_ != nullptr) {
        metrics_->Counter("service.jobs_rejected")->Increment();
      }
      return Status::Busy(
          "admission queue full (depth " +
          std::to_string(options_.max_queue_depth) + ")");
    }
    ++stats_.submitted;
    queue_.push_back(job);
    stats_.peak_queued = std::max(stats_.peak_queued, queue_.size());
  }
  if (metrics_ != nullptr) {
    metrics_->Counter("service.jobs_submitted")->Increment();
  }
  scheduler_cv_.NotifyOne();
  if (handle != nullptr) *handle = JobHandle(std::move(job));
  return Status::OK();
}

bool SortService::SchedulerShouldWake() const {
  if (stopping_) return true;
  if (queue_.empty()) return false;
  if (running_ < options_.max_concurrent_jobs) return true;
  // Cancelled jobs are finalized even at full concurrency.
  for (const auto& queued : queue_) {
    if (queued->cancel.cancelled()) return true;
  }
  return false;
}

void SortService::SchedulerLoop() {
  for (;;) {
    std::shared_ptr<SortJob> job;
    {
      MutexLock lock(&mu_);
      while (!SchedulerShouldWake()) scheduler_cv_.Wait(mu_);
      if (stopping_) return;
      if (!queue_.empty() && running_ < options_.max_concurrent_jobs) {
        job = queue_.front();
        queue_.pop_front();
        admitting_ = job;
      }
    }
    // Jobs cancelled while queued never admit; finalize them without
    // waiting for a running slot. (OnJobCancelled also sweeps, so a
    // cancelled job is finalized even while this thread is blocked in
    // Reserve below — this sweep catches tokens fired without a handle
    // wake-up.)
    SweepCancelledQueuedJobs();
    if (job == nullptr) continue;

    // Admission: block for a (possibly shrunk) memory lease. FIFO both
    // here and inside the governor, so job order is submission order.
    // Top-K jobs ask selection-aware: a bounded dual-heap selection holds
    // K records, not the nominal run-generation budget, so small-K jobs
    // admit ahead of what a full sort's ask would allow.
    const size_t ask = PlanTopKLeaseRecords(job->spec.sort.limit,
                                            job->spec.sort.memory_records);
    MemoryLease lease;
    Stopwatch reserve_watch;
    Status reserve_status = governor_.Reserve(ask, &lease, &job->cancel);
    if (metrics_ != nullptr) {
      metrics_->Histogram("service.admission_reserve_seconds")
          ->RecordSeconds(reserve_watch.ElapsedSeconds());
    }
    {
      MutexLock lock(&mu_);
      admitting_.reset();
    }
    if (!reserve_status.ok()) {
      FinishJob(job,
                reserve_status.IsCancelled() ? JobState::kCancelled
                                             : JobState::kFailed,
                std::move(reserve_status), /*was_running=*/false);
      continue;
    }

    {
      MutexLock lock(&job->mu);
      job->state = JobState::kAdmitted;
      job->granted_memory_records = lease.records();
      job->queue_seconds = job->submitted_at.ElapsedSeconds();
      if (metrics_ != nullptr) {
        metrics_->Histogram("service.queue_seconds")
            ->RecordSeconds(job->queue_seconds);
      }
    }

    // Best-effort input-size probe: gives the job's progress snapshot its
    // denominator and, in auto-shard mode, feeds the planner. On error
    // total_records stays 0 (unknown) and the planner sees zero records,
    // so it simply plans a single shard.
    uint64_t input_bytes = 0;
    TWRS_IGNORE_STATUS(env_->GetFileSize(job->spec.input_path, &input_bytes));
    const uint64_t input_records = input_bytes / kRecordBytes;
    job->progress.set_total_records(input_records);
    job->progress.set_total_output_records(
        job->spec.sort.limit > 0
            ? std::min<uint64_t>(job->spec.sort.limit, input_records)
            : input_records);

    // Plan step: fixed shard count from the spec, or adaptive from input
    // size, the lease actually granted and the executor's current load.
    // Top-K jobs run unsharded regardless (per-shard outputs are disjoint
    // ranges of a fixed-size file, which a K-record output is not), so the
    // limit overrides even a pinned spec count.
    ShardPlan plan;
    if (job->spec.sort.limit > 0) {
      plan.shards = 1;
      plan.limit = ShardPlanLimit::kTopKSelection;
    } else if (job->spec.shards != kAutoShards) {
      plan.shards = job->spec.shards;
      plan.limit = ShardPlanLimit::kFixedByCaller;
    } else {
      ShardPlanInputs inputs;
      inputs.input_records = input_bytes / kRecordBytes;
      inputs.memory_records = lease.records();
      inputs.executor_capacity = executor_->capacity();
      inputs.executor_inflight = executor_->inflight_tasks();
      inputs.max_shards = options_.max_shards;
      plan = PlanShardCount(inputs);
    }

    {
      MutexLock lock(&mu_);
      if (lease.records() < ask) {
        ++stats_.shrunk_admissions;
      }
      ++running_;
      stats_.peak_running = std::max(stats_.peak_running, running_);
    }
    // std::function needs copyable captures; the move-only lease rides in
    // a shared_ptr.
    auto shared_lease = std::make_shared<MemoryLease>(std::move(lease));
    executor_->pool()->Submit([this, job, shared_lease, plan] {
      RunJob(job, shared_lease, plan);
      return Status::OK();
    });
  }
}

void SortService::RunJob(std::shared_ptr<SortJob> job,
                         std::shared_ptr<MemoryLease> lease, ShardPlan plan) {
  // A pinned spec value overrides the planner; 0 means planner's choice.
  const size_t final_merge_threads = job->spec.final_merge_threads != 0
                                         ? job->spec.final_merge_threads
                                         : plan.final_merge_threads;
  {
    MutexLock lock(&job->mu);
    job->state = JobState::kRunning;
    job->planned_shards = plan.shards;
    job->planned_final_merge_threads = final_merge_threads;
    job->plan_limit = plan.limit;
  }

  ShardedSortOptions sharded;
  sharded.shards = std::max<size_t>(1, plan.shards);
  sharded.sample_size = job->spec.sample_size;
  sharded.sample_seed = job->spec.sample_seed;
  sharded.sort = job->spec.sort;
  sharded.sort.memory_records = lease->records();  // the governed budget
  sharded.sort.cancel = &job->cancel;
  sharded.sort.progress = &job->progress;
  sharded.sort.metrics = metrics_.get();
  sharded.sort.parallel.final_merge_threads =
      std::max<size_t>(1, final_merge_threads);
  if (sharded.sort.parallel.worker_threads == 0 &&
      sharded.sort.parallel.final_merge_threads > 1) {
    // The partitioned final merge runs on the shared executor's pool;
    // worker_threads > 0 is what switches pool borrowing on (the pool's
    // size stays the executor's capacity either way).
    sharded.sort.parallel.worker_threads = 1;
  }
  sharded.executor = executor_;
  if (sharded.sort.parallel.executor == nullptr &&
      !sharded.sort.parallel.dedicated_pool) {
    sharded.sort.parallel.executor = executor_;
  }
  // Dynamic lease renegotiation (the merge needs far less memory than the
  // heaps): once every shard's run generation is over, return the surplus
  // so the governor can admit the next queued job while this one merges.
  sharded.sort.on_merge_begin = [job, lease](size_t merge_records) {
    const size_t before = lease->records();
    lease->Downsize(merge_records);
    const size_t after = lease->records();
    if (after < before) {
      MutexLock lock(&job->mu);
      job->downsized_memory_records = after;
    }
  };

  ShardedSorter sorter(env_, sharded);
  ShardedSortResult result;
  Status status =
      sorter.SortFile(job->spec.input_path, job->spec.output_path, &result);
  lease->Release();  // before finalizing: a woken waiter must see the budget

  JobState terminal = JobState::kDone;
  if (status.IsCancelled()) {
    terminal = JobState::kCancelled;
  } else if (!status.ok()) {
    terminal = JobState::kFailed;
  } else {
    MutexLock lock(&job->mu);
    job->result = std::move(result);
  }
  FinishJob(job, terminal, std::move(status), /*was_running=*/true);
}

void SortService::FinishJob(const std::shared_ptr<SortJob>& job,
                            JobState state, Status status, bool was_running) {
  // Outcome counters first: once the job's waiters wake, a Stats() call
  // must already see this job counted.
  {
    MutexLock lock(&mu_);
    switch (state) {
      case JobState::kDone:
        ++stats_.completed;
        break;
      case JobState::kCancelled:
        ++stats_.cancelled;
        break;
      default:
        ++stats_.failed;
        break;
    }
  }
  if (metrics_ != nullptr) {
    const char* outcome = state == JobState::kDone        ? "completed"
                          : state == JobState::kCancelled ? "cancelled"
                                                          : "failed";
    metrics_->Counter(std::string("service.jobs_") + outcome)->Increment();
  }
  if (state == JobState::kDone) {
    job->progress.AdvancePhase(SortProgressPhase::kComplete);
  }
  {
    MutexLock lock(&job->mu);
    job->state = state;
    job->status = std::move(status);
    job->total_seconds = job->submitted_at.ElapsedSeconds();
    if (metrics_ != nullptr) {
      metrics_->Histogram("service.total_seconds")
          ->RecordSeconds(job->total_seconds);
    }
  }
  job->cv.NotifyAll();
  // The running slot is given back last, with the notifies under the lock:
  // running_ == 0 releases ~SortService, so this must be FinishJob's final
  // touch of the service.
  {
    MutexLock lock(&mu_);
    if (was_running) --running_;
    scheduler_cv_.NotifyAll();
    drained_cv_.NotifyAll();
  }
}

void SortService::SweepCancelledQueuedJobs() {
  std::vector<std::shared_ptr<SortJob>> cancelled_jobs;
  {
    MutexLock lock(&mu_);
    for (auto it = queue_.begin(); it != queue_.end();) {
      if ((*it)->cancel.cancelled()) {
        cancelled_jobs.push_back(*it);
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const auto& cancelled : cancelled_jobs) {
    FinishJob(cancelled, JobState::kCancelled,
              Status::Cancelled("job cancelled while queued"),
              /*was_running=*/false);
  }
}

void SortService::OnJobCancelled() {
  // Finalize cancelled queued jobs right here on the caller's thread: the
  // scheduler may be blocked in a Reserve for a different job for
  // arbitrarily long, and a cancelled queued job needs no resources to
  // reach its terminal state.
  SweepCancelledQueuedJobs();
  governor_.WakeWaiters();
  scheduler_cv_.NotifyAll();
}

void SortService::Shutdown() {
  // Sever the JobHandle::Cancel wake-up channel first: once the link is
  // nulled no handle can re-enter the service, and a Cancel already past
  // the null check finishes before this lock is granted.
  {
    MutexLock lock(&link_->mu);
    link_->service = nullptr;
  }
  std::deque<std::shared_ptr<SortJob>> leftover;
  std::shared_ptr<SortJob> admitting;
  bool already_stopping;
  {
    MutexLock lock(&mu_);
    already_stopping = stopping_;
    stopping_ = true;
    leftover.swap(queue_);
    admitting = admitting_;
  }
  scheduler_cv_.NotifyAll();
  // The job mid-admission unwinds out of its blocking Reserve.
  if (admitting != nullptr) admitting->cancel.Cancel();
  governor_.WakeWaiters();
  if (scheduler_.joinable()) scheduler_.join();

  if (!already_stopping) {
    for (const auto& job : leftover) {
      job->cancel.Cancel();
      FinishJob(job, JobState::kCancelled,
                Status::Cancelled("sort service shut down"),
                /*was_running=*/false);
    }
  }

  // Running jobs finish on their own (or unwind from their cancellation
  // points if the caller cancelled them); wait them out so no executor
  // task references this service after destruction.
  MutexLock lock(&mu_);
  while (running_ != 0) drained_cv_.Wait(mu_);
}

SortServiceStats SortService::Stats() const {
  SortServiceStats stats;
  {
    MutexLock lock(&mu_);
    stats = stats_;
    stats.queued = queue_.size();
    stats.running = running_;
  }
  // Outside mu_: the registry has its own lock, and snapshotting every
  // histogram is too much work to hold the scheduler's mutex across.
  if (metrics_ != nullptr) {
    simd::PublishKernelCounters(metrics_.get());
    PublishIoUringCounters(metrics_.get());
    stats.metrics = metrics_->Snapshot();
  }
  return stats;
}

}  // namespace twrs
