#include "service/shard_planner.h"

#include <algorithm>

namespace twrs {

namespace {

/// Target shard size as a multiple of the memory lease. With 2WRS runs
/// averaging ~2x memory, an 8x-memory shard yields a handful of runs —
/// one merge pass — while keeping per-shard setup cost negligible.
constexpr uint64_t kShardMemoryMultiple = 8;

}  // namespace

const char* ShardPlanLimitName(ShardPlanLimit limit) {
  switch (limit) {
    case ShardPlanLimit::kInputFitsInMemory:
      return "input-fits-in-memory";
    case ShardPlanLimit::kInputSize:
      return "input-size";
    case ShardPlanLimit::kExecutorLoad:
      return "executor-load";
    case ShardPlanLimit::kMaxShards:
      return "max-shards";
    case ShardPlanLimit::kFixedByCaller:
      return "fixed";
    case ShardPlanLimit::kTopKSelection:
      return "top-k-selection";
  }
  return "?";
}

size_t PlanTopKLeaseRecords(uint64_t limit, size_t nominal_memory_records) {
  if (limit == 0) return nominal_memory_records;
  // Floor: one block of I/O buffer either side of the selector still needs
  // backing even for K = 1, and a lease this small admits immediately
  // under any sane budget anyway.
  constexpr size_t kMinTopKLeaseRecords = 8192;
  const size_t ask = static_cast<size_t>(
      std::min<uint64_t>(limit, nominal_memory_records));
  return std::min(nominal_memory_records,
                  std::max(ask, kMinTopKLeaseRecords));
}

ShardPlan PlanShardCount(const ShardPlanInputs& inputs) {
  ShardPlan plan;
  const size_t memory = std::max<size_t>(1, inputs.memory_records);
  if (inputs.input_records <= memory) {
    // One in-memory-sized sort; splitting it only adds partition passes,
    // and its final merge consumes a handful of runs at most.
    plan.shards = 1;
    plan.limit = ShardPlanLimit::kInputFitsInMemory;
    return plan;
  }

  const uint64_t target_shard_records = kShardMemoryMultiple * memory;
  const uint64_t wanted =
      (inputs.input_records + target_shard_records - 1) / target_shard_records;

  // A plan wider than the executor's free workers would only queue shard
  // sorts behind each other; always leave room for at least one.
  const size_t capacity = std::max<size_t>(1, inputs.executor_capacity);
  const size_t free_workers =
      capacity > inputs.executor_inflight ? capacity - inputs.executor_inflight
                                          : 1;
  const size_t max_shards = std::max<size_t>(1, inputs.max_shards);

  uint64_t shards = std::max<uint64_t>(1, wanted);
  plan.limit = ShardPlanLimit::kInputSize;
  if (shards > free_workers) {
    shards = free_workers;
    plan.limit = ShardPlanLimit::kExecutorLoad;
  }
  if (shards > max_shards) {
    shards = max_shards;
    plan.limit = ShardPlanLimit::kMaxShards;
  }
  plan.shards = static_cast<size_t>(shards);

  // The last pass is range-partitionable now: give each shard's final
  // merge an equal slice of the workers the shard count left free, capped
  // by that merge's expected run count (2WRS runs average ~2x memory, so
  // more partitions than runs/2 would mostly merge air).
  const uint64_t per_shard_records = inputs.input_records / plan.shards;
  const uint64_t expected_runs =
      std::max<uint64_t>(1, per_shard_records / (2 * memory));
  uint64_t final_threads = std::max<size_t>(1, free_workers / plan.shards);
  final_threads = std::min(final_threads, expected_runs);
  plan.final_merge_threads = static_cast<size_t>(final_threads);
  return plan;
}

}  // namespace twrs
