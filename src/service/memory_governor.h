#ifndef TWRS_SERVICE_MEMORY_GOVERNOR_H_
#define TWRS_SERVICE_MEMORY_GOVERNOR_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <utility>

#include "util/cancel.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace twrs {

class LatencyHistogram;
class MemoryGovernor;

/// RAII lease over part of a MemoryGovernor's record budget. Move-only;
/// the records return to the governor on Release() or destruction. A
/// default-constructed lease is empty and releases nothing.
class MemoryLease {
 public:
  MemoryLease() = default;
  ~MemoryLease() { Release(); }

  MemoryLease(MemoryLease&& other) noexcept { *this = std::move(other); }
  MemoryLease& operator=(MemoryLease&& other) noexcept {
    if (this != &other) {
      Release();
      governor_ = other.governor_;
      records_ = other.records_;
      other.governor_ = nullptr;
      other.records_ = 0;
    }
    return *this;
  }

  MemoryLease(const MemoryLease&) = delete;
  MemoryLease& operator=(const MemoryLease&) = delete;

  bool valid() const { return governor_ != nullptr; }

  /// Granted budget in records; 0 for an empty lease.
  size_t records() const { return records_; }

  /// Shrinks the lease to `records`, returning the difference to the
  /// governor immediately (waiters are woken, so a queued job can admit
  /// while this one keeps running). No-op when `records` is not smaller
  /// than the current grant. The SortService calls this when a job leaves
  /// run generation: the merge phase needs a fraction of the heap budget,
  /// and holding the rest would only park the admission queue.
  void Downsize(size_t records);

  /// Returns the records to the governor. Idempotent.
  void Release();

 private:
  friend class MemoryGovernor;
  MemoryLease(MemoryGovernor* governor, size_t records)
      : governor_(governor), records_(records) {}

  MemoryGovernor* governor_ = nullptr;
  size_t records_ = 0;
};

/// Configuration of a MemoryGovernor.
struct MemoryGovernorOptions {
  /// Total record budget shared by every concurrent sort — the
  /// process-wide equivalent of the paper's "available memory" M.
  size_t capacity_records = 4 << 20;

  /// Smallest lease ever granted. Under load a job's request shrinks down
  /// to — but never below — this floor, so admission always makes
  /// progress instead of waiting for the full nominal budget. The paper's
  /// Chapter 6 point that run generation quality degrades gracefully with
  /// memory is what makes shrinking a sound trade: a shrunk job produces
  /// more, shorter runs, not a wrong result.
  size_t min_lease_records = 1 << 12;
};

/// Aggregate state of a governor (snapshot; fields are mutually consistent
/// at the time of the call).
struct MemoryGovernorStats {
  size_t capacity_records = 0;
  size_t reserved_records = 0;
  size_t waiting = 0;          ///< callers blocked in Reserve
  uint64_t total_leases = 0;   ///< leases granted so far
  uint64_t shrunk_leases = 0;  ///< leases granted below their nominal ask
  uint64_t downsized_leases = 0;  ///< leases shrunk mid-flight via Downsize
};

/// Process-wide arbiter of the record budget shared by concurrent sorts.
///
/// Reserve(nominal) blocks until a lease of at least
/// min(nominal, min_lease_records) can be granted, then grants as much of
/// `nominal` as is currently free — a *shrunk-but-bounded* lease under
/// load instead of an unbounded wait for the full ask. Waiters are served
/// strictly FIFO: a large request parks arrivals behind it rather than
/// being starved by a stream of small ones, which (with every lease
/// eventually released) makes admission starvation-free.
///
/// Thread-safe. Leases must not outlive the governor.
class MemoryGovernor {
 public:
  explicit MemoryGovernor(MemoryGovernorOptions options);
  ~MemoryGovernor() = default;

  MemoryGovernor(const MemoryGovernor&) = delete;
  MemoryGovernor& operator=(const MemoryGovernor&) = delete;

  /// Blocks until a lease can be granted (FIFO order), then writes it to
  /// `*lease`. `nominal_records` asks are clamped to the capacity. When
  /// `cancel` fires while waiting (wake it via WakeWaiters), returns
  /// Cancelled without a grant. InvalidArgument on a zero ask.
  Status Reserve(size_t nominal_records, MemoryLease* lease,
                 const CancelToken* cancel = nullptr) TWRS_EXCLUDES(mu_);

  /// Non-blocking variant: grants only if no one is waiting (no barging
  /// past the FIFO queue) and the floor is free right now.
  bool TryReserve(size_t nominal_records, MemoryLease* lease)
      TWRS_EXCLUDES(mu_);

  /// Wakes blocked Reserve calls so they can observe their CancelToken.
  void WakeWaiters() TWRS_EXCLUDES(mu_);

  /// Records the wall time of every Reserve call — immediate grants
  /// included, so the histogram's low percentiles show the uncontended
  /// path and the high ones the admission queue. `histogram` must outlive
  /// the governor; set before concurrent use. Null disables recording.
  void set_reserve_histogram(LatencyHistogram* histogram) {
    reserve_histogram_ = histogram;
  }

  MemoryGovernorStats Stats() const TWRS_EXCLUDES(mu_);

  const MemoryGovernorOptions& options() const { return options_; }

 private:
  friend class MemoryLease;

  /// Lease floor for an ask: never below 1, never above the ask or the
  /// capacity.
  size_t FloorFor(size_t nominal) const;

  void Release(size_t records) TWRS_EXCLUDES(mu_);

  /// Release for a mid-flight Downsize: also counts the event.
  void ReleaseDownsized(size_t records) TWRS_EXCLUDES(mu_);

  /// Immutable after the constructor's clamp; read without the lock.
  MemoryGovernorOptions options_;

  /// Written once before concurrent use, then only read.
  LatencyHistogram* reserve_histogram_ = nullptr;

  mutable Mutex mu_;
  CondVar cv_;
  size_t reserved_ TWRS_GUARDED_BY(mu_) = 0;
  /// FIFO admission queue: tickets of the callers blocked in Reserve, in
  /// arrival order. Only the front ticket may be granted.
  std::deque<uint64_t> waiters_ TWRS_GUARDED_BY(mu_);
  uint64_t next_ticket_ TWRS_GUARDED_BY(mu_) = 0;
  uint64_t total_leases_ TWRS_GUARDED_BY(mu_) = 0;
  uint64_t shrunk_leases_ TWRS_GUARDED_BY(mu_) = 0;
  uint64_t downsized_leases_ TWRS_GUARDED_BY(mu_) = 0;
};

}  // namespace twrs

#endif  // TWRS_SERVICE_MEMORY_GOVERNOR_H_
