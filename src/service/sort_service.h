#ifndef TWRS_SERVICE_SORT_SERVICE_H_
#define TWRS_SERVICE_SORT_SERVICE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>

#include "io/env.h"
#include "merge/external_sorter.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "service/memory_governor.h"
#include "service/shard_planner.h"
#include "shard/sharded_sorter.h"
#include "util/cancel.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/thread_annotations.h"

namespace twrs {

class Executor;
class SortService;

/// SortJobSpec::shards value asking the service to pick the shard count
/// adaptively (PlanShardCount over input size, lease and executor load).
inline constexpr size_t kAutoShards = 0;

/// One sort job: a record file sorted into an output file under the
/// service's memory governance.
struct SortJobSpec {
  std::string input_path;
  std::string output_path;

  /// Per-job sort configuration. `memory_records` is the job's *nominal*
  /// memory ask — the MemoryGovernor may grant less under load. The
  /// `cancel` field is ignored: cancellation goes through JobHandle, which
  /// owns the job's token.
  ExternalSortOptions sort;

  /// kAutoShards = plan adaptively; 1 = plain unsharded sort; otherwise a
  /// fixed shard count.
  size_t shards = kAutoShards;

  /// Partitions of each sort's final merge pass. 0 = let the planner pick
  /// (free executor workers spread across the shards); 1 = serial last
  /// pass; otherwise a fixed partition count.
  size_t final_merge_threads = 0;

  /// Splitter sampling knobs of the sharded path.
  size_t sample_size = 4096;
  uint64_t sample_seed = 1;
};

/// Lifecycle of a job: Submit enqueues it (kQueued); the scheduler admits
/// it once a memory lease is granted (kAdmitted), dispatches it onto the
/// executor (kRunning) and it terminates as exactly one of kDone, kFailed
/// or kCancelled.
enum class JobState {
  kQueued,
  kAdmitted,
  kRunning,
  kDone,
  kFailed,
  kCancelled,
};

const char* JobStateName(JobState state);

/// Snapshot of one job's progress and outcome.
struct SortJobStats {
  JobState state = JobState::kQueued;
  Status status;

  size_t nominal_memory_records = 0;
  size_t granted_memory_records = 0;  ///< the lease; < nominal when shrunk
  /// Lease after the mid-flight downsize at merge begin; 0 until (and
  /// unless) the job returned part of its budget.
  size_t downsized_memory_records = 0;
  size_t planned_shards = 0;
  size_t planned_final_merge_threads = 0;
  ShardPlanLimit plan_limit = ShardPlanLimit::kInputFitsInMemory;

  double queue_seconds = 0.0;  ///< submission → admission (lease granted)
  double total_seconds = 0.0;  ///< submission → terminal state

  /// Sort breakdown; valid when state == kDone. Unsharded jobs report one
  /// shard.
  ShardedSortResult result;
};

namespace internal {
struct ServiceLink;
struct SortJob;
}  // namespace internal

/// Caller's reference to a submitted job. Copyable; all copies refer to
/// the same job. Wait/state/stats stay valid after the service finished
/// the job, even once the service itself is gone (every job is finalized
/// by Shutdown, so a handle never refers to a live job of a dead service).
class JobHandle {
 public:
  JobHandle() = default;
  ~JobHandle();
  JobHandle(const JobHandle&) = default;
  JobHandle& operator=(const JobHandle&) = default;
  JobHandle(JobHandle&&) noexcept = default;
  JobHandle& operator=(JobHandle&&) noexcept = default;

  bool valid() const { return job_ != nullptr; }

  /// Blocks until the job reaches a terminal state; returns its Status.
  /// OK for kDone, the failure for kFailed, Cancelled for kCancelled.
  Status Wait();

  /// Requests cooperative cancellation: a queued job is dropped at
  /// admission, a running job unwinds from its next cancellation point.
  /// Wait() still must be called to observe the terminal state.
  void Cancel();

  JobState state() const;
  SortJobStats stats() const;

  /// Live progress of the job: current phase, records ingested/merged and
  /// bytes of I/O so far. Cheap (relaxed atomic loads) and safe to poll
  /// from any thread while the job runs; writers batch their increments,
  /// so a mid-flight snapshot can trail the truth by a bounded amount.
  /// Exact once the job is terminal. Default snapshot on an invalid
  /// handle.
  JobProgress Progress() const;

 private:
  friend class SortService;
  explicit JobHandle(std::shared_ptr<internal::SortJob> job);

  std::shared_ptr<internal::SortJob> job_;
};

/// Configuration of a SortService.
struct SortServiceOptions {
  /// Jobs running concurrently (admission gate, independent of the
  /// executor's worker count).
  size_t max_concurrent_jobs = 2;

  /// Jobs waiting for admission before Submit rejects with Busy.
  size_t max_queue_depth = 64;

  /// Ceiling of the adaptive shard planner.
  size_t max_shards = 16;

  /// Process-wide memory budget the jobs' leases come from.
  MemoryGovernorOptions governor;

  /// Executor jobs (and their shard sorts and pipelined features) run on;
  /// null = Executor::Shared(). Must outlive the service.
  Executor* executor = nullptr;

  /// When true the service owns a MetricsRegistry and threads it through
  /// every job: per-phase latency histograms, flush/reserve-wait timings
  /// and outcome counters, surfaced via Stats().metrics. Recording is
  /// lock-free on the hot paths; turn it off to measure the (small)
  /// residual overhead or to run with zero instrumentation.
  bool enable_metrics = true;
};

/// Aggregate service counters (snapshot).
struct SortServiceStats {
  uint64_t submitted = 0;
  uint64_t rejected = 0;  ///< Submit refused: queue full or shutting down
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t cancelled = 0;

  /// Jobs admitted with a lease below their nominal memory ask.
  uint64_t shrunk_admissions = 0;

  size_t queued = 0;   ///< currently waiting for admission
  size_t running = 0;  ///< currently admitted or running
  size_t peak_queued = 0;
  size_t peak_running = 0;

  /// Registry snapshot (histograms and counters) when the service runs
  /// with enable_metrics; empty otherwise.
  MetricsSnapshot metrics;
};

/// Long-running multi-tenant sort scheduler: Submit returns immediately
/// with a JobHandle; a scheduler thread admits queued jobs FIFO under two
/// gates — the concurrency limit and a MemoryGovernor lease (shrunk under
/// load, so admission never stalls behind an oversized ask) — plans the
/// shard count adaptively, and dispatches each job's whole sort onto the
/// executor. Destruction (or Shutdown) stops intake, cancels queued jobs
/// and drains running ones.
///
/// Thread-safe: Submit/Stats may be called from any thread.
class SortService {
 public:
  /// Does not take ownership of `env`, which must be safe for concurrent
  /// use (PosixEnv, MemEnv and SimDiskEnv all are) and outlive the
  /// service.
  SortService(Env* env, SortServiceOptions options);

  /// Calls Shutdown().
  ~SortService();

  SortService(const SortService&) = delete;
  SortService& operator=(const SortService&) = delete;

  /// Validates the spec (paths present, input exists, temp_dir writable —
  /// failing here instead of mid-sort), enqueues the job and returns a
  /// handle to it. Busy when the admission queue is full or the service
  /// is shutting down.
  Status Submit(const SortJobSpec& spec, JobHandle* handle)
      TWRS_EXCLUDES(mu_);

  /// Stops intake, finalizes still-queued jobs as cancelled and waits for
  /// running jobs to finish. Idempotent.
  void Shutdown() TWRS_EXCLUDES(mu_);

  SortServiceStats Stats() const TWRS_EXCLUDES(mu_);
  MemoryGovernorStats GovernorStats() const { return governor_.Stats(); }

  /// The service's registry; null when enable_metrics is false. Stable
  /// for the service's lifetime — callers may cache histogram pointers.
  MetricsRegistry* metrics() const { return metrics_.get(); }

  const SortServiceOptions& options() const { return options_; }

 private:
  friend class JobHandle;

  void SchedulerLoop() TWRS_EXCLUDES(mu_);

  /// Scheduler wake-up predicate: stop requested, or a job can be admitted
  /// (or finalized as cancelled) right now.
  bool SchedulerShouldWake() const TWRS_REQUIRES(mu_);

  /// Runs one admitted job on the executor: plan already fixed, lease
  /// held; releases the lease and finalizes the job when done.
  void RunJob(std::shared_ptr<internal::SortJob> job,
              std::shared_ptr<MemoryLease> lease, ShardPlan plan);

  /// Moves a job to `state`, records `status`, notifies waiters and
  /// updates the service counters. `was_running` distinguishes jobs that
  /// held a running slot from ones finalized straight out of the queue.
  void FinishJob(const std::shared_ptr<internal::SortJob>& job,
                 JobState state, Status status, bool was_running);

  /// Removes jobs whose token fired while still queued and finalizes
  /// them as cancelled. Called by the scheduler and, through
  /// OnJobCancelled, directly on the cancelling thread.
  void SweepCancelledQueuedJobs() TWRS_EXCLUDES(mu_);

  /// JobHandle::Cancel entry point: finalizes cancelled queued jobs and
  /// wakes the scheduler and the governor so a blocked admission observes
  /// the fired token promptly.
  void OnJobCancelled() TWRS_EXCLUDES(mu_);

  Env* env_;
  SortServiceOptions options_;
  /// Declared before governor_: the governor's reserve histogram lives in
  /// this registry, so the registry must be destroyed after it.
  std::unique_ptr<MetricsRegistry> metrics_;
  MemoryGovernor governor_;
  Executor* executor_;

  /// Wake-up channel shared with every job's handles; severed (service
  /// pointer nulled) at the start of Shutdown so handles that outlive the
  /// service cannot reach into it.
  std::shared_ptr<internal::ServiceLink> link_;

  mutable Mutex mu_;
  CondVar scheduler_cv_;  ///< queue/capacity/stop changes
  CondVar drained_cv_;    ///< running_ reached zero
  std::deque<std::shared_ptr<internal::SortJob>> queue_ TWRS_GUARDED_BY(mu_);
  /// Job popped by the scheduler but still waiting for its lease; Shutdown
  /// cancels it so the blocking Reserve unwinds.
  std::shared_ptr<internal::SortJob> admitting_ TWRS_GUARDED_BY(mu_);
  size_t running_ TWRS_GUARDED_BY(mu_) = 0;
  bool stopping_ TWRS_GUARDED_BY(mu_) = false;
  SortServiceStats stats_ TWRS_GUARDED_BY(mu_);
  /// Last temp_dir that passed its submission preflight; identical
  /// directories in a burst of submissions are not re-probed.
  std::string preflighted_temp_dir_ TWRS_GUARDED_BY(mu_);

  std::thread scheduler_;
};

}  // namespace twrs

#endif  // TWRS_SERVICE_SORT_SERVICE_H_
