#include "service/memory_governor.h"

#include <algorithm>

#include "obs/latency_histogram.h"
#include "util/stopwatch.h"

namespace twrs {

void MemoryLease::Release() {
  if (governor_ != nullptr) {
    governor_->Release(records_);
    governor_ = nullptr;
    records_ = 0;
  }
}

void MemoryLease::Downsize(size_t records) {
  if (governor_ == nullptr || records >= records_) return;
  governor_->ReleaseDownsized(records_ - records);
  records_ = records;
}

MemoryGovernor::MemoryGovernor(MemoryGovernorOptions options)
    : options_(options) {
  // A zero-capacity governor could never grant anything and every Reserve
  // would block forever; clamp to the smallest useful budget instead.
  options_.capacity_records = std::max<size_t>(1, options_.capacity_records);
}

size_t MemoryGovernor::FloorFor(size_t nominal) const {
  size_t floor = std::min(options_.min_lease_records, nominal);
  floor = std::min(floor, options_.capacity_records);
  return std::max<size_t>(1, floor);
}

Status MemoryGovernor::Reserve(size_t nominal_records, MemoryLease* lease,
                               const CancelToken* cancel) {
  if (nominal_records == 0) {
    return Status::InvalidArgument("memory lease ask must be positive");
  }
  const size_t ask = std::min(nominal_records, options_.capacity_records);
  const size_t floor = FloorFor(ask);

  Stopwatch wait_watch;
  MutexLock lock(&mu_);
  const uint64_t ticket = next_ticket_++;
  waiters_.push_back(ticket);
  while (!IsCancelled(cancel) &&
         !(waiters_.front() == ticket &&
           options_.capacity_records - reserved_ >= floor)) {
    cv_.Wait(mu_);
  }
  if (IsCancelled(cancel)) {
    waiters_.erase(std::find(waiters_.begin(), waiters_.end(), ticket));
    // A cancelled front ticket may have been the only thing gating the
    // next waiter.
    cv_.NotifyAll();
    return Status::Cancelled("memory reservation cancelled");
  }
  waiters_.pop_front();
  const size_t free = options_.capacity_records - reserved_;
  const size_t granted = std::min(ask, free);
  reserved_ += granted;
  ++total_leases_;
  if (granted < nominal_records) ++shrunk_leases_;
  *lease = MemoryLease(this, granted);
  // Whatever budget remains may satisfy the next ticket's floor.
  cv_.NotifyAll();
  if (reserve_histogram_ != nullptr) {
    reserve_histogram_->RecordSeconds(wait_watch.ElapsedSeconds());
  }
  return Status::OK();
}

bool MemoryGovernor::TryReserve(size_t nominal_records, MemoryLease* lease) {
  if (nominal_records == 0) return false;
  const size_t ask = std::min(nominal_records, options_.capacity_records);
  const size_t floor = FloorFor(ask);
  MutexLock lock(&mu_);
  // No barging: a try-reservation never jumps the FIFO queue.
  if (!waiters_.empty()) return false;
  const size_t free = options_.capacity_records - reserved_;
  if (free < floor) return false;
  const size_t granted = std::min(ask, free);
  reserved_ += granted;
  ++total_leases_;
  if (granted < nominal_records) ++shrunk_leases_;
  *lease = MemoryLease(this, granted);
  return true;
}

void MemoryGovernor::WakeWaiters() {
  MutexLock lock(&mu_);
  cv_.NotifyAll();
}

void MemoryGovernor::Release(size_t records) {
  MutexLock lock(&mu_);
  reserved_ -= std::min(records, reserved_);
  cv_.NotifyAll();
}

void MemoryGovernor::ReleaseDownsized(size_t records) {
  MutexLock lock(&mu_);
  reserved_ -= std::min(records, reserved_);
  ++downsized_leases_;
  cv_.NotifyAll();
}

MemoryGovernorStats MemoryGovernor::Stats() const {
  MutexLock lock(&mu_);
  MemoryGovernorStats stats;
  stats.capacity_records = options_.capacity_records;
  stats.reserved_records = reserved_;
  stats.waiting = waiters_.size();
  stats.total_leases = total_leases_;
  stats.shrunk_leases = shrunk_leases_;
  stats.downsized_leases = downsized_leases_;
  return stats;
}

}  // namespace twrs
