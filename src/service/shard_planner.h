#ifndef TWRS_SERVICE_SHARD_PLANNER_H_
#define TWRS_SERVICE_SHARD_PLANNER_H_

#include <cstddef>
#include <cstdint>

namespace twrs {

/// Inputs of one adaptive shard-count decision.
struct ShardPlanInputs {
  /// Records to sort (from the input file size for file sorts).
  uint64_t input_records = 0;

  /// Run-generation memory the job actually holds — its MemoryGovernor
  /// lease, not the nominal ask.
  size_t memory_records = 0;

  /// Executor worker count and its current load (tasks submitted but not
  /// yet finished), from Executor::capacity() / inflight_tasks().
  size_t executor_capacity = 1;
  size_t executor_inflight = 0;

  /// Hard ceiling on the plan (service/CLI policy).
  size_t max_shards = 16;
};

/// Why PlanShardCount stopped where it did (surfaced in service stats and
/// the twrs_sortd report, and pinned down by tests).
enum class ShardPlanLimit {
  kInputFitsInMemory,  ///< 1 shard: sharding an in-memory sort is overhead
  kInputSize,          ///< data wanted this many shards and got them
  kExecutorLoad,       ///< clipped to the executor's free workers
  kMaxShards,          ///< clipped to the configured ceiling
  kFixedByCaller,      ///< the planner never ran: the spec pinned a count
  kTopKSelection,      ///< 1 shard: a top-K job runs unsharded by design
};

const char* ShardPlanLimitName(ShardPlanLimit limit);

/// An adaptive shard-count decision.
struct ShardPlan {
  size_t shards = 1;
  ShardPlanLimit limit = ShardPlanLimit::kInputFitsInMemory;

  /// Partitions each sort's final merge pass should use (1 = serial).
  /// Since that pass became range-partitionable, the planner hands the
  /// workers not already claimed by concurrent shard sorts to the final
  /// merges instead of treating the last pass as serial; each partition
  /// is a partial loser-tree merge writing its own byte range.
  size_t final_merge_threads = 1;
};

/// Picks the shard count for one sort from the input size, the memory
/// lease and the executor's current load — the replacement for a fixed
/// `--shards` value.
///
/// Rationale: each shard runs a whole external sort whose run-generation
/// quality is a function of its memory (Chapter 6), so shards are sized at
/// a small multiple of the lease — big enough that replacement selection's
/// long runs still amortize the per-shard setup, small enough that a
/// shard's merge stays a single pass. The count is then clipped to the
/// executor's free workers (a plan wider than the worker set just queues)
/// and the configured ceiling. Free workers the shard count did not claim
/// are spread over the shards' final merge passes (final_merge_threads).
ShardPlan PlanShardCount(const ShardPlanInputs& inputs);

/// Selection-aware admission ask for a top-K job: a job that will run the
/// bounded dual-heap selector holds K records of heap plus I/O buffers,
/// not the nominal run-generation budget, so asking the governor for
/// min(nominal, max(K, floor)) lets small-K jobs admit long before a full
/// sort could. A K at or above the nominal ask changes nothing — the job
/// will run the run-pruning merge with the normal budget. `limit` == 0
/// (not a top-K job) returns the nominal ask unchanged.
size_t PlanTopKLeaseRecords(uint64_t limit, size_t nominal_memory_records);

}  // namespace twrs

#endif  // TWRS_SERVICE_SHARD_PLANNER_H_
