#include "select/topk.h"

namespace twrs {

const char* SelectOrderName(SelectOrder order) {
  return order == SelectOrder::kAscending ? "asc" : "desc";
}

const char* TopKStrategyName(TopKStrategy strategy) {
  switch (strategy) {
    case TopKStrategy::kAuto:
      return "auto";
    case TopKStrategy::kDualHeap:
      return "dual-heap";
    case TopKStrategy::kRunPruningMerge:
      return "run-pruning-merge";
  }
  return "unknown";
}

TopKStrategy PlanTopKStrategy(uint64_t limit, size_t memory_records) {
  return limit <= memory_records ? TopKStrategy::kDualHeap
                                 : TopKStrategy::kRunPruningMerge;
}

}  // namespace twrs
