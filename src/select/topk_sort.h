#ifndef TWRS_SELECT_TOPK_SORT_H_
#define TWRS_SELECT_TOPK_SORT_H_

#include <string>

#include "core/record_source.h"
#include "io/env.h"
#include "merge/external_sorter.h"
#include "util/status.h"

namespace twrs {

/// The TopKStrategy::kDualHeap execution path: streams `source` once
/// through a DualHeapSelector of capacity `options.limit` and writes the
/// selection — ascending-sorted, byte-identical to a full sort truncated
/// to its first (kAscending) or last (kDescending) K records — to
/// `output_path`. No runs, no merge, no scratch files; the only engine
/// I/O is the output write, so `env` should be the sorter's CountingEnv.
///
/// Fills `result` like a sort: run_gen.total_records is the stream
/// length, output_records the selection size, run_gen_seconds the
/// streaming time. Honors options.cancel/progress/metrics (records
/// select.dual_heap_sorts and select.selection_seconds).
Status DualHeapSelectToFile(Env* env, const ExternalSortOptions& options,
                            RecordSource* source,
                            const std::string& output_path,
                            ExternalSortResult* result);

}  // namespace twrs

#endif  // TWRS_SELECT_TOPK_SORT_H_
