#include "select/dual_heap_selector.h"

#include <algorithm>

namespace twrs {

DualHeapSelector::DualHeapSelector(size_t capacity, SelectOrder order)
    : capacity_(capacity),
      order_(order),
      // Ascending selection keeps the K smallest: the Bottom side's
      // max-heap root is the worst kept record. Descending mirrors it.
      side_(order == SelectOrder::kAscending ? HeapSide::kBottom
                                             : HeapSide::kTop),
      heap_(capacity) {}

void DualHeapSelector::Add(Key key) {
  ++consumed_;
  if (capacity_ == 0) return;
  const TaggedRecord record{key, 0};
  if (heap_.size() < capacity_) {
    heap_.Push(side_, record);
    return;
  }
  // Strict comparison: an incoming key equal to the bound cannot improve
  // the selection (records are bare keys), so ties never churn the heap.
  const bool beats_bound = order_ == SelectOrder::kAscending
                               ? key < heap_.Top(side_).key
                               : key > heap_.Top(side_).key;
  if (beats_bound) heap_.ReplaceTop(side_, record);
}

std::vector<Key> DualHeapSelector::Take() {
  std::vector<Key> keys;
  keys.reserve(heap_.size());
  // Bottom (max-heap) pops descending; Top (min-heap) pops ascending.
  while (!heap_.Empty(side_)) keys.push_back(heap_.Pop(side_).key);
  if (order_ == SelectOrder::kAscending) {
    std::reverse(keys.begin(), keys.end());
  }
  consumed_ = 0;
  return keys;
}

void SelectTopK(RecordSource* source, size_t k, SelectOrder order,
                std::vector<Key>* out, uint64_t* consumed) {
  DualHeapSelector selector(k, order);
  Key key = 0;
  while (source->Next(&key)) selector.Add(key);
  if (consumed != nullptr) *consumed = selector.consumed();
  *out = selector.Take();
}

}  // namespace twrs
