#ifndef TWRS_SELECT_DUAL_HEAP_SELECTOR_H_
#define TWRS_SELECT_DUAL_HEAP_SELECTOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/record.h"
#include "core/record_source.h"
#include "heap/double_heap.h"
#include "select/topk.h"

namespace twrs {

/// Bounded streaming top-K selector on the paper's DoubleHeap (PAPERS.md:
/// Sepesi's Dualheap Selection Algorithm; Elmasry et al.'s bounded-
/// workspace selection). Holds at most `capacity` records regardless of
/// stream length — the workspace is the K-record heap, nothing else — so a
/// selector sized to a MemoryGovernor lease never exceeds it.
///
/// kAscending keeps the K smallest keys in the Bottom side (a max-heap):
/// its root is the current K-th-smallest bound, and any smaller candidate
/// evicts it via DoubleHeap::ReplaceTop. kDescending mirrors this on the
/// Top side (a min-heap) to keep the K largest. Either way Take() returns
/// the survivors ascending-sorted, matching the record-file invariant.
class DualHeapSelector {
 public:
  DualHeapSelector(size_t capacity, SelectOrder order);

  /// Offers one record to the selector.
  void Add(Key key);

  /// Records offered so far.
  uint64_t consumed() const { return consumed_; }

  /// Records currently held: min(consumed, capacity).
  size_t size() const { return heap_.size(); }

  size_t capacity() const { return capacity_; }
  SelectOrder order() const { return order_; }

  /// Current selection boundary: the key a candidate must beat to enter a
  /// full selector (the largest kept key when ascending, the smallest when
  /// descending). Requires size() == capacity() > 0.
  Key bound() const { return heap_.Top(side_).key; }

  /// Drains the selector and returns the selected records in ascending key
  /// order. The selector is empty (but reusable) afterwards.
  std::vector<Key> Take();

 private:
  const size_t capacity_;
  const SelectOrder order_;
  const HeapSide side_;
  DoubleHeap heap_;
  uint64_t consumed_ = 0;
};

/// Convenience one-pass driver: streams `source` to exhaustion through a
/// K-capacity selector. `out` receives the selection ascending-sorted;
/// `consumed` (optional) the stream length.
void SelectTopK(RecordSource* source, size_t k, SelectOrder order,
                std::vector<Key>* out, uint64_t* consumed = nullptr);

}  // namespace twrs

#endif  // TWRS_SELECT_DUAL_HEAP_SELECTOR_H_
