#include "select/topk_sort.h"

#include <vector>

#include "io/record_io.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "select/dual_heap_selector.h"
#include "util/stopwatch.h"

namespace twrs {

namespace {

// Cancellation/progress granularity of the ingest loop: cheap enough to
// keep the Add() hot path tight, frequent enough that a cancelled job
// unwinds promptly (matches CancellableSource's batching in sort_phases).
constexpr uint64_t kIngestBatch = 1024;

}  // namespace

Status DualHeapSelectToFile(Env* env, const ExternalSortOptions& options,
                            RecordSource* source,
                            const std::string& output_path,
                            ExternalSortResult* result) {
  Stopwatch select_watch;
  if (options.progress != nullptr) {
    options.progress->AdvancePhase(SortProgressPhase::kRunGeneration);
  }

  DualHeapSelector selector(options.limit, options.order);
  Key key = 0;
  uint64_t batch = 0;
  while (source->Next(&key)) {
    selector.Add(key);
    if (++batch == kIngestBatch) {
      if (options.progress != nullptr) {
        options.progress->AddRecordsIngested(batch);
      }
      batch = 0;
      if (IsCancelled(options.cancel)) {
        return Status::Cancelled("sort cancelled during top-K selection");
      }
    }
  }
  if (batch > 0 && options.progress != nullptr) {
    options.progress->AddRecordsIngested(batch);
  }
  result->run_gen.total_records = selector.consumed();
  result->run_gen_seconds = select_watch.ElapsedSeconds();

  if (options.progress != nullptr) {
    options.progress->AdvancePhase(SortProgressPhase::kFinalMerge);
  }
  const std::vector<Key> selected = selector.Take();
  RecordWriter writer(env, output_path, options.block_bytes);
  TWRS_RETURN_IF_ERROR(writer.status());
  // The selection writes the user-visible output directly — same durability
  // contract as the final merge pass of a full sort.
  writer.set_sync_on_finish(true);
  TWRS_RETURN_IF_ERROR(writer.AppendBatch(selected.data(), selected.size()));
  TWRS_RETURN_IF_ERROR(writer.Finish());
  result->output_records = writer.count();
  if (options.progress != nullptr) {
    options.progress->AddRecordsMerged(writer.count());
    options.progress->AdvancePhase(SortProgressPhase::kComplete);
  }
  if (options.metrics != nullptr) {
    options.metrics->Counter("select.dual_heap_sorts")->Increment();
    options.metrics->Histogram("select.selection_seconds")
        ->RecordSeconds(select_watch.ElapsedSeconds());
  }
  return Status::OK();
}

}  // namespace twrs
