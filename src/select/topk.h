#ifndef TWRS_SELECT_TOPK_H_
#define TWRS_SELECT_TOPK_H_

#include <cstddef>
#include <cstdint>

namespace twrs {

/// Which end of the key domain a top-K selection keeps. The output file is
/// always ascending-sorted (the record-file invariant every merge and
/// verifier in this repo relies on); the order only chooses *which* K
/// records survive: the K smallest (kAscending — `ORDER BY key LIMIT K`)
/// or the K largest (kDescending — `ORDER BY key DESC LIMIT K`).
enum class SelectOrder {
  kAscending,
  kDescending,
};

/// Returns "asc"/"desc" for flags, logging and bench JSON.
const char* SelectOrderName(SelectOrder order);

/// How a top-K sort is executed.
enum class TopKStrategy {
  /// Let the planner choose (options), or: this was not a top-K sort
  /// (result). PlanTopKStrategy resolves it against the memory budget.
  kAuto,

  /// Bounded streaming selection: a K-capacity DualHeapSelector consumes
  /// the source in one pass and the K survivors are written directly —
  /// no runs, no merge, no scratch I/O. Requires K records of heap.
  kDualHeap,

  /// Normal run generation, then a limit-aware merge: every merge pass
  /// stops after K outputs, each input run is clamped to the K-record
  /// prefix (or suffix) that can still matter, and the final merge prunes
  /// whole runs that sampled key bounds prove cannot contribute.
  kRunPruningMerge,
};

/// Returns "auto"/"dual-heap"/"run-pruning-merge".
const char* TopKStrategyName(TopKStrategy strategy);

/// Picks the execution strategy for a top-K sort: dual-heap whenever the
/// K-record selector fits the record budget that run generation would
/// otherwise occupy, run-pruning merge when it does not. `limit` must be
/// non-zero.
TopKStrategy PlanTopKStrategy(uint64_t limit, size_t memory_records);

}  // namespace twrs

#endif  // TWRS_SELECT_TOPK_H_
