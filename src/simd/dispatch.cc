#include "simd/dispatch.h"

#include <atomic>
#include <cstdlib>
#include <string>

#include "obs/metrics.h"
#include "simd/kernels.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace twrs {
namespace simd {

namespace {

bool CpuHasAvx2Bit() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool EnvForcesScalar() {
  const char* env = std::getenv("TWRS_FORCE_SCALAR");
  if (env == nullptr) return false;
  // Any value except empty or "0" forces scalar, so `TWRS_FORCE_SCALAR=1`
  // and `TWRS_FORCE_SCALAR=true` both behave as expected.
  return !(env[0] == '\0' || (env[0] == '0' && env[1] == '\0'));
}

// -1 = no programmatic override (environment default applies),
//  0 = vector dispatch allowed, 1 = scalar forced.
std::atomic<int> g_force_scalar{-1};

std::atomic<uint64_t> g_kernel_calls[kNumKernels][kNumDispatchLevels];

}  // namespace

const char* DispatchLevelName(DispatchLevel level) {
  return level == DispatchLevel::kAvx2 ? "avx2" : "scalar";
}

const char* KernelName(Kernel kernel) {
  switch (kernel) {
    case Kernel::kSortKeys:
      return "sort_block";
    case Kernel::kPartition:
      return "partition";
    case Kernel::kEncode:
      return "encode";
    case Kernel::kDecode:
      return "decode";
    case Kernel::kMinIndex:
      return "min_index";
  }
  return "unknown";
}

bool CpuSupportsAvx2() {
  static const bool supported = CpuHasAvx2Bit() && internal::Avx2Compiled();
  return supported;
}

void ForceScalar(bool force) {
  g_force_scalar.store(force ? 1 : 0, std::memory_order_relaxed);
}

void ClearForceScalarOverride() {
  g_force_scalar.store(-1, std::memory_order_relaxed);
}

DispatchLevel ActiveDispatchLevel() {
  int forced = g_force_scalar.load(std::memory_order_relaxed);
  if (forced < 0) {
    static const bool env_forced = EnvForcesScalar();
    forced = env_forced ? 1 : 0;
  }
  return forced == 0 && CpuSupportsAvx2() ? DispatchLevel::kAvx2
                                          : DispatchLevel::kScalar;
}

uint64_t KernelCalls(Kernel kernel, DispatchLevel level) {
  return g_kernel_calls[static_cast<int>(kernel)][static_cast<int>(level)]
      .load(std::memory_order_relaxed);
}

void AddKernelCalls(Kernel kernel, DispatchLevel level, uint64_t n) {
  g_kernel_calls[static_cast<int>(kernel)][static_cast<int>(level)].fetch_add(
      n, std::memory_order_relaxed);
}

void PublishKernelCounters(MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  // The globals only grow, so each registry counter is raised to the
  // current total by its delta. The mutex keeps two concurrent publishers
  // from both applying the same delta to one registry.
  static Mutex mu;
  MutexLock lock(&mu);
  for (int k = 0; k < kNumKernels; ++k) {
    for (int l = 0; l < kNumDispatchLevels; ++l) {
      const uint64_t total = KernelCalls(static_cast<Kernel>(k),
                                         static_cast<DispatchLevel>(l));
      if (total == 0) continue;  // don't materialize never-used counters
      MonotonicCounter* counter = metrics->Counter(
          std::string("simd.") + KernelName(static_cast<Kernel>(k)) + "." +
          DispatchLevelName(static_cast<DispatchLevel>(l)) + "_calls");
      const uint64_t seen = counter->value();
      if (total > seen) counter->Increment(total - seen);
    }
  }
}

}  // namespace simd
}  // namespace twrs
