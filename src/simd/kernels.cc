#include "simd/kernels.h"

#include <algorithm>
#include <cstring>

namespace twrs {
namespace simd {

namespace {

/// Linear scans beat per-key binary search only while the whole splitter
/// set fits comfortably in registers/L1; wider sets (never produced by the
/// shard planner) take the scalar search even under vector dispatch.
constexpr size_t kMaxVectorSplitters = 64;

DispatchLevel ResolveAndCount(Kernel kernel) {
  const DispatchLevel level = ActiveDispatchLevel();
  AddKernelCalls(kernel, level, 1);
  return level;
}

}  // namespace

namespace internal {

void SortKeysBlockScalar(Key* keys, size_t n) { std::sort(keys, keys + n); }

void PartitionBySplittersScalar(const Key* keys, size_t n,
                                const Key* splitters, size_t num_splitters,
                                uint32_t* bucket) {
  for (size_t i = 0; i < n; ++i) {
    bucket[i] = static_cast<uint32_t>(
        std::upper_bound(splitters, splitters + num_splitters, keys[i]) -
        splitters);
  }
}

void EncodeKeysBatchScalar(const Key* keys, size_t n, uint8_t* out) {
#if TWRS_LITTLE_ENDIAN
  // In-memory and on-disk layouts agree on little-endian hosts, so the
  // whole batch is one copy (the compiler fully vectorizes this).
  if (n > 0) std::memcpy(out, keys, n * kRecordBytes);
#else
  for (size_t i = 0; i < n; ++i) EncodeKey(keys[i], out + i * kRecordBytes);
#endif
}

void DecodeKeysBatchScalar(const uint8_t* in, size_t n, Key* keys) {
#if TWRS_LITTLE_ENDIAN
  if (n > 0) std::memcpy(keys, in, n * kRecordBytes);
#else
  for (size_t i = 0; i < n; ++i) keys[i] = DecodeKey(in + i * kRecordBytes);
#endif
}

size_t MinIndexNScalar(const Key* keys, size_t n) {
  size_t best = 0;
  for (size_t i = 1; i < n; ++i) {
    if (keys[i] < keys[best]) best = i;
  }
  return best;
}

}  // namespace internal

void SortKeysBlock(Key* keys, size_t n) {
  if (ResolveAndCount(Kernel::kSortKeys) == DispatchLevel::kAvx2) {
    internal::SortKeysBlockAvx2(keys, n);
  } else {
    internal::SortKeysBlockScalar(keys, n);
  }
}

void PartitionBySplitters(const Key* keys, size_t n, const Key* splitters,
                          size_t num_splitters, uint32_t* bucket) {
  if (num_splitters <= kMaxVectorSplitters &&
      ResolveAndCount(Kernel::kPartition) == DispatchLevel::kAvx2) {
    internal::PartitionBySplittersAvx2(keys, n, splitters, num_splitters,
                                       bucket);
  } else {
    internal::PartitionBySplittersScalar(keys, n, splitters, num_splitters,
                                         bucket);
  }
}

void EncodeKeysBatch(const Key* keys, size_t n, uint8_t* out) {
  if (ResolveAndCount(Kernel::kEncode) == DispatchLevel::kAvx2) {
    internal::EncodeKeysBatchAvx2(keys, n, out);
  } else {
    internal::EncodeKeysBatchScalar(keys, n, out);
  }
}

void DecodeKeysBatch(const uint8_t* in, size_t n, Key* keys) {
  if (ResolveAndCount(Kernel::kDecode) == DispatchLevel::kAvx2) {
    internal::DecodeKeysBatchAvx2(in, n, keys);
  } else {
    internal::DecodeKeysBatchScalar(in, n, keys);
  }
}

size_t MinIndexN(const Key* keys, size_t n) {
  if (ResolveAndCount(Kernel::kMinIndex) == DispatchLevel::kAvx2) {
    return internal::MinIndexNAvx2(keys, n);
  }
  return internal::MinIndexNScalar(keys, n);
}

}  // namespace simd
}  // namespace twrs
