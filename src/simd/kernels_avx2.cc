/// AVX2 bodies of the simd kernel twins. This translation unit is the only
/// one compiled with -mavx2 (see src/simd/CMakeLists.txt); everything here
/// runs only after runtime dispatch confirmed the CPU supports AVX2, so the
/// rest of the binary stays executable on baseline x86-64. On toolchains
/// without AVX2 the #else branch at the bottom forwards every twin to its
/// scalar sibling and reports Avx2Compiled() == false.

#include "simd/kernels.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>
#include <cstring>
#include <vector>

namespace twrs {
namespace simd {
namespace internal {

namespace {

// AVX2 has no native 64-bit min/max; synthesize them from the signed
// compare, which matches Key = int64_t ordering exactly.
inline __m256i MinEpi64(__m256i a, __m256i b) {
  return _mm256_blendv_epi8(a, b, _mm256_cmpgt_epi64(a, b));
}

inline __m256i MaxEpi64(__m256i a, __m256i b) {
  return _mm256_blendv_epi8(b, a, _mm256_cmpgt_epi64(a, b));
}

// [a0 a1 a2 a3] -> [a3 a2 a1 a0]
inline __m256i Reverse4(__m256i v) {
  return _mm256_permute4x64_epi64(v, _MM_SHUFFLE(0, 1, 2, 3));
}

// Sorts a bitonic 4-sequence held in one vector: compare-exchange at
// stride 2 (cross-lane permute + blend of the high 128-bit half), then at
// stride 1 (in-lane swap + blend of the odd 64-bit elements).
inline __m256i BitonicMerge4(__m256i v) {
  __m256i w = _mm256_permute4x64_epi64(v, _MM_SHUFFLE(1, 0, 3, 2));
  __m256i mn = MinEpi64(v, w);
  __m256i mx = MaxEpi64(v, w);
  v = _mm256_blend_epi32(mn, mx, 0xF0);
  w = _mm256_permute4x64_epi64(v, _MM_SHUFFLE(2, 3, 0, 1));
  mn = MinEpi64(v, w);
  mx = MaxEpi64(v, w);
  return _mm256_blend_epi32(mn, mx, 0xCC);
}

// Merges two sorted 4-vectors into one sorted 8-sequence: reversing the
// second operand makes (lo, hi) bitonic, one cross compare-exchange splits
// it into a low and high bitonic half, each finished by BitonicMerge4.
inline void Merge8(__m256i a, __m256i b, __m256i* lo, __m256i* hi) {
  b = Reverse4(b);
  __m256i mn = MinEpi64(a, b);
  __m256i mx = MaxEpi64(a, b);
  *lo = BitonicMerge4(mn);
  *hi = BitonicMerge4(mx);
}

// Sorts a bitonic 8-sequence spread over two vectors.
inline void BitonicMerge8(__m256i* x0, __m256i* x1) {
  __m256i mn = MinEpi64(*x0, *x1);
  __m256i mx = MaxEpi64(*x0, *x1);
  *x0 = BitonicMerge4(mn);
  *x1 = BitonicMerge4(mx);
}

// Merges two sorted 8-sequences (a0|a1 and b0|b1) into a sorted 16.
inline void MergeTwo8(__m256i a0, __m256i a1, __m256i b0, __m256i b1,
                      __m256i* x0, __m256i* x1, __m256i* x2, __m256i* x3) {
  __m256i rb0 = Reverse4(b1);
  __m256i rb1 = Reverse4(b0);
  *x0 = MinEpi64(a0, rb0);
  *x1 = MinEpi64(a1, rb1);
  *x2 = MaxEpi64(a0, rb0);
  *x3 = MaxEpi64(a1, rb1);
  BitonicMerge8(x0, x1);
  BitonicMerge8(x2, x3);
}

// Sorts 16 keys held in four registers: a 5-comparator column network
// sorts the four 4-key columns, a 4x4 transpose turns the sorted columns
// into sorted rows, and two bitonic merge rounds combine the rows. On
// return *o0..*o3 concatenate to the ascending permutation.
inline void Sort16Regs(__m256i* o0, __m256i* o1, __m256i* o2, __m256i* o3) {
  __m256i v0 = *o0;
  __m256i v1 = *o1;
  __m256i v2 = *o2;
  __m256i v3 = *o3;

  __m256i t;
  t = MinEpi64(v0, v1);
  v1 = MaxEpi64(v0, v1);
  v0 = t;
  t = MinEpi64(v2, v3);
  v3 = MaxEpi64(v2, v3);
  v2 = t;
  t = MinEpi64(v0, v2);
  v2 = MaxEpi64(v0, v2);
  v0 = t;
  t = MinEpi64(v1, v3);
  v3 = MaxEpi64(v1, v3);
  v1 = t;
  t = MinEpi64(v1, v2);
  v2 = MaxEpi64(v1, v2);
  v1 = t;

  __m256i t0 = _mm256_unpacklo_epi64(v0, v1);
  __m256i t1 = _mm256_unpackhi_epi64(v0, v1);
  __m256i t2 = _mm256_unpacklo_epi64(v2, v3);
  __m256i t3 = _mm256_unpackhi_epi64(v2, v3);
  __m256i r0 = _mm256_permute2x128_si256(t0, t2, 0x20);
  __m256i r1 = _mm256_permute2x128_si256(t1, t3, 0x20);
  __m256i r2 = _mm256_permute2x128_si256(t0, t2, 0x31);
  __m256i r3 = _mm256_permute2x128_si256(t1, t3, 0x31);

  __m256i s0;
  __m256i s1;
  __m256i s2;
  __m256i s3;
  Merge8(r0, r1, &s0, &s1);
  Merge8(r2, r3, &s2, &s3);
  MergeTwo8(s0, s1, s2, s3, o0, o1, o2, o3);
}

inline void Sort16(Key* p) {
  __m256i v0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  __m256i v1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 4));
  __m256i v2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 8));
  __m256i v3 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 12));
  Sort16Regs(&v0, &v1, &v2, &v3);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v0);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p + 4), v1);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p + 8), v2);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p + 12), v3);
}

// Sorts a bitonic 16-sequence spread over four vectors.
inline void BitonicMerge16(__m256i* x0, __m256i* x1, __m256i* x2,
                           __m256i* x3) {
  const __m256i mn0 = MinEpi64(*x0, *x2);
  const __m256i mx0 = MaxEpi64(*x0, *x2);
  const __m256i mn1 = MinEpi64(*x1, *x3);
  const __m256i mx1 = MaxEpi64(*x1, *x3);
  *x0 = mn0;
  *x1 = mn1;
  *x2 = mx0;
  *x3 = mx1;
  BitonicMerge8(x0, x1);
  BitonicMerge8(x2, x3);
}

// Sorts 32 keys entirely in registers: two Sort16Regs halves joined by a
// 16-vs-16 bitonic merge. Widening the in-register base block to 32 saves
// one full load/store merge pass in SortKeysBlockAvx2.
inline void Sort32(Key* p) {
  __m256i a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  __m256i a1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 4));
  __m256i a2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 8));
  __m256i a3 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 12));
  __m256i b0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 16));
  __m256i b1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 20));
  __m256i b2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 24));
  __m256i b3 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 28));
  Sort16Regs(&a0, &a1, &a2, &a3);
  Sort16Regs(&b0, &b1, &b2, &b3);
  const __m256i rb0 = Reverse4(b3);
  const __m256i rb1 = Reverse4(b2);
  const __m256i rb2 = Reverse4(b1);
  const __m256i rb3 = Reverse4(b0);
  __m256i lo0 = MinEpi64(a0, rb0);
  __m256i lo1 = MinEpi64(a1, rb1);
  __m256i lo2 = MinEpi64(a2, rb2);
  __m256i lo3 = MinEpi64(a3, rb3);
  __m256i hi0 = MaxEpi64(a0, rb0);
  __m256i hi1 = MaxEpi64(a1, rb1);
  __m256i hi2 = MaxEpi64(a2, rb2);
  __m256i hi3 = MaxEpi64(a3, rb3);
  BitonicMerge16(&lo0, &lo1, &lo2, &lo3);
  BitonicMerge16(&hi0, &hi1, &hi2, &hi3);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), lo0);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p + 4), lo1);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p + 8), lo2);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p + 12), lo3);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p + 16), hi0);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p + 20), hi1);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p + 24), hi2);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p + 28), hi3);
}

void ScalarMergeInto(const Key* a, size_t na, const Key* b, size_t nb,
                     Key* out) {
  std::merge(a, a + na, b, b + nb, out);
}

// Streaming merge of two sorted runs. Keeps a working 8-sequence in two
// vectors: each round emits its low half and refills from whichever run
// has the smaller next head, which guarantees every emitted key is <= all
// keys still unloaded. When the preferred run cannot supply a full vector,
// the pending high half spills to a stack buffer and a scalar three-way
// merge finishes the tails.
void MergeIntoAvx2(const Key* a, size_t na, const Key* b, size_t nb,
                   Key* out) {
  if (na < 4 || nb < 4) {
    ScalarMergeInto(a, na, b, nb, out);
    return;
  }
  __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a));
  __m256i w = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
  size_t ai = 4;
  size_t bi = 4;
  size_t oi = 0;
  for (;;) {
    __m256i lo;
    __m256i hi;
    Merge8(v, w, &lo, &hi);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + oi), lo);
    oi += 4;
    w = hi;
    if (ai + 4 <= na && bi + 4 <= nb) {
      // Hot path: both runs can supply a full vector. The head compare is
      // data-dependent and would mispredict half the time on random keys,
      // so the refill source is selected with conditional moves instead.
      const size_t ta = a[ai] <= b[bi] ? 1 : 0;
      const Key* p = ta != 0 ? a + ai : b + bi;
      v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
      ai += 4 * ta;
      bi += 4 * (1 - ta);
    } else {
      const bool take_a = bi >= nb || (ai < na && a[ai] <= b[bi]);
      if (take_a) {
        if (ai + 4 > na) break;
        v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + ai));
        ai += 4;
      } else {
        if (bi + 4 > nb) break;
        v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + bi));
        bi += 4;
      }
    }
  }
  Key tmp[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(tmp), w);
  size_t ti = 0;
  while (ti < 4 || ai < na || bi < nb) {
    const Key ta = ai < na ? a[ai] : 0;
    const Key tb = bi < nb ? b[bi] : 0;
    const Key tt = ti < 4 ? tmp[ti] : 0;
    const bool has_a = ai < na;
    const bool has_b = bi < nb;
    const bool has_t = ti < 4;
    if (has_t && (!has_a || tt <= ta) && (!has_b || tt <= tb)) {
      out[oi++] = tt;
      ++ti;
    } else if (has_a && (!has_b || ta <= tb)) {
      out[oi++] = ta;
      ++ai;
    } else {
      out[oi++] = tb;
      ++bi;
    }
  }
}

}  // namespace

bool Avx2Compiled() { return true; }

void SortKeysBlockAvx2(Key* keys, size_t n) {
  if (n < 32) {
    if (n == 16) {
      Sort16(keys);
    } else {
      std::sort(keys, keys + n);
    }
    return;
  }
  const size_t full = n & ~static_cast<size_t>(31);
  for (size_t i = 0; i < full; i += 32) Sort32(keys + i);
  if (full < n) std::sort(keys + full, keys + n);

  std::vector<Key> scratch(n);
  Key* src = keys;
  Key* dst = scratch.data();
  for (size_t width = 32; width < n; width *= 2) {
    for (size_t i = 0; i < n; i += 2 * width) {
      const size_t mid = std::min(i + width, n);
      const size_t end = std::min(i + 2 * width, n);
      if (mid < end) {
        MergeIntoAvx2(src + i, mid - i, src + mid, end - mid, dst + i);
      } else {
        std::memcpy(dst + i, src + i, (end - i) * sizeof(Key));
      }
    }
    std::swap(src, dst);
  }
  if (src != keys) std::memcpy(keys, src, n * sizeof(Key));
}

void PartitionBySplittersAvx2(const Key* keys, size_t n, const Key* splitters,
                              size_t num_splitters, uint32_t* bucket) {
  const auto s_count = static_cast<int64_t>(num_splitters);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i k =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    __m256i cnt = _mm256_setzero_si256();
    for (size_t s = 0; s < num_splitters; ++s) {
      // cmpgt lanes are -1 where splitter > key; subtracting accumulates
      // the count of splitters strictly greater than each key.
      cnt = _mm256_sub_epi64(
          cnt, _mm256_cmpgt_epi64(_mm256_set1_epi64x(splitters[s]), k));
    }
    alignas(32) int64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), cnt);
    for (size_t l = 0; l < 4; ++l) {
      // upper_bound index = total splitters minus those greater than key.
      bucket[i + l] = static_cast<uint32_t>(s_count - lanes[l]);
    }
  }
  for (; i < n; ++i) {
    bucket[i] = static_cast<uint32_t>(
        std::upper_bound(splitters, splitters + num_splitters, keys[i]) -
        splitters);
  }
}

void EncodeKeysBatchAvx2(const Key* keys, size_t n, uint8_t* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // x86 is little-endian, so register layout equals the disk format.
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i * kRecordBytes),
                        v);
  }
  if (i < n) std::memcpy(out + i * kRecordBytes, keys + i, (n - i) * kRecordBytes);
}

void DecodeKeysBatchAvx2(const uint8_t* in, size_t n, Key* keys) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(in + i * kRecordBytes));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(keys + i), v);
  }
  if (i < n) std::memcpy(keys + i, in + i * kRecordBytes, (n - i) * kRecordBytes);
}

size_t MinIndexNAvx2(const Key* keys, size_t n) {
  if (n < 4) return MinIndexNScalar(keys, n);
  if (n <= 8) {
    // The merge fast path's shape: everything stays in registers. Two
    // (possibly overlapping) loads cover keys[0..n); the min is reduced
    // and splatted in-register, and one combined equality bitmask yields
    // the first — lowest-index — occurrence.
    const __m256i v0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys));
    const __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + n - 4));
    __m256i m = MinEpi64(v0, v1);
    m = MinEpi64(m, _mm256_permute4x64_epi64(m, _MM_SHUFFLE(1, 0, 3, 2)));
    m = MinEpi64(m, _mm256_permute4x64_epi64(m, _MM_SHUFFLE(2, 3, 0, 1)));
    const auto mask0 = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(v0, m))));
    const auto mask1 = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(v1, m))));
    // v1's lanes sit at indices n-4..n-1; overlapped bits just OR twice.
    const unsigned mask = mask0 | (mask1 << (n - 4));
    return static_cast<size_t>(__builtin_ctz(mask));
  }
  __m256i vmin = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys));
  size_t i = 4;
  for (; i + 4 <= n; i += 4) {
    vmin = MinEpi64(
        vmin, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i)));
  }
  alignas(32) Key lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), vmin);
  Key m = lanes[0];
  for (size_t l = 1; l < 4; ++l) m = std::min(m, lanes[l]);
  for (; i < n; ++i) m = std::min(m, keys[i]);

  const __m256i vm = _mm256_set1_epi64x(m);
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256i eq = _mm256_cmpeq_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + j)), vm);
    const int mask = _mm256_movemask_pd(_mm256_castsi256_pd(eq));
    if (mask != 0) {
      return j + static_cast<size_t>(__builtin_ctz(static_cast<unsigned>(mask)));
    }
  }
  for (; j < n; ++j) {
    if (keys[j] == m) return j;
  }
  return n - 1;  // unreachable: m is an element of keys[0..n)
}

}  // namespace internal
}  // namespace simd
}  // namespace twrs

#else  // !defined(__AVX2__)

namespace twrs {
namespace simd {
namespace internal {

// Scalar-only build (non-x86 target or a compiler without -mavx2): the
// vector twins forward to their scalar siblings so callers never need to
// know, and CpuSupportsAvx2() reports false via Avx2Compiled().

bool Avx2Compiled() { return false; }

void SortKeysBlockAvx2(Key* keys, size_t n) { SortKeysBlockScalar(keys, n); }

void PartitionBySplittersAvx2(const Key* keys, size_t n, const Key* splitters,
                              size_t num_splitters, uint32_t* bucket) {
  PartitionBySplittersScalar(keys, n, splitters, num_splitters, bucket);
}

void EncodeKeysBatchAvx2(const Key* keys, size_t n, uint8_t* out) {
  EncodeKeysBatchScalar(keys, n, out);
}

void DecodeKeysBatchAvx2(const uint8_t* in, size_t n, Key* keys) {
  DecodeKeysBatchScalar(in, n, keys);
}

size_t MinIndexNAvx2(const Key* keys, size_t n) {
  return MinIndexNScalar(keys, n);
}

}  // namespace internal
}  // namespace simd
}  // namespace twrs

#endif  // defined(__AVX2__)
