#ifndef TWRS_SIMD_DISPATCH_H_
#define TWRS_SIMD_DISPATCH_H_

#include <cstdint>

namespace twrs {

class MetricsRegistry;

namespace simd {

/// Instruction-set tier a kernel call actually executes on. The layer has
/// exactly two contracts per kernel — a portable scalar implementation and
/// a vectorized twin pinned byte-identical to it — so the level is a
/// two-way switch rather than a full ISA lattice. Extending to AVX-512 or
/// NEON means adding a level here plus one more twin per kernel (see the
/// "SIMD kernels" section of README.md).
enum class DispatchLevel {
  kScalar = 0,
  kAvx2 = 1,
};

inline constexpr int kNumDispatchLevels = 2;

/// "scalar" or "avx2" (stable names, used in metrics and bench JSON).
const char* DispatchLevelName(DispatchLevel level);

/// True when the running CPU reports AVX2 *and* this binary carries the
/// AVX2 kernel bodies (a non-x86 or AVX2-incapable compiler builds the
/// scalar-only binary). Probed once, then cached.
bool CpuSupportsAvx2();

/// The level the dispatched kernel entry points currently select:
/// kAvx2 when the CPU supports it and scalar is not forced, else kScalar.
///
/// Scalar can be forced two ways: the TWRS_FORCE_SCALAR environment
/// variable (any value except "0" or empty, read once at first use) sets
/// the initial state, and ForceScalar() overrides it programmatically at
/// any time. A cheap relaxed atomic read, safe to call per batch.
DispatchLevel ActiveDispatchLevel();

/// Programmatic dispatch override: ForceScalar(true) pins every kernel to
/// the scalar path, ForceScalar(false) re-enables vector dispatch even if
/// TWRS_FORCE_SCALAR is set. The last call wins. Thread-safe.
void ForceScalar(bool force);

/// Drops any ForceScalar() override, reverting to the TWRS_FORCE_SCALAR
/// environment default. Used by tests to restore the ambient state.
void ClearForceScalarOverride();

/// The kernels exposed by this layer, for dispatch accounting.
enum class Kernel {
  kSortKeys = 0,
  kPartition = 1,
  kEncode = 2,
  kDecode = 3,
  kMinIndex = 4,
};

inline constexpr int kNumKernels = 5;

/// "sort_block", "partition", "encode", "decode", "min_index".
const char* KernelName(Kernel kernel);

/// Process-wide count of calls dispatched to `level` for `kernel` since
/// startup. Hot loops that resolve dispatch once (e.g. the small-fan-in
/// merge) batch their counts, so this counts kernel *invocations*, which
/// for batch kernels is calls and for MinIndexN is per-record selections.
uint64_t KernelCalls(Kernel kernel, DispatchLevel level);

/// Adds `n` to the (kernel, level) call counter. Dispatched entry points
/// call this with n=1; batch-resolving call sites add their totals once.
void AddKernelCalls(Kernel kernel, DispatchLevel level, uint64_t n);

/// Mirrors the process-wide kernel call counters into `metrics` as
/// monotonic counters named `simd.<kernel>.<level>_calls`, incrementing
/// each by what that registry has not yet seen. Call-site layers (sort
/// phases, SortService stats) invoke this when snapshotting, so per-job
/// registries show which dispatch path their sorts actually ran.
void PublishKernelCounters(MetricsRegistry* metrics);

}  // namespace simd
}  // namespace twrs

#endif  // TWRS_SIMD_DISPATCH_H_
