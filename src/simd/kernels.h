#ifndef TWRS_SIMD_KERNELS_H_
#define TWRS_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "core/record.h"
#include "simd/dispatch.h"

namespace twrs {
namespace simd {

/// Sorts keys[0..n) ascending. The vector path sorts 16-key blocks with an
/// in-register bitonic network and combines them with a streaming bitonic
/// merge; the scalar path is std::sort. Both produce the unique ascending
/// permutation, so the outputs are byte-identical by construction. Used
/// for the in-memory sort of LSS blocks, batched-RS miniruns and
/// distribution-sort leaves.
void SortKeysBlock(Key* keys, size_t n);

/// Classifies each key against the ascending splitter set: bucket[i] =
/// number of splitters <= keys[i] (std::upper_bound semantics, matching
/// the range-shard convention that duplicates of a splitter key land in
/// the right-hand shard). The vector path compares each 4-key vector
/// against every splitter branchlessly and is linear in num_splitters; it
/// serves splitter sets up to 64 wide (plenty for any shard plan), larger
/// sets fall back to per-key binary search internally.
void PartitionBySplitters(const Key* keys, size_t n, const Key* splitters,
                          size_t num_splitters, uint32_t* bucket);

/// Serializes keys[0..n) little-endian into out[0..n*kRecordBytes) — the
/// bulk form of EncodeKey, used by the block-buffered record writers.
void EncodeKeysBatch(const Key* keys, size_t n, uint8_t* out);

/// Deserializes n little-endian records from `in` into keys[0..n) — the
/// bulk form of DecodeKey, used by the block-buffered record readers.
void DecodeKeysBatch(const uint8_t* in, size_t n, Key* keys);

/// Index of the minimum of keys[0..n); ties resolve to the lowest index
/// (the loser tree's stable tie-break). Requires n >= 1. The fast
/// selection primitive of small-fan-in merges, where a tournament tree's
/// pointer chasing costs more than a branchless vector scan.
size_t MinIndexN(const Key* keys, size_t n);

/// Fixed-level twins behind the dispatched entry points above. Tests pin
/// byte-identity across levels through these, and bench_simd times each
/// level on identical inputs. The Avx2 entries must only be called when
/// CpuSupportsAvx2() is true; on scalar-only builds they forward to the
/// scalar twin. None of these touch the dispatch call counters.
namespace internal {

void SortKeysBlockScalar(Key* keys, size_t n);
void SortKeysBlockAvx2(Key* keys, size_t n);

void PartitionBySplittersScalar(const Key* keys, size_t n,
                                const Key* splitters, size_t num_splitters,
                                uint32_t* bucket);
void PartitionBySplittersAvx2(const Key* keys, size_t n, const Key* splitters,
                              size_t num_splitters, uint32_t* bucket);

void EncodeKeysBatchScalar(const Key* keys, size_t n, uint8_t* out);
void EncodeKeysBatchAvx2(const Key* keys, size_t n, uint8_t* out);

void DecodeKeysBatchScalar(const uint8_t* in, size_t n, Key* keys);
void DecodeKeysBatchAvx2(const uint8_t* in, size_t n, Key* keys);

size_t MinIndexNScalar(const Key* keys, size_t n);
size_t MinIndexNAvx2(const Key* keys, size_t n);

/// True when this binary was compiled with the AVX2 kernel bodies
/// (x86 toolchain with -mavx2 support); false on the scalar-only build.
bool Avx2Compiled();

}  // namespace internal

}  // namespace simd
}  // namespace twrs

#endif  // TWRS_SIMD_KERNELS_H_
