#ifndef TWRS_OBS_LATENCY_HISTOGRAM_H_
#define TWRS_OBS_LATENCY_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace twrs {

/// Lock-free, fixed-memory latency histogram in the HDR-histogram family:
/// values are bucketed logarithmically by octave (power of two) with
/// kSubBuckets linear sub-buckets per octave, so every recorded value lands
/// in a bucket whose width is at most value/kSubBuckets. Quantile queries
/// therefore carry a bounded relative error (kRelativeErrorBound); values
/// below kSubBuckets are represented exactly.
///
/// Recording is a single relaxed fetch_add on one of a fixed array of
/// atomic buckets — safe from any number of threads with no locks, cheap
/// enough for per-block I/O paths. Memory is constant (~15 KiB) regardless
/// of the number or range of samples.
///
/// Values are dimensionless uint64 ticks; the sort stack records wall time
/// in nanoseconds via RecordSeconds and converts back to seconds when
/// summarizing (see obs/metrics.h).
///
/// TakeSnapshot() reads the buckets with relaxed loads, so a snapshot taken
/// while recorders are active is a slightly stale but internally usable
/// view; once recording has quiesced it is exact.
class LatencyHistogram {
 public:
  /// log2 of the number of linear sub-buckets per octave.
  static constexpr size_t kSubBucketBits = 5;
  static constexpr size_t kSubBuckets = size_t{1} << kSubBucketBits;  // 32

  /// One linear block for values in [0, kSubBuckets), then one block of
  /// kSubBuckets sub-buckets per octave for bit widths kSubBucketBits+1
  /// through 64.
  static constexpr size_t kNumBuckets = (64 - kSubBucketBits + 1) * kSubBuckets;

  /// Worst-case relative error of a quantile reported from bucket
  /// midpoints: bucket width is value/kSubBuckets at most, and the
  /// midpoint is off by at most half a width.
  static constexpr double kRelativeErrorBound = 1.0 / kSubBuckets;

  static constexpr double kTicksPerSecond = 1e9;  // record in nanoseconds

  LatencyHistogram() = default;

  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Records one sample. Thread-safe, lock-free, relaxed ordering.
  void Record(uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    UpdateMin(value);
    UpdateMax(value);
  }

  /// Records a wall-time duration in seconds as nanosecond ticks.
  /// Negative durations clamp to zero.
  void RecordSeconds(double seconds) {
    Record(seconds <= 0 ? 0 : static_cast<uint64_t>(seconds * kTicksPerSecond));
  }

  /// A point-in-time copy of the bucket counts plus the summary scalars.
  /// Snapshots are plain values: mergeable, copyable, queryable with no
  /// further synchronization.
  struct Snapshot {
    uint64_t count = 0;  ///< Sum of bucket counts (self-consistent).
    uint64_t sum = 0;    ///< Sum of recorded values, in ticks.
    uint64_t min = 0;    ///< Smallest recorded value; 0 when empty.
    uint64_t max = 0;    ///< Largest recorded value; 0 when empty.
    std::vector<uint64_t> buckets;  ///< kNumBuckets counts.

    /// Folds `other` into this snapshot. Associative and commutative, so
    /// per-thread or per-shard histograms can be combined in any order.
    void Merge(const Snapshot& other);

    /// Nearest-rank quantile from bucket midpoints, q in [0, 1].
    /// Returns 0 for an empty snapshot. The result is within
    /// kRelativeErrorBound of the exact nearest-rank quantile of the
    /// recorded values.
    uint64_t ValueAtQuantile(double q) const;

    /// Arithmetic mean of the recorded values in ticks; exact (not
    /// bucketed) because the sum is tracked separately. 0 when empty.
    double Mean() const;
  };

  Snapshot TakeSnapshot() const;

  /// Index of the bucket `value` lands in. Exposed for tests.
  static size_t BucketIndex(uint64_t value) {
    if (value < kSubBuckets) return static_cast<size_t>(value);
    // Position of the most significant set bit; value >= 32 so msb >= 5.
    const int msb = 63 - __builtin_clzll(value);
    const size_t block = static_cast<size_t>(msb) - (kSubBucketBits - 1);
    // Shift so the value's top kSubBucketBits+1 bits land in
    // [kSubBuckets, 2*kSubBuckets); the low half indexes the sub-bucket.
    const size_t sub =
        static_cast<size_t>(value >>
                            (msb - static_cast<int>(kSubBucketBits))) -
        kSubBuckets;
    return block * kSubBuckets + sub;
  }

  /// Smallest value mapping to bucket `index`. Exposed for tests.
  static uint64_t BucketLower(size_t index) {
    const size_t block = index >> kSubBucketBits;
    const size_t sub = index & (kSubBuckets - 1);
    if (block == 0) return sub;
    return (kSubBuckets + sub) << (block - 1);
  }

  /// Width of bucket `index` (number of distinct values it covers).
  static uint64_t BucketWidth(size_t index) {
    const size_t block = index >> kSubBucketBits;
    return block == 0 ? 1 : uint64_t{1} << (block - 1);
  }

 private:
  void UpdateMin(uint64_t value) {
    uint64_t cur = min_.load(std::memory_order_relaxed);
    while (value < cur &&
           !min_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
    }
  }

  void UpdateMax(uint64_t value) {
    uint64_t cur = max_.load(std::memory_order_relaxed);
    while (value > cur &&
           !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
    }
  }

  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

}  // namespace twrs

#endif  // TWRS_OBS_LATENCY_HISTOGRAM_H_
