#include "obs/metrics.h"

#include <cinttypes>
#include <cstdio>

namespace twrs {

namespace {

double TicksToSeconds(uint64_t ticks) {
  return static_cast<double>(ticks) / LatencyHistogram::kTicksPerSecond;
}

void AppendJsonNumber(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out->append(buf);
}

}  // namespace

const HistogramSummary* MetricsSnapshot::FindHistogram(
    const std::string& name) const {
  for (const HistogramSummary& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

const CounterSummary* MetricsSnapshot::FindCounter(
    const std::string& name) const {
  for (const CounterSummary& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

HistogramSummary SummarizeHistogram(const std::string& name,
                                    const LatencyHistogram::Snapshot& snap) {
  HistogramSummary s;
  s.name = name;
  s.count = snap.count;
  s.mean_seconds = snap.Mean() / LatencyHistogram::kTicksPerSecond;
  s.min_seconds = TicksToSeconds(snap.min);
  s.max_seconds = TicksToSeconds(snap.max);
  s.p50_seconds = TicksToSeconds(snap.ValueAtQuantile(0.50));
  s.p90_seconds = TicksToSeconds(snap.ValueAtQuantile(0.90));
  s.p99_seconds = TicksToSeconds(snap.ValueAtQuantile(0.99));
  s.p999_seconds = TicksToSeconds(snap.ValueAtQuantile(0.999));
  return s;
}

LatencyHistogram* MetricsRegistry::Histogram(const std::string& name) {
  MutexLock lock(&mu_);
  std::unique_ptr<LatencyHistogram>& slot = histograms_[name];
  if (!slot) slot = std::make_unique<LatencyHistogram>();
  return slot.get();
}

MonotonicCounter* MetricsRegistry::Counter(const std::string& name) {
  MutexLock lock(&mu_);
  std::unique_ptr<MonotonicCounter>& slot = counters_[name];
  if (!slot) slot = std::make_unique<MonotonicCounter>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot out;
  MutexLock lock(&mu_);
  out.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.counters.push_back(CounterSummary{name, counter->value()});
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.histograms.push_back(SummarizeHistogram(name, histogram->TakeSnapshot()));
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  const MetricsSnapshot snap = Snapshot();
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const CounterSummary& c : snap.counters) {
    if (!first) out += ",";
    first = false;
    out += "\n    \"" + c.name + "\": ";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, c.value);
    out += buf;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const HistogramSummary& h : snap.histograms) {
    if (!first) out += ",";
    first = false;
    out += "\n    \"" + h.name + "\": {";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, h.count);
    out += std::string("\"count\": ") + buf;
    const std::pair<const char*, double> fields[] = {
        {"mean_seconds", h.mean_seconds}, {"min_seconds", h.min_seconds},
        {"max_seconds", h.max_seconds},   {"p50_seconds", h.p50_seconds},
        {"p90_seconds", h.p90_seconds},   {"p99_seconds", h.p99_seconds},
        {"p999_seconds", h.p999_seconds}};
    for (const auto& [key, value] : fields) {
      out += ", \"";
      out += key;
      out += "\": ";
      AppendJsonNumber(&out, value);
    }
    out += "}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

}  // namespace twrs
