#include "obs/latency_histogram.h"

#include <algorithm>
#include <cmath>

namespace twrs {

LatencyHistogram::Snapshot LatencyHistogram::TakeSnapshot() const {
  Snapshot snap;
  snap.buckets.resize(kNumBuckets);
  uint64_t count = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    const uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    snap.buckets[i] = c;
    count += c;
  }
  snap.count = count;
  snap.sum = sum_.load(std::memory_order_relaxed);
  if (count > 0) {
    const uint64_t min = min_.load(std::memory_order_relaxed);
    snap.min = min == UINT64_MAX ? 0 : min;
    snap.max = max_.load(std::memory_order_relaxed);
  }
  return snap;
}

void LatencyHistogram::Snapshot::Merge(const Snapshot& other) {
  if (other.count == 0) return;
  if (buckets.empty()) buckets.resize(kNumBuckets);
  for (size_t i = 0; i < kNumBuckets && i < other.buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
  if (count == 0) {
    min = other.min;
    max = other.max;
  } else {
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }
  count += other.count;
  sum += other.sum;
}

uint64_t LatencyHistogram::Snapshot::ValueAtQuantile(double q) const {
  if (count == 0) return 0;
  q = std::min(1.0, std::max(0.0, q));
  // Nearest-rank: the smallest value with at least ceil(q * count)
  // observations at or below it (rank 1 for q == 0).
  const uint64_t target =
      std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(q * count)));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (cumulative >= target) {
      return BucketLower(i) + BucketWidth(i) / 2;
    }
  }
  // Unreachable when buckets/count are consistent; fall back to max.
  return max;
}

double LatencyHistogram::Snapshot::Mean() const {
  if (count == 0) return 0.0;
  return static_cast<double>(sum) / static_cast<double>(count);
}

}  // namespace twrs
