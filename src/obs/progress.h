#ifndef TWRS_OBS_PROGRESS_H_
#define TWRS_OBS_PROGRESS_H_

#include <atomic>
#include <cstdint>

namespace twrs {

/// Coarse phase a sort job is currently in, for live status displays.
/// Ordered: a job only moves forward. In sharded mode the shards run
/// concurrently, so the reported phase is the furthest any shard has
/// reached (AdvancePhase is a monotonic max).
enum class SortProgressPhase : uint32_t {
  kPending = 0,
  kRunGeneration = 1,
  kMergePlanning = 2,
  kFinalMerge = 3,
  kComplete = 4,
};

inline const char* SortProgressPhaseName(SortProgressPhase phase) {
  switch (phase) {
    case SortProgressPhase::kPending:
      return "pending";
    case SortProgressPhase::kRunGeneration:
      return "run-gen";
    case SortProgressPhase::kMergePlanning:
      return "planning";
    case SortProgressPhase::kFinalMerge:
      return "merge";
    case SortProgressPhase::kComplete:
      return "complete";
  }
  return "unknown";
}

/// Plain-value snapshot of a job's live progress, safe to copy and print.
struct JobProgress {
  SortProgressPhase phase = SortProgressPhase::kPending;
  uint64_t records_ingested = 0;  ///< Records consumed by run generation.
  uint64_t records_merged = 0;    ///< Records emitted by merge passes.
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t total_records = 0;  ///< Expected input records; 0 if unknown.

  /// Expected output records; 0 if unknown. Equals total_records for a
  /// full sort but only K for a top-K job (spec.sort.limit), so status
  /// displays can report merge progress against the records the job will
  /// actually write rather than the input size.
  uint64_t total_output_records = 0;
};

/// Live progress counters for one sort job, updated from the hot paths
/// with relaxed atomics and read at any time by status pollers. Writers
/// batch their increments (see ProgressSource / MergeRunCursors), so a
/// mid-flight read can trail the truth by a bounded amount; once the job
/// reaches a terminal state the counters are exact.
class ProgressCounters {
 public:
  ProgressCounters() = default;

  ProgressCounters(const ProgressCounters&) = delete;
  ProgressCounters& operator=(const ProgressCounters&) = delete;

  void AddRecordsIngested(uint64_t n) {
    ingested_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddRecordsMerged(uint64_t n) {
    merged_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Raw byte counters, exposed so CountingEnv can mirror I/O into them
  /// without the io layer depending on this header's types.
  std::atomic<uint64_t>* bytes_read_counter() { return &read_; }
  std::atomic<uint64_t>* bytes_written_counter() { return &written_; }

  void set_total_records(uint64_t n) {
    total_.store(n, std::memory_order_relaxed);
  }
  void set_total_output_records(uint64_t n) {
    out_total_.store(n, std::memory_order_relaxed);
  }

  /// Monotonic-max phase advance: concurrent shards may report different
  /// phases; the furthest one wins and the phase never moves backwards.
  void AdvancePhase(SortProgressPhase phase) {
    const uint32_t target = static_cast<uint32_t>(phase);
    uint32_t cur = phase_.load(std::memory_order_relaxed);
    while (cur < target && !phase_.compare_exchange_weak(
                               cur, target, std::memory_order_relaxed)) {
    }
  }

  JobProgress Snapshot() const {
    JobProgress p;
    p.phase =
        static_cast<SortProgressPhase>(phase_.load(std::memory_order_relaxed));
    p.records_ingested = ingested_.load(std::memory_order_relaxed);
    p.records_merged = merged_.load(std::memory_order_relaxed);
    p.bytes_read = read_.load(std::memory_order_relaxed);
    p.bytes_written = written_.load(std::memory_order_relaxed);
    p.total_records = total_.load(std::memory_order_relaxed);
    p.total_output_records = out_total_.load(std::memory_order_relaxed);
    return p;
  }

 private:
  std::atomic<uint64_t> ingested_{0};
  std::atomic<uint64_t> merged_{0};
  std::atomic<uint64_t> read_{0};
  std::atomic<uint64_t> written_{0};
  std::atomic<uint64_t> total_{0};
  std::atomic<uint64_t> out_total_{0};
  std::atomic<uint32_t> phase_{0};
};

}  // namespace twrs

#endif  // TWRS_OBS_PROGRESS_H_
