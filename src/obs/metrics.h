#ifndef TWRS_OBS_METRICS_H_
#define TWRS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/latency_histogram.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace twrs {

/// Monotonically increasing event counter. Thread-safe, lock-free.
class MonotonicCounter {
 public:
  MonotonicCounter() = default;

  MonotonicCounter(const MonotonicCounter&) = delete;
  MonotonicCounter& operator=(const MonotonicCounter&) = delete;

  void Increment(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Percentile summary of one named histogram. All durations are reported
/// in seconds (histograms record nanosecond ticks internally).
struct HistogramSummary {
  std::string name;
  uint64_t count = 0;
  double mean_seconds = 0;
  double min_seconds = 0;
  double max_seconds = 0;
  double p50_seconds = 0;
  double p90_seconds = 0;
  double p99_seconds = 0;
  double p999_seconds = 0;
};

struct CounterSummary {
  std::string name;
  uint64_t value = 0;
};

/// Point-in-time view of every metric in a registry, name-ordered.
struct MetricsSnapshot {
  std::vector<CounterSummary> counters;
  std::vector<HistogramSummary> histograms;

  /// Summary for `name`, or nullptr if absent.
  const HistogramSummary* FindHistogram(const std::string& name) const;
  const CounterSummary* FindCounter(const std::string& name) const;
};

/// Builds a HistogramSummary (seconds) from a histogram snapshot.
HistogramSummary SummarizeHistogram(const std::string& name,
                                    const LatencyHistogram::Snapshot& snap);

/// Named registry of latency histograms and monotonic counters.
///
/// Lookup (Histogram/Counter) takes a mutex and creates the metric on
/// first use; the returned pointer is stable for the registry's lifetime,
/// so hot paths resolve their metric once at wiring time and then record
/// lock-free. Snapshot/ToJson can run concurrently with recording.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the histogram registered under `name`, creating it on first
  /// use. The pointer stays valid as long as the registry does.
  LatencyHistogram* Histogram(const std::string& name);

  /// Returns the counter registered under `name`, creating it on first
  /// use. The pointer stays valid as long as the registry does.
  MonotonicCounter* Counter(const std::string& name);

  MetricsSnapshot Snapshot() const;

  /// Serializes the full registry as a JSON object:
  ///   {"counters": {name: value, ...},
  ///    "histograms": {name: {count, mean_seconds, p50_seconds, ...}, ...}}
  std::string ToJson() const;

 private:
  mutable Mutex mu_;
  // std::map keeps snapshots and JSON name-ordered and never invalidates
  // the unique_ptr payloads handed out by Histogram()/Counter().
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_
      TWRS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<MonotonicCounter>> counters_
      TWRS_GUARDED_BY(mu_);
};

}  // namespace twrs

#endif  // TWRS_OBS_METRICS_H_
