#ifndef TWRS_MERGE_LOSER_TREE_H_
#define TWRS_MERGE_LOSER_TREE_H_

#include <cassert>
#include <cstddef>
#include <vector>

#include "core/record.h"

namespace twrs {

/// Tournament (loser) tree over k input ways, the classic k-way merge
/// selector (§2.1.2 implemented with log k comparisons per record instead of
/// the naive k-1). Internal nodes remember the loser of each match; the
/// overall winner is the way with the smallest current key. Exhausted ways
/// rank after every live key.
class LoserTree {
 public:
  /// Creates a tree over `k` ways; all ways start exhausted.
  explicit LoserTree(size_t k);

  /// Sets the initial key of way `w`. Call for each live way, then Build().
  void SetInitial(size_t w, Key key);

  /// Runs the initial tournament.
  void Build();

  /// Way holding the smallest key. Requires !Exhausted().
  size_t WinnerIndex() const {
    assert(!Exhausted());
    return winner_;
  }

  /// Key of the winning way.
  Key WinnerKey() const {
    assert(!Exhausted());
    return keys_[winner_];
  }

  /// Replaces the winner's key with its next key and replays its path.
  void ReplaceWinner(Key key);

  /// Marks the winning way as exhausted and replays its path.
  void RetireWinner();

  /// True when every way is exhausted.
  bool Exhausted() const { return live_ == 0; }

  size_t ways() const { return k_; }

 private:
  // True when way `a` beats (sorts before) way `b`.
  bool Beats(size_t a, size_t b) const {
    if (!alive_[a]) return false;
    if (!alive_[b]) return true;
    if (keys_[a] != keys_[b]) return keys_[a] < keys_[b];
    return a < b;  // deterministic tie-break keeps the merge stable
  }

  void Replay(size_t way);

  size_t k_;
  size_t live_ = 0;
  std::vector<Key> keys_;
  std::vector<bool> alive_;
  std::vector<size_t> losers_;  // internal nodes [1, k): loser way indices
  size_t winner_ = 0;
  bool built_ = false;
};

inline LoserTree::LoserTree(size_t k)
    : k_(k), keys_(k, 0), alive_(k, false), losers_(k, SIZE_MAX) {}

inline void LoserTree::SetInitial(size_t w, Key key) {
  assert(!built_);
  assert(!alive_[w]);
  keys_[w] = key;
  alive_[w] = true;
  ++live_;
}

inline void LoserTree::Build() {
  built_ = true;
  if (k_ == 0) return;
  if (k_ == 1) {
    winner_ = 0;
    return;
  }
  // Play the tournament bottom-up: winners_of[node] via a scratch array.
  std::vector<size_t> winner_of(2 * k_);
  for (size_t w = 0; w < k_; ++w) winner_of[k_ + w] = w;
  for (size_t node = k_ - 1; node >= 1; --node) {
    const size_t a = winner_of[2 * node];
    const size_t b = winner_of[2 * node + 1];
    if (Beats(a, b)) {
      winner_of[node] = a;
      losers_[node] = b;
    } else {
      winner_of[node] = b;
      losers_[node] = a;
    }
  }
  winner_ = winner_of[1];
}

inline void LoserTree::Replay(size_t way) {
  if (k_ == 1) {
    winner_ = 0;
    return;
  }
  size_t node = (k_ + way) / 2;
  size_t current = way;
  while (node >= 1) {
    const size_t opponent = losers_[node];
    if (opponent != SIZE_MAX && Beats(opponent, current)) {
      losers_[node] = current;
      current = opponent;
    }
    node /= 2;
  }
  winner_ = current;
}

inline void LoserTree::ReplaceWinner(Key key) {
  assert(built_ && !Exhausted());
  keys_[winner_] = key;
  Replay(winner_);
}

inline void LoserTree::RetireWinner() {
  assert(built_ && !Exhausted());
  alive_[winner_] = false;
  --live_;
  Replay(winner_);
}

}  // namespace twrs

#endif  // TWRS_MERGE_LOSER_TREE_H_
