#ifndef TWRS_MERGE_PARTITIONED_MERGE_H_
#define TWRS_MERGE_PARTITIONED_MERGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/record.h"
#include "core/run_sink.h"
#include "exec/thread_pool.h"
#include "io/env.h"
#include "merge/kway_merge.h"
#include "util/status.h"

namespace twrs {

/// Where a final merge puts its bytes. In append mode (the default) the
/// merge creates `output_path`. In positioned mode it writes into
/// [offset, offset + `length`) of the *existing* file at `output_path`
/// via RandomRWFile::WriteAt without truncating — the sharded sorter's
/// direct-write final pass, where every shard's merge owns one range of
/// the shared output.
struct MergeOutputRange {
  bool positioned = false;
  uint64_t offset = 0;
  uint64_t length = 0;  ///< exact bytes the merge must produce
};

/// What a limited (top-K) final merge avoided: whole runs never opened
/// because pruning proved they cannot reach the kept window, and records
/// excluded from the merge by slicing or partition pruning — records that
/// were never read, which is where the I/O savings come from.
struct MergePruneStats {
  uint64_t runs_pruned = 0;
  uint64_t records_pruned = 0;
};

/// Configuration of one final merge step (the last pass of MergeRuns).
struct FinalMergeSpec {
  MergeOutputRange range;

  /// Target number of concurrent partial merges; values < 2 (or a null
  /// pool, or degenerate splitters) fall back to one serial merge.
  size_t partitions = 1;

  /// Splitter sampling knobs. Sampling probes forward segments with
  /// positioned reads, so it costs seeks, not a data pass.
  size_t sample_size = 256;
  uint64_t sample_seed = 1;

  /// Pool the partial merges (and their sinks' background flushes) run on.
  ThreadPool* pool = nullptr;

  /// Top-K: when non-zero only `limit` records are written — the first of
  /// the merged stream (take_last = false) or the last (take_last = true).
  /// The serial path prunes whole runs whose sampled key bounds put them
  /// past the K-th record and clamps the rest to the K-record prefix or
  /// suffix that can still matter; the partitioned path drops partitions
  /// wholly outside the kept window and clamps the straddling one. In
  /// positioned mode range.length must equal min(limit, total) records.
  uint64_t limit = 0;
  bool take_last = false;

  /// Receives what a limited merge pruned, when non-null.
  MergePruneStats* prune = nullptr;
};

/// Computes, for each splitter, how many records of `run` hold keys
/// strictly below it (`below->at(s)` for splitters[s], which must be
/// ascending and distinct). Forward segments are binary-searched with
/// block-granular positioned reads; reverse segments are scanned in one
/// ascending pass that stops early at the largest splitter. These counts
/// are what make the partitioned merge's output offsets exact.
Status PartitionPointsForRun(Env* env, const RunInfo& run,
                             const std::vector<Key>& splitters,
                             size_t block_bytes,
                             std::vector<uint64_t>* below);

/// Samples splitter candidates from `runs`: every run's key bounds plus
/// positioned probes of its forward segments, pooled through a
/// ReservoirSampler. Deterministic for a fixed seed.
Status SampleRunKeys(Env* env, const std::vector<RunInfo>& runs,
                     size_t sample_size, uint64_t seed,
                     std::vector<Key>* sample);

/// The final merge step of MergeRuns: merges `runs` into the output
/// described by `spec`, either as one merge or as `spec.partitions`
/// concurrent partial loser-tree merges over key-domain slices, each
/// writing its disjoint byte range through a RangeMergeSink. Output bytes
/// are identical to the serial pass in every mode (records are bare keys,
/// so the fully sorted stream is unique). On failure an output file this
/// call created is removed — a torn positioned file has holes, unlike the
/// append path's clean prefix — while a shared positioned output is left
/// to its creator's cleanup.
Status FinalMergeToOutput(Env* env, const std::vector<RunInfo>& runs,
                          const MergeIoOptions& io, const FinalMergeSpec& spec,
                          const std::string& output_path, RunInfo* out);

}  // namespace twrs

#endif  // TWRS_MERGE_PARTITIONED_MERGE_H_
