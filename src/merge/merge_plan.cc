#include "merge/merge_plan.h"

#include <deque>

#include "merge/kway_merge.h"

namespace twrs {

Status MergeRuns(Env* env, std::vector<RunInfo> runs,
                 const MergeOptions& options, const std::string& output_path,
                 MergeStats* stats) {
  if (options.fan_in < 2) {
    return Status::InvalidArgument("fan_in must be at least 2");
  }
  MergeStats local;
  std::deque<RunInfo> queue(runs.begin(), runs.end());
  uint64_t temp_counter = 0;

  if (queue.empty()) {
    // Sorting an empty input produces an empty output file.
    RecordWriter writer(env, output_path, options.block_bytes);
    TWRS_RETURN_IF_ERROR(writer.status());
    TWRS_RETURN_IF_ERROR(writer.Finish());
    if (stats != nullptr) *stats = local;
    return Status::OK();
  }

  // Intermediate passes: shrink the queue until one merge reaches the
  // final output. Note a single run still goes through one "merge" so the
  // output is always a plain forward record file.
  while (queue.size() > options.fan_in) {
    std::vector<RunInfo> batch;
    const size_t take = options.fan_in;
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue.front()));
      queue.pop_front();
    }
    const std::string temp_path = options.temp_dir + "/" +
                                  options.temp_prefix + "_tmp" +
                                  std::to_string(temp_counter++);
    RunInfo merged;
    TWRS_RETURN_IF_ERROR(
        KWayMergeToFile(env, batch, options.block_bytes, temp_path, &merged));
    ++local.merge_steps;
    ++local.intermediate_runs;
    local.records_written += merged.length;
    if (options.remove_inputs) {
      for (const RunInfo& run : batch) {
        TWRS_RETURN_IF_ERROR(RemoveRunFiles(env, run));
      }
    }
    queue.push_back(std::move(merged));
  }

  std::vector<RunInfo> final_batch(queue.begin(), queue.end());
  queue.clear();
  RunInfo final_run;
  TWRS_RETURN_IF_ERROR(KWayMergeToFile(env, final_batch, options.block_bytes,
                                       output_path, &final_run));
  ++local.merge_steps;
  local.records_written += final_run.length;
  if (options.remove_inputs) {
    for (const RunInfo& run : final_batch) {
      TWRS_RETURN_IF_ERROR(RemoveRunFiles(env, run));
    }
  }
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

}  // namespace twrs
