#include "merge/merge_plan.h"

#include <algorithm>
#include <deque>
#include <utility>
#include <vector>

#include "merge/kway_merge.h"
#include "merge/partitioned_merge.h"

namespace twrs {

namespace {

/// One fan-in-way intermediate merge with its inputs and output slot.
struct LeafMerge {
  std::vector<RunInfo> inputs;
  std::string output_path;
  RunInfo merged;
  TaskHandle handle;
};

}  // namespace

Status MergeRuns(Env* env, std::vector<RunInfo> runs,
                 const MergeOptions& options, const std::string& output_path,
                 MergeStats* stats) {
  if (options.fan_in < 2) {
    return Status::InvalidArgument("fan_in must be at least 2");
  }
  MergeStats local;
  std::deque<RunInfo> queue(runs.begin(), runs.end());
  uint64_t temp_counter = 0;

  MergeIoOptions io;
  io.block_bytes = options.block_bytes;
  io.prefetch_blocks = options.prefetch_blocks;
  io.pool = options.pool;
  io.cancel = options.cancel;
  io.progress = options.progress;
  io.flush_histogram = options.flush_histogram;

  if (queue.empty()) {
    if (options.output_range.positioned) {
      // The shared output already exists; an empty merge owns an empty
      // range and must not touch (let alone truncate) the file.
      if (options.output_range.length != 0) {
        return Status::Corruption(
            "empty merge assigned a non-empty output range");
      }
      if (stats != nullptr) *stats = local;
      return Status::OK();
    }
    // Sorting an empty input produces an empty output file.
    RecordWriter writer(env, output_path, options.block_bytes);
    TWRS_RETURN_IF_ERROR(writer.status());
    writer.set_sync_on_finish(options.sync_output);
    TWRS_RETURN_IF_ERROR(writer.Finish());
    if (stats != nullptr) *stats = local;
    return Status::OK();
  }

  const bool parallel = options.pool != nullptr && options.parallel_leaf_merges;

  // Intermediate passes: shrink the queue until one merge reaches the
  // final output. Note a single run still goes through one "merge" so the
  // output is always a plain forward record file.
  //
  // Both modes consume the queue in FIFO order and append merge outputs in
  // batch order, so the sequence of batch compositions — and with it the
  // stats and the bytes written — is identical. The parallel mode merely
  // dispatches every batch takeable at one level onto the pool at once
  // instead of merging it inline.
  while (queue.size() > options.fan_in) {
    if (IsCancelled(options.cancel)) {
      return Status::Cancelled("merge cancelled");
    }
    std::vector<LeafMerge> level;
    do {
      LeafMerge leaf;
      leaf.inputs.reserve(options.fan_in);
      for (size_t i = 0; i < options.fan_in; ++i) {
        leaf.inputs.push_back(std::move(queue.front()));
        queue.pop_front();
      }
      leaf.output_path = options.temp_dir + "/" + options.temp_prefix +
                         "_tmp" + std::to_string(temp_counter++);
      level.push_back(std::move(leaf));
    } while (parallel && queue.size() > options.fan_in);

    for (LeafMerge& leaf : level) {
      if (parallel) {
        leaf.handle = options.pool->Submit([env, &leaf, &io, &options] {
          return KWayMergeLimitToFile(env, leaf.inputs, io, options.limit,
                                      options.limit_last, leaf.output_path,
                                      &leaf.merged);
        });
      } else {
        TWRS_RETURN_IF_ERROR(
            KWayMergeLimitToFile(env, leaf.inputs, io, options.limit,
                                 options.limit_last, leaf.output_path,
                                 &leaf.merged));
      }
    }
    if (parallel) {
      // Collect every result before touching the queue; report the first
      // failure only after all tasks have quiesced.
      Status first_error;
      for (LeafMerge& leaf : level) {
        Status s = leaf.handle.Wait();
        if (!s.ok() && first_error.ok()) first_error = std::move(s);
      }
      TWRS_RETURN_IF_ERROR(first_error);
    }
    for (LeafMerge& leaf : level) {
      ++local.merge_steps;
      ++local.intermediate_runs;
      local.records_written += leaf.merged.length;
      if (options.remove_inputs) {
        for (const RunInfo& run : leaf.inputs) {
          TWRS_RETURN_IF_ERROR(RemoveRunFiles(env, run));
        }
      }
      queue.push_back(std::move(leaf.merged));
    }
  }

  std::vector<RunInfo> final_batch(queue.begin(), queue.end());
  queue.clear();
  RunInfo final_run;
  FinalMergeSpec final_spec;
  final_spec.range = options.output_range;
  final_spec.partitions =
      options.pool != nullptr ? std::max<size_t>(1, options.final_merge_threads)
                              : 1;
  final_spec.sample_size = options.final_sample_size;
  final_spec.sample_seed = options.final_sample_seed;
  final_spec.pool = options.pool;
  final_spec.limit = options.limit;
  final_spec.take_last = options.limit_last;
  MergePruneStats prune;
  final_spec.prune = &prune;
  // The final pass writes the user-visible output — the one place the
  // durability knob applies. Intermediate passes above used io with
  // sync_output's default (false).
  MergeIoOptions final_io = io;
  final_io.sync_output = options.sync_output;
  TWRS_RETURN_IF_ERROR(FinalMergeToOutput(env, final_batch, final_io,
                                          final_spec, output_path,
                                          &final_run));
  ++local.merge_steps;
  local.records_written += final_run.length;
  local.runs_pruned = prune.runs_pruned;
  local.records_pruned = prune.records_pruned;
  if (options.remove_inputs) {
    for (const RunInfo& run : final_batch) {
      TWRS_RETURN_IF_ERROR(RemoveRunFiles(env, run));
    }
  }
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

}  // namespace twrs
