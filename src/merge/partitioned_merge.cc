#include "merge/partitioned_merge.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "io/merge_sink.h"
#include "io/reverse_run_file.h"
#include "shard/splitters.h"
#include "simd/kernels.h"

namespace twrs {

namespace {

/// Lower-bound searches over one sorted forward record file using
/// positioned reads. Two-granularity search keeps the probe count low on
/// seek-bound devices: a record-granular binary search would pay ~log2(n)
/// seeks per splitter, while probing block *starts* first and then reading
/// the one boundary block narrows the same range in ~log2(n/records_per_
/// block) tiny probes plus one block read — and consecutive splitters
/// usually land in the same cached block.
class ForwardSegmentSearcher {
 public:
  ForwardSegmentSearcher(Env* env, const RunSegment& seg, size_t block_bytes)
      : count_(seg.count),
        records_per_block_(std::max<size_t>(1, block_bytes / kRecordBytes)) {
    status_ = env->NewRandomReadFile(seg.path, &file_);
  }

  const Status& status() const { return status_; }

  /// First record index in [lo_hint, count) whose key is >= bound; count_
  /// when every key is smaller. Requires ascending calls (lo_hint from the
  /// previous result) for the block cache to pay off, but is correct for
  /// any hint.
  Status LowerBound(Key bound, uint64_t lo_hint, uint64_t* index) {
    TWRS_RETURN_IF_ERROR(status_);
    // Phase A: binary search over block-start records.
    uint64_t lo_block = lo_hint / records_per_block_;
    uint64_t hi_block = (count_ + records_per_block_ - 1) / records_per_block_;
    while (lo_block < hi_block) {
      const uint64_t mid = lo_block + (hi_block - lo_block) / 2;
      Key key;
      TWRS_RETURN_IF_ERROR(KeyAt(mid * records_per_block_, &key));
      if (key < bound) {
        lo_block = mid + 1;
      } else {
        hi_block = mid;
      }
    }
    // Every key of block lo_block (if it exists) is >= bound; the boundary
    // lies inside the previous block, unless that one starts >= bound too.
    if (lo_block == 0) {
      *index = 0;
      return Status::OK();
    }
    const uint64_t block = lo_block - 1;
    TWRS_RETURN_IF_ERROR(LoadBlock(block));
    const uint64_t base = block * records_per_block_;
    *index = base + static_cast<uint64_t>(
                        std::lower_bound(cache_keys_.begin(),
                                         cache_keys_.end(), bound) -
                        cache_keys_.begin());
    return Status::OK();
  }

 private:
  Status KeyAt(uint64_t index, Key* key) {
    uint8_t buf[kRecordBytes];
    TWRS_RETURN_IF_ERROR(file_->ReadAt(index * kRecordBytes, buf,
                                       kRecordBytes));
    *key = DecodeKey(buf);
    return Status::OK();
  }

  Status LoadBlock(uint64_t block) {
    if (cached_block_ == static_cast<int64_t>(block)) return Status::OK();
    const uint64_t first = block * records_per_block_;
    const uint64_t records =
        std::min<uint64_t>(records_per_block_, count_ - first);
    cache_.resize(records * kRecordBytes);
    TWRS_RETURN_IF_ERROR(file_->ReadAt(first * kRecordBytes, cache_.data(),
                                       cache_.size()));
    // Decode the whole block once; the binary searches then compare native
    // keys instead of re-decoding a record per probe.
    cache_keys_.resize(records);
    simd::DecodeKeysBatch(cache_.data(), records, cache_keys_.data());
    cached_block_ = static_cast<int64_t>(block);
    return Status::OK();
  }

  Status status_;
  std::unique_ptr<RandomRWFile> file_;
  const uint64_t count_;
  const size_t records_per_block_;
  std::vector<uint8_t> cache_;
  std::vector<Key> cache_keys_;
  int64_t cached_block_ = -1;
};

/// One run's slice of a partition: `skip` records in, `length` records long.
struct RunSlice {
  uint64_t skip = 0;
  uint64_t length = 0;
};

/// Merges one partition: every run's slice for partition `j`, written to
/// its byte range of the shared output through `sink`. `window` restricts
/// emission to a slice of the partition's merge order — how a limited
/// merge clamps the partition straddling the K-record boundary.
Status MergePartition(Env* env, const std::vector<RunInfo>& runs,
                      const std::vector<RunSlice>& slices,
                      const MergeIoOptions& io, const MergeWindow& window,
                      MergeSink* sink) {
  std::vector<std::unique_ptr<RunCursor>> cursors;
  cursors.reserve(runs.size());
  for (size_t r = 0; r < runs.size(); ++r) {
    if (slices[r].length == 0) continue;
    cursors.push_back(std::make_unique<RunCursor>(env, runs[r],
                                                  io.block_bytes,
                                                  io.prefetch_blocks));
    TWRS_RETURN_IF_ERROR(
        cursors.back()->InitSlice(slices[r].skip, slices[r].length));
  }
  RecordWriter writer(std::make_unique<MergeSinkFile>(sink), io.block_bytes);
  TWRS_RETURN_IF_ERROR(writer.status());
  TWRS_RETURN_IF_ERROR(MergeRunCursors(
      &cursors, io.cancel, [&](Key key) { return writer.Append(key); },
      io.progress, window));
  return writer.Finish();
}

/// The serial limited final merge. Clamps every run to the `kept`-record
/// prefix (suffix for take_last) that can still matter, then tightens the
/// clamps with sampled key bounds: the smallest sampled key with >= kept
/// records strictly below it bounds the ascending selection from above,
/// so each run needs only its records below it — and a run with none is
/// pruned outright, its files never opened. (Mirrored around >= for
/// take_last.) The bound is an optimization, never a correctness
/// requirement: the merge window serves exactly `kept` records from
/// whatever survives the clamps.
Status PrunedSerialMerge(Env* env, const std::vector<RunInfo>& runs,
                         const MergeIoOptions& io, const FinalMergeSpec& spec,
                         uint64_t kept, uint64_t total_records,
                         const std::string& output_path, RunInfo* out) {
  const size_t n = runs.size();
  std::vector<uint64_t> skip(n, 0);
  std::vector<uint64_t> keep(n, 0);
  for (size_t r = 0; r < n; ++r) {
    keep[r] = std::min<uint64_t>(runs[r].length, kept);
    skip[r] = spec.take_last ? runs[r].length - keep[r] : 0;
  }
  if (n > 1) {
    // Candidate bounds: a modest sample is plenty — any candidate that
    // qualifies prunes correctly, a missed tighter bound only costs I/O.
    std::vector<Key> sample;
    TWRS_RETURN_IF_ERROR(SampleRunKeys(env, runs,
                                       std::min<size_t>(spec.sample_size, 64),
                                       spec.sample_seed, &sample));
    std::sort(sample.begin(), sample.end());
    sample.erase(std::unique(sample.begin(), sample.end()), sample.end());
    // Probing a candidate costs I/O in every run (a block binary search
    // per forward segment, a bounded ascending scan per reverse segment),
    // and that cost grows with the candidate's distance from the boundary
    // end of the key space. So probe outward from that end in doubling
    // chunks and stop at the first candidate that qualifies — it is the
    // tightest qualifying bound in the whole sample, and candidates far
    // from the boundary are never touched when a near one qualifies. If
    // none qualifies the clamps stand unrefined; the merge window still
    // serves exactly `kept` records either way.
    size_t begin = 0;
    size_t chunk = 8;
    bool refined = false;
    while (begin < sample.size() && !refined) {
      const size_t end = std::min(sample.size(), begin + chunk);
      std::vector<Key> probe;
      if (!spec.take_last) {
        probe.assign(sample.begin() + static_cast<ptrdiff_t>(begin),
                     sample.begin() + static_cast<ptrdiff_t>(end));
      } else {
        probe.assign(sample.end() - static_cast<ptrdiff_t>(end),
                     sample.end() - static_cast<ptrdiff_t>(begin));
      }
      std::vector<std::vector<uint64_t>> below(n);
      for (size_t r = 0; r < n; ++r) {
        TWRS_RETURN_IF_ERROR(PartitionPointsForRun(env, runs[r], probe,
                                                   io.block_bytes,
                                                   &below[r]));
      }
      std::vector<uint64_t> total_below(probe.size(), 0);
      for (size_t r = 0; r < n; ++r) {
        for (size_t s = 0; s < probe.size(); ++s) {
          total_below[s] += below[r][s];
        }
      }
      if (!spec.take_last) {
        for (size_t s = 0; s < probe.size(); ++s) {
          if (total_below[s] >= kept) {
            // Every kept record is strictly below probe[s].
            for (size_t r = 0; r < n; ++r) {
              keep[r] = std::min<uint64_t>(keep[r], below[r][s]);
            }
            refined = true;
            break;
          }
        }
      } else {
        for (size_t s = probe.size(); s-- > 0;) {
          if (total_records - total_below[s] >= kept) {
            // Every kept record is at or above probe[s].
            for (size_t r = 0; r < n; ++r) {
              skip[r] = std::max<uint64_t>(skip[r], below[r][s]);
              keep[r] = runs[r].length - skip[r];
            }
            refined = true;
            break;
          }
        }
      }
      begin = end;
      chunk *= 2;
    }
  }

  MergePruneStats prune;
  std::vector<std::unique_ptr<RunCursor>> cursors;
  cursors.reserve(n);
  uint64_t sliced_total = 0;
  for (size_t r = 0; r < n; ++r) {
    prune.records_pruned += runs[r].length - keep[r];
    if (keep[r] == 0) {
      if (runs[r].length > 0) ++prune.runs_pruned;
      continue;
    }
    cursors.push_back(std::make_unique<RunCursor>(env, runs[r],
                                                  io.block_bytes,
                                                  io.prefetch_blocks));
    TWRS_RETURN_IF_ERROR(cursors.back()->InitSlice(skip[r], keep[r]));
    sliced_total += keep[r];
  }
  MergeWindow window;
  window.limit = kept;
  if (spec.take_last && sliced_total > kept) {
    window.skip = sliced_total - kept;
  }

  std::unique_ptr<MergeSink> sink;
  if (spec.range.positioned) {
    TWRS_RETURN_IF_ERROR(MakeRangeMergeSink(env, output_path,
                                            spec.range.offset,
                                            spec.range.length, io.pool,
                                            io.async_buffer_bytes, &sink,
                                            io.flush_histogram,
                                            io.sync_output));
  } else {
    TWRS_RETURN_IF_ERROR(MakeAppendMergeSink(env, output_path, io.pool,
                                             io.async_buffer_bytes, &sink,
                                             io.flush_histogram,
                                             io.sync_output));
  }
  TWRS_RETURN_IF_ERROR(MergeCursorsToSink(&cursors, io, window, sink.get(),
                                          out));
  if (out != nullptr) out->segments[0].path = output_path;
  if (spec.prune != nullptr) *spec.prune = prune;
  return Status::OK();
}

/// Key bounds across runs, from the exact per-run metadata.
void RunBounds(const std::vector<RunInfo>& runs, Key* min_key, Key* max_key) {
  bool first = true;
  for (const RunInfo& run : runs) {
    if (run.length == 0) continue;
    if (first || run.min_key < *min_key) *min_key = run.min_key;
    if (first || run.max_key > *max_key) *max_key = run.max_key;
    first = false;
  }
}

}  // namespace

Status PartitionPointsForRun(Env* env, const RunInfo& run,
                             const std::vector<Key>& splitters,
                             size_t block_bytes,
                             std::vector<uint64_t>* below) {
  below->assign(splitters.size(), 0);
  if (splitters.empty()) return Status::OK();
  for (const RunSegment& seg : run.segments) {
    if (seg.count == 0) continue;
    if (seg.reverse) {
      // One ascending scan counts every splitter at once; once a key
      // reaches the largest splitter, later keys cannot change any count.
      ReverseRunReader reader(env, seg.path, seg.num_files, block_bytes);
      TWRS_RETURN_IF_ERROR(reader.status());
      uint64_t scanned = 0;
      size_t s = 0;
      while (s < splitters.size()) {
        Key key;
        bool eof;
        TWRS_RETURN_IF_ERROR(reader.Next(&key, &eof));
        if (eof) break;
        while (s < splitters.size() && key >= splitters[s]) {
          (*below)[s] += scanned;
          ++s;
        }
        ++scanned;
      }
      // Splitters the scan never reached: every record sits below them.
      for (; s < splitters.size(); ++s) (*below)[s] += seg.count;
    } else {
      ForwardSegmentSearcher searcher(env, seg, block_bytes);
      TWRS_RETURN_IF_ERROR(searcher.status());
      uint64_t lo = 0;
      for (size_t s = 0; s < splitters.size(); ++s) {
        TWRS_RETURN_IF_ERROR(searcher.LowerBound(splitters[s], lo, &lo));
        (*below)[s] += lo;
      }
    }
  }
  return Status::OK();
}

Status SampleRunKeys(Env* env, const std::vector<RunInfo>& runs,
                     size_t sample_size, uint64_t seed,
                     std::vector<Key>* sample) {
  ReservoirSampler sampler(std::max<size_t>(1, sample_size), seed);
  uint64_t forward_total = 0;
  for (const RunInfo& run : runs) {
    for (const RunSegment& seg : run.segments) {
      if (!seg.reverse) forward_total += seg.count;
    }
  }
  for (const RunInfo& run : runs) {
    if (run.length == 0) continue;
    // The exact bounds are free and anchor the sample even for runs whose
    // bulk sits in reverse segments (not probed below).
    sampler.Add(run.min_key);
    sampler.Add(run.max_key);
    for (const RunSegment& seg : run.segments) {
      if (seg.reverse || seg.count == 0) continue;
      uint64_t probes = forward_total > 0
                            ? sample_size * seg.count / forward_total
                            : 0;
      probes = std::min<uint64_t>(std::max<uint64_t>(probes, 1), seg.count);
      std::unique_ptr<RandomRWFile> file;
      TWRS_RETURN_IF_ERROR(env->NewRandomReadFile(seg.path, &file));
      for (uint64_t p = 0; p < probes; ++p) {
        // Stratified midpoints: evenly spaced probes approximate the
        // segment's quantiles better than uniform positions would.
        const uint64_t index = (2 * p + 1) * seg.count / (2 * probes);
        uint8_t buf[kRecordBytes];
        TWRS_RETURN_IF_ERROR(
            file->ReadAt(index * kRecordBytes, buf, kRecordBytes));
        sampler.Add(DecodeKey(buf));
      }
      TWRS_RETURN_IF_ERROR(file->Close());
    }
  }
  *sample = sampler.sample();
  return Status::OK();
}

Status FinalMergeToOutput(Env* env, const std::vector<RunInfo>& runs,
                          const MergeIoOptions& io, const FinalMergeSpec& spec,
                          const std::string& output_path, RunInfo* out) {
  uint64_t total_records = 0;
  for (const RunInfo& run : runs) total_records += run.length;
  // A limit of 0 means no limit; a limit >= the input is a full merge.
  const uint64_t kept = spec.limit > 0
                            ? std::min<uint64_t>(spec.limit, total_records)
                            : total_records;
  const bool limited = kept < total_records;
  const uint64_t kept_bytes = kept * kRecordBytes;
  if (spec.prune != nullptr) *spec.prune = MergePruneStats();
  if (spec.range.positioned && spec.range.length != kept_bytes) {
    return Status::Corruption(
        "final merge produces " + std::to_string(kept_bytes) +
        " bytes but was assigned a range of " +
        std::to_string(spec.range.length));
  }

  // Decide the effective partition count. Everything that degenerates —
  // no pool, one run, tiny inputs, splitters collapsed by skew — falls
  // back to a single merge, which is always correct. Splitter sampling
  // and boundary location cost positioned probes (seeks on a spinning
  // disk), a fixed cost per partition: a partition must span at least a
  // few I/O blocks to amortize it, so the requested count is clamped to
  // what the data volume supports before any probe is paid.
  std::vector<Key> splitters;
  size_t partitions_wanted = 0;
  if (spec.partitions > 1 && spec.pool != nullptr && runs.size() > 1) {
    const uint64_t min_partition_bytes =
        16 * std::max<size_t>(1, io.block_bytes);
    // For a limited merge the volume that gets written is the kept window,
    // so that is what partitioning must amortize over — a small K always
    // degenerates to the (pruned) serial merge.
    partitions_wanted = static_cast<size_t>(
        std::min<uint64_t>(spec.partitions,
                           kept_bytes / min_partition_bytes));
  }
  if (partitions_wanted > 1) {
    // More probes than ~64 per splitter stop improving balance; tying the
    // sample to the clamped partition count keeps the fixed seek cost
    // proportional to the parallelism actually bought.
    const size_t sample_size =
        std::min<size_t>(spec.sample_size, 64 * partitions_wanted);
    std::vector<Key> sample;
    TWRS_RETURN_IF_ERROR(SampleRunKeys(env, runs, sample_size,
                                       spec.sample_seed, &sample));
    splitters = PickSplitters(std::move(sample), partitions_wanted);
  }

  if (splitters.empty()) {
    if (limited) {
      return PrunedSerialMerge(env, runs, io, spec, kept, total_records,
                               output_path, out);
    }
    if (!spec.range.positioned) {
      return KWayMergeToFile(env, runs, io, output_path, out);
    }
    std::unique_ptr<MergeSink> sink;
    TWRS_RETURN_IF_ERROR(MakeRangeMergeSink(env, output_path,
                                            spec.range.offset,
                                            spec.range.length, io.pool,
                                            io.async_buffer_bytes, &sink,
                                            io.flush_histogram,
                                            io.sync_output));
    TWRS_RETURN_IF_ERROR(KWayMergeToSink(env, runs, io, sink.get(), out));
    if (out != nullptr) out->segments[0].path = output_path;
    return Status::OK();
  }

  // Exact slice boundaries: for each run, the record index where every
  // splitter's key domain begins. Runs are independent, and the
  // reverse-segment path is a real sequential scan (it cannot stop before
  // the largest splitter), so the per-run searches fan out on the pool
  // instead of running serially in front of the partial merges.
  const size_t partitions = splitters.size() + 1;
  std::vector<std::vector<uint64_t>> below(runs.size());
  {
    std::vector<TaskHandle> boundary_tasks;
    boundary_tasks.reserve(runs.size());
    for (size_t r = 0; r < runs.size(); ++r) {
      const RunInfo* run = &runs[r];
      std::vector<uint64_t>* run_below = &below[r];
      boundary_tasks.push_back(
          spec.pool->Submit([env, run, &splitters, &io, run_below] {
            return PartitionPointsForRun(env, *run, splitters,
                                         io.block_bytes, run_below);
          }));
    }
    Status first_error;
    for (TaskHandle& handle : boundary_tasks) {
      Status s = handle.Wait();
      if (!s.ok() && first_error.ok()) first_error = std::move(s);
    }
    TWRS_RETURN_IF_ERROR(first_error);
  }
  std::vector<std::vector<RunSlice>> slices(partitions);
  std::vector<uint64_t> partition_records(partitions, 0);
  for (size_t j = 0; j < partitions; ++j) {
    slices[j].resize(runs.size());
    for (size_t r = 0; r < runs.size(); ++r) {
      const uint64_t lo = j == 0 ? 0 : below[r][j - 1];
      const uint64_t hi = j + 1 == partitions ? runs[r].length : below[r][j];
      slices[j][r].skip = lo;
      slices[j][r].length = hi - lo;
      partition_records[j] += hi - lo;
    }
  }

  bool created = false;
  if (!spec.range.positioned) {
    // Truncate-create the shared output exactly once; every partition then
    // reopens it and extends it by writing its range.
    std::unique_ptr<RandomRWFile> file;
    TWRS_RETURN_IF_ERROR(env->NewRandomRWFile(output_path, &file));
    TWRS_RETURN_IF_ERROR(file->Close());
    created = true;
  }

  // The kept window of the merged stream in record coordinates; a full
  // merge keeps everything. Partitions wholly outside the window are
  // dropped — their runs' slices are never read, which is the partitioned
  // form of run pruning — and the straddling partition merges with a
  // window that clamps it to the K-record boundary.
  const uint64_t win_lo = spec.take_last ? total_records - kept : 0;
  const uint64_t win_hi = win_lo + kept;
  MergePruneStats prune;
  std::vector<bool> run_used(runs.size(), false);

  std::vector<TaskHandle> handles;
  handles.reserve(partitions);
  std::vector<MergeWindow> windows(partitions);
  uint64_t cum = 0;
  Status first_error;
  for (size_t j = 0; j < partitions; ++j) {
    const uint64_t p_lo = cum;
    const uint64_t p_hi = cum + partition_records[j];
    cum = p_hi;
    const uint64_t inter_lo = std::max<uint64_t>(p_lo, win_lo);
    const uint64_t inter_hi = std::min<uint64_t>(p_hi, win_hi);
    if (inter_lo >= inter_hi) {
      prune.records_pruned += partition_records[j];
      continue;
    }
    for (size_t r = 0; r < runs.size(); ++r) {
      if (slices[j][r].length > 0) run_used[r] = true;
    }
    windows[j].skip = inter_lo - p_lo;
    windows[j].limit = inter_hi - inter_lo;
    const uint64_t length = windows[j].limit * kRecordBytes;
    const uint64_t partition_offset =
        spec.range.offset + (inter_lo - win_lo) * kRecordBytes;
    const MergeWindow* window = &windows[j];
    const std::vector<RunSlice>* partition_slices = &slices[j];
    handles.push_back(spec.pool->Submit(
        [env, &runs, partition_slices, &io, &output_path, partition_offset,
         length, window] {
          std::unique_ptr<MergeSink> sink;
          TWRS_RETURN_IF_ERROR(MakeRangeMergeSink(
              env, output_path, partition_offset, length, io.pool,
              io.async_buffer_bytes, &sink, io.flush_histogram,
              io.sync_output));
          return MergePartition(env, runs, *partition_slices, io, *window,
                                sink.get());
        }));
  }
  // Collect every partial merge before reporting the first failure, so no
  // task still references local state when this frame unwinds.
  for (TaskHandle& handle : handles) {
    Status s = handle.Wait();
    if (!s.ok() && first_error.ok()) first_error = std::move(s);
  }
  if (!first_error.ok()) {
    // A torn positioned file has holes rather than a clean prefix; remove
    // it when this call created it (a shared output belongs to its
    // creator's cleanup).
    if (created) TWRS_IGNORE_STATUS(env->RemoveFile(output_path));
    return first_error;
  }

  if (limited && spec.prune != nullptr) {
    for (size_t r = 0; r < runs.size(); ++r) {
      if (!run_used[r] && runs[r].length > 0) ++prune.runs_pruned;
    }
    *spec.prune = prune;
  }
  if (out != nullptr) {
    RunInfo info;
    RunSegment seg;
    seg.path = output_path;
    seg.reverse = false;
    seg.count = kept;
    info.segments.push_back(std::move(seg));
    info.length = kept;
    // Exact for a full merge; for a limited one these metadata bounds of
    // the inputs merely over-cover the kept window, which is all the
    // final output's consumers need.
    RunBounds(runs, &info.min_key, &info.max_key);
    *out = std::move(info);
  }
  return Status::OK();
}

}  // namespace twrs
