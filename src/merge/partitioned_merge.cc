#include "merge/partitioned_merge.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "io/merge_sink.h"
#include "io/reverse_run_file.h"
#include "shard/splitters.h"
#include "simd/kernels.h"

namespace twrs {

namespace {

/// Lower-bound searches over one sorted forward record file using
/// positioned reads. Two-granularity search keeps the probe count low on
/// seek-bound devices: a record-granular binary search would pay ~log2(n)
/// seeks per splitter, while probing block *starts* first and then reading
/// the one boundary block narrows the same range in ~log2(n/records_per_
/// block) tiny probes plus one block read — and consecutive splitters
/// usually land in the same cached block.
class ForwardSegmentSearcher {
 public:
  ForwardSegmentSearcher(Env* env, const RunSegment& seg, size_t block_bytes)
      : count_(seg.count),
        records_per_block_(std::max<size_t>(1, block_bytes / kRecordBytes)) {
    status_ = env->NewRandomReadFile(seg.path, &file_);
  }

  const Status& status() const { return status_; }

  /// First record index in [lo_hint, count) whose key is >= bound; count_
  /// when every key is smaller. Requires ascending calls (lo_hint from the
  /// previous result) for the block cache to pay off, but is correct for
  /// any hint.
  Status LowerBound(Key bound, uint64_t lo_hint, uint64_t* index) {
    TWRS_RETURN_IF_ERROR(status_);
    // Phase A: binary search over block-start records.
    uint64_t lo_block = lo_hint / records_per_block_;
    uint64_t hi_block = (count_ + records_per_block_ - 1) / records_per_block_;
    while (lo_block < hi_block) {
      const uint64_t mid = lo_block + (hi_block - lo_block) / 2;
      Key key;
      TWRS_RETURN_IF_ERROR(KeyAt(mid * records_per_block_, &key));
      if (key < bound) {
        lo_block = mid + 1;
      } else {
        hi_block = mid;
      }
    }
    // Every key of block lo_block (if it exists) is >= bound; the boundary
    // lies inside the previous block, unless that one starts >= bound too.
    if (lo_block == 0) {
      *index = 0;
      return Status::OK();
    }
    const uint64_t block = lo_block - 1;
    TWRS_RETURN_IF_ERROR(LoadBlock(block));
    const uint64_t base = block * records_per_block_;
    *index = base + static_cast<uint64_t>(
                        std::lower_bound(cache_keys_.begin(),
                                         cache_keys_.end(), bound) -
                        cache_keys_.begin());
    return Status::OK();
  }

 private:
  Status KeyAt(uint64_t index, Key* key) {
    uint8_t buf[kRecordBytes];
    TWRS_RETURN_IF_ERROR(file_->ReadAt(index * kRecordBytes, buf,
                                       kRecordBytes));
    *key = DecodeKey(buf);
    return Status::OK();
  }

  Status LoadBlock(uint64_t block) {
    if (cached_block_ == static_cast<int64_t>(block)) return Status::OK();
    const uint64_t first = block * records_per_block_;
    const uint64_t records =
        std::min<uint64_t>(records_per_block_, count_ - first);
    cache_.resize(records * kRecordBytes);
    TWRS_RETURN_IF_ERROR(file_->ReadAt(first * kRecordBytes, cache_.data(),
                                       cache_.size()));
    // Decode the whole block once; the binary searches then compare native
    // keys instead of re-decoding a record per probe.
    cache_keys_.resize(records);
    simd::DecodeKeysBatch(cache_.data(), records, cache_keys_.data());
    cached_block_ = static_cast<int64_t>(block);
    return Status::OK();
  }

  Status status_;
  std::unique_ptr<RandomRWFile> file_;
  const uint64_t count_;
  const size_t records_per_block_;
  std::vector<uint8_t> cache_;
  std::vector<Key> cache_keys_;
  int64_t cached_block_ = -1;
};

/// One run's slice of a partition: `skip` records in, `length` records long.
struct RunSlice {
  uint64_t skip = 0;
  uint64_t length = 0;
};

/// Merges one partition: every run's slice for partition `j`, written to
/// its byte range of the shared output through `sink`.
Status MergePartition(Env* env, const std::vector<RunInfo>& runs,
                      const std::vector<RunSlice>& slices,
                      const MergeIoOptions& io, MergeSink* sink) {
  std::vector<std::unique_ptr<RunCursor>> cursors;
  cursors.reserve(runs.size());
  for (size_t r = 0; r < runs.size(); ++r) {
    if (slices[r].length == 0) continue;
    cursors.push_back(std::make_unique<RunCursor>(env, runs[r],
                                                  io.block_bytes,
                                                  io.prefetch_blocks));
    TWRS_RETURN_IF_ERROR(
        cursors.back()->InitSlice(slices[r].skip, slices[r].length));
  }
  RecordWriter writer(std::make_unique<MergeSinkFile>(sink), io.block_bytes);
  TWRS_RETURN_IF_ERROR(writer.status());
  TWRS_RETURN_IF_ERROR(MergeRunCursors(
      &cursors, io.cancel, [&](Key key) { return writer.Append(key); },
      io.progress));
  return writer.Finish();
}

/// Key bounds across runs, from the exact per-run metadata.
void RunBounds(const std::vector<RunInfo>& runs, Key* min_key, Key* max_key) {
  bool first = true;
  for (const RunInfo& run : runs) {
    if (run.length == 0) continue;
    if (first || run.min_key < *min_key) *min_key = run.min_key;
    if (first || run.max_key > *max_key) *max_key = run.max_key;
    first = false;
  }
}

}  // namespace

Status PartitionPointsForRun(Env* env, const RunInfo& run,
                             const std::vector<Key>& splitters,
                             size_t block_bytes,
                             std::vector<uint64_t>* below) {
  below->assign(splitters.size(), 0);
  if (splitters.empty()) return Status::OK();
  for (const RunSegment& seg : run.segments) {
    if (seg.count == 0) continue;
    if (seg.reverse) {
      // One ascending scan counts every splitter at once; once a key
      // reaches the largest splitter, later keys cannot change any count.
      ReverseRunReader reader(env, seg.path, seg.num_files, block_bytes);
      TWRS_RETURN_IF_ERROR(reader.status());
      uint64_t scanned = 0;
      size_t s = 0;
      while (s < splitters.size()) {
        Key key;
        bool eof;
        TWRS_RETURN_IF_ERROR(reader.Next(&key, &eof));
        if (eof) break;
        while (s < splitters.size() && key >= splitters[s]) {
          (*below)[s] += scanned;
          ++s;
        }
        ++scanned;
      }
      // Splitters the scan never reached: every record sits below them.
      for (; s < splitters.size(); ++s) (*below)[s] += seg.count;
    } else {
      ForwardSegmentSearcher searcher(env, seg, block_bytes);
      TWRS_RETURN_IF_ERROR(searcher.status());
      uint64_t lo = 0;
      for (size_t s = 0; s < splitters.size(); ++s) {
        TWRS_RETURN_IF_ERROR(searcher.LowerBound(splitters[s], lo, &lo));
        (*below)[s] += lo;
      }
    }
  }
  return Status::OK();
}

Status SampleRunKeys(Env* env, const std::vector<RunInfo>& runs,
                     size_t sample_size, uint64_t seed,
                     std::vector<Key>* sample) {
  ReservoirSampler sampler(std::max<size_t>(1, sample_size), seed);
  uint64_t forward_total = 0;
  for (const RunInfo& run : runs) {
    for (const RunSegment& seg : run.segments) {
      if (!seg.reverse) forward_total += seg.count;
    }
  }
  for (const RunInfo& run : runs) {
    if (run.length == 0) continue;
    // The exact bounds are free and anchor the sample even for runs whose
    // bulk sits in reverse segments (not probed below).
    sampler.Add(run.min_key);
    sampler.Add(run.max_key);
    for (const RunSegment& seg : run.segments) {
      if (seg.reverse || seg.count == 0) continue;
      uint64_t probes = forward_total > 0
                            ? sample_size * seg.count / forward_total
                            : 0;
      probes = std::min<uint64_t>(std::max<uint64_t>(probes, 1), seg.count);
      std::unique_ptr<RandomRWFile> file;
      TWRS_RETURN_IF_ERROR(env->NewRandomReadFile(seg.path, &file));
      for (uint64_t p = 0; p < probes; ++p) {
        // Stratified midpoints: evenly spaced probes approximate the
        // segment's quantiles better than uniform positions would.
        const uint64_t index = (2 * p + 1) * seg.count / (2 * probes);
        uint8_t buf[kRecordBytes];
        TWRS_RETURN_IF_ERROR(
            file->ReadAt(index * kRecordBytes, buf, kRecordBytes));
        sampler.Add(DecodeKey(buf));
      }
      TWRS_RETURN_IF_ERROR(file->Close());
    }
  }
  *sample = sampler.sample();
  return Status::OK();
}

Status FinalMergeToOutput(Env* env, const std::vector<RunInfo>& runs,
                          const MergeIoOptions& io, const FinalMergeSpec& spec,
                          const std::string& output_path, RunInfo* out) {
  uint64_t total_records = 0;
  for (const RunInfo& run : runs) total_records += run.length;
  const uint64_t total_bytes = total_records * kRecordBytes;
  if (spec.range.positioned && spec.range.length != total_bytes) {
    return Status::Corruption(
        "final merge holds " + std::to_string(total_bytes) +
        " bytes of runs but was assigned a range of " +
        std::to_string(spec.range.length));
  }

  // Decide the effective partition count. Everything that degenerates —
  // no pool, one run, tiny inputs, splitters collapsed by skew — falls
  // back to a single merge, which is always correct. Splitter sampling
  // and boundary location cost positioned probes (seeks on a spinning
  // disk), a fixed cost per partition: a partition must span at least a
  // few I/O blocks to amortize it, so the requested count is clamped to
  // what the data volume supports before any probe is paid.
  std::vector<Key> splitters;
  size_t partitions_wanted = 0;
  if (spec.partitions > 1 && spec.pool != nullptr && runs.size() > 1) {
    const uint64_t min_partition_bytes =
        16 * std::max<size_t>(1, io.block_bytes);
    partitions_wanted = static_cast<size_t>(
        std::min<uint64_t>(spec.partitions,
                           total_bytes / min_partition_bytes));
  }
  if (partitions_wanted > 1) {
    // More probes than ~64 per splitter stop improving balance; tying the
    // sample to the clamped partition count keeps the fixed seek cost
    // proportional to the parallelism actually bought.
    const size_t sample_size =
        std::min<size_t>(spec.sample_size, 64 * partitions_wanted);
    std::vector<Key> sample;
    TWRS_RETURN_IF_ERROR(SampleRunKeys(env, runs, sample_size,
                                       spec.sample_seed, &sample));
    splitters = PickSplitters(std::move(sample), partitions_wanted);
  }

  if (splitters.empty()) {
    if (!spec.range.positioned) {
      return KWayMergeToFile(env, runs, io, output_path, out);
    }
    std::unique_ptr<MergeSink> sink;
    TWRS_RETURN_IF_ERROR(MakeRangeMergeSink(env, output_path,
                                            spec.range.offset,
                                            spec.range.length, io.pool,
                                            io.async_buffer_bytes, &sink,
                                            io.flush_histogram));
    TWRS_RETURN_IF_ERROR(KWayMergeToSink(env, runs, io, sink.get(), out));
    if (out != nullptr) out->segments[0].path = output_path;
    return Status::OK();
  }

  // Exact slice boundaries: for each run, the record index where every
  // splitter's key domain begins. Runs are independent, and the
  // reverse-segment path is a real sequential scan (it cannot stop before
  // the largest splitter), so the per-run searches fan out on the pool
  // instead of running serially in front of the partial merges.
  const size_t partitions = splitters.size() + 1;
  std::vector<std::vector<uint64_t>> below(runs.size());
  {
    std::vector<TaskHandle> boundary_tasks;
    boundary_tasks.reserve(runs.size());
    for (size_t r = 0; r < runs.size(); ++r) {
      const RunInfo* run = &runs[r];
      std::vector<uint64_t>* run_below = &below[r];
      boundary_tasks.push_back(
          spec.pool->Submit([env, run, &splitters, &io, run_below] {
            return PartitionPointsForRun(env, *run, splitters,
                                         io.block_bytes, run_below);
          }));
    }
    Status first_error;
    for (TaskHandle& handle : boundary_tasks) {
      Status s = handle.Wait();
      if (!s.ok() && first_error.ok()) first_error = std::move(s);
    }
    TWRS_RETURN_IF_ERROR(first_error);
  }
  std::vector<std::vector<RunSlice>> slices(partitions);
  std::vector<uint64_t> partition_records(partitions, 0);
  for (size_t j = 0; j < partitions; ++j) {
    slices[j].resize(runs.size());
    for (size_t r = 0; r < runs.size(); ++r) {
      const uint64_t lo = j == 0 ? 0 : below[r][j - 1];
      const uint64_t hi = j + 1 == partitions ? runs[r].length : below[r][j];
      slices[j][r].skip = lo;
      slices[j][r].length = hi - lo;
      partition_records[j] += hi - lo;
    }
  }

  bool created = false;
  if (!spec.range.positioned) {
    // Truncate-create the shared output exactly once; every partition then
    // reopens it and extends it by writing its range.
    std::unique_ptr<RandomRWFile> file;
    TWRS_RETURN_IF_ERROR(env->NewRandomRWFile(output_path, &file));
    TWRS_RETURN_IF_ERROR(file->Close());
    created = true;
  }

  std::vector<TaskHandle> handles;
  handles.reserve(partitions);
  uint64_t offset = spec.range.offset;
  Status first_error;
  for (size_t j = 0; j < partitions; ++j) {
    const uint64_t length = partition_records[j] * kRecordBytes;
    if (length == 0) continue;
    const uint64_t partition_offset = offset;
    offset += length;
    const std::vector<RunSlice>* partition_slices = &slices[j];
    handles.push_back(spec.pool->Submit(
        [env, &runs, partition_slices, &io, &output_path, partition_offset,
         length] {
          std::unique_ptr<MergeSink> sink;
          TWRS_RETURN_IF_ERROR(MakeRangeMergeSink(
              env, output_path, partition_offset, length, io.pool,
              io.async_buffer_bytes, &sink, io.flush_histogram));
          return MergePartition(env, runs, *partition_slices, io, sink.get());
        }));
  }
  // Collect every partial merge before reporting the first failure, so no
  // task still references local state when this frame unwinds.
  for (TaskHandle& handle : handles) {
    Status s = handle.Wait();
    if (!s.ok() && first_error.ok()) first_error = std::move(s);
  }
  if (!first_error.ok()) {
    // A torn positioned file has holes rather than a clean prefix; remove
    // it when this call created it (a shared output belongs to its
    // creator's cleanup).
    if (created) TWRS_IGNORE_STATUS(env->RemoveFile(output_path));
    return first_error;
  }

  if (out != nullptr) {
    RunInfo info;
    RunSegment seg;
    seg.path = output_path;
    seg.reverse = false;
    seg.count = total_records;
    info.segments.push_back(std::move(seg));
    info.length = total_records;
    RunBounds(runs, &info.min_key, &info.max_key);
    *out = std::move(info);
  }
  return Status::OK();
}

}  // namespace twrs
