#include "merge/external_sorter.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <memory>

#include "core/batched_replacement_selection.h"
#include "core/load_sort_store.h"
#include "core/replacement_selection.h"
#include "core/run_generator.h"
#include "core/run_sink.h"
#include "io/record_io.h"
#include "util/stopwatch.h"

namespace twrs {

const char* RunGenAlgorithmName(RunGenAlgorithm algorithm) {
  switch (algorithm) {
    case RunGenAlgorithm::kReplacementSelection:
      return "RS";
    case RunGenAlgorithm::kTwoWayReplacementSelection:
      return "2WRS";
    case RunGenAlgorithm::kLoadSortStore:
      return "LSS";
    case RunGenAlgorithm::kBatchedReplacementSelection:
      return "BatchedRS";
  }
  return "?";
}

std::unique_ptr<RunGenerator> MakeRunGenerator(RunGenAlgorithm algorithm,
                                               size_t memory_records,
                                               const TwoWayOptions& twrs) {
  switch (algorithm) {
    case RunGenAlgorithm::kReplacementSelection: {
      ReplacementSelectionOptions rs;
      rs.memory_records = memory_records;
      return std::make_unique<ReplacementSelection>(rs);
    }
    case RunGenAlgorithm::kTwoWayReplacementSelection: {
      TwoWayOptions options = twrs;
      options.memory_records = memory_records;
      return std::make_unique<TwoWayReplacementSelection>(options);
    }
    case RunGenAlgorithm::kLoadSortStore: {
      LoadSortStoreOptions lss;
      lss.memory_records = memory_records;
      return std::make_unique<LoadSortStore>(lss);
    }
    case RunGenAlgorithm::kBatchedReplacementSelection: {
      BatchedReplacementSelectionOptions brs;
      brs.memory_records = memory_records;
      brs.batch_records =
          std::min<size_t>(1024, std::max<size_t>(1, memory_records / 8));
      return std::make_unique<BatchedReplacementSelection>(brs);
    }
  }
  return nullptr;
}

namespace {

/// A temp-subdirectory name no other sort will pick: the pid keeps separate
/// processes sharing a default temp_dir (e.g. /tmp/twrs_sort) apart, the
/// process-wide counter keeps concurrent sorts within one process apart.
std::string UniqueSortDirName() {
  static std::atomic<uint64_t> counter{0};
  return "sort_" + std::to_string(static_cast<uint64_t>(::getpid())) + "_" +
         std::to_string(counter.fetch_add(1));
}

}  // namespace

ExternalSorter::ExternalSorter(Env* env, ExternalSortOptions options)
    : env_(env), options_(std::move(options)) {}

Status ExternalSorter::Sort(RecordSource* source,
                            const std::string& output_path,
                            ExternalSortResult* result) {
  ExternalSortResult local;
  const std::string sort_dir =
      options_.temp_dir + "/" + UniqueSortDirName();
  TWRS_RETURN_IF_ERROR(env_->CreateDirIfMissing(sort_dir));

  std::unique_ptr<ThreadPool> pool;
  if (options_.parallel.worker_threads > 0) {
    pool = std::make_unique<ThreadPool>(options_.parallel.worker_threads);
  }

  std::unique_ptr<RunGenerator> generator = MakeRunGenerator(
      options_.algorithm, options_.memory_records, options_.twrs);

  FileRunSinkOptions sink_options;
  sink_options.block_bytes = options_.block_bytes;
  sink_options.pool = pool.get();
  FileRunSink sink(env_, sort_dir, "sort", sink_options);

  Stopwatch total_watch;
  Stopwatch phase_watch;
  TWRS_RETURN_IF_ERROR(generator->Generate(source, &sink, &local.run_gen));
  local.run_gen_seconds = phase_watch.ElapsedSeconds();

  MergeOptions merge_options;
  merge_options.fan_in = options_.fan_in;
  merge_options.block_bytes = options_.block_bytes;
  merge_options.temp_dir = sort_dir;
  merge_options.temp_prefix = "sort";
  merge_options.remove_inputs = !options_.keep_temp_files;
  merge_options.pool = pool.get();
  // Prefetching runs on dedicated pump threads, so it is independent of
  // the pool; only the pool-dispatched leaf merges require workers.
  merge_options.prefetch_blocks = options_.parallel.prefetch_blocks;
  if (pool != nullptr) {
    merge_options.parallel_leaf_merges =
        options_.parallel.parallel_leaf_merges;
  }

  phase_watch.Reset();
  TWRS_RETURN_IF_ERROR(MergeRuns(env_, sink.runs(), merge_options,
                                 output_path, &local.merge));
  local.merge_seconds = phase_watch.ElapsedSeconds();
  local.total_seconds = total_watch.ElapsedSeconds();
  local.output_records = local.run_gen.total_records;
  if (!options_.keep_temp_files) {
    TWRS_RETURN_IF_ERROR(env_->RemoveDir(sort_dir));
  }
  if (result != nullptr) *result = local;
  return Status::OK();
}

Status VerifySortedFile(Env* env, const std::string& path, uint64_t* count,
                        KeyChecksum* checksum) {
  RecordReader reader(env, path);
  TWRS_RETURN_IF_ERROR(reader.status());
  uint64_t n = 0;
  Key previous = 0;
  KeyChecksum sum;
  for (;;) {
    Key key;
    bool eof;
    TWRS_RETURN_IF_ERROR(reader.Next(&key, &eof));
    if (eof) break;
    if (n > 0 && key < previous) {
      return Status::Corruption("file is not sorted at record " +
                                std::to_string(n));
    }
    previous = key;
    sum.Add(key);
    ++n;
  }
  if (count != nullptr) *count = n;
  if (checksum != nullptr) *checksum = sum;
  return Status::OK();
}

}  // namespace twrs
