#include "merge/external_sorter.h"

#include <algorithm>
#include <memory>

#include "core/batched_replacement_selection.h"
#include "core/load_sort_store.h"
#include "core/replacement_selection.h"
#include "core/run_generator.h"
#include "core/run_sink.h"
#include "io/counting_env.h"
#include "io/record_io.h"
#include "merge/sort_phases.h"
#include "select/topk_sort.h"
#include "util/stopwatch.h"

namespace twrs {

const char* RunGenAlgorithmName(RunGenAlgorithm algorithm) {
  switch (algorithm) {
    case RunGenAlgorithm::kReplacementSelection:
      return "RS";
    case RunGenAlgorithm::kTwoWayReplacementSelection:
      return "2WRS";
    case RunGenAlgorithm::kLoadSortStore:
      return "LSS";
    case RunGenAlgorithm::kBatchedReplacementSelection:
      return "BatchedRS";
  }
  return "?";
}

std::unique_ptr<RunGenerator> MakeRunGenerator(RunGenAlgorithm algorithm,
                                               size_t memory_records,
                                               const TwoWayOptions& twrs) {
  switch (algorithm) {
    case RunGenAlgorithm::kReplacementSelection: {
      ReplacementSelectionOptions rs;
      rs.memory_records = memory_records;
      return std::make_unique<ReplacementSelection>(rs);
    }
    case RunGenAlgorithm::kTwoWayReplacementSelection: {
      TwoWayOptions options = twrs;
      options.memory_records = memory_records;
      return std::make_unique<TwoWayReplacementSelection>(options);
    }
    case RunGenAlgorithm::kLoadSortStore: {
      LoadSortStoreOptions lss;
      lss.memory_records = memory_records;
      return std::make_unique<LoadSortStore>(lss);
    }
    case RunGenAlgorithm::kBatchedReplacementSelection: {
      BatchedReplacementSelectionOptions brs;
      brs.memory_records = memory_records;
      brs.batch_records =
          std::min<size_t>(1024, std::max<size_t>(1, memory_records / 8));
      return std::make_unique<BatchedReplacementSelection>(brs);
    }
  }
  return nullptr;
}

size_t MergePhaseMemoryRecords(const ExternalSortOptions& options) {
  const size_t records_per_block =
      std::max<size_t>(1, options.block_bytes / kRecordBytes);
  // One merge holds fan_in input streams (a block each, plus read-ahead)
  // and one output buffer.
  const size_t per_merge =
      (options.fan_in * (1 + options.parallel.prefetch_blocks) + 1) *
      records_per_block;
  // Merges run concurrently, each with its own buffer set: the final pass
  // splits into final_merge_threads partial merges, and pool-dispatched
  // same-level leaf merges can hold one merge's buffers per worker during
  // intermediate passes (worker_threads is 1 in shared-executor mode, so
  // this leg is a floor, not an exact bound). The phase footprint is the
  // wider of the two stages.
  size_t concurrency =
      std::max<size_t>(1, options.parallel.final_merge_threads);
  if (options.parallel.parallel_leaf_merges) {
    concurrency = std::max(
        concurrency, std::max<size_t>(1, options.parallel.worker_threads));
  }
  return per_merge * concurrency;
}

ExternalSorter::ExternalSorter(Env* env, ExternalSortOptions options)
    : env_(env), options_(std::move(options)) {}

Status ExternalSorter::Sort(RecordSource* source,
                            const std::string& output_path,
                            ExternalSortResult* result) {
  return SortInternal(source, output_path, MergeOutputRange(), result);
}

Status ExternalSorter::SortIntoRange(RecordSource* source,
                                     const std::string& output_path,
                                     const MergeOutputRange& range,
                                     ExternalSortResult* result) {
  if (!range.positioned) {
    return Status::InvalidArgument(
        "SortIntoRange requires a positioned output range");
  }
  return SortInternal(source, output_path, range, result);
}

Status ExternalSorter::SortInternal(RecordSource* source,
                                    const std::string& output_path,
                                    const MergeOutputRange& range,
                                    ExternalSortResult* result) {
  // A non-default io_backend swaps the constructor-injected Env for the
  // requested process-wide backend before any file is touched. kUring on
  // an unsupported kernel/build fails the whole sort here — loudly, not
  // with a mid-sort surprise.
  Env* base_env = env_;
  if (options_.io_backend != IoBackend::kDefault) {
    IoBackend resolved = IoBackend::kDefault;
    TWRS_RETURN_IF_ERROR(ResolveIoBackend(options_.io_backend, &resolved));
    if (resolved != IoBackend::kDefault) {
      base_env = Env::Default(resolved);
    }
  }

  // All engine I/O (runs, intermediate merges, output) goes through a
  // counting decorator so the result can report real byte volume. The
  // output path is watched so the error path knows whether this sort
  // truncated it (in range mode the file belongs to the caller and is
  // only ever reopened, so the watch never fires).
  CountingEnv env(base_env);
  env.WatchPath(output_path);
  if (options_.progress != nullptr && options_.progress_bytes) {
    env.MirrorBytesTo(options_.progress->bytes_read_counter(),
                      options_.progress->bytes_written_counter());
  }

  // Top-K dispatch. The dual-heap strategy replaces the whole run-gen +
  // merge pipeline with one bounded selection pass; the run-pruning
  // strategy is the normal pipeline with options_.limit threaded into the
  // merge plan (see MergePlanningPhase), so it flows through the phase
  // loop below unchanged.
  TopKStrategy strategy = TopKStrategy::kAuto;
  if (options_.limit > 0) {
    if (range.positioned) {
      return Status::InvalidArgument(
          "top-K sorts (limit > 0) cannot write into a positioned range");
    }
    strategy = options_.topk_strategy != TopKStrategy::kAuto
                   ? options_.topk_strategy
                   : PlanTopKStrategy(options_.limit, options_.memory_records);
  }
  if (strategy == TopKStrategy::kDualHeap) {
    Stopwatch total_watch;
    ExternalSortResult local;
    Status s = DualHeapSelectToFile(&env, options_, source, output_path,
                                    &local);
    if (!s.ok()) {
      if (env.watched_created()) {
        TWRS_IGNORE_STATUS(env.RemoveFile(output_path));  // best-effort
      }
      return s;
    }
    local.total_seconds = total_watch.ElapsedSeconds();
    local.topk_strategy = TopKStrategy::kDualHeap;
    local.bytes_read = env.bytes_read();
    local.bytes_written = env.bytes_written();
    if (result != nullptr) *result = local;
    return Status::OK();
  }

  SortContext context;
  TWRS_RETURN_IF_ERROR(PrepareSortContext(&env, options_, &context));
  context.output_range = range;

  Stopwatch total_watch;
  RunGenerationPhase run_generation(source);
  MergePlanningPhase planning;
  FinalMergePhase final_merge(output_path);
  SortPhase* const phases[] = {&run_generation, &planning, &final_merge};
  for (SortPhase* phase : phases) {
    Status s = phase->Run(&context);
    if (!s.ok()) {
      // A failed or cancelled sort must not leave scratch behind: the
      // sort_dir still holds run files (and possibly intermediate merges)
      // that no later pass will consume. An output this sort truncated is
      // now torn and is removed too — but a pre-existing file the sort
      // never opened is left untouched.
      if (!options_.keep_temp_files) {
        RemoveTreeBestEffort(&env, context.sort_dir);
      }
      if (env.watched_created()) {
        TWRS_IGNORE_STATUS(env.RemoveFile(output_path));  // best-effort
      }
      return s;
    }
  }
  context.result.total_seconds = total_watch.ElapsedSeconds();

  if (!options_.keep_temp_files) {
    TWRS_RETURN_IF_ERROR(env.RemoveDir(context.sort_dir));
  }
  context.result.bytes_read = env.bytes_read();
  context.result.bytes_written = env.bytes_written();
  context.result.topk_strategy = strategy;
  if (result != nullptr) *result = context.result;
  return Status::OK();
}

Status VerifySortedFile(Env* env, const std::string& path, uint64_t* count,
                        KeyChecksum* checksum) {
  RecordReader reader(env, path);
  TWRS_RETURN_IF_ERROR(reader.status());
  uint64_t n = 0;
  Key previous = 0;
  KeyChecksum sum;
  for (;;) {
    Key key;
    bool eof;
    TWRS_RETURN_IF_ERROR(reader.Next(&key, &eof));
    if (eof) break;
    if (n > 0 && key < previous) {
      return Status::Corruption("file is not sorted at record " +
                                std::to_string(n));
    }
    previous = key;
    sum.Add(key);
    ++n;
  }
  if (count != nullptr) *count = n;
  if (checksum != nullptr) *checksum = sum;
  return Status::OK();
}

}  // namespace twrs
