#ifndef TWRS_MERGE_EXTERNAL_SORTER_H_
#define TWRS_MERGE_EXTERNAL_SORTER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/record_source.h"
#include "core/run_generator.h"
#include "core/run_stats.h"
#include "core/two_way_replacement_selection.h"
#include "exec/thread_pool.h"
#include "io/env.h"
#include "merge/merge_plan.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "select/topk.h"
#include "util/cancel.h"
#include "util/checksum.h"
#include "util/status.h"

namespace twrs {

class Executor;

/// Run generation algorithm of the first external-mergesort phase.
enum class RunGenAlgorithm {
  kReplacementSelection,
  kTwoWayReplacementSelection,
  kLoadSortStore,
  kBatchedReplacementSelection,
};

const char* RunGenAlgorithmName(RunGenAlgorithm algorithm);

/// Builds the run generator for `algorithm` with a `memory_records` budget.
/// The single construction point shared by ExternalSorter and the benchmark
/// harness, so replayed run generation measures the same configuration the
/// sorter used. `twrs` tuning applies to 2WRS only; its memory field is
/// overridden by `memory_records`.
std::unique_ptr<RunGenerator> MakeRunGenerator(RunGenAlgorithm algorithm,
                                               size_t memory_records,
                                               const TwoWayOptions& twrs = {});

/// Concurrency knobs of the pipelined execution path (src/exec). With the
/// defaults the sort is fully serial and behaves exactly as before.
struct ParallelOptions {
  /// Worker threads in the sort's ThreadPool; 0 disables the pool-based
  /// features (async run flushing, parallel leaf merges).
  size_t worker_threads = 0;

  /// Read-ahead blocks kept in flight per merge input stream; 0 disables.
  /// Prefetching uses a dedicated pump thread per open input, not the
  /// pool, so it works with or without worker threads.
  size_t prefetch_blocks = 0;

  /// Dispatch independent same-level intermediate merges onto the pool.
  bool parallel_leaf_merges = true;

  /// Partitions of the final merge pass: > 1 splits the key domain by
  /// sampled splitters and runs that many partial merges concurrently on
  /// the pool, each writing its disjoint byte range of the output
  /// (byte-identical to the serial pass). Requires worker_threads > 0;
  /// 0/1 keep the last pass serial.
  size_t final_merge_threads = 1;

  /// Pool provenance. By default a sort with worker_threads > 0 borrows the
  /// process-wide Executor::Shared() pool — its size is the executor's
  /// capacity, and worker_threads then only switches the pool features on —
  /// so any number of concurrent sorts share one bounded worker set. Set
  /// dedicated_pool to spawn a private worker_threads-sized ThreadPool for
  /// this sort instead (the pre-executor model; isolates a sort's thread
  /// budget, e.g. for benchmarking specific pool sizes).
  bool dedicated_pool = false;

  /// Executor borrowed from when dedicated_pool is false; null means
  /// Executor::Shared(). Must outlive the sort.
  Executor* executor = nullptr;
};

/// Configuration of a complete external sort.
struct ExternalSortOptions {
  RunGenAlgorithm algorithm = RunGenAlgorithm::kTwoWayReplacementSelection;

  /// Memory budget in records for the run generation phase.
  size_t memory_records = 1 << 16;

  /// 2WRS tuning; `memory_records` above overrides its memory field.
  TwoWayOptions twrs;

  /// Merge fan-in (§6.1.1; the paper's experiments use 10).
  size_t fan_in = 10;

  /// Top-K selection (the LIMIT of an ORDER BY): when non-zero only
  /// `limit` records reach the output — the smallest (order == kAscending)
  /// or largest (kDescending) of the stream, written ascending-sorted
  /// either way. 0 sorts everything. Top-K sorts must write a whole file:
  /// SortIntoRange rejects a non-zero limit.
  uint64_t limit = 0;

  /// Which end of the key domain `limit` keeps. Ignored when limit == 0.
  SelectOrder order = SelectOrder::kAscending;

  /// Execution strategy for limit > 0. kAuto picks dual-heap selection
  /// when K fits `memory_records` and the run-pruning merge otherwise;
  /// the explicit values force a strategy (tests, benchmarks, and
  /// db_orderby use this to compare them on equal footing).
  TopKStrategy topk_strategy = TopKStrategy::kAuto;

  /// Directory for runs and intermediate merge files (created if missing).
  /// Every Sort call works inside a unique subdirectory of this, so
  /// concurrent sorts — even from different processes — never collide.
  std::string temp_dir = "/tmp/twrs_sort";

  /// I/O buffer per stream.
  size_t block_bytes = kDefaultBlockBytes;

  /// Which process-wide Env serves the engine's file I/O. kDefault keeps
  /// the Env the sorter was constructed with (tests inject MemEnv or
  /// SimDiskEnv this way); kPosix/kUring/kAuto *replace* it with the
  /// corresponding Env::Default backend. kUring fails the sort with
  /// NotSupported when the kernel or build lacks io_uring; kAuto degrades
  /// to posix silently. See ResolveIoBackend.
  IoBackend io_backend = IoBackend::kDefault;

  /// Keep run/intermediate files after sorting (for inspection).
  bool keep_temp_files = false;

  /// Pipelined/parallel execution knobs (serial by default).
  ParallelOptions parallel;

  /// Cooperative cancellation: when non-null, the run-generation and merge
  /// loops poll the token and the sort unwinds with Status::Cancelled —
  /// scratch files removed — shortly after it fires. Must outlive the
  /// sort; a fired token never resets, so use a fresh one per sort.
  const CancelToken* cancel = nullptr;

  /// Invoked once when the sort transitions from run generation to
  /// merging, with the (much smaller) record budget the merge phases still
  /// need. The SortService hooks this to downsize a job's MemoryGovernor
  /// lease mid-flight so queued jobs admit sooner. May be called from a
  /// pool thread; must be cheap and thread-safe.
  std::function<void(size_t merge_memory_records)> on_merge_begin;

  /// Live progress counters shared with the submitting layer. When
  /// non-null, run generation adds every ingested record, every merge
  /// pass adds its emitted records, the current phase advances as the
  /// pipeline moves, and (when progress_bytes is also true) the sorter's
  /// CountingEnv mirrors bytes read/written. Must outlive the sort.
  ProgressCounters* progress = nullptr;

  /// Mirror engine I/O bytes into `progress`. The sharded sorter turns
  /// this off for its per-shard sub-sorts: its own outer CountingEnv
  /// already mirrors every byte of every pass, and a second decorator
  /// layer would double-count.
  bool progress_bytes = true;

  /// Metrics registry receiving the per-phase latency histograms
  /// (sort.run_generation_seconds, sort.merge_planning_seconds,
  /// sort.final_merge_seconds) and the run/merge sink flush timings
  /// (run_sink.flush_seconds, merge_sink.flush_seconds). Null disables
  /// all histogram recording. Must outlive the sort.
  MetricsRegistry* metrics = nullptr;
};

/// Records the merge phase of a sort configured by `options` actually
/// keeps resident: one block-sized buffer per merge input stream (plus
/// read-ahead blocks) and one output buffer. The run-generation heaps —
/// the `memory_records` budget — are gone by then, which is what makes a
/// mid-sort lease downsize sound.
size_t MergePhaseMemoryRecords(const ExternalSortOptions& options);

/// Timing and volume breakdown of one sort, mirroring the measurements of
/// Chapter 6 (run generation time vs total time).
struct ExternalSortResult {
  RunGenStats run_gen;
  MergeStats merge;
  double run_gen_seconds = 0.0;
  double merge_seconds = 0.0;
  double total_seconds = 0.0;
  uint64_t output_records = 0;

  /// Strategy that actually executed: kDualHeap or kRunPruningMerge for a
  /// top-K sort (options.limit > 0), kAuto for a plain full sort.
  TopKStrategy topk_strategy = TopKStrategy::kAuto;

  /// Engine I/O volume: bytes moved through the sorter's Env (runs written
  /// and re-read, intermediate merges, final output). Reads of the input
  /// RecordSource are not included — the source owns its own I/O.
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
};

/// Two-phase external mergesort (Chapter 2): a pluggable run generation
/// phase (RS, 2WRS or Load-Sort-Store) followed by multi-pass fan-in-way
/// merging.
class ExternalSorter {
 public:
  /// Does not take ownership of `env`.
  ExternalSorter(Env* env, ExternalSortOptions options);

  /// Sorts `source` into the record file at `output_path`.
  Status Sort(RecordSource* source, const std::string& output_path,
              ExternalSortResult* result);

  /// Sorts `source` into the byte range `range` of the *existing* file at
  /// `output_path`: the final merge writes its records through positioned
  /// writes without truncating the file, and `range.length` must match the
  /// sorted byte volume exactly. This is how the sharded sorter lands each
  /// shard directly in the shared output with no concatenation pass. The
  /// caller owns the file's creation and its removal on failure.
  Status SortIntoRange(RecordSource* source, const std::string& output_path,
                       const MergeOutputRange& range,
                       ExternalSortResult* result);

  const ExternalSortOptions& options() const { return options_; }

 private:
  Status SortInternal(RecordSource* source, const std::string& output_path,
                      const MergeOutputRange& range,
                      ExternalSortResult* result);

  Env* env_;
  ExternalSortOptions options_;
};

/// Scans a record file, verifying it is sorted; returns its record count
/// and order-independent checksum for permutation checks.
Status VerifySortedFile(Env* env, const std::string& path, uint64_t* count,
                        KeyChecksum* checksum);

}  // namespace twrs

#endif  // TWRS_MERGE_EXTERNAL_SORTER_H_
