#ifndef TWRS_MERGE_POLYPHASE_H_
#define TWRS_MERGE_POLYPHASE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/run_sink.h"
#include "io/env.h"
#include "merge/merge_plan.h"
#include "util/status.h"

namespace twrs {

/// Run-count trace of a polyphase merge (§2.1.2, Table 2.1): starting from
/// a distribution of runs over tapes, each step performs k-way merges into
/// the empty tape until some input tape empties, which becomes the next
/// output tape. Returns the run counts per tape after each step, beginning
/// with the initial state, ending when one run remains.
std::vector<std::vector<uint64_t>> SimulatePolyphase(
    std::vector<uint64_t> initial_runs_per_tape);

/// File-backed polyphase merge over `num_tapes` simulated tapes. Input runs
/// are distributed round-robin over num_tapes - 1 tapes, then merged with
/// the polyphase schedule until a single run is written to `output_path`.
/// Requires num_tapes >= 3.
Status PolyphaseMergeRuns(Env* env, std::vector<RunInfo> runs,
                          size_t num_tapes, const MergeOptions& options,
                          const std::string& output_path, MergeStats* stats);

}  // namespace twrs

#endif  // TWRS_MERGE_POLYPHASE_H_
