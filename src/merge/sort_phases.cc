#include "merge/sort_phases.h"

#include <algorithm>
#include <utility>

#include "core/run_generator.h"
#include "exec/executor.h"
#include "io/uring_env.h"
#include "simd/dispatch.h"
#include "util/stopwatch.h"

namespace twrs {

namespace {

/// Truncates the input stream once the token fires, so run generation
/// stops consuming promptly even during a fill phase that emits nothing.
/// The sink wrapper below turns the cancellation into a Status, so the
/// early EOF cannot masquerade as a short-but-successful sort.
class CancellableSource : public RecordSource {
 public:
  CancellableSource(RecordSource* base, const CancelToken* cancel)
      : base_(base), cancel_(cancel) {}

  bool Next(Key* key) override {
    if (IsCancelled(cancel_)) return false;
    return base_->Next(key);
  }

 private:
  RecordSource* base_;
  const CancelToken* cancel_;
};

/// Forwards to the real sink but fails BeginRun/Append once the token
/// fires — the per-record cancellation point of the run-generation loop.
/// EndRun/Finish still forward so the base sink's protocol state stays
/// consistent while the error unwinds.
class CancellableSink : public RunSink {
 public:
  CancellableSink(RunSink* base, const CancelToken* cancel)
      : base_(base), cancel_(cancel) {}

  Status BeginRun() override {
    if (IsCancelled(cancel_)) return CancelledStatus();
    return base_->BeginRun();
  }

  Status Append(RunStream stream, Key key) override {
    if (IsCancelled(cancel_)) return CancelledStatus();
    return base_->Append(stream, key);
  }

  Status EndRun() override {
    Status s = base_->EndRun();
    // Mirror only the newly completed run, so FillStatsFromSink works on
    // the wrapper without an O(runs^2) re-copy across the generation.
    if (base_->runs().size() > runs_.size()) {
      runs_.push_back(base_->runs().back());
    }
    return s;
  }

  Status Finish() override { return base_->Finish(); }

 private:
  static Status CancelledStatus() {
    return Status::Cancelled("sort cancelled during run generation");
  }

  RunSink* base_;
  const CancelToken* cancel_;
};

/// Counts the records run generation actually consumes, batched so the
/// per-record cost is a local increment; the destructor flushes the
/// remainder on every exit path (EOF, cancel truncation, error unwind).
class ProgressSource : public RecordSource {
 public:
  static constexpr uint64_t kBatch = 1024;

  ProgressSource(RecordSource* base, ProgressCounters* progress)
      : base_(base), progress_(progress) {}

  ~ProgressSource() override {
    if (pending_ > 0) progress_->AddRecordsIngested(pending_);
  }

  bool Next(Key* key) override {
    if (!base_->Next(key)) return false;
    if (++pending_ == kBatch) {
      progress_->AddRecordsIngested(kBatch);
      pending_ = 0;
    }
    return true;
  }

 private:
  RecordSource* base_;
  ProgressCounters* progress_;
  uint64_t pending_ = 0;
};

}  // namespace

Status PrepareSortContext(Env* env, const ExternalSortOptions& options,
                          SortContext* context) {
  context->env = env;
  context->options = &options;
  context->cancel = options.cancel;
  context->progress = options.progress;
  context->metrics = options.metrics;
  if (IsCancelled(context->cancel)) {
    return Status::Cancelled("sort cancelled before it started");
  }
  context->sort_dir = options.temp_dir + "/" + UniqueScratchDirName("sort");
  TWRS_RETURN_IF_ERROR(env->CreateDirIfMissing(context->sort_dir));

  const ParallelOptions& parallel = options.parallel;
  if (parallel.worker_threads > 0) {
    if (parallel.dedicated_pool) {
      context->owned_pool =
          std::make_unique<ThreadPool>(parallel.worker_threads);
      context->pool = context->owned_pool.get();
    } else {
      Executor* executor = parallel.executor != nullptr
                               ? parallel.executor
                               : &Executor::Shared();
      context->pool = executor->pool();
    }
  }
  return Status::OK();
}

Status RunGenerationPhase::Run(SortContext* context) {
  const ExternalSortOptions& options = *context->options;
  if (context->progress != nullptr) {
    context->progress->AdvancePhase(SortProgressPhase::kRunGeneration);
  }
  std::unique_ptr<RunGenerator> generator = MakeRunGenerator(
      options.algorithm, options.memory_records, options.twrs);

  FileRunSinkOptions sink_options;
  sink_options.block_bytes = options.block_bytes;
  sink_options.pool = context->pool;
  if (context->metrics != nullptr) {
    sink_options.flush_histogram =
        context->metrics->Histogram("run_sink.flush_seconds");
  }
  FileRunSink sink(context->env, context->sort_dir, "sort", sink_options);

  CancellableSource cancellable_source(source_, context->cancel);
  CancellableSink cancellable_sink(&sink, context->cancel);
  RecordSource* source = source_;
  RunSink* out = &sink;
  if (context->cancel != nullptr) {
    source = &cancellable_source;
    out = &cancellable_sink;
  }
  // Outermost wrapper, so only records the generator really received are
  // counted (a fired cancel token truncates the inner source first).
  std::unique_ptr<ProgressSource> progress_source;
  if (context->progress != nullptr) {
    progress_source =
        std::make_unique<ProgressSource>(source, context->progress);
    source = progress_source.get();
  }

  Stopwatch watch;
  TWRS_RETURN_IF_ERROR(
      generator->Generate(source, out, &context->result.run_gen));
  if (IsCancelled(context->cancel)) {
    // The token fired after the last sink call (e.g. during the final
    // heap drain): the truncated input made generation "succeed", but the
    // job is cancelled all the same.
    return Status::Cancelled("sort cancelled during run generation");
  }
  context->result.run_gen_seconds = watch.ElapsedSeconds();
  progress_source.reset();  // flush the batched remainder before returning
  if (context->metrics != nullptr) {
    context->metrics->Histogram("sort.run_generation_seconds")
        ->RecordSeconds(context->result.run_gen_seconds);
  }
  context->runs = sink.runs();
  if (options.on_merge_begin) {
    // The heaps are gone; from here on the sort holds only merge buffers.
    // Lets a governor reclaim the difference while the merge runs.
    options.on_merge_begin(MergePhaseMemoryRecords(options));
  }
  return Status::OK();
}

Status MergePlanningPhase::Run(SortContext* context) {
  const ExternalSortOptions& options = *context->options;
  if (context->progress != nullptr) {
    context->progress->AdvancePhase(SortProgressPhase::kMergePlanning);
  }
  Stopwatch watch;
  MergeOptions plan;
  plan.fan_in = options.fan_in;
  plan.block_bytes = options.block_bytes;
  plan.temp_dir = context->sort_dir;
  plan.temp_prefix = "sort";
  plan.remove_inputs = !options.keep_temp_files;
  plan.pool = context->pool;
  // Prefetching runs on dedicated pump threads, so it is independent of
  // the pool; only the pool-dispatched leaf merges require workers.
  plan.prefetch_blocks = options.parallel.prefetch_blocks;
  plan.parallel_leaf_merges =
      context->pool != nullptr && options.parallel.parallel_leaf_merges;
  // Partitioned final merges need workers to run on; without a pool the
  // knob quietly degrades to the serial pass.
  plan.final_merge_threads =
      context->pool != nullptr ? options.parallel.final_merge_threads : 1;
  plan.output_range = context->output_range;
  plan.cancel = context->cancel;
  plan.progress = context->progress;
  // Top-K (run-pruning strategy): every merge pass keeps only the limit
  // records that can reach the output — the stream's smallest for an
  // ascending selection, its largest for a descending one.
  plan.limit = options.limit;
  plan.limit_last = options.order == SelectOrder::kDescending;
  if (context->metrics != nullptr) {
    plan.flush_histogram =
        context->metrics->Histogram("merge_sink.flush_seconds");
    context->metrics->Histogram("sort.merge_planning_seconds")
        ->RecordSeconds(watch.ElapsedSeconds());
  }
  context->merge_plan = plan;
  return Status::OK();
}

Status FinalMergePhase::Run(SortContext* context) {
  const ExternalSortOptions& options = *context->options;
  if (context->progress != nullptr) {
    context->progress->AdvancePhase(SortProgressPhase::kFinalMerge);
  }
  Stopwatch watch;
  TWRS_RETURN_IF_ERROR(MergeRuns(context->env, std::move(context->runs),
                                 context->merge_plan, output_path_,
                                 &context->result.merge));
  context->result.merge_seconds = watch.ElapsedSeconds();
  if (context->metrics != nullptr) {
    context->metrics->Histogram("sort.final_merge_seconds")
        ->RecordSeconds(context->result.merge_seconds);
    if (options.limit > 0) {
      context->metrics->Counter("select.run_pruned_merges")->Increment();
      context->metrics->Counter("select.runs_pruned")
          ->Increment(context->result.merge.runs_pruned);
      context->metrics->Counter("select.records_pruned")
          ->Increment(context->result.merge.records_pruned);
    }
    // Mirror the per-kernel dispatch counters so the job's registry shows
    // which simd paths this sort actually executed, and the io_uring
    // submission/completion counters for sorts on the uring backend.
    simd::PublishKernelCounters(context->metrics);
    PublishIoUringCounters(context->metrics);
  }
  const uint64_t total = context->result.run_gen.total_records;
  context->result.output_records =
      options.limit > 0 ? std::min<uint64_t>(options.limit, total) : total;
  return Status::OK();
}

}  // namespace twrs
