#include "merge/sort_phases.h"

#include <utility>

#include "core/run_generator.h"
#include "exec/executor.h"
#include "util/stopwatch.h"

namespace twrs {

Status PrepareSortContext(Env* env, const ExternalSortOptions& options,
                          SortContext* context) {
  context->env = env;
  context->options = &options;
  context->sort_dir = options.temp_dir + "/" + UniqueScratchDirName("sort");
  TWRS_RETURN_IF_ERROR(env->CreateDirIfMissing(context->sort_dir));

  const ParallelOptions& parallel = options.parallel;
  if (parallel.worker_threads > 0) {
    if (parallel.dedicated_pool) {
      context->owned_pool =
          std::make_unique<ThreadPool>(parallel.worker_threads);
      context->pool = context->owned_pool.get();
    } else {
      Executor* executor = parallel.executor != nullptr
                               ? parallel.executor
                               : &Executor::Shared();
      context->pool = executor->pool();
    }
  }
  return Status::OK();
}

Status RunGenerationPhase::Run(SortContext* context) {
  const ExternalSortOptions& options = *context->options;
  std::unique_ptr<RunGenerator> generator = MakeRunGenerator(
      options.algorithm, options.memory_records, options.twrs);

  FileRunSinkOptions sink_options;
  sink_options.block_bytes = options.block_bytes;
  sink_options.pool = context->pool;
  FileRunSink sink(context->env, context->sort_dir, "sort", sink_options);

  Stopwatch watch;
  TWRS_RETURN_IF_ERROR(
      generator->Generate(source_, &sink, &context->result.run_gen));
  context->result.run_gen_seconds = watch.ElapsedSeconds();
  context->runs = sink.runs();
  return Status::OK();
}

Status MergePlanningPhase::Run(SortContext* context) {
  const ExternalSortOptions& options = *context->options;
  MergeOptions plan;
  plan.fan_in = options.fan_in;
  plan.block_bytes = options.block_bytes;
  plan.temp_dir = context->sort_dir;
  plan.temp_prefix = "sort";
  plan.remove_inputs = !options.keep_temp_files;
  plan.pool = context->pool;
  // Prefetching runs on dedicated pump threads, so it is independent of
  // the pool; only the pool-dispatched leaf merges require workers.
  plan.prefetch_blocks = options.parallel.prefetch_blocks;
  plan.parallel_leaf_merges =
      context->pool != nullptr && options.parallel.parallel_leaf_merges;
  context->merge_plan = plan;
  return Status::OK();
}

Status FinalMergePhase::Run(SortContext* context) {
  Stopwatch watch;
  TWRS_RETURN_IF_ERROR(MergeRuns(context->env, std::move(context->runs),
                                 context->merge_plan, output_path_,
                                 &context->result.merge));
  context->result.merge_seconds = watch.ElapsedSeconds();
  context->result.output_records = context->result.run_gen.total_records;
  return Status::OK();
}

}  // namespace twrs
