#include "merge/kway_merge.h"

#include <algorithm>
#include <limits>

#include "merge/loser_tree.h"
#include "simd/dispatch.h"
#include "simd/kernels.h"

namespace twrs {

RunCursor::RunCursor(Env* env, RunInfo run, size_t block_bytes,
                     size_t prefetch_blocks)
    : env_(env),
      run_(std::move(run)),
      block_bytes_(block_bytes),
      prefetch_blocks_(prefetch_blocks) {}

Status RunCursor::Init() {
  return InitSlice(0, std::numeric_limits<uint64_t>::max());
}

Status RunCursor::InitSlice(uint64_t skip, uint64_t limit) {
  segment_ = 0;
  valid_ = false;
  forward_.reset();
  reverse_.reset();
  skip_remaining_ = skip;
  limit_remaining_ = limit;
  return Advance();
}

Status RunCursor::Next() { return Advance(); }

Status RunCursor::Advance() {
  if (limit_remaining_ == 0) {
    valid_ = false;
    return Status::OK();
  }
  for (;;) {
    // Pull from the currently open segment reader, if any.
    bool eof = true;
    if (forward_ != nullptr) {
      TWRS_RETURN_IF_ERROR(forward_->Next(&current_, &eof));
    } else if (reverse_ != nullptr) {
      TWRS_RETURN_IF_ERROR(reverse_->Next(&current_, &eof));
    }
    if (!eof) {
      valid_ = true;
      --limit_remaining_;
      return Status::OK();
    }
    forward_.reset();
    reverse_.reset();
    if (segment_ == run_.segments.size()) {
      valid_ = false;
      return Status::OK();
    }
    const RunSegment& seg = run_.segments[segment_++];
    if (seg.count == 0) continue;
    if (skip_remaining_ >= seg.count) {
      // The slice starts past this whole segment: account for it from its
      // metadata count without opening any file.
      skip_remaining_ -= seg.count;
      continue;
    }
    if (seg.reverse) {
      reverse_ = std::make_unique<ReverseRunReader>(env_, seg.path,
                                                    seg.num_files,
                                                    block_bytes_);
      TWRS_RETURN_IF_ERROR(reverse_->status());
      if (skip_remaining_ > 0) {
        TWRS_RETURN_IF_ERROR(reverse_->SkipRecords(skip_remaining_));
      }
    } else {
      std::unique_ptr<SequentialFile> file;
      TWRS_RETURN_IF_ERROR(env_->NewSequentialFile(seg.path, &file));
      if (skip_remaining_ > 0) {
        // Position before wrapping: a prefetcher starts pumping from its
        // construction point, so the skip must land on the raw handle.
        TWRS_RETURN_IF_ERROR(file->Skip(skip_remaining_ * kRecordBytes));
      }
      if (prefetch_blocks_ > 0 && !env_->io_capabilities().async_reads) {
        // A natively async backend (IoUringEnv) already keeps read-ahead
        // blocks in flight; a pump thread on top would only add a copy.
        file = std::make_unique<PrefetchingSequentialFile>(
            std::move(file), block_bytes_, prefetch_blocks_);
      }
      forward_ = std::make_unique<RecordReader>(std::move(file),
                                                block_bytes_);
      TWRS_RETURN_IF_ERROR(forward_->status());
    }
    skip_remaining_ = 0;
  }
}

namespace {

/// Batches progress increments so the merge loop pays one local add per
/// record and one atomic add per kBatch; the destructor flushes the
/// remainder on every exit path (success, cancel, error unwind).
class BatchedMergeProgress {
 public:
  static constexpr uint64_t kBatch = 1024;

  explicit BatchedMergeProgress(ProgressCounters* progress)
      : progress_(progress) {}

  ~BatchedMergeProgress() {
    if (progress_ != nullptr && pending_ > 0) {
      progress_->AddRecordsMerged(pending_);
    }
  }

  void Tick() {
    if (progress_ == nullptr) return;
    if (++pending_ == kBatch) {
      progress_->AddRecordsMerged(kBatch);
      pending_ = 0;
    }
  }

 private:
  ProgressCounters* progress_;
  uint64_t pending_ = 0;
};

/// Fan-in at or below which a flat min-scan replaces the loser tree. At
/// these widths the whole candidate set fits in one or two vector loads,
/// so a branchless simd::MinIndexN beats the tree's pointer chasing.
constexpr size_t kSmallMergeFanIn = 8;

/// Small-fan-in merge: live cursors' heads sit in a flat array scanned by
/// MinIndexN each round. Ties resolve to the lowest array index and
/// exhausted ways are compacted out preserving order, so the emitted key
/// sequence is byte-identical to the loser tree's (stable lowest-way
/// tie-break, see loser_tree.h).
Status MergeSmallFanIn(std::vector<std::unique_ptr<RunCursor>>* cursors,
                       const CancelToken* cancel,
                       const std::function<Status(Key)>& emit,
                       ProgressCounters* progress,
                       const MergeWindow& window) {
  Key keys[kSmallMergeFanIn];
  RunCursor* ways[kSmallMergeFanIn];
  size_t live = 0;
  for (auto& cursor : *cursors) {
    if (cursor->valid()) {
      keys[live] = cursor->key();
      ways[live] = cursor.get();
      ++live;
    }
  }
  // Resolve dispatch once and batch the call counters: one atomic add for
  // the whole merge instead of one per selected record.
  const simd::DispatchLevel level = simd::ActiveDispatchLevel();
  const auto min_index = level == simd::DispatchLevel::kAvx2
                             ? simd::internal::MinIndexNAvx2
                             : simd::internal::MinIndexNScalar;
  uint64_t selections = 0;
  uint64_t to_skip = window.skip;
  uint64_t remaining = window.limit;
  Status status = Status::OK();
  {
    BatchedMergeProgress batched(progress);
    while (live > 0 && remaining > 0) {
      if (IsCancelled(cancel)) {
        status = Status::Cancelled("merge cancelled");
        break;
      }
      const size_t idx = min_index(keys, live);
      ++selections;
      if (to_skip > 0) {
        --to_skip;
      } else {
        status = emit(keys[idx]);
        if (!status.ok()) break;
        batched.Tick();
        --remaining;
      }
      status = ways[idx]->Next();
      if (!status.ok()) break;
      if (ways[idx]->valid()) {
        keys[idx] = ways[idx]->key();
      } else {
        for (size_t j = idx + 1; j < live; ++j) {
          keys[j - 1] = keys[j];
          ways[j - 1] = ways[j];
        }
        --live;
      }
    }
  }
  simd::AddKernelCalls(simd::Kernel::kMinIndex, level, selections);
  return status;
}

}  // namespace

Status MergeRunCursors(std::vector<std::unique_ptr<RunCursor>>* cursors,
                       const CancelToken* cancel,
                       const std::function<Status(Key)>& emit,
                       ProgressCounters* progress, const MergeWindow& window) {
  const size_t k = cursors->size();
  if (k <= kSmallMergeFanIn) {
    return MergeSmallFanIn(cursors, cancel, emit, progress, window);
  }
  LoserTree tree(k);
  for (size_t i = 0; i < k; ++i) {
    if ((*cursors)[i]->valid()) tree.SetInitial(i, (*cursors)[i]->key());
  }
  tree.Build();
  uint64_t to_skip = window.skip;
  uint64_t remaining = window.limit;
  BatchedMergeProgress batched(progress);
  while (!tree.Exhausted() && remaining > 0) {
    if (IsCancelled(cancel)) {
      return Status::Cancelled("merge cancelled");
    }
    const size_t w = tree.WinnerIndex();
    if (to_skip > 0) {
      --to_skip;
    } else {
      TWRS_RETURN_IF_ERROR(emit(tree.WinnerKey()));
      batched.Tick();
      --remaining;
    }
    TWRS_RETURN_IF_ERROR((*cursors)[w]->Next());
    if ((*cursors)[w]->valid()) {
      tree.ReplaceWinner((*cursors)[w]->key());
    } else {
      tree.RetireWinner();
    }
  }
  return Status::OK();
}

Status KWayMerge(Env* env, const std::vector<RunInfo>& runs,
                 const MergeIoOptions& io,
                 const std::function<Status(Key)>& emit) {
  std::vector<std::unique_ptr<RunCursor>> cursors;
  cursors.reserve(runs.size());
  for (const RunInfo& run : runs) {
    cursors.push_back(std::make_unique<RunCursor>(env, run, io.block_bytes,
                                                  io.prefetch_blocks));
    TWRS_RETURN_IF_ERROR(cursors.back()->Init());
  }
  return MergeRunCursors(&cursors, io.cancel, emit, io.progress);
}

Status KWayMerge(Env* env, const std::vector<RunInfo>& runs,
                 size_t block_bytes,
                 const std::function<Status(Key)>& emit) {
  MergeIoOptions io;
  io.block_bytes = block_bytes;
  return KWayMerge(env, runs, io, emit);
}

Status MergeCursorsToSink(std::vector<std::unique_ptr<RunCursor>>* cursors,
                          const MergeIoOptions& io, const MergeWindow& window,
                          MergeSink* sink, RunInfo* out) {
  RecordWriter writer(std::make_unique<MergeSinkFile>(sink), io.block_bytes);
  TWRS_RETURN_IF_ERROR(writer.status());
  bool first = true;
  Key min_key = 0;
  Key max_key = 0;
  TWRS_RETURN_IF_ERROR(MergeRunCursors(
      cursors, io.cancel,
      [&](Key key) {
        if (first) {
          min_key = key;
          first = false;
        }
        max_key = key;
        return writer.Append(key);
      },
      io.progress, window));
  TWRS_RETURN_IF_ERROR(writer.Finish());
  if (out != nullptr) {
    RunInfo info;
    RunSegment seg;
    seg.reverse = false;
    seg.count = writer.count();
    info.segments.push_back(std::move(seg));
    info.length = writer.count();
    info.min_key = min_key;
    info.max_key = max_key;
    *out = std::move(info);
  }
  return Status::OK();
}

Status KWayMergeToSink(Env* env, const std::vector<RunInfo>& runs,
                       const MergeIoOptions& io, MergeSink* sink,
                       RunInfo* out) {
  std::vector<std::unique_ptr<RunCursor>> cursors;
  cursors.reserve(runs.size());
  for (const RunInfo& run : runs) {
    cursors.push_back(std::make_unique<RunCursor>(env, run, io.block_bytes,
                                                  io.prefetch_blocks));
    TWRS_RETURN_IF_ERROR(cursors.back()->Init());
  }
  return MergeCursorsToSink(&cursors, io, MergeWindow(), sink, out);
}

Status KWayMergeToFile(Env* env, const std::vector<RunInfo>& runs,
                       const MergeIoOptions& io,
                       const std::string& output_path, RunInfo* out) {
  std::unique_ptr<MergeSink> sink;
  TWRS_RETURN_IF_ERROR(MakeAppendMergeSink(env, output_path, io.pool,
                                           io.async_buffer_bytes, &sink,
                                           io.flush_histogram,
                                           io.sync_output));
  TWRS_RETURN_IF_ERROR(KWayMergeToSink(env, runs, io, sink.get(), out));
  if (out != nullptr) out->segments[0].path = output_path;
  return Status::OK();
}

Status KWayMergeLimitToFile(Env* env, const std::vector<RunInfo>& runs,
                            const MergeIoOptions& io, uint64_t limit,
                            bool take_last, const std::string& output_path,
                            RunInfo* out) {
  if (limit == 0) return KWayMergeToFile(env, runs, io, output_path, out);
  std::vector<std::unique_ptr<RunCursor>> cursors;
  cursors.reserve(runs.size());
  uint64_t sliced_total = 0;
  for (const RunInfo& run : runs) {
    // Only a run's own first (or last) `limit` records can appear in the
    // kept window of the merged stream: each is preceded (followed) within
    // its run by enough records to push the rest out. The clamp is pure
    // segment metadata — the dropped prefix/suffix is never read.
    const uint64_t keep = std::min<uint64_t>(run.length, limit);
    if (keep == 0) continue;
    const uint64_t skip = take_last ? run.length - keep : 0;
    cursors.push_back(std::make_unique<RunCursor>(env, run, io.block_bytes,
                                                  io.prefetch_blocks));
    TWRS_RETURN_IF_ERROR(cursors.back()->InitSlice(skip, keep));
    sliced_total += keep;
  }
  MergeWindow window;
  window.limit = limit;
  if (take_last && sliced_total > limit) window.skip = sliced_total - limit;
  std::unique_ptr<MergeSink> sink;
  TWRS_RETURN_IF_ERROR(MakeAppendMergeSink(env, output_path, io.pool,
                                           io.async_buffer_bytes, &sink,
                                           io.flush_histogram,
                                           io.sync_output));
  TWRS_RETURN_IF_ERROR(MergeCursorsToSink(&cursors, io, window, sink.get(),
                                          out));
  if (out != nullptr) out->segments[0].path = output_path;
  return Status::OK();
}

Status KWayMergeToFile(Env* env, const std::vector<RunInfo>& runs,
                       size_t block_bytes, const std::string& output_path,
                       RunInfo* out) {
  MergeIoOptions io;
  io.block_bytes = block_bytes;
  return KWayMergeToFile(env, runs, io, output_path, out);
}

Status RemoveRunFiles(Env* env, const RunInfo& run) {
  for (const RunSegment& seg : run.segments) {
    if (seg.reverse) {
      for (uint64_t f = 0; f < seg.num_files; ++f) {
        TWRS_RETURN_IF_ERROR(
            env->RemoveFile(ReverseRunWriter::FileName(seg.path, f)));
      }
    } else {
      TWRS_RETURN_IF_ERROR(env->RemoveFile(seg.path));
    }
  }
  return Status::OK();
}

}  // namespace twrs
