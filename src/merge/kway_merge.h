#ifndef TWRS_MERGE_KWAY_MERGE_H_
#define TWRS_MERGE_KWAY_MERGE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/record.h"
#include "core/run_sink.h"
#include "exec/async_io.h"
#include "exec/thread_pool.h"
#include "io/env.h"
#include "io/merge_sink.h"
#include "io/record_io.h"
#include "io/reverse_run_file.h"
#include "obs/progress.h"
#include "util/cancel.h"
#include "util/status.h"

namespace twrs {

/// I/O configuration of one k-way merge.
struct MergeIoOptions {
  /// Read/write buffer per stream.
  size_t block_bytes = kDefaultBlockBytes;

  /// Blocks of read-ahead per forward input stream (0 = synchronous reads).
  /// Reverse-format segments use positioned reads and stay synchronous.
  size_t prefetch_blocks = 0;

  /// When non-null, the merge output is written through an AsyncWritableFile
  /// flushed on this pool, overlapping loser-tree work with output I/O.
  ThreadPool* pool = nullptr;

  /// Size of each half of the output writer's async double buffer.
  size_t async_buffer_bytes = kDefaultAsyncBufferBytes;

  /// Cooperative cancellation: when non-null, the merge loop polls the
  /// token every record and unwinds with Status::Cancelled once it fires.
  /// Must outlive the merge.
  const CancelToken* cancel = nullptr;

  /// Live progress: when non-null, the merge loop adds every emitted
  /// record (in batches, to keep the hot path cheap) to
  /// `progress->AddRecordsMerged`. Must outlive the merge.
  ProgressCounters* progress = nullptr;

  /// When non-null, the wall time of every flush of the merge output is
  /// recorded here (see MakeAppendMergeSink/RangeMergeSink). Must outlive
  /// the merge.
  LatencyHistogram* flush_histogram = nullptr;

  /// Force the merge output to stable storage (Sync) before it is closed.
  /// Set only on the final pass writing the user-visible output;
  /// intermediate runs are re-read and deleted, so syncing them would buy
  /// nothing but write stalls.
  bool sync_output = false;
};

/// Streaming cursor over one generated run: iterates its segments in order,
/// reading forward segments with RecordReader and decreasing segments
/// through the Appendix-A reverse reader, yielding a single non-decreasing
/// key sequence. With `prefetch_blocks` > 0, forward segments read through a
/// PrefetchingSequentialFile that keeps that many blocks in flight.
class RunCursor {
 public:
  RunCursor(Env* env, RunInfo run, size_t block_bytes = kDefaultBlockBytes,
            size_t prefetch_blocks = 0);

  /// Opens the first segment and positions on the first record.
  Status Init();

  /// Positions on record `skip` of the run (0-based across segments) and
  /// caps iteration at `limit` records — the ranged cursor of a partial
  /// merge. Whole segments before the slice are skipped using their
  /// metadata counts without opening them; within the boundary segment,
  /// forward files skip by byte offset and reverse streams through
  /// ReverseRunReader::SkipRecords, so positioning costs header reads and
  /// seeks, not a prefix scan.
  Status InitSlice(uint64_t skip, uint64_t limit);

  bool valid() const { return valid_; }

  /// Current key. Requires valid().
  Key key() const { return current_; }

  /// Advances to the next record; valid() turns false at the end.
  Status Next();

  const RunInfo& run() const { return run_; }

 private:
  Status Advance();

  Env* env_;
  RunInfo run_;
  size_t block_bytes_;
  size_t prefetch_blocks_;
  size_t segment_ = 0;
  std::unique_ptr<RecordReader> forward_;
  std::unique_ptr<ReverseRunReader> reverse_;
  uint64_t skip_remaining_ = 0;
  uint64_t limit_remaining_ = 0;
  Key current_ = 0;
  bool valid_ = false;
};

/// No-limit sentinel of MergeWindow: "emit until every cursor drains".
inline constexpr uint64_t kMergeNoLimit = ~uint64_t{0};

/// Contiguous window of a merged stream: drop the first `skip` records of
/// the merge order, then emit at most `limit`. The merge loop stops dead
/// once the window is served — with a limit of K, a top-K merge does k-way
/// work proportional to skip+K, not to the input volume. Skipped records
/// are merged (their cursors advance) but never reach emit, the writer, or
/// progress counters. The default window is the whole stream.
struct MergeWindow {
  uint64_t skip = 0;
  uint64_t limit = kMergeNoLimit;

  bool whole() const { return skip == 0 && limit == kMergeNoLimit; }
};

/// Runs the loser tree over already-initialized cursors, emitting the
/// merged non-decreasing key stream. The shared core of KWayMerge and the
/// partitioned final merge's ranged partial merges. Polls `cancel` (when
/// non-null) every record. A non-null `progress` receives every emitted
/// record via AddRecordsMerged, batched so the per-record cost is a local
/// increment; the remainder is flushed on every exit path. `window`
/// restricts emission to a slice of the merge order (top-K and clamped
/// partition merges); both the small-fan-in and loser-tree paths honor it.
Status MergeRunCursors(std::vector<std::unique_ptr<RunCursor>>* cursors,
                       const CancelToken* cancel,
                       const std::function<Status(Key)>& emit,
                       ProgressCounters* progress = nullptr,
                       const MergeWindow& window = MergeWindow());

/// Merges `runs` into a single non-decreasing stream delivered to `emit`
/// (§2.1.2, k-way merge over a loser tree). `io.block_bytes` is the read
/// buffer per run — the per-run merge buffer of the paper's setup.
Status KWayMerge(Env* env, const std::vector<RunInfo>& runs,
                 const MergeIoOptions& io,
                 const std::function<Status(Key)>& emit);

/// Synchronous-I/O shorthand for the overload above.
Status KWayMerge(Env* env, const std::vector<RunInfo>& runs,
                 size_t block_bytes,
                 const std::function<Status(Key)>& emit);

/// Merges `runs` through the loser tree into `sink` (record-encoded,
/// block-buffered). Finishes the sink, so a RangeMergeSink's exact-fill
/// check runs before this returns. `*out` (if non-null) receives the
/// record count and key bounds; its segment path is left empty for the
/// caller, who knows the backing file.
Status KWayMergeToSink(Env* env, const std::vector<RunInfo>& runs,
                       const MergeIoOptions& io, MergeSink* sink,
                       RunInfo* out);

/// Merges already-initialized (possibly sliced) cursors into `sink`,
/// emitting only `window` of the merge order. The record-encoding core
/// shared by KWayMergeToSink, the limit-aware merges, and the pruned
/// final merge; same sink/out contract as KWayMergeToSink.
Status MergeCursorsToSink(std::vector<std::unique_ptr<RunCursor>>* cursors,
                          const MergeIoOptions& io, const MergeWindow& window,
                          MergeSink* sink, RunInfo* out);

/// Top-K merge pass: merges `runs` into `output_path` keeping only the
/// first (take_last = false) or last (take_last = true) `limit` records of
/// the merged stream. Before merging, each input cursor is clamped to the
/// `limit`-record prefix (or suffix) of its run using segment metadata
/// only — no record of a run beyond its own first/last K can survive any
/// superset merge, so the rest is never read. A limit of 0 means no limit
/// (plain KWayMergeToFile). Intermediate merge passes of a limited sort
/// use this, so every pass writes at most `limit` records.
Status KWayMergeLimitToFile(Env* env, const std::vector<RunInfo>& runs,
                            const MergeIoOptions& io, uint64_t limit,
                            bool take_last, const std::string& output_path,
                            RunInfo* out);

/// Convenience overload merging into a record file at `output_path`
/// through an AppendMergeSink (async-flushed when io.pool is set);
/// returns the resulting single run through `*out` if non-null.
Status KWayMergeToFile(Env* env, const std::vector<RunInfo>& runs,
                       const MergeIoOptions& io,
                       const std::string& output_path, RunInfo* out);

/// Synchronous-I/O shorthand for the overload above.
Status KWayMergeToFile(Env* env, const std::vector<RunInfo>& runs,
                       size_t block_bytes, const std::string& output_path,
                       RunInfo* out);

/// Deletes every physical file of a run (reverse segments span several).
Status RemoveRunFiles(Env* env, const RunInfo& run);

}  // namespace twrs

#endif  // TWRS_MERGE_KWAY_MERGE_H_
