#ifndef TWRS_MERGE_MERGE_PLAN_H_
#define TWRS_MERGE_MERGE_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/run_sink.h"
#include "exec/thread_pool.h"
#include "io/env.h"
#include "io/record_io.h"
#include "merge/partitioned_merge.h"
#include "obs/latency_histogram.h"
#include "obs/progress.h"
#include "util/cancel.h"
#include "util/status.h"

namespace twrs {

/// Options for the multi-pass merge phase (§2.1.2 / §6.1.1).
struct MergeOptions {
  /// Runs merged simultaneously per step (the paper measures an optimum of
  /// 10 on its disk, Fig 6.1).
  size_t fan_in = 10;

  /// Read/write buffer per stream.
  size_t block_bytes = kDefaultBlockBytes;

  /// Directory for intermediate runs.
  std::string temp_dir = ".";

  /// Name prefix for intermediate runs.
  std::string temp_prefix = "merge";

  /// Delete input and intermediate runs once consumed.
  bool remove_inputs = true;

  /// Execution pool for the parallel knobs below; null means fully serial.
  /// Must outlive the merge. The Env must then be safe for concurrent file
  /// creation/removal (PosixEnv, MemEnv and SimDiskEnv all are).
  ThreadPool* pool = nullptr;

  /// Read-ahead blocks per forward input stream (0 = synchronous reads).
  size_t prefetch_blocks = 0;

  /// Dispatch independent same-level intermediate merges onto `pool`
  /// concurrently. Batch composition matches the serial schedule exactly,
  /// so stats and output are identical to a serial merge.
  bool parallel_leaf_merges = false;

  /// Cooperative cancellation: polled between merge steps and, through
  /// MergeIoOptions, every record inside each k-way merge. Must outlive
  /// the merge.
  const CancelToken* cancel = nullptr;

  /// Partitions of the *final* merge step. Values > 1 (with a pool) split
  /// the key domain by sampled splitters and run that many partial
  /// loser-tree merges concurrently, each writing its disjoint byte range
  /// of the output through a RangeMergeSink — byte-identical to the serial
  /// pass, since records are bare keys and the sorted stream is unique.
  /// 0 and 1 keep the final pass serial. Stats are unaffected: the final
  /// pass still counts as one merge step writing every record once.
  size_t final_merge_threads = 1;

  /// Splitter sampling knobs of the partitioned final merge.
  size_t final_sample_size = 256;
  uint64_t final_sample_seed = 1;

  /// Output placement of the final step. Default: append-create
  /// `output_path`. Positioned mode writes into the caller-assigned byte
  /// range of the *existing* output without truncating it — how each
  /// shard's merge lands directly in the sharded sorter's shared output.
  MergeOutputRange output_range;

  /// Force the final output to stable storage (Sync) before it is closed,
  /// closing the durability gap between "sort returned OK" and "the page
  /// cache got around to writing". Applies to the final pass only;
  /// intermediate runs are scratch and never synced. No-op on MemEnv and
  /// SimDiskEnv.
  bool sync_output = true;

  /// Live progress: every record emitted by any merge pass is added (in
  /// batches) to `progress->AddRecordsMerged`. Must outlive the merge.
  ProgressCounters* progress = nullptr;

  /// When non-null, every flush of a merge output file records its wall
  /// time here. Must outlive the merge.
  LatencyHistogram* flush_histogram = nullptr;

  /// Top-K: when non-zero every merge pass keeps only `limit` records of
  /// its merged stream — the first (limit_last = false) or the last
  /// (limit_last = true). Intermediate passes clamp each input run to the
  /// K-record prefix/suffix that can still matter (metadata-only) and the
  /// final pass additionally prunes whole runs via sampled key bounds, so
  /// a limited merge reads strictly less than a full one whenever pruning
  /// bites. The output is the same bytes a full merge followed by
  /// head/tail truncation would produce.
  uint64_t limit = 0;
  bool limit_last = false;
};

/// Merge-phase statistics.
struct MergeStats {
  uint64_t merge_steps = 0;      ///< k-way merge operations performed
  uint64_t records_written = 0;  ///< total records written (I/O volume proxy)
  uint64_t intermediate_runs = 0;

  /// Limited (top-K) merges only: runs the final pass never opened, and
  /// records its pruning excluded from the merge. (Intermediate passes
  /// prune too; their savings surface directly in bytes_read.) Both 0 for
  /// a full merge.
  uint64_t runs_pruned = 0;
  uint64_t records_pruned = 0;
};

/// Repeatedly performs fan-in-way merges until a single sorted sequence
/// remains, written to `output_path`. Runs are consumed in FIFO order, so
/// every record participates in roughly ceil(log_fanin(#runs)) passes.
/// With zero input runs an empty output file is produced.
Status MergeRuns(Env* env, std::vector<RunInfo> runs,
                 const MergeOptions& options, const std::string& output_path,
                 MergeStats* stats);

}  // namespace twrs

#endif  // TWRS_MERGE_MERGE_PLAN_H_
