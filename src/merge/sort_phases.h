#ifndef TWRS_MERGE_SORT_PHASES_H_
#define TWRS_MERGE_SORT_PHASES_H_

#include <memory>
#include <string>
#include <vector>

#include "core/record_source.h"
#include "core/run_sink.h"
#include "exec/thread_pool.h"
#include "io/env.h"
#include "merge/external_sorter.h"
#include "merge/merge_plan.h"
#include "util/cancel.h"
#include "util/status.h"

namespace twrs {

/// Shared state threaded through the phases of one external sort. Built by
/// PrepareSortContext, consumed and extended by each phase in turn.
struct SortContext {
  Env* env = nullptr;
  const ExternalSortOptions* options = nullptr;

  /// Unique per-sort scratch directory under options->temp_dir.
  std::string sort_dir;

  /// Worker pool for the pipelined features; null = fully serial. Either
  /// borrowed from an Executor (shared mode, the default) or owned below
  /// (the dedicated-pool opt-out).
  ThreadPool* pool = nullptr;
  std::unique_ptr<ThreadPool> owned_pool;

  /// Cooperative cancellation token from the sort options; polled by the
  /// run-generation and merge phases. Null = not cancellable.
  const CancelToken* cancel = nullptr;

  /// Live progress counters from the sort options; each phase advances
  /// the current phase and feeds its record counts. Null = no progress.
  ProgressCounters* progress = nullptr;

  /// Metrics registry from the sort options; each phase records its wall
  /// time and sink flush latencies. Null = no metrics.
  MetricsRegistry* metrics = nullptr;

  /// Runs produced by the run-generation phase.
  std::vector<RunInfo> runs;

  /// Output placement of the final merge: default append-created file, or
  /// a positioned byte range of a shared output (SortIntoRange).
  MergeOutputRange output_range;

  /// Merge configuration produced by the planning phase.
  MergeOptions merge_plan;

  /// Timing and volume accumulated across phases.
  ExternalSortResult result;
};

/// Resolves the execution resources of one sort: creates the unique
/// sort_dir and picks the pool — none (serial), borrowed from the
/// configured Executor, or a dedicated per-sort pool.
Status PrepareSortContext(Env* env, const ExternalSortOptions& options,
                          SortContext* context);

/// One phase of the external-sort pipeline. Phases are command objects over
/// a SortContext, so a scheduler (e.g. shard/ShardedSorter) can compose and
/// dispatch whole per-shard pipelines onto an Executor.
class SortPhase {
 public:
  virtual ~SortPhase() = default;

  virtual const char* name() const = 0;

  virtual Status Run(SortContext* context) = 0;
};

/// Phase 1: consumes the input through the configured run-generation
/// algorithm, writing runs into sort_dir (async-flushed when the context
/// has a pool) and recording run stats plus the phase time.
class RunGenerationPhase : public SortPhase {
 public:
  /// Does not take ownership of `source`.
  explicit RunGenerationPhase(RecordSource* source) : source_(source) {}

  const char* name() const override { return "run-generation"; }
  Status Run(SortContext* context) override;

 private:
  RecordSource* source_;
};

/// Phase 2: derives the merge schedule configuration (fan-in, buffers,
/// prefetch and pool wiring) from the sort options into context->merge_plan.
class MergePlanningPhase : public SortPhase {
 public:
  const char* name() const override { return "merge-planning"; }
  Status Run(SortContext* context) override;
};

/// Phase 3: executes the planned multi-pass merge of context->runs into the
/// output file and records merge stats plus the phase time.
class FinalMergePhase : public SortPhase {
 public:
  explicit FinalMergePhase(std::string output_path)
      : output_path_(std::move(output_path)) {}

  const char* name() const override { return "final-merge"; }
  Status Run(SortContext* context) override;

 private:
  std::string output_path_;
};

}  // namespace twrs

#endif  // TWRS_MERGE_SORT_PHASES_H_
