#include "merge/polyphase.h"

#include <deque>
#include <numeric>

#include "merge/kway_merge.h"

namespace twrs {

std::vector<std::vector<uint64_t>> SimulatePolyphase(
    std::vector<uint64_t> tapes) {
  std::vector<std::vector<uint64_t>> trace;
  trace.push_back(tapes);
  auto total = [&] {
    return std::accumulate(tapes.begin(), tapes.end(), uint64_t{0});
  };
  while (total() > 1) {
    // The first empty tape receives the merged runs.
    size_t out = tapes.size();
    for (size_t i = 0; i < tapes.size(); ++i) {
      if (tapes[i] == 0) {
        out = i;
        break;
      }
    }
    if (out == tapes.size()) {
      // Polyphase requires an empty output tape at every step; a
      // distribution without one cannot proceed. Return the trace so far.
      break;
    }
    size_t non_empty = 0;
    uint64_t min_runs = UINT64_MAX;
    for (size_t i = 0; i < tapes.size(); ++i) {
      if (i == out || tapes[i] == 0) continue;
      ++non_empty;
      min_runs = std::min(min_runs, tapes[i]);
    }
    if (non_empty == 1) {
      // Degenerate step: all remaining runs sit on one tape; merge them all
      // at once into the output tape.
      for (size_t i = 0; i < tapes.size(); ++i) {
        if (i != out && tapes[i] > 0) tapes[i] = 0;
      }
      tapes[out] += 1;
    } else {
      // Perform min_runs k-way merges into the output tape; the tape that
      // hits zero becomes the next output (Table 2.1).
      for (size_t i = 0; i < tapes.size(); ++i) {
        if (i == out || tapes[i] == 0) continue;
        tapes[i] -= min_runs;
      }
      tapes[out] += min_runs;
    }
    trace.push_back(tapes);
  }
  return trace;
}

Status PolyphaseMergeRuns(Env* env, std::vector<RunInfo> runs,
                          size_t num_tapes, const MergeOptions& options,
                          const std::string& output_path, MergeStats* stats) {
  if (num_tapes < 3) {
    return Status::InvalidArgument("polyphase needs at least 3 tapes");
  }
  MergeStats local;
  if (runs.empty()) {
    RecordWriter writer(env, output_path, options.block_bytes);
    TWRS_RETURN_IF_ERROR(writer.status());
    TWRS_RETURN_IF_ERROR(writer.Finish());
    if (stats != nullptr) *stats = local;
    return Status::OK();
  }

  // Distribute runs round-robin over num_tapes - 1 tapes, one left empty.
  // (Production polyphase pads to a Fibonacci-like distribution with dummy
  // runs; round-robin keeps the schedule valid at the cost of some extra
  // steps, which MergeStats reports.)
  std::vector<std::deque<RunInfo>> tapes(num_tapes);
  for (size_t i = 0; i < runs.size(); ++i) {
    tapes[i % (num_tapes - 1)].push_back(std::move(runs[i]));
  }

  uint64_t total_runs = 0;
  for (const auto& t : tapes) total_runs += t.size();
  uint64_t temp_counter = 0;

  auto merge_batch = [&](std::vector<RunInfo> batch,
                         std::deque<RunInfo>* out_tape) -> Status {
    const bool final_merge = batch.size() == total_runs;
    const std::string path =
        final_merge ? output_path
                    : options.temp_dir + "/" + options.temp_prefix + "_pp" +
                          std::to_string(temp_counter++);
    RunInfo merged;
    TWRS_RETURN_IF_ERROR(
        KWayMergeToFile(env, batch, options.block_bytes, path, &merged));
    ++local.merge_steps;
    local.records_written += merged.length;
    if (options.remove_inputs) {
      for (const RunInfo& r : batch) {
        TWRS_RETURN_IF_ERROR(RemoveRunFiles(env, r));
      }
    }
    total_runs -= batch.size();
    if (!final_merge) {
      ++local.intermediate_runs;
      ++total_runs;
      out_tape->push_back(std::move(merged));
    }
    return Status::OK();
  };

  while (total_runs > 1) {
    size_t out = num_tapes;
    for (size_t i = 0; i < num_tapes; ++i) {
      if (tapes[i].empty()) {
        out = i;
        break;
      }
    }
    // Round-robin distribution always leaves one tape empty, and every step
    // empties at least one input tape, so `out` is always found.
    size_t non_empty = 0;
    uint64_t min_runs = UINT64_MAX;
    for (size_t i = 0; i < num_tapes; ++i) {
      if (i == out || tapes[i].empty()) continue;
      ++non_empty;
      min_runs = std::min<uint64_t>(min_runs, tapes[i].size());
    }
    if (non_empty == 1) {
      // All remaining runs on one tape: merge them all at once.
      std::vector<RunInfo> batch;
      for (size_t i = 0; i < num_tapes; ++i) {
        while (!tapes[i].empty()) {
          batch.push_back(std::move(tapes[i].front()));
          tapes[i].pop_front();
        }
      }
      TWRS_RETURN_IF_ERROR(merge_batch(std::move(batch), &tapes[out]));
      continue;
    }
    for (uint64_t m = 0; m < min_runs; ++m) {
      std::vector<RunInfo> batch;
      for (size_t i = 0; i < num_tapes; ++i) {
        if (i == out || tapes[i].empty()) continue;
        batch.push_back(std::move(tapes[i].front()));
        tapes[i].pop_front();
      }
      TWRS_RETURN_IF_ERROR(merge_batch(std::move(batch), &tapes[out]));
      if (total_runs <= 1) break;
    }
  }

  if (total_runs == 1) {
    // A single run remains but was not written by a final merge (e.g. the
    // input was a single run): copy it to the output path.
    for (auto& tape : tapes) {
      if (tape.empty()) continue;
      std::vector<RunInfo> batch;
      batch.push_back(std::move(tape.front()));
      tape.pop_front();
      total_runs = 1;  // so merge_batch treats it as final
      TWRS_RETURN_IF_ERROR(merge_batch(std::move(batch), nullptr));
      break;
    }
  }
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

}  // namespace twrs
