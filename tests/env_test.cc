#include "io/env.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "io/mem_env.h"
#include "io/posix_env.h"
#include "tests/test_util.h"

namespace twrs {
namespace {

using testing::MakeTempDir;

enum class EnvKind { kMem, kPosix };

// The Env contract must hold identically for the in-memory test filesystem
// and the production POSIX one.
class EnvTest : public ::testing::TestWithParam<EnvKind> {
 protected:
  void SetUp() override {
    if (GetParam() == EnvKind::kMem) {
      env_ = std::make_unique<MemEnv>();
      dir_ = "mem";
    } else {
      env_ = std::make_unique<PosixEnv>();
      dir_ = MakeTempDir();
    }
    ASSERT_TWRS_OK(env_->CreateDirIfMissing(dir_));
  }

  std::string Path(const std::string& name) { return dir_ + "/" + name; }

  std::unique_ptr<Env> env_;
  std::string dir_;
};

TEST_P(EnvTest, WriteThenReadBack) {
  std::unique_ptr<WritableFile> w;
  ASSERT_TWRS_OK(env_->NewWritableFile(Path("f"), &w));
  ASSERT_TWRS_OK(w->Append("hello ", 6));
  ASSERT_TWRS_OK(w->Append("world", 5));
  ASSERT_TWRS_OK(w->Close());

  std::unique_ptr<SequentialFile> r;
  ASSERT_TWRS_OK(env_->NewSequentialFile(Path("f"), &r));
  char buf[32] = {0};
  size_t got = 0;
  ASSERT_TWRS_OK(r->Read(buf, sizeof(buf), &got));
  EXPECT_EQ(got, 11u);
  EXPECT_EQ(std::string(buf, got), "hello world");
}

TEST_P(EnvTest, SequentialReadReportsEof) {
  std::unique_ptr<WritableFile> w;
  ASSERT_TWRS_OK(env_->NewWritableFile(Path("f"), &w));
  ASSERT_TWRS_OK(w->Append("abc", 3));
  ASSERT_TWRS_OK(w->Close());

  std::unique_ptr<SequentialFile> r;
  ASSERT_TWRS_OK(env_->NewSequentialFile(Path("f"), &r));
  char buf[8];
  size_t got = 0;
  ASSERT_TWRS_OK(r->Read(buf, 3, &got));
  EXPECT_EQ(got, 3u);
  ASSERT_TWRS_OK(r->Read(buf, 3, &got));
  EXPECT_EQ(got, 0u);
}

TEST_P(EnvTest, SkipAdvancesPosition) {
  std::unique_ptr<WritableFile> w;
  ASSERT_TWRS_OK(env_->NewWritableFile(Path("f"), &w));
  ASSERT_TWRS_OK(w->Append("0123456789", 10));
  ASSERT_TWRS_OK(w->Close());

  std::unique_ptr<SequentialFile> r;
  ASSERT_TWRS_OK(env_->NewSequentialFile(Path("f"), &r));
  ASSERT_TWRS_OK(r->Skip(4));
  char buf[4];
  size_t got = 0;
  ASSERT_TWRS_OK(r->Read(buf, 3, &got));
  EXPECT_EQ(std::string(buf, got), "456");
}

TEST_P(EnvTest, OpenMissingFileFails) {
  std::unique_ptr<SequentialFile> r;
  EXPECT_FALSE(env_->NewSequentialFile(Path("missing"), &r).ok());
}

TEST_P(EnvTest, FileExistsAndRemove) {
  EXPECT_FALSE(env_->FileExists(Path("f")));
  std::unique_ptr<WritableFile> w;
  ASSERT_TWRS_OK(env_->NewWritableFile(Path("f"), &w));
  ASSERT_TWRS_OK(w->Close());
  EXPECT_TRUE(env_->FileExists(Path("f")));
  ASSERT_TWRS_OK(env_->RemoveFile(Path("f")));
  EXPECT_FALSE(env_->FileExists(Path("f")));
  EXPECT_FALSE(env_->RemoveFile(Path("f")).ok());
}

TEST_P(EnvTest, GetFileSize) {
  std::unique_ptr<WritableFile> w;
  ASSERT_TWRS_OK(env_->NewWritableFile(Path("f"), &w));
  ASSERT_TWRS_OK(w->Append("12345", 5));
  ASSERT_TWRS_OK(w->Close());
  uint64_t size = 0;
  ASSERT_TWRS_OK(env_->GetFileSize(Path("f"), &size));
  EXPECT_EQ(size, 5u);
}

TEST_P(EnvTest, RandomRWFileWritesAtArbitraryOffsets) {
  std::unique_ptr<RandomRWFile> f;
  ASSERT_TWRS_OK(env_->NewRandomRWFile(Path("f"), &f));
  // Write the tail before the head, as the reverse run writer does.
  ASSERT_TWRS_OK(f->WriteAt(8, "TAIL", 4));
  ASSERT_TWRS_OK(f->WriteAt(0, "HEAD", 4));
  char buf[4];
  ASSERT_TWRS_OK(f->ReadAt(8, buf, 4));
  EXPECT_EQ(std::string(buf, 4), "TAIL");
  ASSERT_TWRS_OK(f->ReadAt(0, buf, 4));
  EXPECT_EQ(std::string(buf, 4), "HEAD");
  ASSERT_TWRS_OK(f->Close());
}

TEST_P(EnvTest, RandomRWReadPastEndFails) {
  std::unique_ptr<RandomRWFile> f;
  ASSERT_TWRS_OK(env_->NewRandomRWFile(Path("f"), &f));
  ASSERT_TWRS_OK(f->WriteAt(0, "abc", 3));
  char buf[8];
  EXPECT_FALSE(f->ReadAt(0, buf, 8).ok());
}

TEST_P(EnvTest, ReopenRandomRWPreservesContents) {
  {
    std::unique_ptr<RandomRWFile> f;
    ASSERT_TWRS_OK(env_->NewRandomRWFile(Path("f"), &f));
    ASSERT_TWRS_OK(f->WriteAt(0, "01234567", 8));
    ASSERT_TWRS_OK(f->Close());
  }
  {
    std::unique_ptr<RandomRWFile> f;
    ASSERT_TWRS_OK(env_->ReopenRandomRWFile(Path("f"), &f));
    ASSERT_TWRS_OK(f->WriteAt(4, "XY", 2));  // patch, no truncation
    ASSERT_TWRS_OK(f->Close());
  }
  std::unique_ptr<SequentialFile> r;
  ASSERT_TWRS_OK(env_->NewSequentialFile(Path("f"), &r));
  char buf[8];
  size_t got = 0;
  ASSERT_TWRS_OK(r->Read(buf, 8, &got));
  EXPECT_EQ(std::string(buf, got), "0123XY67");
}

TEST_P(EnvTest, ReopenMissingFileFails) {
  std::unique_ptr<RandomRWFile> f;
  EXPECT_FALSE(env_->ReopenRandomRWFile(Path("missing"), &f).ok());
}

INSTANTIATE_TEST_SUITE_P(AllEnvs, EnvTest,
                         ::testing::Values(EnvKind::kMem, EnvKind::kPosix),
                         [](const ::testing::TestParamInfo<EnvKind>& info) {
                           return info.param == EnvKind::kMem ? "Mem"
                                                              : "Posix";
                         });

TEST(MemEnvTest, FileContentsHelper) {
  MemEnv env;
  std::unique_ptr<WritableFile> w;
  ASSERT_TWRS_OK(env.NewWritableFile("x", &w));
  ASSERT_TWRS_OK(w->Append("ab", 2));
  ASSERT_TWRS_OK(w->Close());
  ASSERT_NE(env.FileContents("x"), nullptr);
  EXPECT_EQ(env.FileContents("x")->size(), 2u);
  EXPECT_EQ(env.FileContents("y"), nullptr);
  EXPECT_EQ(env.FileCount(), 1u);
}

TEST(EnvTest2, DefaultEnvIsUsable) {
  Env* env = Env::Default();
  ASSERT_NE(env, nullptr);
  EXPECT_EQ(env, Env::Default());  // singleton
}

}  // namespace
}  // namespace twrs
