#include "io/env.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "io/mem_env.h"
#include "io/posix_env.h"
#include "io/sim_disk_env.h"
#include "io/uring_env.h"
#include "tests/test_util.h"

namespace twrs {
namespace {

using testing::MakeTempDir;

enum class EnvKind { kMem, kPosix, kSimDisk, kUring };

// The Env contract must hold identically for the in-memory test
// filesystem, the production POSIX one, the simulated-disk decorator the
// benchmarks run on, and the io_uring backend (skipped where the kernel
// or build lacks it).
class EnvTest : public ::testing::TestWithParam<EnvKind> {
 protected:
  void SetUp() override {
    if (GetParam() == EnvKind::kMem) {
      env_ = std::make_unique<MemEnv>();
      dir_ = "mem";
    } else if (GetParam() == EnvKind::kPosix) {
      env_ = std::make_unique<PosixEnv>();
      dir_ = MakeTempDir();
    } else if (GetParam() == EnvKind::kUring) {
      if (!IoUringEnv::IsSupported()) {
        GTEST_SKIP() << "io_uring unavailable: "
                     << IoUringEnv::UnsupportedReason();
      }
      env_ = std::make_unique<IoUringEnv>();
      dir_ = MakeTempDir();
    } else {
      base_ = std::make_unique<MemEnv>();
      env_ = std::make_unique<SimDiskEnv>(base_.get());
      dir_ = "sim";
    }
    ASSERT_TWRS_OK(env_->CreateDirIfMissing(dir_));
  }

  std::string Path(const std::string& name) { return dir_ + "/" + name; }

  std::unique_ptr<MemEnv> base_;  // backs the SimDiskEnv decorator
  std::unique_ptr<Env> env_;
  std::string dir_;
};

TEST_P(EnvTest, WriteThenReadBack) {
  std::unique_ptr<WritableFile> w;
  ASSERT_TWRS_OK(env_->NewWritableFile(Path("f"), &w));
  ASSERT_TWRS_OK(w->Append("hello ", 6));
  ASSERT_TWRS_OK(w->Append("world", 5));
  ASSERT_TWRS_OK(w->Close());

  std::unique_ptr<SequentialFile> r;
  ASSERT_TWRS_OK(env_->NewSequentialFile(Path("f"), &r));
  char buf[32] = {0};
  size_t got = 0;
  ASSERT_TWRS_OK(r->Read(buf, sizeof(buf), &got));
  EXPECT_EQ(got, 11u);
  EXPECT_EQ(std::string(buf, got), "hello world");
}

TEST_P(EnvTest, SequentialReadReportsEof) {
  std::unique_ptr<WritableFile> w;
  ASSERT_TWRS_OK(env_->NewWritableFile(Path("f"), &w));
  ASSERT_TWRS_OK(w->Append("abc", 3));
  ASSERT_TWRS_OK(w->Close());

  std::unique_ptr<SequentialFile> r;
  ASSERT_TWRS_OK(env_->NewSequentialFile(Path("f"), &r));
  char buf[8];
  size_t got = 0;
  ASSERT_TWRS_OK(r->Read(buf, 3, &got));
  EXPECT_EQ(got, 3u);
  ASSERT_TWRS_OK(r->Read(buf, 3, &got));
  EXPECT_EQ(got, 0u);
}

TEST_P(EnvTest, SkipAdvancesPosition) {
  std::unique_ptr<WritableFile> w;
  ASSERT_TWRS_OK(env_->NewWritableFile(Path("f"), &w));
  ASSERT_TWRS_OK(w->Append("0123456789", 10));
  ASSERT_TWRS_OK(w->Close());

  std::unique_ptr<SequentialFile> r;
  ASSERT_TWRS_OK(env_->NewSequentialFile(Path("f"), &r));
  ASSERT_TWRS_OK(r->Skip(4));
  char buf[4];
  size_t got = 0;
  ASSERT_TWRS_OK(r->Read(buf, 3, &got));
  EXPECT_EQ(std::string(buf, got), "456");
}

TEST_P(EnvTest, OpenMissingFileFails) {
  std::unique_ptr<SequentialFile> r;
  EXPECT_FALSE(env_->NewSequentialFile(Path("missing"), &r).ok());
}

TEST_P(EnvTest, FileExistsAndRemove) {
  EXPECT_FALSE(env_->FileExists(Path("f")));
  std::unique_ptr<WritableFile> w;
  ASSERT_TWRS_OK(env_->NewWritableFile(Path("f"), &w));
  ASSERT_TWRS_OK(w->Close());
  EXPECT_TRUE(env_->FileExists(Path("f")));
  ASSERT_TWRS_OK(env_->RemoveFile(Path("f")));
  EXPECT_FALSE(env_->FileExists(Path("f")));
  EXPECT_FALSE(env_->RemoveFile(Path("f")).ok());
}

TEST_P(EnvTest, GetFileSize) {
  std::unique_ptr<WritableFile> w;
  ASSERT_TWRS_OK(env_->NewWritableFile(Path("f"), &w));
  ASSERT_TWRS_OK(w->Append("12345", 5));
  ASSERT_TWRS_OK(w->Close());
  uint64_t size = 0;
  ASSERT_TWRS_OK(env_->GetFileSize(Path("f"), &size));
  EXPECT_EQ(size, 5u);
}

TEST_P(EnvTest, RandomRWFileWritesAtArbitraryOffsets) {
  std::unique_ptr<RandomRWFile> f;
  ASSERT_TWRS_OK(env_->NewRandomRWFile(Path("f"), &f));
  // Write the tail before the head, as the reverse run writer does.
  ASSERT_TWRS_OK(f->WriteAt(8, "TAIL", 4));
  ASSERT_TWRS_OK(f->WriteAt(0, "HEAD", 4));
  char buf[4];
  ASSERT_TWRS_OK(f->ReadAt(8, buf, 4));
  EXPECT_EQ(std::string(buf, 4), "TAIL");
  ASSERT_TWRS_OK(f->ReadAt(0, buf, 4));
  EXPECT_EQ(std::string(buf, 4), "HEAD");
  ASSERT_TWRS_OK(f->Close());
}

TEST_P(EnvTest, RandomRWReadPastEndFails) {
  std::unique_ptr<RandomRWFile> f;
  ASSERT_TWRS_OK(env_->NewRandomRWFile(Path("f"), &f));
  ASSERT_TWRS_OK(f->WriteAt(0, "abc", 3));
  char buf[8];
  EXPECT_FALSE(f->ReadAt(0, buf, 8).ok());
}

TEST_P(EnvTest, ReopenRandomRWPreservesContents) {
  {
    std::unique_ptr<RandomRWFile> f;
    ASSERT_TWRS_OK(env_->NewRandomRWFile(Path("f"), &f));
    ASSERT_TWRS_OK(f->WriteAt(0, "01234567", 8));
    ASSERT_TWRS_OK(f->Close());
  }
  {
    std::unique_ptr<RandomRWFile> f;
    ASSERT_TWRS_OK(env_->ReopenRandomRWFile(Path("f"), &f));
    ASSERT_TWRS_OK(f->WriteAt(4, "XY", 2));  // patch, no truncation
    ASSERT_TWRS_OK(f->Close());
  }
  std::unique_ptr<SequentialFile> r;
  ASSERT_TWRS_OK(env_->NewSequentialFile(Path("f"), &r));
  char buf[8];
  size_t got = 0;
  ASSERT_TWRS_OK(r->Read(buf, 8, &got));
  EXPECT_EQ(std::string(buf, got), "0123XY67");
}

TEST_P(EnvTest, ReopenMissingFileFails) {
  std::unique_ptr<RandomRWFile> f;
  EXPECT_FALSE(env_->ReopenRandomRWFile(Path("missing"), &f).ok());
}

// --- RandomRWFile contracts the RangeMergeSink positioned-output path
// --- relies on; pinned down across every backend.

TEST_P(EnvTest, RandomRWWriteAtExtendsAndZeroFillsTheGap) {
  // A range writer may land past the current end of the shared output; the
  // file must extend to cover it, and the not-yet-written gap must read as
  // zeros (POSIX holes do; MemEnv's resize must match).
  std::unique_ptr<RandomRWFile> f;
  ASSERT_TWRS_OK(env_->NewRandomRWFile(Path("f"), &f));
  ASSERT_TWRS_OK(f->WriteAt(16, "TAIL", 4));
  ASSERT_TWRS_OK(f->Close());
  uint64_t size = 0;
  ASSERT_TWRS_OK(env_->GetFileSize(Path("f"), &size));
  EXPECT_EQ(size, 20u);
  std::unique_ptr<RandomRWFile> r;
  ASSERT_TWRS_OK(env_->ReopenRandomRWFile(Path("f"), &r));
  char buf[20];
  ASSERT_TWRS_OK(r->ReadAt(0, buf, sizeof(buf)));
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(buf[i], '\0') << "gap byte " << i;
  }
  EXPECT_EQ(std::string(buf + 16, 4), "TAIL");
}

TEST_P(EnvTest, RandomRWReopenWithoutTruncateKeepsSizeAndExtendsAtTail) {
  {
    std::unique_ptr<RandomRWFile> f;
    ASSERT_TWRS_OK(env_->NewRandomRWFile(Path("f"), &f));
    ASSERT_TWRS_OK(f->WriteAt(0, "01234567", 8));
    ASSERT_TWRS_OK(f->Close());
  }
  uint64_t size = 0;
  {
    // Reopen must not shrink the file even if this handle never writes.
    std::unique_ptr<RandomRWFile> f;
    ASSERT_TWRS_OK(env_->ReopenRandomRWFile(Path("f"), &f));
    ASSERT_TWRS_OK(f->Close());
    ASSERT_TWRS_OK(env_->GetFileSize(Path("f"), &size));
    EXPECT_EQ(size, 8u);
  }
  {
    std::unique_ptr<RandomRWFile> f;
    ASSERT_TWRS_OK(env_->ReopenRandomRWFile(Path("f"), &f));
    ASSERT_TWRS_OK(f->WriteAt(8, "89", 2));  // extend at the tail
    ASSERT_TWRS_OK(f->Close());
  }
  ASSERT_TWRS_OK(env_->GetFileSize(Path("f"), &size));
  EXPECT_EQ(size, 10u);
  std::unique_ptr<SequentialFile> r;
  ASSERT_TWRS_OK(env_->NewSequentialFile(Path("f"), &r));
  char buf[10];
  size_t got = 0;
  ASSERT_TWRS_OK(r->Read(buf, sizeof(buf), &got));
  EXPECT_EQ(std::string(buf, got), "0123456789");
}

TEST_P(EnvTest, RandomRWConcurrentWritersToDisjointRanges) {
  // The concatenation-free sharded sort: one handle per writer, each
  // filling its own byte range of a shared file, interleaved in time. The
  // result must be exactly the writers' ranges side by side.
  constexpr int kWriters = 4;
  constexpr int kChunksPerWriter = 64;
  constexpr size_t kChunkBytes = 512;
  constexpr size_t kStride = kChunksPerWriter * kChunkBytes;
  {
    std::unique_ptr<RandomRWFile> f;
    ASSERT_TWRS_OK(env_->NewRandomRWFile(Path("f"), &f));
    ASSERT_TWRS_OK(f->Close());
  }
  std::vector<std::thread> threads;
  std::vector<Status> results(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      std::unique_ptr<RandomRWFile> f;
      Status s = env_->ReopenRandomRWFile(Path("f"), &f);
      std::vector<char> chunk(kChunkBytes, static_cast<char>('A' + w));
      for (int c = 0; s.ok() && c < kChunksPerWriter; ++c) {
        s = f->WriteAt(w * kStride + c * kChunkBytes, chunk.data(),
                       chunk.size());
        std::this_thread::yield();  // encourage interleaving
      }
      if (s.ok()) s = f->Close();
      results[w] = s;
    });
  }
  for (auto& t : threads) t.join();
  for (int w = 0; w < kWriters; ++w) ASSERT_TWRS_OK(results[w]);

  uint64_t size = 0;
  ASSERT_TWRS_OK(env_->GetFileSize(Path("f"), &size));
  ASSERT_EQ(size, kWriters * kStride);
  std::unique_ptr<SequentialFile> r;
  ASSERT_TWRS_OK(env_->NewSequentialFile(Path("f"), &r));
  std::vector<char> got(kWriters * kStride);
  size_t read = 0;
  ASSERT_TWRS_OK(r->Read(got.data(), got.size(), &read));
  ASSERT_EQ(read, got.size());
  for (int w = 0; w < kWriters; ++w) {
    for (size_t i = 0; i < kStride; ++i) {
      ASSERT_EQ(got[w * kStride + i], static_cast<char>('A' + w))
          << "writer " << w << " byte " << i;
    }
  }
}

// --- Sync: the durability point between "the sorter returned OK" and
// --- "the bytes are on stable storage".

TEST_P(EnvTest, WritableSyncThenCloseKeepsContents) {
  std::unique_ptr<WritableFile> w;
  ASSERT_TWRS_OK(env_->NewWritableFile(Path("f"), &w));
  ASSERT_TWRS_OK(w->Append("durable", 7));
  ASSERT_TWRS_OK(w->Sync());
  // Appending after a Sync must still work (Sync is a barrier, not an
  // implicit close)...
  ASSERT_TWRS_OK(w->Append("!", 1));
  ASSERT_TWRS_OK(w->Sync());
  ASSERT_TWRS_OK(w->Close());
  std::unique_ptr<SequentialFile> r;
  ASSERT_TWRS_OK(env_->NewSequentialFile(Path("f"), &r));
  char buf[16];
  size_t got = 0;
  ASSERT_TWRS_OK(r->Read(buf, sizeof(buf), &got));
  EXPECT_EQ(std::string(buf, got), "durable!");
}

TEST_P(EnvTest, RandomRWSyncThenCloseKeepsContents) {
  std::unique_ptr<RandomRWFile> f;
  ASSERT_TWRS_OK(env_->NewRandomRWFile(Path("f"), &f));
  ASSERT_TWRS_OK(f->WriteAt(4, "TAIL", 4));
  ASSERT_TWRS_OK(f->Sync());
  ASSERT_TWRS_OK(f->WriteAt(0, "HEAD", 4));
  ASSERT_TWRS_OK(f->Sync());
  char buf[8];
  ASSERT_TWRS_OK(f->ReadAt(0, buf, 8));
  EXPECT_EQ(std::string(buf, 8), "HEADTAIL");
  ASSERT_TWRS_OK(f->Close());
  uint64_t size = 0;
  ASSERT_TWRS_OK(env_->GetFileSize(Path("f"), &size));
  EXPECT_EQ(size, 8u);
}

INSTANTIATE_TEST_SUITE_P(
    AllEnvs, EnvTest,
    ::testing::Values(EnvKind::kMem, EnvKind::kPosix, EnvKind::kSimDisk,
                      EnvKind::kUring),
    [](const ::testing::TestParamInfo<EnvKind>& info) {
      switch (info.param) {
        case EnvKind::kMem:
          return "Mem";
        case EnvKind::kPosix:
          return "Posix";
        case EnvKind::kSimDisk:
          return "SimDisk";
        case EnvKind::kUring:
          return "Uring";
      }
      return "Unknown";
    });

TEST(MemEnvTest, FileContentsHelper) {
  MemEnv env;
  std::unique_ptr<WritableFile> w;
  ASSERT_TWRS_OK(env.NewWritableFile("x", &w));
  ASSERT_TWRS_OK(w->Append("ab", 2));
  ASSERT_TWRS_OK(w->Close());
  ASSERT_NE(env.FileContents("x"), nullptr);
  EXPECT_EQ(env.FileContents("x")->size(), 2u);
  EXPECT_EQ(env.FileContents("y"), nullptr);
  EXPECT_EQ(env.FileCount(), 1u);
}

TEST(PreflightTempDirTest, SucceedsAndRemovesProbe) {
  MemEnv env;
  ASSERT_TWRS_OK(PreflightTempDir(&env, "scratch"));
  std::vector<std::string> names;
  ASSERT_TWRS_OK(env.ListDir("scratch", &names));
  EXPECT_TRUE(names.empty()) << "probe file left behind";
}

// A MemEnv whose unlink always fails, emulating a directory that accepts
// creations but refuses removals (e.g. a sticky-bit dir owned by another
// user).
class RemoveFailingMemEnv : public MemEnv {
 public:
  Status RemoveFile(const std::string& path) override {
    return Status::IOError("unlink forbidden: " + path);
  }
};

TEST(PreflightTempDirTest, FailsWhenProbeCannotBeRemoved) {
  // Regression: such a temp_dir used to pass the preflight (the probe's
  // removal status was dropped), only for every later scratch cleanup to
  // fail and fill the directory with orphaned run files.
  RemoveFailingMemEnv env;
  Status s = PreflightTempDir(&env, "scratch");
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("not writable"), std::string::npos)
      << s.ToString();
}

TEST(EnvTest2, DefaultEnvIsUsable) {
  Env* env = Env::Default();
  ASSERT_NE(env, nullptr);
  EXPECT_EQ(env, Env::Default());  // singleton
}

TEST(IoBackendTest, ParseAcceptsKnownNamesOnly) {
  IoBackend b = IoBackend::kDefault;
  EXPECT_TRUE(ParseIoBackend("posix", &b));
  EXPECT_EQ(b, IoBackend::kPosix);
  EXPECT_TRUE(ParseIoBackend("uring", &b));
  EXPECT_EQ(b, IoBackend::kUring);
  EXPECT_TRUE(ParseIoBackend("auto", &b));
  EXPECT_EQ(b, IoBackend::kAuto);
  EXPECT_FALSE(ParseIoBackend("io_uring", &b));
  EXPECT_FALSE(ParseIoBackend("", &b));
}

TEST(IoBackendTest, ResolveFollowsRuntimeSupport) {
  IoBackend resolved = IoBackend::kAuto;
  ASSERT_TWRS_OK(ResolveIoBackend(IoBackend::kPosix, &resolved));
  EXPECT_EQ(resolved, IoBackend::kPosix);
  // kDefault means "keep the Env you already have" and resolves to itself.
  ASSERT_TWRS_OK(ResolveIoBackend(IoBackend::kDefault, &resolved));
  EXPECT_EQ(resolved, IoBackend::kDefault);
  // kAuto never fails: uring when the kernel+build support it, else posix.
  ASSERT_TWRS_OK(ResolveIoBackend(IoBackend::kAuto, &resolved));
  EXPECT_EQ(resolved, IoUringEnv::IsSupported() ? IoBackend::kUring
                                                : IoBackend::kPosix);
  // An explicit kUring request resolves only on support and otherwise
  // fails with the probe's reason, never silently degrades.
  Status s = ResolveIoBackend(IoBackend::kUring, &resolved);
  if (IoUringEnv::IsSupported()) {
    ASSERT_TWRS_OK(s);
    EXPECT_EQ(resolved, IoBackend::kUring);
  } else {
    EXPECT_FALSE(s.ok());
    EXPECT_NE(s.ToString().find(IoUringEnv::UnsupportedReason()),
              std::string::npos)
        << s.ToString();
  }
}

TEST(IoBackendTest, DefaultFactoryReturnsSingletons) {
  EXPECT_EQ(Env::Default(IoBackend::kPosix), Env::Default());
  EXPECT_EQ(Env::Default(IoBackend::kDefault), Env::Default());
  if (IoUringEnv::IsSupported()) {
    Env* uring = Env::Default(IoBackend::kUring);
    ASSERT_NE(uring, nullptr);
    EXPECT_NE(uring, Env::Default());
    EXPECT_EQ(uring, Env::Default(IoBackend::kUring));  // singleton
    EXPECT_TRUE(uring->io_capabilities().async_appends);
  }
}

TEST(IoUringEnvTest, ODirectRoundTripsUnalignedSizes) {
  if (!IoUringEnv::IsSupported()) {
    GTEST_SKIP() << "io_uring unavailable: "
                 << IoUringEnv::UnsupportedReason();
  }
  // O_DIRECT pads the tail block internally; the observable file must
  // still have the exact logical size and bytes. On filesystems without
  // O_DIRECT (tmpfs) the env degrades to buffered I/O — same contract.
  IoUringEnvOptions options;
  options.use_o_direct = true;
  IoUringEnv env(options);
  const std::string dir = MakeTempDir();
  ASSERT_TWRS_OK(env.CreateDirIfMissing(dir));
  const std::string path = dir + "/odirect";
  std::string payload;
  for (int i = 0; i < 10000; ++i) payload.push_back(static_cast<char>(i % 251));
  {
    std::unique_ptr<WritableFile> w;
    ASSERT_TWRS_OK(env.NewWritableFile(path, &w));
    ASSERT_TWRS_OK(w->Append(payload.data(), payload.size()));
    ASSERT_TWRS_OK(w->Sync());
    ASSERT_TWRS_OK(w->Close());
  }
  uint64_t size = 0;
  ASSERT_TWRS_OK(env.GetFileSize(path, &size));
  EXPECT_EQ(size, payload.size());
  std::unique_ptr<SequentialFile> r;
  ASSERT_TWRS_OK(env.NewSequentialFile(path, &r));
  std::string got(payload.size(), '\0');
  size_t read = 0;
  ASSERT_TWRS_OK(r->Read(&got[0], got.size(), &read));
  ASSERT_EQ(read, payload.size());
  EXPECT_EQ(got, payload);
}

}  // namespace
}  // namespace twrs
