#include "core/run_sink.h"

#include <gtest/gtest.h>

#include "io/mem_env.h"
#include "merge/kway_merge.h"
#include "tests/test_util.h"

namespace twrs {
namespace {

TEST(CountingRunSinkTest, CountsLengthsAndBounds) {
  CountingRunSink sink;
  ASSERT_TWRS_OK(sink.BeginRun());
  ASSERT_TWRS_OK(sink.Append(kStream1, 5));
  ASSERT_TWRS_OK(sink.Append(kStream4, 1));
  ASSERT_TWRS_OK(sink.Append(kStream1, 9));
  ASSERT_TWRS_OK(sink.EndRun());
  ASSERT_TWRS_OK(sink.BeginRun());
  ASSERT_TWRS_OK(sink.Append(kStream1, 2));
  ASSERT_TWRS_OK(sink.EndRun());
  ASSERT_TWRS_OK(sink.Finish());
  ASSERT_EQ(sink.runs().size(), 2u);
  EXPECT_EQ(sink.runs()[0].length, 3u);
  EXPECT_EQ(sink.runs()[0].min_key, 1);
  EXPECT_EQ(sink.runs()[0].max_key, 9);
  EXPECT_EQ(sink.runs()[1].length, 1u);
}

TEST(CountingRunSinkTest, EmptyRunsAreDropped) {
  CountingRunSink sink;
  ASSERT_TWRS_OK(sink.BeginRun());
  ASSERT_TWRS_OK(sink.EndRun());
  EXPECT_TRUE(sink.runs().empty());
}

TEST(CountingRunSinkTest, ProtocolViolationsAreRejected) {
  CountingRunSink sink;
  EXPECT_FALSE(sink.Append(kStream1, 1).ok());  // outside a run
  EXPECT_FALSE(sink.EndRun().ok());
  ASSERT_TWRS_OK(sink.BeginRun());
  EXPECT_FALSE(sink.BeginRun().ok());  // nested
}

TEST(CollectingRunSinkTest, AssemblesStreamsInAscendingOrder) {
  CollectingRunSink sink;
  ASSERT_TWRS_OK(sink.BeginRun());
  // Stream contents mirror Fig 4.9's layout: s4 decreasing low keys, s3
  // ascending, s2 decreasing, s1 ascending high keys.
  ASSERT_TWRS_OK(sink.Append(kStream4, 38));
  ASSERT_TWRS_OK(sink.Append(kStream4, 37));
  ASSERT_TWRS_OK(sink.Append(kStream3, 39));
  ASSERT_TWRS_OK(sink.Append(kStream3, 40));
  ASSERT_TWRS_OK(sink.Append(kStream2, 51));
  ASSERT_TWRS_OK(sink.Append(kStream2, 50));
  ASSERT_TWRS_OK(sink.Append(kStream1, 52));
  ASSERT_TWRS_OK(sink.Append(kStream1, 53));
  ASSERT_TWRS_OK(sink.EndRun());
  ASSERT_TWRS_OK(sink.Finish());
  ASSERT_EQ(sink.collected().size(), 1u);
  EXPECT_EQ(sink.collected()[0],
            std::vector<Key>({37, 38, 39, 40, 50, 51, 52, 53}));
  EXPECT_EQ(sink.runs()[0].min_key, 37);
  EXPECT_EQ(sink.runs()[0].max_key, 53);
}

TEST(CollectingRunSinkTest, RejectsStreamOrderViolations) {
  CollectingRunSink sink;
  ASSERT_TWRS_OK(sink.BeginRun());
  ASSERT_TWRS_OK(sink.Append(kStream1, 10));
  EXPECT_FALSE(sink.Append(kStream1, 9).ok());  // stream 1 must ascend
  ASSERT_TWRS_OK(sink.Append(kStream4, 5));
  EXPECT_FALSE(sink.Append(kStream4, 6).ok());  // stream 4 must descend
}

TEST(FileRunSinkTest, WritesSegmentsReadableAsOneAscendingRun) {
  MemEnv env;
  FileRunSinkOptions options;
  options.reverse.pages_per_file = 2;
  options.reverse.page_bytes = 64;
  FileRunSink sink(&env, "dir", "t", options);
  ASSERT_TWRS_OK(sink.BeginRun());
  for (Key k : {30, 20, 10}) ASSERT_TWRS_OK(sink.Append(kStream4, k));
  for (Key k : {40, 45}) ASSERT_TWRS_OK(sink.Append(kStream3, k));
  for (Key k : {70, 60}) ASSERT_TWRS_OK(sink.Append(kStream2, k));
  for (Key k : {80, 90}) ASSERT_TWRS_OK(sink.Append(kStream1, k));
  ASSERT_TWRS_OK(sink.EndRun());
  ASSERT_TWRS_OK(sink.Finish());

  ASSERT_EQ(sink.runs().size(), 1u);
  const RunInfo& run = sink.runs()[0];
  EXPECT_EQ(run.length, 9u);
  EXPECT_EQ(run.min_key, 10);
  EXPECT_EQ(run.max_key, 90);
  ASSERT_EQ(run.segments.size(), 4u);
  // Ascending read order 4, 3, 2, 1; reverse flags on 4 and 2.
  EXPECT_TRUE(run.segments[0].reverse);
  EXPECT_FALSE(run.segments[1].reverse);
  EXPECT_TRUE(run.segments[2].reverse);
  EXPECT_FALSE(run.segments[3].reverse);

  RunCursor cursor(&env, run);
  ASSERT_TWRS_OK(cursor.Init());
  std::vector<Key> keys;
  while (cursor.valid()) {
    keys.push_back(cursor.key());
    ASSERT_TWRS_OK(cursor.Next());
  }
  EXPECT_EQ(keys, std::vector<Key>({10, 20, 30, 40, 45, 60, 70, 80, 90}));
}

TEST(FileRunSinkTest, UnusedStreamsProduceNoSegments) {
  MemEnv env;
  FileRunSink sink(&env, "dir", "t");
  ASSERT_TWRS_OK(sink.BeginRun());
  ASSERT_TWRS_OK(sink.Append(kStream1, 1));
  ASSERT_TWRS_OK(sink.EndRun());
  ASSERT_TWRS_OK(sink.Finish());
  ASSERT_EQ(sink.runs().size(), 1u);
  EXPECT_EQ(sink.runs()[0].segments.size(), 1u);
  EXPECT_FALSE(sink.runs()[0].segments[0].reverse);
}

TEST(FileRunSinkTest, MultipleRunsGetDistinctFiles) {
  MemEnv env;
  FileRunSink sink(&env, "dir", "t");
  for (int r = 0; r < 3; ++r) {
    ASSERT_TWRS_OK(sink.BeginRun());
    ASSERT_TWRS_OK(sink.Append(kStream1, r));
    ASSERT_TWRS_OK(sink.EndRun());
  }
  ASSERT_TWRS_OK(sink.Finish());
  ASSERT_EQ(sink.runs().size(), 3u);
  EXPECT_NE(sink.runs()[0].segments[0].path, sink.runs()[1].segments[0].path);
  EXPECT_NE(sink.runs()[1].segments[0].path, sink.runs()[2].segments[0].path);
}

}  // namespace
}  // namespace twrs
