#include "core/victim_buffer.h"

#include <gtest/gtest.h>

#include "core/run_sink.h"
#include "tests/test_util.h"

namespace twrs {
namespace {

// Records stream appends verbatim for inspection.
class RecordingSink : public RunSink {
 public:
  Status BeginRun() override { return Status::OK(); }
  Status Append(RunStream stream, Key key) override {
    appends[stream].push_back(key);
    return Status::OK();
  }
  Status EndRun() override { return Status::OK(); }
  Status Finish() override { return Status::OK(); }

  std::vector<Key> appends[kNumRunStreams];
};

TEST(VictimBufferTest, DisabledWhenCapacityZero) {
  VictimBuffer victim(0);
  EXPECT_FALSE(victim.enabled());
  EXPECT_FALSE(victim.bootstrapping());
  EXPECT_FALSE(victim.RangeContains(5));
}

TEST(VictimBufferTest, BootstrapSplitMatchesPaperExample) {
  // §4.5: bootstrap contents {40, 50, 39, 51}; largest gap (40, 50); the
  // lower part {39, 40} returns to the BottomHeap side, the upper part
  // {50, 51} to the TopHeap side; the valid range becomes (40, 50).
  VictimBuffer victim(4);
  for (Key k : {40, 50, 39, 51}) victim.Add(k);
  EXPECT_TRUE(victim.Full());
  std::vector<Key> lows;
  std::vector<Key> highs;
  ASSERT_TWRS_OK(victim.BootstrapSplit(&lows, &highs));
  EXPECT_EQ(lows, std::vector<Key>({39, 40}));
  EXPECT_EQ(highs, std::vector<Key>({50, 51}));
  EXPECT_EQ(victim.range_lo(), 40);
  EXPECT_EQ(victim.range_hi(), 50);
  EXPECT_FALSE(victim.bootstrapping());
  EXPECT_TRUE(victim.RangeContains(44));
  EXPECT_TRUE(victim.RangeContains(40));
  EXPECT_FALSE(victim.RangeContains(39));
  EXPECT_FALSE(victim.RangeContains(51));
  EXPECT_EQ(victim.size(), 0u);
}

TEST(VictimBufferTest, ActiveFlushNestsRanges) {
  VictimBuffer victim(4);
  RecordingSink sink;
  for (Key k : {0, 10, 90, 100}) victim.Add(k);
  std::vector<Key> lows;
  std::vector<Key> highs;
  ASSERT_TWRS_OK(victim.BootstrapSplit(&lows, &highs));
  ASSERT_EQ(victim.range_lo(), 10);
  ASSERT_EQ(victim.range_hi(), 90);

  // Absorb records inside (10, 90) and flush: ranges must nest, with the
  // low part on stream 3 ascending and the high part on stream 2
  // descending.
  for (Key k : {20, 30, 70, 80}) victim.Add(k);
  ASSERT_TWRS_OK(victim.FlushActive(&sink));
  EXPECT_EQ(victim.range_lo(), 30);
  EXPECT_EQ(victim.range_hi(), 70);
  EXPECT_EQ(sink.appends[kStream3], std::vector<Key>({20, 30}));
  EXPECT_EQ(sink.appends[kStream2], std::vector<Key>({80, 70}));

  // A second active flush keeps both streams sorted.
  for (Key k : {40, 60, 35, 65}) victim.Add(k);
  ASSERT_TWRS_OK(victim.FlushActive(&sink));
  EXPECT_EQ(sink.appends[kStream3], std::vector<Key>({20, 30, 35, 40}));
  EXPECT_EQ(sink.appends[kStream2], std::vector<Key>({80, 70, 65, 60}));
  EXPECT_EQ(victim.range_lo(), 40);
  EXPECT_EQ(victim.range_hi(), 60);
}

TEST(VictimBufferTest, FinalFlushWritesAscendingToStream3) {
  VictimBuffer victim(8);
  RecordingSink sink;
  for (Key k : {5, 1, 3}) victim.Add(k);
  ASSERT_TWRS_OK(victim.FlushFinal(&sink));
  EXPECT_EQ(sink.appends[kStream3], std::vector<Key>({1, 3, 5}));
  EXPECT_EQ(victim.size(), 0u);
}

TEST(VictimBufferTest, SingleRecordBootstrap) {
  VictimBuffer victim(1);
  victim.Add(7);
  std::vector<Key> lows;
  std::vector<Key> highs;
  ASSERT_TWRS_OK(victim.BootstrapSplit(&lows, &highs));
  EXPECT_EQ(lows, std::vector<Key>({7}));
  EXPECT_TRUE(highs.empty());
  EXPECT_TRUE(victim.range_set());
  EXPECT_TRUE(victim.RangeContains(7));
  EXPECT_FALSE(victim.RangeContains(8));
}

TEST(VictimBufferTest, TiesInGapSelectionPickFirstLargest) {
  VictimBuffer victim(4);
  // Gaps: 10 (1..11), 10 (11..21), 10 (21..31) — first largest wins.
  for (Key k : {1, 11, 21, 31}) victim.Add(k);
  std::vector<Key> lows;
  std::vector<Key> highs;
  ASSERT_TWRS_OK(victim.BootstrapSplit(&lows, &highs));
  EXPECT_EQ(victim.range_lo(), 1);
  EXPECT_EQ(victim.range_hi(), 11);
  EXPECT_EQ(lows, std::vector<Key>({1}));
  EXPECT_EQ(highs, std::vector<Key>({11, 21, 31}));
}

TEST(VictimBufferTest, ResetForNewRunClearsRange) {
  VictimBuffer victim(2);
  victim.Add(1);
  victim.Add(10);
  std::vector<Key> lows;
  std::vector<Key> highs;
  ASSERT_TWRS_OK(victim.BootstrapSplit(&lows, &highs));
  EXPECT_TRUE(victim.range_set());
  victim.ResetForNewRun();
  EXPECT_FALSE(victim.range_set());
  EXPECT_TRUE(victim.bootstrapping());
  EXPECT_EQ(victim.size(), 0u);
}

TEST(VictimBufferTest, FlushCountsAccumulate) {
  VictimBuffer victim(2);
  RecordingSink sink;
  victim.Add(1);
  victim.Add(100);
  std::vector<Key> lows;
  std::vector<Key> highs;
  ASSERT_TWRS_OK(victim.BootstrapSplit(&lows, &highs));
  victim.Add(50);
  victim.Add(60);
  ASSERT_TWRS_OK(victim.FlushActive(&sink));
  EXPECT_EQ(victim.flush_count(), 2u);
}

TEST(VictimBufferTest, EmptyFlushesAreNoOps) {
  VictimBuffer victim(4);
  RecordingSink sink;
  std::vector<Key> lows;
  std::vector<Key> highs;
  ASSERT_TWRS_OK(victim.BootstrapSplit(&lows, &highs));
  EXPECT_FALSE(victim.range_set());  // nothing sampled, no range chosen
  EXPECT_TRUE(lows.empty());
  EXPECT_TRUE(highs.empty());
  ASSERT_TWRS_OK(victim.FlushFinal(&sink));
  for (const auto& stream : sink.appends) EXPECT_TRUE(stream.empty());
}

TEST(VictimBufferTest, SingleRecordActiveFlushTightensLowerBound) {
  VictimBuffer victim(1);
  RecordingSink sink;
  victim.Add(10);
  std::vector<Key> lows;
  std::vector<Key> highs;
  ASSERT_TWRS_OK(victim.BootstrapSplit(&lows, &highs));
  // Range is the single point 10; widen artificially via a new run is not
  // possible, so exercise FlushActive on the single-slot buffer.
  victim.Add(10);
  ASSERT_TWRS_OK(victim.FlushActive(&sink));
  EXPECT_EQ(sink.appends[kStream3], std::vector<Key>({10}));
  EXPECT_EQ(victim.range_lo(), 10);
}

}  // namespace
}  // namespace twrs
