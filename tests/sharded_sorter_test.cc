#include "shard/sharded_sorter.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "exec/executor.h"
#include "io/mem_env.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace twrs {
namespace {

using testing::ChecksumOf;
using testing::Drain;

TEST(ReservoirSamplerTest, SmallStreamsAreKeptWhole) {
  ReservoirSampler sampler(10, 1);
  for (Key k = 0; k < 5; ++k) sampler.Add(k);
  EXPECT_EQ(sampler.seen(), 5u);
  EXPECT_EQ(sampler.sample(), (std::vector<Key>{0, 1, 2, 3, 4}));
}

TEST(ReservoirSamplerTest, CapacityBoundsTheSample) {
  ReservoirSampler sampler(16, 7);
  for (Key k = 0; k < 10000; ++k) sampler.Add(k);
  EXPECT_EQ(sampler.seen(), 10000u);
  ASSERT_EQ(sampler.sample().size(), 16u);
  for (Key k : sampler.sample()) {
    EXPECT_GE(k, 0);
    EXPECT_LT(k, 10000);
  }
  // A uniform sample of a uniform stream should not cluster in one half.
  const size_t low = static_cast<size_t>(
      std::count_if(sampler.sample().begin(), sampler.sample().end(),
                    [](Key k) { return k < 5000; }));
  EXPECT_GT(low, 0u);
  EXPECT_LT(low, 16u);
}

TEST(ReservoirSamplerTest, DeterministicForAFixedSeed) {
  ReservoirSampler a(8, 42), b(8, 42), c(8, 43);
  for (Key k = 0; k < 1000; ++k) {
    a.Add(k);
    b.Add(k);
    c.Add(k);
  }
  EXPECT_EQ(a.sample(), b.sample());
  EXPECT_NE(a.sample(), c.sample());
}

TEST(PickSplittersTest, QuantilesOfAUniformSample) {
  std::vector<Key> sample;
  for (Key k = 1; k <= 100; ++k) sample.push_back(k);
  const std::vector<Key> splitters = PickSplitters(sample, 4);
  ASSERT_EQ(splitters.size(), 3u);
  EXPECT_TRUE(std::is_sorted(splitters.begin(), splitters.end()));
  // Near the 25/50/75 percentiles.
  EXPECT_NEAR(static_cast<double>(splitters[0]), 25.0, 2.0);
  EXPECT_NEAR(static_cast<double>(splitters[1]), 50.0, 2.0);
  EXPECT_NEAR(static_cast<double>(splitters[2]), 75.0, 2.0);
}

TEST(PickSplittersTest, DegenerateInputs) {
  EXPECT_TRUE(PickSplitters({1, 2, 3}, 1).empty());
  EXPECT_TRUE(PickSplitters({}, 4).empty());
}

TEST(PickSplittersTest, DuplicateHeavySamplesCollapse) {
  // An all-equal sample cannot be split: one splitter survives dedup.
  std::vector<Key> all_equal(64, 7);
  EXPECT_EQ(PickSplitters(all_equal, 8).size(), 1u);
  // 90% one value: most quantiles coincide, so fewer distinct splitters.
  std::vector<Key> skewed(90, 5);
  for (Key k = 0; k < 10; ++k) skewed.push_back(100 + k);
  const std::vector<Key> splitters = PickSplitters(skewed, 8);
  EXPECT_LT(splitters.size(), 7u);
  EXPECT_TRUE(std::is_sorted(splitters.begin(), splitters.end()));
  const std::set<Key> unique(splitters.begin(), splitters.end());
  EXPECT_EQ(unique.size(), splitters.size());
}

ShardedSortOptions BaseOptions(size_t shards) {
  ShardedSortOptions options;
  options.shards = shards;
  options.sample_size = 256;
  options.sort.memory_records = 128;
  options.sort.twrs = TwoWayOptions::Recommended(128, 3);
  options.sort.fan_in = 4;
  options.sort.temp_dir = "tmp";
  options.sort.block_bytes = 512;
  return options;
}

void ExpectSortsCorrectly(const std::vector<Key>& input, size_t shards,
                          ShardedSortResult* out_result = nullptr) {
  MemEnv env;
  ShardedSorter sorter(&env, BaseOptions(shards));
  VectorSource source(input);
  ShardedSortResult result;
  ASSERT_TWRS_OK(sorter.Sort(&source, "out", &result));

  uint64_t count = 0;
  KeyChecksum checksum;
  ASSERT_TWRS_OK(VerifySortedFile(&env, "out", &count, &checksum));
  EXPECT_EQ(count, input.size());
  EXPECT_TRUE(checksum == ChecksumOf(input));
  EXPECT_EQ(result.input_records, input.size());
  EXPECT_EQ(result.output_records, input.size());
  uint64_t routed = 0;
  for (uint64_t n : result.shard_records) routed += n;
  EXPECT_EQ(routed, input.size());
  EXPECT_EQ(env.FileCount(), 1u);  // all scratch files cleaned up
  if (out_result != nullptr) *out_result = result;
}

TEST(ShardedSorterTest, RejectsZeroShards) {
  MemEnv env;
  ShardedSorter sorter(&env, BaseOptions(0));
  VectorSource source({1, 2, 3});
  EXPECT_TRUE(sorter.Sort(&source, "out", nullptr).IsInvalidArgument());
}

TEST(ShardedSorterTest, RejectsZeroSampleSize) {
  MemEnv env;
  ShardedSortOptions options = BaseOptions(2);
  options.sample_size = 0;
  ShardedSorter sorter(&env, options);
  VectorSource source({1, 2, 3});
  EXPECT_TRUE(sorter.Sort(&source, "out", nullptr).IsInvalidArgument());
}

TEST(ShardedSorterTest, EmptyInput) {
  ExpectSortsCorrectly({}, 4);
}

TEST(ShardedSorterTest, SingleRecord) {
  ExpectSortsCorrectly({42}, 4);
}

TEST(ShardedSorterTest, OneShardDegeneratesToPlainSort) {
  WorkloadOptions wl;
  wl.num_records = 3000;
  wl.seed = 21;
  ShardedSortResult result;
  ExpectSortsCorrectly(Drain(MakeWorkload(Dataset::kRandom, wl).get()), 1,
                       &result);
  EXPECT_TRUE(result.splitters.empty());
  ASSERT_EQ(result.shard_records.size(), 1u);
  EXPECT_EQ(result.shard_records[0], 3000u);
}

TEST(ShardedSorterTest, RandomInputAcrossShardCounts) {
  WorkloadOptions wl;
  wl.num_records = 10000;
  wl.seed = 31;
  const auto input = Drain(MakeWorkload(Dataset::kRandom, wl).get());
  for (size_t shards : {2u, 3u, 8u}) {
    SCOPED_TRACE(shards);
    ShardedSortResult result;
    ExpectSortsCorrectly(input, shards, &result);
    EXPECT_EQ(result.shard_records.size(), result.splitters.size() + 1);
    // A 256-key sample of 10k uniform keys yields distinct quantiles.
    EXPECT_EQ(result.splitters.size(), shards - 1);
  }
}

TEST(ShardedSorterTest, DuplicateKeysStayInOneShard) {
  // Keys concentrated on a handful of values: every duplicate class must
  // be routed to exactly one shard or the concatenated output interleaves.
  std::vector<Key> input;
  Random rng(77);
  for (int i = 0; i < 8000; ++i) {
    input.push_back(static_cast<Key>(rng.Uniform(5)) * 100);
  }
  ShardedSortResult result;
  ExpectSortsCorrectly(input, 4, &result);
  EXPECT_LE(result.splitters.size(), 3u);
}

TEST(ShardedSorterTest, SkewedInputCollapsesSplitters) {
  // 95% of the keys are one value; the sorter must still be correct with
  // most shards empty.
  std::vector<Key> input(9500, 1000);
  Random rng(5);
  for (int i = 0; i < 500; ++i) {
    input.push_back(static_cast<Key>(rng.Uniform(1000000)));
  }
  ShardedSortResult result;
  ExpectSortsCorrectly(input, 8, &result);
  EXPECT_LT(result.splitters.size(), 7u);
}

TEST(ShardedSorterTest, SortedAndReverseInputs) {
  WorkloadOptions wl;
  wl.num_records = 6000;
  wl.seed = 9;
  ExpectSortsCorrectly(Drain(MakeWorkload(Dataset::kSorted, wl).get()), 4);
  ExpectSortsCorrectly(Drain(MakeWorkload(Dataset::kReverseSorted, wl).get()),
                       4);
}

// The acceptance criterion: sharded output must be byte-identical to the
// serial ExternalSorter's output for the same input.
TEST(ShardedSorterTest, OutputIsByteIdenticalToSerialExternalSorter) {
  MemEnv env;
  WorkloadOptions wl;
  wl.num_records = 20000;
  wl.seed = 42;
  wl.sections = 16;
  const auto input = Drain(MakeWorkload(Dataset::kAlternating, wl).get());

  ShardedSortOptions sharded_options = BaseOptions(4);
  sharded_options.sort.parallel.worker_threads = 4;
  sharded_options.sort.parallel.prefetch_blocks = 2;
  {
    ShardedSorter sorter(&env, sharded_options);
    VectorSource source(input);
    ASSERT_TWRS_OK(sorter.Sort(&source, "out_sharded", nullptr));
  }
  {
    ExternalSortOptions serial = BaseOptions(1).sort;  // fully serial
    ExternalSorter sorter(&env, serial);
    VectorSource source(input);
    ASSERT_TWRS_OK(sorter.Sort(&source, "out_serial", nullptr));
  }

  const std::vector<uint8_t>* sharded_bytes = env.FileContents("out_sharded");
  const std::vector<uint8_t>* serial_bytes = env.FileContents("out_serial");
  ASSERT_NE(sharded_bytes, nullptr);
  ASSERT_NE(serial_bytes, nullptr);
  EXPECT_TRUE(*sharded_bytes == *serial_bytes);
  EXPECT_EQ(sharded_bytes->size(), input.size() * kRecordBytes);
}

TEST(ShardedSorterTest, SortFileMatchesSortOfSameData) {
  MemEnv env;
  WorkloadOptions wl;
  wl.num_records = 8000;
  wl.seed = 13;
  const auto input = Drain(MakeWorkload(Dataset::kMixed, wl).get());
  ASSERT_TWRS_OK(WriteAllRecords(&env, "input", input));

  ShardedSorter sorter(&env, BaseOptions(4));
  ShardedSortResult result;
  ASSERT_TWRS_OK(sorter.SortFile("input", "out", &result));
  EXPECT_EQ(result.input_records, input.size());

  uint64_t count = 0;
  KeyChecksum checksum;
  ASSERT_TWRS_OK(VerifySortedFile(&env, "out", &count, &checksum));
  EXPECT_EQ(count, input.size());
  EXPECT_TRUE(checksum == ChecksumOf(input));
  EXPECT_TRUE(env.FileExists("input"));  // input left intact
  EXPECT_EQ(env.FileCount(), 2u);        // input + output only
}

TEST(ShardedSorterTest, ShardsShareACallerProvidedExecutor) {
  MemEnv env;
  ExecutorOptions exec_options;
  exec_options.capacity = 2;
  Executor executor(exec_options);

  WorkloadOptions wl;
  wl.num_records = 9000;
  wl.seed = 3;
  const auto input = Drain(MakeWorkload(Dataset::kRandom, wl).get());

  ShardedSortOptions options = BaseOptions(4);
  options.executor = &executor;
  options.sort.parallel.worker_threads = 2;
  ShardedSorter sorter(&env, options);
  VectorSource source(input);
  ASSERT_TWRS_OK(sorter.Sort(&source, "out", nullptr));

  // The shard tasks and the per-shard pipelines all borrowed the one pool.
  EXPECT_EQ(executor.pool_count(), 1u);
  uint64_t count = 0;
  KeyChecksum checksum;
  ASSERT_TWRS_OK(VerifySortedFile(&env, "out", &count, &checksum));
  EXPECT_EQ(count, input.size());
  EXPECT_TRUE(checksum == ChecksumOf(input));
}

// Per-shard sorts that fail partway have already written run files into
// their nested scratch directories; the unwind must remove all of it,
// not just the top-level shard files.
TEST(ShardedSorterTest, PerShardFailureLeavesNoOrphanedScratch) {
  MemEnv env;
  WorkloadOptions wl;
  wl.num_records = 8000;
  wl.seed = 17;
  const auto input = Drain(MakeWorkload(Dataset::kRandom, wl).get());
  ASSERT_TWRS_OK(WriteAllRecords(&env, "in", input));

  ShardedSortOptions options = BaseOptions(3);
  options.sort.fan_in = 1;  // poison: every per-shard merge fails
  ShardedSorter sorter(&env, options);
  EXPECT_TRUE(sorter.SortFile("in", "out", nullptr).IsInvalidArgument());
  // Only the input survives: shard files, per-shard run files and any
  // partial output are gone.
  EXPECT_EQ(env.FileCount(), 1u);
  EXPECT_TRUE(env.FileExists("in"));
}

TEST(ShardedSorterTest, PreCancelledSortWritesNothing) {
  MemEnv env;
  WorkloadOptions wl;
  wl.num_records = 2000;
  wl.seed = 18;
  const auto input = Drain(MakeWorkload(Dataset::kRandom, wl).get());
  ASSERT_TWRS_OK(WriteAllRecords(&env, "in", input));

  CancelToken token;
  token.Cancel();
  ShardedSortOptions options = BaseOptions(2);
  options.sort.cancel = &token;
  ShardedSorter sorter(&env, options);
  EXPECT_TRUE(sorter.SortFile("in", "out", nullptr).IsCancelled());
  EXPECT_EQ(env.FileCount(), 1u);  // the input
}

TEST(ShardedSorterTest, ReportsIoVolumeAcrossAllPasses) {
  MemEnv env;
  WorkloadOptions wl;
  wl.num_records = 6000;
  wl.seed = 19;
  const auto input = Drain(MakeWorkload(Dataset::kRandom, wl).get());
  ASSERT_TWRS_OK(WriteAllRecords(&env, "in", input));

  ShardedSorter sorter(&env, BaseOptions(3));
  ShardedSortResult result;
  ASSERT_TWRS_OK(sorter.SortFile("in", "out", &result));

  const uint64_t input_bytes = input.size() * kRecordBytes;
  // Partition files, per-shard runs, sorted shards and the output each
  // rewrite the data once: at least 3x input out, 2x back in (sampling
  // pass included).
  EXPECT_GE(result.bytes_written, 3 * input_bytes);
  EXPECT_GE(result.bytes_read, 2 * input_bytes);
  // And the per-shard breakdowns carry their own counters.
  uint64_t shard_written = 0;
  for (const ExternalSortResult& r : result.shard_results) {
    shard_written += r.bytes_written;
  }
  EXPECT_GT(shard_written, 0u);
  EXPECT_LE(shard_written, result.bytes_written);
}

TEST(ShardedSorterTest, DirectRangeWritesDoNotDoubleCountTheOutput) {
  // With Load-Sort-Store runs (forward record files only — no reverse-file
  // page padding), every byte the sharded sort writes is accountable:
  // partition files + run files + the output, each exactly once. The old
  // concatenation pass added a fourth full write (per-shard sorted files)
  // plus one more read of the whole output; its removal must show up in
  // the counters, not just the wall clock.
  MemEnv env;
  WorkloadOptions wl;
  wl.num_records = 6000;
  wl.seed = 23;
  const auto input = Drain(MakeWorkload(Dataset::kRandom, wl).get());
  ASSERT_TWRS_OK(WriteAllRecords(&env, "in", input));

  ShardedSortOptions options = BaseOptions(3);
  options.sort.algorithm = RunGenAlgorithm::kLoadSortStore;
  options.sort.memory_records = 1024;  // few runs, single merge pass
  ShardedSorter sorter(&env, options);
  ShardedSortResult result;
  ASSERT_TWRS_OK(sorter.SortFile("in", "out", &result));

  const uint64_t input_bytes = input.size() * kRecordBytes;
  // Writes: partition + runs + output = exactly 3x (was 4x with concat).
  EXPECT_EQ(result.bytes_written, 3 * input_bytes);
  // Reads: sampling + partition + run generation + final merge = 4x (the
  // concat pass used to re-read the whole output for a 5th).
  EXPECT_EQ(result.bytes_read, 4 * input_bytes);

  uint64_t count = 0;
  KeyChecksum checksum;
  ASSERT_TWRS_OK(VerifySortedFile(&env, "out", &count, &checksum));
  EXPECT_EQ(count, input.size());
  EXPECT_TRUE(checksum == ChecksumOf(input));
}

TEST(ShardedSorterTest, PartitionedFinalMergesInsideShardsStayByteIdentical) {
  // Compose the two new paths: shards write their output ranges directly
  // AND each shard's final merge is itself partitioned. The bytes must
  // still match the plain serial sorter.
  WorkloadOptions wl;
  wl.num_records = 40000;
  wl.seed = 29;
  const auto input = Drain(MakeWorkload(Dataset::kRandom, wl).get());

  MemEnv env;
  std::vector<uint8_t> expect;
  {
    ExternalSortOptions serial;
    serial.memory_records = 2048;
    serial.twrs = TwoWayOptions::Recommended(2048, 3);
    serial.fan_in = 4;
    serial.temp_dir = "tmp";
    serial.block_bytes = 512;
    ExternalSorter sorter(&env, serial);
    VectorSource source(input);
    ASSERT_TWRS_OK(sorter.Sort(&source, "out_serial", nullptr));
    ASSERT_NE(env.FileContents("out_serial"), nullptr);
    expect = *env.FileContents("out_serial");
  }

  ShardedSortOptions options = BaseOptions(3);
  options.sort.memory_records = 2048;
  options.sort.twrs = TwoWayOptions::Recommended(2048, 3);
  options.sort.parallel.worker_threads = 4;
  options.sort.parallel.final_merge_threads = 4;
  ShardedSorter sorter(&env, options);
  VectorSource source(input);
  ShardedSortResult result;
  ASSERT_TWRS_OK(sorter.Sort(&source, "out_sharded", &result));
  ASSERT_NE(env.FileContents("out_sharded"), nullptr);
  EXPECT_EQ(*env.FileContents("out_sharded"), expect);
  EXPECT_EQ(result.output_records, input.size());
}

}  // namespace
}  // namespace twrs
