#include "util/status.h"

#include <gtest/gtest.h>

namespace twrs {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_EQ(s.code(), Status::Code::kOk);
}

TEST(StatusTest, FactoryConstructorsSetCodeAndMessage) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_FALSE(Status::IOError("x").ok());
  EXPECT_EQ(Status::IOError("disk gone").message(), "disk gone");
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  EXPECT_EQ(Status::IOError("open failed").ToString(),
            "IO error: open failed");
  EXPECT_EQ(Status::NotFound("").ToString(), "Not found");
  EXPECT_EQ(Status::InvalidArgument("bad").ToString(),
            "Invalid argument: bad");
}

Status FailsFirst() { return Status::Corruption("bad page"); }

Status Caller() {
  TWRS_RETURN_IF_ERROR(FailsFirst());
  return Status::OK();  // must be unreachable
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  Status s = Caller();
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_EQ(s.message(), "bad page");
}

TEST(StatusTest, CopyPreservesState) {
  Status a = Status::InvalidArgument("nope");
  Status b = a;
  EXPECT_TRUE(b.IsInvalidArgument());
  EXPECT_EQ(b.message(), "nope");
}

}  // namespace
}  // namespace twrs
