#include "core/two_way_replacement_selection.h"

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "core/record_source.h"
#include "core/run_sink.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace twrs {
namespace {

using testing::Drain;
using testing::ExpectValidRuns;
using testing::GenerateRuns;

TwoWayOptions BaseOptions(size_t memory) {
  TwoWayOptions options = TwoWayOptions::Recommended(memory, /*seed=*/7);
  return options;
}

TEST(TwoWayOptionsTest, RecommendedConfiguration) {
  TwoWayOptions options = TwoWayOptions::Recommended(10000);
  EXPECT_EQ(options.memory_records, 10000u);
  EXPECT_TRUE(options.use_input_buffer);
  EXPECT_TRUE(options.use_victim_buffer);
  EXPECT_EQ(options.input_heuristic, InputHeuristic::kMean);
  EXPECT_EQ(options.output_heuristic, OutputHeuristic::kRandom);
  EXPECT_DOUBLE_EQ(options.buffer_fraction, 0.02);
  ASSERT_TWRS_OK(options.Validate());
  // 2% of 10000 = 200 buffer records, split evenly.
  EXPECT_EQ(options.TotalBufferRecords(), 200u);
  EXPECT_EQ(options.InputBufferRecords(), 100u);
  EXPECT_EQ(options.VictimBufferRecords(), 100u);
  EXPECT_EQ(options.HeapRecords(), 9800u);
}

TEST(TwoWayOptionsTest, SingleBufferTakesWholeAllocation) {
  TwoWayOptions options = BaseOptions(1000);
  options.use_input_buffer = false;
  EXPECT_EQ(options.InputBufferRecords(), 0u);
  EXPECT_EQ(options.VictimBufferRecords(), 20u);
  options.use_input_buffer = true;
  options.use_victim_buffer = false;
  EXPECT_EQ(options.InputBufferRecords(), 20u);
  EXPECT_EQ(options.VictimBufferRecords(), 0u);
}

TEST(TwoWayOptionsTest, NoBuffersMeansAllMemoryForHeaps) {
  TwoWayOptions options = BaseOptions(1000);
  options.use_input_buffer = false;
  options.use_victim_buffer = false;
  EXPECT_EQ(options.TotalBufferRecords(), 0u);
  EXPECT_EQ(options.HeapRecords(), 1000u);
}

TEST(TwoWayOptionsTest, EnabledBuffersGetAtLeastOneRecord) {
  TwoWayOptions options = BaseOptions(1000);
  options.buffer_fraction = 0.0002;  // rounds to 0 records
  EXPECT_GE(options.TotalBufferRecords(), 2u);
  EXPECT_GE(options.InputBufferRecords(), 1u);
  EXPECT_GE(options.VictimBufferRecords(), 1u);
}

TEST(TwoWayOptionsTest, ValidationCatchesBadConfigs) {
  TwoWayOptions options = BaseOptions(2);
  EXPECT_FALSE(options.Validate().ok());
  options = BaseOptions(1000);
  options.buffer_fraction = 1.5;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(TwoWayRsTest, EmptyInputProducesNoRuns) {
  TwoWayReplacementSelection twrs(BaseOptions(100));
  auto result = GenerateRuns(&twrs, {});
  EXPECT_TRUE(result.runs.empty());
}

TEST(TwoWayRsTest, SmallInputSingleSortedRun) {
  TwoWayReplacementSelection twrs(BaseOptions(100));
  auto result = GenerateRuns(&twrs, {9, 1, 8, 2, 7, 3});
  ASSERT_EQ(result.runs.size(), 1u);
  EXPECT_EQ(result.runs[0], std::vector<Key>({1, 2, 3, 7, 8, 9}));
}

TEST(TwoWayRsTest, PaperWorkedExampleInput) {
  // §4.5's diverging input: descending 40,39,38,... interleaved with
  // ascending 50,51,52,... 2WRS should capture both trends in one run.
  std::vector<Key> input;
  for (int i = 0; i < 200; ++i) {
    input.push_back(40 - i);
    input.push_back(50 + i);
  }
  TwoWayOptions options = BaseOptions(22);
  options.buffer_fraction = 0.4;  // ~4 input + 4 victim, 14 heap (as §4.5)
  TwoWayReplacementSelection twrs(options);
  auto result = GenerateRuns(&twrs, input);
  ExpectValidRuns(result.runs, input);
  EXPECT_LE(result.runs.size(), 2u);
}

TEST(TwoWayRsTest, VictimBufferAbsorbsGapRecords) {
  // Diverging trends leave a gap; records landing inside it (44 in the
  // §4.5 example) must be absorbed by the victim buffer.
  std::vector<Key> input;
  for (int i = 0; i < 100; ++i) {
    input.push_back(40 - i);
    input.push_back(50 + i);
    if (i == 18) input.push_back(44);
  }
  TwoWayOptions options = BaseOptions(22);
  options.buffer_fraction = 0.4;
  TwoWayReplacementSelection twrs(options);
  VectorSource source(input);
  CollectingRunSink sink;
  RunGenStats stats;
  ASSERT_TWRS_OK(twrs.Generate(&source, &sink, &stats));
  ExpectValidRuns(sink.collected(), input);
  EXPECT_GT(stats.victim_records, 0u);
}

TEST(TwoWayRsTest, DivertRuleKeepsRandomHeuristicCorrect) {
  // The Random input heuristic scatters records across both heaps; the
  // divert rule must still deliver sorted runs.
  WorkloadOptions wl;
  wl.num_records = 5000;
  wl.seed = 11;
  auto input = Drain(MakeWorkload(Dataset::kRandom, wl).get());
  TwoWayOptions options = BaseOptions(128);
  options.input_heuristic = InputHeuristic::kRandom;
  options.output_heuristic = OutputHeuristic::kRandom;
  TwoWayReplacementSelection twrs(options);
  auto result = GenerateRuns(&twrs, input);
  ExpectValidRuns(result.runs, input);
}

TEST(TwoWayRsTest, SameSeedIsDeterministic) {
  WorkloadOptions wl;
  wl.num_records = 2000;
  wl.seed = 5;
  auto input = Drain(MakeWorkload(Dataset::kRandom, wl).get());
  TwoWayReplacementSelection a(BaseOptions(100));
  TwoWayReplacementSelection b(BaseOptions(100));
  auto ra = GenerateRuns(&a, input);
  auto rb = GenerateRuns(&b, input);
  EXPECT_EQ(ra.runs, rb.runs);
}

TEST(TwoWayRsTest, StatsCountersAreConsistent) {
  WorkloadOptions wl;
  wl.num_records = 4000;
  wl.seed = 9;
  auto input = Drain(MakeWorkload(Dataset::kMixed, wl).get());
  TwoWayReplacementSelection twrs(BaseOptions(200));
  VectorSource source(input);
  CollectingRunSink sink;
  RunGenStats stats;
  ASSERT_TWRS_OK(twrs.Generate(&source, &sink, &stats));
  EXPECT_EQ(stats.total_records, input.size());
  EXPECT_EQ(stats.num_runs(), sink.collected().size());
  EXPECT_GT(stats.victim_records, 0u);  // mixed input exercises the victim
}

// Every combination of input heuristic, output heuristic, buffer setup and
// dataset must produce sorted runs that partition the input — the paper's
// 2160-configuration factorial experiment relies on all of them being
// correct (§5.2).
using ConfigParam = std::tuple<int, int, int, int>;  // in, out, buffers, ds

class TwoWayConfigTest : public ::testing::TestWithParam<ConfigParam> {};

TEST_P(TwoWayConfigTest, RunsAreSortedPartitions) {
  const auto [in_h, out_h, buffers, dataset] = GetParam();
  WorkloadOptions wl;
  wl.num_records = 3000;
  wl.seed = 21;
  wl.sections = 10;
  auto input = Drain(MakeWorkload(static_cast<Dataset>(dataset), wl).get());

  TwoWayOptions options = BaseOptions(150);
  options.input_heuristic = static_cast<InputHeuristic>(in_h);
  options.output_heuristic = static_cast<OutputHeuristic>(out_h);
  options.use_input_buffer = buffers == 0 || buffers == 1;
  options.use_victim_buffer = buffers == 1 || buffers == 2;
  TwoWayReplacementSelection twrs(options);
  auto result = GenerateRuns(&twrs, input);
  ExpectValidRuns(result.runs, input);
  EXPECT_EQ(result.stats.total_records, input.size());
}

INSTANTIATE_TEST_SUITE_P(
    HeuristicSweep, TwoWayConfigTest,
    ::testing::Combine(::testing::Range(0, kNumInputHeuristics),
                       ::testing::Range(0, kNumOutputHeuristics),
                       ::testing::Values(1),  // both buffers
                       ::testing::Values(static_cast<int>(Dataset::kRandom),
                                         static_cast<int>(Dataset::kMixed))));

INSTANTIATE_TEST_SUITE_P(
    BufferSetupSweep, TwoWayConfigTest,
    ::testing::Combine(::testing::Values(static_cast<int>(InputHeuristic::kMean)),
                       ::testing::Values(static_cast<int>(OutputHeuristic::kRandom)),
                       ::testing::Values(0, 1, 2),  // input only, both, victim only
                       ::testing::Range(0, kNumDatasets)));

}  // namespace
}  // namespace twrs
