// End-to-end scenarios across modules, including the headline comparisons
// the paper's Chapter 6 is built on.

#include <gtest/gtest.h>

#include "core/replacement_selection.h"
#include "core/two_way_replacement_selection.h"
#include "io/mem_env.h"
#include "io/posix_env.h"
#include "io/sim_disk_env.h"
#include "merge/external_sorter.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace twrs {
namespace {

using testing::ChecksumOf;
using testing::Drain;
using testing::MakeTempDir;

ExternalSortResult SortWith(Env* env, RunGenAlgorithm algorithm,
                            Dataset dataset, const std::string& dir,
                            uint64_t records, size_t memory) {
  WorkloadOptions wl;
  wl.num_records = records;
  wl.seed = 2024;
  auto source = MakeWorkload(dataset, wl);

  ExternalSortOptions options;
  options.algorithm = algorithm;
  options.memory_records = memory;
  options.twrs = TwoWayOptions::Recommended(memory, 9);
  options.fan_in = 10;
  options.temp_dir = dir + "/" + RunGenAlgorithmName(algorithm) +
                     DatasetName(dataset);
  ExternalSortResult result;
  ExternalSorter sorter(env, options);
  const std::string out = dir + "/out_" + DatasetName(dataset) + "_" +
                          RunGenAlgorithmName(algorithm);
  Status s = sorter.Sort(source.get(), out, &result);
  EXPECT_TRUE(s.ok()) << s.ToString();
  uint64_t count = 0;
  s = VerifySortedFile(env, out, &count, nullptr);
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(count, result.output_records);
  return result;
}

TEST(IntegrationTest, PosixEndToEndSortIsCorrect) {
  PosixEnv env;
  const std::string dir = MakeTempDir();
  WorkloadOptions wl;
  wl.num_records = 50000;
  wl.seed = 5;
  auto input = Drain(MakeWorkload(Dataset::kRandom, wl).get());

  ExternalSortOptions options;
  options.memory_records = 1000;
  options.twrs = TwoWayOptions::Recommended(1000);
  options.temp_dir = dir + "/tmp";
  ExternalSorter sorter(&env, options);
  VectorSource source(input);
  ExternalSortResult result;
  ASSERT_TWRS_OK(sorter.Sort(&source, dir + "/out", &result));
  uint64_t count = 0;
  KeyChecksum checksum;
  ASSERT_TWRS_OK(VerifySortedFile(&env, dir + "/out", &count, &checksum));
  EXPECT_EQ(count, input.size());
  EXPECT_TRUE(checksum == ChecksumOf(input));
  EXPECT_GT(result.run_gen.num_runs(), 20u);  // far beyond one memory
}

TEST(IntegrationTest, ReverseSortedHeadlineResult) {
  // The paper's headline: on reverse-sorted input RS degenerates to
  // memory-sized runs while 2WRS produces a single run (Theorems 3 and 4),
  // which then skips the merge work almost entirely.
  PosixEnv env;
  const std::string dir = MakeTempDir();
  const uint64_t records = 40000;
  const size_t memory = 800;

  auto rs = SortWith(&env, RunGenAlgorithm::kReplacementSelection,
                     Dataset::kReverseSorted, dir, records, memory);
  auto twrs = SortWith(&env, RunGenAlgorithm::kTwoWayReplacementSelection,
                       Dataset::kReverseSorted, dir, records, memory);
  EXPECT_EQ(twrs.run_gen.num_runs(), 1u);
  EXPECT_NEAR(static_cast<double>(rs.run_gen.num_runs()),
              static_cast<double>(records) / memory, 2.0);
  EXPECT_LT(twrs.merge.records_written, rs.merge.records_written);
}

TEST(IntegrationTest, MixedInputGeneratesFarFewerRuns) {
  PosixEnv env;
  const std::string dir = MakeTempDir();
  auto rs = SortWith(&env, RunGenAlgorithm::kReplacementSelection,
                     Dataset::kMixed, dir, 40000, 800);
  auto twrs = SortWith(&env, RunGenAlgorithm::kTwoWayReplacementSelection,
                       Dataset::kMixed, dir, 40000, 800);
  EXPECT_LT(twrs.run_gen.num_runs() * 5, rs.run_gen.num_runs());
}

TEST(IntegrationTest, RandomInputParity) {
  PosixEnv env;
  const std::string dir = MakeTempDir();
  auto rs = SortWith(&env, RunGenAlgorithm::kReplacementSelection,
                     Dataset::kRandom, dir, 40000, 800);
  auto twrs = SortWith(&env, RunGenAlgorithm::kTwoWayReplacementSelection,
                       Dataset::kRandom, dir, 40000, 800);
  const double ratio = static_cast<double>(twrs.run_gen.num_runs()) /
                       static_cast<double>(rs.run_gen.num_runs());
  EXPECT_GT(ratio, 0.85);
  EXPECT_LT(ratio, 1.2);
}

TEST(IntegrationTest, LoadSortStoreIsTheFloor) {
  // RS and 2WRS both beat Load-Sort-Store's memory-sized runs on random
  // input (§2.1.1: RS runs are at least as large as memory).
  PosixEnv env;
  const std::string dir = MakeTempDir();
  auto lss = SortWith(&env, RunGenAlgorithm::kLoadSortStore, Dataset::kRandom,
                      dir, 40000, 800);
  auto rs = SortWith(&env, RunGenAlgorithm::kReplacementSelection,
                     Dataset::kRandom, dir, 40000, 800);
  EXPECT_GT(lss.run_gen.num_runs(), rs.run_gen.num_runs());
}

TEST(IntegrationTest, SimulatedDiskChargesMergePasses) {
  // The simulated disk model must attribute more I/O time to a sort that
  // performs more merge passes (lower fan-in).
  MemEnv base;
  WorkloadOptions wl;
  wl.num_records = 30000;
  wl.seed = 3;

  auto run_with_fan_in = [&](size_t fan_in) {
    SimDiskEnv env(&base);
    ExternalSortOptions options;
    options.memory_records = 300;
    options.twrs = TwoWayOptions::Recommended(300);
    options.algorithm = RunGenAlgorithm::kLoadSortStore;  // many runs
    options.fan_in = fan_in;
    options.temp_dir = "tmp" + std::to_string(fan_in);
    ExternalSorter sorter(&env, options);
    auto source = MakeWorkload(Dataset::kRandom, wl);
    ExternalSortResult result;
    EXPECT_TRUE(
        sorter.Sort(source.get(), "out" + std::to_string(fan_in), &result)
            .ok());
    return env.model().SimulatedSeconds();
  };

  const double narrow = run_with_fan_in(2);   // many passes
  const double wide = run_with_fan_in(64);    // one pass
  EXPECT_GT(narrow, wide);
}

}  // namespace
}  // namespace twrs
