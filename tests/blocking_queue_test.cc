#include "exec/blocking_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace twrs {
namespace {

TEST(BlockingQueueTest, FifoOrder) {
  BlockingQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.Push(i));
  for (int i = 0; i < 5; ++i) {
    int v = -1;
    EXPECT_TRUE(q.Pop(&v));
    EXPECT_EQ(v, i);
  }
  EXPECT_EQ(q.size(), 0u);
}

TEST(BlockingQueueTest, TryPushFailsWhenFull) {
  BlockingQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));
  int v;
  EXPECT_TRUE(q.TryPop(&v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(q.TryPush(3));
}

TEST(BlockingQueueTest, TryPopFailsWhenEmpty) {
  BlockingQueue<int> q(2);
  int v;
  EXPECT_FALSE(q.TryPop(&v));
}

TEST(BlockingQueueTest, ZeroCapacityIsClampedToOne) {
  BlockingQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_TRUE(q.TryPush(7));
  EXPECT_FALSE(q.TryPush(8));
}

TEST(BlockingQueueTest, PushBlocksUntilPopMakesRoom) {
  BlockingQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.Push(2));  // blocks until the consumer pops
    pushed.store(true);
  });
  // Give the producer a chance to park on the full queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(pushed.load());
  int v;
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 2);
}

TEST(BlockingQueueTest, CloseUnblocksProducerAndConsumer) {
  BlockingQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::thread producer([&] { EXPECT_FALSE(q.Push(2)); });
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    q.Close();
  });
  producer.join();
  closer.join();
  // Remaining items drain before Pop starts failing.
  int v = -1;
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 1);
  EXPECT_FALSE(q.Pop(&v));
  EXPECT_TRUE(q.closed());
}

TEST(BlockingQueueTest, PushAfterCloseFails) {
  BlockingQueue<int> q(4);
  q.Close();
  EXPECT_FALSE(q.Push(1));
  EXPECT_FALSE(q.TryPush(1));
}

TEST(BlockingQueueTest, ManyProducersManyConsumers) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 2500;
  BlockingQueue<int> q(16);
  std::atomic<long long> sum{0};
  std::atomic<int> popped{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i));
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      int v;
      while (q.Pop(&v)) {
        sum.fetch_add(v);
        popped.fetch_add(1);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  q.Close();
  for (size_t t = kProducers; t < threads.size(); ++t) threads[t].join();
  const long long n = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

}  // namespace
}  // namespace twrs
