#include "heap/binary_heap.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <vector>

#include "heap/heapsort.h"
#include "util/random.h"

namespace twrs {
namespace {

using MinHeap = BinaryHeap<int, std::less<int>>;
using MaxHeap = BinaryHeap<int, std::greater<int>>;

TEST(BinaryHeapTest, MinHeapPopsAscending) {
  MinHeap heap;
  for (int v : {5, 1, 4, 2, 3}) heap.Push(v);
  std::vector<int> out;
  while (!heap.empty()) out.push_back(heap.Pop());
  EXPECT_EQ(out, std::vector<int>({1, 2, 3, 4, 5}));
}

TEST(BinaryHeapTest, MaxHeapPopsDescending) {
  MaxHeap heap;
  for (int v : {5, 1, 4, 2, 3}) heap.Push(v);
  std::vector<int> out;
  while (!heap.empty()) out.push_back(heap.Pop());
  EXPECT_EQ(out, std::vector<int>({5, 4, 3, 2, 1}));
}

TEST(BinaryHeapTest, TopPeeksWithoutRemoving) {
  MinHeap heap;
  heap.Push(2);
  heap.Push(1);
  EXPECT_EQ(heap.Top(), 1);
  EXPECT_EQ(heap.size(), 2u);
}

TEST(BinaryHeapTest, DuplicatesAreKept) {
  MinHeap heap;
  for (int v : {3, 3, 3, 1, 1}) heap.Push(v);
  std::vector<int> out;
  while (!heap.empty()) out.push_back(heap.Pop());
  EXPECT_EQ(out, std::vector<int>({1, 1, 3, 3, 3}));
}

TEST(BinaryHeapTest, PaperUpheapExample) {
  // Figure 3.3: adding 91 to the max heap {93, 88, 82, 66, 20, 42, 7}.
  MaxHeap heap;
  for (int v : {93, 88, 82, 66, 20, 42, 7}) heap.Push(v);
  ASSERT_TRUE(heap.IsValidHeap());
  heap.Push(91);
  ASSERT_TRUE(heap.IsValidHeap());
  EXPECT_EQ(heap.Top(), 93);
  // Figure 3.4: popping the top yields 93, then the heap re-arranges.
  EXPECT_EQ(heap.Pop(), 93);
  ASSERT_TRUE(heap.IsValidHeap());
  EXPECT_EQ(heap.Top(), 91);
}

TEST(BinaryHeapTest, PopLastLeafRemovesOneElement) {
  MinHeap heap;
  for (int v : {4, 2, 7}) heap.Push(v);
  const int leaf = heap.PopLastLeaf();
  EXPECT_EQ(heap.size(), 2u);
  EXPECT_TRUE(heap.IsValidHeap());
  // The remaining pops plus the leaf are the original multiset.
  std::vector<int> rest = {heap.Pop(), heap.Pop(), leaf};
  std::sort(rest.begin(), rest.end());
  EXPECT_EQ(rest, std::vector<int>({2, 4, 7}));
}

TEST(BinaryHeapTest, ClearEmptiesHeap) {
  MinHeap heap;
  heap.Push(1);
  heap.Clear();
  EXPECT_TRUE(heap.empty());
}

TEST(BinaryHeapTest, RandomizedAgainstStdSortProperty) {
  Random rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = rng.Uniform(300);
    std::vector<int> values(n);
    for (int& v : values) v = static_cast<int>(rng.Uniform(1000));
    MinHeap heap;
    for (int v : values) {
      heap.Push(v);
      ASSERT_TRUE(heap.IsValidHeap());
    }
    std::vector<int> expected = values;
    std::sort(expected.begin(), expected.end());
    std::vector<int> out;
    while (!heap.empty()) out.push_back(heap.Pop());
    EXPECT_EQ(out, expected) << "trial " << trial;
  }
}

TEST(BinaryHeapTest, InterleavedPushPopKeepsInvariant) {
  Random rng(6);
  MinHeap heap;
  for (int step = 0; step < 2000; ++step) {
    if (heap.empty() || rng.Uniform(3) != 0) {
      heap.Push(static_cast<int>(rng.Uniform(100)));
    } else {
      heap.Pop();
    }
    ASSERT_TRUE(heap.IsValidHeap());
  }
}

TEST(HeapSortTest, SortsAscendingByDefault) {
  std::vector<int> values = {9, -3, 5, 0, 5, 2};
  HeapSort(&values);
  EXPECT_EQ(values, std::vector<int>({-3, 0, 2, 5, 5, 9}));
}

TEST(HeapSortTest, CustomComparatorSortsDescending) {
  std::vector<int> values = {1, 3, 2};
  HeapSort(&values, std::greater<int>());
  EXPECT_EQ(values, std::vector<int>({3, 2, 1}));
}

TEST(HeapSortTest, EmptyAndSingleton) {
  std::vector<int> empty;
  HeapSort(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {42};
  HeapSort(&one);
  EXPECT_EQ(one, std::vector<int>({42}));
}

TEST(HeapSortTest, MatchesStdSortOnRandomInputs) {
  Random rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<int> values(rng.Uniform(500));
    for (int& v : values) v = static_cast<int>(rng.Next());
    std::vector<int> expected = values;
    std::sort(expected.begin(), expected.end());
    HeapSort(&values);
    EXPECT_EQ(values, expected);
  }
}

}  // namespace
}  // namespace twrs
