// Negative-compilation probe for the [[nodiscard]] Status gate.
//
// Compiled two ways by CTest (see tests/negative_compile/CMakeLists.txt):
//  - without defines: the TWRS_IGNORE_STATUS path must compile (positive
//    control, proves the probe itself is well-formed);
//  - with -DTWRS_NEGCOMPILE_DISCARD: a bare discarded Status must be
//    rejected under -Werror, proving the gate actually fires.

#include "util/status.h"

namespace {

twrs::Status MightFail() { return twrs::Status::IOError("probe"); }

void Caller() {
#ifdef TWRS_NEGCOMPILE_DISCARD
  MightFail();  // must not compile: Status is [[nodiscard]]
#else
  TWRS_IGNORE_STATUS(MightFail());  // the sanctioned way to drop a Status
#endif
}

}  // namespace

int main() {
  Caller();
  return 0;
}
