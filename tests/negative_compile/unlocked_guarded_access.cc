// Negative-compilation probe for the thread-safety-analysis gate.
//
// Compiled two ways by CTest under Clang with -Wthread-safety -Werror (see
// tests/negative_compile/CMakeLists.txt; GCC has no analysis, so the test
// is only registered for Clang):
//  - without defines: the locked access must compile (positive control);
//  - with -DTWRS_NEGCOMPILE_UNLOCKED: touching a TWRS_GUARDED_BY member
//    without holding its mutex must be rejected, proving the annotations
//    in src/ are actually being checked and not silently macro-expanded
//    to nothing.

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  void Increment() {
#ifdef TWRS_NEGCOMPILE_UNLOCKED
    ++value_;  // must not compile: mu_ is not held
#else
    twrs::MutexLock lock(&mu_);
    ++value_;
#endif
  }

 private:
  twrs::Mutex mu_;
  int value_ TWRS_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return 0;
}
