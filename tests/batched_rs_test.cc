#include "core/batched_replacement_selection.h"

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "core/replacement_selection.h"
#include "core/run_sink.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace twrs {
namespace {

using testing::Drain;
using testing::ExpectValidRuns;
using testing::GenerateRuns;

std::unique_ptr<BatchedReplacementSelection> Make(size_t memory,
                                                  size_t batch) {
  BatchedReplacementSelectionOptions options;
  options.memory_records = memory;
  options.batch_records = batch;
  return std::make_unique<BatchedReplacementSelection>(options);
}

TEST(BatchedRsTest, RejectsBadOptions) {
  VectorSource source({1});
  CollectingRunSink sink;
  EXPECT_TRUE(
      Make(0, 1)->Generate(&source, &sink, nullptr).IsInvalidArgument());
  EXPECT_TRUE(
      Make(8, 0)->Generate(&source, &sink, nullptr).IsInvalidArgument());
  EXPECT_TRUE(
      Make(8, 16)->Generate(&source, &sink, nullptr).IsInvalidArgument());
}

TEST(BatchedRsTest, EmptyInputProducesNoRuns) {
  auto generator = Make(64, 8);
  auto result = GenerateRuns(generator.get(), {});
  EXPECT_TRUE(result.runs.empty());
}

TEST(BatchedRsTest, SmallInputSingleRun) {
  auto generator = Make(64, 8);
  auto result = GenerateRuns(generator.get(), {9, 1, 8, 2});
  ASSERT_EQ(result.runs.size(), 1u);
  EXPECT_EQ(result.runs[0], std::vector<Key>({1, 2, 8, 9}));
}

TEST(BatchedRsTest, SortedInputIsOneRun) {
  std::vector<Key> input;
  for (int i = 0; i < 5000; ++i) input.push_back(i);
  auto generator = Make(100, 10);
  auto result = GenerateRuns(generator.get(), input);
  EXPECT_EQ(result.runs.size(), 1u);
  ExpectValidRuns(result.runs, input);
}

TEST(BatchedRsTest, ReverseSortedDegradesLikeRs) {
  std::vector<Key> input;
  for (int i = 5000; i > 0; --i) input.push_back(i);
  auto generator = Make(100, 10);
  auto result = GenerateRuns(generator.get(), input);
  ExpectValidRuns(result.runs, input);
  // Deferred batches carry whole-batch granularity, so runs are about the
  // memory size, as for RS (Theorem 3).
  const double relative = result.stats.AverageRunLengthRelative(100);
  EXPECT_GT(relative, 0.8);
  EXPECT_LT(relative, 1.3);
}

TEST(BatchedRsTest, RandomInputRunsAverageNearTwiceMemory) {
  WorkloadOptions wl;
  wl.num_records = 50000;
  wl.seed = 13;
  auto input = Drain(MakeWorkload(Dataset::kRandom, wl).get());
  auto generator = Make(500, 50);
  auto result = GenerateRuns(generator.get(), input);
  ExpectValidRuns(result.runs, input);
  const double relative = result.stats.AverageRunLengthRelative(500);
  EXPECT_GT(relative, 1.6);
  EXPECT_LT(relative, 2.3);
}

TEST(BatchedRsTest, MatchesRsRunCountsApproximately) {
  WorkloadOptions wl;
  wl.num_records = 30000;
  wl.seed = 9;
  auto input = Drain(MakeWorkload(Dataset::kRandom, wl).get());
  ReplacementSelectionOptions rs_options;
  rs_options.memory_records = 300;
  ReplacementSelection rs(rs_options);
  auto rs_result = GenerateRuns(&rs, input);
  auto batched = Make(300, 30);
  auto batched_result = GenerateRuns(batched.get(), input);
  const double ratio = static_cast<double>(batched_result.runs.size()) /
                       static_cast<double>(rs_result.runs.size());
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.4);
}

// Correctness must hold across datasets and batch geometries.
using BatchedParam = std::tuple<int, int>;  // dataset, batch size

class BatchedRsPropertyTest : public ::testing::TestWithParam<BatchedParam> {};

TEST_P(BatchedRsPropertyTest, RunsAreSortedPartitions) {
  const auto [dataset, batch] = GetParam();
  WorkloadOptions wl;
  wl.num_records = 6000;
  wl.seed = 23;
  wl.sections = 6;
  auto input = Drain(MakeWorkload(static_cast<Dataset>(dataset), wl).get());
  auto generator = Make(240, static_cast<size_t>(batch));
  auto result = GenerateRuns(generator.get(), input);
  ExpectValidRuns(result.runs, input);
  EXPECT_EQ(result.stats.total_records, input.size());
}

INSTANTIATE_TEST_SUITE_P(
    DatasetsAndBatches, BatchedRsPropertyTest,
    ::testing::Combine(::testing::Range(0, kNumDatasets),
                       ::testing::Values(1, 7, 60, 240)));

}  // namespace
}  // namespace twrs
