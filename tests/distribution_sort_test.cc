#include "distribution/distribution_sort.h"

#include <gtest/gtest.h>

#include "io/mem_env.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace twrs {
namespace {

using testing::ChecksumOf;
using testing::Drain;

DistributionSortOptions Options() {
  DistributionSortOptions options;
  options.memory_records = 100;
  options.num_buckets = 4;
  options.temp_dir = "tmp";
  options.block_bytes = 256;
  return options;
}

void ExpectSortsCorrectly(const std::vector<Key>& input,
                          const DistributionSortOptions& options,
                          DistributionSortStats* stats = nullptr) {
  MemEnv env;
  VectorSource source(input);
  ASSERT_TWRS_OK(DistributionSort(&env, &source, options, "out", stats));
  std::vector<Key> keys;
  ASSERT_TWRS_OK(ReadAllRecords(&env, "out", &keys));
  EXPECT_TRUE(testing::IsSortedAscending(keys));
  EXPECT_TRUE(ChecksumOf(keys) == ChecksumOf(input));
}

TEST(DistributionSortTest, EmptyInput) {
  ExpectSortsCorrectly({}, Options());
}

TEST(DistributionSortTest, SmallInputSingleInMemorySort) {
  DistributionSortStats stats;
  ExpectSortsCorrectly({5, 2, 9, 1}, Options(), &stats);
  EXPECT_EQ(stats.distribution_passes, 0u);
  EXPECT_EQ(stats.in_memory_sorts, 1u);
}

TEST(DistributionSortTest, LargeInputRequiresDistribution) {
  WorkloadOptions wl;
  wl.num_records = 5000;
  wl.seed = 4;
  auto input = Drain(MakeWorkload(Dataset::kRandom, wl).get());
  DistributionSortStats stats;
  ExpectSortsCorrectly(input, Options(), &stats);
  EXPECT_GT(stats.distribution_passes, 0u);
  EXPECT_GT(stats.in_memory_sorts, 1u);
}

TEST(DistributionSortTest, PaperBucketExample) {
  // §2.2's example: {37, 2, 45, 22, 17, 12, 18, 23, 25, 42} with 5 buckets.
  DistributionSortOptions options = Options();
  options.num_buckets = 5;
  MemEnv env;
  VectorSource source({37, 2, 45, 22, 17, 12, 18, 23, 25, 42});
  ASSERT_TWRS_OK(DistributionSort(&env, &source, options, "out", nullptr));
  std::vector<Key> keys;
  ASSERT_TWRS_OK(ReadAllRecords(&env, "out", &keys));
  EXPECT_EQ(keys,
            std::vector<Key>({2, 12, 17, 18, 22, 23, 25, 37, 42, 45}));
}

TEST(DistributionSortTest, AllEqualKeysFallBackToMergesort) {
  // Heavy clustering: the range cannot be split, so the oversized bucket
  // must fall back to external mergesort instead of recursing forever.
  std::vector<Key> input(1000, 42);
  DistributionSortOptions options = Options();
  options.memory_records = 50;
  DistributionSortStats stats;
  ExpectSortsCorrectly(input, options, &stats);
  EXPECT_GT(stats.fallback_sorts, 0u);
}

TEST(DistributionSortTest, ClusteredInputRecursesDeeper) {
  // 90% of records in 1% of the range (the clustering hazard of §2.2).
  std::vector<Key> input;
  for (int i = 0; i < 2000; ++i) input.push_back(i % 20);
  for (int i = 0; i < 200; ++i) input.push_back(1000000 + i);
  DistributionSortOptions options = Options();
  options.memory_records = 64;
  DistributionSortStats stats;
  ExpectSortsCorrectly(input, options, &stats);
  EXPECT_GT(stats.max_depth_reached, 1u);
}

TEST(DistributionSortTest, NegativeKeysSupported) {
  std::vector<Key> input;
  for (int i = 0; i < 1000; ++i) input.push_back((i * 7919) % 997 - 500);
  ExpectSortsCorrectly(input, Options());
}

TEST(DistributionSortTest, EveryDatasetSortsCorrectly) {
  for (int d = 0; d < kNumDatasets; ++d) {
    WorkloadOptions wl;
    wl.num_records = 2000;
    wl.seed = 8;
    auto input = Drain(MakeWorkload(static_cast<Dataset>(d), wl).get());
    ExpectSortsCorrectly(input, Options());
  }
}

TEST(DistributionSortTest, RejectsSingleBucket) {
  MemEnv env;
  VectorSource source({1});
  DistributionSortOptions options = Options();
  options.num_buckets = 1;
  EXPECT_TRUE(DistributionSort(&env, &source, options, "out", nullptr)
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace twrs
