#include "stats/tukey.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace twrs {
namespace {

Observation Obs(int level, double y) {
  Observation obs;
  obs.levels = {level};
  obs.y = y;
  return obs;
}

TEST(TukeyTest, WellSeparatedLevelsAreSignificant) {
  std::vector<Observation> obs;
  for (int r = 0; r < 6; ++r) {
    obs.push_back(Obs(0, 1.0 + 0.1 * r));
    obs.push_back(Obs(1, 50.0 + 0.1 * r));
    obs.push_back(Obs(2, 100.0 + 0.1 * r));
  }
  AnovaResult anova;
  ASSERT_TWRS_OK(FitAnova(obs, {3}, {{{0}}}, &anova));
  TukeyResult tukey;
  ASSERT_TWRS_OK(
      TukeyHSD(obs, 0, 3, anova.ms_error, anova.df_error, &tukey));
  EXPECT_LT(tukey.p_values[0][1], 0.001);
  EXPECT_LT(tukey.p_values[0][2], 0.001);
  EXPECT_LT(tukey.p_values[1][2], 0.001);
  EXPECT_DOUBLE_EQ(tukey.p_values[0][0], 1.0);
  // The matrix is symmetric.
  EXPECT_DOUBLE_EQ(tukey.p_values[0][1], tukey.p_values[1][0]);
  // Level 0 minimizes the response, and only level 0.
  EXPECT_EQ(tukey.BestLevels(), std::vector<int>({0}));
}

TEST(TukeyTest, IndistinguishableLevelsAreNotSignificant) {
  std::vector<Observation> obs;
  for (int r = 0; r < 6; ++r) {
    const double noise = (r % 2 == 0 ? 1.0 : -1.0) * (1.0 + 0.3 * r);
    obs.push_back(Obs(0, 10.0 + noise));
    obs.push_back(Obs(1, 10.1 - noise));
    obs.push_back(Obs(2, 40.0 + noise));
  }
  AnovaResult anova;
  ASSERT_TWRS_OK(FitAnova(obs, {3}, {{{0}}}, &anova));
  TukeyResult tukey;
  ASSERT_TWRS_OK(
      TukeyHSD(obs, 0, 3, anova.ms_error, anova.df_error, &tukey));
  EXPECT_GT(tukey.p_values[0][1], 0.05);  // 0 and 1 indistinguishable
  EXPECT_LT(tukey.p_values[0][2], 0.05);  // both differ from 2
  // Both near-minimal levels are reported best.
  EXPECT_EQ(tukey.BestLevels(), std::vector<int>({0, 1}));
}

TEST(TukeyTest, DeterministicResponsesUseExactComparison) {
  std::vector<Observation> obs = {Obs(0, 1), Obs(0, 1), Obs(1, 1),
                                  Obs(1, 1), Obs(2, 2), Obs(2, 2)};
  TukeyResult tukey;
  ASSERT_TWRS_OK(TukeyHSD(obs, 0, 3, /*ms_error=*/0.0, /*df_error=*/0.0,
                          &tukey));
  EXPECT_DOUBLE_EQ(tukey.p_values[0][1], 1.0);
  EXPECT_DOUBLE_EQ(tukey.p_values[0][2], 0.0);
}

TEST(TukeyTest, UnequalGroupSizesAreHandled) {
  std::vector<Observation> obs;
  for (int r = 0; r < 3; ++r) obs.push_back(Obs(0, 1.0 + r * 0.01));
  for (int r = 0; r < 9; ++r) obs.push_back(Obs(1, 30.0 + r * 0.01));
  AnovaResult anova;
  ASSERT_TWRS_OK(FitAnova(obs, {2}, {{{0}}}, &anova));
  TukeyResult tukey;
  ASSERT_TWRS_OK(
      TukeyHSD(obs, 0, 2, anova.ms_error, anova.df_error, &tukey));
  EXPECT_LT(tukey.p_values[0][1], 0.01);
  EXPECT_EQ(tukey.level_counts[0], 3u);
  EXPECT_EQ(tukey.level_counts[1], 9u);
}

TEST(TukeyTest, RejectsInvalidInput) {
  TukeyResult tukey;
  EXPECT_TRUE(TukeyHSD({}, 0, 1, 1.0, 10, &tukey).IsInvalidArgument());
  std::vector<Observation> obs = {Obs(0, 1)};
  EXPECT_TRUE(TukeyHSD(obs, 0, 2, 1.0, 10, &tukey)
                  .IsInvalidArgument());  // level 1 empty
}

}  // namespace
}  // namespace twrs
