#include "heap/double_heap.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/random.h"

namespace twrs {
namespace {

TaggedRecord R(Key key, uint32_t run = 0) { return TaggedRecord{key, run}; }

TEST(DoubleHeapTest, StartsEmpty) {
  DoubleHeap heap(10);
  EXPECT_EQ(heap.capacity(), 10u);
  EXPECT_EQ(heap.size(), 0u);
  EXPECT_TRUE(heap.Empty(HeapSide::kBottom));
  EXPECT_TRUE(heap.Empty(HeapSide::kTop));
}

TEST(DoubleHeapTest, BottomPopsDescending) {
  DoubleHeap heap(10);
  for (Key k : {3, 1, 4, 1, 5}) {
    ASSERT_TRUE(heap.Push(HeapSide::kBottom, R(k)));
  }
  std::vector<Key> out;
  while (!heap.Empty(HeapSide::kBottom)) {
    out.push_back(heap.Pop(HeapSide::kBottom).key);
  }
  EXPECT_EQ(out, std::vector<Key>({5, 4, 3, 1, 1}));
}

TEST(DoubleHeapTest, TopPopsAscending) {
  DoubleHeap heap(10);
  for (Key k : {3, 1, 4, 1, 5}) {
    ASSERT_TRUE(heap.Push(HeapSide::kTop, R(k)));
  }
  std::vector<Key> out;
  while (!heap.Empty(HeapSide::kTop)) {
    out.push_back(heap.Pop(HeapSide::kTop).key);
  }
  EXPECT_EQ(out, std::vector<Key>({1, 1, 3, 4, 5}));
}

TEST(DoubleHeapTest, SidesShareCapacity) {
  DoubleHeap heap(4);
  EXPECT_TRUE(heap.Push(HeapSide::kBottom, R(1)));
  EXPECT_TRUE(heap.Push(HeapSide::kBottom, R(2)));
  EXPECT_TRUE(heap.Push(HeapSide::kTop, R(3)));
  EXPECT_TRUE(heap.Push(HeapSide::kTop, R(4)));
  EXPECT_TRUE(heap.Full());
  EXPECT_FALSE(heap.Push(HeapSide::kBottom, R(5)));
  EXPECT_FALSE(heap.Push(HeapSide::kTop, R(5)));
  // Popping one side frees a slot the other side can claim (Figs 4.4/4.5).
  heap.Pop(HeapSide::kBottom);
  EXPECT_TRUE(heap.Push(HeapSide::kTop, R(6)));
  EXPECT_EQ(heap.SideSize(HeapSide::kTop), 3u);
  EXPECT_EQ(heap.SideSize(HeapSide::kBottom), 1u);
}

TEST(DoubleHeapTest, OneSideCanFillTheWholeArray) {
  // §4.1: if the TopHeap grows to occupy the whole memory, the algorithm is
  // equivalent to RS.
  DoubleHeap heap(8);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(heap.Push(HeapSide::kTop, R(i)));
  }
  EXPECT_TRUE(heap.Full());
  EXPECT_EQ(heap.SideSize(HeapSide::kTop), 8u);
  std::vector<Key> out;
  while (!heap.Empty(HeapSide::kTop)) out.push_back(heap.Pop(HeapSide::kTop).key);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
}

TEST(DoubleHeapTest, PaperFigure42Example) {
  // Figure 4.2/4.3: BottomHeap {33,28,32,16,20,22,4} (max), TopHeap
  // {52,54,72,75,64,81,77} (min) stored in one array.
  DoubleHeap heap(14);
  for (Key k : {33, 28, 32, 16, 20, 22, 4}) heap.Push(HeapSide::kBottom, R(k));
  for (Key k : {52, 54, 72, 75, 64, 81, 77}) heap.Push(HeapSide::kTop, R(k));
  ASSERT_TRUE(heap.IsValid());
  EXPECT_EQ(heap.Top(HeapSide::kBottom).key, 33);
  EXPECT_EQ(heap.Top(HeapSide::kTop).key, 52);
  // Figure 4.4: removing the BottomHeap top leaves room...
  EXPECT_EQ(heap.Pop(HeapSide::kBottom).key, 33);
  // ...Figure 4.5: which the TopHeap can use (inserting 53).
  EXPECT_TRUE(heap.Push(HeapSide::kTop, R(53)));
  ASSERT_TRUE(heap.IsValid());
  EXPECT_EQ(heap.Top(HeapSide::kTop).key, 52);
  EXPECT_EQ(heap.SideSize(HeapSide::kTop), 8u);
  EXPECT_EQ(heap.SideSize(HeapSide::kBottom), 6u);
}

TEST(DoubleHeapTest, LaterRunRecordsSinkBelowCurrentRun) {
  DoubleHeap heap(8);
  heap.Push(HeapSide::kTop, R(100, 0));
  heap.Push(HeapSide::kTop, R(1, 1));  // next run: must rank after key 100
  EXPECT_EQ(heap.Top(HeapSide::kTop).key, 100);
  EXPECT_TRUE(heap.TopIsRun(HeapSide::kTop, 0));
  heap.Pop(HeapSide::kTop);
  EXPECT_FALSE(heap.TopIsRun(HeapSide::kTop, 0));
  EXPECT_TRUE(heap.TopIsRun(HeapSide::kTop, 1));

  heap.Push(HeapSide::kBottom, R(1, 0));
  heap.Push(HeapSide::kBottom, R(100, 1));  // next run sinks on Bottom too
  EXPECT_EQ(heap.Top(HeapSide::kBottom).key, 1);
  EXPECT_TRUE(heap.TopIsRun(HeapSide::kBottom, 0));
}

TEST(DoubleHeapTest, PopLastLeafShrinksSide) {
  DoubleHeap heap(6);
  for (Key k : {1, 2, 3}) heap.Push(HeapSide::kBottom, R(k));
  const TaggedRecord leaf = heap.PopLastLeaf(HeapSide::kBottom);
  EXPECT_EQ(heap.SideSize(HeapSide::kBottom), 2u);
  EXPECT_TRUE(heap.IsValid());
  // Leaf is one of the stored records.
  EXPECT_TRUE(leaf.key >= 1 && leaf.key <= 3);
}

TEST(DoubleHeapTest, ReplaceTopEvictsBottomRoot) {
  DoubleHeap heap(8);
  for (Key k : {3, 1, 4, 1, 5}) heap.Push(HeapSide::kBottom, R(k));
  // Bottom is a max-heap: the root is 5; replacing it with 2 returns it.
  const TaggedRecord evicted = heap.ReplaceTop(HeapSide::kBottom, R(2));
  EXPECT_EQ(evicted.key, 5);
  EXPECT_TRUE(heap.IsValid());
  EXPECT_EQ(heap.Top(HeapSide::kBottom).key, 4);
  EXPECT_EQ(heap.SideSize(HeapSide::kBottom), 5u);  // size unchanged
  std::vector<Key> out;
  while (!heap.Empty(HeapSide::kBottom)) {
    out.push_back(heap.Pop(HeapSide::kBottom).key);
  }
  EXPECT_EQ(out, std::vector<Key>({4, 3, 2, 1, 1}));
}

TEST(DoubleHeapTest, ReplaceTopEvictsTopRoot) {
  DoubleHeap heap(8);
  for (Key k : {30, 10, 40, 20}) heap.Push(HeapSide::kTop, R(k));
  // Top is a min-heap: the root is 10; the replacement may itself become
  // the new root.
  EXPECT_EQ(heap.ReplaceTop(HeapSide::kTop, R(5)).key, 10);
  EXPECT_TRUE(heap.IsValid());
  EXPECT_EQ(heap.Top(HeapSide::kTop).key, 5);
  // And one that sinks past the root.
  EXPECT_EQ(heap.ReplaceTop(HeapSide::kTop, R(35)).key, 5);
  EXPECT_TRUE(heap.IsValid());
  std::vector<Key> out;
  while (!heap.Empty(HeapSide::kTop)) {
    out.push_back(heap.Pop(HeapSide::kTop).key);
  }
  EXPECT_EQ(out, std::vector<Key>({20, 30, 35, 40}));
}

TEST(DoubleHeapTest, ReplaceTopLeavesOtherSideIntact) {
  DoubleHeap heap(8);
  for (Key k : {1, 2, 3}) heap.Push(HeapSide::kBottom, R(k));
  for (Key k : {10, 20, 30}) heap.Push(HeapSide::kTop, R(k));
  EXPECT_EQ(heap.ReplaceTop(HeapSide::kBottom, R(0)).key, 3);
  EXPECT_EQ(heap.ReplaceTop(HeapSide::kTop, R(40)).key, 10);
  EXPECT_TRUE(heap.IsValid());
  EXPECT_EQ(heap.SideSize(HeapSide::kBottom), 3u);
  EXPECT_EQ(heap.SideSize(HeapSide::kTop), 3u);
  EXPECT_EQ(heap.Top(HeapSide::kBottom).key, 2);
  EXPECT_EQ(heap.Top(HeapSide::kTop).key, 20);
}

TEST(DoubleHeapTest, RandomizedReplaceTopKeepsInvariants) {
  Random rng(79);
  DoubleHeap heap(32);
  while (!heap.Full()) {
    const HeapSide side = rng.OneIn2() ? HeapSide::kBottom : HeapSide::kTop;
    heap.Push(side, R(static_cast<Key>(rng.Uniform(1000))));
  }
  for (int step = 0; step < 2000; ++step) {
    const HeapSide side = rng.OneIn2() ? HeapSide::kBottom : HeapSide::kTop;
    if (heap.Empty(side)) continue;
    const Key root = heap.Top(side).key;
    const TaggedRecord evicted =
        heap.ReplaceTop(side, R(static_cast<Key>(rng.Uniform(1000))));
    ASSERT_EQ(evicted.key, root) << "step " << step;
    ASSERT_TRUE(heap.IsValid()) << "step " << step;
  }
  EXPECT_EQ(heap.size(), heap.capacity());  // replace never changes size
}

TEST(DoubleHeapTest, HeapSideNames) {
  EXPECT_STREQ(HeapSideName(HeapSide::kBottom), "Bottom");
  EXPECT_STREQ(HeapSideName(HeapSide::kTop), "Top");
}

TEST(DoubleHeapTest, RandomizedMixedOperationsKeepInvariants) {
  Random rng(77);
  DoubleHeap heap(64);
  std::vector<Key> bottom_popped;
  std::vector<Key> top_popped;
  for (int step = 0; step < 5000; ++step) {
    const HeapSide side =
        rng.OneIn2() ? HeapSide::kBottom : HeapSide::kTop;
    if (!heap.Full() && (heap.Empty(side) || rng.Uniform(3) != 0)) {
      heap.Push(side, R(static_cast<Key>(rng.Uniform(10000))));
    } else if (!heap.Empty(side)) {
      const Key k = heap.Pop(side).key;
      (side == HeapSide::kBottom ? bottom_popped : top_popped).push_back(k);
    }
    ASSERT_TRUE(heap.IsValid()) << "step " << step;
    ASSERT_LE(heap.size(), heap.capacity());
  }
  // Within one uninterrupted drain the order is monotone; across pushes it
  // is not, so only validate the heap property (done above) plus totals.
  EXPECT_GT(bottom_popped.size() + top_popped.size(), 1000u);
}

TEST(DoubleHeapTest, DrainAfterMixedInsertsIsSorted) {
  Random rng(78);
  for (int trial = 0; trial < 20; ++trial) {
    DoubleHeap heap(128);
    while (!heap.Full()) {
      const HeapSide side =
          rng.OneIn2() ? HeapSide::kBottom : HeapSide::kTop;
      heap.Push(side, R(static_cast<Key>(rng.Uniform(100000))));
    }
    std::vector<Key> bottom;
    while (!heap.Empty(HeapSide::kBottom)) {
      bottom.push_back(heap.Pop(HeapSide::kBottom).key);
    }
    std::vector<Key> top;
    while (!heap.Empty(HeapSide::kTop)) {
      top.push_back(heap.Pop(HeapSide::kTop).key);
    }
    EXPECT_TRUE(std::is_sorted(bottom.rbegin(), bottom.rend()));
    EXPECT_TRUE(std::is_sorted(top.begin(), top.end()));
  }
}

}  // namespace
}  // namespace twrs
