#include "merge/kway_merge.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/run_sink.h"
#include "io/mem_env.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace twrs {
namespace {

// Writes `keys` (ascending) as a plain forward run file.
RunInfo MakeForwardRun(Env* env, const std::string& path,
                       const std::vector<Key>& keys) {
  EXPECT_TRUE(WriteAllRecords(env, path, keys).ok());
  RunInfo run;
  RunSegment seg;
  seg.path = path;
  seg.count = keys.size();
  run.length = keys.size();
  if (!keys.empty()) {
    run.min_key = keys.front();
    run.max_key = keys.back();
  }
  run.segments.push_back(std::move(seg));
  return run;
}

// Writes a multi-segment 2WRS-style run through FileRunSink.
RunInfo MakeFourStreamRun(Env* env, const std::string& prefix) {
  FileRunSinkOptions options;
  options.reverse.pages_per_file = 2;
  options.reverse.page_bytes = 64;
  FileRunSink sink(env, "d", prefix, options);
  EXPECT_TRUE(sink.BeginRun().ok());
  for (Key k : {15, 10, 5}) EXPECT_TRUE(sink.Append(kStream4, k).ok());
  for (Key k : {20, 25}) EXPECT_TRUE(sink.Append(kStream3, k).ok());
  for (Key k : {40, 35}) EXPECT_TRUE(sink.Append(kStream2, k).ok());
  for (Key k : {50, 60}) EXPECT_TRUE(sink.Append(kStream1, k).ok());
  EXPECT_TRUE(sink.EndRun().ok());
  EXPECT_TRUE(sink.Finish().ok());
  return sink.runs()[0];
}

std::vector<Key> MergeAll(Env* env, const std::vector<RunInfo>& runs) {
  std::vector<Key> out;
  Status s = KWayMerge(env, runs, 256, [&](Key k) {
    out.push_back(k);
    return Status::OK();
  });
  EXPECT_TRUE(s.ok()) << s.ToString();
  return out;
}

TEST(RunCursorTest, IteratesMultiSegmentRun) {
  MemEnv env;
  RunInfo run = MakeFourStreamRun(&env, "r");
  RunCursor cursor(&env, run);
  ASSERT_TWRS_OK(cursor.Init());
  std::vector<Key> keys;
  while (cursor.valid()) {
    keys.push_back(cursor.key());
    ASSERT_TWRS_OK(cursor.Next());
  }
  EXPECT_EQ(keys, std::vector<Key>({5, 10, 15, 20, 25, 35, 40, 50, 60}));
}

TEST(RunCursorTest, EmptyRunIsImmediatelyInvalid) {
  MemEnv env;
  RunInfo run;
  RunCursor cursor(&env, run);
  ASSERT_TWRS_OK(cursor.Init());
  EXPECT_FALSE(cursor.valid());
}

TEST(KWayMergeTest, MergesPlainRuns) {
  MemEnv env;
  std::vector<RunInfo> runs;
  runs.push_back(MakeForwardRun(&env, "a", {2, 8, 12, 16}));
  runs.push_back(MakeForwardRun(&env, "b", {3, 13, 14, 17}));
  runs.push_back(MakeForwardRun(&env, "c", {1, 7, 9, 18}));
  EXPECT_EQ(MergeAll(&env, runs),
            std::vector<Key>({1, 2, 3, 7, 8, 9, 12, 13, 14, 16, 17, 18}));
}

TEST(KWayMergeTest, MergesMixedSegmentKinds) {
  MemEnv env;
  std::vector<RunInfo> runs;
  runs.push_back(MakeFourStreamRun(&env, "r"));  // 5..60
  runs.push_back(MakeForwardRun(&env, "f", {1, 22, 70}));
  std::vector<Key> merged = MergeAll(&env, runs);
  EXPECT_TRUE(std::is_sorted(merged.begin(), merged.end()));
  EXPECT_EQ(merged.size(), 12u);
  EXPECT_EQ(merged.front(), 1);
  EXPECT_EQ(merged.back(), 70);
}

TEST(KWayMergeTest, ZeroRunsYieldEmptyOutput) {
  MemEnv env;
  EXPECT_TRUE(MergeAll(&env, {}).empty());
}

TEST(KWayMergeTest, ToFileProducesRunInfo) {
  MemEnv env;
  std::vector<RunInfo> runs;
  runs.push_back(MakeForwardRun(&env, "a", {1, 3}));
  runs.push_back(MakeForwardRun(&env, "b", {2}));
  RunInfo out;
  ASSERT_TWRS_OK(KWayMergeToFile(&env, runs, 256, "merged", &out));
  EXPECT_EQ(out.length, 3u);
  EXPECT_EQ(out.min_key, 1);
  EXPECT_EQ(out.max_key, 3);
  std::vector<Key> keys;
  ASSERT_TWRS_OK(ReadAllRecords(&env, "merged", &keys));
  EXPECT_EQ(keys, std::vector<Key>({1, 2, 3}));
}

TEST(KWayMergeTest, RemoveRunFilesDeletesAllSegments) {
  MemEnv env;
  RunInfo run = MakeFourStreamRun(&env, "r");
  ASSERT_GT(env.FileCount(), 0u);
  ASSERT_TWRS_OK(RemoveRunFiles(&env, run));
  EXPECT_EQ(env.FileCount(), 0u);
}

TEST(KWayMergeTest, RandomizedManyRunsProperty) {
  Random rng(23);
  for (int trial = 0; trial < 10; ++trial) {
    MemEnv env;
    std::vector<RunInfo> runs;
    std::vector<Key> all;
    const size_t k = 1 + rng.Uniform(20);
    for (size_t w = 0; w < k; ++w) {
      std::vector<Key> keys(rng.Uniform(100));
      for (Key& key : keys) key = static_cast<Key>(rng.Uniform(10000));
      std::sort(keys.begin(), keys.end());
      all.insert(all.end(), keys.begin(), keys.end());
      runs.push_back(MakeForwardRun(&env, "run" + std::to_string(w), keys));
    }
    std::sort(all.begin(), all.end());
    EXPECT_EQ(MergeAll(&env, runs), all) << "trial " << trial;
  }
}

}  // namespace
}  // namespace twrs
