#include "io/merge_sink.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "exec/thread_pool.h"
#include "io/mem_env.h"
#include "io/posix_env.h"
#include "io/record_io.h"
#include "tests/test_util.h"

namespace twrs {
namespace {

using testing::MakeTempDir;

std::string Contents(MemEnv* env, const std::string& path) {
  const std::vector<uint8_t>* data = env->FileContents(path);
  EXPECT_NE(data, nullptr);
  if (data == nullptr) return "";
  return std::string(data->begin(), data->end());
}

TEST(AppendMergeSinkTest, WritesSequentially) {
  MemEnv env;
  std::unique_ptr<MergeSink> sink;
  ASSERT_TWRS_OK(MakeAppendMergeSink(&env, "out", nullptr, 0, &sink));
  ASSERT_TWRS_OK(sink->Write("hello ", 6));
  ASSERT_TWRS_OK(sink->Write("world", 5));
  EXPECT_EQ(sink->bytes_written(), 11u);
  ASSERT_TWRS_OK(sink->Finish());
  ASSERT_TWRS_OK(sink->Finish());  // idempotent
  EXPECT_EQ(Contents(&env, "out"), "hello world");
}

TEST(AppendMergeSinkTest, WriteAfterFinishFails) {
  MemEnv env;
  std::unique_ptr<MergeSink> sink;
  ASSERT_TWRS_OK(MakeAppendMergeSink(&env, "out", nullptr, 0, &sink));
  ASSERT_TWRS_OK(sink->Finish());
  EXPECT_FALSE(sink->Write("x", 1).ok());
}

TEST(AppendMergeSinkTest, AsyncPathMatchesSync) {
  MemEnv env;
  ThreadPool pool(2);
  std::unique_ptr<MergeSink> sink;
  // A tiny async buffer forces many rotations.
  ASSERT_TWRS_OK(MakeAppendMergeSink(&env, "out", &pool, 64, &sink));
  std::string expect;
  for (int i = 0; i < 1000; ++i) {
    const std::string chunk = "chunk" + std::to_string(i) + ";";
    ASSERT_TWRS_OK(sink->Write(chunk.data(), chunk.size()));
    expect += chunk;
  }
  ASSERT_TWRS_OK(sink->Finish());
  EXPECT_EQ(Contents(&env, "out"), expect);
}

TEST(RangeMergeSinkTest, FillsExactlyItsRange) {
  MemEnv env;
  // Pre-size the file with sentinel bytes around the range.
  {
    std::unique_ptr<RandomRWFile> f;
    ASSERT_TWRS_OK(env.NewRandomRWFile("out", &f));
    ASSERT_TWRS_OK(f->WriteAt(0, "AAAABBBBCCCC", 12));
    ASSERT_TWRS_OK(f->Close());
  }
  std::unique_ptr<MergeSink> sink;
  ASSERT_TWRS_OK(MakeRangeMergeSink(&env, "out", 4, 4, nullptr, 0, &sink));
  ASSERT_TWRS_OK(sink->Write("xy", 2));
  ASSERT_TWRS_OK(sink->Write("zw", 2));
  ASSERT_TWRS_OK(sink->Finish());
  EXPECT_EQ(Contents(&env, "out"), "AAAAxyzwCCCC");
}

TEST(RangeMergeSinkTest, ExtendsTheFileOnWrite) {
  MemEnv env;
  {
    std::unique_ptr<RandomRWFile> f;
    ASSERT_TWRS_OK(env.NewRandomRWFile("out", &f));
    ASSERT_TWRS_OK(f->Close());
  }
  std::unique_ptr<MergeSink> sink;
  ASSERT_TWRS_OK(MakeRangeMergeSink(&env, "out", 8, 4, nullptr, 0, &sink));
  ASSERT_TWRS_OK(sink->Write("TAIL", 4));
  ASSERT_TWRS_OK(sink->Finish());
  uint64_t size = 0;
  ASSERT_TWRS_OK(env.GetFileSize("out", &size));
  EXPECT_EQ(size, 12u);
  EXPECT_EQ(Contents(&env, "out").substr(8), "TAIL");
}

TEST(RangeMergeSinkTest, WriteBeyondRangeFails) {
  MemEnv env;
  {
    std::unique_ptr<RandomRWFile> f;
    ASSERT_TWRS_OK(env.NewRandomRWFile("out", &f));
    ASSERT_TWRS_OK(f->Close());
  }
  std::unique_ptr<MergeSink> sink;
  ASSERT_TWRS_OK(MakeRangeMergeSink(&env, "out", 0, 4, nullptr, 0, &sink));
  ASSERT_TWRS_OK(sink->Write("1234", 4));
  Status s = sink->Write("5", 1);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

TEST(RangeMergeSinkTest, UnderfilledRangeIsCorruptionAtFinish) {
  MemEnv env;
  {
    std::unique_ptr<RandomRWFile> f;
    ASSERT_TWRS_OK(env.NewRandomRWFile("out", &f));
    ASSERT_TWRS_OK(f->Close());
  }
  std::unique_ptr<MergeSink> sink;
  ASSERT_TWRS_OK(MakeRangeMergeSink(&env, "out", 0, 8, nullptr, 0, &sink));
  ASSERT_TWRS_OK(sink->Write("1234", 4));
  Status s = sink->Finish();
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST(RangeMergeSinkTest, ZeroLengthRangeFinishesClean) {
  MemEnv env;
  {
    std::unique_ptr<RandomRWFile> f;
    ASSERT_TWRS_OK(env.NewRandomRWFile("out", &f));
    ASSERT_TWRS_OK(f->Close());
  }
  std::unique_ptr<MergeSink> sink;
  ASSERT_TWRS_OK(MakeRangeMergeSink(&env, "out", 0, 0, nullptr, 0, &sink));
  ASSERT_TWRS_OK(sink->Finish());
}

TEST(RangeMergeSinkTest, MissingFileFailsToOpen) {
  MemEnv env;
  std::unique_ptr<MergeSink> sink;
  EXPECT_FALSE(
      MakeRangeMergeSink(&env, "missing", 0, 4, nullptr, 0, &sink).ok());
}

TEST(RangeMergeSinkTest, AbandonedSinkSkipsTheExactFillCheck) {
  MemEnv env;
  {
    std::unique_ptr<RandomRWFile> f;
    ASSERT_TWRS_OK(env.NewRandomRWFile("out", &f));
    ASSERT_TWRS_OK(f->Close());
  }
  ThreadPool pool(1);
  {
    std::unique_ptr<RandomRWFile> f;
    ASSERT_TWRS_OK(env.ReopenRandomRWFile("out", &f));
    RangeMergeSink sink(std::move(f), 0, 1024, &pool, 64);
    ASSERT_TWRS_OK(sink.Write("partial", 7));
    // Destroyed mid-range: error-path unwinding, no Corruption thrown.
  }
}

TEST(RangeMergeSinkTest, DoubleBufferedFlushMatchesSyncBytes) {
  MemEnv env;
  ThreadPool pool(2);
  const std::string expect_path = "sync";
  const std::string async_path = "async";
  std::string payload;
  for (int i = 0; i < 2000; ++i) payload += std::to_string(i * 7919) + "|";
  for (const std::string& path : {expect_path, async_path}) {
    std::unique_ptr<RandomRWFile> f;
    ASSERT_TWRS_OK(env.NewRandomRWFile(path, &f));
    ASSERT_TWRS_OK(f->Close());
  }
  {
    std::unique_ptr<MergeSink> sink;
    ASSERT_TWRS_OK(MakeRangeMergeSink(&env, expect_path, 0, payload.size(),
                                      nullptr, 0, &sink));
    ASSERT_TWRS_OK(sink->Write(payload.data(), payload.size()));
    ASSERT_TWRS_OK(sink->Finish());
  }
  {
    std::unique_ptr<MergeSink> sink;
    // 96-byte halves force hundreds of rotations over the payload.
    ASSERT_TWRS_OK(MakeRangeMergeSink(&env, async_path, 0, payload.size(),
                                      &pool, 96, &sink));
    size_t pos = 0;
    while (pos < payload.size()) {
      const size_t chunk = std::min<size_t>(37, payload.size() - pos);
      ASSERT_TWRS_OK(sink->Write(payload.data() + pos, chunk));
      pos += chunk;
    }
    ASSERT_TWRS_OK(sink->Finish());
  }
  EXPECT_EQ(Contents(&env, async_path), Contents(&env, expect_path));
  EXPECT_EQ(Contents(&env, async_path), payload);
}

// The contract the concatenation-free sharded sort rests on: several sinks
// over distinct handles of one file, concurrently filling disjoint ranges,
// produce exactly the concatenation of their payloads.
TEST(RangeMergeSinkTest, ConcurrentDisjointRangesCompose) {
  for (int use_posix = 0; use_posix <= 1; ++use_posix) {
    MemEnv mem;
    PosixEnv posix;
    Env* env = use_posix ? static_cast<Env*>(&posix) : &mem;
    const std::string path =
        use_posix ? MakeTempDir() + "/out" : std::string("out");

    constexpr int kWriters = 8;
    constexpr size_t kBytesPerWriter = 64 * 1024 + 13;
    {
      std::unique_ptr<RandomRWFile> f;
      ASSERT_TWRS_OK(env->NewRandomRWFile(path, &f));
      ASSERT_TWRS_OK(f->Close());
    }
    ThreadPool flush_pool(4);
    std::vector<std::thread> writers;
    std::vector<Status> results(kWriters);
    for (int w = 0; w < kWriters; ++w) {
      writers.emplace_back([&, w] {
        std::unique_ptr<MergeSink> sink;
        Status s = MakeRangeMergeSink(env, path, w * kBytesPerWriter,
                                      kBytesPerWriter, &flush_pool, 1024,
                                      &sink);
        if (!s.ok()) {
          results[w] = s;
          return;
        }
        const char byte = static_cast<char>('a' + w);
        std::vector<char> chunk(997, byte);
        size_t written = 0;
        while (s.ok() && written < kBytesPerWriter) {
          const size_t n =
              std::min(chunk.size(), kBytesPerWriter - written);
          s = sink->Write(chunk.data(), n);
          written += n;
        }
        if (s.ok()) s = sink->Finish();
        results[w] = s;
      });
    }
    for (auto& t : writers) t.join();
    for (int w = 0; w < kWriters; ++w) {
      ASSERT_TWRS_OK(results[w]);
    }
    std::unique_ptr<SequentialFile> in;
    ASSERT_TWRS_OK(env->NewSequentialFile(path, &in));
    std::vector<char> got(kWriters * kBytesPerWriter);
    size_t read = 0;
    ASSERT_TWRS_OK(in->Read(got.data(), got.size(), &read));
    ASSERT_EQ(read, got.size());
    for (int w = 0; w < kWriters; ++w) {
      for (size_t i = 0; i < kBytesPerWriter; ++i) {
        ASSERT_EQ(got[w * kBytesPerWriter + i],
                  static_cast<char>('a' + w))
            << "writer " << w << " byte " << i;
      }
    }
  }
}

TEST(MergeSinkFileTest, RecordWriterThroughSink) {
  MemEnv env;
  std::unique_ptr<MergeSink> sink;
  ASSERT_TWRS_OK(MakeAppendMergeSink(&env, "out", nullptr, 0, &sink));
  {
    RecordWriter writer(std::make_unique<MergeSinkFile>(sink.get()), 64);
    ASSERT_TWRS_OK(writer.status());
    for (Key k = 0; k < 100; ++k) ASSERT_TWRS_OK(writer.Append(k));
    ASSERT_TWRS_OK(writer.Finish());
  }
  std::vector<Key> keys;
  ASSERT_TWRS_OK(ReadAllRecords(&env, "out", &keys));
  ASSERT_EQ(keys.size(), 100u);
  for (Key k = 0; k < 100; ++k) EXPECT_EQ(keys[k], k);
  EXPECT_EQ(sink->bytes_written(), 100 * kRecordBytes);
}

}  // namespace
}  // namespace twrs
