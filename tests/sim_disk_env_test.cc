#include "io/sim_disk_env.h"

#include <gtest/gtest.h>

#include "io/mem_env.h"
#include "io/record_io.h"
#include "tests/test_util.h"

namespace twrs {
namespace {

TEST(DiskModelTest, SequentialAccessPaysOneSeek) {
  DiskModel model;
  model.Access(0, 0, 100);
  model.Access(0, 100, 100);
  model.Access(0, 200, 50);
  EXPECT_EQ(model.seeks(), 1u);  // only the initial positioning
  EXPECT_EQ(model.bytes_transferred(), 250u);
}

TEST(DiskModelTest, FileSwitchCostsASeek) {
  DiskModel model;
  model.Access(0, 0, 10);
  model.Access(1, 0, 10);
  model.Access(0, 10, 10);  // back to file 0, contiguous with before
  EXPECT_EQ(model.seeks(), 3u);
}

TEST(DiskModelTest, BackwardJumpCostsASeek) {
  DiskModel model;
  model.Access(0, 100, 10);
  model.Access(0, 0, 10);  // neither forward- nor backward-contiguous
  EXPECT_EQ(model.seeks(), 2u);
}

TEST(DiskModelTest, BackwardContiguousWritesAreCacheAbsorbed) {
  // Appendix A.1: pages written back-to-front land in the OS write cache,
  // so the reverse run writer is not charged a seek per page.
  DiskModel model;
  model.Access(0, 100, 10);
  model.Access(0, 90, 10);  // ends exactly where the previous began
  model.Access(0, 80, 10);
  EXPECT_EQ(model.seeks(), 1u);
}

TEST(DiskModelTest, SimulatedTimeCombinesSeekAndTransfer) {
  DiskModelConfig config;
  config.seek_seconds = 0.01;
  config.bandwidth_bytes_per_second = 1000.0;
  DiskModel model(config);
  model.Access(0, 0, 500);
  EXPECT_DOUBLE_EQ(model.SimulatedSeconds(), 0.01 + 0.5);
}

TEST(DiskModelTest, ResetClearsState) {
  DiskModel model;
  model.Access(0, 0, 10);
  model.Reset();
  EXPECT_EQ(model.seeks(), 0u);
  EXPECT_EQ(model.bytes_transferred(), 0u);
  EXPECT_DOUBLE_EQ(model.SimulatedSeconds(), 0.0);
}

TEST(DiskModelTest, ResetForgetsBackwardContiguity) {
  // Regression: Reset left last_start_offset_ stale, so an access ending at
  // the pre-Reset start offset was mistaken for a backward-contiguous
  // (cache-absorbed) write. last_file_ is reset to a sentinel, but pinning
  // the offsets too keeps the invariant local instead of coupled.
  DiskModel model;
  model.Access(7, 100, 10);
  model.Reset();
  model.Access(7, 90, 10);  // ends at 100 = pre-Reset start; still a seek
  EXPECT_EQ(model.seeks(), 1u);
}

TEST(SimDiskEnvTest, ForwardsDataCorrectly) {
  MemEnv base;
  SimDiskEnv env(&base);
  std::vector<Key> keys = {5, 4, 3};
  ASSERT_TWRS_OK(WriteAllRecords(&env, "f", keys));
  std::vector<Key> back;
  ASSERT_TWRS_OK(ReadAllRecords(&env, "f", &back));
  EXPECT_EQ(back, keys);
  EXPECT_GT(env.model().bytes_transferred(), 0u);
}

TEST(SimDiskEnvTest, InterleavedStreamsSeekMoreThanOneStream) {
  MemEnv base;

  // One stream written alone: sequential.
  SimDiskEnv solo(&base);
  {
    std::unique_ptr<WritableFile> w;
    ASSERT_TWRS_OK(solo.NewWritableFile("a", &w));
    for (int i = 0; i < 100; ++i) ASSERT_TWRS_OK(w->Append("x", 1));
    ASSERT_TWRS_OK(w->Close());
  }
  const uint64_t solo_seeks = solo.model().seeks();

  // Two streams interleaved: the head ping-pongs.
  SimDiskEnv duo(&base);
  {
    std::unique_ptr<WritableFile> w1;
    std::unique_ptr<WritableFile> w2;
    ASSERT_TWRS_OK(duo.NewWritableFile("b", &w1));
    ASSERT_TWRS_OK(duo.NewWritableFile("c", &w2));
    for (int i = 0; i < 50; ++i) {
      ASSERT_TWRS_OK(w1->Append("x", 1));
      ASSERT_TWRS_OK(w2->Append("y", 1));
    }
    ASSERT_TWRS_OK(w1->Close());
    ASSERT_TWRS_OK(w2->Close());
  }
  EXPECT_EQ(solo_seeks, 1u);
  EXPECT_EQ(duo.model().seeks(), 100u);
  EXPECT_GT(duo.model().SimulatedSeconds(), solo.model().SimulatedSeconds());
}

TEST(SimDiskEnvTest, MetadataOperationsForward) {
  MemEnv base;
  SimDiskEnv env(&base);
  std::unique_ptr<WritableFile> w;
  ASSERT_TWRS_OK(env.NewWritableFile("f", &w));
  ASSERT_TWRS_OK(w->Append("ab", 2));
  ASSERT_TWRS_OK(w->Close());
  EXPECT_TRUE(env.FileExists("f"));
  uint64_t size = 0;
  ASSERT_TWRS_OK(env.GetFileSize("f", &size));
  EXPECT_EQ(size, 2u);
  ASSERT_TWRS_OK(env.RemoveFile("f"));
  EXPECT_FALSE(base.FileExists("f"));
}

}  // namespace
}  // namespace twrs
