#include "core/input_buffer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/record_source.h"
#include "util/random.h"

namespace twrs {
namespace {

TEST(MedianTrackerTest, SingleElement) {
  MedianTracker tracker;
  tracker.Insert(5);
  EXPECT_EQ(tracker.Median(), 5);
}

TEST(MedianTrackerTest, LowerMedianOfEvenCount) {
  MedianTracker tracker;
  for (Key k : {1, 2, 3, 4}) tracker.Insert(k);
  EXPECT_EQ(tracker.Median(), 2);  // lower median
}

TEST(MedianTrackerTest, OddCount) {
  MedianTracker tracker;
  for (Key k : {9, 1, 5}) tracker.Insert(k);
  EXPECT_EQ(tracker.Median(), 5);
}

TEST(MedianTrackerTest, EraseUpdatesMedian) {
  MedianTracker tracker;
  for (Key k : {1, 2, 3, 4, 5}) tracker.Insert(k);
  EXPECT_EQ(tracker.Median(), 3);
  tracker.Erase(1);
  EXPECT_EQ(tracker.Median(), 3);  // {2,3,4,5} lower median
  tracker.Erase(3);
  EXPECT_EQ(tracker.Median(), 4);  // {2,4,5}
  tracker.Erase(5);
  EXPECT_EQ(tracker.Median(), 2);  // {2,4}
}

TEST(MedianTrackerTest, DuplicatesSupported) {
  MedianTracker tracker;
  for (Key k : {7, 7, 7, 1}) tracker.Insert(k);
  EXPECT_EQ(tracker.Median(), 7);
  tracker.Erase(7);
  tracker.Erase(7);
  EXPECT_EQ(tracker.Median(), 1);  // {1, 7}
}

TEST(MedianTrackerTest, MatchesNthElementOnRandomStreams) {
  Random rng(3);
  MedianTracker tracker;
  std::vector<Key> window;
  for (int step = 0; step < 3000; ++step) {
    if (window.size() < 40 || rng.OneIn2()) {
      const Key k = static_cast<Key>(rng.Uniform(1000));
      tracker.Insert(k);
      window.push_back(k);
    } else {
      const size_t victim = rng.Uniform(window.size());
      tracker.Erase(window[victim]);
      window.erase(window.begin() + victim);
    }
    if (!window.empty()) {
      std::vector<Key> sorted = window;
      std::sort(sorted.begin(), sorted.end());
      const Key expected = sorted[(sorted.size() - 1) / 2];  // lower median
      ASSERT_EQ(tracker.Median(), expected) << "step " << step;
    }
  }
}

TEST(InputBufferTest, PassThroughWhenCapacityZero) {
  VectorSource source({1, 2, 3});
  InputBuffer buffer(&source, 0);
  Key k;
  EXPECT_TRUE(buffer.Next(&k));
  EXPECT_EQ(k, 1);
  EXPECT_FALSE(buffer.HasStats());
  EXPECT_TRUE(buffer.Next(&k));
  EXPECT_TRUE(buffer.Next(&k));
  EXPECT_FALSE(buffer.Next(&k));
}

TEST(InputBufferTest, PreservesInputOrder) {
  VectorSource source({4, 8, 15, 16, 23, 42});
  InputBuffer buffer(&source, 3);
  std::vector<Key> out;
  Key k;
  while (buffer.Next(&k)) out.push_back(k);
  EXPECT_EQ(out, std::vector<Key>({4, 8, 15, 16, 23, 42}));
}

TEST(InputBufferTest, StatsMatchPaperWorkedExample) {
  // §4.5: input begins {40, 50, 39, 51, 38, 52, ...} with a 4-record input
  // buffer. The first decision sees mean 45 (window {40,50,39,51}); the
  // second sees mean 44.5 (window {50,39,51,38}).
  VectorSource source({40, 50, 39, 51, 38, 52, 37, 53});
  InputBuffer buffer(&source, 4);
  Key k;
  ASSERT_TRUE(buffer.Next(&k));
  EXPECT_EQ(k, 40);
  ASSERT_TRUE(buffer.HasStats());
  EXPECT_DOUBLE_EQ(buffer.Mean(), 45.0);
  ASSERT_TRUE(buffer.Next(&k));
  EXPECT_EQ(k, 50);
  EXPECT_DOUBLE_EQ(buffer.Mean(), 44.5);
}

TEST(InputBufferTest, MedianTracksWindow) {
  VectorSource source({10, 20, 30, 40, 50});
  InputBuffer buffer(&source, 4);
  Key k;
  ASSERT_TRUE(buffer.Next(&k));  // window {10,20,30,40}
  EXPECT_EQ(buffer.Median(), 20);
  ASSERT_TRUE(buffer.Next(&k));  // window {20,30,40,50}
  EXPECT_EQ(buffer.Median(), 30);
}

TEST(InputBufferTest, WindowShrinksAtEndOfInput) {
  VectorSource source({1, 2});
  InputBuffer buffer(&source, 8);
  Key k;
  ASSERT_TRUE(buffer.Next(&k));
  EXPECT_EQ(k, 1);
  EXPECT_DOUBLE_EQ(buffer.Mean(), 1.5);  // window {1,2}
  ASSERT_TRUE(buffer.Next(&k));
  EXPECT_EQ(k, 2);
  EXPECT_DOUBLE_EQ(buffer.Mean(), 2.0);  // window {2}
  EXPECT_FALSE(buffer.Next(&k));
}

TEST(InputBufferTest, EmptySource) {
  VectorSource source({});
  InputBuffer buffer(&source, 4);
  Key k;
  EXPECT_FALSE(buffer.Next(&k));
  EXPECT_FALSE(buffer.HasStats());
}

}  // namespace
}  // namespace twrs
