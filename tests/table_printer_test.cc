#include "util/table_printer.h"

#include <gtest/gtest.h>

#include <sstream>

namespace twrs {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"longer-name", "2.5"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name        | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer-name | 2.5   |"), std::string::npos);
  EXPECT_NE(out.find("|-"), std::string::npos);
}

TEST(TablePrinterTest, ShortRowsPadMissingCells) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"x"});
  std::ostringstream os;
  table.Print(os);
  EXPECT_NE(os.str().find("| x | "), std::string::npos);
}

TEST(TablePrinterTest, ExtraCellsAreDropped) {
  TablePrinter table({"a"});
  table.AddRow({"1", "spillover"});
  std::ostringstream os;
  table.Print(os);
  EXPECT_EQ(os.str().find("spillover"), std::string::npos);
}

TEST(TablePrinterTest, NumFormatsTrimTrailingZeros) {
  EXPECT_EQ(TablePrinter::Num(2.0), "2");
  EXPECT_EQ(TablePrinter::Num(2.5), "2.5");
  EXPECT_EQ(TablePrinter::Num(2.126, 2), "2.13");
  EXPECT_EQ(TablePrinter::Num(0.1000, 4), "0.1");
  EXPECT_EQ(TablePrinter::Num(-1.50), "-1.5");
}

}  // namespace
}  // namespace twrs
