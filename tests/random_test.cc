#include "util/random.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace twrs {
namespace {

TEST(RandomTest, SameSeedSameStream) {
  Random a(42);
  Random b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Random a(1);
  Random b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RandomTest, ZeroSeedIsValid) {
  Random r(0);
  std::set<uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(r.Next());
  EXPECT_GT(seen.size(), 95u);  // not stuck
}

TEST(RandomTest, UniformStaysInRange) {
  Random r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.Uniform(17), 17u);
  }
}

TEST(RandomTest, UniformCoversRange) {
  Random r(9);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) ++counts[r.Uniform(10)];
  for (int c : counts) {
    EXPECT_GT(c, 800);  // each decile within 20% of expectation
    EXPECT_LT(c, 1200);
  }
}

TEST(RandomTest, UniformIntInclusiveBounds) {
  Random r(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = r.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random r(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RandomTest, OneIn2IsRoughlyFair) {
  Random r(17);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += r.OneIn2() ? 1 : 0;
  EXPECT_GT(heads, 4700);
  EXPECT_LT(heads, 5300);
}

}  // namespace
}  // namespace twrs
