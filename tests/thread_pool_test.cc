#include "exec/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <vector>

#include "tests/test_util.h"

namespace twrs {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<TaskHandle> handles;
  for (int i = 0; i < 100; ++i) {
    handles.push_back(pool.Submit([&counter] {
      counter.fetch_add(1);
      return Status::OK();
    }));
  }
  for (TaskHandle& h : handles) ASSERT_TWRS_OK(h.Wait());
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, AtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  EXPECT_TWRS_OK(pool.Submit([] { return Status::OK(); }).Wait());
}

TEST(ThreadPoolTest, WaitPropagatesStatus) {
  ThreadPool pool(2);
  TaskHandle h =
      pool.Submit([] { return Status::IOError("disk on fire"); });
  Status s = h.Wait();
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(s.message(), "disk on fire");
  // Wait is idempotent.
  EXPECT_TRUE(h.Wait().IsIOError());
}

TEST(ThreadPoolTest, WaitOnInvalidHandleIsOk) {
  TaskHandle h;
  EXPECT_FALSE(h.valid());
  EXPECT_TWRS_OK(h.Wait());
  EXPECT_TRUE(h.done());
}

// A waiter must execute a still-queued task inline rather than block on a
// saturated pool — this is what makes nested waits (a pool task waiting on
// a sub-task) deadlock-free.
TEST(ThreadPoolTest, WaitHelpsWithQueuedTasks) {
  ThreadPool pool(1);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  bool blocker_started = false;
  TaskHandle blocker = pool.Submit([&] {
    std::unique_lock<std::mutex> lock(mu);
    blocker_started = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
    return Status::OK();
  });
  {
    // Ensure the single worker is parked inside the blocker.
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return blocker_started; });
  }
  TaskHandle queued = pool.Submit([] { return Status::OK(); });
  // The worker is busy, so this can only finish by running inline.
  ASSERT_TWRS_OK(queued.Wait());
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  ASSERT_TWRS_OK(blocker.Wait());
}

// Tasks submitted on pool threads may wait on their own sub-tasks even when
// every worker is occupied (the pattern parallel leaf merges + async
// flushes rely on).
TEST(ThreadPoolTest, NestedSubmitAndWaitDoesNotDeadlock) {
  ThreadPool pool(2);
  std::vector<TaskHandle> outer;
  std::atomic<int> inner_done{0};
  for (int i = 0; i < 8; ++i) {
    outer.push_back(pool.Submit([&pool, &inner_done] {
      std::vector<TaskHandle> inner;
      for (int j = 0; j < 4; ++j) {
        inner.push_back(pool.Submit([&inner_done] {
          inner_done.fetch_add(1);
          return Status::OK();
        }));
      }
      for (TaskHandle& h : inner) TWRS_RETURN_IF_ERROR(h.Wait());
      return Status::OK();
    }));
  }
  for (TaskHandle& h : outer) ASSERT_TWRS_OK(h.Wait());
  EXPECT_EQ(inner_done.load(), 32);
}

// High-priority tasks (async flushes) overtake queued normal tasks (leaf
// merges) so producers waiting on them keep their I/O overlap.
TEST(ThreadPoolTest, HighPriorityTasksOvertakeQueuedNormalTasks) {
  ThreadPool pool(1);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  bool blocker_started = false;
  std::vector<int> order;
  TaskHandle blocker = pool.Submit([&] {
    std::unique_lock<std::mutex> lock(mu);
    blocker_started = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
    return Status::OK();
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return blocker_started; });
  }
  // Queued behind the blocker: a normal task, then a high-priority one.
  TaskHandle normal = pool.Submit([&] {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(1);
    return Status::OK();
  });
  TaskHandle high = pool.Submit(
      [&] {
        std::lock_guard<std::mutex> lock(mu);
        order.push_back(2);
        return Status::OK();
      },
      TaskPriority::kHigh);
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  ASSERT_TWRS_OK(blocker.Wait());
  ASSERT_TWRS_OK(high.Wait());
  ASSERT_TWRS_OK(normal.Wait());
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 2);  // high ran first despite later submission
  EXPECT_EQ(order[1], 1);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] {
        counter.fetch_add(1);
        return Status::OK();
      });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, DoneReportsCompletion) {
  ThreadPool pool(1);
  TaskHandle h = pool.Submit([] { return Status::OK(); });
  ASSERT_TWRS_OK(h.Wait());
  EXPECT_TRUE(h.done());
}

}  // namespace
}  // namespace twrs
