#include "merge/loser_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/random.h"

namespace twrs {
namespace {

// Reference merge through the loser tree.
std::vector<Key> MergeWithTree(const std::vector<std::vector<Key>>& ways) {
  LoserTree tree(ways.size());
  std::vector<size_t> pos(ways.size(), 0);
  for (size_t w = 0; w < ways.size(); ++w) {
    if (!ways[w].empty()) tree.SetInitial(w, ways[w][0]);
  }
  tree.Build();
  std::vector<Key> out;
  while (!tree.Exhausted()) {
    const size_t w = tree.WinnerIndex();
    out.push_back(tree.WinnerKey());
    if (++pos[w] < ways[w].size()) {
      tree.ReplaceWinner(ways[w][pos[w]]);
    } else {
      tree.RetireWinner();
    }
  }
  return out;
}

TEST(LoserTreeTest, SingleWay) {
  EXPECT_EQ(MergeWithTree({{1, 2, 3}}), std::vector<Key>({1, 2, 3}));
}

TEST(LoserTreeTest, TwoWays) {
  EXPECT_EQ(MergeWithTree({{1, 3, 5}, {2, 4, 6}}),
            std::vector<Key>({1, 2, 3, 4, 5, 6}));
}

TEST(LoserTreeTest, PaperThreeWayExample) {
  // §2.1.2's worked 3-way merge.
  EXPECT_EQ(MergeWithTree({{2, 8, 12, 16}, {3, 13, 14, 17}, {1, 7, 9, 18}}),
            std::vector<Key>({1, 2, 3, 7, 8, 9, 12, 13, 14, 16, 17, 18}));
}

TEST(LoserTreeTest, EmptyWaysAreSkipped) {
  EXPECT_EQ(MergeWithTree({{}, {5}, {}, {1, 9}}),
            std::vector<Key>({1, 5, 9}));
}

TEST(LoserTreeTest, AllWaysEmpty) {
  EXPECT_TRUE(MergeWithTree({{}, {}}).empty());
  LoserTree zero(0);
  zero.Build();
  EXPECT_TRUE(zero.Exhausted());
}

TEST(LoserTreeTest, DuplicateKeysAcrossWays) {
  EXPECT_EQ(MergeWithTree({{5, 5}, {5}, {5, 5, 5}}),
            std::vector<Key>({5, 5, 5, 5, 5, 5}));
}

TEST(LoserTreeTest, TieBreakIsStableByWayIndex) {
  LoserTree tree(3);
  tree.SetInitial(0, 7);
  tree.SetInitial(1, 7);
  tree.SetInitial(2, 7);
  tree.Build();
  EXPECT_EQ(tree.WinnerIndex(), 0u);
  tree.RetireWinner();
  EXPECT_EQ(tree.WinnerIndex(), 1u);
  tree.RetireWinner();
  EXPECT_EQ(tree.WinnerIndex(), 2u);
}

TEST(LoserTreeTest, NonPowerOfTwoWayCounts) {
  for (size_t k : {3u, 5u, 6u, 7u, 9u, 13u}) {
    std::vector<std::vector<Key>> ways(k);
    std::vector<Key> all;
    for (size_t w = 0; w < k; ++w) {
      for (size_t i = 0; i < 10; ++i) {
        ways[w].push_back(static_cast<Key>(w + i * k));
        all.push_back(ways[w].back());
      }
    }
    std::sort(all.begin(), all.end());
    EXPECT_EQ(MergeWithTree(ways), all) << "k=" << k;
  }
}

TEST(LoserTreeTest, RandomizedAgainstSortProperty) {
  Random rng(17);
  for (int trial = 0; trial < 40; ++trial) {
    const size_t k = 1 + rng.Uniform(12);
    std::vector<std::vector<Key>> ways(k);
    std::vector<Key> all;
    for (auto& way : ways) {
      const size_t n = rng.Uniform(50);
      way.resize(n);
      for (Key& key : way) key = static_cast<Key>(rng.Uniform(1000));
      std::sort(way.begin(), way.end());
      all.insert(all.end(), way.begin(), way.end());
    }
    std::sort(all.begin(), all.end());
    EXPECT_EQ(MergeWithTree(ways), all) << "trial " << trial;
  }
}

}  // namespace
}  // namespace twrs
