// Verifies the formal results of §5.1 (Theorems 1-7) experimentally.

#include <gtest/gtest.h>

#include <memory>

#include "core/replacement_selection.h"
#include "core/two_way_replacement_selection.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace twrs {
namespace {

using testing::Drain;
using testing::ExpectValidRuns;
using testing::GenerateRuns;

constexpr size_t kMemory = 200;
constexpr uint64_t kRecords = 20000;  // 100x memory

std::vector<Key> Input(Dataset dataset, uint64_t sections = 10) {
  WorkloadOptions wl;
  wl.num_records = kRecords;
  wl.sections = sections;
  wl.seed = 31;
  return Drain(MakeWorkload(dataset, wl).get());
}

testing::GenerateResult RunRs(const std::vector<Key>& input) {
  ReplacementSelectionOptions options;
  options.memory_records = kMemory;
  ReplacementSelection rs(options);
  return GenerateRuns(&rs, input);
}

testing::GenerateResult Run2wrs(const std::vector<Key>& input) {
  TwoWayReplacementSelection twrs(TwoWayOptions::Recommended(kMemory, 5));
  return GenerateRuns(&twrs, input);
}

TEST(TheoremsTest, Theorem1RsSortedInputOneRun) {
  auto input = Input(Dataset::kSorted);
  auto result = RunRs(input);
  EXPECT_EQ(result.runs.size(), 1u);
  ExpectValidRuns(result.runs, input);
}

TEST(TheoremsTest, Theorem2TwoWaySortedInputOneRun) {
  auto input = Input(Dataset::kSorted);
  auto result = Run2wrs(input);
  EXPECT_EQ(result.runs.size(), 1u);
  ExpectValidRuns(result.runs, input);
}

TEST(TheoremsTest, Theorem3RsReverseSortedRunsEqualMemory) {
  auto input = Input(Dataset::kReverseSorted);
  auto result = RunRs(input);
  // Every run has exactly the memory size (possibly excepting the last).
  for (size_t i = 0; i + 1 < result.stats.run_lengths.size(); ++i) {
    EXPECT_EQ(result.stats.run_lengths[i], kMemory) << "run " << i;
  }
  EXPECT_NEAR(static_cast<double>(result.runs.size()),
              static_cast<double>(kRecords) / kMemory, 1.0);
}

TEST(TheoremsTest, Theorem4TwoWayReverseSortedOneRun) {
  auto input = Input(Dataset::kReverseSorted);
  auto result = Run2wrs(input);
  EXPECT_EQ(result.runs.size(), 1u);
  ExpectValidRuns(result.runs, input);
}

TEST(TheoremsTest, Theorem5RsAlternatingRunsAverageTwiceMemory) {
  // Alternating chunks much longer than memory: RS averages ~2x memory.
  auto input = Input(Dataset::kAlternating, /*sections=*/10);
  auto result = RunRs(input);
  const double relative = result.stats.AverageRunLengthRelative(kMemory);
  EXPECT_GT(relative, 1.5);
  EXPECT_LT(relative, 2.6);
}

TEST(TheoremsTest, Theorem6TwoWayAlternatingRunsAverageSectionLength) {
  // 2WRS captures each section in (about) one run, so the average run
  // length approaches the section length k — far above RS's 2x memory.
  const uint64_t sections = 10;
  auto input = Input(Dataset::kAlternating, sections);
  auto result = Run2wrs(input);
  ExpectValidRuns(result.runs, input);
  const double section_length = static_cast<double>(kRecords) / sections;
  const double average = result.stats.AverageRunLength();
  EXPECT_GT(average, 0.5 * section_length);
  // And 2WRS beats RS by a wide margin on this input.
  auto rs_result = RunRs(input);
  EXPECT_LT(result.runs.size() * 3, rs_result.runs.size());
}

TEST(TheoremsTest, Theorem7TopHeapOnlyConfigMatchesRs) {
  // Theorem 7: a heuristic that always chooses the TopHeap makes 2WRS
  // perform at least as well as RS. With everything flowing through the
  // TopHeap and no buffers, run counts must match RS on random input.
  WorkloadOptions wl;
  wl.num_records = kRecords;
  wl.seed = 31;
  auto input = Drain(MakeWorkload(Dataset::kRandom, wl).get());

  auto rs_result = RunRs(input);

  // The Mean heuristic with no buffers approximates "TopHeap when above
  // the running mean"; instead force pure-TopHeap behaviour through an
  // ascending-only check: sorted input sends every record to the TopHeap
  // under the Mean heuristic, reproducing RS exactly (both produce 1 run).
  auto sorted_input = Input(Dataset::kSorted);
  auto rs_sorted = RunRs(sorted_input);
  auto twrs_sorted = Run2wrs(sorted_input);
  EXPECT_EQ(twrs_sorted.runs.size(), rs_sorted.runs.size());

  // On random input the recommended 2WRS must not generate more runs than
  // RS beyond a small tolerance (it is "at least as good", §5.2.4 shows
  // parity up to the memory ceded to buffers).
  auto twrs_result = Run2wrs(input);
  EXPECT_LE(twrs_result.runs.size(),
            static_cast<size_t>(rs_result.runs.size() * 1.15) + 1);
}

TEST(TheoremsTest, RunLengthIdentityHoldsForBoth) {
  // #runs x avg run length == input size (§5.2's response-variable link).
  for (Dataset dataset : {Dataset::kRandom, Dataset::kMixed}) {
    auto input = Input(dataset);
    for (bool use_twrs : {false, true}) {
      auto result = use_twrs ? Run2wrs(input) : RunRs(input);
      EXPECT_DOUBLE_EQ(
          result.stats.AverageRunLength() * result.stats.num_runs(),
          static_cast<double>(input.size()));
    }
  }
}

}  // namespace
}  // namespace twrs
