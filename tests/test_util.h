#ifndef TWRS_TESTS_TEST_UTIL_H_
#define TWRS_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>
#include <stdlib.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/record_source.h"
#include "core/run_generator.h"
#include "core/run_sink.h"
#include "util/checksum.h"
#include "util/status.h"

namespace twrs {
namespace testing {

/// gtest assertion on a twrs::Status.
#define ASSERT_TWRS_OK(expr)                                 \
  do {                                                       \
    ::twrs::Status _s = (expr);                              \
    ASSERT_TRUE(_s.ok()) << "status: " << _s.ToString();     \
  } while (0)

#define EXPECT_TWRS_OK(expr)                                 \
  do {                                                       \
    ::twrs::Status _s = (expr);                              \
    EXPECT_TRUE(_s.ok()) << "status: " << _s.ToString();     \
  } while (0)

/// Reads a source to exhaustion.
inline std::vector<Key> Drain(RecordSource* source) {
  std::vector<Key> out;
  Key key;
  while (source->Next(&key)) out.push_back(key);
  return out;
}

inline bool IsSortedAscending(const std::vector<Key>& keys) {
  return std::is_sorted(keys.begin(), keys.end());
}

inline KeyChecksum ChecksumOf(const std::vector<Key>& keys) {
  KeyChecksum sum;
  for (Key k : keys) sum.Add(k);
  return sum;
}

/// Output of GenerateRuns below.
struct GenerateResult {
  std::vector<std::vector<Key>> runs;  ///< each assembled ascending
  RunGenStats stats;
};

/// Runs a generator over an in-memory input, collecting assembled runs.
inline GenerateResult GenerateRuns(RunGenerator* generator,
                                   std::vector<Key> input) {
  VectorSource source(std::move(input));
  CollectingRunSink sink;
  GenerateResult result;
  Status s = generator->Generate(&source, &sink, &result.stats);
  EXPECT_TRUE(s.ok()) << "Generate: " << s.ToString();
  result.runs = sink.collected();
  return result;
}

/// Asserts the runs are individually sorted and jointly a permutation of
/// the input.
inline void ExpectValidRuns(const std::vector<std::vector<Key>>& runs,
                            const std::vector<Key>& input) {
  KeyChecksum output_sum;
  for (const auto& run : runs) {
    EXPECT_TRUE(IsSortedAscending(run)) << "run not sorted";
    for (Key k : run) output_sum.Add(k);
  }
  EXPECT_TRUE(output_sum == ChecksumOf(input))
      << "runs are not a permutation of the input";
}

/// Creates a unique scratch directory under /tmp for PosixEnv tests.
inline std::string MakeTempDir() {
  std::string templ = "/tmp/twrs_test_XXXXXX";
  char* dir = mkdtemp(templ.data());
  EXPECT_NE(dir, nullptr);
  return std::string(dir);
}

}  // namespace testing
}  // namespace twrs

#endif  // TWRS_TESTS_TEST_UTIL_H_
