#include "stats/anova.h"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/descriptive.h"
#include "tests/test_util.h"

namespace twrs {
namespace {

Observation Obs(std::vector<int> levels, double y) {
  Observation obs;
  obs.levels = std::move(levels);
  obs.y = y;
  return obs;
}

TEST(DescriptiveTest, Basics) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(SampleVariance({2, 4, 4, 4, 5, 5, 7, 9}), 32.0 / 7.0);
  EXPECT_DOUBLE_EQ(SampleVariance({5}), 0.0);
  EXPECT_NEAR(SampleStdDev({2, 4, 4, 4, 5, 5, 7, 9}),
              std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(HarmonicMean({1, 1}), 1.0);
  EXPECT_NEAR(HarmonicMean({2, 3}), 2.4, 1e-12);
  EXPECT_DOUBLE_EQ(HarmonicMean({1, 0}), 0.0);
}

TEST(AnovaTest, OneWayHandComputedFixture) {
  // Three groups of two observations: {1, 3}, {5, 7}, {9, 11}.
  // Grand mean = 6; group means 2, 6, 10.
  // SS_factor = 2*((2-6)^2 + 0 + (10-6)^2) = 64; SS_error = 4*1 + ... = 6
  // with df = (3-1, 6-1-2) = (2, 3).
  std::vector<Observation> obs = {Obs({0}, 1), Obs({0}, 3), Obs({1}, 5),
                                  Obs({1}, 7), Obs({2}, 9), Obs({2}, 11)};
  AnovaResult result;
  ASSERT_TWRS_OK(FitAnova(obs, {3}, {{{0}}}, &result));
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_NEAR(result.rows[0].ss, 64.0, 1e-9);
  EXPECT_EQ(result.rows[0].df, 2);
  EXPECT_NEAR(result.ss_error, 6.0, 1e-9);
  EXPECT_EQ(result.df_error, 3);
  EXPECT_NEAR(result.ms_error, 2.0, 1e-9);
  EXPECT_NEAR(result.rows[0].f, 16.0, 1e-9);
  EXPECT_NEAR(result.grand_mean, 6.0, 1e-12);
  // F(2,3) = 16 has p ~ 0.025: significant at 0.05.
  EXPECT_LT(result.rows[0].significance, 0.05);
  EXPECT_GT(result.rows[0].significance, 0.01);
  EXPECT_NEAR(result.r_squared, 64.0 / 70.0, 1e-9);
  EXPECT_NEAR(result.sigma, std::sqrt(2.0), 1e-9);
  EXPECT_NEAR(result.cv_percent, 100.0 * std::sqrt(2.0) / 6.0, 1e-6);
}

TEST(AnovaTest, TwoWayWithInteractionDecomposition) {
  // 2x2 design with n=2; additive structure plus a pure interaction term.
  // y = mu + a_i + b_j + (ab)_ij with a = {-1, +1}, b = {-2, +2},
  // (ab) = {+1, -1; -1, +1}, mu = 10.
  std::vector<Observation> obs;
  const double a[2] = {-1, 1};
  const double b[2] = {-2, 2};
  const double ab[2][2] = {{1, -1}, {-1, 1}};
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      for (int r = 0; r < 2; ++r) {
        const double noise = (r == 0 ? 0.5 : -0.5);
        obs.push_back(Obs({i, j}, 10 + a[i] + b[j] + ab[i][j] + noise));
      }
    }
  }
  AnovaResult result;
  ASSERT_TWRS_OK(
      FitAnova(obs, {2, 2}, {{{0}}, {{1}}, {{0, 1}}}, &result));
  ASSERT_EQ(result.rows.size(), 3u);
  // SS_A = N * a^2 averaged: 8 observations, effect ±1 -> SS = 8.
  EXPECT_NEAR(result.rows[0].ss, 8.0, 1e-9);
  EXPECT_EQ(result.rows[0].df, 1);
  // SS_B: effect ±2 -> SS = 8 * 4 = 32.
  EXPECT_NEAR(result.rows[1].ss, 32.0, 1e-9);
  // SS_AB: effect ±1 -> SS = 8.
  EXPECT_NEAR(result.rows[2].ss, 8.0, 1e-9);
  // Residual: each cell has ±0.5 around its mean -> SS = 8 * 0.25 = 2.
  EXPECT_NEAR(result.ss_error, 2.0, 1e-9);
  EXPECT_EQ(result.df_error, 4);
  // Orthogonal decomposition: total = sum of parts.
  EXPECT_NEAR(result.ss_total,
              result.rows[0].ss + result.rows[1].ss + result.rows[2].ss +
                  result.ss_error,
              1e-9);
}

TEST(AnovaTest, UnmodeledInteractionLandsInResidual) {
  // Same data, but the model omits the interaction: SS_AB moves into the
  // residual and R^2 drops accordingly.
  std::vector<Observation> obs;
  const double ab[2][2] = {{1, -1}, {-1, 1}};
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      for (int r = 0; r < 2; ++r) {
        obs.push_back(Obs({i, j}, 10 + ab[i][j] + (r == 0 ? 0.5 : -0.5)));
      }
    }
  }
  AnovaResult full;
  ASSERT_TWRS_OK(FitAnova(obs, {2, 2}, {{{0}}, {{1}}, {{0, 1}}}, &full));
  AnovaResult reduced;
  ASSERT_TWRS_OK(FitAnova(obs, {2, 2}, {{{0}}, {{1}}}, &reduced));
  EXPECT_NEAR(reduced.ss_error, full.ss_error + 8.0, 1e-9);
  EXPECT_LT(reduced.r_squared, full.r_squared);
}

TEST(AnovaTest, SignificantFactorDetected) {
  // Factor 0 drives the response strongly; factor 1 is noise-level.
  std::vector<Observation> obs;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      for (int r = 0; r < 4; ++r) {
        // Jitter varies with the replicate only, so factor 1 has exactly
        // zero effect while the residual variance stays positive.
        const double jitter = 0.1 * ((i * 31 + r * 7) % 5 - 2);
        obs.push_back(Obs({i, j}, 10.0 * i + jitter));
      }
    }
  }
  AnovaResult result;
  ASSERT_TWRS_OK(FitAnova(obs, {3, 3}, {{{0}}, {{1}}}, &result));
  EXPECT_LT(result.rows[0].significance, 1e-6);
  EXPECT_GT(result.rows[0].power, 0.99);
  EXPECT_GT(result.rows[1].significance, 0.05);
  EXPECT_GT(result.r_squared, 0.99);
}

TEST(AnovaTest, DeterministicResponseHasZeroResidual) {
  // The paper's sorted-input model: constant response, zero variance.
  std::vector<Observation> obs;
  for (int i = 0; i < 2; ++i) {
    for (int r = 0; r < 3; ++r) obs.push_back(Obs({i}, 1.0));
  }
  AnovaResult result;
  ASSERT_TWRS_OK(FitAnova(obs, {2}, {{{0}}}, &result));
  EXPECT_NEAR(result.ss_error, 0.0, 1e-12);
  EXPECT_NEAR(result.grand_mean, 1.0, 1e-12);
  EXPECT_EQ(result.rows[0].significance, 1.0);  // factor has no effect
}

TEST(AnovaTest, InvalidInputsRejected) {
  AnovaResult result;
  EXPECT_TRUE(FitAnova({}, {2}, {{{0}}}, &result).IsInvalidArgument());
  EXPECT_TRUE(FitAnova({Obs({5}, 1)}, {2}, {{{0}}}, &result)
                  .IsInvalidArgument());  // level out of range
  EXPECT_TRUE(FitAnova({Obs({0, 0}, 1)}, {2}, {{{0}}}, &result)
                  .IsInvalidArgument());  // arity mismatch
  EXPECT_TRUE(FitAnova({Obs({0}, 1)}, {2}, {{{0, 0}}}, &result)
                  .IsInvalidArgument());  // duplicate factor in term
  EXPECT_TRUE(FitAnova({Obs({0}, 1)}, {2}, {{{3}}}, &result)
                  .IsInvalidArgument());  // unknown factor
}

TEST(AnovaTest, WlsDownWeightsNoisyLevels) {
  // Level 1 of factor 0 is 100x noisier; WLS must weight it down.
  std::vector<Observation> obs;
  for (int r = 0; r < 8; ++r) {
    obs.push_back(Obs({0}, 10 + 0.01 * (r % 2 == 0 ? 1 : -1)));
    obs.push_back(Obs({1}, 20 + 1.0 * (r % 2 == 0 ? 1 : -1)));
  }
  ASSERT_TWRS_OK(ApplyWlsWeights(&obs, 0, 2));
  double w0 = 0.0;
  double w1 = 0.0;
  for (const Observation& o : obs) {
    (o.levels[0] == 0 ? w0 : w1) = o.weight;
  }
  EXPECT_GT(w0, w1 * 100);
  AnovaResult result;
  ASSERT_TWRS_OK(FitAnova(obs, {2}, {{{0}}}, &result));
  EXPECT_LT(result.rows[0].significance, 1e-6);
}

TEST(AnovaTest, CombineFactorsBuildsMixedRadixLevels) {
  std::vector<Observation> obs = {Obs({1, 2}, 5.0), Obs({0, 1}, 3.0)};
  int num_levels = 0;
  auto combined = CombineFactors(obs, {0, 1}, {2, 3}, &num_levels);
  EXPECT_EQ(num_levels, 6);
  ASSERT_EQ(combined.size(), 2u);
  EXPECT_EQ(combined[0].levels, std::vector<int>({1 * 3 + 2}));
  EXPECT_EQ(combined[1].levels, std::vector<int>({0 * 3 + 1}));
  EXPECT_DOUBLE_EQ(combined[0].y, 5.0);
}

TEST(AnovaTest, TermNames) {
  AnovaTerm main{{1}};
  AnovaTerm interaction{{0, 2}};
  std::vector<std::string> names = {"alpha", "beta", "gamma"};
  EXPECT_EQ(main.Name(names), "beta");
  EXPECT_EQ(interaction.Name(names), "(alpha*gamma)");
}

}  // namespace
}  // namespace twrs
