#include "stats/special_functions.h"

#include <gtest/gtest.h>

#include <cmath>

namespace twrs {
namespace {

TEST(IncompleteBetaTest, BoundaryValues) {
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2, 3, 1.0), 1.0);
}

TEST(IncompleteBetaTest, SymmetricCaseAtHalf) {
  // I_{0.5}(a, a) = 0.5 for any a.
  for (double a : {0.5, 1.0, 2.0, 7.5}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(a, a, 0.5), 0.5, 1e-10);
  }
}

TEST(IncompleteBetaTest, UniformSpecialCase) {
  // I_x(1, 1) = x.
  for (double x : {0.1, 0.25, 0.9}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(1, 1, x), x, 1e-10);
  }
}

TEST(IncompleteBetaTest, ClosedFormChecks) {
  // I_x(1, b) = 1 - (1-x)^b; I_x(a, 1) = x^a.
  EXPECT_NEAR(RegularizedIncompleteBeta(1, 3, 0.2),
              1 - std::pow(0.8, 3), 1e-10);
  EXPECT_NEAR(RegularizedIncompleteBeta(4, 1, 0.7), std::pow(0.7, 4), 1e-10);
}

TEST(IncompleteGammaTest, KnownValues) {
  // P(1, x) = 1 - e^-x.
  EXPECT_NEAR(RegularizedLowerGamma(1.0, 2.0), 1 - std::exp(-2.0), 1e-10);
  // P(0.5, x) = erf(sqrt(x)).
  EXPECT_NEAR(RegularizedLowerGamma(0.5, 1.0), std::erf(1.0), 1e-9);
  EXPECT_DOUBLE_EQ(RegularizedLowerGamma(3.0, 0.0), 0.0);
  // Large-x branch (continued fraction).
  EXPECT_NEAR(RegularizedLowerGamma(2.0, 10.0),
              1 - std::exp(-10.0) * (1 + 10.0), 1e-9);
}

TEST(NormalTest, CdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(NormalCdf(-1.959963985), 0.025, 1e-6);
  EXPECT_NEAR(NormalPdf(0.0), 0.3989422804, 1e-9);
}

TEST(FDistributionTest, KnownValues) {
  // F(1, 1) has CDF 0.5 at f = 1 (median of F(1,1) is 1).
  EXPECT_NEAR(FCdf(1.0, 1, 1), 0.5, 1e-9);
  // F(d, d) has median 1 for any d.
  EXPECT_NEAR(FCdf(1.0, 10, 10), 0.5, 1e-9);
  // Published critical value: F_{0.95}(2, 10) = 4.103.
  EXPECT_NEAR(FCdf(4.103, 2, 10), 0.95, 5e-4);
  // F_{0.95}(5, 20) = 2.711.
  EXPECT_NEAR(FCdf(2.711, 5, 20), 0.95, 5e-4);
}

TEST(FDistributionTest, QuantileInvertsCdf) {
  for (double p : {0.5, 0.9, 0.95, 0.99}) {
    for (auto [d1, d2] : {std::pair{2.0, 10.0}, std::pair{5.0, 40.0}}) {
      const double f = FQuantile(p, d1, d2);
      EXPECT_NEAR(FCdf(f, d1, d2), p, 1e-6);
    }
  }
}

TEST(NoncentralFTest, ZeroLambdaReducesToCentral) {
  for (double f : {0.5, 1.0, 3.0}) {
    EXPECT_NEAR(NoncentralFCdf(f, 3, 20, 0.0), FCdf(f, 3, 20), 1e-9);
  }
}

TEST(NoncentralFTest, LargerLambdaShiftsRight) {
  // Noncentrality pushes mass to larger F values: CDF at a fixed point
  // decreases with lambda.
  const double base = NoncentralFCdf(2.0, 3, 20, 0.0);
  const double shifted = NoncentralFCdf(2.0, 3, 20, 5.0);
  const double far = NoncentralFCdf(2.0, 3, 20, 20.0);
  EXPECT_GT(base, shifted);
  EXPECT_GT(shifted, far);
}

TEST(NoncentralFTest, PowerGrowsWithEffectSize) {
  // Observed power at the 5% critical value grows with lambda.
  const double f_crit = FQuantile(0.95, 2, 30);
  const double p1 = 1.0 - NoncentralFCdf(f_crit, 2, 30, 1.0);
  const double p5 = 1.0 - NoncentralFCdf(f_crit, 2, 30, 5.0);
  const double p20 = 1.0 - NoncentralFCdf(f_crit, 2, 30, 20.0);
  EXPECT_LT(p1, p5);
  EXPECT_LT(p5, p20);
  EXPECT_GT(p20, 0.9);
}

TEST(StudentizedRangeTest, TwoGroupsInfiniteDfMatchesNormal) {
  // For k = 2, q_{0.95}(2, inf) = sqrt(2) * z_{0.975} = 2.7718.
  EXPECT_NEAR(StudentizedRangeCdf(2.7718, 2, 1e9), 0.95, 2e-3);
}

TEST(StudentizedRangeTest, PublishedCriticalValues) {
  // Standard table values of q_{0.95}(k, df).
  EXPECT_NEAR(StudentizedRangeCdf(3.314, 3, 1e9), 0.95, 3e-3);   // k=3, inf
  EXPECT_NEAR(StudentizedRangeCdf(3.633, 4, 1e9), 0.95, 3e-3);   // k=4, inf
  EXPECT_NEAR(StudentizedRangeCdf(3.578, 3, 20.0), 0.95, 5e-3);  // k=3, 20
  EXPECT_NEAR(StudentizedRangeCdf(2.950, 2, 30.0), 0.95, 5e-3);  // k=2, 30
}

TEST(StudentizedRangeTest, MonotoneInQ) {
  double previous = 0.0;
  for (double q = 0.5; q < 6.0; q += 0.5) {
    const double p = StudentizedRangeCdf(q, 4, 60.0);
    EXPECT_GE(p, previous);
    previous = p;
  }
  EXPECT_GT(previous, 0.99);
}

TEST(StudentizedRangeTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(StudentizedRangeCdf(-1.0, 3, 10), 0.0);
  EXPECT_DOUBLE_EQ(StudentizedRangeCdf(0.0, 3, 10), 0.0);
  EXPECT_DOUBLE_EQ(StudentizedRangeCdf(5.0, 1, 10), 1.0);
}

}  // namespace
}  // namespace twrs
