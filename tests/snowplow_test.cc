#include "model/snowplow.h"

#include <gtest/gtest.h>

#include <cmath>

namespace twrs {
namespace {

SnowplowModel UniformModel(int bins = 2048) {
  SnowplowOptions options;
  options.bins = bins;
  return SnowplowModel(options, [](double) { return 1.0; });
}

TEST(SnowplowTest, MemoryIsConserved) {
  SnowplowModel model = UniformModel();
  EXPECT_NEAR(model.TotalMemory(), 1.0, 1e-9);
  for (int run = 0; run < 5; ++run) {
    model.SimulateRun();
    EXPECT_NEAR(model.TotalMemory(), 1.0, 1e-6) << "run " << run;
  }
}

TEST(SnowplowTest, StableSolutionYieldsRunLengthTwo) {
  // §3.6.1: starting from the stable density m(x) = 2 - 2x, every run has
  // length exactly twice the memory.
  SnowplowModel model = UniformModel();
  model.SetInitialDensity(SnowplowModel::StableUniformDensity);
  for (int run = 0; run < 3; ++run) {
    auto result = model.SimulateRun();
    EXPECT_NEAR(result.run_length, 2.0, 0.01) << "run " << run;
  }
}

TEST(SnowplowTest, FirstRunFromUniformMemoryIsEMinusOne) {
  // With m(x, 0) = 1 the plow's arrival time solves T' = 1 + T, so the
  // first run length is e - 1 (the classic first-run result).
  SnowplowModel model = UniformModel();
  auto result = model.SimulateRun();
  EXPECT_NEAR(result.run_length, std::exp(1.0) - 1.0, 0.01);
}

TEST(SnowplowTest, ConvergesToStableSolution) {
  // Fig 3.8: after three runs the density is indistinguishable from 2 - 2x.
  SnowplowModel model = UniformModel();
  for (int run = 0; run < 3; ++run) model.SimulateRun();
  double max_error = 0.0;
  for (double x = 0.05; x < 0.95; x += 0.05) {
    max_error = std::max(
        max_error,
        std::fabs(model.DensityAt(x) - SnowplowModel::StableUniformDensity(x)));
  }
  EXPECT_LT(max_error, 0.05);
  // And the run length settles at 2.
  EXPECT_NEAR(model.SimulateRun().run_length, 2.0, 0.02);
}

TEST(SnowplowTest, RunLengthsIncreaseTowardsStable) {
  SnowplowModel model = UniformModel();
  const double first = model.SimulateRun().run_length;
  const double second = model.SimulateRun().run_length;
  const double third = model.SimulateRun().run_length;
  EXPECT_LT(first, second);
  EXPECT_NEAR(third, 2.0, 0.1);
}

TEST(SnowplowTest, DensityVanishesBehindThePlow) {
  SnowplowModel model = UniformModel(512);
  model.SimulateRun();
  // Immediately after a run the plow sits at x = 0 again; density near 1.0
  // (just cleared) is small, density near 0 has been refilling longest.
  EXPECT_GT(model.DensityAt(0.02), model.DensityAt(0.98));
}

TEST(SnowplowTest, NonUniformInputChangesRunLength) {
  // Input concentrated on low keys: the plow crawls through the dense
  // region but sweeps the empty half instantly. The stable run length for
  // data(x) = 2 * 1[x < 0.5] differs from the uniform case.
  SnowplowOptions options;
  options.bins = 2048;
  SnowplowModel model(options,
                      [](double x) { return x < 0.5 ? 2.0 : 0.0; });
  double run_length = 0.0;
  for (int run = 0; run < 8; ++run) run_length = model.SimulateRun().run_length;
  EXPECT_NEAR(model.TotalMemory(), 1.0, 1e-6);
  EXPECT_GT(run_length, 1.0);
  EXPECT_LT(std::fabs(run_length - 2.0), 0.5);
}

TEST(SnowplowTest, HigherThroughputShortensDuration) {
  SnowplowOptions fast;
  fast.bins = 1024;
  fast.k1 = 2.0;
  SnowplowModel model(fast, [](double) { return 1.0; });
  model.SetInitialDensity(SnowplowModel::StableUniformDensity);
  auto result = model.SimulateRun();
  // Duration halves but run length (k1 * duration) stays 2x memory.
  EXPECT_NEAR(result.duration, 1.0, 0.02);
  EXPECT_NEAR(result.run_length, 2.0, 0.02);
}

}  // namespace
}  // namespace twrs
