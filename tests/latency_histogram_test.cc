#include "obs/latency_histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "stats/descriptive.h"

namespace twrs {
namespace {

/// Exact nearest-rank quantile of a sorted sample, the definition
/// ValueAtQuantile approximates: the smallest value whose cumulative
/// count reaches ceil(q * n), clamped to at least rank 1.
uint64_t ExactQuantile(const std::vector<uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  const double n = static_cast<double>(sorted.size());
  size_t rank = static_cast<size_t>(std::ceil(q * n));
  rank = std::max<size_t>(1, std::min(rank, sorted.size()));
  return sorted[rank - 1];
}

void ExpectQuantileWithinBound(const LatencyHistogram::Snapshot& snap,
                               const std::vector<uint64_t>& sorted,
                               double q) {
  const double exact = static_cast<double>(ExactQuantile(sorted, q));
  const double approx = static_cast<double>(snap.ValueAtQuantile(q));
  // The bucketed quantile sits in the same bucket as the exact one, and
  // bucket midpoints are within kRelativeErrorBound of any value in the
  // bucket.
  const double bound =
      LatencyHistogram::kRelativeErrorBound * std::max(exact, 1.0);
  EXPECT_NEAR(approx, exact, bound)
      << "q=" << q << " exact=" << exact << " approx=" << approx;
}

TEST(LatencyHistogramTest, SmallValuesAreExact) {
  LatencyHistogram h;
  for (uint64_t v = 0; v < LatencyHistogram::kSubBuckets; ++v) h.Record(v);
  const auto snap = h.TakeSnapshot();
  EXPECT_EQ(snap.count, LatencyHistogram::kSubBuckets);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, LatencyHistogram::kSubBuckets - 1);
  // Below kSubBuckets every value has its own unit-width bucket, so the
  // quantiles are exact, not just within the error bound.
  std::vector<uint64_t> sorted;
  for (uint64_t v = 0; v < LatencyHistogram::kSubBuckets; ++v) {
    sorted.push_back(v);
  }
  for (double q : {0.1, 0.5, 0.9, 1.0}) {
    EXPECT_EQ(snap.ValueAtQuantile(q), ExactQuantile(sorted, q)) << q;
  }
}

TEST(LatencyHistogramTest, BucketIndexRoundTrips) {
  // Every probed value must land in a bucket that actually covers it.
  std::vector<uint64_t> probes;
  for (uint64_t v = 0; v < 4096; ++v) probes.push_back(v);
  for (int shift = 12; shift < 63; ++shift) {
    probes.push_back(uint64_t{1} << shift);
    probes.push_back((uint64_t{1} << shift) - 1);
    probes.push_back((uint64_t{1} << shift) + 12345);
  }
  probes.push_back(UINT64_MAX);
  for (uint64_t v : probes) {
    const size_t index = LatencyHistogram::BucketIndex(v);
    ASSERT_LT(index, LatencyHistogram::kNumBuckets) << v;
    const uint64_t lower = LatencyHistogram::BucketLower(index);
    const uint64_t width = LatencyHistogram::BucketWidth(index);
    EXPECT_GE(v, lower) << v;
    // lower + width can overflow for the top octave; check via subtraction.
    EXPECT_LT(v - lower, width) << v;
  }
}

TEST(LatencyHistogramTest, QuantilesWithinBoundVsExact) {
  std::mt19937_64 rng(42);
  // Log-uniform samples spanning ~9 orders of magnitude, the shape of
  // real latency data (microseconds to tens of seconds in ns ticks).
  std::uniform_real_distribution<double> exponent(0.0, 9.0);
  LatencyHistogram h;
  std::vector<uint64_t> values;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t v = static_cast<uint64_t>(std::pow(10.0, exponent(rng)));
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  const auto snap = h.TakeSnapshot();
  EXPECT_EQ(snap.count, values.size());
  EXPECT_EQ(snap.min, values.front());
  EXPECT_EQ(snap.max, values.back());
  for (double q : {0.01, 0.25, 0.50, 0.90, 0.99, 0.999, 1.0}) {
    ExpectQuantileWithinBound(snap, values, q);
  }
}

TEST(LatencyHistogramTest, MeanIsExactNotBucketed) {
  // The sum is tracked outside the buckets, so the mean must match the
  // sample mean exactly (up to float rounding), not the bucket error.
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<uint64_t> dist(1, 1 << 30);
  LatencyHistogram h;
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) {
    const uint64_t v = dist(rng);
    values.push_back(static_cast<double>(v));
    h.Record(v);
  }
  const auto snap = h.TakeSnapshot();
  EXPECT_NEAR(snap.Mean(), Mean(values), 1e-6 * Mean(values));
}

TEST(LatencyHistogramTest, MergeIsAssociativeAndExact) {
  std::mt19937_64 rng(99);
  std::uniform_int_distribution<uint64_t> dist(0, uint64_t{1} << 40);
  LatencyHistogram all, parts[3];
  for (int i = 0; i < 9000; ++i) {
    const uint64_t v = dist(rng);
    all.Record(v);
    parts[i % 3].Record(v);
  }
  const auto expected = all.TakeSnapshot();

  // (a + b) + c
  auto left = parts[0].TakeSnapshot();
  left.Merge(parts[1].TakeSnapshot());
  left.Merge(parts[2].TakeSnapshot());
  // a + (b + c)
  auto bc = parts[1].TakeSnapshot();
  bc.Merge(parts[2].TakeSnapshot());
  auto right = parts[0].TakeSnapshot();
  right.Merge(bc);

  for (const auto* merged : {&left, &right}) {
    EXPECT_EQ(merged->count, expected.count);
    EXPECT_EQ(merged->sum, expected.sum);
    EXPECT_EQ(merged->min, expected.min);
    EXPECT_EQ(merged->max, expected.max);
    EXPECT_EQ(merged->buckets, expected.buckets);
  }
}

TEST(LatencyHistogramTest, ConcurrentRecordingLosesNothing) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  LatencyHistogram concurrent;
  LatencyHistogram serial;
  // Each thread records a deterministic stream; the serial histogram
  // receives the identical multiset, so after the threads join the two
  // must agree bucket for bucket.
  for (int t = 0; t < kThreads; ++t) {
    std::mt19937_64 rng(1000 + t);
    std::uniform_int_distribution<uint64_t> dist(0, uint64_t{1} << 36);
    for (int i = 0; i < kPerThread; ++i) serial.Record(dist(rng));
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&concurrent, t] {
      std::mt19937_64 rng(1000 + t);
      std::uniform_int_distribution<uint64_t> dist(0, uint64_t{1} << 36);
      for (int i = 0; i < kPerThread; ++i) concurrent.Record(dist(rng));
    });
  }
  for (auto& thread : threads) thread.join();

  const auto expected = serial.TakeSnapshot();
  const auto got = concurrent.TakeSnapshot();
  EXPECT_EQ(got.count, uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(got.count, expected.count);
  EXPECT_EQ(got.sum, expected.sum);
  EXPECT_EQ(got.min, expected.min);
  EXPECT_EQ(got.max, expected.max);
  EXPECT_EQ(got.buckets, expected.buckets);
}

TEST(LatencyHistogramTest, RecordSecondsClampsAndConverts) {
  LatencyHistogram h;
  h.RecordSeconds(-1.0);  // clamps to 0 ticks
  h.RecordSeconds(0.5);   // 5e8 ns
  const auto snap = h.TakeSnapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.min, 0u);
  const double half_second = 0.5 * LatencyHistogram::kTicksPerSecond;
  EXPECT_NEAR(static_cast<double>(snap.max), half_second,
              LatencyHistogram::kRelativeErrorBound * half_second);
}

TEST(MetricsRegistryTest, StablePointersAndSnapshot) {
  MetricsRegistry registry;
  LatencyHistogram* h = registry.Histogram("sort.test_seconds");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h, registry.Histogram("sort.test_seconds"));  // stable
  h->RecordSeconds(0.25);
  registry.Counter("jobs")->Increment(3);

  const MetricsSnapshot snap = registry.Snapshot();
  const HistogramSummary* summary = snap.FindHistogram("sort.test_seconds");
  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(summary->count, 1u);
  EXPECT_NEAR(summary->p50_seconds, 0.25,
              LatencyHistogram::kRelativeErrorBound * 0.25);
  const CounterSummary* counter = snap.FindCounter("jobs");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->value, 3u);
  EXPECT_EQ(snap.FindHistogram("absent"), nullptr);
  EXPECT_EQ(snap.FindCounter("absent"), nullptr);
}

TEST(MetricsRegistryTest, ToJsonIsWellFormedEnough) {
  MetricsRegistry registry;
  registry.Histogram("a.seconds")->RecordSeconds(0.001);
  registry.Counter("b.count")->Increment();
  const std::string json = registry.ToJson();
  // Sanity, not a JSON parser: both sections present, braces balanced.
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"a.seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"b.count\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

}  // namespace
}  // namespace twrs
