#include "service/sort_service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "io/mem_env.h"
#include "service/shard_planner.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace twrs {
namespace {

using testing::ChecksumOf;
using testing::Drain;

// ---------------------------------------------------------------------------
// Shard planner

TEST(ShardPlannerTest, InputFittingInMemoryStaysUnsharded) {
  ShardPlanInputs inputs;
  inputs.input_records = 1000;
  inputs.memory_records = 2000;
  inputs.executor_capacity = 8;
  const ShardPlan plan = PlanShardCount(inputs);
  EXPECT_EQ(plan.shards, 1u);
  EXPECT_EQ(plan.limit, ShardPlanLimit::kInputFitsInMemory);
}

TEST(ShardPlannerTest, ShardsScaleWithInputOverMemory) {
  ShardPlanInputs inputs;
  inputs.input_records = 32000;  // 8x-memory shards of 8000 records -> 4
  inputs.memory_records = 1000;
  inputs.executor_capacity = 16;
  inputs.max_shards = 16;
  const ShardPlan plan = PlanShardCount(inputs);
  EXPECT_EQ(plan.shards, 4u);
  EXPECT_EQ(plan.limit, ShardPlanLimit::kInputSize);
}

TEST(ShardPlannerTest, ClipsToFreeExecutorWorkers) {
  ShardPlanInputs inputs;
  inputs.input_records = 1000000;
  inputs.memory_records = 1000;
  inputs.executor_capacity = 8;
  inputs.executor_inflight = 6;  // only 2 workers free
  inputs.max_shards = 64;
  const ShardPlan plan = PlanShardCount(inputs);
  EXPECT_EQ(plan.shards, 2u);
  EXPECT_EQ(plan.limit, ShardPlanLimit::kExecutorLoad);
}

TEST(ShardPlannerTest, OverloadedExecutorStillGetsOneShard) {
  ShardPlanInputs inputs;
  inputs.input_records = 1000000;
  inputs.memory_records = 1000;
  inputs.executor_capacity = 4;
  inputs.executor_inflight = 100;
  const ShardPlan plan = PlanShardCount(inputs);
  EXPECT_EQ(plan.shards, 1u);
  EXPECT_EQ(plan.limit, ShardPlanLimit::kExecutorLoad);
}

TEST(ShardPlannerTest, ClipsToMaxShards) {
  ShardPlanInputs inputs;
  inputs.input_records = 10000000;
  inputs.memory_records = 1000;
  inputs.executor_capacity = 1000;
  inputs.max_shards = 8;
  const ShardPlan plan = PlanShardCount(inputs);
  EXPECT_EQ(plan.shards, 8u);
  EXPECT_EQ(plan.limit, ShardPlanLimit::kMaxShards);
}

TEST(ShardPlannerTest, FinalMergeThreadsSpreadFreeWorkersOverShards) {
  ShardPlanInputs inputs;
  inputs.input_records = 32000;  // 8x-memory shards of 8000 records -> 4
  inputs.memory_records = 1000;
  inputs.executor_capacity = 16;
  inputs.max_shards = 16;
  const ShardPlan plan = PlanShardCount(inputs);
  EXPECT_EQ(plan.shards, 4u);
  // 16 free workers over 4 shards = 4 partitions each, and each shard's
  // merge expects 8000 / (2 * 1000) = 4 runs — not the serial 1 the
  // planner used to assume for the last pass.
  EXPECT_EQ(plan.final_merge_threads, 4u);
}

TEST(ShardPlannerTest, FinalMergeStaysSerialWhenWorkersAreScarce) {
  ShardPlanInputs inputs;
  inputs.input_records = 1000000;
  inputs.memory_records = 1000;
  inputs.executor_capacity = 8;
  inputs.executor_inflight = 6;  // 2 free workers, both taken by shards
  inputs.max_shards = 64;
  const ShardPlan plan = PlanShardCount(inputs);
  EXPECT_EQ(plan.shards, 2u);
  EXPECT_EQ(plan.final_merge_threads, 1u);
}

TEST(ShardPlannerTest, FinalMergeCappedByExpectedRunCount) {
  ShardPlanInputs inputs;
  inputs.input_records = 12000;  // 2 shards of 6000 records
  inputs.memory_records = 1000;
  inputs.executor_capacity = 64;  // workers to spare
  inputs.max_shards = 16;
  const ShardPlan plan = PlanShardCount(inputs);
  EXPECT_EQ(plan.shards, 2u);
  // 32 free workers per shard, but only ~3 runs of ~2x memory to merge.
  EXPECT_EQ(plan.final_merge_threads, 3u);
}

TEST(ShardPlannerTest, InMemoryInputKeepsTheFinalMergeSerial) {
  ShardPlanInputs inputs;
  inputs.input_records = 1000;
  inputs.memory_records = 2000;
  inputs.executor_capacity = 32;
  const ShardPlan plan = PlanShardCount(inputs);
  EXPECT_EQ(plan.shards, 1u);
  EXPECT_EQ(plan.final_merge_threads, 1u);
}

TEST(ShardPlannerTest, TopKLeaseAskShrinksToTheSelectionFootprint) {
  // Not a top-K job: the nominal ask stands.
  EXPECT_EQ(PlanTopKLeaseRecords(0, 1 << 16), size_t{1} << 16);
  // Tiny K still asks for the 8192-record floor, not K records.
  EXPECT_EQ(PlanTopKLeaseRecords(100, 1 << 16), 8192u);
  // K between the floor and the nominal ask: ask for exactly K.
  EXPECT_EQ(PlanTopKLeaseRecords(20000, 1 << 16), 20000u);
  // K at or above the nominal ask changes nothing.
  EXPECT_EQ(PlanTopKLeaseRecords(1 << 16, 1 << 16), size_t{1} << 16);
  EXPECT_EQ(PlanTopKLeaseRecords(1 << 20, 1 << 16), size_t{1} << 16);
  // The floor never inflates past the nominal ask.
  EXPECT_EQ(PlanTopKLeaseRecords(10, 100), 100u);
}

// ---------------------------------------------------------------------------
// SortService

std::vector<Key> WriteWorkload(MemEnv* env, const std::string& path,
                               uint64_t records, uint64_t seed) {
  WorkloadOptions wl;
  wl.num_records = records;
  wl.seed = seed;
  auto input = Drain(MakeWorkload(Dataset::kRandom, wl).get());
  EXPECT_TRUE(WriteAllRecords(env, path, input).ok());
  return input;
}

SortJobSpec SpecFor(const std::string& input, const std::string& output,
                    size_t memory) {
  SortJobSpec spec;
  spec.input_path = input;
  spec.output_path = output;
  spec.sort.memory_records = memory;
  spec.sort.twrs = TwoWayOptions::Recommended(memory);
  spec.sort.temp_dir = "tmp";
  spec.sort.block_bytes = 512;
  return spec;
}

TEST(SortServiceTest, SubmitValidatesTheSpec) {
  MemEnv env;
  SortService service(&env, SortServiceOptions());
  JobHandle handle;
  SortJobSpec spec;  // no paths
  EXPECT_TRUE(service.Submit(spec, &handle).IsInvalidArgument());

  spec = SpecFor("absent", "out", 64);
  EXPECT_TRUE(service.Submit(spec, &handle).IsNotFound());

  WriteWorkload(&env, "in", 10, 1);
  spec = SpecFor("in", "out", 0);
  EXPECT_TRUE(service.Submit(spec, &handle).IsInvalidArgument());

  EXPECT_EQ(service.Stats().submitted, 0u);
}

TEST(SortServiceTest, SortsOneJobEndToEnd) {
  MemEnv env;
  auto input = WriteWorkload(&env, "in", 5000, 7);

  SortServiceOptions options;
  options.governor.capacity_records = 1 << 16;
  SortService service(&env, options);
  JobHandle handle;
  ASSERT_TWRS_OK(service.Submit(SpecFor("in", "out", 128), &handle));
  ASSERT_TWRS_OK(handle.Wait());
  EXPECT_EQ(handle.state(), JobState::kDone);

  uint64_t count = 0;
  KeyChecksum sum;
  ASSERT_TWRS_OK(VerifySortedFile(&env, "out", &count, &sum));
  EXPECT_EQ(count, input.size());
  EXPECT_TRUE(sum == ChecksumOf(input));

  const SortJobStats stats = handle.stats();
  EXPECT_EQ(stats.granted_memory_records, 128u);
  EXPECT_GE(stats.planned_shards, 1u);
  EXPECT_EQ(stats.result.output_records, input.size());
  EXPECT_GT(stats.result.bytes_written, 0u);

  const SortServiceStats service_stats = service.Stats();
  EXPECT_EQ(service_stats.submitted, 1u);
  EXPECT_EQ(service_stats.completed, 1u);
}

TEST(SortServiceTest, AutoShardsPlansMoreThanOneShardForLargeInputs) {
  MemEnv env;
  auto input = WriteWorkload(&env, "in", 50000, 11);

  SortServiceOptions options;
  options.governor.capacity_records = 4096;
  options.governor.min_lease_records = 512;
  SortService service(&env, options);
  JobHandle handle;
  SortJobSpec spec = SpecFor("in", "out", 1024);
  spec.shards = kAutoShards;
  ASSERT_TWRS_OK(service.Submit(spec, &handle));
  ASSERT_TWRS_OK(handle.Wait());

  const SortJobStats stats = handle.stats();
  // 50000 records over 8x-1024-record shards wants >= 2 shards; the
  // executor has >= 2 workers and is idle, so the plan keeps at least 2.
  EXPECT_GE(stats.planned_shards, 2u);
  EXPECT_GE(stats.result.shard_records.size(), 2u);

  uint64_t count = 0;
  KeyChecksum sum;
  ASSERT_TWRS_OK(VerifySortedFile(&env, "out", &count, &sum));
  EXPECT_EQ(count, input.size());
  EXPECT_TRUE(sum == ChecksumOf(input));
}

TEST(SortServiceTest, RejectsWhenTheQueueIsFull) {
  MemEnv env;
  // A slow first job (big input, small memory) keeps the single running
  // slot busy while the queue fills.
  WriteWorkload(&env, "slow", 120000, 3);
  WriteWorkload(&env, "in", 100, 4);

  SortServiceOptions options;
  options.max_concurrent_jobs = 1;
  options.max_queue_depth = 2;
  options.governor.capacity_records = 1 << 16;
  SortService service(&env, options);

  JobHandle running;
  ASSERT_TWRS_OK(service.Submit(SpecFor("slow", "out0", 64), &running));

  // Fill the admission queue. The scheduler may have already popped one
  // job into admission, so keep submitting until two sit in the queue.
  std::vector<JobHandle> queued;
  Status rejected;
  for (int i = 1; i < 10; ++i) {
    JobHandle handle;
    Status s = service.Submit(
        SpecFor("in", "out" + std::to_string(i), 64), &handle);
    if (s.ok()) {
      queued.push_back(handle);
    } else {
      rejected = s;
      break;
    }
  }
  EXPECT_TRUE(rejected.IsBusy()) << rejected.ToString();
  EXPECT_GE(service.Stats().rejected, 1u);

  ASSERT_TWRS_OK(running.Wait());
  for (auto& handle : queued) ASSERT_TWRS_OK(handle.Wait());
}

TEST(SortServiceTest, CancelsAQueuedJob) {
  MemEnv env;
  WriteWorkload(&env, "slow", 100000, 5);
  WriteWorkload(&env, "in", 1000, 6);

  SortServiceOptions options;
  options.max_concurrent_jobs = 1;
  options.governor.capacity_records = 1 << 16;
  SortService service(&env, options);

  JobHandle running, queued;
  ASSERT_TWRS_OK(service.Submit(SpecFor("slow", "out0", 64), &running));
  ASSERT_TWRS_OK(service.Submit(SpecFor("in", "out1", 64), &queued));
  queued.Cancel();
  EXPECT_TRUE(queued.Wait().IsCancelled());
  EXPECT_EQ(queued.state(), JobState::kCancelled);
  ASSERT_TWRS_OK(running.Wait());
  EXPECT_EQ(service.Stats().cancelled, 1u);
  EXPECT_FALSE(env.FileExists("out1"));
}

// A cancelled queued job must reach its terminal state promptly even
// while the scheduler thread is parked inside a blocking governor
// Reserve for a *different* job: the cancelling thread finalizes it.
TEST(SortServiceTest, CancelsAQueuedJobWhileAdmissionIsBlocked) {
  MemEnv env;
  WriteWorkload(&env, "slow", 100000, 12);
  WriteWorkload(&env, "in", 1000, 13);

  SortServiceOptions options;
  options.max_concurrent_jobs = 4;
  // The first job takes the whole budget, so the second blocks in
  // admission until the first finishes.
  options.governor.capacity_records = 64;
  options.governor.min_lease_records = 64;
  SortService service(&env, options);

  JobHandle running, blocked, queued;
  ASSERT_TWRS_OK(service.Submit(SpecFor("slow", "out0", 64), &running));
  for (int i = 0; i < 10000 && running.state() == JobState::kQueued; ++i) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  ASSERT_NE(running.state(), JobState::kQueued);
  ASSERT_TWRS_OK(service.Submit(SpecFor("in", "out1", 64), &blocked));
  ASSERT_TWRS_OK(service.Submit(SpecFor("in", "out2", 64), &queued));

  queued.Cancel();
  EXPECT_TRUE(queued.Wait().IsCancelled());
  EXPECT_EQ(queued.state(), JobState::kCancelled);

  ASSERT_TWRS_OK(running.Wait());
  ASSERT_TWRS_OK(blocked.Wait());
}

TEST(SortServiceTest, CancelsARunningJob) {
  MemEnv env;
  WriteWorkload(&env, "in", 200000, 8);

  SortServiceOptions options;
  options.governor.capacity_records = 1 << 16;
  SortService service(&env, options);
  JobHandle handle;
  SortJobSpec spec = SpecFor("in", "out", 256);
  spec.shards = 1;
  ASSERT_TWRS_OK(service.Submit(spec, &handle));

  // Wait until the job is genuinely running, then cancel mid-sort.
  for (int i = 0; i < 10000 && handle.state() != JobState::kRunning; ++i) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  handle.Cancel();
  const Status status = handle.Wait();
  // The sort usually observes the token mid-run-generation; on a very
  // fast machine it may already have finished.
  if (status.ok()) {
    EXPECT_EQ(handle.state(), JobState::kDone);
  } else {
    EXPECT_TRUE(status.IsCancelled()) << status.ToString();
    EXPECT_EQ(handle.state(), JobState::kCancelled);
    // A cancelled job leaves no scratch and no torn output.
    std::vector<std::string> names;
    ASSERT_TWRS_OK(env.ListDir("tmp", &names));
    EXPECT_TRUE(names.empty());
    EXPECT_FALSE(env.FileExists("out"));
  }
}

TEST(SortServiceTest, DownsizedLeaseAdmitsTheNextJobMidMerge) {
  MemEnv env;
  auto input1 = WriteWorkload(&env, "in1", 400000, 11);
  auto input2 = WriteWorkload(&env, "in2", 20000, 12);

  // The governor holds exactly one full nominal lease: job 2 can only be
  // admitted while job 1 still runs if job 1 returns part of its budget
  // at merge begin. The proof is in the grant size — a lease granted
  // after job 1 fully released would be the full nominal ask again.
  // (Job 1's merge reads and rewrites 400k records after the downsize
  // fires, while the blocked Reserve only needs its condition-variable
  // wake — margin of several orders of magnitude.)
  SortServiceOptions options;
  options.max_concurrent_jobs = 2;
  options.governor.capacity_records = 150000;
  options.governor.min_lease_records = 4096;
  SortService service(&env, options);

  SortJobSpec spec1 = SpecFor("in1", "out1", 150000);
  spec1.shards = 1;
  SortJobSpec spec2 = SpecFor("in2", "out2", 150000);
  spec2.shards = 1;
  const size_t merge_records = MergePhaseMemoryRecords(spec1.sort);
  ASSERT_LT(merge_records, 150000u);

  JobHandle job1;
  JobHandle job2;
  ASSERT_TWRS_OK(service.Submit(spec1, &job1));
  ASSERT_TWRS_OK(service.Submit(spec2, &job2));
  ASSERT_TWRS_OK(job1.Wait());
  ASSERT_TWRS_OK(job2.Wait());

  const SortJobStats stats1 = job1.stats();
  EXPECT_EQ(stats1.granted_memory_records, 150000u);
  EXPECT_EQ(stats1.downsized_memory_records, merge_records);

  const SortJobStats stats2 = job2.stats();
  // Admitted out of the budget job 1 returned mid-merge.
  EXPECT_EQ(stats2.granted_memory_records, 150000u - merge_records);

  EXPECT_GE(service.GovernorStats().downsized_leases, 1u);

  for (const char* out : {"out1", "out2"}) {
    uint64_t count = 0;
    ASSERT_TWRS_OK(VerifySortedFile(&env, out, &count, nullptr));
  }
}

TEST(SortServiceTest, ShutdownCancelsQueuedJobsAndDrainsRunningOnes) {
  MemEnv env;
  WriteWorkload(&env, "slow", 100000, 9);
  WriteWorkload(&env, "in", 1000, 10);

  SortServiceOptions options;
  options.max_concurrent_jobs = 1;
  options.governor.capacity_records = 1 << 16;
  auto service = std::make_unique<SortService>(&env, options);

  JobHandle running;
  std::vector<JobHandle> queued(3);
  ASSERT_TWRS_OK(service->Submit(SpecFor("slow", "out0", 64), &running));
  for (int i = 0; i < 3; ++i) {
    ASSERT_TWRS_OK(service->Submit(
        SpecFor("in", "q" + std::to_string(i), 64), &queued[i]));
  }
  service.reset();  // ~SortService == Shutdown

  // The running job was drained (done or admitted-and-finished); every
  // job some terminal state; handles stay valid after the service died.
  const Status running_status = running.Wait();
  EXPECT_TRUE(running_status.ok() || running_status.IsCancelled())
      << running_status.ToString();
  int cancelled = 0;
  for (auto& handle : queued) {
    const Status s = handle.Wait();
    if (s.IsCancelled()) {
      ++cancelled;
    } else {
      EXPECT_TWRS_OK(s);
    }
  }
  // At least the jobs never admitted were cancelled (the scheduler may
  // have admitted at most one more before stopping).
  EXPECT_GE(cancelled, 2);
}

// Acceptance criterion of the subsystem: 16 jobs submitted concurrently
// under a governor budget of two jobs' nominal memory all complete, with
// outputs byte-identical to the serial ExternalSorter and the admission
// queueing visible in the service stats.
TEST(SortServiceStressTest, SixteenConcurrentJobsMatchSerialByteForByte) {
  MemEnv env;
  constexpr int kJobs = 16;
  constexpr size_t kNominalMemory = 1024;
  constexpr uint64_t kRecords = 20000;

  std::vector<std::vector<Key>> inputs(kJobs);
  for (int j = 0; j < kJobs; ++j) {
    WorkloadOptions wl;
    wl.num_records = kRecords;
    wl.seed = 100 + j;
    wl.sections = 8;
    inputs[j] = Drain(
        MakeWorkload(static_cast<Dataset>(j % kNumDatasets), wl).get());
    ASSERT_TWRS_OK(
        WriteAllRecords(&env, "in" + std::to_string(j), inputs[j]));
  }

  // Serial references, one sort at a time with the nominal memory.
  for (int j = 0; j < kJobs; ++j) {
    ExternalSortOptions serial;
    serial.memory_records = kNominalMemory;
    serial.twrs = TwoWayOptions::Recommended(kNominalMemory);
    serial.temp_dir = "tmp";
    serial.block_bytes = 512;
    ExternalSorter sorter(&env, serial);
    VectorSource source(inputs[j]);
    ASSERT_TWRS_OK(sorter.Sort(&source, "ref" + std::to_string(j), nullptr));
  }

  SortServiceOptions options;
  options.max_concurrent_jobs = 4;
  options.max_queue_depth = kJobs;
  // The crux: a budget of TWO jobs' nominal memory for 16 concurrent
  // jobs. Admission must queue and shrink, and results must not change.
  options.governor.capacity_records = 2 * kNominalMemory;
  options.governor.min_lease_records = kNominalMemory / 8;

  std::vector<JobHandle> handles(kJobs);
  {
    SortService service(&env, options);
    for (int j = 0; j < kJobs; ++j) {
      SortJobSpec spec = SpecFor("in" + std::to_string(j),
                                 "out" + std::to_string(j), kNominalMemory);
      spec.sample_seed = 100 + j;
      ASSERT_TWRS_OK(service.Submit(spec, &handles[j]));
    }
    for (int j = 0; j < kJobs; ++j) {
      ASSERT_TWRS_OK(handles[j].Wait());
    }

    const SortServiceStats stats = service.Stats();
    EXPECT_EQ(stats.submitted, static_cast<uint64_t>(kJobs));
    EXPECT_EQ(stats.completed, static_cast<uint64_t>(kJobs));
    EXPECT_EQ(stats.failed, 0u);
    EXPECT_LE(stats.peak_running, 4u);
    // Admission queueing must be visible: 16 jobs cannot all admit at
    // once under a 4-job concurrency gate.
    EXPECT_GT(stats.peak_queued, 0u);

    const MemoryGovernorStats governor = service.GovernorStats();
    EXPECT_EQ(governor.total_leases, static_cast<uint64_t>(kJobs));
    EXPECT_EQ(governor.reserved_records, 0u);
  }

  for (int j = 0; j < kJobs; ++j) {
    const SortJobStats job = handles[j].stats();
    EXPECT_EQ(job.state, JobState::kDone);
    EXPECT_GE(job.granted_memory_records, options.governor.min_lease_records);
    EXPECT_LE(job.granted_memory_records, kNominalMemory);

    // Byte-identical to the serial sort, whatever lease/shards were used.
    const std::vector<uint8_t>* out =
        env.FileContents("out" + std::to_string(j));
    const std::vector<uint8_t>* ref =
        env.FileContents("ref" + std::to_string(j));
    ASSERT_NE(out, nullptr);
    ASSERT_NE(ref, nullptr);
    EXPECT_TRUE(*out == *ref) << "job " << j << " output differs";
  }

  // Scratch fully reclaimed: inputs, outputs and references only.
  EXPECT_EQ(env.FileCount(), static_cast<size_t>(3 * kJobs));
}

TEST(SortServiceTest, JobProgressIsMonotonicAndReachesTotals) {
  MemEnv env;
  auto input = WriteWorkload(&env, "in", 40000, 13);

  SortServiceOptions options;
  options.governor.capacity_records = 4096;
  options.governor.min_lease_records = 512;
  SortService service(&env, options);
  JobHandle handle;
  ASSERT_TWRS_OK(service.Submit(SpecFor("in", "out", 1024), &handle));

  const auto terminal = [](JobState state) {
    return state == JobState::kDone || state == JobState::kFailed ||
           state == JobState::kCancelled;
  };
  // Poll while the job runs: every counter and the phase are monotonic
  // non-decreasing, whatever instant each snapshot lands on.
  JobProgress prev = handle.Progress();
  while (!terminal(handle.state())) {
    const JobProgress cur = handle.Progress();
    EXPECT_GE(cur.records_ingested, prev.records_ingested);
    EXPECT_GE(cur.records_merged, prev.records_merged);
    EXPECT_GE(cur.bytes_read, prev.bytes_read);
    EXPECT_GE(cur.bytes_written, prev.bytes_written);
    EXPECT_GE(static_cast<uint32_t>(cur.phase),
              static_cast<uint32_t>(prev.phase));
    prev = cur;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TWRS_OK(handle.Wait());

  // Terminal snapshot is exact: it must agree with the job's own result
  // accounting, not just approximate it.
  const SortJobStats stats = handle.stats();
  const JobProgress done = handle.Progress();
  EXPECT_EQ(done.phase, SortProgressPhase::kComplete);
  EXPECT_EQ(done.total_records, input.size());
  EXPECT_EQ(done.records_ingested, input.size());
  uint64_t merge_written = 0;
  for (const ExternalSortResult& shard : stats.result.shard_results) {
    merge_written += shard.merge.records_written;
  }
  EXPECT_EQ(done.records_merged, merge_written);
  EXPECT_EQ(done.bytes_read, stats.result.bytes_read);
  EXPECT_EQ(done.bytes_written, stats.result.bytes_written);

  // The same job fed the service's metrics registry.
  const SortServiceStats service_stats = service.Stats();
  for (const char* name :
       {"sort.run_generation_seconds", "sort.final_merge_seconds",
        "governor.reserve_wait_seconds", "service.queue_seconds",
        "service.total_seconds"}) {
    const HistogramSummary* h = service_stats.metrics.FindHistogram(name);
    ASSERT_NE(h, nullptr) << name;
    EXPECT_GE(h->count, 1u) << name;
  }
  const CounterSummary* completed =
      service_stats.metrics.FindCounter("service.jobs_completed");
  ASSERT_NE(completed, nullptr);
  EXPECT_EQ(completed->value, 1u);
}

TEST(SortServiceTest, TopKJobRunsUnshardedWithASmallerLease) {
  MemEnv env;
  auto input = WriteWorkload(&env, "in", 50000, 23);

  SortServiceOptions options;
  options.governor.capacity_records = 1 << 16;
  SortService service(&env, options);

  // 50000 records over 16384-record memory would auto-plan >= 2 shards;
  // the limit overrides that and shrinks the lease ask to the 8192 floor.
  JobHandle handle;
  SortJobSpec spec = SpecFor("in", "out", 16384);
  spec.shards = kAutoShards;
  spec.sort.limit = 100;
  ASSERT_TWRS_OK(service.Submit(spec, &handle));
  ASSERT_TWRS_OK(handle.Wait());

  const SortJobStats stats = handle.stats();
  EXPECT_EQ(stats.plan_limit, ShardPlanLimit::kTopKSelection);
  EXPECT_EQ(stats.planned_shards, 1u);
  EXPECT_EQ(stats.nominal_memory_records, 16384u);
  EXPECT_EQ(stats.granted_memory_records, 8192u);
  EXPECT_EQ(stats.result.output_records, 100u);

  const JobProgress done = handle.Progress();
  EXPECT_EQ(done.phase, SortProgressPhase::kComplete);
  EXPECT_EQ(done.total_records, input.size());
  EXPECT_EQ(done.total_output_records, 100u);

  // Output is byte-identical to a full sort truncated to the smallest K.
  std::sort(input.begin(), input.end());
  input.resize(100);
  uint64_t count = 0;
  KeyChecksum sum;
  ASSERT_TWRS_OK(VerifySortedFile(&env, "out", &count, &sum));
  EXPECT_EQ(count, 100u);
  EXPECT_TRUE(sum == ChecksumOf(input));
}

TEST(SortServiceTest, TopKDescendingJobKeepsTheLargestKeys) {
  MemEnv env;
  auto input = WriteWorkload(&env, "in", 5000, 29);

  SortServiceOptions options;
  options.governor.capacity_records = 1 << 16;
  SortService service(&env, options);

  JobHandle handle;
  SortJobSpec spec = SpecFor("in", "out", 128);
  spec.sort.limit = 50;
  spec.sort.order = SelectOrder::kDescending;
  ASSERT_TWRS_OK(service.Submit(spec, &handle));
  ASSERT_TWRS_OK(handle.Wait());

  EXPECT_EQ(handle.stats().plan_limit, ShardPlanLimit::kTopKSelection);
  EXPECT_EQ(handle.Progress().total_output_records, 50u);

  std::sort(input.begin(), input.end());
  input.erase(input.begin(), input.end() - 50);
  uint64_t count = 0;
  KeyChecksum sum;
  ASSERT_TWRS_OK(VerifySortedFile(&env, "out", &count, &sum));
  EXPECT_EQ(count, 50u);
  EXPECT_TRUE(sum == ChecksumOf(input));
}

TEST(SortServiceTest, MetricsCanBeDisabled) {
  MemEnv env;
  auto input = WriteWorkload(&env, "in", 2000, 17);

  SortServiceOptions options;
  options.governor.capacity_records = 1 << 16;
  options.enable_metrics = false;
  SortService service(&env, options);
  EXPECT_EQ(service.metrics(), nullptr);

  JobHandle handle;
  ASSERT_TWRS_OK(service.Submit(SpecFor("in", "out", 128), &handle));
  ASSERT_TWRS_OK(handle.Wait());

  // Progress still works without the registry (it rides on the job, not
  // on the metrics); the stats snapshot simply has no histograms.
  const JobProgress done = handle.Progress();
  EXPECT_EQ(done.records_ingested, input.size());
  EXPECT_EQ(done.phase, SortProgressPhase::kComplete);
  EXPECT_TRUE(service.Stats().metrics.histograms.empty());
}

}  // namespace
}  // namespace twrs
