#include "service/memory_governor.h"

#include <gtest/gtest.h>

#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

namespace twrs {
namespace {

MemoryGovernorOptions Options(size_t capacity, size_t min_lease) {
  MemoryGovernorOptions options;
  options.capacity_records = capacity;
  options.min_lease_records = min_lease;
  return options;
}

/// Spins until `stats().waiting` reaches `waiting` (bounded; the suites
/// run under TSan where wall-clock slack matters).
void AwaitWaiters(const MemoryGovernor& governor, size_t waiting) {
  for (int i = 0; i < 10000; ++i) {
    if (governor.Stats().waiting >= waiting) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "governor never reached " << waiting << " waiters";
}

TEST(MemoryGovernorTest, GrantsFullAskWhenFree) {
  MemoryGovernor governor(Options(1000, 10));
  MemoryLease lease;
  ASSERT_TRUE(governor.Reserve(600, &lease).ok());
  EXPECT_TRUE(lease.valid());
  EXPECT_EQ(lease.records(), 600u);
  const MemoryGovernorStats stats = governor.Stats();
  EXPECT_EQ(stats.reserved_records, 600u);
  EXPECT_EQ(stats.total_leases, 1u);
  EXPECT_EQ(stats.shrunk_leases, 0u);
}

TEST(MemoryGovernorTest, ReleaseReturnsBudget) {
  MemoryGovernor governor(Options(1000, 10));
  {
    MemoryLease lease;
    ASSERT_TRUE(governor.Reserve(1000, &lease).ok());
    EXPECT_EQ(governor.Stats().reserved_records, 1000u);
  }  // RAII release
  EXPECT_EQ(governor.Stats().reserved_records, 0u);
}

TEST(MemoryGovernorTest, MoveTransfersTheLease) {
  MemoryGovernor governor(Options(1000, 10));
  MemoryLease a;
  ASSERT_TRUE(governor.Reserve(400, &a).ok());
  MemoryLease b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(b.records(), 400u);
  EXPECT_EQ(governor.Stats().reserved_records, 400u);
  b.Release();
  EXPECT_EQ(governor.Stats().reserved_records, 0u);
}

TEST(MemoryGovernorTest, OversizedAskClampsToCapacity) {
  MemoryGovernor governor(Options(500, 10));
  MemoryLease lease;
  ASSERT_TRUE(governor.Reserve(5000, &lease).ok());
  EXPECT_EQ(lease.records(), 500u);
  EXPECT_EQ(governor.Stats().shrunk_leases, 1u);
}

TEST(MemoryGovernorTest, ZeroAskIsInvalid) {
  MemoryGovernor governor(Options(500, 10));
  MemoryLease lease;
  EXPECT_TRUE(governor.Reserve(0, &lease).IsInvalidArgument());
  EXPECT_FALSE(governor.TryReserve(0, &lease));
}

TEST(MemoryGovernorTest, ShrinksUnderLoadInsteadOfWaiting) {
  MemoryGovernor governor(Options(1000, 100));
  MemoryLease first;
  ASSERT_TRUE(governor.Reserve(700, &first).ok());
  // 300 free: a 700 ask shrinks to the remainder instead of blocking.
  MemoryLease second;
  ASSERT_TRUE(governor.Reserve(700, &second).ok());
  EXPECT_EQ(second.records(), 300u);
  const MemoryGovernorStats stats = governor.Stats();
  EXPECT_EQ(stats.shrunk_leases, 1u);
  EXPECT_EQ(stats.reserved_records, 1000u);
}

TEST(MemoryGovernorTest, BlocksBelowTheFloorThenGrants) {
  MemoryGovernor governor(Options(1000, 100));
  MemoryLease hog;
  ASSERT_TRUE(governor.Reserve(950, &hog).ok());
  // 50 free < floor 100: the next ask must wait for a release, then get
  // a shrunk-but-bounded lease.
  MemoryLease lease;
  std::thread waiter([&] {
    ASSERT_TRUE(governor.Reserve(800, &lease).ok());
  });
  AwaitWaiters(governor, 1);
  EXPECT_FALSE(lease.valid());
  hog.Release();
  waiter.join();
  EXPECT_EQ(lease.records(), 800u);
}

TEST(MemoryGovernorTest, DownsizeReturnsBudgetAndUnblocksAWaiter) {
  MemoryGovernor governor(Options(1000, 100));
  MemoryLease hog;
  ASSERT_TRUE(governor.Reserve(1000, &hog).ok());
  MemoryLease lease;
  std::thread waiter([&] {
    ASSERT_TRUE(governor.Reserve(600, &lease).ok());
  });
  AwaitWaiters(governor, 1);
  EXPECT_FALSE(lease.valid());
  // Mid-flight renegotiation: the hog keeps 200 records (its merge
  // footprint) and the waiter admits immediately on the freed 800.
  hog.Downsize(200);
  EXPECT_EQ(hog.records(), 200u);
  waiter.join();
  EXPECT_EQ(lease.records(), 600u);
  const MemoryGovernorStats stats = governor.Stats();
  EXPECT_EQ(stats.reserved_records, 800u);
  EXPECT_EQ(stats.downsized_leases, 1u);
}

TEST(MemoryGovernorTest, DownsizeToLargerOrEqualIsANoOp) {
  MemoryGovernor governor(Options(1000, 10));
  MemoryLease lease;
  ASSERT_TRUE(governor.Reserve(300, &lease).ok());
  lease.Downsize(300);
  lease.Downsize(500);
  EXPECT_EQ(lease.records(), 300u);
  EXPECT_EQ(governor.Stats().reserved_records, 300u);
  EXPECT_EQ(governor.Stats().downsized_leases, 0u);

  // An empty lease has nothing to return.
  MemoryLease empty;
  empty.Downsize(0);
  EXPECT_FALSE(empty.valid());
}

TEST(MemoryGovernorTest, DownsizedLeaseReleasesOnlyTheRemainder) {
  MemoryGovernor governor(Options(1000, 10));
  {
    MemoryLease lease;
    ASSERT_TRUE(governor.Reserve(900, &lease).ok());
    lease.Downsize(100);
    EXPECT_EQ(governor.Stats().reserved_records, 100u);
  }  // RAII release of the remaining 100
  EXPECT_EQ(governor.Stats().reserved_records, 0u);
}

TEST(MemoryGovernorTest, TryReserveShrinksButRespectsFloor) {
  MemoryGovernor governor(Options(1000, 100));
  MemoryLease hog;
  ASSERT_TRUE(governor.Reserve(800, &hog).ok());
  MemoryLease lease;
  ASSERT_TRUE(governor.TryReserve(500, &lease));  // 200 free >= floor
  EXPECT_EQ(lease.records(), 200u);
  MemoryLease denied;
  EXPECT_FALSE(governor.TryReserve(500, &denied));  // 0 free < floor
}

TEST(MemoryGovernorTest, TryReserveDoesNotBargePastWaiters) {
  MemoryGovernor governor(Options(1000, 100));
  MemoryLease hog;
  ASSERT_TRUE(governor.Reserve(1000, &hog).ok());
  MemoryLease queued;
  std::thread waiter([&] {
    ASSERT_TRUE(governor.Reserve(400, &queued).ok());
  });
  AwaitWaiters(governor, 1);
  MemoryLease barger;
  EXPECT_FALSE(governor.TryReserve(100, &barger));
  hog.Release();
  waiter.join();
  EXPECT_EQ(queued.records(), 400u);
}

TEST(MemoryGovernorTest, CancelUnblocksAWaiter) {
  MemoryGovernor governor(Options(1000, 100));
  MemoryLease hog;
  ASSERT_TRUE(governor.Reserve(1000, &hog).ok());
  CancelToken cancel;
  Status status;
  MemoryLease lease;
  std::thread waiter([&] { status = governor.Reserve(500, &lease, &cancel); });
  AwaitWaiters(governor, 1);
  cancel.Cancel();
  governor.WakeWaiters();
  waiter.join();
  EXPECT_TRUE(status.IsCancelled());
  EXPECT_FALSE(lease.valid());
  // The cancelled ticket must not wedge the queue.
  hog.Release();
  MemoryLease next;
  ASSERT_TRUE(governor.Reserve(1000, &next).ok());
  EXPECT_EQ(next.records(), 1000u);
}

// Starvation-freedom: a big ask parked at the head of the FIFO queue is
// served before small asks that arrived after it, even though the small
// asks alone could have been satisfied immediately.
TEST(MemoryGovernorTest, FifoServesABigAskBeforeLaterSmallAsks) {
  MemoryGovernor governor(Options(1000, 1000));
  MemoryLease hog;
  ASSERT_TRUE(governor.Reserve(1000, &hog).ok());

  std::mutex order_mu;
  std::vector<int> order;
  MemoryLease big_lease;
  std::thread big([&] {
    ASSERT_TRUE(governor.Reserve(1000, &big_lease).ok());
    std::lock_guard<std::mutex> lock(order_mu);
    order.push_back(0);
  });
  AwaitWaiters(governor, 1);  // the big ask is definitively first in line

  constexpr int kSmall = 4;
  std::vector<std::thread> smalls;
  for (int i = 1; i <= kSmall; ++i) {
    smalls.emplace_back([&governor, &order_mu, &order, i] {
      MemoryLease lease;
      ASSERT_TRUE(governor.Reserve(50, &lease).ok());
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(i);
    });
  }
  AwaitWaiters(governor, 1 + kSmall);

  hog.Release();
  big.join();
  {
    std::lock_guard<std::mutex> lock(order_mu);
    ASSERT_EQ(order.size(), 1u);
    EXPECT_EQ(order[0], 0);  // the big ask went first, unstarved
  }
  big_lease.Release();
  for (auto& t : smalls) t.join();
  EXPECT_EQ(governor.Stats().total_leases, 1u + 1u + kSmall);
}

// Heavy churn: many threads reserving and releasing random-ish asks must
// neither deadlock nor corrupt the budget (reserved never exceeds
// capacity; everything returns to zero).
TEST(MemoryGovernorTest, ConcurrentChurnConservesTheBudget) {
  MemoryGovernor governor(Options(10000, 500));
  constexpr int kThreads = 8;
  constexpr int kRounds = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&governor, t] {
      for (int r = 0; r < kRounds; ++r) {
        MemoryLease lease;
        const size_t ask = 500 + 977 * static_cast<size_t>(t + r) % 6000;
        ASSERT_TRUE(governor.Reserve(ask, &lease).ok());
        ASSERT_GE(lease.records(), 1u);
        ASSERT_LE(governor.Stats().reserved_records, 10000u);
      }
    });
  }
  for (auto& t : threads) t.join();
  const MemoryGovernorStats stats = governor.Stats();
  EXPECT_EQ(stats.reserved_records, 0u);
  EXPECT_EQ(stats.waiting, 0u);
  EXPECT_EQ(stats.total_leases,
            static_cast<uint64_t>(kThreads) * kRounds);
}

}  // namespace
}  // namespace twrs
