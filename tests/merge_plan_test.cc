#include "merge/merge_plan.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "io/mem_env.h"
#include "io/record_io.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace twrs {
namespace {

RunInfo MakeRun(Env* env, const std::string& path,
                const std::vector<Key>& keys) {
  EXPECT_TRUE(WriteAllRecords(env, path, keys).ok());
  RunInfo run;
  RunSegment seg;
  seg.path = path;
  seg.count = keys.size();
  run.segments.push_back(std::move(seg));
  run.length = keys.size();
  return run;
}

MergeOptions Options() {
  MergeOptions options;
  options.fan_in = 3;
  options.block_bytes = 256;
  options.temp_dir = "tmp";
  return options;
}

TEST(MergeRunsTest, EmptyInputWritesEmptyOutput) {
  MemEnv env;
  MergeStats stats;
  ASSERT_TWRS_OK(MergeRuns(&env, {}, Options(), "out", &stats));
  std::vector<Key> keys;
  ASSERT_TWRS_OK(ReadAllRecords(&env, "out", &keys));
  EXPECT_TRUE(keys.empty());
  EXPECT_EQ(stats.merge_steps, 0u);
}

TEST(MergeRunsTest, SingleRunIsCopiedToOutput) {
  MemEnv env;
  std::vector<RunInfo> runs = {MakeRun(&env, "r0", {1, 2, 3})};
  MergeStats stats;
  ASSERT_TWRS_OK(MergeRuns(&env, runs, Options(), "out", &stats));
  std::vector<Key> keys;
  ASSERT_TWRS_OK(ReadAllRecords(&env, "out", &keys));
  EXPECT_EQ(keys, std::vector<Key>({1, 2, 3}));
  EXPECT_EQ(stats.merge_steps, 1u);
  EXPECT_FALSE(env.FileExists("r0"));  // inputs consumed
}

TEST(MergeRunsTest, MultiPassMergeIsCorrect) {
  MemEnv env;
  Random rng(3);
  std::vector<RunInfo> runs;
  std::vector<Key> all;
  for (int r = 0; r < 10; ++r) {  // 10 runs, fan-in 3 -> multiple passes
    std::vector<Key> keys(50);
    for (Key& k : keys) k = static_cast<Key>(rng.Uniform(100000));
    std::sort(keys.begin(), keys.end());
    all.insert(all.end(), keys.begin(), keys.end());
    runs.push_back(MakeRun(&env, "r" + std::to_string(r), keys));
  }
  std::sort(all.begin(), all.end());
  MergeStats stats;
  ASSERT_TWRS_OK(MergeRuns(&env, runs, Options(), "out", &stats));
  std::vector<Key> keys;
  ASSERT_TWRS_OK(ReadAllRecords(&env, "out", &keys));
  EXPECT_EQ(keys, all);
  EXPECT_GT(stats.merge_steps, 1u);
  EXPECT_GT(stats.intermediate_runs, 0u);
  // All temp files were cleaned up: only the output remains.
  EXPECT_EQ(env.FileCount(), 1u);
}

TEST(MergeRunsTest, KeepInputsWhenRequested) {
  MemEnv env;
  std::vector<RunInfo> runs = {MakeRun(&env, "r0", {1}),
                               MakeRun(&env, "r1", {2})};
  MergeOptions options = Options();
  options.remove_inputs = false;
  ASSERT_TWRS_OK(MergeRuns(&env, runs, options, "out", nullptr));
  EXPECT_TRUE(env.FileExists("r0"));
  EXPECT_TRUE(env.FileExists("r1"));
}

TEST(MergeRunsTest, RejectsFanInBelowTwo) {
  MemEnv env;
  MergeOptions options = Options();
  options.fan_in = 1;
  EXPECT_TRUE(MergeRuns(&env, {}, options, "out", nullptr)
                  .IsInvalidArgument());
}

TEST(MergeRunsTest, RecordsWrittenCountsMergeVolume) {
  MemEnv env;
  std::vector<RunInfo> runs;
  for (int r = 0; r < 4; ++r) {
    runs.push_back(MakeRun(&env, "r" + std::to_string(r), {r}));
  }
  MergeOptions options = Options();  // fan_in = 3
  MergeStats stats;
  ASSERT_TWRS_OK(MergeRuns(&env, runs, options, "out", &stats));
  // Pass 1 merges 3 records, the final merge writes all 4.
  EXPECT_EQ(stats.records_written, 3u + 4u);
}

TEST(MergeRunsTest, HigherFanInNeedsFewerSteps) {
  for (size_t fan_in : {2u, 4u, 16u}) {
    MemEnv env;
    std::vector<RunInfo> runs;
    for (int r = 0; r < 16; ++r) {
      runs.push_back(MakeRun(&env, "r" + std::to_string(r),
                             {static_cast<Key>(r)}));
    }
    MergeOptions options = Options();
    options.fan_in = fan_in;
    MergeStats stats;
    ASSERT_TWRS_OK(MergeRuns(&env, runs, options, "out", &stats));
    if (fan_in == 2) {
      EXPECT_EQ(stats.merge_steps, 15u);
    }
    if (fan_in == 16) {
      EXPECT_EQ(stats.merge_steps, 1u);
    }
    std::vector<Key> keys;
    ASSERT_TWRS_OK(ReadAllRecords(&env, "out", &keys));
    EXPECT_EQ(keys.size(), 16u);
    EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  }
}

}  // namespace
}  // namespace twrs
