#include "exec/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "io/mem_env.h"
#include "merge/external_sorter.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace twrs {
namespace {

TEST(ExecutorTest, LazyPoolCreation) {
  Executor executor;
  EXPECT_FALSE(executor.started());
  EXPECT_EQ(executor.pool_count(), 0u);
  ThreadPool* pool = executor.pool();
  ASSERT_NE(pool, nullptr);
  EXPECT_TRUE(executor.started());
  EXPECT_EQ(executor.pool_count(), 1u);
  // The default pool is created once and then shared.
  EXPECT_EQ(executor.pool(), pool);
  EXPECT_EQ(executor.pool_count(), 1u);
}

TEST(ExecutorTest, CapacityConfiguresDefaultPool) {
  ExecutorOptions options;
  options.capacity = 3;
  Executor executor(options);
  EXPECT_EQ(executor.capacity(), 3u);
  EXPECT_EQ(executor.pool()->num_threads(), 3u);
}

TEST(ExecutorTest, ZeroCapacityResolvesToHardware) {
  Executor executor;
  EXPECT_GE(executor.capacity(), 2u);
  EXPECT_EQ(executor.pool()->num_threads(), executor.capacity());
}

TEST(ExecutorTest, SetCapacityOnlyBeforeFirstPool) {
  Executor executor;
  EXPECT_TRUE(executor.SetCapacity(2));
  EXPECT_EQ(executor.capacity(), 2u);
  EXPECT_EQ(executor.pool()->num_threads(), 2u);
  // Too late: pools cannot be resized once running.
  EXPECT_FALSE(executor.SetCapacity(8));
  EXPECT_EQ(executor.capacity(), 2u);
}

TEST(ExecutorTest, NamedPoolsAreIndependent) {
  Executor executor;
  ThreadPool* merge_pool = executor.GetPool("merge", 2);
  ThreadPool* io_pool = executor.GetPool("io", 1);
  EXPECT_NE(merge_pool, io_pool);
  EXPECT_EQ(merge_pool->num_threads(), 2u);
  EXPECT_EQ(io_pool->num_threads(), 1u);
  EXPECT_EQ(executor.pool_count(), 2u);
  // The first caller fixes a pool's size; later requests share it.
  EXPECT_EQ(executor.GetPool("merge", 7), merge_pool);
  EXPECT_EQ(merge_pool->num_threads(), 2u);
}

TEST(ExecutorTest, PoolExecutesSubmittedTasks) {
  ExecutorOptions options;
  options.capacity = 2;
  Executor executor(options);
  std::atomic<int> counter{0};
  std::vector<TaskHandle> handles;
  for (int i = 0; i < 16; ++i) {
    handles.push_back(executor.pool()->Submit([&counter] {
      counter.fetch_add(1);
      return Status::OK();
    }));
  }
  for (TaskHandle& handle : handles) ASSERT_TWRS_OK(handle.Wait());
  EXPECT_EQ(counter.load(), 16);
}

TEST(ExecutorTest, SharedReturnsOneInstance) {
  EXPECT_EQ(&Executor::Shared(), &Executor::Shared());
}

// The heart of the refactor: many concurrent sorts borrow one executor
// instead of spawning a pool each. All must succeed and verify, and the
// executor must end up with exactly one pool.
TEST(ExecutorTest, ConcurrentSortsShareOneExecutor) {
  MemEnv env;
  ExecutorOptions exec_options;
  exec_options.capacity = 3;
  Executor executor(exec_options);

  constexpr int kSorts = 6;
  std::vector<std::vector<Key>> inputs(kSorts);
  std::vector<Status> statuses(kSorts);
  std::vector<std::thread> threads;
  for (int i = 0; i < kSorts; ++i) {
    WorkloadOptions wl;
    wl.num_records = 3000;
    wl.seed = 500 + i;
    inputs[i] = testing::Drain(MakeWorkload(Dataset::kRandom, wl).get());
    threads.emplace_back([&env, &executor, &inputs, &statuses, i] {
      ExternalSortOptions options;
      options.memory_records = 64;
      options.twrs = TwoWayOptions::Recommended(64);
      options.fan_in = 3;
      options.temp_dir = "tmp";
      options.block_bytes = 512;
      options.parallel.worker_threads = 2;  // enables the pool features
      options.parallel.prefetch_blocks = 2;
      options.parallel.executor = &executor;
      ExternalSorter sorter(&env, options);
      VectorSource source(inputs[i]);
      statuses[i] = sorter.Sort(&source, "out" + std::to_string(i), nullptr);
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(executor.pool_count(), 1u);
  EXPECT_EQ(executor.pool()->num_threads(), 3u);
  for (int i = 0; i < kSorts; ++i) {
    ASSERT_TRUE(statuses[i].ok()) << statuses[i].ToString();
    uint64_t count = 0;
    KeyChecksum checksum;
    ASSERT_TWRS_OK(VerifySortedFile(&env, "out" + std::to_string(i), &count,
                                    &checksum));
    EXPECT_EQ(count, inputs[i].size());
    EXPECT_TRUE(checksum == testing::ChecksumOf(inputs[i]));
  }
}

// A sort with worker_threads > 0 and no explicit executor borrows
// Executor::Shared() and still produces a verified output.
TEST(ExecutorTest, SortBorrowsSharedExecutorByDefault) {
  MemEnv env;
  WorkloadOptions wl;
  wl.num_records = 2000;
  wl.seed = 11;
  auto input = testing::Drain(MakeWorkload(Dataset::kRandom, wl).get());

  ExternalSortOptions options;
  options.memory_records = 64;
  options.twrs = TwoWayOptions::Recommended(64);
  options.temp_dir = "tmp";
  options.parallel.worker_threads = 2;
  ExternalSorter sorter(&env, options);
  VectorSource source(input);
  ASSERT_TWRS_OK(sorter.Sort(&source, "out", nullptr));
  EXPECT_TRUE(Executor::Shared().started());

  uint64_t count = 0;
  KeyChecksum checksum;
  ASSERT_TWRS_OK(VerifySortedFile(&env, "out", &count, &checksum));
  EXPECT_EQ(count, input.size());
  EXPECT_TRUE(checksum == testing::ChecksumOf(input));
}

// Opting out of the shared executor spawns a private worker_threads-sized
// pool; the executor stays untouched.
TEST(ExecutorTest, DedicatedPoolOptOutDoesNotTouchExecutor) {
  MemEnv env;
  Executor executor;  // stands in for the shared one
  WorkloadOptions wl;
  wl.num_records = 2000;
  wl.seed = 12;
  auto input = testing::Drain(MakeWorkload(Dataset::kRandom, wl).get());

  ExternalSortOptions options;
  options.memory_records = 64;
  options.twrs = TwoWayOptions::Recommended(64);
  options.temp_dir = "tmp";
  options.parallel.worker_threads = 2;
  options.parallel.dedicated_pool = true;
  options.parallel.executor = &executor;
  ExternalSorter sorter(&env, options);
  VectorSource source(input);
  ASSERT_TWRS_OK(sorter.Sort(&source, "out", nullptr));
  EXPECT_FALSE(executor.started());

  uint64_t count = 0;
  ASSERT_TWRS_OK(VerifySortedFile(&env, "out", &count, nullptr));
  EXPECT_EQ(count, input.size());
}

}  // namespace
}  // namespace twrs
