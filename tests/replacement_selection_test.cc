#include "core/replacement_selection.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/record_source.h"
#include "core/run_sink.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace twrs {
namespace {

using testing::ExpectValidRuns;
using testing::GenerateRuns;

std::unique_ptr<ReplacementSelection> MakeRs(size_t memory) {
  ReplacementSelectionOptions options;
  options.memory_records = memory;
  return std::make_unique<ReplacementSelection>(options);
}

TEST(ReplacementSelectionTest, RejectsZeroMemory) {
  auto rs = MakeRs(0);
  VectorSource source({1});
  CollectingRunSink sink;
  EXPECT_TRUE(rs->Generate(&source, &sink, nullptr).IsInvalidArgument());
}

TEST(ReplacementSelectionTest, EmptyInputProducesNoRuns) {
  auto rs = MakeRs(4);
  auto result = GenerateRuns(rs.get(), {});
  EXPECT_TRUE(result.runs.empty());
  EXPECT_EQ(result.stats.num_runs(), 0u);
}

TEST(ReplacementSelectionTest, InputSmallerThanMemoryIsOneRun) {
  auto rs = MakeRs(100);
  auto result = GenerateRuns(rs.get(), {5, 3, 9, 1});
  ASSERT_EQ(result.runs.size(), 1u);
  EXPECT_EQ(result.runs[0], std::vector<Key>({1, 3, 5, 9}));
}

TEST(ReplacementSelectionTest, TiesExtendTheCurrentRun) {
  // A record equal to the last output can still join the current run.
  auto rs = MakeRs(2);
  auto result = GenerateRuns(rs.get(), {5, 5, 5, 5, 5, 5});
  EXPECT_EQ(result.runs.size(), 1u);
}

TEST(ReplacementSelectionTest, StatsMatchSinkRuns) {
  auto rs = MakeRs(3);
  std::vector<Key> input;
  for (int i = 0; i < 100; ++i) input.push_back((i * 37) % 100);
  auto result = GenerateRuns(rs.get(), input);
  EXPECT_EQ(result.stats.num_runs(), result.runs.size());
  uint64_t total = 0;
  for (const auto& run : result.runs) total += run.size();
  EXPECT_EQ(result.stats.total_records, total);
  EXPECT_EQ(result.stats.total_records, input.size());
  ExpectValidRuns(result.runs, input);
}

TEST(ReplacementSelectionTest, AverageRunLengthHelpers) {
  RunGenStats stats;
  stats.run_lengths = {100, 300};
  stats.total_records = 400;
  EXPECT_DOUBLE_EQ(stats.AverageRunLength(), 200.0);
  EXPECT_DOUBLE_EQ(stats.AverageRunLengthRelative(100), 2.0);
  RunGenStats empty;
  EXPECT_DOUBLE_EQ(empty.AverageRunLength(), 0.0);
}

TEST(ReplacementSelectionTest, RandomInputRunsAverageTwiceMemory) {
  // §3.5 (Knuth's snowplow): E[run length] -> 2x memory for random input.
  const size_t memory = 500;
  WorkloadOptions wl;
  wl.num_records = 100000;
  wl.seed = 42;
  auto source = MakeWorkload(Dataset::kRandom, wl);
  auto input = testing::Drain(source.get());
  auto rs = MakeRs(memory);
  auto result = GenerateRuns(rs.get(), input);
  ExpectValidRuns(result.runs, input);
  const double relative = result.stats.AverageRunLengthRelative(memory);
  EXPECT_GT(relative, 1.8);
  EXPECT_LT(relative, 2.2);
}

TEST(ReplacementSelectionTest, FirstRunIsAtLeastMemorySize) {
  // Every run except possibly the last is at least the memory size.
  auto rs = MakeRs(50);
  WorkloadOptions wl;
  wl.num_records = 5000;
  wl.seed = 7;
  auto source = MakeWorkload(Dataset::kRandom, wl);
  auto input = testing::Drain(source.get());
  auto result = GenerateRuns(rs.get(), input);
  for (size_t i = 0; i + 1 < result.stats.run_lengths.size(); ++i) {
    EXPECT_GE(result.stats.run_lengths[i], 50u) << "run " << i;
  }
}

TEST(ReplacementSelectionTest, AllRunsSortedOnEveryDataset) {
  for (int d = 0; d < kNumDatasets; ++d) {
    WorkloadOptions wl;
    wl.num_records = 3000;
    wl.seed = 3;
    auto source = MakeWorkload(static_cast<Dataset>(d), wl);
    auto input = testing::Drain(source.get());
    auto rs = MakeRs(64);
    auto result = GenerateRuns(rs.get(), input);
    ExpectValidRuns(result.runs, input);
  }
}

TEST(ReplacementSelectionTest, UsesOnlyStream1) {
  // RS emits a single increasing stream per run; the assembled run must
  // equal stream 1 alone. CollectingRunSink would reject a disordered
  // stream, so a successful run here proves single-stream output.
  auto rs = MakeRs(4);
  auto result = GenerateRuns(rs.get(), {4, 2, 7, 1, 9, 3, 8, 5});
  ExpectValidRuns(result.runs, {4, 2, 7, 1, 9, 3, 8, 5});
}

}  // namespace
}  // namespace twrs
