#include "exec/async_io.h"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "exec/thread_pool.h"
#include "io/mem_env.h"
#include "io/posix_env.h"
#include "io/record_io.h"
#include "io/uring_env.h"
#include "tests/test_util.h"

namespace twrs {
namespace {

std::vector<uint8_t> TestBytes(size_t n) {
  std::vector<uint8_t> bytes(n);
  for (size_t i = 0; i < n; ++i) bytes[i] = static_cast<uint8_t>(i * 31 + 7);
  return bytes;
}

/// WritableFile that fails every Append after the first `ok_appends`.
class FailingWritableFile : public WritableFile {
 public:
  explicit FailingWritableFile(int ok_appends) : ok_appends_(ok_appends) {}

  Status Append(const void*, size_t) override {
    if (ok_appends_-- > 0) return Status::OK();
    return Status::IOError("injected append failure");
  }

  Status Close() override { return Status::OK(); }

 private:
  int ok_appends_;
};

/// SequentialFile that serves `total` bytes then fails the next Read.
class FailingSequentialFile : public SequentialFile {
 public:
  explicit FailingSequentialFile(size_t total) : remaining_(total) {}

  Status Read(void* out, size_t n, size_t* bytes_read) override {
    if (remaining_ == 0) return Status::IOError("injected read failure");
    const size_t take = std::min(n, remaining_);
    std::memset(out, 0xAB, take);
    remaining_ -= take;
    *bytes_read = take;
    return Status::OK();
  }

  Status Skip(uint64_t) override { return Status::OK(); }

 private:
  size_t remaining_;
};

// ------------------------------------------------------- AsyncWritableFile

TEST(AsyncWritableFileTest, BytesMatchSynchronousWrite) {
  MemEnv env;
  ThreadPool pool(2);
  const std::vector<uint8_t> bytes = TestBytes(100000);

  ASSERT_TWRS_OK([&] {
    std::unique_ptr<WritableFile> base;
    TWRS_RETURN_IF_ERROR(env.NewWritableFile("async", &base));
    // A small buffer forces many background flushes.
    AsyncWritableFile file(std::move(base), &pool, 1024);
    size_t pos = 0;
    // Varying append sizes exercise the chunking loop.
    for (size_t step = 1; pos < bytes.size(); step = step * 2 + 1) {
      const size_t n = std::min(step, bytes.size() - pos);
      TWRS_RETURN_IF_ERROR(file.Append(bytes.data() + pos, n));
      pos += n;
    }
    return file.Close();
  }());

  const std::vector<uint8_t>* contents = env.FileContents("async");
  ASSERT_NE(contents, nullptr);
  EXPECT_TRUE(*contents == bytes);
}

TEST(AsyncWritableFileTest, AppendLargerThanBufferWorks) {
  MemEnv env;
  ThreadPool pool(2);
  const std::vector<uint8_t> bytes = TestBytes(64 * 1024);
  std::unique_ptr<WritableFile> base;
  ASSERT_TWRS_OK(env.NewWritableFile("big", &base));
  AsyncWritableFile file(std::move(base), &pool, 512);
  ASSERT_TWRS_OK(file.Append(bytes.data(), bytes.size()));
  ASSERT_TWRS_OK(file.Close());
  const std::vector<uint8_t>* contents = env.FileContents("big");
  ASSERT_NE(contents, nullptr);
  EXPECT_TRUE(*contents == bytes);
}

TEST(AsyncWritableFileTest, NullPoolIsSynchronousPassThrough) {
  MemEnv env;
  const std::vector<uint8_t> bytes = TestBytes(4096);
  std::unique_ptr<WritableFile> base;
  ASSERT_TWRS_OK(env.NewWritableFile("sync", &base));
  AsyncWritableFile file(std::move(base), nullptr);
  ASSERT_TWRS_OK(file.Append(bytes.data(), bytes.size()));
  ASSERT_TWRS_OK(file.Close());
  const std::vector<uint8_t>* contents = env.FileContents("sync");
  ASSERT_NE(contents, nullptr);
  EXPECT_TRUE(*contents == bytes);
}

TEST(AsyncWritableFileTest, BackgroundAppendFailurePropagates) {
  ThreadPool pool(1);
  AsyncWritableFile file(std::make_unique<FailingWritableFile>(0), &pool,
                         256);
  const std::vector<uint8_t> bytes = TestBytes(256 * 64);
  // The failing flush surfaces on a later rotation or at the latest on
  // Close; every call after that must keep returning the error.
  Status s;
  for (size_t i = 0; i < 64 && s.ok(); ++i) {
    s = file.Append(bytes.data() + i * 256, 256);
  }
  if (s.ok()) s = file.Close();
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_TRUE(file.Append(bytes.data(), 1).IsIOError());
  EXPECT_TRUE(file.Close().IsIOError());
}

TEST(AsyncWritableFileTest, CloseIsIdempotent) {
  MemEnv env;
  ThreadPool pool(1);
  std::unique_ptr<WritableFile> base;
  ASSERT_TWRS_OK(env.NewWritableFile("idem", &base));
  AsyncWritableFile file(std::move(base), &pool);
  ASSERT_TWRS_OK(file.Append("abc", 3));
  ASSERT_TWRS_OK(file.Close());
  ASSERT_TWRS_OK(file.Close());
  const std::vector<uint8_t>* contents = env.FileContents("idem");
  ASSERT_NE(contents, nullptr);
  EXPECT_EQ(contents->size(), 3u);
}

// ------------------------------------------------ PrefetchingSequentialFile

TEST(PrefetchingSequentialFileTest, ReadsEntireFile) {
  MemEnv env;
  const std::vector<uint8_t> bytes = TestBytes(100000);
  {
    std::unique_ptr<WritableFile> w;
    ASSERT_TWRS_OK(env.NewWritableFile("f", &w));
    ASSERT_TWRS_OK(w->Append(bytes.data(), bytes.size()));
    ASSERT_TWRS_OK(w->Close());
  }
  std::unique_ptr<SequentialFile> base;
  ASSERT_TWRS_OK(env.NewSequentialFile("f", &base));
  PrefetchingSequentialFile file(std::move(base), 1024, 4);
  std::vector<uint8_t> out;
  uint8_t chunk[777];
  for (;;) {
    size_t got = 0;
    ASSERT_TWRS_OK(file.Read(chunk, sizeof(chunk), &got));
    out.insert(out.end(), chunk, chunk + got);
    if (got < sizeof(chunk)) break;
  }
  EXPECT_TRUE(out == bytes);
}

TEST(PrefetchingSequentialFileTest, ReadAfterEofReturnsZero) {
  MemEnv env;
  ASSERT_TWRS_OK(WriteAllRecords(&env, "f", {1, 2, 3}));
  std::unique_ptr<SequentialFile> base;
  ASSERT_TWRS_OK(env.NewSequentialFile("f", &base));
  PrefetchingSequentialFile file(std::move(base), 64, 2);
  std::vector<uint8_t> buf(1 << 16);
  size_t got = 0;
  ASSERT_TWRS_OK(file.Read(buf.data(), buf.size(), &got));
  EXPECT_EQ(got, 3 * kRecordBytes);
  ASSERT_TWRS_OK(file.Read(buf.data(), buf.size(), &got));
  EXPECT_EQ(got, 0u);
}

TEST(PrefetchingSequentialFileTest, SkipConsumesBytes) {
  MemEnv env;
  const std::vector<uint8_t> bytes = TestBytes(10000);
  {
    std::unique_ptr<WritableFile> w;
    ASSERT_TWRS_OK(env.NewWritableFile("f", &w));
    ASSERT_TWRS_OK(w->Append(bytes.data(), bytes.size()));
    ASSERT_TWRS_OK(w->Close());
  }
  std::unique_ptr<SequentialFile> base;
  ASSERT_TWRS_OK(env.NewSequentialFile("f", &base));
  PrefetchingSequentialFile file(std::move(base), 512, 3);
  ASSERT_TWRS_OK(file.Skip(5000));
  uint8_t b = 0;
  size_t got = 0;
  ASSERT_TWRS_OK(file.Read(&b, 1, &got));
  ASSERT_EQ(got, 1u);
  EXPECT_EQ(b, bytes[5000]);
  // Skipping past EOF is a no-op, matching the MemEnv base behaviour.
  ASSERT_TWRS_OK(file.Skip(1 << 20));
  ASSERT_TWRS_OK(file.Read(&b, 1, &got));
  EXPECT_EQ(got, 0u);
}

TEST(PrefetchingSequentialFileTest, ErrorPropagatesAfterPrefetchedBytes) {
  // 2048 good bytes (a whole number of 512-byte blocks, so the pump only
  // hits the failure after them), then a failing read. Every full 300-byte
  // read before the error must succeed (6 x 300 = 1800); the first read
  // that cannot be served entirely from pre-error blocks returns the error
  // instead of a short read, which the SequentialFile contract would make
  // look like EOF.
  PrefetchingSequentialFile file(
      std::make_unique<FailingSequentialFile>(2048), 512, 2);
  std::vector<uint8_t> buf(100000);
  size_t total = 0;
  Status s;
  for (;;) {
    size_t got = 0;
    s = file.Read(buf.data(), 300, &got);
    if (!s.ok()) break;
    ASSERT_EQ(got, 300u) << "short read would read as EOF";
    total += got;
    ASSERT_LT(total, buf.size());
  }
  EXPECT_EQ(total, 1800u);
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
  // Error is sticky.
  size_t got = 0;
  EXPECT_TRUE(file.Read(buf.data(), 1, &got).IsIOError());
}

// The regression the Read contract fix guards against: a record stream
// whose reader drains through the adapter must FAIL — not silently end —
// when the underlying file errors mid-stream. 2048 good bytes keep the
// error on a 512-byte prefetch block boundary (a short read from the base
// would legitimately mean EOF); the reader's 768-byte buffer is misaligned
// with the prefetch blocks, so its final Next crosses into the error with
// a partial block — exactly the case a short-read-as-EOF bug would hide.
TEST(PrefetchingSequentialFileTest, RecordReaderSeesMidStreamError) {
  RecordReader reader(std::make_unique<PrefetchingSequentialFile>(
                          std::make_unique<FailingSequentialFile>(2048),
                          512, 2),
                      768);
  ASSERT_TWRS_OK(reader.status());
  uint64_t records = 0;
  Status s;
  for (;;) {
    Key k;
    bool eof = false;
    s = reader.Next(&k, &eof);
    if (!s.ok() || eof) break;
    ++records;
  }
  EXPECT_TRUE(s.IsIOError()) << "mid-stream error must not read as EOF ("
                             << records << " records, " << s.ToString()
                             << ")";
}

TEST(PrefetchingSequentialFileTest, DestructorStopsPumpEarly) {
  MemEnv env;
  const std::vector<uint8_t> bytes = TestBytes(1 << 20);
  {
    std::unique_ptr<WritableFile> w;
    ASSERT_TWRS_OK(env.NewWritableFile("f", &w));
    ASSERT_TWRS_OK(w->Append(bytes.data(), bytes.size()));
    ASSERT_TWRS_OK(w->Close());
  }
  std::unique_ptr<SequentialFile> base;
  ASSERT_TWRS_OK(env.NewSequentialFile("f", &base));
  {
    PrefetchingSequentialFile file(std::move(base), 256, 2);
    uint8_t b;
    size_t got = 0;
    ASSERT_TWRS_OK(file.Read(&b, 1, &got));
    EXPECT_EQ(got, 1u);
    // Most of the file is unread; the destructor must not hang.
  }
}

// ------------------------------------------- integration through RecordIO

TEST(AsyncIoIntegrationTest, RecordRoundTripThroughBothAdapters) {
  MemEnv env;
  ThreadPool pool(2);
  std::vector<Key> keys(20000);
  std::iota(keys.begin(), keys.end(), 1);

  {
    std::unique_ptr<WritableFile> base;
    ASSERT_TWRS_OK(env.NewWritableFile("records", &base));
    RecordWriter writer(
        std::make_unique<AsyncWritableFile>(std::move(base), &pool, 2048),
        512);
    ASSERT_TWRS_OK(writer.status());
    for (Key k : keys) ASSERT_TWRS_OK(writer.Append(k));
    ASSERT_TWRS_OK(writer.Finish());
  }
  {
    std::unique_ptr<SequentialFile> base;
    ASSERT_TWRS_OK(env.NewSequentialFile("records", &base));
    RecordReader reader(std::make_unique<PrefetchingSequentialFile>(
                            std::move(base), 512, 4),
                        512);
    ASSERT_TWRS_OK(reader.status());
    for (Key expected : keys) {
      Key k;
      bool eof;
      ASSERT_TWRS_OK(reader.Next(&k, &eof));
      ASSERT_FALSE(eof);
      ASSERT_EQ(k, expected);
    }
    Key k;
    bool eof;
    ASSERT_TWRS_OK(reader.Next(&k, &eof));
    EXPECT_TRUE(eof);
  }
}

// ------------------------------------------- natively async backends

// A MemEnv claiming native async support: the decorator factories must
// skip their pump-thread wrappers for it.
class FakeAsyncEnv : public MemEnv {
 public:
  IoCapabilities io_capabilities() const override {
    IoCapabilities caps;
    caps.async_appends = true;
    caps.async_reads = true;
    caps.async_positioned_writes = true;
    return caps;
  }
};

TEST(AsyncIoCapabilityTest, AsyncAppendsSkipsThePumpWrapper) {
  // With async_appends reported, MakeAsyncRecordWriter must hand the file
  // straight to the RecordWriter — byte-identical output, no pump thread
  // double-buffering the natively-async backend.
  FakeAsyncEnv env;
  ThreadPool pool(2);
  std::unique_ptr<RecordWriter> writer;
  ASSERT_TWRS_OK(
      MakeAsyncRecordWriter(&env, "records", 512, &pool, 2048, &writer));
  std::vector<Key> keys(5000);
  std::iota(keys.begin(), keys.end(), 7);
  for (Key k : keys) ASSERT_TWRS_OK(writer->Append(k));
  ASSERT_TWRS_OK(writer->Finish());

  std::vector<Key> got;
  ASSERT_TWRS_OK(ReadAllRecords(&env, "records", &got));
  EXPECT_TRUE(got == keys);
}

TEST(AsyncIoCapabilityTest, UringBackendRoundTripsThroughTheFactory) {
  if (!IoUringEnv::IsSupported()) {
    GTEST_SKIP() << "io_uring unavailable: "
                 << IoUringEnv::UnsupportedReason();
  }
  // End to end on the real natively-async backend: the factory writes
  // directly through the uring file (no AsyncWritableFile wrap) and the
  // bytes must match a plain posix read of the same file.
  IoUringEnv env;
  PosixEnv posix;
  ThreadPool pool(2);
  const std::string dir = twrs::testing::MakeTempDir();
  ASSERT_TWRS_OK(env.CreateDirIfMissing(dir));
  const std::string path = dir + "/records";
  std::unique_ptr<RecordWriter> writer;
  ASSERT_TWRS_OK(
      MakeAsyncRecordWriter(&env, path, 512, &pool, 2048, &writer));
  std::vector<Key> keys(20000);
  std::iota(keys.begin(), keys.end(), 1);
  for (Key k : keys) ASSERT_TWRS_OK(writer->Append(k));
  ASSERT_TWRS_OK(writer->Finish());

  std::vector<Key> via_uring, via_posix;
  ASSERT_TWRS_OK(ReadAllRecords(&env, path, &via_uring));
  ASSERT_TWRS_OK(ReadAllRecords(&posix, path, &via_posix));
  EXPECT_TRUE(via_uring == keys);
  EXPECT_TRUE(via_posix == keys) << "backends disagree on the file bytes";
}

}  // namespace
}  // namespace twrs
