#include "merge/external_sorter.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <tuple>

#include "core/load_sort_store.h"
#include "io/mem_env.h"
#include "io/posix_env.h"
#include "io/uring_env.h"
#include "util/random.h"
#include "simd/dispatch.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace twrs {
namespace {

using testing::ChecksumOf;
using testing::Drain;
using testing::GenerateRuns;

TEST(LoadSortStoreTest, RunsAreMemorySized) {
  LoadSortStoreOptions options;
  options.memory_records = 10;
  LoadSortStore lss(options);
  std::vector<Key> input;
  for (int i = 25; i > 0; --i) input.push_back(i);
  auto result = GenerateRuns(&lss, input);
  ASSERT_EQ(result.stats.run_lengths.size(), 3u);
  EXPECT_EQ(result.stats.run_lengths[0], 10u);
  EXPECT_EQ(result.stats.run_lengths[1], 10u);
  EXPECT_EQ(result.stats.run_lengths[2], 5u);
  testing::ExpectValidRuns(result.runs, input);
}

TEST(LoadSortStoreTest, RejectsZeroMemory) {
  LoadSortStoreOptions options;
  LoadSortStore lss(options);
  VectorSource source({1});
  CollectingRunSink sink;
  EXPECT_TRUE(lss.Generate(&source, &sink, nullptr).IsInvalidArgument());
}

TEST(ExternalSorterTest, AlgorithmNames) {
  EXPECT_STREQ(RunGenAlgorithmName(RunGenAlgorithm::kReplacementSelection),
               "RS");
  EXPECT_STREQ(
      RunGenAlgorithmName(RunGenAlgorithm::kTwoWayReplacementSelection),
      "2WRS");
  EXPECT_STREQ(RunGenAlgorithmName(RunGenAlgorithm::kLoadSortStore), "LSS");
}

// Every algorithm on every dataset must produce a sorted permutation of
// the input through the full two-phase pipeline.
using SortParam = std::tuple<int, int>;  // algorithm, dataset

class ExternalSorterPipelineTest : public ::testing::TestWithParam<SortParam> {
};

TEST_P(ExternalSorterPipelineTest, SortsToAPermutation) {
  const auto [algorithm, dataset] = GetParam();
  MemEnv env;
  WorkloadOptions wl;
  wl.num_records = 5000;
  wl.seed = 77;
  wl.sections = 8;
  auto input = Drain(MakeWorkload(static_cast<Dataset>(dataset), wl).get());

  ExternalSortOptions options;
  options.algorithm = static_cast<RunGenAlgorithm>(algorithm);
  options.memory_records = 128;
  options.twrs = TwoWayOptions::Recommended(128, 3);
  options.fan_in = 4;
  options.temp_dir = "tmp";
  options.block_bytes = 512;
  ExternalSorter sorter(&env, options);

  VectorSource source(input);
  ExternalSortResult result;
  ASSERT_TWRS_OK(sorter.Sort(&source, "out", &result));

  uint64_t count = 0;
  KeyChecksum checksum;
  ASSERT_TWRS_OK(VerifySortedFile(&env, "out", &count, &checksum));
  EXPECT_EQ(count, input.size());
  EXPECT_TRUE(checksum == ChecksumOf(input));
  EXPECT_EQ(result.output_records, input.size());
  EXPECT_GT(result.run_gen.num_runs(), 0u);
  EXPECT_GE(result.total_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsAndDatasets, ExternalSorterPipelineTest,
    ::testing::Combine(::testing::Range(0, 3),
                       ::testing::Range(0, kNumDatasets)));

TEST(ExternalSorterTest, EmptyInputProducesEmptySortedFile) {
  MemEnv env;
  ExternalSortOptions options;
  options.memory_records = 16;
  options.twrs = TwoWayOptions::Recommended(16);
  options.temp_dir = "tmp";
  ExternalSorter sorter(&env, options);
  VectorSource source({});
  ExternalSortResult result;
  ASSERT_TWRS_OK(sorter.Sort(&source, "out", &result));
  uint64_t count = 99;
  ASSERT_TWRS_OK(VerifySortedFile(&env, "out", &count, nullptr));
  EXPECT_EQ(count, 0u);
}

TEST(ExternalSorterTest, TempFilesAreRemovedAfterSort) {
  MemEnv env;
  ExternalSortOptions options;
  options.memory_records = 32;
  options.twrs = TwoWayOptions::Recommended(32);
  options.temp_dir = "tmp";
  options.fan_in = 2;
  ExternalSorter sorter(&env, options);
  WorkloadOptions wl;
  wl.num_records = 2000;
  wl.seed = 5;
  auto input = Drain(MakeWorkload(Dataset::kRandom, wl).get());
  VectorSource source(input);
  ASSERT_TWRS_OK(sorter.Sort(&source, "out", nullptr));
  EXPECT_EQ(env.FileCount(), 1u);  // only the sorted output remains
}

TEST(ExternalSorterTest, SequentialSortsDoNotCollide) {
  MemEnv env;
  ExternalSortOptions options;
  options.memory_records = 32;
  options.twrs = TwoWayOptions::Recommended(32);
  options.temp_dir = "tmp";
  ExternalSorter sorter(&env, options);
  for (int round = 0; round < 3; ++round) {
    WorkloadOptions wl;
    wl.num_records = 500;
    wl.seed = 100 + round;
    auto input = Drain(MakeWorkload(Dataset::kRandom, wl).get());
    VectorSource source(input);
    const std::string out = "out" + std::to_string(round);
    ASSERT_TWRS_OK(sorter.Sort(&source, out, nullptr));
    uint64_t count = 0;
    KeyChecksum checksum;
    ASSERT_TWRS_OK(VerifySortedFile(&env, out, &count, &checksum));
    EXPECT_EQ(count, input.size());
    EXPECT_TRUE(checksum == ChecksumOf(input));
  }
}

// The parallel path (async run writes, prefetching merge inputs, pool-
// dispatched leaf merges) must be a pure performance feature: same record
// count, same checksum, byte-identical output file.
TEST(ExternalSorterParallelTest, ParallelOutputIsByteIdenticalToSerial) {
  MemEnv env;
  WorkloadOptions wl;
  wl.num_records = 20000;
  wl.seed = 42;
  wl.sections = 16;
  auto input =
      testing::Drain(MakeWorkload(Dataset::kAlternating, wl).get());

  ExternalSortOptions options;
  options.memory_records = 128;
  options.twrs = TwoWayOptions::Recommended(128, 7);
  options.fan_in = 4;
  options.temp_dir = "tmp";
  options.block_bytes = 512;  // many blocks per stream

  ExternalSortResult serial_result;
  {
    ExternalSorter sorter(&env, options);
    VectorSource source(input);
    ASSERT_TWRS_OK(sorter.Sort(&source, "out_serial", &serial_result));
  }

  options.parallel.worker_threads = 4;
  options.parallel.prefetch_blocks = 3;
  options.parallel.parallel_leaf_merges = true;
  ExternalSortResult parallel_result;
  {
    ExternalSorter sorter(&env, options);
    VectorSource source(input);
    ASSERT_TWRS_OK(sorter.Sort(&source, "out_parallel", &parallel_result));
  }

  uint64_t serial_count = 0, parallel_count = 0;
  KeyChecksum serial_sum, parallel_sum;
  ASSERT_TWRS_OK(
      VerifySortedFile(&env, "out_serial", &serial_count, &serial_sum));
  ASSERT_TWRS_OK(
      VerifySortedFile(&env, "out_parallel", &parallel_count, &parallel_sum));
  EXPECT_EQ(serial_count, input.size());
  EXPECT_EQ(parallel_count, serial_count);
  EXPECT_TRUE(parallel_sum == serial_sum);
  EXPECT_TRUE(serial_sum == testing::ChecksumOf(input));

  const std::vector<uint8_t>* serial_bytes = env.FileContents("out_serial");
  const std::vector<uint8_t>* parallel_bytes =
      env.FileContents("out_parallel");
  ASSERT_NE(serial_bytes, nullptr);
  ASSERT_NE(parallel_bytes, nullptr);
  EXPECT_TRUE(*serial_bytes == *parallel_bytes);

  // Identical merge schedule, so identical stats.
  EXPECT_EQ(parallel_result.run_gen.num_runs(),
            serial_result.run_gen.num_runs());
  EXPECT_EQ(parallel_result.merge.merge_steps,
            serial_result.merge.merge_steps);
  EXPECT_EQ(parallel_result.merge.records_written,
            serial_result.merge.records_written);
}

TEST(ExternalSorterTest, SimdOutputIsByteIdenticalToForcedScalar) {
  // Pin the dispatch-level contract end to end: a full two-phase sort must
  // write byte-identical output whether the simd kernels run vectorized or
  // forced scalar. On hosts without AVX2 both halves run scalar and the
  // test degenerates to a determinism check.
  MemEnv env;
  WorkloadOptions wl;
  wl.num_records = 20000;
  wl.seed = 11;
  wl.sections = 16;
  auto input = testing::Drain(MakeWorkload(Dataset::kAlternating, wl).get());

  ExternalSortOptions options;
  options.memory_records = 128;
  options.twrs = TwoWayOptions::Recommended(128, 7);
  options.fan_in = 4;  // small fan-in: exercises the MinIndexN merge path
  options.temp_dir = "tmp";
  options.block_bytes = 512;

  simd::ForceScalar(false);
  {
    ExternalSorter sorter(&env, options);
    VectorSource source(input);
    ASSERT_TWRS_OK(sorter.Sort(&source, "out_simd", nullptr));
  }
  simd::ForceScalar(true);
  {
    ExternalSorter sorter(&env, options);
    VectorSource source(input);
    ASSERT_TWRS_OK(sorter.Sort(&source, "out_scalar", nullptr));
  }
  simd::ClearForceScalarOverride();

  const std::vector<uint8_t>* simd_bytes = env.FileContents("out_simd");
  const std::vector<uint8_t>* scalar_bytes = env.FileContents("out_scalar");
  ASSERT_NE(simd_bytes, nullptr);
  ASSERT_NE(scalar_bytes, nullptr);
  EXPECT_EQ(simd_bytes->size(), input.size() * kRecordBytes);
  EXPECT_TRUE(*simd_bytes == *scalar_bytes);

  uint64_t count = 0;
  KeyChecksum sum;
  ASSERT_TWRS_OK(VerifySortedFile(&env, "out_simd", &count, &sum));
  EXPECT_EQ(count, input.size());
  EXPECT_TRUE(sum == testing::ChecksumOf(input));
}

TEST(ExternalSorterParallelTest, ParallelSortCleansUpTempFiles) {
  MemEnv env;
  ExternalSortOptions options;
  options.memory_records = 64;
  options.twrs = TwoWayOptions::Recommended(64);
  options.temp_dir = "tmp";
  options.fan_in = 2;
  options.parallel.worker_threads = 3;
  options.parallel.prefetch_blocks = 2;
  ExternalSorter sorter(&env, options);
  WorkloadOptions wl;
  wl.num_records = 5000;
  wl.seed = 9;
  auto input = testing::Drain(MakeWorkload(Dataset::kRandom, wl).get());
  VectorSource source(input);
  ASSERT_TWRS_OK(sorter.Sort(&source, "out", nullptr));
  EXPECT_EQ(env.FileCount(), 1u);  // only the sorted output remains
}

// Regression test for the fixed temp_dir collision: sorts sharing one
// temp_dir used to overwrite each other's run files ("sort0_run0_s1").
// Each Sort now works in a unique subdirectory, so fully concurrent sorts
// against one Env must both succeed and verify.
TEST(ExternalSorterParallelTest, ConcurrentSortsSharingTempDirDoNotCollide) {
  MemEnv env;
  constexpr int kSorts = 4;
  std::vector<std::vector<Key>> inputs(kSorts);
  std::vector<Status> statuses(kSorts);
  std::vector<std::thread> threads;
  for (int i = 0; i < kSorts; ++i) {
    WorkloadOptions wl;
    wl.num_records = 4000;
    wl.seed = 1000 + i;
    inputs[i] = testing::Drain(MakeWorkload(Dataset::kRandom, wl).get());
    threads.emplace_back([&env, &inputs, &statuses, i] {
      ExternalSortOptions options;
      options.memory_records = 64;
      options.twrs = TwoWayOptions::Recommended(64);
      options.fan_in = 3;
      options.temp_dir = "tmp";  // deliberately shared
      options.block_bytes = 512;
      // Odd sorts additionally run their own parallel pipeline.
      options.parallel.worker_threads = (i % 2 == 1) ? 2 : 0;
      ExternalSorter sorter(&env, options);
      VectorSource source(inputs[i]);
      statuses[i] = sorter.Sort(&source, "out" + std::to_string(i), nullptr);
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < kSorts; ++i) {
    ASSERT_TRUE(statuses[i].ok()) << statuses[i].ToString();
    uint64_t count = 0;
    KeyChecksum checksum;
    ASSERT_TWRS_OK(VerifySortedFile(&env, "out" + std::to_string(i), &count,
                                    &checksum));
    EXPECT_EQ(count, inputs[i].size());
    EXPECT_TRUE(checksum == testing::ChecksumOf(inputs[i]));
  }
}

// ---------------------------------------------------------------------------
// Cooperative cancellation and error-path hygiene

// Yields `input` records, firing the token after `fire_after` of them —
// deterministic mid-run-generation cancellation.
class CancelAfterNSource : public RecordSource {
 public:
  CancelAfterNSource(std::vector<Key> keys, size_t fire_after,
                     CancelToken* token)
      : keys_(std::move(keys)), fire_after_(fire_after), token_(token) {}

  bool Next(Key* key) override {
    if (pos_ == fire_after_) token_->Cancel();
    if (pos_ == keys_.size()) return false;
    *key = keys_[pos_++];
    return true;
  }

 private:
  std::vector<Key> keys_;
  size_t fire_after_;
  CancelToken* token_;
  size_t pos_ = 0;
};

// MemEnv that fires the token on the first sequential open. The sort's
// run generation only writes, so the first read is the merge phase
// opening its first input — deterministic mid-merge cancellation.
class CancelOnFirstReadEnv : public MemEnv {
 public:
  explicit CancelOnFirstReadEnv(CancelToken* token) : token_(token) {}

  Status NewSequentialFile(const std::string& path,
                           std::unique_ptr<SequentialFile>* out) override {
    token_->Cancel();
    return MemEnv::NewSequentialFile(path, out);
  }

 private:
  CancelToken* token_;
};

ExternalSortOptions CancelTestOptions(const CancelToken* token) {
  ExternalSortOptions options;
  options.memory_records = 128;
  options.twrs = TwoWayOptions::Recommended(128);
  options.fan_in = 4;
  options.temp_dir = "tmp";
  options.block_bytes = 512;
  options.cancel = token;
  return options;
}

TEST(ExternalSorterCancelTest, PreCancelledSortFailsFastAndWritesNothing) {
  MemEnv env;
  CancelToken token;
  token.Cancel();
  ExternalSorter sorter(&env, CancelTestOptions(&token));
  VectorSource source({3, 1, 2});
  EXPECT_TRUE(sorter.Sort(&source, "out", nullptr).IsCancelled());
  EXPECT_EQ(env.FileCount(), 0u);
}

TEST(ExternalSorterCancelTest, CancelMidRunGenerationUnwindsAndCleansUp) {
  MemEnv env;
  WorkloadOptions wl;
  wl.num_records = 20000;
  wl.seed = 21;
  auto input = Drain(MakeWorkload(Dataset::kRandom, wl).get());

  CancelToken token;
  ExternalSorter sorter(&env, CancelTestOptions(&token));
  // Fire a quarter of the way in: several runs already sit on disk.
  CancelAfterNSource source(input, 5000, &token);
  const Status status = sorter.Sort(&source, "out", nullptr);
  EXPECT_TRUE(status.IsCancelled()) << status.ToString();
  // No run files, no partial output — nothing survives the cancel.
  EXPECT_EQ(env.FileCount(), 0u);
}

TEST(ExternalSorterCancelTest, CancelMidMergeUnwindsAndCleansUp) {
  CancelToken token;
  CancelOnFirstReadEnv env(&token);
  WorkloadOptions wl;
  wl.num_records = 5000;
  wl.seed = 22;
  auto input = Drain(MakeWorkload(Dataset::kRandom, wl).get());

  ExternalSorter sorter(&env, CancelTestOptions(&token));
  VectorSource source(input);
  const Status status = sorter.Sort(&source, "out", nullptr);
  EXPECT_TRUE(status.IsCancelled()) << status.ToString();
  EXPECT_EQ(status.message(), "merge cancelled");
  EXPECT_EQ(env.FileCount(), 0u);
}

TEST(ExternalSorterCancelTest, ParallelSortAlsoObservesTheToken) {
  MemEnv env;
  WorkloadOptions wl;
  wl.num_records = 20000;
  wl.seed = 23;
  auto input = Drain(MakeWorkload(Dataset::kRandom, wl).get());

  CancelToken token;
  ExternalSortOptions options = CancelTestOptions(&token);
  options.parallel.worker_threads = 2;
  options.parallel.dedicated_pool = true;
  ExternalSorter sorter(&env, options);
  CancelAfterNSource source(input, 5000, &token);
  EXPECT_TRUE(sorter.Sort(&source, "out", nullptr).IsCancelled());
  EXPECT_EQ(env.FileCount(), 0u);
}

TEST(ExternalSorterTest, FailedMergeLeavesNoScratchOrTornOutput) {
  MemEnv env;
  ExternalSortOptions options;
  options.memory_records = 32;
  options.twrs = TwoWayOptions::Recommended(32);
  options.temp_dir = "tmp";
  options.fan_in = 1;  // poison: run generation succeeds, the merge fails
  ExternalSorter sorter(&env, options);
  WorkloadOptions wl;
  wl.num_records = 2000;
  wl.seed = 24;
  auto input = Drain(MakeWorkload(Dataset::kRandom, wl).get());
  VectorSource source(input);
  EXPECT_TRUE(sorter.Sort(&source, "out", nullptr).IsInvalidArgument());
  EXPECT_EQ(env.FileCount(), 0u);
}

TEST(ExternalSorterTest, FailureDoesNotDeleteAPreexistingOutputFile) {
  MemEnv env;
  // Yesterday's result, re-sorted into the same destination today.
  ASSERT_TWRS_OK(WriteAllRecords(&env, "out", {1, 2, 3}));

  CancelToken token;
  token.Cancel();
  ExternalSorter sorter(&env, CancelTestOptions(&token));
  VectorSource source({9, 8, 7});
  EXPECT_TRUE(sorter.Sort(&source, "out", nullptr).IsCancelled());

  // The failed sort never opened the output; the old file must survive.
  std::vector<Key> keys;
  ASSERT_TWRS_OK(ReadAllRecords(&env, "out", &keys));
  EXPECT_EQ(keys, (std::vector<Key>{1, 2, 3}));
}

TEST(ExternalSorterCancelTest, TornOutputThisSortTruncatedIsRemoved) {
  CancelToken token;
  CancelOnFirstReadEnv env(&token);
  // A pre-existing output that the re-sort truncates before the merge's
  // first input read fires the token: the old data is already gone, and
  // the torn partial must not be left masquerading as a result.
  ASSERT_TWRS_OK(WriteAllRecords(&env, "out", {1, 2, 3}));

  ExternalSortOptions options = CancelTestOptions(&token);
  // Single merge pass: the final merge truncates "out" before it opens
  // its first input, which is what fires the token.
  options.fan_in = 64;
  ExternalSorter sorter(&env, options);
  WorkloadOptions wl;
  wl.num_records = 5000;
  wl.seed = 26;
  auto input = Drain(MakeWorkload(Dataset::kRandom, wl).get());
  VectorSource source(input);
  EXPECT_TRUE(sorter.Sort(&source, "out", nullptr).IsCancelled());
  EXPECT_FALSE(env.FileExists("out"));
  EXPECT_EQ(env.FileCount(), 0u);
}

TEST(ExternalSorterTest, ReportsEngineIoVolume) {
  MemEnv env;
  ExternalSortOptions options;
  options.memory_records = 64;
  options.twrs = TwoWayOptions::Recommended(64);
  options.temp_dir = "tmp";
  options.fan_in = 2;  // several merge passes
  ExternalSorter sorter(&env, options);
  WorkloadOptions wl;
  wl.num_records = 5000;
  wl.seed = 25;
  auto input = Drain(MakeWorkload(Dataset::kRandom, wl).get());
  VectorSource source(input);
  ExternalSortResult result;
  ASSERT_TWRS_OK(sorter.Sort(&source, "out", &result));

  const uint64_t input_bytes = input.size() * kRecordBytes;
  // Runs written once plus the output, plus intermediate passes: at least
  // 2x the input volume out, at least 1x back in.
  EXPECT_GE(result.bytes_written, 2 * input_bytes);
  EXPECT_GE(result.bytes_read, input_bytes);
}

// ---------------------------------------------------------------------------
// Top-K selection (options.limit): every strategy must produce output
// byte-identical to a full sort truncated to the requested end.

/// The reference a LIMIT plan must match: full sort, keep K from the
/// requested end, ascending.
std::vector<Key> TruncatedReference(std::vector<Key> input, uint64_t k,
                                    SelectOrder order) {
  std::sort(input.begin(), input.end());
  k = std::min<uint64_t>(k, input.size());
  if (order == SelectOrder::kAscending) {
    input.resize(k);
  } else {
    input.erase(input.begin(), input.end() - static_cast<ptrdiff_t>(k));
  }
  return input;
}

ExternalSortOptions TopKTestOptions() {
  ExternalSortOptions options;
  options.memory_records = 128;
  options.twrs = TwoWayOptions::Recommended(128, 3);
  options.fan_in = 4;  // multiple merge passes: intermediate clamps too
  options.temp_dir = "tmp";
  options.block_bytes = 512;
  return options;
}

TEST(ExternalSorterTopKTest, EveryStrategyMatchesFullSortTruncation) {
  MemEnv env;
  WorkloadOptions wl;
  wl.num_records = 5000;
  wl.seed = 31;
  auto input = Drain(MakeWorkload(Dataset::kRandom, wl).get());

  const uint64_t limits[] = {1, 37, 500, 2500, 5000, 9999};
  const TopKStrategy strategies[] = {TopKStrategy::kAuto,
                                     TopKStrategy::kDualHeap,
                                     TopKStrategy::kRunPruningMerge};
  for (SelectOrder order :
       {SelectOrder::kAscending, SelectOrder::kDescending}) {
    for (uint64_t limit : limits) {
      const auto reference = TruncatedReference(input, limit, order);
      for (TopKStrategy strategy : strategies) {
        ExternalSortOptions options = TopKTestOptions();
        options.limit = limit;
        options.order = order;
        options.topk_strategy = strategy;
        ExternalSorter sorter(&env, options);
        VectorSource source(input);
        ExternalSortResult result;
        SCOPED_TRACE(std::string(TopKStrategyName(strategy)) + "/" +
                     SelectOrderName(order) + "/K=" + std::to_string(limit));
        ASSERT_TWRS_OK(sorter.Sort(&source, "out", &result));
        EXPECT_EQ(result.output_records, reference.size());
        EXPECT_NE(result.topk_strategy, TopKStrategy::kAuto);

        std::vector<Key> got;
        ASSERT_TWRS_OK(ReadAllRecords(&env, "out", &got));
        EXPECT_EQ(got, reference);
        EXPECT_EQ(env.FileCount(), 1u);  // scratch cleaned up
        ASSERT_TWRS_OK(env.RemoveFile("out"));
      }
    }
  }
}

TEST(ExternalSorterTopKTest, AutoPlansDualHeapOnlyWhenKFitsMemory) {
  MemEnv env;
  WorkloadOptions wl;
  wl.num_records = 3000;
  wl.seed = 32;
  auto input = Drain(MakeWorkload(Dataset::kRandom, wl).get());
  for (uint64_t limit : {uint64_t{64}, uint64_t{2000}}) {
    ExternalSortOptions options = TopKTestOptions();  // memory_records = 128
    options.limit = limit;
    ExternalSorter sorter(&env, options);
    VectorSource source(input);
    ExternalSortResult result;
    ASSERT_TWRS_OK(sorter.Sort(&source, "out", &result));
    EXPECT_EQ(result.topk_strategy, limit <= options.memory_records
                                        ? TopKStrategy::kDualHeap
                                        : TopKStrategy::kRunPruningMerge);
    ASSERT_TWRS_OK(env.RemoveFile("out"));
  }
}

TEST(ExternalSorterTopKTest, DualHeapDoesNoRunIo) {
  MemEnv env;
  WorkloadOptions wl;
  wl.num_records = 4000;
  wl.seed = 33;
  auto input = Drain(MakeWorkload(Dataset::kRandom, wl).get());
  ExternalSortOptions options = TopKTestOptions();
  options.limit = 50;
  options.topk_strategy = TopKStrategy::kDualHeap;
  ExternalSorter sorter(&env, options);
  VectorSource source(input);
  ExternalSortResult result;
  ASSERT_TWRS_OK(sorter.Sort(&source, "out", &result));
  EXPECT_EQ(result.run_gen.num_runs(), 0u);
  EXPECT_EQ(result.bytes_read, 0u);  // streamed source, no scratch reads
  EXPECT_EQ(result.bytes_written, 50u * kRecordBytes);
  EXPECT_EQ(result.run_gen.total_records, input.size());
}

TEST(ExternalSorterTopKTest, RunPruningMergeReadsStrictlyFewerBytes) {
  // The acceptance pin: with the same input, memory and merge schedule, a
  // run-pruned merge must read strictly fewer bytes than the full sort —
  // run slices clamp what each cursor fetches, and sampled bounds prune
  // whole runs without ever opening them. bytes_read comes from the
  // sorter's internal CountingEnv. Ascending-trend input with local
  // shuffle (a scan of a roughly time-ordered table): runs cover narrow,
  // mostly disjoint key bands, so for a small K nearly every run sits
  // entirely above the selection bound.
  MemEnv env;
  std::vector<Key> input;
  Random rng(34);
  for (Key band = 0; band < 13; ++band) {
    for (int i = 0; i < 4096; ++i) {
      input.push_back(band * 1000000 +
                      static_cast<Key>(rng.Uniform(1000000)));
    }
  }

  ExternalSortOptions options = TopKTestOptions();
  options.memory_records = 1024;
  options.twrs = TwoWayOptions::Recommended(1024, 3);
  options.fan_in = 128;  // single merge pass over every run
  ExternalSortResult full;
  {
    ExternalSorter sorter(&env, options);
    VectorSource source(input);
    ASSERT_TWRS_OK(sorter.Sort(&source, "out_full", &full));
  }

  options.limit = 100;
  options.topk_strategy = TopKStrategy::kRunPruningMerge;
  ExternalSortResult pruned;
  {
    ExternalSorter sorter(&env, options);
    VectorSource source(input);
    ASSERT_TWRS_OK(sorter.Sort(&source, "out_topk", &pruned));
  }

  EXPECT_LT(pruned.bytes_read, full.bytes_read);
  EXPECT_LT(pruned.bytes_written, full.bytes_written);
  EXPECT_GE(pruned.merge.runs_pruned, 1u);
  EXPECT_GT(pruned.merge.records_pruned, 0u);

  std::vector<Key> got;
  ASSERT_TWRS_OK(ReadAllRecords(&env, "out_topk", &got));
  EXPECT_EQ(got, TruncatedReference(input, 100, SelectOrder::kAscending));
}

TEST(ExternalSorterTopKTest, PartitionedFinalMergeHonorsTheLimit) {
  MemEnv env;
  WorkloadOptions wl;
  wl.num_records = 20000;
  wl.seed = 35;
  auto input = Drain(MakeWorkload(Dataset::kRandom, wl).get());
  for (SelectOrder order :
       {SelectOrder::kAscending, SelectOrder::kDescending}) {
    ExternalSortOptions options = TopKTestOptions();
    options.fan_in = 128;  // all runs reach the final merge
    options.limit = 3000;
    options.order = order;
    options.topk_strategy = TopKStrategy::kRunPruningMerge;
    options.parallel.worker_threads = 4;
    options.parallel.final_merge_threads = 4;
    ExternalSorter sorter(&env, options);
    VectorSource source(input);
    ExternalSortResult result;
    ASSERT_TWRS_OK(sorter.Sort(&source, "out", &result));
    std::vector<Key> got;
    ASSERT_TWRS_OK(ReadAllRecords(&env, "out", &got));
    EXPECT_EQ(got, TruncatedReference(input, 3000, order))
        << SelectOrderName(order);
    ASSERT_TWRS_OK(env.RemoveFile("out"));
  }
}

TEST(ExternalSorterTopKTest, ForcedScalarSimdIsByteIdentical) {
  MemEnv env;
  WorkloadOptions wl;
  wl.num_records = 10000;
  wl.seed = 36;
  auto input = Drain(MakeWorkload(Dataset::kAlternating, wl).get());

  ExternalSortOptions options = TopKTestOptions();
  options.limit = 700;
  options.topk_strategy = TopKStrategy::kRunPruningMerge;

  simd::ForceScalar(false);
  {
    ExternalSorter sorter(&env, options);
    VectorSource source(input);
    ASSERT_TWRS_OK(sorter.Sort(&source, "out_simd", nullptr));
  }
  simd::ForceScalar(true);
  {
    ExternalSorter sorter(&env, options);
    VectorSource source(input);
    ASSERT_TWRS_OK(sorter.Sort(&source, "out_scalar", nullptr));
  }
  simd::ClearForceScalarOverride();

  const std::vector<uint8_t>* simd_bytes = env.FileContents("out_simd");
  const std::vector<uint8_t>* scalar_bytes = env.FileContents("out_scalar");
  ASSERT_NE(simd_bytes, nullptr);
  ASSERT_NE(scalar_bytes, nullptr);
  EXPECT_EQ(simd_bytes->size(), 700u * kRecordBytes);
  EXPECT_TRUE(*simd_bytes == *scalar_bytes);
}

TEST(ExternalSorterTopKTest, LimitOnEmptyAndTinyInputs) {
  MemEnv env;
  for (TopKStrategy strategy :
       {TopKStrategy::kDualHeap, TopKStrategy::kRunPruningMerge}) {
    ExternalSortOptions options = TopKTestOptions();
    options.limit = 10;
    options.topk_strategy = strategy;
    ExternalSorter sorter(&env, options);
    {
      VectorSource source({});
      ExternalSortResult result;
      ASSERT_TWRS_OK(sorter.Sort(&source, "out", &result));
      EXPECT_EQ(result.output_records, 0u);
      std::vector<Key> got;
      ASSERT_TWRS_OK(ReadAllRecords(&env, "out", &got));
      EXPECT_TRUE(got.empty());
    }
    {
      VectorSource source({3, 1, 2});
      ExternalSortResult result;
      ASSERT_TWRS_OK(sorter.Sort(&source, "out", &result));
      EXPECT_EQ(result.output_records, 3u);
      std::vector<Key> got;
      ASSERT_TWRS_OK(ReadAllRecords(&env, "out", &got));
      EXPECT_EQ(got, (std::vector<Key>{1, 2, 3}));
    }
    ASSERT_TWRS_OK(env.RemoveFile("out"));
  }
}

TEST(ExternalSorterTopKTest, SortIntoRangeRejectsLimit) {
  MemEnv env;
  ExternalSortOptions options = TopKTestOptions();
  options.limit = 10;
  ExternalSorter sorter(&env, options);
  VectorSource source({3, 1, 2});
  MergeOutputRange range;
  range.positioned = true;
  range.offset = 0;
  range.length = 3 * kRecordBytes;
  EXPECT_TRUE(
      sorter.SortIntoRange(&source, "out", range, nullptr)
          .IsInvalidArgument());
}

TEST(ExternalSorterTopKTest, CancelDuringDualHeapSelectionCleansUp) {
  MemEnv env;
  WorkloadOptions wl;
  wl.num_records = 20000;
  wl.seed = 37;
  auto input = Drain(MakeWorkload(Dataset::kRandom, wl).get());
  CancelToken token;
  ExternalSortOptions options = TopKTestOptions();
  options.cancel = &token;
  options.limit = 10;
  options.topk_strategy = TopKStrategy::kDualHeap;
  ExternalSorter sorter(&env, options);
  CancelAfterNSource source(input, 5000, &token);
  EXPECT_TRUE(sorter.Sort(&source, "out", nullptr).IsCancelled());
  EXPECT_EQ(env.FileCount(), 0u);
}

TEST(VerifySortedFileTest, DetectsDisorder) {
  MemEnv env;
  ASSERT_TWRS_OK(WriteAllRecords(&env, "f", {3, 1, 2}));
  EXPECT_TRUE(VerifySortedFile(&env, "f", nullptr, nullptr).IsCorruption());
}

TEST(VerifySortedFileTest, DetectsDisorderedTailAfterLongPrefix) {
  MemEnv env;
  std::vector<Key> keys;
  for (Key k = 0; k < 1000; ++k) keys.push_back(k);
  keys.push_back(500);  // out of order only at the very end
  ASSERT_TWRS_OK(WriteAllRecords(&env, "f", keys));
  EXPECT_TRUE(VerifySortedFile(&env, "f", nullptr, nullptr).IsCorruption());
}

TEST(VerifySortedFileTest, EmptyFile) {
  MemEnv env;
  ASSERT_TWRS_OK(WriteAllRecords(&env, "f", {}));
  uint64_t count = 99;
  KeyChecksum checksum;
  ASSERT_TWRS_OK(VerifySortedFile(&env, "f", &count, &checksum));
  EXPECT_EQ(count, 0u);
  EXPECT_TRUE(checksum == KeyChecksum());
}

TEST(VerifySortedFileTest, SingleRecord) {
  MemEnv env;
  ASSERT_TWRS_OK(WriteAllRecords(&env, "f", {-7}));
  uint64_t count = 0;
  KeyChecksum checksum;
  ASSERT_TWRS_OK(VerifySortedFile(&env, "f", &count, &checksum));
  EXPECT_EQ(count, 1u);
  EXPECT_TRUE(checksum == ChecksumOf({-7}));
}

TEST(VerifySortedFileTest, DuplicateKeysAreSorted) {
  MemEnv env;
  ASSERT_TWRS_OK(WriteAllRecords(&env, "f", {1, 1, 1, 2, 2}));
  uint64_t count = 0;
  ASSERT_TWRS_OK(VerifySortedFile(&env, "f", &count, nullptr));
  EXPECT_EQ(count, 5u);
}

TEST(VerifySortedFileTest, MissingFileIsAnError) {
  MemEnv env;
  EXPECT_FALSE(VerifySortedFile(&env, "absent", nullptr, nullptr).ok());
}

// ----------------------------------------------------- io_backend plumbing

TEST(IoBackendSortTest, UringSortIsByteIdenticalToPosix) {
  if (!IoUringEnv::IsSupported()) {
    GTEST_SKIP() << "io_uring unavailable: "
                 << IoUringEnv::UnsupportedReason();
  }
  // The acceptance bar of the uring backend: same input, same options,
  // different backend — the output files must be byte-identical, not just
  // both sorted permutations.
  PosixEnv posix;
  const std::string dir = twrs::testing::MakeTempDir();
  ASSERT_TWRS_OK(posix.CreateDirIfMissing(dir));
  WorkloadOptions wl;
  wl.num_records = 20000;
  wl.seed = 99;
  auto input = Drain(MakeWorkload(Dataset::kMixed, wl).get());

  std::string outputs[2];
  const IoBackend backends[2] = {IoBackend::kPosix, IoBackend::kUring};
  for (int i = 0; i < 2; ++i) {
    ExternalSortOptions options;
    options.memory_records = 512;
    options.twrs = TwoWayOptions::Recommended(512, 3);
    options.fan_in = 4;
    options.temp_dir = dir;
    options.block_bytes = 4096;
    options.io_backend = backends[i];
    ExternalSorter sorter(&posix, options);
    outputs[i] = dir + "/out_" + IoBackendName(backends[i]);
    VectorSource source(input);
    ExternalSortResult result;
    ASSERT_TWRS_OK(sorter.Sort(&source, outputs[i], &result));
    EXPECT_EQ(result.output_records, input.size());
  }

  std::vector<Key> via_posix, via_uring;
  ASSERT_TWRS_OK(ReadAllRecords(&posix, outputs[0], &via_posix));
  ASSERT_TWRS_OK(ReadAllRecords(&posix, outputs[1], &via_uring));
  EXPECT_TRUE(via_posix == via_uring)
      << "posix and uring sorts diverged on identical input";
  uint64_t count = 0;
  KeyChecksum checksum;
  ASSERT_TWRS_OK(VerifySortedFile(&posix, outputs[1], &count, &checksum));
  EXPECT_EQ(count, input.size());
  EXPECT_TRUE(checksum == ChecksumOf(input));
}

TEST(IoBackendSortTest, ExplicitUringFailsLoudlyWhenUnsupported) {
  if (IoUringEnv::IsSupported()) {
    GTEST_SKIP() << "io_uring is supported here; the rejection path needs "
                    "an unsupported host";
  }
  MemEnv env;
  ExternalSortOptions options;
  options.memory_records = 32;
  options.twrs = TwoWayOptions::Recommended(32);
  options.temp_dir = "tmp";
  options.io_backend = IoBackend::kUring;
  ExternalSorter sorter(&env, options);
  VectorSource source({3, 1, 2});
  Status s = sorter.Sort(&source, "out", nullptr);
  EXPECT_TRUE(s.IsNotSupported()) << s.ToString();
}

TEST(IoBackendSortTest, AutoBackendAlwaysSorts) {
  // kAuto resolves to whichever backend the host supports and must never
  // fail on backend grounds.
  PosixEnv posix;
  const std::string dir = twrs::testing::MakeTempDir();
  ASSERT_TWRS_OK(posix.CreateDirIfMissing(dir));
  ExternalSortOptions options;
  options.memory_records = 64;
  options.twrs = TwoWayOptions::Recommended(64);
  options.temp_dir = dir;
  options.io_backend = IoBackend::kAuto;
  ExternalSorter sorter(&posix, options);
  VectorSource source({5, 4, 3, 2, 1});
  ExternalSortResult result;
  ASSERT_TWRS_OK(sorter.Sort(&source, dir + "/out", &result));
  uint64_t count = 0;
  ASSERT_TWRS_OK(VerifySortedFile(&posix, dir + "/out", &count, nullptr));
  EXPECT_EQ(count, 5u);
}

TEST(VerifySortedFileTest, TruncatedTailIsCorruption) {
  MemEnv env;
  // Two whole records followed by a torn half-record, as a crashed writer
  // would leave behind.
  std::unique_ptr<WritableFile> file;
  ASSERT_TWRS_OK(env.NewWritableFile("f", &file));
  uint8_t record[kRecordBytes];
  EncodeKey(1, record);
  ASSERT_TWRS_OK(file->Append(record, kRecordBytes));
  EncodeKey(2, record);
  ASSERT_TWRS_OK(file->Append(record, kRecordBytes));
  ASSERT_TWRS_OK(file->Append(record, kRecordBytes / 2));
  ASSERT_TWRS_OK(file->Close());
  EXPECT_TRUE(VerifySortedFile(&env, "f", nullptr, nullptr).IsCorruption());
}

}  // namespace
}  // namespace twrs
