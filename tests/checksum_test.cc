#include "util/checksum.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/random.h"

namespace twrs {
namespace {

TEST(KeyChecksumTest, EmptyChecksumsAreEqual) {
  EXPECT_TRUE(KeyChecksum() == KeyChecksum());
}

TEST(KeyChecksumTest, OrderIndependent) {
  std::vector<Key> keys = {5, -1, 42, 42, 0, 1000000007};
  KeyChecksum forward;
  for (Key k : keys) forward.Add(k);
  std::reverse(keys.begin(), keys.end());
  KeyChecksum backward;
  for (Key k : keys) backward.Add(k);
  EXPECT_TRUE(forward == backward);
}

TEST(KeyChecksumTest, DetectsMissingRecord) {
  KeyChecksum full;
  KeyChecksum partial;
  for (Key k : {1, 2, 3}) full.Add(k);
  for (Key k : {1, 2}) partial.Add(k);
  EXPECT_FALSE(full == partial);
}

TEST(KeyChecksumTest, DetectsAlteredRecord) {
  KeyChecksum a;
  KeyChecksum b;
  for (Key k : {1, 2, 3}) a.Add(k);
  for (Key k : {1, 2, 4}) b.Add(k);
  EXPECT_FALSE(a == b);
}

TEST(KeyChecksumTest, DetectsCompensatingSwapThatPreservesSum) {
  // {0, 10} and {4, 6} have the same count and sum; the mixed xor must
  // still distinguish them.
  KeyChecksum a;
  KeyChecksum b;
  for (Key k : {0, 10}) a.Add(k);
  for (Key k : {4, 6}) b.Add(k);
  EXPECT_FALSE(a == b);
}

TEST(KeyChecksumTest, DetectsDuplicationSwap) {
  // Same sum, same count, keys replaced by duplicates.
  KeyChecksum a;
  KeyChecksum b;
  for (Key k : {2, 2, 2}) a.Add(k);
  for (Key k : {1, 2, 3}) b.Add(k);
  EXPECT_FALSE(a == b);
}

TEST(KeyChecksumTest, RandomPermutationsAlwaysMatch) {
  Random rng(99);
  std::vector<Key> keys(500);
  for (Key& k : keys) k = static_cast<Key>(rng.Next());
  KeyChecksum original;
  for (Key k : keys) original.Add(k);
  for (int trial = 0; trial < 10; ++trial) {
    for (size_t i = keys.size(); i > 1; --i) {
      std::swap(keys[i - 1], keys[rng.Uniform(i)]);
    }
    KeyChecksum shuffled;
    for (Key k : keys) shuffled.Add(k);
    EXPECT_TRUE(original == shuffled);
  }
}

}  // namespace
}  // namespace twrs
