#include "merge/polyphase.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "io/mem_env.h"
#include "io/record_io.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace twrs {
namespace {

TEST(SimulatePolyphaseTest, ReproducesTable21Exactly) {
  // Table 2.1 of the paper: 6 tapes starting at {8, 10, 3, 0, 8, 11}.
  auto trace = SimulatePolyphase({8, 10, 3, 0, 8, 11});
  const std::vector<std::vector<uint64_t>> expected = {
      {8, 10, 3, 0, 8, 11},  // step 0
      {5, 7, 0, 3, 5, 8},    // step 1
      {2, 4, 3, 0, 2, 5},    // step 2
      {0, 2, 1, 2, 0, 3},    // step 3
      {1, 1, 0, 1, 0, 2},    // step 4
      {0, 0, 1, 0, 0, 1},    // step 5
      {1, 0, 0, 0, 0, 0},    // step 6
  };
  EXPECT_EQ(trace, expected);
}

TEST(SimulatePolyphaseTest, SingleRunIsAlreadyDone) {
  auto trace = SimulatePolyphase({1, 0, 0});
  EXPECT_EQ(trace.size(), 1u);
}

TEST(SimulatePolyphaseTest, AllRunsOnOneTape) {
  auto trace = SimulatePolyphase({5, 0, 0});
  // Degenerate: all runs merge at once into the empty tape.
  EXPECT_EQ(trace.back(), std::vector<uint64_t>({0, 5 * 0 + 1, 0}));
  uint64_t total = std::accumulate(trace.back().begin(), trace.back().end(),
                                   uint64_t{0});
  EXPECT_EQ(total, 1u);
}

TEST(SimulatePolyphaseTest, PerfectFibonacciDistribution) {
  // {13, 8, 0} is a Fibonacci distribution for 3 tapes: the classic ideal.
  auto trace = SimulatePolyphase({13, 8, 0});
  uint64_t total = std::accumulate(trace.back().begin(), trace.back().end(),
                                   uint64_t{0});
  EXPECT_EQ(total, 1u);
  // Every intermediate state keeps exactly one empty tape until the end.
  for (size_t i = 0; i + 1 < trace.size(); ++i) {
    EXPECT_EQ(std::count(trace[i].begin(), trace[i].end(), 0u), 1);
  }
}

RunInfo MakeRun(Env* env, const std::string& path,
                const std::vector<Key>& keys) {
  EXPECT_TRUE(WriteAllRecords(env, path, keys).ok());
  RunInfo run;
  RunSegment seg;
  seg.path = path;
  seg.count = keys.size();
  run.segments.push_back(std::move(seg));
  run.length = keys.size();
  return run;
}

TEST(PolyphaseMergeRunsTest, ProducesSortedOutput) {
  MemEnv env;
  Random rng(9);
  std::vector<RunInfo> runs;
  std::vector<Key> all;
  for (int r = 0; r < 30; ++r) {
    std::vector<Key> keys(rng.Uniform(40) + 1);
    for (Key& k : keys) k = static_cast<Key>(rng.Uniform(100000));
    std::sort(keys.begin(), keys.end());
    all.insert(all.end(), keys.begin(), keys.end());
    runs.push_back(MakeRun(&env, "r" + std::to_string(r), keys));
  }
  std::sort(all.begin(), all.end());
  MergeOptions options;
  options.temp_dir = "tmp";
  options.block_bytes = 256;
  MergeStats stats;
  ASSERT_TWRS_OK(
      PolyphaseMergeRuns(&env, runs, /*num_tapes=*/4, options, "out", &stats));
  std::vector<Key> keys;
  ASSERT_TWRS_OK(ReadAllRecords(&env, "out", &keys));
  EXPECT_EQ(keys, all);
  EXPECT_GT(stats.merge_steps, 0u);
  EXPECT_EQ(env.FileCount(), 1u);  // temps cleaned
}

TEST(PolyphaseMergeRunsTest, SingleRunCopiesToOutput) {
  MemEnv env;
  std::vector<RunInfo> runs = {MakeRun(&env, "r0", {4, 5, 6})};
  MergeOptions options;
  options.temp_dir = "tmp";
  ASSERT_TWRS_OK(
      PolyphaseMergeRuns(&env, runs, 3, options, "out", nullptr));
  std::vector<Key> keys;
  ASSERT_TWRS_OK(ReadAllRecords(&env, "out", &keys));
  EXPECT_EQ(keys, std::vector<Key>({4, 5, 6}));
}

TEST(PolyphaseMergeRunsTest, EmptyInput) {
  MemEnv env;
  MergeOptions options;
  options.temp_dir = "tmp";
  ASSERT_TWRS_OK(PolyphaseMergeRuns(&env, {}, 3, options, "out", nullptr));
  std::vector<Key> keys;
  ASSERT_TWRS_OK(ReadAllRecords(&env, "out", &keys));
  EXPECT_TRUE(keys.empty());
}

TEST(PolyphaseMergeRunsTest, RejectsTooFewTapes) {
  MemEnv env;
  MergeOptions options;
  EXPECT_TRUE(PolyphaseMergeRuns(&env, {}, 2, options, "out", nullptr)
                  .IsInvalidArgument());
}

TEST(PolyphaseMergeRunsTest, MatchesMergeRunsOutput) {
  // Both merge strategies must produce identical sorted files.
  Random rng(10);
  std::vector<std::vector<Key>> run_keys;
  for (int r = 0; r < 12; ++r) {
    std::vector<Key> keys(rng.Uniform(30) + 1);
    for (Key& k : keys) k = static_cast<Key>(rng.Uniform(5000));
    std::sort(keys.begin(), keys.end());
    run_keys.push_back(std::move(keys));
  }

  MemEnv env1;
  std::vector<RunInfo> runs1;
  for (size_t r = 0; r < run_keys.size(); ++r) {
    runs1.push_back(MakeRun(&env1, "r" + std::to_string(r), run_keys[r]));
  }
  MergeOptions options;
  options.temp_dir = "tmp";
  ASSERT_TWRS_OK(PolyphaseMergeRuns(&env1, runs1, 5, options, "out", nullptr));
  std::vector<Key> poly;
  ASSERT_TWRS_OK(ReadAllRecords(&env1, "out", &poly));

  MemEnv env2;
  std::vector<RunInfo> runs2;
  for (size_t r = 0; r < run_keys.size(); ++r) {
    runs2.push_back(MakeRun(&env2, "r" + std::to_string(r), run_keys[r]));
  }
  ASSERT_TWRS_OK(MergeRuns(&env2, runs2, options, "out", nullptr));
  std::vector<Key> plain;
  ASSERT_TWRS_OK(ReadAllRecords(&env2, "out", &plain));

  EXPECT_EQ(poly, plain);
}

}  // namespace
}  // namespace twrs
