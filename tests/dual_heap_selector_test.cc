#include "select/dual_heap_selector.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/record_source.h"
#include "select/topk.h"
#include "util/random.h"

namespace twrs {
namespace {

std::vector<Key> Select(const std::vector<Key>& input, size_t k,
                        SelectOrder order) {
  DualHeapSelector selector(k, order);
  for (Key key : input) selector.Add(key);
  return selector.Take();
}

/// Reference: full sort, keep K from the requested end, ascending output.
std::vector<Key> Reference(std::vector<Key> input, size_t k,
                           SelectOrder order) {
  std::sort(input.begin(), input.end());
  k = std::min(k, input.size());
  if (order == SelectOrder::kAscending) {
    input.resize(k);
  } else {
    input.erase(input.begin(), input.end() - static_cast<ptrdiff_t>(k));
  }
  return input;
}

TEST(DualHeapSelectorTest, KZeroSelectsNothing) {
  DualHeapSelector selector(0, SelectOrder::kAscending);
  for (Key k : {5, 1, 9}) selector.Add(k);
  EXPECT_EQ(selector.consumed(), 3u);
  EXPECT_EQ(selector.size(), 0u);
  EXPECT_TRUE(selector.Take().empty());
}

TEST(DualHeapSelectorTest, KOneKeepsTheExtremum) {
  EXPECT_EQ(Select({7, 3, 9, 1, 5}, 1, SelectOrder::kAscending),
            std::vector<Key>({1}));
  EXPECT_EQ(Select({7, 3, 9, 1, 5}, 1, SelectOrder::kDescending),
            std::vector<Key>({9}));
}

TEST(DualHeapSelectorTest, KAtLeastNKeepsEverythingSorted) {
  const std::vector<Key> input = {7, 3, 9, 1, 5};
  const std::vector<Key> sorted = {1, 3, 5, 7, 9};
  EXPECT_EQ(Select(input, 5, SelectOrder::kAscending), sorted);
  EXPECT_EQ(Select(input, 100, SelectOrder::kAscending), sorted);
  EXPECT_EQ(Select(input, 100, SelectOrder::kDescending), sorted);
}

TEST(DualHeapSelectorTest, AllDuplicates) {
  const std::vector<Key> input(20, 42);
  EXPECT_EQ(Select(input, 3, SelectOrder::kAscending),
            std::vector<Key>({42, 42, 42}));
  EXPECT_EQ(Select(input, 3, SelectOrder::kDescending),
            std::vector<Key>({42, 42, 42}));
}

TEST(DualHeapSelectorTest, TiesStraddlingTheBoundary) {
  // Three 5s compete for one slot after {1, 2}: exactly one survives.
  EXPECT_EQ(Select({5, 5, 5, 1, 2}, 3, SelectOrder::kAscending),
            std::vector<Key>({1, 2, 5}));
  // Descending mirror: three 1s compete below {5, 2}.
  EXPECT_EQ(Select({1, 1, 1, 5, 2}, 3, SelectOrder::kDescending),
            std::vector<Key>({1, 2, 5}));
}

TEST(DualHeapSelectorTest, DescendingKeepsLargestButOutputsAscending) {
  EXPECT_EQ(Select({4, 8, 2, 6, 10}, 2, SelectOrder::kDescending),
            std::vector<Key>({8, 10}));
}

TEST(DualHeapSelectorTest, BoundTracksTheKthRecord) {
  DualHeapSelector selector(3, SelectOrder::kAscending);
  for (Key k : {10, 20, 30}) selector.Add(k);
  EXPECT_EQ(selector.bound(), 30);  // largest kept key
  selector.Add(5);                  // evicts 30
  EXPECT_EQ(selector.bound(), 20);
  selector.Add(25);  // above the bound: rejected
  EXPECT_EQ(selector.bound(), 20);
  EXPECT_EQ(selector.Take(), std::vector<Key>({5, 10, 20}));
}

TEST(DualHeapSelectorTest, TakeResetsTheSelectorForReuse) {
  DualHeapSelector selector(2, SelectOrder::kAscending);
  for (Key k : {3, 1, 2}) selector.Add(k);
  EXPECT_EQ(selector.consumed(), 3u);
  EXPECT_EQ(selector.Take(), std::vector<Key>({1, 2}));
  EXPECT_EQ(selector.consumed(), 0u);
  EXPECT_EQ(selector.size(), 0u);
  for (Key k : {9, 8, 7}) selector.Add(k);
  EXPECT_EQ(selector.Take(), std::vector<Key>({7, 8}));
}

TEST(DualHeapSelectorTest, RandomizedMatchesPartialSortBothOrders) {
  Random rng(123);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = 1 + rng.Uniform(500);
    std::vector<Key> input(n);
    for (Key& key : input) {
      key = static_cast<Key>(rng.Uniform(100));  // dense: many ties
    }
    const size_t k = static_cast<size_t>(rng.Uniform(n + 10));
    for (SelectOrder order :
         {SelectOrder::kAscending, SelectOrder::kDescending}) {
      EXPECT_EQ(Select(input, k, order), Reference(input, k, order))
          << "trial " << trial << " n " << n << " k " << k << " order "
          << SelectOrderName(order);
    }
  }
}

TEST(DualHeapSelectorTest, SelectTopKDrainsASource) {
  const std::vector<Key> input = {9, 2, 7, 4, 2};
  VectorSource source(input);
  std::vector<Key> out;
  uint64_t consumed = 0;
  SelectTopK(&source, 3, SelectOrder::kAscending, &out, &consumed);
  EXPECT_EQ(out, std::vector<Key>({2, 2, 4}));
  EXPECT_EQ(consumed, 5u);
}

TEST(DualHeapSelectorTest, OrderAndStrategyNames) {
  EXPECT_STREQ(SelectOrderName(SelectOrder::kAscending), "asc");
  EXPECT_STREQ(SelectOrderName(SelectOrder::kDescending), "desc");
  EXPECT_STREQ(TopKStrategyName(TopKStrategy::kAuto), "auto");
  EXPECT_STREQ(TopKStrategyName(TopKStrategy::kDualHeap), "dual-heap");
  EXPECT_STREQ(TopKStrategyName(TopKStrategy::kRunPruningMerge),
               "run-pruning-merge");
}

TEST(DualHeapSelectorTest, PlanTopKStrategyBoundaries) {
  // Dual-heap exactly while the K-record selector fits the budget.
  EXPECT_EQ(PlanTopKStrategy(1, 1024), TopKStrategy::kDualHeap);
  EXPECT_EQ(PlanTopKStrategy(1024, 1024), TopKStrategy::kDualHeap);
  EXPECT_EQ(PlanTopKStrategy(1025, 1024), TopKStrategy::kRunPruningMerge);
  EXPECT_EQ(PlanTopKStrategy(1, 0), TopKStrategy::kRunPruningMerge);
}

}  // namespace
}  // namespace twrs
