#include <algorithm>
#include <cstdint>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "simd/dispatch.h"
#include "simd/kernels.h"

namespace twrs {
namespace simd {
namespace {

// Input families every kernel is exercised on, at sizes chosen to hit the
// empty, sub-vector, exact-vector-multiple, and odd-tail paths.
std::vector<size_t> TestSizes() {
  return {0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 31, 32, 33,
          63, 64, 100, 255, 256, 1000, 4096, 5000};
}

enum class Family { kRandom, kSorted, kReverse, kDupHeavy, kExtremes };

std::vector<Key> MakeInput(Family family, size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<Key> keys(n);
  std::uniform_int_distribution<Key> wide(std::numeric_limits<Key>::min(),
                                          std::numeric_limits<Key>::max());
  std::uniform_int_distribution<Key> narrow(-3, 3);
  for (size_t i = 0; i < n; ++i) {
    switch (family) {
      case Family::kRandom:
        keys[i] = wide(rng);
        break;
      case Family::kSorted:
      case Family::kReverse:
        keys[i] = static_cast<Key>(i) - static_cast<Key>(n / 2);
        break;
      case Family::kDupHeavy:
        keys[i] = narrow(rng);
        break;
      case Family::kExtremes: {
        const int pick = static_cast<int>(wide(rng) & 3);
        keys[i] = pick == 0   ? std::numeric_limits<Key>::min()
                  : pick == 1 ? std::numeric_limits<Key>::max()
                  : pick == 2 ? 0
                              : wide(rng);
        break;
      }
    }
  }
  if (family == Family::kReverse) std::reverse(keys.begin(), keys.end());
  return keys;
}

std::vector<Family> AllFamilies() {
  return {Family::kRandom, Family::kSorted, Family::kReverse,
          Family::kDupHeavy, Family::kExtremes};
}

/// Runs every kernel under a pinned dispatch level and checks the output
/// byte-identical to the scalar reference. The kAvx2 instantiation skips
/// itself on hosts without AVX2 (the forced-scalar CI variant still runs
/// the kScalar half there).
class SimdKernelsTest : public ::testing::TestWithParam<DispatchLevel> {
 protected:
  void SetUp() override {
    if (GetParam() == DispatchLevel::kAvx2 && !CpuSupportsAvx2()) {
      GTEST_SKIP() << "host lacks AVX2";
    }
    ForceScalar(GetParam() == DispatchLevel::kScalar);
    ASSERT_EQ(ActiveDispatchLevel(), GetParam());
  }

  void TearDown() override { ClearForceScalarOverride(); }
};

TEST_P(SimdKernelsTest, SortKeysBlockMatchesScalar) {
  for (Family family : AllFamilies()) {
    for (size_t n : TestSizes()) {
      std::vector<Key> keys = MakeInput(family, n, 17 * n + 1);
      std::vector<Key> expected = keys;
      internal::SortKeysBlockScalar(expected.data(), expected.size());
      SortKeysBlock(keys.data(), keys.size());
      ASSERT_EQ(keys, expected) << "family=" << static_cast<int>(family)
                                << " n=" << n;
    }
  }
}

TEST_P(SimdKernelsTest, PartitionBySplittersMatchesScalar) {
  // Splitter widths straddle the vector path's 64-splitter cap; the
  // duplicate-splitter set pins the upper_bound tie convention.
  const std::vector<std::vector<Key>> splitter_sets = {
      {},
      {0},
      {-100, 0, 100},
      {5, 5, 5},
      MakeInput(Family::kSorted, 31, 3),
      MakeInput(Family::kSorted, 64, 4),
      MakeInput(Family::kSorted, 65, 5),
      MakeInput(Family::kSorted, 200, 6),
  };
  for (const std::vector<Key>& raw : splitter_sets) {
    std::vector<Key> splitters = raw;
    std::sort(splitters.begin(), splitters.end());
    for (Family family : AllFamilies()) {
      for (size_t n : TestSizes()) {
        std::vector<Key> keys = MakeInput(family, n, 29 * n + 7);
        std::vector<uint32_t> got(n, 12345);
        std::vector<uint32_t> expected(n, 54321);
        internal::PartitionBySplittersScalar(keys.data(), n, splitters.data(),
                                             splitters.size(),
                                             expected.data());
        PartitionBySplitters(keys.data(), n, splitters.data(),
                             splitters.size(), got.data());
        ASSERT_EQ(got, expected)
            << "splitters=" << splitters.size() << " n=" << n
            << " family=" << static_cast<int>(family);
      }
    }
  }
}

TEST_P(SimdKernelsTest, EncodeDecodeRoundTripMatchesScalar) {
  for (Family family : AllFamilies()) {
    for (size_t n : TestSizes()) {
      std::vector<Key> keys = MakeInput(family, n, 41 * n + 3);
      std::vector<uint8_t> bytes(n * kRecordBytes, 0xAB);
      std::vector<uint8_t> expected_bytes(n * kRecordBytes, 0xCD);
      internal::EncodeKeysBatchScalar(keys.data(), n, expected_bytes.data());
      EncodeKeysBatch(keys.data(), n, bytes.data());
      ASSERT_EQ(bytes, expected_bytes) << "n=" << n;
      // The byte stream must equal n applications of the per-record codec.
      for (size_t i = 0; i < n; ++i) {
        uint8_t one[kRecordBytes];
        EncodeKey(keys[i], one);
        ASSERT_EQ(0, std::memcmp(one, bytes.data() + i * kRecordBytes,
                                 kRecordBytes));
      }
      std::vector<Key> decoded(n, -1);
      DecodeKeysBatch(bytes.data(), n, decoded.data());
      ASSERT_EQ(decoded, keys) << "n=" << n;
    }
  }
}

TEST_P(SimdKernelsTest, MinIndexNMatchesScalar) {
  for (Family family : AllFamilies()) {
    for (size_t n : TestSizes()) {
      if (n == 0) continue;  // MinIndexN requires n >= 1
      std::vector<Key> keys = MakeInput(family, n, 53 * n + 9);
      const size_t expected = internal::MinIndexNScalar(keys.data(), n);
      ASSERT_EQ(MinIndexN(keys.data(), n), expected)
          << "family=" << static_cast<int>(family) << " n=" << n;
    }
  }
}

TEST_P(SimdKernelsTest, MinIndexNTiesResolveToLowestIndex) {
  // All-equal input: the loser-tree tie-break (lowest way wins) demands
  // index 0 regardless of dispatch level.
  for (size_t n : {1, 2, 3, 4, 5, 7, 8, 9, 16}) {
    std::vector<Key> keys(n, 42);
    EXPECT_EQ(MinIndexN(keys.data(), n), 0u) << "n=" << n;
    if (n >= 6) {
      keys[1] = 7;
      keys[5] = 7;
      EXPECT_EQ(MinIndexN(keys.data(), n), 1u) << "n=" << n;
    }
  }
}

TEST_P(SimdKernelsTest, KernelCallsCountDispatchedLevel) {
  const DispatchLevel level = GetParam();
  const uint64_t before = KernelCalls(Kernel::kSortKeys, level);
  std::vector<Key> keys = MakeInput(Family::kRandom, 64, 99);
  SortKeysBlock(keys.data(), keys.size());
  SortKeysBlock(keys.data(), keys.size());
  EXPECT_EQ(KernelCalls(Kernel::kSortKeys, level), before + 2);
}

INSTANTIATE_TEST_SUITE_P(AllLevels, SimdKernelsTest,
                         ::testing::Values(DispatchLevel::kScalar,
                                           DispatchLevel::kAvx2),
                         [](const ::testing::TestParamInfo<DispatchLevel>& i) {
                           return std::string(DispatchLevelName(i.param));
                         });

TEST(SimdDispatchTest, ForceScalarOverridesAndRestores) {
  ForceScalar(true);
  EXPECT_EQ(ActiveDispatchLevel(), DispatchLevel::kScalar);
  ForceScalar(false);
  EXPECT_EQ(ActiveDispatchLevel(), CpuSupportsAvx2() ? DispatchLevel::kAvx2
                                                     : DispatchLevel::kScalar);
  ClearForceScalarOverride();
}

TEST(SimdDispatchTest, NamesAreStable) {
  EXPECT_STREQ(DispatchLevelName(DispatchLevel::kScalar), "scalar");
  EXPECT_STREQ(DispatchLevelName(DispatchLevel::kAvx2), "avx2");
  EXPECT_STREQ(KernelName(Kernel::kSortKeys), "sort_block");
  EXPECT_STREQ(KernelName(Kernel::kPartition), "partition");
  EXPECT_STREQ(KernelName(Kernel::kEncode), "encode");
  EXPECT_STREQ(KernelName(Kernel::kDecode), "decode");
  EXPECT_STREQ(KernelName(Kernel::kMinIndex), "min_index");
}

TEST(SimdDispatchTest, PublishKernelCountersIsIdempotentPerRegistry) {
  std::vector<Key> keys = MakeInput(Family::kRandom, 32, 7);
  SortKeysBlock(keys.data(), keys.size());

  MetricsRegistry metrics;
  PublishKernelCounters(&metrics);
  const DispatchLevel level = ActiveDispatchLevel();
  const std::string name = std::string("simd.sort_block.") +
                           DispatchLevelName(level) + "_calls";
  const uint64_t total = KernelCalls(Kernel::kSortKeys, level);
  EXPECT_EQ(metrics.Counter(name)->value(), total);

  // Publishing again without new kernel activity must not double-count.
  PublishKernelCounters(&metrics);
  EXPECT_EQ(metrics.Counter(name)->value(), total);

  // New activity flows through as a delta on the next publish.
  SortKeysBlock(keys.data(), keys.size());
  PublishKernelCounters(&metrics);
  EXPECT_EQ(metrics.Counter(name)->value(), total + 1);

  PublishKernelCounters(nullptr);  // must be a safe no-op
}

}  // namespace
}  // namespace simd
}  // namespace twrs
