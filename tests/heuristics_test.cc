#include "core/heuristics.h"

#include <gtest/gtest.h>

#include "core/input_buffer.h"
#include "core/record_source.h"

namespace twrs {
namespace {

TaggedRecord R(Key key, uint32_t run = 0) { return TaggedRecord{key, run}; }

TEST(HeuristicNamesTest, AllNamed) {
  EXPECT_STREQ(InputHeuristicName(InputHeuristic::kRandom), "Random");
  EXPECT_STREQ(InputHeuristicName(InputHeuristic::kAlternate), "Alternate");
  EXPECT_STREQ(InputHeuristicName(InputHeuristic::kMean), "Mean");
  EXPECT_STREQ(InputHeuristicName(InputHeuristic::kMedian), "Median");
  EXPECT_STREQ(InputHeuristicName(InputHeuristic::kUseful), "Useful");
  EXPECT_STREQ(InputHeuristicName(InputHeuristic::kBalancing), "Balancing");
  EXPECT_STREQ(OutputHeuristicName(OutputHeuristic::kRandom), "Random");
  EXPECT_STREQ(OutputHeuristicName(OutputHeuristic::kAlternate), "Alternate");
  EXPECT_STREQ(OutputHeuristicName(OutputHeuristic::kUseful), "Useful");
  EXPECT_STREQ(OutputHeuristicName(OutputHeuristic::kBalancing), "Balancing");
  EXPECT_STREQ(OutputHeuristicName(OutputHeuristic::kMinDistance),
               "MinDistance");
}

TEST(HeuristicsTest, AlternateInputAlternates) {
  HeuristicEngine engine(InputHeuristic::kAlternate, OutputHeuristic::kRandom,
                         1);
  DoubleHeap heap(4);
  const HeapSide first = engine.ChooseInsertSide(0, nullptr, heap);
  const HeapSide second = engine.ChooseInsertSide(0, nullptr, heap);
  EXPECT_NE(first, second);
  EXPECT_EQ(engine.ChooseInsertSide(0, nullptr, heap), first);
}

TEST(HeuristicsTest, MeanReproducesPaperExampleDecisions) {
  // §4.5: with input {40, 50, 39, 51, ...}, 40 goes to the BottomHeap
  // (below the sample mean) and 50 to the TopHeap (above it). The engine
  // pools the records seen so far with the buffered lookahead, which
  // reproduces the same decisions as the thesis' window-only mean.
  HeuristicEngine engine(InputHeuristic::kMean, OutputHeuristic::kRandom, 1);
  VectorSource source({40, 50, 39, 51});
  InputBuffer buffer(&source, 4);
  DoubleHeap heap(4);
  Key k;
  ASSERT_TRUE(buffer.Next(&k));
  engine.OnRecordSeen(k);  // seen {40}, lookahead {50, 39, 51}: mean 45
  EXPECT_EQ(engine.ChooseInsertSide(40, &buffer, heap), HeapSide::kBottom);
  ASSERT_TRUE(buffer.Next(&k));
  engine.OnRecordSeen(k);  // seen {40, 50}, lookahead {39, 51}: mean 45
  EXPECT_EQ(engine.ChooseInsertSide(50, &buffer, heap), HeapSide::kTop);
}

TEST(HeuristicsTest, MeanFallsBackToRunningMeanWithoutBuffer) {
  HeuristicEngine engine(InputHeuristic::kMean, OutputHeuristic::kRandom, 1);
  DoubleHeap heap(4);
  engine.OnRecordSeen(10);
  engine.OnRecordSeen(20);  // running mean 15
  EXPECT_EQ(engine.ChooseInsertSide(16, nullptr, heap), HeapSide::kTop);
  EXPECT_EQ(engine.ChooseInsertSide(14, nullptr, heap), HeapSide::kBottom);
}

TEST(HeuristicsTest, MedianUsesBufferWindow) {
  HeuristicEngine engine(InputHeuristic::kMedian, OutputHeuristic::kRandom, 1);
  VectorSource source({10, 20, 100, 30});
  InputBuffer buffer(&source, 4);
  DoubleHeap heap(4);
  Key k;
  ASSERT_TRUE(buffer.Next(&k));  // window {10,20,100,30}, median 20
  EXPECT_EQ(engine.ChooseInsertSide(25, &buffer, heap), HeapSide::kTop);
  EXPECT_EQ(engine.ChooseInsertSide(15, &buffer, heap), HeapSide::kBottom);
}

TEST(HeuristicsTest, BalancingInsertsIntoSmallerHeap) {
  HeuristicEngine engine(InputHeuristic::kBalancing, OutputHeuristic::kRandom,
                         1);
  DoubleHeap heap(8);
  heap.Push(HeapSide::kBottom, R(1));
  heap.Push(HeapSide::kBottom, R(2));
  heap.Push(HeapSide::kTop, R(3));
  EXPECT_EQ(engine.ChooseInsertSide(0, nullptr, heap), HeapSide::kTop);
}

TEST(HeuristicsTest, BalancingRebalancesAtRunStart) {
  HeuristicEngine engine(InputHeuristic::kBalancing, OutputHeuristic::kRandom,
                         1);
  DoubleHeap heap(16);
  for (int i = 0; i < 10; ++i) heap.Push(HeapSide::kBottom, R(i));
  engine.OnRunStart(&heap);
  EXPECT_LE(heap.SideSize(HeapSide::kBottom), 6u);
  EXPECT_GE(heap.SideSize(HeapSide::kTop), 4u);
  EXPECT_EQ(heap.size(), 10u);
  EXPECT_TRUE(heap.IsValid());
}

TEST(HeuristicsTest, UsefulPrefersProductiveSide) {
  HeuristicEngine engine(InputHeuristic::kUseful, OutputHeuristic::kUseful, 1);
  DoubleHeap heap(8);
  heap.Push(HeapSide::kBottom, R(1));
  heap.Push(HeapSide::kBottom, R(2));
  heap.Push(HeapSide::kTop, R(10));
  heap.Push(HeapSide::kTop, R(11));
  // Record three outputs from Top, none from Bottom.
  engine.OnOutput(HeapSide::kTop, 10);
  engine.OnOutput(HeapSide::kTop, 11);
  engine.OnOutput(HeapSide::kTop, 12);
  EXPECT_EQ(engine.ChooseInsertSide(5, nullptr, heap), HeapSide::kTop);
  EXPECT_EQ(engine.ChooseOutputSide(heap), HeapSide::kTop);
}

TEST(HeuristicsTest, OutputAlternateStartsWithBottom) {
  HeuristicEngine engine(InputHeuristic::kRandom, OutputHeuristic::kAlternate,
                         1);
  DoubleHeap heap(4);
  heap.Push(HeapSide::kBottom, R(1));
  heap.Push(HeapSide::kTop, R(2));
  EXPECT_EQ(engine.ChooseOutputSide(heap), HeapSide::kBottom);
  EXPECT_EQ(engine.ChooseOutputSide(heap), HeapSide::kTop);
  EXPECT_EQ(engine.ChooseOutputSide(heap), HeapSide::kBottom);
  // A new run restarts the alternation at the BottomHeap.
  engine.OnRunStart(nullptr);
  EXPECT_EQ(engine.ChooseOutputSide(heap), HeapSide::kBottom);
}

TEST(HeuristicsTest, OutputBalancingPopsLargerHeap) {
  HeuristicEngine engine(InputHeuristic::kRandom, OutputHeuristic::kBalancing,
                         1);
  DoubleHeap heap(8);
  heap.Push(HeapSide::kBottom, R(1));
  heap.Push(HeapSide::kBottom, R(2));
  heap.Push(HeapSide::kBottom, R(3));
  heap.Push(HeapSide::kTop, R(4));
  EXPECT_EQ(engine.ChooseOutputSide(heap), HeapSide::kBottom);
}

TEST(HeuristicsTest, MinDistancePopsClosestToFirstOutput) {
  HeuristicEngine engine(InputHeuristic::kRandom,
                         OutputHeuristic::kMinDistance, 1);
  DoubleHeap heap(8);
  heap.Push(HeapSide::kBottom, R(90));
  heap.Push(HeapSide::kTop, R(200));
  engine.OnOutput(HeapSide::kTop, 100);  // first output = 100
  // |90-100| = 10 < |200-100| = 100.
  EXPECT_EQ(engine.ChooseOutputSide(heap), HeapSide::kBottom);
  engine.OnRunStart(nullptr);  // new run forgets the reference
  // Without a first output the choice is random; just check it runs.
  (void)engine.ChooseOutputSide(heap);
}

TEST(HeuristicsTest, RandomSidesAreBothUsed) {
  HeuristicEngine engine(InputHeuristic::kRandom, OutputHeuristic::kRandom,
                         123);
  DoubleHeap heap(4);
  heap.Push(HeapSide::kBottom, R(1));
  heap.Push(HeapSide::kTop, R(2));
  int bottom = 0;
  for (int i = 0; i < 200; ++i) {
    if (engine.ChooseInsertSide(0, nullptr, heap) == HeapSide::kBottom) {
      ++bottom;
    }
  }
  EXPECT_GT(bottom, 60);
  EXPECT_LT(bottom, 140);
}

}  // namespace
}  // namespace twrs
