#include "io/reverse_run_file.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "io/mem_env.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace twrs {
namespace {

std::vector<Key> ReadBack(Env* env, const std::string& base,
                          uint64_t num_files = 0) {
  ReverseRunReader reader(env, base, num_files);
  EXPECT_TRUE(reader.status().ok()) << reader.status().ToString();
  std::vector<Key> out;
  Key key;
  bool eof;
  for (;;) {
    Status s = reader.Next(&key, &eof);
    EXPECT_TRUE(s.ok()) << s.ToString();
    if (!s.ok() || eof) break;
    out.push_back(key);
  }
  return out;
}

// The format must behave identically across page geometries, including ones
// that force multiple physical files and partial final pages.
struct Geometry {
  uint64_t pages_per_file;
  uint64_t page_bytes;
  uint64_t records;
};

class ReverseRunFileTest : public ::testing::TestWithParam<Geometry> {};

TEST_P(ReverseRunFileTest, DecreasingStreamReadsBackAscending) {
  const Geometry geometry = GetParam();
  MemEnv env;
  ReverseRunFileOptions options;
  options.pages_per_file = geometry.pages_per_file;
  options.page_bytes = geometry.page_bytes;

  std::vector<Key> keys(geometry.records);
  for (uint64_t i = 0; i < geometry.records; ++i) {
    keys[i] = static_cast<Key>(geometry.records - i) * 10;  // decreasing
  }
  ReverseRunWriter writer(&env, "s", options);
  ASSERT_TWRS_OK(writer.status());
  for (Key k : keys) ASSERT_TWRS_OK(writer.Append(k));
  ASSERT_TWRS_OK(writer.Finish());
  EXPECT_EQ(writer.count(), geometry.records);

  std::vector<Key> expected = keys;
  std::reverse(expected.begin(), expected.end());
  EXPECT_EQ(ReadBack(&env, "s", writer.num_files()), expected);
  // Self-describing: the reader can discover the file count from file 0.
  EXPECT_EQ(ReadBack(&env, "s", 0), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ReverseRunFileTest,
    ::testing::Values(Geometry{2, 64, 1},        // tiny file, header + 1 page
                      Geometry{2, 64, 7},        // partial page
                      Geometry{2, 64, 8},        // exact page
                      Geometry{2, 64, 9},        // spills into second file
                      Geometry{4, 64, 100},      // many files
                      Geometry{4, 128, 48},      // exact multi-file boundary
                      Geometry{1024, 4096, 1000}));  // single large file

TEST(ReverseRunFileBasicTest, EmptyStreamCreatesNoFiles) {
  MemEnv env;
  ReverseRunWriter writer(&env, "s");
  ASSERT_TWRS_OK(writer.Finish());
  EXPECT_EQ(writer.num_files(), 0u);
  EXPECT_EQ(env.FileCount(), 0u);
  EXPECT_TRUE(ReadBack(&env, "s", 0).empty());
}

TEST(ReverseRunFileBasicTest, DuplicatesAreAllowed) {
  MemEnv env;
  ReverseRunFileOptions options;
  options.pages_per_file = 2;
  options.page_bytes = 64;
  ReverseRunWriter writer(&env, "s", options);
  for (Key k : {9, 9, 5, 5, 5, 1}) ASSERT_TWRS_OK(writer.Append(k));
  ASSERT_TWRS_OK(writer.Finish());
  EXPECT_EQ(ReadBack(&env, "s"), std::vector<Key>({1, 5, 5, 5, 9, 9}));
}

TEST(ReverseRunFileBasicTest, IncreasingKeyIsRejected) {
  MemEnv env;
  ReverseRunWriter writer(&env, "s");
  ASSERT_TWRS_OK(writer.Append(5));
  Status s = writer.Append(6);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

TEST(ReverseRunFileBasicTest, NegativeKeysRoundTrip) {
  MemEnv env;
  ReverseRunFileOptions options;
  options.pages_per_file = 2;
  options.page_bytes = 64;
  ReverseRunWriter writer(&env, "s", options);
  for (Key k : {100, 0, -5, -1000}) ASSERT_TWRS_OK(writer.Append(k));
  ASSERT_TWRS_OK(writer.Finish());
  EXPECT_EQ(ReadBack(&env, "s"), std::vector<Key>({-1000, -5, 0, 100}));
}

TEST(ReverseRunFileBasicTest, FileNamesAreIndexed) {
  EXPECT_EQ(ReverseRunWriter::FileName("dir/stream", 0), "dir/stream.0");
  EXPECT_EQ(ReverseRunWriter::FileName("dir/stream", 12), "dir/stream.12");
}

TEST(ReverseRunFileBasicTest, InvalidOptionsAreRejected) {
  MemEnv env;
  ReverseRunFileOptions bad_page;
  bad_page.page_bytes = 60;  // not a multiple of the record size
  ReverseRunWriter w1(&env, "s", bad_page);
  EXPECT_TRUE(w1.status().IsInvalidArgument());

  ReverseRunFileOptions bad_pages;
  bad_pages.pages_per_file = 1;  // no room for data beside the header
  ReverseRunWriter w2(&env, "s", bad_pages);
  EXPECT_TRUE(w2.status().IsInvalidArgument());
}

TEST(ReverseRunFileBasicTest, UnfinishedStreamIsDetected) {
  MemEnv env;
  ReverseRunFileOptions options;
  options.pages_per_file = 2;
  options.page_bytes = 64;
  {
    ReverseRunWriter writer(&env, "s", options);
    // Write enough to complete file 0 but never call Finish(), so the
    // total-files patch is missing. (Destructor calls Finish; emulate the
    // crash by corrupting the field afterwards.)
    for (int i = 20; i > 0; --i) ASSERT_TWRS_OK(writer.Append(i));
    ASSERT_TWRS_OK(writer.Finish());
  }
  // Zero out the total-files header field of file 0.
  std::unique_ptr<RandomRWFile> f;
  ASSERT_TWRS_OK(env.ReopenRandomRWFile("s.0", &f));
  const uint8_t zeros[8] = {0};
  ASSERT_TWRS_OK(f->WriteAt(56, zeros, 8));
  ASSERT_TWRS_OK(f->Close());
  ReverseRunReader reader(&env, "s", 0);
  EXPECT_TRUE(reader.status().IsCorruption()) << reader.status().ToString();
}

TEST(ReverseRunFileBasicTest, RandomDecreasingStreamsProperty) {
  Random rng(1234);
  for (int trial = 0; trial < 20; ++trial) {
    MemEnv env;
    ReverseRunFileOptions options;
    options.pages_per_file = 2 + rng.Uniform(4);
    options.page_bytes = 64 * (1 + rng.Uniform(4));
    const int n = static_cast<int>(rng.Uniform(200));
    std::vector<Key> keys(n);
    Key current = 1 << 20;
    for (Key& k : keys) {
      current -= static_cast<Key>(rng.Uniform(100));  // non-increasing
      k = current;
    }
    ReverseRunWriter writer(&env, "s", options);
    for (Key k : keys) ASSERT_TWRS_OK(writer.Append(k));
    ASSERT_TWRS_OK(writer.Finish());
    std::vector<Key> expected = keys;
    std::reverse(expected.begin(), expected.end());
    EXPECT_EQ(ReadBack(&env, "s"), expected) << "trial " << trial;
  }
}

}  // namespace
}  // namespace twrs
