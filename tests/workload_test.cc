#include "workload/generators.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "io/mem_env.h"
#include "tests/test_util.h"

namespace twrs {
namespace {

using testing::Drain;

WorkloadOptions Base(uint64_t n, bool noise = true) {
  WorkloadOptions wl;
  wl.num_records = n;
  wl.seed = 1;
  wl.add_noise = noise;
  return wl;
}

TEST(WorkloadTest, DatasetNames) {
  EXPECT_STREQ(DatasetName(Dataset::kSorted), "sorted");
  EXPECT_STREQ(DatasetName(Dataset::kReverseSorted), "reverse-sorted");
  EXPECT_STREQ(DatasetName(Dataset::kAlternating), "alternating");
  EXPECT_STREQ(DatasetName(Dataset::kRandom), "random");
  EXPECT_STREQ(DatasetName(Dataset::kMixed), "mixed");
  EXPECT_STREQ(DatasetName(Dataset::kMixedImbalanced), "mixed-imbalanced");
}

TEST(WorkloadTest, AllDatasetsProduceExactCount) {
  for (int d = 0; d < kNumDatasets; ++d) {
    auto source = MakeWorkload(static_cast<Dataset>(d), Base(1234));
    EXPECT_EQ(Drain(source.get()).size(), 1234u) << "dataset " << d;
  }
}

TEST(WorkloadTest, SortedIsSortedEvenWithNoise) {
  // Base keys step by 1000 while noise is at most 1000, so the trend holds.
  auto keys = Drain(MakeWorkload(Dataset::kSorted, Base(5000)).get());
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST(WorkloadTest, ReverseSortedIsDescending) {
  auto keys = Drain(MakeWorkload(Dataset::kReverseSorted, Base(5000)).get());
  EXPECT_TRUE(std::is_sorted(keys.rbegin(), keys.rend()));
}

TEST(WorkloadTest, NoiseIsBounded) {
  auto clean = Drain(MakeWorkload(Dataset::kSorted, Base(1000, false)).get());
  auto noisy = Drain(MakeWorkload(Dataset::kSorted, Base(1000, true)).get());
  ASSERT_EQ(clean.size(), noisy.size());
  for (size_t i = 0; i < clean.size(); ++i) {
    const Key delta = noisy[i] - clean[i];
    EXPECT_GE(delta, 1);     // §5.2: noise in [1, 1000]
    EXPECT_LE(delta, 1000);
  }
}

TEST(WorkloadTest, SameSeedReproducesStream) {
  auto a = Drain(MakeWorkload(Dataset::kRandom, Base(2000)).get());
  auto b = Drain(MakeWorkload(Dataset::kRandom, Base(2000)).get());
  EXPECT_EQ(a, b);
}

TEST(WorkloadTest, DifferentSeedsDiffer) {
  WorkloadOptions w1 = Base(2000);
  WorkloadOptions w2 = Base(2000);
  w2.seed = 2;
  auto a = Drain(MakeWorkload(Dataset::kRandom, w1).get());
  auto b = Drain(MakeWorkload(Dataset::kRandom, w2).get());
  EXPECT_NE(a, b);
}

TEST(WorkloadTest, AlternatingHasRequestedSections) {
  WorkloadOptions wl = Base(10000, /*noise=*/false);
  wl.sections = 10;
  auto keys = Drain(MakeWorkload(Dataset::kAlternating, wl).get());
  // Count direction changes; 10 sections have 9 boundaries.
  int direction_changes = 0;
  int direction = 0;
  for (size_t i = 1; i < keys.size(); ++i) {
    const int d = keys[i] > keys[i - 1] ? 1 : (keys[i] < keys[i - 1] ? -1 : 0);
    if (d != 0 && direction != 0 && d != direction) ++direction_changes;
    if (d != 0) direction = d;
  }
  EXPECT_EQ(direction_changes, 9);
}

TEST(WorkloadTest, AlternatingSpansFullRange) {
  WorkloadOptions wl = Base(10000, /*noise=*/false);
  wl.sections = 4;
  auto keys = Drain(MakeWorkload(Dataset::kAlternating, wl).get());
  const auto [min_it, max_it] = std::minmax_element(keys.begin(), keys.end());
  EXPECT_EQ(*min_it, 0);
  EXPECT_EQ(*max_it, static_cast<Key>((wl.num_records - 1) * 1000));
}

TEST(WorkloadTest, MixedTrendsDiverge) {
  // Even records rise from the split point, odd records fall from it
  // (§4.5's shape). Check monotonicity of each interleaved branch.
  WorkloadOptions wl = Base(4000, /*noise=*/false);
  auto keys = Drain(MakeWorkload(Dataset::kMixed, wl).get());
  std::vector<Key> up;
  std::vector<Key> down;
  for (size_t i = 0; i < keys.size(); ++i) {
    (i % 2 == 0 ? up : down).push_back(keys[i]);
  }
  EXPECT_TRUE(std::is_sorted(up.begin(), up.end()));
  EXPECT_TRUE(std::is_sorted(down.rbegin(), down.rend()));
  EXPECT_GT(up.front(), down.back());  // branches never cross
}

TEST(WorkloadTest, MixedImbalancedIsOneUpThreeDown) {
  WorkloadOptions wl = Base(4000, /*noise=*/false);
  auto keys = Drain(MakeWorkload(Dataset::kMixedImbalanced, wl).get());
  std::vector<Key> up;
  std::vector<Key> down;
  for (size_t i = 0; i < keys.size(); ++i) {
    (i % 4 == 0 ? up : down).push_back(keys[i]);
  }
  EXPECT_TRUE(std::is_sorted(up.begin(), up.end()));
  EXPECT_TRUE(std::is_sorted(down.rbegin(), down.rend()));
  EXPECT_EQ(down.size(), 3 * up.size());
}

TEST(WorkloadTest, RandomCoversRangeUniformly) {
  WorkloadOptions wl = Base(20000);
  auto keys = Drain(MakeWorkload(Dataset::kRandom, wl).get());
  const Key range = 20000 * 1000;
  int low_half = 0;
  for (Key k : keys) {
    EXPECT_GE(k, 0);
    EXPECT_LE(k, range + 1000);
    if (k < range / 2) ++low_half;
  }
  EXPECT_NEAR(low_half, 10000, 500);
}

TEST(WorkloadTest, FileRoundTrip) {
  MemEnv env;
  WorkloadOptions wl = Base(500);
  ASSERT_TWRS_OK(WriteWorkloadToFile(&env, Dataset::kMixed, wl, "data"));
  FileRecordSource source(&env, "data");
  auto from_file = Drain(&source);
  ASSERT_TWRS_OK(source.status());
  auto direct = Drain(MakeWorkload(Dataset::kMixed, wl).get());
  EXPECT_EQ(from_file, direct);
}

TEST(WorkloadTest, FileSourceMissingFile) {
  MemEnv env;
  FileRecordSource source(&env, "missing");
  Key k;
  EXPECT_FALSE(source.Next(&k));
  EXPECT_FALSE(source.status().ok());
}

}  // namespace
}  // namespace twrs
