#include "merge/partitioned_merge.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "core/record_source.h"
#include "exec/thread_pool.h"
#include "io/mem_env.h"
#include "io/record_io.h"
#include "io/reverse_run_file.h"
#include "merge/external_sorter.h"
#include "merge/kway_merge.h"
#include "merge/merge_plan.h"
#include "tests/test_util.h"
#include "util/cancel.h"
#include "util/random.h"

namespace twrs {
namespace {

RunInfo WriteForwardRun(Env* env, const std::string& path,
                        const std::vector<Key>& sorted_keys) {
  Status s = WriteAllRecords(env, path, sorted_keys);
  EXPECT_TRUE(s.ok()) << s.ToString();
  RunInfo run;
  RunSegment seg;
  seg.path = path;
  seg.count = sorted_keys.size();
  run.segments.push_back(std::move(seg));
  run.length = sorted_keys.size();
  if (!sorted_keys.empty()) {
    run.min_key = sorted_keys.front();
    run.max_key = sorted_keys.back();
  }
  return run;
}

/// A run whose low half is an Appendix-A reverse segment and whose high
/// half is a forward record file — the shape 2WRS runs reach the final
/// merge in.
RunInfo WriteMixedRun(Env* env, const std::string& base,
                      const std::vector<Key>& sorted_keys) {
  const size_t half = sorted_keys.size() / 2;
  RunInfo run;
  {
    ReverseRunFileOptions reverse_options;
    reverse_options.page_bytes = 256;  // several files, partial pages
    reverse_options.pages_per_file = 4;
    ReverseRunWriter writer(env, base + "_rev", reverse_options);
    EXPECT_TRUE(writer.status().ok());
    for (size_t i = half; i > 0; --i) {  // non-increasing order
      Status s = writer.Append(sorted_keys[i - 1]);
      EXPECT_TRUE(s.ok()) << s.ToString();
    }
    Status s = writer.Finish();
    EXPECT_TRUE(s.ok()) << s.ToString();
    RunSegment seg;
    seg.path = base + "_rev";
    seg.reverse = true;
    seg.count = half;
    seg.num_files = writer.num_files();
    run.segments.push_back(std::move(seg));
  }
  {
    std::vector<Key> high(sorted_keys.begin() + half, sorted_keys.end());
    Status s = WriteAllRecords(env, base + "_fwd", high);
    EXPECT_TRUE(s.ok()) << s.ToString();
    RunSegment seg;
    seg.path = base + "_fwd";
    seg.count = high.size();
    run.segments.push_back(std::move(seg));
  }
  run.length = sorted_keys.size();
  if (!sorted_keys.empty()) {
    run.min_key = sorted_keys.front();
    run.max_key = sorted_keys.back();
  }
  return run;
}

std::vector<Key> SortedRandomKeys(size_t n, uint64_t seed, Key range) {
  Random rng(seed);
  std::vector<Key> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    keys.push_back(static_cast<Key>(rng.Uniform(range)));
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

// ------------------------------------------------- PartitionPointsForRun

TEST(PartitionPointsTest, MatchesBruteForceOnMixedRun) {
  MemEnv env;
  std::vector<Key> keys = SortedRandomKeys(5000, 7, 1000);  // duplicate-rich
  RunInfo run = WriteMixedRun(&env, "run", keys);

  const std::vector<Key> splitters = {0, 13, 500, 501, 999};
  std::vector<uint64_t> below;
  ASSERT_TWRS_OK(PartitionPointsForRun(&env, run, splitters, 256, &below));
  ASSERT_EQ(below.size(), splitters.size());
  for (size_t s = 0; s < splitters.size(); ++s) {
    const uint64_t expect = static_cast<uint64_t>(
        std::lower_bound(keys.begin(), keys.end(), splitters[s]) -
        keys.begin());
    EXPECT_EQ(below[s], expect) << "splitter " << splitters[s];
  }
}

TEST(PartitionPointsTest, ForwardRunBinarySearchAllBlockSizes) {
  MemEnv env;
  std::vector<Key> keys = SortedRandomKeys(4097, 3, 1 << 20);
  RunInfo run = WriteForwardRun(&env, "run", keys);
  const std::vector<Key> splitters = {keys.front(), keys[1000], keys[4000],
                                      keys.back()};
  // Block sizes from one-record blocks to larger-than-file.
  for (size_t block_bytes : {kRecordBytes, size_t{64}, size_t{4096},
                             size_t{1} << 20}) {
    std::vector<uint64_t> below;
    ASSERT_TWRS_OK(
        PartitionPointsForRun(&env, run, splitters, block_bytes, &below));
    for (size_t s = 0; s < splitters.size(); ++s) {
      const uint64_t expect = static_cast<uint64_t>(
          std::lower_bound(keys.begin(), keys.end(), splitters[s]) -
          keys.begin());
      EXPECT_EQ(below[s], expect)
          << "splitter " << splitters[s] << " block " << block_bytes;
    }
  }
}

// --------------------------------------------------- sliced RunCursor

TEST(RunCursorSliceTest, SliceYieldsExactSubrangeAcrossMixedSegments) {
  MemEnv env;
  std::vector<Key> keys = SortedRandomKeys(3000, 11, 400);
  RunInfo run = WriteMixedRun(&env, "run", keys);
  for (const auto& slice :
       std::vector<std::pair<uint64_t, uint64_t>>{{0, 3000},
                                                  {0, 1},
                                                  {1499, 2},
                                                  {1400, 300},
                                                  {2999, 1},
                                                  {3000, 0},
                                                  {100, 0}}) {
    RunCursor cursor(&env, run, 128);
    ASSERT_TWRS_OK(cursor.InitSlice(slice.first, slice.second));
    std::vector<Key> got;
    while (cursor.valid()) {
      got.push_back(cursor.key());
      ASSERT_TWRS_OK(cursor.Next());
    }
    const std::vector<Key> expect(
        keys.begin() + slice.first,
        keys.begin() + slice.first + slice.second);
    EXPECT_EQ(got, expect) << "slice +" << slice.first << " len "
                           << slice.second;
  }
}

// ------------------------------------------------------ byte identity

struct MergeCase {
  std::string name;
  std::vector<std::vector<Key>> runs;
};

std::vector<MergeCase> ByteIdentityCases() {
  std::vector<MergeCase> cases;
  {
    MergeCase c;
    c.name = "uniform";
    for (size_t r = 0; r < 6; ++r) {
      c.runs.push_back(SortedRandomKeys(2000 + 137 * r, 100 + r, 1 << 30));
    }
    cases.push_back(std::move(c));
  }
  {
    // Heavily skewed: most records share a handful of keys, so sampled
    // splitters collapse and some partitions go empty.
    MergeCase c;
    c.name = "skewed";
    for (size_t r = 0; r < 5; ++r) {
      Random rng(200 + r);
      std::vector<Key> keys;
      for (size_t i = 0; i < 3000; ++i) {
        const uint64_t roll = rng.Uniform(100);
        keys.push_back(roll < 90 ? static_cast<Key>(roll % 3)
                                 : static_cast<Key>(rng.Uniform(1 << 20)));
      }
      std::sort(keys.begin(), keys.end());
      c.runs.push_back(std::move(keys));
    }
    cases.push_back(std::move(c));
  }
  {
    // Duplicate-only: every record carries the same key; splitters are
    // degenerate and the partitioned path must fall back cleanly.
    MergeCase c;
    c.name = "all-duplicates";
    for (size_t r = 0; r < 4; ++r) {
      c.runs.emplace_back(1000, Key{42});
    }
    cases.push_back(std::move(c));
  }
  {
    // Fewer records than partitions.
    MergeCase c;
    c.name = "tiny";
    c.runs = {{1}, {2}, {0, 3}};
    cases.push_back(std::move(c));
  }
  return cases;
}

TEST(PartitionedMergeTest, ByteIdenticalToSerialAcrossPartitionCounts) {
  for (const MergeCase& c : ByteIdentityCases()) {
    MemEnv env;
    ThreadPool pool(4);
    std::vector<RunInfo> runs;
    for (size_t r = 0; r < c.runs.size(); ++r) {
      runs.push_back(
          WriteForwardRun(&env, "run" + std::to_string(r), c.runs[r]));
    }

    MergeOptions serial;
    serial.fan_in = 10;
    serial.block_bytes = 256;
    serial.temp_dir = "tmp";
    serial.remove_inputs = false;
    MergeStats serial_stats;
    ASSERT_TWRS_OK(
        MergeRuns(&env, runs, serial, "out_serial", &serial_stats));
    const std::vector<uint8_t>* expect = env.FileContents("out_serial");
    ASSERT_NE(expect, nullptr);

    for (size_t partitions : {size_t{1}, size_t{2}, size_t{8}}) {
      MergeOptions options = serial;
      options.pool = &pool;
      options.final_merge_threads = partitions;
      options.final_sample_size = 64;
      const std::string out = "out_p" + std::to_string(partitions);
      MergeStats stats;
      ASSERT_TWRS_OK(MergeRuns(&env, runs, options, out, &stats));
      const std::vector<uint8_t>* got = env.FileContents(out);
      ASSERT_NE(got, nullptr);
      EXPECT_EQ(*got, *expect)
          << c.name << " P=" << partitions << " differs from serial";
      // Stats parity: the final pass is one merge step writing every
      // record once, however many partitions executed it.
      EXPECT_EQ(stats.merge_steps, serial_stats.merge_steps) << c.name;
      EXPECT_EQ(stats.records_written, serial_stats.records_written)
          << c.name;
    }
  }
}

TEST(PartitionedMergeTest, FullSortByteIdenticalWithReverseSegments) {
  // End to end through ExternalSorter with 2WRS runs, whose decreasing
  // streams reach the final merge as Appendix-A reverse segments: the
  // partition boundary pass and the sliced cursors must handle them.
  std::vector<Key> input;
  Random rng(31);
  for (size_t i = 0; i < 200000; ++i) {
    input.push_back(static_cast<Key>(rng.Uniform(1 << 24)));
  }

  MemEnv env;
  std::vector<uint8_t> expect;
  {
    ExternalSortOptions options;
    options.memory_records = 8192;
    options.temp_dir = "tmp";
    options.block_bytes = 4096;
    ExternalSorter sorter(&env, options);
    VectorSource source(input);
    ASSERT_TWRS_OK(sorter.Sort(&source, "out_serial", nullptr));
    ASSERT_NE(env.FileContents("out_serial"), nullptr);
    expect = *env.FileContents("out_serial");
  }
  for (size_t partitions : {size_t{2}, size_t{8}}) {
    ExternalSortOptions options;
    options.memory_records = 8192;
    options.temp_dir = "tmp";
    options.block_bytes = 4096;
    options.parallel.worker_threads = 4;
    options.parallel.dedicated_pool = true;
    options.parallel.final_merge_threads = partitions;
    ExternalSorter sorter(&env, options);
    VectorSource source(input);
    const std::string out = "out_p" + std::to_string(partitions);
    ExternalSortResult result;
    ASSERT_TWRS_OK(sorter.Sort(&source, out, &result));
    ASSERT_NE(env.FileContents(out), nullptr);
    EXPECT_EQ(*env.FileContents(out), expect) << "P=" << partitions;
    EXPECT_EQ(result.output_records, input.size());
  }
}

// ------------------------------------------------------- cancellation

/// Env decorator that fires a CancelToken after the N-th positioned write
/// through a reopened handle — deterministically cancelling a partitioned
/// merge *while partial merges are writing*.
class CancelAfterWritesEnv : public Env {
 public:
  CancelAfterWritesEnv(Env* base, CancelToken* token, int writes_left)
      : base_(base), token_(token), writes_left_(writes_left) {}

  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<WritableFile>* out) override {
    return base_->NewWritableFile(path, out);
  }
  Status NewSequentialFile(const std::string& path,
                           std::unique_ptr<SequentialFile>* out) override {
    return base_->NewSequentialFile(path, out);
  }
  Status NewRandomRWFile(const std::string& path,
                         std::unique_ptr<RandomRWFile>* out) override {
    return base_->NewRandomRWFile(path, out);
  }
  Status ReopenRandomRWFile(const std::string& path,
                            std::unique_ptr<RandomRWFile>* out) override {
    std::unique_ptr<RandomRWFile> file;
    TWRS_RETURN_IF_ERROR(base_->ReopenRandomRWFile(path, &file));
    *out = std::make_unique<FiringFile>(std::move(file), this);
    return Status::OK();
  }
  Status NewRandomReadFile(const std::string& path,
                           std::unique_ptr<RandomRWFile>* out) override {
    return base_->NewRandomReadFile(path, out);
  }
  bool FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }
  Status RemoveFile(const std::string& path) override {
    return base_->RemoveFile(path);
  }
  Status GetFileSize(const std::string& path, uint64_t* size) override {
    return base_->GetFileSize(path, size);
  }
  Status CreateDirIfMissing(const std::string& path) override {
    return base_->CreateDirIfMissing(path);
  }
  Status RemoveDir(const std::string& path) override {
    return base_->RemoveDir(path);
  }
  Status ListDir(const std::string& path,
                 std::vector<std::string>* names) override {
    return base_->ListDir(path, names);
  }

 private:
  class FiringFile : public RandomRWFile {
   public:
    FiringFile(std::unique_ptr<RandomRWFile> base, CancelAfterWritesEnv* env)
        : base_(std::move(base)), env_(env) {}

    Status WriteAt(uint64_t offset, const void* data, size_t n) override {
      TWRS_RETURN_IF_ERROR(base_->WriteAt(offset, data, n));
      if (env_->writes_left_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        env_->token_->Cancel();
      }
      return Status::OK();
    }
    Status ReadAt(uint64_t offset, void* out, size_t n) override {
      return base_->ReadAt(offset, out, n);
    }
    Status Close() override { return base_->Close(); }

   private:
    std::unique_ptr<RandomRWFile> base_;
    CancelAfterWritesEnv* env_;
  };

  Env* base_;
  CancelToken* token_;
  std::atomic<int> writes_left_;
};

TEST(PartitionedMergeTest, CancellationMidPartialMergeLeavesNoOutput) {
  MemEnv mem;
  CancelToken token;
  // Fire after the very first positioned write of any partial merge: the
  // other partitions are still mid-flight and must unwind cleanly.
  CancelAfterWritesEnv env(&mem, &token, 1);
  ThreadPool pool(4);

  // Big enough that every partition rotates its 256 KiB double buffer
  // several times mid-merge: the first background WriteAt fires the token
  // while all partitions still have most of their range to go.
  std::vector<RunInfo> runs;
  for (size_t r = 0; r < 4; ++r) {
    runs.push_back(WriteForwardRun(&env, "run" + std::to_string(r),
                                   SortedRandomKeys(200000, 40 + r,
                                                    1 << 30)));
  }
  MergeOptions options;
  options.fan_in = 10;
  options.block_bytes = 4096;
  options.temp_dir = "tmp";
  options.remove_inputs = false;
  options.pool = &pool;
  options.final_merge_threads = 4;
  options.final_sample_size = 64;
  options.cancel = &token;
  Status s = MergeRuns(&env, runs, options, "out", nullptr);
  EXPECT_TRUE(s.IsCancelled()) << s.ToString();
  // No partial output: a torn positioned file has holes, so the
  // partitioned path removes what it created.
  EXPECT_FALSE(mem.FileExists("out"));
}

TEST(PartitionedMergeTest, PositionedSingleMergeWritesAssignedRange) {
  // The sharded sorter's building block: a serial final merge writing a
  // byte range of an existing shared file.
  MemEnv env;
  std::vector<Key> low = SortedRandomKeys(500, 81, 1000);
  std::vector<Key> high = SortedRandomKeys(300, 82, 1000);
  std::vector<RunInfo> runs = {WriteForwardRun(&env, "run_high", high)};
  {
    std::unique_ptr<RandomRWFile> f;
    ASSERT_TWRS_OK(env.NewRandomRWFile("out", &f));
    ASSERT_TWRS_OK(f->Close());
  }
  // Low half written by hand; high half by a positioned MergeRuns.
  ASSERT_TWRS_OK(WriteAllRecords(&env, "low_tmp", low));
  {
    std::unique_ptr<RandomRWFile> f;
    ASSERT_TWRS_OK(env.ReopenRandomRWFile("out", &f));
    const std::vector<uint8_t>* bytes = env.FileContents("low_tmp");
    ASSERT_NE(bytes, nullptr);
    ASSERT_TWRS_OK(f->WriteAt(0, bytes->data(), bytes->size()));
    ASSERT_TWRS_OK(f->Close());
  }
  MergeOptions options;
  options.block_bytes = 128;
  options.temp_dir = "tmp";
  options.remove_inputs = false;
  options.output_range.positioned = true;
  options.output_range.offset = low.size() * kRecordBytes;
  options.output_range.length = high.size() * kRecordBytes;
  ASSERT_TWRS_OK(MergeRuns(&env, runs, options, "out", nullptr));

  std::vector<Key> got;
  ASSERT_TWRS_OK(ReadAllRecords(&env, "out", &got));
  std::vector<Key> expect = low;
  expect.insert(expect.end(), high.begin(), high.end());
  EXPECT_EQ(got, expect);
}

TEST(PartitionedMergeTest, PositionedRangeMismatchIsCorruption) {
  MemEnv env;
  std::vector<RunInfo> runs = {
      WriteForwardRun(&env, "run", SortedRandomKeys(100, 5, 50))};
  {
    std::unique_ptr<RandomRWFile> f;
    ASSERT_TWRS_OK(env.NewRandomRWFile("out", &f));
    ASSERT_TWRS_OK(f->Close());
  }
  MergeOptions options;
  options.temp_dir = "tmp";
  options.remove_inputs = false;
  options.output_range.positioned = true;
  options.output_range.offset = 0;
  options.output_range.length = 17;  // not the runs' byte volume
  Status s = MergeRuns(&env, runs, options, "out", nullptr);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

}  // namespace
}  // namespace twrs
