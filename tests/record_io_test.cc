#include "io/record_io.h"

#include <gtest/gtest.h>

#include <vector>

#include "io/mem_env.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace twrs {
namespace {

TEST(RecordCodecTest, RoundTripsExtremes) {
  uint8_t buf[kRecordBytes];
  for (Key k : {Key{0}, Key{1}, Key{-1}, Key{42},
                std::numeric_limits<Key>::min(),
                std::numeric_limits<Key>::max()}) {
    EncodeKey(k, buf);
    EXPECT_EQ(DecodeKey(buf), k);
  }
}

TEST(RecordCodecTest, LittleEndianLayout) {
  uint8_t buf[kRecordBytes];
  EncodeKey(0x0102030405060708LL, buf);
  EXPECT_EQ(buf[0], 0x08);
  EXPECT_EQ(buf[7], 0x01);
}

// Buffer boundary behaviour must not depend on the block size.
class RecordIoTest : public ::testing::TestWithParam<size_t> {
 protected:
  MemEnv env_;
};

TEST_P(RecordIoTest, RoundTripManyRecords) {
  const size_t block = GetParam();
  Random rng(3);
  std::vector<Key> keys(1000);
  for (Key& k : keys) k = static_cast<Key>(rng.Next());

  RecordWriter writer(&env_, "f", block);
  ASSERT_TWRS_OK(writer.status());
  for (Key k : keys) ASSERT_TWRS_OK(writer.Append(k));
  ASSERT_TWRS_OK(writer.Finish());
  EXPECT_EQ(writer.count(), keys.size());

  RecordReader reader(&env_, "f", block);
  ASSERT_TWRS_OK(reader.status());
  for (Key expected : keys) {
    Key k;
    bool eof;
    ASSERT_TWRS_OK(reader.Next(&k, &eof));
    ASSERT_FALSE(eof);
    EXPECT_EQ(k, expected);
  }
  Key k;
  bool eof;
  ASSERT_TWRS_OK(reader.Next(&k, &eof));
  EXPECT_TRUE(eof);
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, RecordIoTest,
                         ::testing::Values(8, 24, 64, 4096, 1 << 20));

TEST(RecordIoBasicTest, EmptyFile) {
  MemEnv env;
  RecordWriter writer(&env, "f");
  ASSERT_TWRS_OK(writer.status());
  ASSERT_TWRS_OK(writer.Finish());
  RecordReader reader(&env, "f");
  Key k;
  bool eof;
  ASSERT_TWRS_OK(reader.Next(&k, &eof));
  EXPECT_TRUE(eof);
}

TEST(RecordIoBasicTest, FinishIsIdempotent) {
  MemEnv env;
  RecordWriter writer(&env, "f");
  ASSERT_TWRS_OK(writer.Append(1));
  ASSERT_TWRS_OK(writer.Finish());
  ASSERT_TWRS_OK(writer.Finish());
  std::vector<Key> keys;
  ASSERT_TWRS_OK(ReadAllRecords(&env, "f", &keys));
  EXPECT_EQ(keys, std::vector<Key>({1}));
}

TEST(RecordIoBasicTest, DestructorFlushesUnfinishedWriter) {
  MemEnv env;
  {
    RecordWriter writer(&env, "f");
    ASSERT_TWRS_OK(writer.Append(7));
    // no Finish(): destructor must flush
  }
  std::vector<Key> keys;
  ASSERT_TWRS_OK(ReadAllRecords(&env, "f", &keys));
  EXPECT_EQ(keys, std::vector<Key>({7}));
}

TEST(RecordIoBasicTest, TruncatedFileIsCorruption) {
  MemEnv env;
  std::unique_ptr<WritableFile> w;
  ASSERT_TWRS_OK(env.NewWritableFile("f", &w));
  ASSERT_TWRS_OK(w->Append("abc", 3));  // not a multiple of 8
  ASSERT_TWRS_OK(w->Close());
  RecordReader reader(&env, "f");
  Key k;
  bool eof;
  Status s = reader.Next(&k, &eof);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST(RecordIoBasicTest, WriteAllReadAllHelpers) {
  MemEnv env;
  std::vector<Key> keys = {3, 1, 4, 1, 5, -9};
  ASSERT_TWRS_OK(WriteAllRecords(&env, "f", keys));
  std::vector<Key> back;
  ASSERT_TWRS_OK(ReadAllRecords(&env, "f", &back));
  EXPECT_EQ(back, keys);
}

TEST(RecordIoBasicTest, MissingFileReportsOnConstruction) {
  MemEnv env;
  RecordReader reader(&env, "missing");
  EXPECT_FALSE(reader.status().ok());
  Key k;
  bool eof;
  EXPECT_FALSE(reader.Next(&k, &eof).ok());
}

}  // namespace
}  // namespace twrs
