#!/usr/bin/env python3
"""Compare two bench --json reports and fail on wall-clock regressions.

Usage:
    bench_diff.py BASELINE.json CURRENT.json [--tolerance PCT]
                  [--min-seconds S] [--metric NAME]

Entries are matched across the two reports by their configuration fields
(everything that is not a measurement); for each matched pair the primary
timing metric (wall_seconds, falling back to total_seconds) is compared.

Exit codes (the CI contract):
    0  comparable, no regression beyond the tolerance
    1  regression: at least one matched entry slowed down > tolerance
    2  usage error (missing/unreadable/malformed input) -- fails CI
    3  incomparable reports (different bench, profile, scale or schema
       version, or nothing matched) -- CI treats this as a labeled skip,
       never as a silent pass

Tolerance defaults to the TWRS_BENCH_TOLERANCE environment variable, or
10 (percent) when unset. Entries whose baseline timing is below
--min-seconds (default 0.05 s) are reported but never gated: timings that
small are dominated by scheduler noise on shared CI runners.
"""

import argparse
import json
import os
import sys

# Fields that carry measurements rather than configuration. Anything else
# in a result entry identifies *what* was measured and becomes part of the
# match key.
_MEASUREMENT_SUFFIXES = ("_seconds", "_per_second", "_count")
_MEASUREMENT_FIELDS = {
    "bytes_read",
    "bytes_written",
    "num_runs",
    "merge_steps",
    "shrunk_admissions",
    "peak_queued",
    "peak_running",
    "speedup",
    "runs_pruned",
    "records_pruned",
    "speedup_vs_full_sort",
}
# Deliberately NOT measurements: `limit`, `strategy` and `order`
# (bench_topk) identify which top-K plan a row measured, so they stay in
# the match key — a K=400 dual-heap row only ever compares against the
# same plan in the baseline. Likewise `io_backend` (bench_parallel_sort,
# bench_sharded_sort): it names the Env the row ran on (posix vs uring),
# so a uring row is only ever compared against the baseline's uring row —
# a posix-vs-uring delta is a comparison the sweep itself reports, not a
# regression for this tool to flag.
# Header fields that must agree for two reports to be comparable at all.
_IDENTITY_FIELDS = ("bench", "profile", "scale", "schema_version")


def _is_measurement(key):
    return key in _MEASUREMENT_FIELDS or key.endswith(_MEASUREMENT_SUFFIXES)


def _entry_key(entry):
    return tuple(
        sorted((k, v) for k, v in entry.items() if not _is_measurement(k))
    )


def _load_report(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            report = json.load(f)
    except OSError as e:
        raise SystemExit2(f"cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        raise SystemExit2(f"{path} is not valid JSON: {e}")
    if not isinstance(report, dict) or "results" not in report:
        raise SystemExit2(f"{path} has no 'results' array")
    return report


class SystemExit2(Exception):
    """Usage error: exit 2."""


def _fmt_key(key):
    parts = [f"{k}={v}" for k, v in key]
    return ", ".join(parts) if parts else "(default entry)"


def compare(baseline, current, metric, tolerance_pct, min_seconds, out):
    """Returns the process exit code; prints a line per comparison."""
    for field in _IDENTITY_FIELDS:
        b, c = baseline.get(field), current.get(field)
        if b != c:
            out.write(
                f"INCOMPARABLE: {field} differs "
                f"(baseline {b!r} vs current {c!r})\n"
            )
            return 3

    base_by_key = {_entry_key(e): e for e in baseline["results"]}
    cur_by_key = {_entry_key(e): e for e in current["results"]}
    matched = sorted(set(base_by_key) & set(cur_by_key))
    if not matched:
        out.write("INCOMPARABLE: no result entries match between reports\n")
        return 3

    unmatched = len(base_by_key) + len(cur_by_key) - 2 * len(matched)
    if unmatched:
        out.write(f"note: {unmatched} unmatched entries skipped\n")

    regressions = 0
    compared = 0
    for key in matched:
        b_entry, c_entry = base_by_key[key], cur_by_key[key]
        name = metric if metric in b_entry else None
        if name is None:
            for candidate in ("wall_seconds", "total_seconds"):
                if candidate in b_entry and candidate in c_entry:
                    name = candidate
                    break
        if name is None or name not in c_entry:
            continue
        b_val, c_val = float(b_entry[name]), float(c_entry[name])
        compared += 1
        delta_pct = 100.0 * (c_val - b_val) / b_val if b_val > 0 else 0.0
        label = _fmt_key(key)
        if b_val < min_seconds:
            out.write(
                f"  skip [{label}] {name}: baseline {b_val:.4f}s below "
                f"noise floor ({min_seconds:.3f}s)\n"
            )
            continue
        verdict = "ok"
        if delta_pct > tolerance_pct:
            verdict = "REGRESSION"
            regressions += 1
        elif delta_pct < -tolerance_pct:
            verdict = "improved"
        out.write(
            f"  {verdict} [{label}] {name}: {b_val:.3f}s -> {c_val:.3f}s "
            f"({delta_pct:+.1f}%, tolerance {tolerance_pct:.0f}%)\n"
        )

    if compared == 0:
        out.write("INCOMPARABLE: matched entries carry no timing metric\n")
        return 3
    if regressions:
        out.write(
            f"FAIL: {regressions}/{compared} compared entries regressed "
            f"beyond {tolerance_pct:.0f}%\n"
        )
        return 1
    out.write(f"OK: {compared} entries compared, no regression\n")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("TWRS_BENCH_TOLERANCE", "10")),
        help="allowed slowdown in percent (default: $TWRS_BENCH_TOLERANCE or 10)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=0.05,
        help="baseline timings below this are never gated (noise floor)",
    )
    parser.add_argument(
        "--metric",
        default="wall_seconds",
        help="preferred timing field (falls back to total_seconds)",
    )
    try:
        args = parser.parse_args(argv)
        baseline = _load_report(args.baseline)
        current = _load_report(args.current)
    except SystemExit2 as e:
        sys.stderr.write(f"bench_diff: {e}\n")
        return 2
    if args.tolerance < 0:
        sys.stderr.write("bench_diff: tolerance must be non-negative\n")
        return 2
    return compare(
        baseline, current, args.metric, args.tolerance, args.min_seconds,
        sys.stdout,
    )


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
