// Reproduces Table 5.13 of the paper: average run length relative to the
// memory size, for RS and three 2WRS configurations, on all six input
// datasets. The paper uses 100K records of memory and 25M-record inputs;
// the defaults here scale that down (see DESIGN.md §4) while keeping the
// input >= 100x memory so the asymptotic regime is preserved. "inf" means
// a single run holding the entire input.

#include "bench/bench_common.h"

namespace twrs {
namespace bench {
namespace {

std::string Relative(const RunGenStats& stats, size_t memory) {
  if (stats.num_runs() <= 1) return "inf";
  return TablePrinter::Num(stats.AverageRunLengthRelative(memory), 2);
}

void Run() {
  const size_t memory = static_cast<size_t>(Scaled(2000));
  const uint64_t records = Scaled(200000);
  printf("== Table 5.13: average run length relative to memory ==\n");
  printf("memory = %zu records, input = %llu records, sections = 50\n\n",
         memory, static_cast<unsigned long long>(records));

  // The three 2WRS configurations of Table 5.13, all Mean/Random:
  //   cfg1: input buffer only, 0.02% of memory
  //   cfg2: both buffers, 20% of memory
  //   cfg3: both buffers, 2% of memory (the recommended configuration)
  TwoWayOptions cfg1;
  cfg1.memory_records = memory;
  cfg1.buffer_fraction = 0.0002;
  cfg1.use_input_buffer = true;
  cfg1.use_victim_buffer = false;
  TwoWayOptions cfg2 = TwoWayOptions::Recommended(memory);
  cfg2.buffer_fraction = 0.2;
  TwoWayOptions cfg3 = TwoWayOptions::Recommended(memory);

  TablePrinter table({"Input", "RS", "2WRS cfg1", "2WRS cfg2", "2WRS cfg3",
                      "paper RS", "paper cfg3"});
  const char* paper_rs[] = {"inf", "1.0", "1.94", "2.0", "2.0", "2.0"};
  const char* paper_cfg3[] = {"inf", "inf", "50", "1.96", "63", "63"};
  for (int d = 0; d < kNumDatasets; ++d) {
    const Dataset dataset = static_cast<Dataset>(d);
    WorkloadOptions workload;
    workload.num_records = records;
    workload.sections = 50;
    workload.seed = 11;
    const RunGenStats rs = CountRs(memory, dataset, workload);
    cfg1.seed = cfg2.seed = cfg3.seed = 11;
    const RunGenStats r1 = Count2wrs(cfg1, dataset, workload);
    const RunGenStats r2 = Count2wrs(cfg2, dataset, workload);
    const RunGenStats r3 = Count2wrs(cfg3, dataset, workload);
    table.AddRow({DatasetName(dataset), Relative(rs, memory),
                  Relative(r1, memory), Relative(r2, memory),
                  Relative(r3, memory), paper_rs[d], paper_cfg3[d]});
  }
  table.Print(std::cout);
  printf(
      "\nNote: paper cfg3 values for alternating/mixed depend on its\n"
      "25M-record input (alternating: 50 sections -> run length = input/50;\n"
      "mixed: 2 runs -> input/2). The shape to compare is: 2WRS == RS on\n"
      "random, 'inf' (single run) where RS degrades, and ~input/sections on\n"
      "alternating.\n");
}

}  // namespace
}  // namespace bench
}  // namespace twrs

int main(int argc, char** argv) {
  twrs::bench::ParseBenchArgs(argc, argv);
  twrs::bench::Run();
  twrs::bench::JsonReporter::Global().Flush();
  return 0;
}
