// Reproduces the statistical analysis of §5.2.4 (random input): the ANOVA
// of Tables 5.2 (all four factors) and 5.3 (buffer size only). The paper
// finds every factor statistically significant but the buffer size (beta)
// dominating by orders of magnitude in F, so the accepted model keeps only
// the buffer size, with R^2 ~= 1.

#include "bench/bench_common.h"

namespace twrs {
namespace bench {
namespace {

const std::vector<std::string> kFactorNames = {
    "i (buffer setup)", "j (buffer size)", "k (input heuristic)",
    "l (output heuristic)"};
const std::vector<int> kLevels = {kBufferSetupLevels, kNumBufferSizeLevels,
                                  kNumInputHeuristics, kNumOutputHeuristics};

void Run() {
  const size_t memory = static_cast<size_t>(Scaled(1200));
  const uint64_t records = Scaled(48000);
  const int seeds = 3;
  printf("== Tables 5.2 / 5.3: ANOVA for random input ==\n");
  printf("memory = %zu, input = %llu records, %d seeds (%d observations)\n\n",
         memory, static_cast<unsigned long long>(records), seeds,
         kBufferSetupLevels * kNumBufferSizeLevels * kNumInputHeuristics *
             kNumOutputHeuristics * seeds);

  const std::vector<Observation> obs =
      RunFactorial(Dataset::kRandom, memory, records, seeds);

  printf("-- Table 5.2: model with all main factors --\n");
  const std::vector<AnovaTerm> full = {{{0}}, {{1}}, {{2}}, {{3}}};
  AnovaResult full_result;
  CheckOk(FitAnova(obs, kLevels, full, &full_result), "anova full");
  PrintAnovaTable(full_result, full, kFactorNames);

  printf("\n-- Table 5.3: reduced model, buffer size only --\n");
  const std::vector<AnovaTerm> reduced = {{{1}}};
  AnovaResult reduced_result;
  CheckOk(FitAnova(obs, kLevels, reduced, &reduced_result), "anova reduced");
  PrintAnovaTable(reduced_result, reduced, kFactorNames);

  printf(
      "\nExpected shape (paper): buffer size has an F several orders of\n"
      "magnitude above the other factors; dropping the others leaves R^2\n"
      "essentially unchanged (the reduced model is the accepted one).\n");
  printf("F(buffer size) / max F(other factors) = %.1f\n",
         full_result.rows[1].f /
             std::max({full_result.rows[0].f, full_result.rows[2].f,
                       full_result.rows[3].f}));
}

}  // namespace
}  // namespace bench
}  // namespace twrs

int main(int argc, char** argv) {
  twrs::bench::ParseBenchArgs(argc, argv);
  twrs::bench::Run();
  twrs::bench::JsonReporter::Global().Flush();
  return 0;
}
