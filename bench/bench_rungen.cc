// Micro-benchmarks of run generation throughput (records/second) for
// Load-Sort-Store, RS and 2WRS across datasets — the CPU-side cost the
// paper discusses in §6.2 ("the logic of 2WRS is slightly more complex").

#include <benchmark/benchmark.h>

#include "core/batched_replacement_selection.h"
#include "core/load_sort_store.h"
#include "core/replacement_selection.h"
#include "core/run_sink.h"
#include "core/two_way_replacement_selection.h"
#include "workload/generators.h"

namespace twrs {
namespace {

constexpr size_t kMemory = 4096;
constexpr uint64_t kRecords = 200000;

void RunGenerator(benchmark::State& state, RunGenerator* generator,
                  Dataset dataset) {
  uint64_t runs = 0;
  for (auto _ : state) {
    WorkloadOptions workload;
    workload.num_records = kRecords;
    workload.seed = 7;
    auto source = MakeWorkload(dataset, workload);
    CountingRunSink sink;
    RunGenStats stats;
    benchmark::DoNotOptimize(
        generator->Generate(source.get(), &sink, &stats).ok());
    runs = stats.num_runs();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          kRecords);
  state.counters["runs"] = static_cast<double>(runs);
}

void BM_LoadSortStore(benchmark::State& state) {
  LoadSortStoreOptions options;
  options.memory_records = kMemory;
  LoadSortStore generator(options);
  RunGenerator(state, &generator, static_cast<Dataset>(state.range(0)));
}
BENCHMARK(BM_LoadSortStore)->DenseRange(0, kNumDatasets - 1);

void BM_ReplacementSelection(benchmark::State& state) {
  ReplacementSelectionOptions options;
  options.memory_records = kMemory;
  ReplacementSelection generator(options);
  RunGenerator(state, &generator, static_cast<Dataset>(state.range(0)));
}
BENCHMARK(BM_ReplacementSelection)->DenseRange(0, kNumDatasets - 1);

void BM_BatchedReplacementSelection(benchmark::State& state) {
  BatchedReplacementSelectionOptions options;
  options.memory_records = kMemory;
  options.batch_records = kMemory / 8;
  BatchedReplacementSelection generator(options);
  RunGenerator(state, &generator, static_cast<Dataset>(state.range(0)));
}
BENCHMARK(BM_BatchedReplacementSelection)->DenseRange(0, kNumDatasets - 1);

void BM_TwoWayReplacementSelection(benchmark::State& state) {
  TwoWayReplacementSelection generator(TwoWayOptions::Recommended(kMemory));
  RunGenerator(state, &generator, static_cast<Dataset>(state.range(0)));
}
BENCHMARK(BM_TwoWayReplacementSelection)->DenseRange(0, kNumDatasets - 1);

}  // namespace
}  // namespace twrs

BENCHMARK_MAIN();
