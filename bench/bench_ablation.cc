// Ablation study of the design choices DESIGN.md calls out:
//  - what each buffer contributes (buffer setup sweep per dataset);
//  - how often the correctness backstops (divert rule, migration) fire per
//    input heuristic — quantifying how well each heuristic separates the
//    heaps;
//  - what the victim buffer absorbs per dataset.

#include "bench/bench_common.h"

namespace twrs {
namespace bench {
namespace {

void BufferSetupAblation() {
  const size_t memory = static_cast<size_t>(Scaled(2000));
  const uint64_t records = Scaled(100000);
  printf("-- ablation: buffer setup (runs generated, Mean/Random, 2%%) --\n");
  TablePrinter table({"Input", "no buffers", "input only", "victim only",
                      "both", "RS"});
  for (int d = 0; d < kNumDatasets; ++d) {
    const Dataset dataset = static_cast<Dataset>(d);
    WorkloadOptions workload;
    workload.num_records = records;
    workload.seed = 5;
    std::vector<std::string> row = {DatasetName(dataset)};
    for (int setup = 0; setup < 4; ++setup) {
      TwoWayOptions options = TwoWayOptions::Recommended(memory, 5);
      options.use_input_buffer = setup == 1 || setup == 3;
      options.use_victim_buffer = setup == 2 || setup == 3;
      row.push_back(
          std::to_string(Count2wrs(options, dataset, workload).num_runs()));
    }
    row.push_back(std::to_string(CountRs(memory, dataset, workload).num_runs()));
    table.AddRow(row);
  }
  table.Print(std::cout);
  printf("\n");
}

void BackstopAblation() {
  const size_t memory = static_cast<size_t>(Scaled(2000));
  const uint64_t records = Scaled(100000);
  printf(
      "-- ablation: correctness backstop activity per input heuristic\n"
      "   (random input; diverted = re-tagged next run, migrated = moved\n"
      "   across heaps; both should be ~0 for range-separating heuristics) "
      "--\n");
  TablePrinter table({"input heuristic", "runs", "diverted", "migrated",
                      "victim absorbed"});
  for (int ih = 0; ih < kNumInputHeuristics; ++ih) {
    TwoWayOptions options = TwoWayOptions::Recommended(memory, 5);
    options.input_heuristic = static_cast<InputHeuristic>(ih);
    WorkloadOptions workload;
    workload.num_records = records;
    workload.seed = 5;
    const RunGenStats stats = Count2wrs(options, Dataset::kRandom, workload);
    table.AddRow({InputHeuristicName(static_cast<InputHeuristic>(ih)),
                  std::to_string(stats.num_runs()),
                  std::to_string(stats.diverted_next_run),
                  std::to_string(stats.migrated_across),
                  std::to_string(stats.victim_records)});
  }
  table.Print(std::cout);
  printf("\n");
}

void VictimAblation() {
  const size_t memory = static_cast<size_t>(Scaled(2000));
  const uint64_t records = Scaled(100000);
  printf("-- ablation: victim buffer activity per dataset (recommended cfg) --\n");
  TablePrinter table(
      {"Input", "runs", "victim absorbed", "victim flushes", "% of input"});
  for (int d = 0; d < kNumDatasets; ++d) {
    const Dataset dataset = static_cast<Dataset>(d);
    WorkloadOptions workload;
    workload.num_records = records;
    workload.seed = 5;
    const RunGenStats stats =
        Count2wrs(TwoWayOptions::Recommended(memory, 5), dataset, workload);
    table.AddRow({DatasetName(dataset), std::to_string(stats.num_runs()),
                  std::to_string(stats.victim_records),
                  std::to_string(stats.victim_flushes),
                  TablePrinter::Num(100.0 * stats.victim_records / records,
                                    2)});
  }
  table.Print(std::cout);
}

void Run() {
  printf("== Ablations of 2WRS design choices ==\n\n");
  BufferSetupAblation();
  BackstopAblation();
  VictimAblation();
}

}  // namespace
}  // namespace bench
}  // namespace twrs

int main(int argc, char** argv) {
  twrs::bench::ParseBenchArgs(argc, argv);
  twrs::bench::Run();
  twrs::bench::JsonReporter::Global().Flush();
  return 0;
}
