// Reproduces Table 2.1 of the paper: the run-count trace of a polyphase
// merge over 6 tapes starting from {8, 10, 3, 0, 8, 11}, and contrasts the
// file-backed polyphase merge with the plain multi-pass merge on real runs.

#include <algorithm>
#include <numeric>

#include "bench/bench_common.h"
#include "merge/polyphase.h"

namespace twrs {
namespace bench {
namespace {

void Run() {
  printf("== Table 2.1: polyphase merge trace (6 tapes) ==\n\n");
  const std::vector<uint64_t> initial = {8, 10, 3, 0, 8, 11};
  const auto trace = SimulatePolyphase(initial);
  TablePrinter table({"", "Tape 1", "Tape 2", "Tape 3", "Tape 4", "Tape 5",
                      "Tape 6"});
  for (size_t step = 0; step < trace.size(); ++step) {
    std::vector<std::string> row = {"Step " + std::to_string(step)};
    for (uint64_t runs : trace[step]) row.push_back(std::to_string(runs));
    table.AddRow(row);
  }
  table.Print(std::cout);
  printf("(matches Table 2.1 of the paper exactly; verified in tests)\n\n");

  printf("-- polyphase vs multi-pass merge on real runs --\n");
  PosixEnv posix;
  const std::string dir = ScratchDir();
  const int num_runs = 40;
  const uint64_t run_records = Scaled(10000);
  std::vector<RunInfo> runs1;
  std::vector<RunInfo> runs2;
  for (int r = 0; r < num_runs; ++r) {
    WorkloadOptions workload;
    workload.num_records = run_records;
    workload.seed = static_cast<uint64_t>(r + 1);
    auto source = MakeWorkload(Dataset::kRandom, workload);
    std::vector<Key> keys;
    Key key;
    while (source->Next(&key)) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    for (int copy = 0; copy < 2; ++copy) {
      const std::string path =
          dir + "/run" + std::to_string(r) + "_" + std::to_string(copy);
      CheckOk(WriteAllRecords(&posix, path, keys), "write run");
      RunInfo info;
      RunSegment segment;
      segment.path = path;
      segment.count = keys.size();
      info.segments.push_back(segment);
      info.length = keys.size();
      (copy == 0 ? runs1 : runs2).push_back(std::move(info));
    }
  }

  TablePrinter table2({"strategy", "merge steps", "records written",
                       "sim. seconds"});
  {
    SimDiskEnv env(&posix);
    MergeOptions options;
    options.fan_in = 5;
    options.temp_dir = dir;
    options.temp_prefix = "plain";
    MergeStats stats;
    CheckOk(MergeRuns(&env, runs1, options, dir + "/out1", &stats), "merge");
    table2.AddRow({"multi-pass (fan-in 5)", std::to_string(stats.merge_steps),
                   std::to_string(stats.records_written),
                   TablePrinter::Num(env.model().SimulatedSeconds(), 2)});
  }
  {
    SimDiskEnv env(&posix);
    MergeOptions options;
    options.temp_dir = dir;
    options.temp_prefix = "poly";
    MergeStats stats;
    CheckOk(PolyphaseMergeRuns(&env, runs2, /*num_tapes=*/6, options,
                               dir + "/out2", &stats),
            "polyphase");
    table2.AddRow({"polyphase (6 tapes)", std::to_string(stats.merge_steps),
                   std::to_string(stats.records_written),
                   TablePrinter::Num(env.model().SimulatedSeconds(), 2)});
  }
  table2.Print(std::cout);
  printf(
      "(both produce identical sorted output — verified in tests; polyphase\n"
      " trades more, smaller merge steps for fewer full passes)\n");
}

}  // namespace
}  // namespace bench
}  // namespace twrs

int main(int argc, char** argv) {
  twrs::bench::ParseBenchArgs(argc, argv);
  twrs::bench::Run();
  twrs::bench::JsonReporter::Global().Flush();
  return 0;
}
