// Reproduces Figures 6.2 and 6.3 of the paper: run generation and total
// sorting time for RANDOM input, (6.2) as a function of the memory
// available with the input fixed, and (6.3) as a function of the input
// size with the memory fixed. The paper finds RS and 2WRS nearly identical
// on random data at every size — the headline "2WRS costs nothing when it
// cannot help".

#include "bench/bench_common.h"

namespace twrs {
namespace bench {
namespace {

void SweepMemory(const std::string& dir, Dataset dataset) {
  const uint64_t records = Scaled(1000000);
  printf("-- time vs memory (input fixed at %llu records) --\n",
         static_cast<unsigned long long>(records));
  TablePrinter table({"memory", "RS total s", "2WRS total s", "RS runs",
                      "2WRS runs", "total 2WRS/RS", "sim 2WRS/RS"});
  for (uint64_t memory : {1000, 5000, 20000, 100000}) {
    TimedSortSpec spec;
    spec.dataset = dataset;
    spec.records = records;
    spec.memory = static_cast<size_t>(memory);
    spec.scratch_dir = dir;
    spec.algorithm = RunGenAlgorithm::kReplacementSelection;
    const TimedSort rs = RunTimedSort(spec);
    spec.algorithm = RunGenAlgorithm::kTwoWayReplacementSelection;
    const TimedSort twrs = RunTimedSort(spec);
    table.AddRow({std::to_string(memory),
                  TablePrinter::Num(rs.total_seconds, 3),
                  TablePrinter::Num(twrs.total_seconds, 3),
                  std::to_string(rs.num_runs), std::to_string(twrs.num_runs),
                  TablePrinter::Num(twrs.total_seconds / rs.total_seconds, 2),
                  TablePrinter::Num(
                      twrs.sim_total_seconds / rs.sim_total_seconds, 2)});
  }
  table.Print(std::cout);
}

void SweepInput(const std::string& dir, Dataset dataset) {
  const size_t memory = static_cast<size_t>(Scaled(10000));
  printf("\n-- time vs input size (memory fixed at %zu records) --\n", memory);
  TablePrinter table({"records", "RS total s", "2WRS total s",
                      "total 2WRS/RS", "sim 2WRS/RS"});
  for (uint64_t records : {125000, 250000, 500000, 1000000}) {
    TimedSortSpec spec;
    spec.dataset = dataset;
    spec.records = Scaled(records);
    spec.memory = memory;
    spec.scratch_dir = dir;
    spec.algorithm = RunGenAlgorithm::kReplacementSelection;
    const TimedSort rs = RunTimedSort(spec);
    spec.algorithm = RunGenAlgorithm::kTwoWayReplacementSelection;
    const TimedSort twrs = RunTimedSort(spec);
    table.AddRow({std::to_string(Scaled(records)),
                  TablePrinter::Num(rs.total_seconds, 3),
                  TablePrinter::Num(twrs.total_seconds, 3),
                  TablePrinter::Num(twrs.total_seconds / rs.total_seconds, 2),
                  TablePrinter::Num(
                      twrs.sim_total_seconds / rs.sim_total_seconds, 2)});
  }
  table.Print(std::cout);
}

void Run() {
  const std::string dir = ScratchDir();
  printf("== Figures 6.2 / 6.3: random input timing, RS vs 2WRS ==\n\n");
  SweepMemory(dir, Dataset::kRandom);
  SweepInput(dir, Dataset::kRandom);
  printf(
      "\nExpected shape (paper): both algorithms take essentially the same\n"
      "time at every memory and input size (ratio ~1.0), and both get\n"
      "faster with more memory.\n");
}

}  // namespace
}  // namespace bench
}  // namespace twrs

int main(int argc, char** argv) {
  twrs::bench::ParseBenchArgs(argc, argv);
  twrs::bench::Run();
  twrs::bench::JsonReporter::Global().Flush();
  return 0;
}
