// Reproduces Figure 6.6 of the paper: total sorting time for ALTERNATING
// input as a function of the number of sorted/reverse-sorted sections. With
// few sections 2WRS is up to ~3x faster (each section becomes one run);
// as sections shrink toward random the two algorithms converge.

#include "bench/bench_common.h"

namespace twrs {
namespace bench {
namespace {

void Run() {
  const std::string dir = ScratchDir();
  const uint64_t records = Scaled(1000000);
  const size_t memory = static_cast<size_t>(Scaled(10000));
  printf("== Figure 6.6: alternating input, time vs number of sections ==\n");
  printf("input = %llu records, memory = %zu records\n\n",
         static_cast<unsigned long long>(records), memory);

  TablePrinter table({"sections", "RS total s", "2WRS total s", "RS runs",
                      "2WRS runs", "speedup", "sim speedup"});
  for (uint64_t sections : {2, 5, 10, 25, 50, 100, 200, 500}) {
    TimedSortSpec spec;
    spec.dataset = Dataset::kAlternating;
    spec.records = records;
    spec.memory = memory;
    spec.sections = sections;
    spec.scratch_dir = dir;
    spec.algorithm = RunGenAlgorithm::kReplacementSelection;
    const TimedSort rs = RunTimedSort(spec);
    spec.algorithm = RunGenAlgorithm::kTwoWayReplacementSelection;
    const TimedSort twrs = RunTimedSort(spec);
    table.AddRow(
        {std::to_string(sections), TablePrinter::Num(rs.total_seconds, 3),
         TablePrinter::Num(twrs.total_seconds, 3), std::to_string(rs.num_runs),
         std::to_string(twrs.num_runs),
         TablePrinter::Num(rs.total_seconds / twrs.total_seconds, 2),
         TablePrinter::Num(rs.sim_total_seconds / twrs.sim_total_seconds,
                           2)});
  }
  table.Print(std::cout);
  printf(
      "\nExpected shape (paper): large speedup (up to ~3x) for few sections,\n"
      "decaying toward parity as the section count grows and the dataset\n"
      "approaches random behaviour.\n");
}

}  // namespace
}  // namespace bench
}  // namespace twrs

int main(int argc, char** argv) {
  twrs::bench::ParseBenchArgs(argc, argv);
  twrs::bench::Run();
  twrs::bench::JsonReporter::Global().Flush();
  return 0;
}
