// Measures the SortService (src/service) end to end: 16 jobs submitted to
// one service at concurrency limits 1, 4 and 16, under a governor budget
// of two jobs' nominal memory — so the higher concurrency levels only
// proceed because the governor shrinks leases. Reported per level:
// batch wall time, throughput, and the p50/p99 of per-job latency
// (submission to completion, queueing included), plus the admission and
// I/O counters. The interesting comparison is throughput vs latency as
// concurrency grows with the memory budget held fixed.

#include <algorithm>
#include <cmath>
#include <vector>

#include "bench/bench_common.h"
#include "exec/executor.h"
#include "service/sort_service.h"

namespace twrs {
namespace bench {
namespace {

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

/// Appends `prefix`_{count,mean,p50,p99}_seconds fields for one histogram
/// of the service's registry snapshot; absent histograms add nothing.
void AddHistogramFields(JsonEntry* entry, const MetricsSnapshot& metrics,
                        const std::string& name, const std::string& prefix) {
  const HistogramSummary* h = metrics.FindHistogram(name);
  if (h == nullptr) return;
  entry->Int(prefix + "_count", h->count)
      .Num(prefix + "_mean_seconds", h->mean_seconds)
      .Num(prefix + "_p50_seconds", h->p50_seconds)
      .Num(prefix + "_p99_seconds", h->p99_seconds);
}

void Run(bool enable_metrics) {
  const std::string dir = ScratchDir();
  const uint64_t kJobs = 16;
  const uint64_t records = Scaled(200000);
  const size_t memory = static_cast<size_t>(Scaled(20000));

  PosixEnv env;
  std::vector<std::string> inputs(kJobs);
  const Dataset rotation[] = {Dataset::kRandom, Dataset::kMixed,
                              Dataset::kReverseSorted,
                              Dataset::kMixedImbalanced};
  for (uint64_t j = 0; j < kJobs; ++j) {
    inputs[j] = dir + "/input_" + std::to_string(j);
    WorkloadOptions workload;
    workload.num_records = records;
    workload.seed = 1 + j;
    CheckOk(WriteWorkloadToFile(&env, rotation[j % 4], workload, inputs[j]),
            "write workload");
  }

  printf("== SortService throughput/latency (src/service) ==\n");
  printf(
      "%llu jobs x %llu records, nominal memory %zu records/job,\n"
      "governor budget = 2 jobs' nominal (leases shrink under load), "
      "adaptive shards, executor capacity = %zu\n\n",
      static_cast<unsigned long long>(kJobs),
      static_cast<unsigned long long>(records), memory,
      Executor::Shared().capacity());

  TablePrinter table({"concurrency", "wall s", "jobs/s", "p50 s", "p99 s",
                      "shrunk", "peak queue", "GiB written"});
  for (const size_t concurrency : {size_t{1}, size_t{4}, size_t{16}}) {
    SortServiceOptions options;
    options.max_concurrent_jobs = concurrency;
    options.max_queue_depth = kJobs;
    options.governor.capacity_records = 2 * memory;
    options.governor.min_lease_records = memory / 8;
    options.enable_metrics = enable_metrics;

    std::vector<JobHandle> handles(kJobs);
    Stopwatch wall;
    SortServiceStats stats;
    {
      SortService service(&env, options);
      for (uint64_t j = 0; j < kJobs; ++j) {
        SortJobSpec spec;
        spec.input_path = inputs[j];
        spec.output_path = dir + "/out_" + std::to_string(j);
        spec.sort.memory_records = memory;
        spec.sort.twrs = TwoWayOptions::Recommended(memory, 1 + j);
        spec.sort.temp_dir = dir + "/tmp";
        spec.sample_seed = 1 + j;
        CheckOk(service.Submit(spec, &handles[j]), "submit");
      }
      for (uint64_t j = 0; j < kJobs; ++j) {
        CheckOk(handles[j].Wait(), "job");
      }
      stats = service.Stats();
    }
    const double wall_seconds = wall.ElapsedSeconds();

    std::vector<double> latencies;
    uint64_t bytes_read = 0, bytes_written = 0;
    for (uint64_t j = 0; j < kJobs; ++j) {
      const SortJobStats job = handles[j].stats();
      latencies.push_back(job.total_seconds);
      bytes_read += job.result.bytes_read;
      bytes_written += job.result.bytes_written;
    }
    // Spot-check one output per level; all levels write the same bytes.
    uint64_t count = 0;
    CheckOk(VerifySortedFile(&env, dir + "/out_0", &count, nullptr),
            "verify");
    if (count != records) {
      fprintf(stderr, "FATAL wrong output count %llu\n",
              static_cast<unsigned long long>(count));
      abort();
    }

    const double p50 = Percentile(latencies, 0.50);
    const double p99 = Percentile(latencies, 0.99);
    const double jobs_per_second =
        wall_seconds > 0 ? static_cast<double>(kJobs) / wall_seconds : 0.0;
    table.AddRow({std::to_string(concurrency),
                  TablePrinter::Num(wall_seconds, 3),
                  TablePrinter::Num(jobs_per_second, 2),
                  TablePrinter::Num(p50, 3), TablePrinter::Num(p99, 3),
                  std::to_string(stats.shrunk_admissions),
                  std::to_string(stats.peak_queued),
                  TablePrinter::Num(static_cast<double>(bytes_written) /
                                        (1024.0 * 1024 * 1024),
                                    3)});

    JsonEntry entry;
    entry.Str("bench_case", "sort_service")
        .Int("concurrency", concurrency)
        .Int("jobs", kJobs)
        .Int("records_per_job", records)
        .Int("nominal_memory_records", memory)
        .Int("governor_capacity_records", options.governor.capacity_records)
        .Num("wall_seconds", wall_seconds)
        .Num("jobs_per_second", jobs_per_second)
        .Num("p50_latency_seconds", p50)
        .Num("p99_latency_seconds", p99)
        .Int("shrunk_admissions", stats.shrunk_admissions)
        .Int("peak_queued", stats.peak_queued)
        .Int("peak_running", stats.peak_running)
        .Int("bytes_read", bytes_read)
        .Int("bytes_written", bytes_written)
        .Int("metrics_enabled", enable_metrics ? 1 : 0);
    AddHistogramFields(&entry, stats.metrics, "sort.run_generation_seconds",
                       "run_generation");
    AddHistogramFields(&entry, stats.metrics, "sort.final_merge_seconds",
                       "final_merge");
    AddHistogramFields(&entry, stats.metrics, "service.queue_seconds",
                       "queue");
    AddHistogramFields(&entry, stats.metrics,
                       "governor.reserve_wait_seconds", "reserve_wait");
    AddHistogramFields(&entry, stats.metrics, "run_sink.flush_seconds",
                       "run_sink_flush");
    AddHistogramFields(&entry, stats.metrics, "merge_sink.flush_seconds",
                       "merge_sink_flush");
    JsonReporter::Global().Add(entry);

    for (uint64_t j = 0; j < kJobs; ++j) {
      CheckOk(env.RemoveFile(dir + "/out_" + std::to_string(j)),
              "cleanup out");
    }
  }
  table.Print(std::cout);

  for (uint64_t j = 0; j < kJobs; ++j) {
    CheckOk(env.RemoveFile(inputs[j]), "cleanup input");
  }
  RemoveTreeBestEffort(&env, dir);
}

}  // namespace
}  // namespace bench
}  // namespace twrs

int main(int argc, char** argv) {
  twrs::bench::ParseBenchArgs(argc, argv);
  bool enable_metrics = true;
  for (int i = 1; i < argc; ++i) {
    // A/B switch for measuring the registry's overhead: the pinned CI
    // profile runs with metrics on, so regressions gate the instrumented
    // path users actually run.
    if (std::string(argv[i]) == "--no-metrics") enable_metrics = false;
  }
  twrs::bench::Run(enable_metrics);
  twrs::bench::JsonReporter::Global().Flush();
  return 0;
}
