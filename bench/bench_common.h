#ifndef TWRS_BENCH_BENCH_COMMON_H_
#define TWRS_BENCH_BENCH_COMMON_H_

#include <stdlib.h>

#include <cstdint>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/replacement_selection.h"
#include "core/run_sink.h"
#include "core/two_way_replacement_selection.h"
#include "io/posix_env.h"
#include "io/sim_disk_env.h"
#include "merge/external_sorter.h"
#include "merge/kway_merge.h"
#include "stats/anova.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"
#include "workload/generators.h"

namespace twrs {
namespace bench {

/// Workload scale multiplier, settable via TWRS_BENCH_SCALE (default 1).
/// The defaults keep every benchmark binary under roughly a minute on a
/// laptop; raise the scale to approach the paper's 100 MB–1 GB inputs.
inline double Scale() {
  const char* env = getenv("TWRS_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double v = atof(env);
  return v > 0 ? v : 1.0;
}

inline uint64_t Scaled(uint64_t n) {
  return static_cast<uint64_t>(static_cast<double>(n) * Scale());
}

/// Aborts the benchmark on unexpected errors (benchmarks have no caller to
/// propagate Status to).
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
    abort();
  }
}

/// Creates a unique scratch directory under /tmp.
inline std::string ScratchDir() {
  std::string templ = "/tmp/twrs_bench_XXXXXX";
  char* dir = mkdtemp(templ.data());
  if (dir == nullptr) {
    fprintf(stderr, "FATAL mkdtemp failed\n");
    abort();
  }
  return std::string(dir);
}

/// Counts the runs RS generates for a dataset (no file I/O).
inline RunGenStats CountRs(size_t memory, Dataset dataset,
                           WorkloadOptions workload) {
  auto source = MakeWorkload(dataset, workload);
  ReplacementSelectionOptions options;
  options.memory_records = memory;
  ReplacementSelection rs(options);
  CountingRunSink sink;
  RunGenStats stats;
  CheckOk(rs.Generate(source.get(), &sink, &stats), "RS generate");
  return stats;
}

/// Counts the runs 2WRS generates for a dataset (no file I/O).
inline RunGenStats Count2wrs(const TwoWayOptions& options, Dataset dataset,
                             WorkloadOptions workload) {
  auto source = MakeWorkload(dataset, workload);
  TwoWayReplacementSelection twrs(options);
  CountingRunSink sink;
  RunGenStats stats;
  CheckOk(twrs.Generate(source.get(), &sink, &stats), "2WRS generate");
  return stats;
}

/// One timed end-to-end sort, mirroring the Chapter 6 measurements: the
/// input is materialized to a file first, the sort reads it back through a
/// simulated-disk Env, and both real and simulated times are reported for
/// the run generation phase and the total.
struct TimedSort {
  uint64_t num_runs = 0;
  double run_gen_seconds = 0.0;
  double total_seconds = 0.0;
  double sim_run_gen_seconds = 0.0;
  double sim_total_seconds = 0.0;
  uint64_t merge_steps = 0;
};

struct TimedSortSpec {
  RunGenAlgorithm algorithm = RunGenAlgorithm::kTwoWayReplacementSelection;
  Dataset dataset = Dataset::kRandom;
  uint64_t records = 0;
  size_t memory = 0;
  size_t fan_in = 10;
  uint64_t sections = 50;
  uint64_t seed = 1;
  std::string scratch_dir;
};

inline TimedSort RunTimedSort(const TimedSortSpec& spec) {
  PosixEnv posix;
  SimDiskEnv env(&posix);

  WorkloadOptions workload;
  workload.num_records = spec.records;
  workload.sections = spec.sections;
  workload.seed = spec.seed;
  const std::string input_path = spec.scratch_dir + "/input";
  CheckOk(WriteWorkloadToFile(&posix, spec.dataset, workload, input_path),
          "write workload");

  ExternalSortOptions options;
  options.algorithm = spec.algorithm;
  options.memory_records = spec.memory;
  options.twrs = TwoWayOptions::Recommended(spec.memory, spec.seed);
  options.fan_in = spec.fan_in;
  options.temp_dir = spec.scratch_dir + "/tmp";
  ExternalSorter sorter(&env, options);

  FileRecordSource source(&env, input_path);
  env.model().Reset();
  ExternalSortResult result;
  CheckOk(sorter.Sort(&source, spec.scratch_dir + "/out", &result), "sort");

  TimedSort timed;
  timed.num_runs = result.run_gen.num_runs();
  timed.run_gen_seconds = result.run_gen_seconds;
  timed.total_seconds = result.total_seconds;
  timed.sim_total_seconds = env.model().SimulatedSeconds();
  // Simulated run-generation time: replay only the run generation phase.
  {
    SimDiskEnv gen_env(&posix);
    FileRecordSource gen_source(&gen_env, input_path);
    FileRunSink sink(&gen_env, spec.scratch_dir + "/tmp", "gen_only");
    CheckOk(gen_env.CreateDirIfMissing(spec.scratch_dir + "/tmp"),
            "mkdir tmp");
    std::unique_ptr<RunGenerator> generator =
        MakeRunGenerator(spec.algorithm, spec.memory, options.twrs);
    CheckOk(generator->Generate(&gen_source, &sink, nullptr), "gen replay");
    timed.sim_run_gen_seconds = gen_env.model().SimulatedSeconds();
    for (const RunInfo& run : sink.runs()) {
      CheckOk(RemoveRunFiles(&posix, run), "cleanup");
    }
  }
  timed.merge_steps = result.merge.merge_steps;
  CheckOk(posix.RemoveFile(input_path), "cleanup input");
  CheckOk(posix.RemoveFile(spec.scratch_dir + "/out"), "cleanup out");
  return timed;
}

/// The four ANOVA factors of §5.2 with the paper's levels.
inline constexpr int kBufferSetupLevels = 3;  // input only / both / victim only
inline constexpr double kBufferSizeLevels[] = {0.0002, 0.002, 0.02, 0.2};
inline constexpr int kNumBufferSizeLevels = 4;

inline TwoWayOptions ConfigForLevels(size_t memory, int setup, int size,
                                     int input_h, int output_h,
                                     uint64_t seed) {
  TwoWayOptions options;
  options.memory_records = memory;
  options.buffer_fraction = kBufferSizeLevels[size];
  options.use_input_buffer = setup == 0 || setup == 1;
  options.use_victim_buffer = setup == 1 || setup == 2;
  options.input_heuristic = static_cast<InputHeuristic>(input_h);
  options.output_heuristic = static_cast<OutputHeuristic>(output_h);
  options.seed = seed;
  return options;
}

/// Runs the §5.2 crossed factorial experiment for one dataset and returns
/// ANOVA observations (factors: buffer setup, buffer size, input heuristic,
/// output heuristic; response: number of runs).
inline std::vector<Observation> RunFactorial(Dataset dataset, size_t memory,
                                             uint64_t records, int seeds) {
  std::vector<Observation> observations;
  for (int setup = 0; setup < kBufferSetupLevels; ++setup) {
    for (int size = 0; size < kNumBufferSizeLevels; ++size) {
      for (int ih = 0; ih < kNumInputHeuristics; ++ih) {
        for (int oh = 0; oh < kNumOutputHeuristics; ++oh) {
          for (int seed = 1; seed <= seeds; ++seed) {
            WorkloadOptions workload;
            workload.num_records = records;
            workload.seed = static_cast<uint64_t>(seed);
            const TwoWayOptions options =
                ConfigForLevels(memory, setup, size, ih, oh, seed);
            const RunGenStats stats = Count2wrs(options, dataset, workload);
            Observation obs;
            obs.levels = {setup, size, ih, oh};
            obs.y = static_cast<double>(stats.num_runs());
            observations.push_back(std::move(obs));
          }
        }
      }
    }
  }
  return observations;
}

/// Prints an AnovaResult in the layout of the paper's Tables 5.2–5.11.
inline void PrintAnovaTable(const AnovaResult& result,
                            const std::vector<AnovaTerm>& terms,
                            const std::vector<std::string>& factor_names) {
  TablePrinter table({"Factor", "SS", "D.F.", "MSS", "F", "Sig.", "Power"});
  for (size_t t = 0; t < result.rows.size(); ++t) {
    const AnovaRow& row = result.rows[t];
    table.AddRow({terms[t].Name(factor_names), TablePrinter::Num(row.ss, 3),
                  std::to_string(row.df), TablePrinter::Num(row.ms, 3),
                  TablePrinter::Num(row.f, 3),
                  TablePrinter::Num(row.significance, 4),
                  TablePrinter::Num(row.power, 3)});
  }
  table.AddRow({"Residual", TablePrinter::Num(result.ss_error, 3),
                std::to_string(result.df_error),
                TablePrinter::Num(result.ms_error, 3), "", "", ""});
  table.Print(std::cout);
  printf("R^2 = %.3f   sigma = %.3f   CV = %.2f%%   grand mean = %.2f\n",
         result.r_squared, result.sigma, result.cv_percent,
         result.grand_mean);
}

}  // namespace bench
}  // namespace twrs

#endif  // TWRS_BENCH_BENCH_COMMON_H_
