#ifndef TWRS_BENCH_BENCH_COMMON_H_
#define TWRS_BENCH_BENCH_COMMON_H_

#include <stdlib.h>
#include <time.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/build_info.h"
#include "simd/dispatch.h"

#include "core/replacement_selection.h"
#include "core/run_sink.h"
#include "core/two_way_replacement_selection.h"
#include "io/posix_env.h"
#include "io/sim_disk_env.h"
#include "io/uring_env.h"
#include "merge/external_sorter.h"
#include "merge/kway_merge.h"
#include "stats/anova.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"
#include "workload/generators.h"

namespace twrs {
namespace bench {

/// Workload scale multiplier, settable via TWRS_BENCH_SCALE (default 1).
/// The defaults keep every benchmark binary under roughly a minute on a
/// laptop; raise the scale to approach the paper's 100 MB–1 GB inputs.
inline double Scale() {
  const char* env = getenv("TWRS_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double v = atof(env);
  return v > 0 ? v : 1.0;
}

inline uint64_t Scaled(uint64_t n) {
  return static_cast<uint64_t>(static_cast<double>(n) * Scale());
}

/// One result row of the machine-readable --json report: an ordered set of
/// key/value fields serialized as a JSON object.
class JsonEntry {
 public:
  JsonEntry& Str(const std::string& key, const std::string& value) {
    return Field(key, "\"" + Escaped(value) + "\"");
  }

  JsonEntry& Num(const std::string& key, double value) {
    char buf[64];
    snprintf(buf, sizeof(buf), "%.9g", value);
    return Field(key, buf);
  }

  JsonEntry& Int(const std::string& key, uint64_t value) {
    return Field(key, std::to_string(value));
  }

  /// The entry rendered as a JSON object.
  std::string Render() const { return "{" + body_ + "}"; }

 private:
  static std::string Escaped(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  JsonEntry& Field(const std::string& key, const std::string& json_value) {
    if (!body_.empty()) body_ += ", ";
    body_ += "\"" + Escaped(key) + "\": " + json_value;
    return *this;
  }

  std::string body_;
};

/// Collects JsonEntry rows and writes them as one JSON document, so
/// benchmark runs leave a machine-readable perf trajectory next to the
/// human-readable tables (e.g. `bench_fig6_6 --json BENCH_fig6_6.json`).
/// Thread-safe; a process-wide instance is reached through Global().
class JsonReporter {
 public:
  static JsonReporter& Global() {
    static JsonReporter reporter;
    return reporter;
  }

  /// Enables reporting; without a path Add/Flush are no-ops.
  void SetPath(std::string path) {
    std::lock_guard<std::mutex> lock(mu_);
    path_ = std::move(path);
  }

  /// Name recorded at the top of the report (the benchmark binary's name).
  void SetName(std::string name) {
    std::lock_guard<std::mutex> lock(mu_);
    name_ = std::move(name);
  }

  /// Comparison profile recorded in the report header. bench_diff.py
  /// refuses to compare reports whose profiles differ, so runs with
  /// non-default knobs (scale, pinned shard counts, ...) should set a
  /// distinct profile. Defaults to the bench name.
  void SetProfile(std::string profile) {
    std::lock_guard<std::mutex> lock(mu_);
    profile_ = std::move(profile);
  }

  void Add(const JsonEntry& entry) {
    std::lock_guard<std::mutex> lock(mu_);
    if (path_.empty()) return;
    entries_.push_back(entry.Render());
  }

  /// Writes `{"bench": <name>, "scale": <s>, "results": [...]}` to the
  /// configured path. No-op when --json was not given.
  void Flush();

 private:
  std::mutex mu_;
  std::string path_;
  std::string name_ = "bench";
  std::string profile_;  ///< empty = use name_
  std::vector<std::string> entries_;
};

/// Parses the flags shared by every standalone benchmark driver
/// (`--json <path>`, `--profile <name>`) and seeds the global reporter
/// with the binary's name.
inline void ParseBenchArgs(int argc, char** argv) {
  if (argc > 0) {
    std::string name = argv[0];
    const size_t slash = name.find_last_of('/');
    if (slash != std::string::npos) name = name.substr(slash + 1);
    JsonReporter::Global().SetName(name);
  }
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      JsonReporter::Global().SetPath(argv[++i]);
    } else if (std::string(argv[i]) == "--profile" && i + 1 < argc) {
      JsonReporter::Global().SetProfile(argv[++i]);
    }
  }
}

inline void JsonReporter::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (path_.empty()) return;
  std::ofstream out(path_);
  if (!out) {
    fprintf(stderr, "WARNING: cannot write JSON report to %s\n",
            path_.c_str());
    return;
  }
  // Build/run metadata, so a comparator can refuse to diff reports that
  // were produced by different schemas, profiles or workload scales.
  char timestamp[32] = "unknown";
  {
    const time_t now = time(nullptr);
    struct tm utc;
    if (gmtime_r(&now, &utc) != nullptr) {
      strftime(timestamp, sizeof(timestamp), "%Y-%m-%dT%H:%M:%SZ", &utc);
    }
  }
  out << "{\n  \"bench\": \"" << name_ << "\",\n  \"schema_version\": "
      << TWRS_BENCH_SCHEMA_VERSION << ",\n  \"git_sha\": \""
      << TWRS_BUILD_GIT_SHA << "\",\n  \"profile\": \""
      << (profile_.empty() ? name_ : profile_) << "\",\n  \"timestamp\": \""
      << timestamp << "\",\n  \"simd_dispatch\": \""
      << simd::DispatchLevelName(simd::ActiveDispatchLevel())
      << "\",\n  \"scale\": " << Scale() << ",\n  \"results\": [\n";
  for (size_t i = 0; i < entries_.size(); ++i) {
    out << "    " << entries_[i] << (i + 1 < entries_.size() ? "," : "")
        << "\n";
  }
  out << "  ]\n}\n";
  printf("JSON report: %s (%zu entries)\n", path_.c_str(), entries_.size());
}

/// Aborts the benchmark on unexpected errors (benchmarks have no caller to
/// propagate Status to).
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
    abort();
  }
}

/// Creates a unique scratch directory under /tmp.
inline std::string ScratchDir() {
  std::string templ = "/tmp/twrs_bench_XXXXXX";
  char* dir = mkdtemp(templ.data());
  if (dir == nullptr) {
    fprintf(stderr, "FATAL mkdtemp failed\n");
    abort();
  }
  return std::string(dir);
}

/// Counts the runs RS generates for a dataset (no file I/O).
inline RunGenStats CountRs(size_t memory, Dataset dataset,
                           WorkloadOptions workload) {
  auto source = MakeWorkload(dataset, workload);
  ReplacementSelectionOptions options;
  options.memory_records = memory;
  ReplacementSelection rs(options);
  CountingRunSink sink;
  RunGenStats stats;
  CheckOk(rs.Generate(source.get(), &sink, &stats), "RS generate");
  return stats;
}

/// Counts the runs 2WRS generates for a dataset (no file I/O).
inline RunGenStats Count2wrs(const TwoWayOptions& options, Dataset dataset,
                             WorkloadOptions workload) {
  auto source = MakeWorkload(dataset, workload);
  TwoWayReplacementSelection twrs(options);
  CountingRunSink sink;
  RunGenStats stats;
  CheckOk(twrs.Generate(source.get(), &sink, &stats), "2WRS generate");
  return stats;
}

/// One timed end-to-end sort, mirroring the Chapter 6 measurements: the
/// input is materialized to a file first, the sort reads it back through a
/// simulated-disk Env, and both real and simulated times are reported for
/// the run generation phase and the total.
struct TimedSort {
  uint64_t num_runs = 0;
  double run_gen_seconds = 0.0;
  double total_seconds = 0.0;
  double sim_run_gen_seconds = 0.0;
  double sim_total_seconds = 0.0;
  uint64_t merge_steps = 0;
};

struct TimedSortSpec {
  RunGenAlgorithm algorithm = RunGenAlgorithm::kTwoWayReplacementSelection;
  Dataset dataset = Dataset::kRandom;
  uint64_t records = 0;
  size_t memory = 0;
  size_t fan_in = 10;
  uint64_t sections = 50;
  uint64_t seed = 1;
  std::string scratch_dir;

  /// Pipelined execution knobs (all off = serial reference path).
  ParallelOptions parallel;

  /// Simulated disk parameters. With `disk.realtime` the sort pays the
  /// simulated I/O time in real sleeps, so wall-clock numbers expose how
  /// much of it the pipelined path hides.
  DiskModelConfig disk;

  /// Optional row label in the JSON report.
  std::string label;
};

inline TimedSort RunTimedSort(const TimedSortSpec& spec) {
  PosixEnv posix;
  SimDiskEnv env(&posix, spec.disk);

  WorkloadOptions workload;
  workload.num_records = spec.records;
  workload.sections = spec.sections;
  workload.seed = spec.seed;
  const std::string input_path = spec.scratch_dir + "/input";
  CheckOk(WriteWorkloadToFile(&posix, spec.dataset, workload, input_path),
          "write workload");

  ExternalSortOptions options;
  options.algorithm = spec.algorithm;
  options.memory_records = spec.memory;
  options.twrs = TwoWayOptions::Recommended(spec.memory, spec.seed);
  options.fan_in = spec.fan_in;
  options.temp_dir = spec.scratch_dir + "/tmp";
  options.parallel = spec.parallel;
  ExternalSorter sorter(&env, options);

  FileRecordSource source(&env, input_path);
  env.model().Reset();
  ExternalSortResult result;
  CheckOk(sorter.Sort(&source, spec.scratch_dir + "/out", &result), "sort");

  TimedSort timed;
  timed.num_runs = result.run_gen.num_runs();
  timed.run_gen_seconds = result.run_gen_seconds;
  timed.total_seconds = result.total_seconds;
  timed.sim_total_seconds = env.model().SimulatedSeconds();
  // Simulated run-generation time: replay only the run generation phase
  // (accounting only — no real-time sleeps on the replay).
  {
    DiskModelConfig replay_disk = spec.disk;
    replay_disk.realtime = false;
    SimDiskEnv gen_env(&posix, replay_disk);
    FileRecordSource gen_source(&gen_env, input_path);
    FileRunSink sink(&gen_env, spec.scratch_dir + "/tmp", "gen_only");
    CheckOk(gen_env.CreateDirIfMissing(spec.scratch_dir + "/tmp"),
            "mkdir tmp");
    std::unique_ptr<RunGenerator> generator =
        MakeRunGenerator(spec.algorithm, spec.memory, options.twrs);
    CheckOk(generator->Generate(&gen_source, &sink, nullptr), "gen replay");
    timed.sim_run_gen_seconds = gen_env.model().SimulatedSeconds();
    for (const RunInfo& run : sink.runs()) {
      CheckOk(RemoveRunFiles(&posix, run), "cleanup");
    }
  }
  timed.merge_steps = result.merge.merge_steps;
  CheckOk(posix.RemoveFile(input_path), "cleanup input");
  CheckOk(posix.RemoveFile(spec.scratch_dir + "/out"), "cleanup out");

  JsonEntry entry;
  if (!spec.label.empty()) entry.Str("label", spec.label);
  // io_backend is an identity field for bench_diff: simulated-disk rows
  // always run the default (posix-backed) Env.
  entry.Str("io_backend", IoBackendName(IoBackend::kDefault))
      .Str("algorithm", RunGenAlgorithmName(spec.algorithm))
      .Str("dataset", DatasetName(spec.dataset))
      .Int("records", spec.records)
      .Int("memory_records", spec.memory)
      .Int("fan_in", spec.fan_in)
      .Int("sections", spec.sections)
      .Int("seed", spec.seed)
      .Int("worker_threads", spec.parallel.worker_threads)
      .Int("final_merge_threads", spec.parallel.final_merge_threads)
      .Int("num_runs", timed.num_runs)
      .Int("merge_steps", timed.merge_steps)
      .Num("run_gen_seconds", timed.run_gen_seconds)
      .Num("total_seconds", timed.total_seconds)
      .Num("sim_run_gen_seconds", timed.sim_run_gen_seconds)
      .Num("sim_total_seconds", timed.sim_total_seconds)
      .Int("bytes_read", result.bytes_read)
      .Int("bytes_written", result.bytes_written)
      .Num("records_per_second",
           timed.total_seconds > 0
               ? static_cast<double>(spec.records) / timed.total_seconds
               : 0.0);
  JsonReporter::Global().Add(entry);
  return timed;
}

/// One timed end-to-end sort on the REAL filesystem through an explicit
/// I/O backend — the posix-vs-uring sweep unit. No simulated disk: the
/// point is what the kernel ring actually buys over the pump-thread
/// decorators on genuine file I/O. Verifies the output and returns its
/// count/checksum through the out-params so the caller can abort on any
/// cross-backend divergence.
inline TimedSort RunBackendTimedSort(const TimedSortSpec& spec,
                                     IoBackend backend, uint64_t* count,
                                     KeyChecksum* checksum) {
  PosixEnv posix;
  WorkloadOptions workload;
  workload.num_records = spec.records;
  workload.sections = spec.sections;
  workload.seed = spec.seed;
  const std::string input_path = spec.scratch_dir + "/backend_input";
  CheckOk(WriteWorkloadToFile(&posix, spec.dataset, workload, input_path),
          "write workload");

  ExternalSortOptions options;
  options.algorithm = spec.algorithm;
  options.memory_records = spec.memory;
  options.twrs = TwoWayOptions::Recommended(spec.memory, spec.seed);
  options.fan_in = spec.fan_in;
  options.temp_dir = spec.scratch_dir + "/tmp";
  options.parallel = spec.parallel;
  options.io_backend = backend;
  ExternalSorter sorter(&posix, options);

  const std::string out = spec.scratch_dir + "/backend_out";
  FileRecordSource source(&posix, input_path);
  ExternalSortResult result;
  CheckOk(sorter.Sort(&source, out, &result), "backend sort");
  CheckOk(source.status(), "read input");

  TimedSort timed;
  timed.num_runs = result.run_gen.num_runs();
  timed.run_gen_seconds = result.run_gen_seconds;
  timed.total_seconds = result.total_seconds;
  timed.merge_steps = result.merge.merge_steps;

  CheckOk(VerifySortedFile(&posix, out, count, checksum), "verify output");
  CheckOk(posix.RemoveFile(input_path), "cleanup input");
  CheckOk(posix.RemoveFile(out), "cleanup out");

  JsonEntry entry;
  if (!spec.label.empty()) entry.Str("label", spec.label);
  entry.Str("io_backend", IoBackendName(backend))
      .Str("algorithm", RunGenAlgorithmName(spec.algorithm))
      .Str("dataset", DatasetName(spec.dataset))
      .Int("records", spec.records)
      .Int("memory_records", spec.memory)
      .Int("fan_in", spec.fan_in)
      .Int("sections", spec.sections)
      .Int("seed", spec.seed)
      .Int("worker_threads", spec.parallel.worker_threads)
      .Int("final_merge_threads", spec.parallel.final_merge_threads)
      .Int("num_runs", timed.num_runs)
      .Int("merge_steps", timed.merge_steps)
      .Num("run_gen_seconds", timed.run_gen_seconds)
      .Num("total_seconds", timed.total_seconds)
      .Int("bytes_read", result.bytes_read)
      .Int("bytes_written", result.bytes_written)
      .Num("records_per_second",
           timed.total_seconds > 0
               ? static_cast<double>(spec.records) / timed.total_seconds
               : 0.0);
  JsonReporter::Global().Add(entry);
  return timed;
}

/// The four ANOVA factors of §5.2 with the paper's levels.
inline constexpr int kBufferSetupLevels = 3;  // input only / both / victim only
inline constexpr double kBufferSizeLevels[] = {0.0002, 0.002, 0.02, 0.2};
inline constexpr int kNumBufferSizeLevels = 4;

inline TwoWayOptions ConfigForLevels(size_t memory, int setup, int size,
                                     int input_h, int output_h,
                                     uint64_t seed) {
  TwoWayOptions options;
  options.memory_records = memory;
  options.buffer_fraction = kBufferSizeLevels[size];
  options.use_input_buffer = setup == 0 || setup == 1;
  options.use_victim_buffer = setup == 1 || setup == 2;
  options.input_heuristic = static_cast<InputHeuristic>(input_h);
  options.output_heuristic = static_cast<OutputHeuristic>(output_h);
  options.seed = seed;
  return options;
}

/// Runs the §5.2 crossed factorial experiment for one dataset and returns
/// ANOVA observations (factors: buffer setup, buffer size, input heuristic,
/// output heuristic; response: number of runs).
inline std::vector<Observation> RunFactorial(Dataset dataset, size_t memory,
                                             uint64_t records, int seeds) {
  std::vector<Observation> observations;
  for (int setup = 0; setup < kBufferSetupLevels; ++setup) {
    for (int size = 0; size < kNumBufferSizeLevels; ++size) {
      for (int ih = 0; ih < kNumInputHeuristics; ++ih) {
        for (int oh = 0; oh < kNumOutputHeuristics; ++oh) {
          for (int seed = 1; seed <= seeds; ++seed) {
            WorkloadOptions workload;
            workload.num_records = records;
            workload.seed = static_cast<uint64_t>(seed);
            const TwoWayOptions options =
                ConfigForLevels(memory, setup, size, ih, oh, seed);
            const RunGenStats stats = Count2wrs(options, dataset, workload);
            Observation obs;
            obs.levels = {setup, size, ih, oh};
            obs.y = static_cast<double>(stats.num_runs());
            observations.push_back(std::move(obs));
          }
        }
      }
    }
  }
  return observations;
}

/// Prints an AnovaResult in the layout of the paper's Tables 5.2–5.11.
inline void PrintAnovaTable(const AnovaResult& result,
                            const std::vector<AnovaTerm>& terms,
                            const std::vector<std::string>& factor_names) {
  TablePrinter table({"Factor", "SS", "D.F.", "MSS", "F", "Sig.", "Power"});
  for (size_t t = 0; t < result.rows.size(); ++t) {
    const AnovaRow& row = result.rows[t];
    table.AddRow({terms[t].Name(factor_names), TablePrinter::Num(row.ss, 3),
                  std::to_string(row.df), TablePrinter::Num(row.ms, 3),
                  TablePrinter::Num(row.f, 3),
                  TablePrinter::Num(row.significance, 4),
                  TablePrinter::Num(row.power, 3)});
  }
  table.AddRow({"Residual", TablePrinter::Num(result.ss_error, 3),
                std::to_string(result.df_error),
                TablePrinter::Num(result.ms_error, 3), "", "", ""});
  table.Print(std::cout);
  printf("R^2 = %.3f   sigma = %.3f   CV = %.2f%%   grand mean = %.2f\n",
         result.r_squared, result.sigma, result.cv_percent,
         result.grand_mean);
}

}  // namespace bench
}  // namespace twrs

#endif  // TWRS_BENCH_BENCH_COMMON_H_
