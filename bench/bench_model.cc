// Reproduces the mathematical-model results of §3.6:
//  - §3.6.1: the stable solution for uniform input yields runs of exactly
//    twice the memory; the first run from uniformly-filled memory is e-1.
//  - Figure 3.8: starting from m(x,0) = 1, the memory density converges to
//    the stable solution 2 - 2x within three runs (printed as sampled
//    density values per run).

#include <cmath>

#include "bench/bench_common.h"
#include "model/snowplow.h"

namespace twrs {
namespace bench {
namespace {

void Run() {
  printf("== §3.6 snowplow model of replacement selection ==\n\n");

  {
    printf("-- stable solution (m = 2 - 2x): run length per revolution --\n");
    SnowplowOptions options;
    options.bins = 4096;
    SnowplowModel model(options, [](double) { return 1.0; });
    model.SetInitialDensity(SnowplowModel::StableUniformDensity);
    TablePrinter table({"run", "run length / memory", "theory"});
    for (int run = 1; run <= 3; ++run) {
      table.AddRow({std::to_string(run),
                    TablePrinter::Num(model.SimulateRun().run_length, 4),
                    "2.0"});
    }
    table.Print(std::cout);
  }

  {
    printf("\n-- Figure 3.8: convergence from uniform memory contents --\n");
    SnowplowOptions options;
    options.bins = 4096;
    SnowplowModel model(options, [](double) { return 1.0; });
    TablePrinter table({"after run", "run length", "m(0.1)", "m(0.3)",
                        "m(0.5)", "m(0.7)", "m(0.9)", "max |m - (2-2x)|"});
    auto add_row = [&](const std::string& label, double run_length) {
      double max_err = 0.0;
      for (double x = 0.02; x < 1.0; x += 0.02) {
        max_err = std::max(max_err,
                           std::fabs(model.DensityAt(x) -
                                     SnowplowModel::StableUniformDensity(x)));
      }
      table.AddRow({label,
                    run_length < 0 ? "-" : TablePrinter::Num(run_length, 4),
                    TablePrinter::Num(model.DensityAt(0.1), 3),
                    TablePrinter::Num(model.DensityAt(0.3), 3),
                    TablePrinter::Num(model.DensityAt(0.5), 3),
                    TablePrinter::Num(model.DensityAt(0.7), 3),
                    TablePrinter::Num(model.DensityAt(0.9), 3),
                    TablePrinter::Num(max_err, 4)});
    };
    add_row("0 (initial, m=1)", -1.0);
    for (int run = 1; run <= 4; ++run) {
      const double run_length = model.SimulateRun().run_length;
      add_row(std::to_string(run), run_length);
    }
    table.Print(std::cout);
    printf(
        "\nExpected shape (paper): first run length e-1 = %.4f, subsequent\n"
        "runs -> 2.0; after three runs the density is indistinguishable\n"
        "from the stable 2-2x (Fig 3.8(d)).\n",
        std::exp(1.0) - 1.0);
  }

  {
    printf("\n-- extension: non-uniform input distributions --\n");
    TablePrinter table({"data(x)", "stable run length / memory"});
    struct NamedDensity {
      const char* name;
      double (*density)(double);
    };
    const NamedDensity densities[] = {
        {"uniform", [](double) { return 1.0; }},
        {"low-half only", [](double x) { return x < 0.5 ? 2.0 : 0.0; }},
        {"linear rising", [](double x) { return 2.0 * x; }},
        {"v-shaped", [](double x) { return std::fabs(x - 0.5) * 4.0; }},
    };
    for (const NamedDensity& d : densities) {
      SnowplowOptions options;
      options.bins = 4096;
      SnowplowModel model(options, d.density);
      double run_length = 0.0;
      for (int run = 0; run < 12; ++run) {
        run_length = model.SimulateRun().run_length;
      }
      table.AddRow({d.name, TablePrinter::Num(run_length, 3)});
    }
    table.Print(std::cout);
    printf(
        "(the model answers §7.1's future-work question: run lengths for\n"
        " arbitrary input distributions without running the algorithm)\n");
  }
}

}  // namespace
}  // namespace bench
}  // namespace twrs

int main(int argc, char** argv) {
  twrs::bench::ParseBenchArgs(argc, argv);
  twrs::bench::Run();
  twrs::bench::JsonReporter::Global().Flush();
  return 0;
}
