// Reproduces the statistical analysis of §5.2.6 (mixed imbalanced input):
//  - Table 5.11 analogue: WLS ANOVA with first- and second-order
//    interactions of buffer setup, input heuristic and output heuristic.
//  - Figure 5.11: mean runs by buffer setup.
//  - Figure 5.12: mean runs by input heuristic for each buffer setup — the
//    paper's key observation is that Mean/Median profit from having both
//    buffers while the other heuristics are setup-insensitive.
//  - Table 5.12 analogue: Tukey comparison over the (setup x input x
//    output) interaction cells restricted to the best levels.

#include "bench/bench_common.h"
#include "stats/tukey.h"

namespace twrs {
namespace bench {
namespace {

const std::vector<std::string> kFactorNames = {
    "i (buffer setup)", "j (buffer size)", "k (input heuristic)",
    "l (output heuristic)"};
const std::vector<int> kLevels = {kBufferSetupLevels, kNumBufferSizeLevels,
                                  kNumInputHeuristics, kNumOutputHeuristics};

const char* InputName(int l) {
  return InputHeuristicName(static_cast<InputHeuristic>(l));
}
const char* SetupName(int s) {
  const char* names[] = {"input only", "both", "victim only"};
  return names[s];
}

void Run() {
  const size_t memory = static_cast<size_t>(Scaled(1200));
  const uint64_t records = Scaled(48000);
  const int seeds = 3;
  printf("== §5.2.6: ANOVA for mixed imbalanced input ==\n");
  printf("memory = %zu, input = %llu records, %d seeds\n\n", memory,
         static_cast<unsigned long long>(records), seeds);

  std::vector<Observation> obs =
      RunFactorial(Dataset::kMixedImbalanced, memory, records, seeds);
  CheckOk(ApplyWlsWeights(&obs, /*factor=*/1, kNumBufferSizeLevels), "wls");

  printf("-- Table 5.11 analogue: WLS model with interactions --\n");
  const std::vector<AnovaTerm> terms = {{{0}},    {{1}},    {{2}},
                                        {{3}},    {{0, 2}}, {{0, 3}},
                                        {{2, 3}}, {{0, 2, 3}}};
  AnovaResult result;
  CheckOk(FitAnova(obs, kLevels, terms, &result), "anova");
  PrintAnovaTable(result, terms, kFactorNames);
  printf("\n");

  printf("-- Figure 5.11: mean runs by buffer setup --\n");
  {
    TablePrinter table({"Buffer setup", "mean runs"});
    for (int setup = 0; setup < kBufferSetupLevels; ++setup) {
      double sum = 0.0;
      int n = 0;
      for (const Observation& o : obs) {
        if (o.levels[0] != setup) continue;
        sum += o.y;
        ++n;
      }
      table.AddRow({SetupName(setup), TablePrinter::Num(sum / n, 1)});
    }
    table.Print(std::cout);
    printf("(paper: using both buffers gives the best average)\n\n");
  }

  printf("-- Figure 5.12: mean runs by input heuristic per buffer setup --\n");
  {
    TablePrinter table([&] {
      std::vector<std::string> headers = {"input heuristic"};
      for (int s = 0; s < kBufferSetupLevels; ++s) headers.push_back(SetupName(s));
      return headers;
    }());
    for (int ih = 0; ih < kNumInputHeuristics; ++ih) {
      std::vector<std::string> row = {InputName(ih)};
      for (int setup = 0; setup < kBufferSetupLevels; ++setup) {
        double sum = 0.0;
        int n = 0;
        for (const Observation& o : obs) {
          if (o.levels[0] != setup || o.levels[2] != ih) continue;
          sum += o.y;
          ++n;
        }
        row.push_back(TablePrinter::Num(sum / n, 1));
      }
      table.AddRow(row);
    }
    table.Print(std::cout);
    printf(
        "(paper: Mean and Median improve sharply when both buffers exist;\n"
        " the other heuristics barely react to the buffer setup)\n\n");
  }

  printf("-- Table 5.12 analogue: Tukey over (setup x input heuristic) --\n");
  {
    int combined_levels = 0;
    std::vector<Observation> combined =
        CombineFactors(obs, {0, 2}, kLevels, &combined_levels);
    TukeyResult tukey;
    CheckOk(TukeyHSD(combined, 0, combined_levels, result.ms_error,
                     result.df_error, &tukey),
            "tukey");
    printf("best (setup, input heuristic) cells at alpha 0.05:\n");
    for (int level : tukey.BestLevels()) {
      const int setup = level / kNumInputHeuristics;
      const int ih = level % kNumInputHeuristics;
      printf("  %s + %s (mean runs %.1f)\n", SetupName(setup), InputName(ih),
             tukey.level_means[level]);
    }
  }
  printf(
      "\nExpected shape (paper): the optimal cells pair both buffers with\n"
      "the Mean or Median input heuristic.\n");
}

}  // namespace
}  // namespace bench
}  // namespace twrs

int main(int argc, char** argv) {
  twrs::bench::ParseBenchArgs(argc, argv);
  twrs::bench::Run();
  twrs::bench::JsonReporter::Global().Flush();
  return 0;
}
