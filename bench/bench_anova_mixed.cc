// Reproduces the statistical analysis of §5.2.5 (mixed balanced input):
//  - Figure 5.5: configurations without the victim buffer behave far worse
//    and with much higher variance.
//  - Tables 5.5/5.6: ANOVA over buffer size, input and output heuristics
//    (victim-less configurations removed), with WLS weighting by the
//    variance of each buffer-size level.
//  - Tables 5.7/5.8: Tukey pairwise comparison of input/output heuristics.
//  - Figure 5.8: mean number of runs per (input x output) heuristic pair.

#include "bench/bench_common.h"
#include "stats/tukey.h"

namespace twrs {
namespace bench {
namespace {

const std::vector<std::string> kFactorNames = {
    "i (buffer setup)", "j (buffer size)", "k (input heuristic)",
    "l (output heuristic)"};
const std::vector<int> kLevels = {kBufferSetupLevels, kNumBufferSizeLevels,
                                  kNumInputHeuristics, kNumOutputHeuristics};

void PrintTukeyMatrix(const TukeyResult& tukey, int levels,
                      const char* (*name)(int)) {
  TablePrinter table([&] {
    std::vector<std::string> headers = {""};
    for (int l = 0; l < levels; ++l) headers.push_back(name(l));
    return headers;
  }());
  for (int i = 0; i < levels; ++i) {
    std::vector<std::string> row = {name(i)};
    for (int j = 0; j < levels; ++j) {
      row.push_back(i == j ? "-" : TablePrinter::Num(tukey.p_values[i][j], 3));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
}

const char* InputName(int l) {
  return InputHeuristicName(static_cast<InputHeuristic>(l));
}
const char* OutputName(int l) {
  return OutputHeuristicName(static_cast<OutputHeuristic>(l));
}

void Run() {
  const size_t memory = static_cast<size_t>(Scaled(1200));
  const uint64_t records = Scaled(48000);
  const int seeds = 3;
  printf("== §5.2.5: ANOVA and Tukey tests for mixed balanced input ==\n");
  printf("memory = %zu, input = %llu records, %d seeds\n\n", memory,
         static_cast<unsigned long long>(records), seeds);

  const std::vector<Observation> all =
      RunFactorial(Dataset::kMixed, memory, records, seeds);

  // Figure 5.5: runs by buffer setup.
  printf("-- Figure 5.5: number of runs by buffer setup --\n");
  {
    TablePrinter table({"Buffer setup", "mean runs", "max runs"});
    const char* setup_names[] = {"input only", "both", "victim only"};
    for (int setup = 0; setup < kBufferSetupLevels; ++setup) {
      double sum = 0.0;
      double max = 0.0;
      int n = 0;
      for (const Observation& obs : all) {
        if (obs.levels[0] != setup) continue;
        sum += obs.y;
        max = std::max(max, obs.y);
        ++n;
      }
      table.AddRow({setup_names[setup], TablePrinter::Num(sum / n, 1),
                    TablePrinter::Num(max, 0)});
    }
    table.Print(std::cout);
    printf("(paper: victim-less configurations are far worse and noisier)\n\n");
  }

  // §5.2.5 removes configurations without the victim buffer, then fits the
  // model on buffer size, input heuristic, output heuristic and their
  // first-order interactions, using WLS weights per buffer-size level.
  std::vector<Observation> with_victim;
  for (const Observation& obs : all) {
    if (obs.levels[0] == 1 || obs.levels[0] == 2) with_victim.push_back(obs);
  }
  CheckOk(ApplyWlsWeights(&with_victim, /*factor=*/1, kNumBufferSizeLevels),
          "wls");

  printf("-- Table 5.6 analogue: WLS model with first-order interactions --\n");
  const std::vector<AnovaTerm> terms = {{{1}},    {{2}},    {{3}},
                                        {{1, 2}}, {{1, 3}}, {{2, 3}}};
  AnovaResult result;
  CheckOk(FitAnova(with_victim, kLevels, terms, &result), "anova");
  PrintAnovaTable(result, terms, kFactorNames);
  printf("\n");

  // Tukey comparisons (Tables 5.7 / 5.8).
  printf("-- Table 5.7: Tukey significance, input heuristics --\n");
  TukeyResult input_tukey;
  CheckOk(TukeyHSD(with_victim, /*factor=*/2, kNumInputHeuristics,
                   result.ms_error, result.df_error, &input_tukey),
          "tukey input");
  PrintTukeyMatrix(input_tukey, kNumInputHeuristics, InputName);
  printf("best input heuristics (min runs, alpha 0.05):");
  for (int l : input_tukey.BestLevels()) printf(" %s", InputName(l));
  printf("\n\n");

  printf("-- Table 5.8: Tukey significance, output heuristics --\n");
  TukeyResult output_tukey;
  CheckOk(TukeyHSD(with_victim, /*factor=*/3, kNumOutputHeuristics,
                   result.ms_error, result.df_error, &output_tukey),
          "tukey output");
  PrintTukeyMatrix(output_tukey, kNumOutputHeuristics, OutputName);
  printf("best output heuristics (min runs, alpha 0.05):");
  for (int l : output_tukey.BestLevels()) printf(" %s", OutputName(l));
  printf("\n\n");

  // Figure 5.8: mean runs per heuristic pair.
  printf("-- Figure 5.8: mean runs per (input x output) heuristic --\n");
  {
    TablePrinter table([&] {
      std::vector<std::string> headers = {"input \\ output"};
      for (int oh = 0; oh < kNumOutputHeuristics; ++oh) {
        headers.push_back(OutputName(oh));
      }
      return headers;
    }());
    for (int ih = 0; ih < kNumInputHeuristics; ++ih) {
      std::vector<std::string> row = {InputName(ih)};
      for (int oh = 0; oh < kNumOutputHeuristics; ++oh) {
        double sum = 0.0;
        int n = 0;
        for (const Observation& obs : with_victim) {
          if (obs.levels[2] != ih || obs.levels[3] != oh) continue;
          sum += obs.y;
          ++n;
        }
        row.push_back(TablePrinter::Num(sum / n, 1));
      }
      table.AddRow(row);
    }
    table.Print(std::cout);
  }
  printf(
      "\nExpected shape (paper): with the victim buffer, good heuristic\n"
      "pairs collapse the mixed dataset to a handful of runs; the paper's\n"
      "optima use Mean/Median input with Random/Balancing output.\n");
}

}  // namespace
}  // namespace bench
}  // namespace twrs

int main(int argc, char** argv) {
  twrs::bench::ParseBenchArgs(argc, argv);
  twrs::bench::Run();
  twrs::bench::JsonReporter::Global().Flush();
  return 0;
}
